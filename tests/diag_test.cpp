#include <gtest/gtest.h>

#include "atpg/comb_tset.hpp"
#include "diag/diagnosis.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "gen/circuit_gen.hpp"
#include "gen/embedded.hpp"
#include "tcomp/baselines.hpp"
#include "tcomp/pipeline.hpp"
#include "tgen/greedy_tgen.hpp"

namespace scanc::diag {
namespace {

using fault::FaultClassId;
using fault::FaultList;
using fault::FaultSimulator;
using netlist::Circuit;

struct DiagRig {
  Circuit circuit;
  FaultList faults;
  std::unique_ptr<FaultSimulator> fsim;
  tcomp::ScanTestSet tests;

  explicit DiagRig(Circuit c)
      : circuit(std::move(c)), faults(FaultList::build(circuit)) {
    fsim = std::make_unique<FaultSimulator>(circuit, faults);
    const atpg::CombTestSet comb =
        atpg::generate_comb_test_set(circuit, faults, {});
    tests = tcomp::comb_initial_set(comb.tests);
  }
};

TEST(Diagnosis, FaultFreeDeviceYieldsNoFailures) {
  DiagRig rig(gen::make_s27());
  // "Observed" = the expected responses themselves.
  ObservedResponses obs;
  for (const tcomp::ScanTest& t : rig.tests.tests) {
    obs.push_back(tcomp::expected_response(rig.circuit, t));
  }
  const DiagnosisResult r = diagnose(*rig.fsim, rig.tests, obs);
  EXPECT_EQ(r.failing_tests, 0u);
  // Consistent candidates are exactly the faults the set does NOT detect
  // (undetected faults predict the fault-free response everywhere).
  const fault::FaultSet det = tcomp::coverage(*rig.fsim, rig.tests);
  for (const Candidate& c : r.candidates) {
    EXPECT_FALSE(det.test(c.fault));
    EXPECT_EQ(c.explained_failures, 0u);
  }
}

// Property: injecting each detectable fault and diagnosing with the same
// test set must keep the injected fault among the candidates, and every
// candidate must be response-equivalent to it under the set.
class DiagnosisProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiagnosisProperty, InjectedFaultIsAlwaysACandidate) {
  gen::GenParams p;
  p.name = "diag";
  p.seed = GetParam() * 23 + 5;
  p.num_inputs = 4;
  p.num_outputs = 3;
  p.num_flip_flops = 5;
  p.num_gates = 50;
  DiagRig rig(gen::generate_circuit(p));
  const fault::FaultSet det = tcomp::coverage(*rig.fsim, rig.tests);

  std::size_t tried = 0;
  for (FaultClassId defect = 0;
       defect < rig.faults.num_classes() && tried < 12; ++defect) {
    if (!det.test(defect)) continue;
    ++tried;
    const ObservedResponses obs =
        simulate_defect(rig.circuit, rig.faults, defect, rig.tests);
    const DiagnosisResult r = diagnose(*rig.fsim, rig.tests, obs);
    EXPECT_GT(r.failing_tests, 0u);
    bool found = false;
    for (const Candidate& c : r.candidates) {
      if (c.fault == defect) found = true;
    }
    EXPECT_TRUE(found) << "defect "
                       << fault_name(rig.faults.representative(defect),
                                     rig.circuit)
                       << " missing from candidates";
    // The true defect explains every failing test.
    for (const Candidate& c : r.candidates) {
      if (c.fault == defect) {
        EXPECT_EQ(c.explained_failures, r.failing_tests);
      }
    }
  }
  EXPECT_GT(tried, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiagnosisProperty,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(Diagnosis, CompactedAtSpeedSetRemainsDiagnosable) {
  // The pipeline's compacted test set (one long tau_seq + top-offs) must
  // still localize an injected defect.
  gen::GenParams p;
  p.name = "diag2";
  p.seed = 77;
  p.num_inputs = 5;
  p.num_outputs = 4;
  p.num_flip_flops = 6;
  p.num_gates = 70;
  const Circuit circuit = gen::generate_circuit(p);
  const FaultList faults = FaultList::build(circuit);
  FaultSimulator fsim(circuit, faults);
  const atpg::CombTestSet comb =
      atpg::generate_comb_test_set(circuit, faults, {});
  tgen::GreedyTgenOptions gopt;
  gopt.max_length = 200;
  const auto t0 = tgen::generate_test_sequence(circuit, faults, gopt);
  const tcomp::PipelineResult pr =
      tcomp::run_pipeline(fsim, t0.sequence, comb.tests);

  // Inject the first fault the set detects.
  FaultClassId defect = 0;
  for (; defect < faults.num_classes(); ++defect) {
    if (pr.final_coverage.test(defect)) break;
  }
  ASSERT_LT(defect, faults.num_classes());
  const ObservedResponses obs =
      simulate_defect(circuit, faults, defect, pr.compacted);
  const DiagnosisResult r = diagnose(fsim, pr.compacted, obs);
  ASSERT_FALSE(r.candidates.empty());
  bool found = false;
  for (const Candidate& c : r.candidates) found |= c.fault == defect;
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace scanc::diag
