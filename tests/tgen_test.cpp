#include <gtest/gtest.h>

#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "gen/circuit_gen.hpp"
#include "gen/embedded.hpp"
#include "tgen/greedy_tgen.hpp"
#include "tgen/random_seq.hpp"

namespace scanc::tgen {
namespace {

using fault::FaultList;
using fault::FaultSet;
using fault::FaultSimulator;
using netlist::Circuit;

TEST(RandomSeq, HasRequestedShapeAndIsDeterministic) {
  const Circuit c = gen::make_s27();
  const sim::Sequence a = random_test_sequence(c, 50, 3);
  EXPECT_EQ(a.length(), 50u);
  for (const auto& f : a.frames) {
    EXPECT_EQ(f.size(), c.num_inputs());
    EXPECT_TRUE(sim::fully_specified(f));
  }
  const sim::Sequence b = random_test_sequence(c, 50, 3);
  EXPECT_EQ(a, b);
  const sim::Sequence d = random_test_sequence(c, 50, 4);
  EXPECT_NE(a, d);
}

TEST(Session, StepMatchesBatchSimulation) {
  const Circuit c = gen::make_s27();
  const FaultList fl = FaultList::build(c);
  FaultSimulator fsim(c, fl);
  const sim::Sequence seq = random_test_sequence(c, 20, 17);

  FaultSet targets = fsim.all_faults();
  FaultSimulator::Session session(fsim, targets);
  for (const auto& v : seq.frames) (void)session.step(v);

  const FaultSet batch = fsim.detect_no_scan(seq);
  EXPECT_EQ(session.detected(), batch);
}

TEST(Session, SnapshotRestoreRewindsExactly) {
  const Circuit c = gen::make_s27();
  const FaultList fl = FaultList::build(c);
  FaultSimulator fsim(c, fl);
  const sim::Sequence seq = random_test_sequence(c, 16, 23);

  FaultSet targets = fsim.all_faults();
  FaultSimulator::Session session(fsim, targets);
  for (int i = 0; i < 8; ++i) (void)session.step(seq.frames[i]);
  const auto snap = session.snapshot();
  const FaultSet mid = session.detected();

  // Take a detour, rewind, replay: results must be identical.
  for (int i = 8; i < 16; ++i) (void)session.step(seq.frames[i]);
  const FaultSet end1 = session.detected();
  session.restore(snap);
  EXPECT_EQ(session.detected(), mid);
  for (int i = 8; i < 16; ++i) (void)session.step(seq.frames[i]);
  EXPECT_EQ(session.detected(), end1);
}

TEST(GreedyTgen, DetectsMoreThanRandomOfSameLength) {
  gen::GenParams p;
  p.name = "gt";
  p.seed = 5;
  p.num_inputs = 5;
  p.num_outputs = 4;
  p.num_flip_flops = 10;
  p.num_gates = 120;
  const Circuit c = gen::generate_circuit(p);
  const FaultList fl = FaultList::build(c);

  GreedyTgenOptions opt;
  opt.seed = 11;
  opt.max_length = 400;
  const GreedyTgenResult r = generate_test_sequence(c, fl, opt);
  EXPECT_GT(r.sequence.length(), 0u);
  EXPECT_LE(r.sequence.length(), opt.max_length + opt.segment_max);

  FaultSimulator fsim(c, fl);
  const sim::Sequence rnd = random_test_sequence(c, r.sequence.length(), 11);
  const FaultSet rnd_det = fsim.detect_no_scan(rnd);
  EXPECT_GE(r.detected.count(), rnd_det.count());
}

TEST(GreedyTgen, ReportedDetectionMatchesResimulation) {
  gen::GenParams p;
  p.name = "gt2";
  p.seed = 6;
  p.num_inputs = 4;
  p.num_outputs = 3;
  p.num_flip_flops = 6;
  p.num_gates = 60;
  const Circuit c = gen::generate_circuit(p);
  const FaultList fl = FaultList::build(c);

  GreedyTgenOptions opt;
  opt.seed = 12;
  opt.max_length = 200;
  const GreedyTgenResult r = generate_test_sequence(c, fl, opt);

  FaultSimulator fsim(c, fl);
  EXPECT_EQ(fsim.detect_no_scan(r.sequence), r.detected);
}

TEST(GreedyTgen, DeterministicForSameSeed) {
  const Circuit c = gen::make_s27();
  const FaultList fl = FaultList::build(c);
  GreedyTgenOptions opt;
  opt.seed = 42;
  opt.max_length = 120;
  const GreedyTgenResult a = generate_test_sequence(c, fl, opt);
  const GreedyTgenResult b = generate_test_sequence(c, fl, opt);
  EXPECT_EQ(a.sequence, b.sequence);
  EXPECT_EQ(a.detected, b.detected);
}

}  // namespace
}  // namespace scanc::tgen
