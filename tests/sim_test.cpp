#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "gen/circuit_gen.hpp"
#include "gen/embedded.hpp"
#include "sim/logic.hpp"
#include "sim/packed.hpp"
#include "sim/seq_sim.hpp"
#include "sim/sequence.hpp"
#include "sim/wide.hpp"
#include "util/rng.hpp"

namespace scanc::sim {
namespace {

constexpr std::array<V3, 3> kAll = {V3::Zero, V3::One, V3::X};

TEST(Logic, NotTruthTable) {
  EXPECT_EQ(v3_not(V3::Zero), V3::One);
  EXPECT_EQ(v3_not(V3::One), V3::Zero);
  EXPECT_EQ(v3_not(V3::X), V3::X);
}

TEST(Logic, AndTruthTable) {
  EXPECT_EQ(v3_and(V3::Zero, V3::Zero), V3::Zero);
  EXPECT_EQ(v3_and(V3::Zero, V3::One), V3::Zero);
  EXPECT_EQ(v3_and(V3::One, V3::One), V3::One);
  EXPECT_EQ(v3_and(V3::Zero, V3::X), V3::Zero);  // controlling value wins
  EXPECT_EQ(v3_and(V3::One, V3::X), V3::X);
  EXPECT_EQ(v3_and(V3::X, V3::X), V3::X);
}

TEST(Logic, OrTruthTable) {
  EXPECT_EQ(v3_or(V3::Zero, V3::Zero), V3::Zero);
  EXPECT_EQ(v3_or(V3::One, V3::Zero), V3::One);
  EXPECT_EQ(v3_or(V3::One, V3::X), V3::One);  // controlling value wins
  EXPECT_EQ(v3_or(V3::Zero, V3::X), V3::X);
  EXPECT_EQ(v3_or(V3::X, V3::X), V3::X);
}

TEST(Logic, XorTruthTable) {
  EXPECT_EQ(v3_xor(V3::Zero, V3::Zero), V3::Zero);
  EXPECT_EQ(v3_xor(V3::Zero, V3::One), V3::One);
  EXPECT_EQ(v3_xor(V3::One, V3::One), V3::Zero);
  EXPECT_EQ(v3_xor(V3::One, V3::X), V3::X);  // X always propagates
  EXPECT_EQ(v3_xor(V3::Zero, V3::X), V3::X);
  EXPECT_EQ(v3_xor(V3::X, V3::X), V3::X);
}

TEST(Logic, OperatorsAgreeWithBooleanLogicOnBinary) {
  for (const bool a : {false, true}) {
    for (const bool b : {false, true}) {
      const V3 va = v3_from_bool(a);
      const V3 vb = v3_from_bool(b);
      EXPECT_EQ(v3_and(va, vb), v3_from_bool(a && b));
      EXPECT_EQ(v3_or(va, vb), v3_from_bool(a || b));
      EXPECT_EQ(v3_xor(va, vb), v3_from_bool(a != b));
      EXPECT_EQ(v3_not(va), v3_from_bool(!a));
    }
  }
}

TEST(Logic, CommutativityAndDeMorgan) {
  for (const V3 a : kAll) {
    for (const V3 b : kAll) {
      EXPECT_EQ(v3_and(a, b), v3_and(b, a));
      EXPECT_EQ(v3_or(a, b), v3_or(b, a));
      EXPECT_EQ(v3_xor(a, b), v3_xor(b, a));
      EXPECT_EQ(v3_not(v3_and(a, b)), v3_or(v3_not(a), v3_not(b)));
      EXPECT_EQ(v3_not(v3_or(a, b)), v3_and(v3_not(a), v3_not(b)));
    }
  }
}

TEST(Logic, CharConversionsRoundTrip) {
  for (const V3 v : kAll) {
    EXPECT_EQ(v3_from_char(to_char(v)), v);
  }
}

// Packed ops must agree with scalar ops slot-by-slot for every slot value
// combination.
TEST(Packed, SlotwiseAgreementWithScalarOps) {
  // Pack all 9 (a, b) combinations into the first 9 slots.
  PackedV3 pa;
  PackedV3 pb;
  std::array<V3, 9> a_vals;
  std::array<V3, 9> b_vals;
  int s = 0;
  for (const V3 a : kAll) {
    for (const V3 b : kAll) {
      a_vals[s] = a;
      b_vals[s] = b;
      set_slot(pa, s, a);
      set_slot(pb, s, b);
      ++s;
    }
  }
  const PackedV3 pand = p_and(pa, pb);
  const PackedV3 por = p_or(pa, pb);
  const PackedV3 pxor = p_xor(pa, pb);
  const PackedV3 pnot = p_not(pa);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(slot(pand, i), v3_and(a_vals[i], b_vals[i])) << i;
    EXPECT_EQ(slot(por, i), v3_or(a_vals[i], b_vals[i])) << i;
    EXPECT_EQ(slot(pxor, i), v3_xor(a_vals[i], b_vals[i])) << i;
    EXPECT_EQ(slot(pnot, i), v3_not(a_vals[i])) << i;
  }
}

TEST(Packed, BroadcastFillsAllSlots) {
  for (const V3 v : kAll) {
    const PackedV3 p = broadcast(v);
    for (const unsigned bit : {0u, 1u, 31u, 63u}) {
      EXPECT_EQ(slot(p, bit), v);
    }
  }
}

TEST(Packed, InjectForcesOnlyMaskedSlots) {
  PackedV3 v = broadcast(V3::Zero);
  v = inject(v, 0b1010, /*stuck_one=*/true);
  EXPECT_EQ(slot(v, 0), V3::Zero);
  EXPECT_EQ(slot(v, 1), V3::One);
  EXPECT_EQ(slot(v, 2), V3::Zero);
  EXPECT_EQ(slot(v, 3), V3::One);

  PackedV3 x = broadcast(V3::X);
  x = inject(x, 0b1, /*stuck_one=*/false);
  EXPECT_EQ(slot(x, 0), V3::Zero);
  EXPECT_EQ(slot(x, 1), V3::X);
}

TEST(Packed, DiffersFromReferenceIsConservative) {
  PackedV3 v;
  set_slot(v, 0, V3::One);   // matches reference 1
  set_slot(v, 1, V3::Zero);  // differs
  set_slot(v, 2, V3::X);     // unknown: must not count
  const std::uint64_t d = differs_from_reference(v, /*ref_one=*/true);
  EXPECT_TRUE(d & 0b010);
  EXPECT_FALSE(d & 0b001);
  EXPECT_FALSE(d & 0b100);
}

TEST(SeqSim, S27HandComputedFrames) {
  const netlist::Circuit c = gen::make_s27();
  Sequence seq;
  seq.frames.push_back(vector3_from_string("1111"));  // G0..G3
  seq.frames.push_back(vector3_from_string("0000"));
  const Trace t = simulate_fault_free(c, nullptr, seq);

  // Frame 0, all-ones from the all-X state: G9=NAND(G16=1, G15=0)=1,
  // G11=NOR(X,1)=0, G17=NOT(G11)=1; latched state (G5,G6,G7)=(1,0,0).
  ASSERT_EQ(t.po_frames.size(), 2u);
  EXPECT_EQ(to_string(t.po_frames[0]), "1");
  EXPECT_EQ(to_string(t.states[0]), "100");
  // Frame 1, all-zeros: G17=1 again, state becomes (0,0,0).
  EXPECT_EQ(to_string(t.po_frames[1]), "1");
  EXPECT_EQ(to_string(t.states[1]), "000");
}

TEST(SeqSim, AllXStateStaysUnknownWithoutStimulus) {
  // A lone toggling FF with no PI control can never initialize.
  netlist::CircuitBuilder b("toggle");
  b.add_input("a");
  b.add_gate(netlist::GateType::Dff, "q", {"nq"});
  b.add_gate(netlist::GateType::Not, "nq", {"q"});
  b.add_gate(netlist::GateType::And, "o", {"a", "q"});
  b.mark_output("o");
  const netlist::Circuit c = b.build();
  Sequence seq;
  for (int i = 0; i < 4; ++i) seq.frames.push_back(vector3_from_string("1"));
  const Trace t = simulate_fault_free(c, nullptr, seq);
  for (const auto& st : t.states) EXPECT_EQ(to_string(st), "x");
  for (const auto& po : t.po_frames) EXPECT_EQ(to_string(po), "x");
}

TEST(SeqSim, ScanInOverridesUnknownState) {
  netlist::CircuitBuilder b("sc");
  b.add_input("a");
  b.add_gate(netlist::GateType::Dff, "q", {"d"});
  b.add_gate(netlist::GateType::Xor, "d", {"a", "q"});
  b.mark_output("d");
  const netlist::Circuit c = b.build();
  const Vector3 si = vector3_from_string("1");
  Sequence seq;
  seq.frames.push_back(vector3_from_string("0"));
  seq.frames.push_back(vector3_from_string("1"));
  const Trace t = simulate_fault_free(c, &si, seq);
  EXPECT_EQ(to_string(t.po_frames[0]), "1");  // 0 xor 1
  EXPECT_EQ(to_string(t.states[0]), "1");
  EXPECT_EQ(to_string(t.po_frames[1]), "0");  // 1 xor 1
  EXPECT_EQ(to_string(t.states[1]), "0");
}

TEST(SeqSim, ConstantsEvaluate) {
  netlist::CircuitBuilder b("consts");
  b.add_input("a");
  b.add_gate(netlist::GateType::Const1, "one", {});
  b.add_gate(netlist::GateType::Const0, "zero", {});
  b.add_gate(netlist::GateType::And, "o1", {"a", "one"});
  b.add_gate(netlist::GateType::Or, "o2", {"a", "zero"});
  b.mark_output("o1");
  b.mark_output("o2");
  const netlist::Circuit c = b.build();
  Sequence seq;
  seq.frames.push_back(vector3_from_string("1"));
  const Trace t = simulate_fault_free(c, nullptr, seq);
  EXPECT_EQ(to_string(t.po_frames[0]), "11");
}

// Property: the packed engine and the independent scalar engine agree on
// random circuits and random (partially unknown) stimulus.
class PackedVsScalar : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PackedVsScalar, TracesAgree) {
  gen::GenParams p;
  p.name = "prop";
  p.seed = GetParam();
  p.num_inputs = 5;
  p.num_outputs = 4;
  p.num_flip_flops = 6;
  p.num_gates = 60;
  const netlist::Circuit c = gen::generate_circuit(p);

  util::Rng rng(GetParam() * 7919 + 13);
  Sequence seq;
  for (int t = 0; t < 24; ++t) {
    Vector3 v = random_vector(c.num_inputs(), rng);
    // Sprinkle some X inputs to exercise 3-valued paths.
    for (auto& x : v) {
      if (rng.chance(1, 8)) x = V3::X;
    }
    seq.frames.push_back(std::move(v));
  }
  // Half the runs scan in a random state, half start from all-X.
  Vector3 si;
  const Vector3* scan_state_ptr = nullptr;
  if (GetParam() % 2 == 0) {
    si = random_vector(c.num_flip_flops(), rng);
    scan_state_ptr = &si;
  }
  const Trace packed = simulate_fault_free(c, scan_state_ptr, seq);
  const Trace scalar = simulate_fault_free_scalar(c, scan_state_ptr, seq);
  ASSERT_EQ(packed.po_frames.size(), scalar.po_frames.size());
  for (std::size_t t = 0; t < seq.length(); ++t) {
    EXPECT_EQ(to_string(packed.po_frames[t]), to_string(scalar.po_frames[t]))
        << "frame " << t;
    EXPECT_EQ(to_string(packed.states[t]), to_string(scalar.states[t]))
        << "frame " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackedVsScalar,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(Sequence, SubsequenceMatchesPaperNotation) {
  util::Rng rng(3);
  const Sequence s = random_sequence(4, 10, rng);
  const Sequence sub = s.subsequence(2, 5);
  ASSERT_EQ(sub.length(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sub.frames[i], s.frames[i + 2]);
  }
}

TEST(Sequence, ConcatenationAppends) {
  util::Rng rng(4);
  const Sequence a = random_sequence(3, 5, rng);
  const Sequence b = random_sequence(3, 7, rng);
  const Sequence ab = a.concatenated(b);
  ASSERT_EQ(ab.length(), 12u);
  EXPECT_EQ(ab.frames[0], a.frames[0]);
  EXPECT_EQ(ab.frames[5], b.frames[0]);
  EXPECT_EQ(ab.frames[11], b.frames[6]);
}

TEST(Sequence, RandomVectorIsFullySpecified) {
  util::Rng rng(5);
  const Vector3 v = random_vector(64, rng);
  EXPECT_TRUE(fully_specified(v));
  Vector3 w(10, V3::X);
  randomize_x(w, rng);
  EXPECT_TRUE(fully_specified(w));
}

// ---------------------------------------------------------------------
// Wide words: every lane of a WideWord operation must evolve exactly as
// the corresponding PackedV3 operation over that lane alone — the
// no-bit-crosses-a-lane contract the wide kernels are built on.

using W4 = WideWord<4>;

WideV3<W4> wide_from_lanes(const std::array<PackedV3, 4>& lanes) {
  WideV3<W4> v{W4::zero(), W4::zero()};
  for (std::size_t i = 0; i < 4; ++i) {
    v.is0.set_lane(i, lanes[i].is0);
    v.is1.set_lane(i, lanes[i].is1);
  }
  return v;
}

PackedV3 lane_of(const WideV3<W4>& v, std::size_t i) {
  return {v.is0.lane(i), v.is1.lane(i)};
}

std::array<PackedV3, 4> random_lanes(util::Rng& rng) {
  std::array<PackedV3, 4> lanes;
  for (auto& l : lanes) {
    // is0|is1 per bit must be a valid V3 code (01, 10, or 11 — never 00).
    const std::uint64_t a = rng.next();
    const std::uint64_t b = rng.next();
    l.is0 = a | ~b;
    l.is1 = b | ~a;
  }
  return lanes;
}

TEST(WideWord, LanewiseOpsMatchPacked) {
  util::Rng rng(0x71de);
  for (int round = 0; round < 50; ++round) {
    const auto la = random_lanes(rng);
    const auto lb = random_lanes(rng);
    const WideV3<W4> a = wide_from_lanes(la);
    const WideV3<W4> b = wide_from_lanes(lb);
    const WideV3<W4> w_and_v = w_and(a, b);
    const WideV3<W4> w_or_v = w_or(a, b);
    const WideV3<W4> w_xor_v = w_xor(a, b);
    const WideV3<W4> w_not_v = w_not(a);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(lane_of(w_and_v, i), p_and(la[i], lb[i])) << "lane " << i;
      EXPECT_EQ(lane_of(w_or_v, i), p_or(la[i], lb[i])) << "lane " << i;
      EXPECT_EQ(lane_of(w_xor_v, i), p_xor(la[i], lb[i])) << "lane " << i;
      EXPECT_EQ(lane_of(w_not_v, i), p_not(la[i])) << "lane " << i;
    }
  }
}

TEST(WideWord, InjectMatchesPackedPerLane) {
  util::Rng rng(12345);
  for (int round = 0; round < 50; ++round) {
    const auto la = random_lanes(rng);
    const WideV3<W4> a = wide_from_lanes(la);
    W4 mask = W4::zero();
    std::array<std::uint64_t, 4> masks;
    for (std::size_t i = 0; i < 4; ++i) {
      masks[i] = rng.next();
      mask.set_lane(i, masks[i]);
    }
    for (const bool stuck_one : {false, true}) {
      const WideV3<W4> got = w_inject(a, mask, stuck_one);
      for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(lane_of(got, i), inject(la[i], masks[i], stuck_one))
            << "lane " << i << " stuck_one=" << stuck_one;
      }
    }
  }
}

TEST(WideWord, DetectionsMatchScalarRule) {
  // wide_detections per lane == differs_from_reference against the
  // lane's slot-0 value when that reference is binary, 0 when it is X.
  util::Rng rng(777);
  for (int round = 0; round < 100; ++round) {
    auto la = random_lanes(rng);
    // Force a mix of reference-slot values across rounds.
    for (std::size_t i = 0; i < 4; ++i) {
      set_slot(la[i], 0, kAll[(round + i) % 3]);
    }
    const W4 got = wide_detections(wide_from_lanes(la));
    for (std::size_t i = 0; i < 4; ++i) {
      const V3 ref = slot(la[i], 0);
      const std::uint64_t want =
          is_binary(ref)
              ? (differs_from_reference(la[i], ref == V3::One) & ~1ULL)
              : 0ULL;
      EXPECT_EQ(got.lane(i), want) << "lane " << i << " round " << round;
    }
  }
}

TEST(WideWord, EvalGateMatchesPackedPerLane) {
  using netlist::GateType;
  util::Rng rng(424242);
  for (const GateType type :
       {GateType::Buf, GateType::Not, GateType::And, GateType::Nand,
        GateType::Or, GateType::Nor, GateType::Xor, GateType::Xnor}) {
    const std::size_t arity =
        (type == GateType::Buf || type == GateType::Not) ? 1 : 3;
    for (int round = 0; round < 20; ++round) {
      std::vector<std::array<PackedV3, 4>> fanin_lanes(arity);
      std::vector<WideV3<W4>> fanin_wide;
      for (std::size_t k = 0; k < arity; ++k) {
        fanin_lanes[k] = random_lanes(rng);
        fanin_wide.push_back(wide_from_lanes(fanin_lanes[k]));
      }
      const WideV3<W4> got = wide_eval_gate_at<W4>(
          type, arity, [&](std::size_t k) { return fanin_wide[k]; });
      for (std::size_t i = 0; i < 4; ++i) {
        const PackedV3 want = eval_gate_at(
            type, arity, [&](std::size_t k) { return fanin_lanes[k][i]; });
        EXPECT_EQ(lane_of(got, i), want)
            << "gate " << static_cast<int>(type) << " lane " << i;
      }
    }
  }
}

TEST(WideWord, Bcast0AndAny) {
  W4 v = W4::zero();
  EXPECT_FALSE(v.any());
  v.set_lane(2, 0x8000000000000001ULL);
  EXPECT_TRUE(v.any());
  const W4 b = W4::bcast_bit0(v);
  EXPECT_EQ(b.lane(0), 0ULL);
  EXPECT_EQ(b.lane(1), 0ULL);
  EXPECT_EQ(b.lane(2), ~0ULL);  // bit 0 set -> lane saturates
  EXPECT_EQ(b.lane(3), 0ULL);
  const W4 s = W4::splat(0xdeadbeefULL);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(s.lane(i), 0xdeadbeefULL);
}

}  // namespace
}  // namespace scanc::sim
