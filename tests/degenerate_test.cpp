// Degenerate-input tests: the empty and zero-sized corners every layer
// must survive gracefully — zero-fault target sets, empty PI sequences,
// and flip-flop-free circuits pushed through the scan-test pipeline.
// The differential fuzzer generates these shapes at random; the cases
// here pin them deterministically.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "atpg/comb_tset.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "gen/circuit_gen.hpp"
#include "tcomp/pipeline.hpp"
#include "tgen/random_seq.hpp"

namespace scanc {
namespace {

using fault::FaultList;
using fault::FaultSet;
using fault::FaultSimulator;
using netlist::Circuit;
using sim::Sequence;
using sim::Vector3;

Circuit small_circuit(std::size_t ffs) {
  gen::GenParams p;
  p.name = "degen";
  p.seed = 77;
  p.num_inputs = 4;
  p.num_outputs = 3;
  p.num_flip_flops = ffs;
  p.num_gates = 30;
  return gen::generate_circuit(p);
}

TEST(Degenerate, EmptyTargetSetDetectsNothing) {
  const Circuit c = small_circuit(4);
  const FaultList fl = FaultList::build(c);
  FaultSimulator fsim(c, fl);
  const FaultSet none(fsim.num_classes());
  Sequence seq = tgen::random_test_sequence(c, 5, 3);
  const Vector3 si(c.num_flip_flops(), sim::V3::Zero);

  EXPECT_EQ(fsim.detect_no_scan(seq, &none).count(), 0u);
  EXPECT_EQ(fsim.detect_scan_test(si, seq, &none).count(), 0u);
  const auto times = fsim.detection_times(si, seq, none);
  EXPECT_TRUE(times.targets.empty());
  const auto prefix = fsim.prefix_detection(si, seq, none);
  EXPECT_TRUE(prefix.targets.empty());
  EXPECT_TRUE(prefix.all_detected());  // vacuously
  EXPECT_TRUE(fsim.detects_all(si, seq, none));

  FaultSimulator::Session session(fsim, none);
  for (const Vector3& v : seq.frames) EXPECT_EQ(session.step(v), 0u);
  EXPECT_EQ(session.detected().count(), 0u);
}

TEST(Degenerate, EmptySequenceScanTest) {
  // A length-0 scan test loads and immediately scans out: the captured
  // state is the loaded state on both machines, so nothing is ever
  // detected — but nothing may crash either.
  const Circuit c = small_circuit(4);
  const FaultList fl = FaultList::build(c);
  FaultSimulator fsim(c, fl);
  const Sequence empty;
  const Vector3 si(c.num_flip_flops(), sim::V3::One);
  for (const auto mode :
       {fault::KernelMode::Full, fault::KernelMode::Cone}) {
    fsim.set_kernel(mode);
    EXPECT_EQ(fsim.detect_scan_test(si, empty).count(), 0u);
    EXPECT_EQ(fsim.detect_no_scan(empty).count(), 0u);
    const FaultSet all = fsim.all_faults();
    const auto times = fsim.detection_times(si, empty, all);
    for (std::size_t j = 0; j < times.targets.size(); ++j) {
      EXPECT_EQ(times.first_po[j], -1);
      EXPECT_EQ(times.state_diff[j].count(), 0u);
    }
    EXPECT_FALSE(fsim.detects_all(si, empty, all));
  }
}

TEST(Degenerate, NoFlipFlopCircuitThroughScanPipeline) {
  // A purely combinational circuit has an empty scan chain: scan-in is
  // width 0, scan operations cost nothing, and the whole pipeline must
  // still run — N_cyc degenerates to the vector count.
  const Circuit c = small_circuit(0);
  ASSERT_EQ(c.num_flip_flops(), 0u);
  const FaultList fl = FaultList::build(c);
  FaultSimulator fsim(c, fl);
  EXPECT_EQ(fsim.num_scanned(), 0u);

  const Vector3 empty_si;
  Sequence seq = tgen::random_test_sequence(c, 4, 9);
  const FaultSet scan_det = fsim.detect_scan_test(empty_si, seq);
  const FaultSet po_det = fsim.detect_no_scan(seq);
  EXPECT_EQ(scan_det, po_det);  // no state to observe at scan-out

  atpg::CombTestSetOptions copt;
  copt.seed = 5;
  const atpg::CombTestSet comb = atpg::generate_comb_test_set(c, fl, copt);
  const sim::Sequence t0 = tgen::random_test_sequence(c, 20, 5);
  const tcomp::PipelineResult r =
      tcomp::run_pipeline(fsim, t0, comb.tests);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.final_coverage.count(), 0u);
  // (k+1) * N_SV vanishes: cycles == applied vectors.
  EXPECT_EQ(r.compacted_cycles, r.compacted.total_vectors());
  EXPECT_EQ(r.initial_cycles,
            tcomp::clock_cycles(r.initial, fsim.num_scanned()));
}

TEST(Degenerate, MisWidthScanInIsRejected) {
  // A scan-in vector is indexed in flip_flops() order by both kernels;
  // a short one used to read out of bounds (each kernel seeing
  // different garbage).  The width is now validated at the query
  // boundary.
  const Circuit c = small_circuit(4);
  const FaultList fl = FaultList::build(c);
  FaultSimulator fsim(c, fl);
  Sequence seq = tgen::random_test_sequence(c, 2, 1);
  const Vector3 narrow(2, sim::V3::Zero);
  const Vector3 wide(9, sim::V3::Zero);
  EXPECT_THROW((void)fsim.detect_scan_test(narrow, seq),
               std::invalid_argument);
  EXPECT_THROW((void)fsim.detect_scan_test(wide, seq),
               std::invalid_argument);
  EXPECT_THROW((void)fsim.detects_all(narrow, seq, fsim.all_faults()),
               std::invalid_argument);
  EXPECT_THROW((void)fsim.detection_times(narrow, seq, fsim.all_faults()),
               std::invalid_argument);
  EXPECT_THROW((void)fsim.prefix_detection(narrow, seq, fsim.all_faults()),
               std::invalid_argument);
}

TEST(Degenerate, TransitionFaultsNeedTwoFrames) {
  // A transition fault launches across consecutive functional frames, so
  // length-0 and length-1 scan tests can never activate one: every query
  // must return "nothing detected" without crashing, in both kernels.
  const Circuit c = small_circuit(4);
  const FaultList fl =
      FaultList::build(c, fault::FaultModel::transition());
  FaultSimulator fsim(c, fl);
  const Vector3 si(c.num_flip_flops(), sim::V3::Zero);
  Sequence one;
  one.frames.push_back(Vector3(c.num_inputs(), sim::V3::One));
  for (const auto mode :
       {fault::KernelMode::Full, fault::KernelMode::Cone}) {
    fsim.set_kernel(mode);
    for (const Sequence& seq : {Sequence{}, one}) {
      EXPECT_EQ(fsim.detect_scan_test(si, seq).count(), 0u);
      EXPECT_EQ(fsim.detect_no_scan(seq).count(), 0u);
      const FaultSet all = fsim.all_faults();
      const auto times = fsim.detection_times(si, seq, all);
      for (std::size_t j = 0; j < times.targets.size(); ++j) {
        EXPECT_EQ(times.first_po[j], -1);
        EXPECT_EQ(times.state_diff[j].count(), 0u);
      }
      EXPECT_FALSE(fsim.detects_all(si, seq, all));
    }
  }
}

TEST(Degenerate, TransitionNoFlipFlopCircuitThroughScanPipeline) {
  // Flip-flop-free circuit under the transition model: the pipeline must
  // complete even though scan tests are single-vector (nothing ever
  // launches, so coverage may legitimately be zero).
  const Circuit c = small_circuit(0);
  const FaultList fl =
      FaultList::build(c, fault::FaultModel::transition());
  FaultSimulator fsim(c, fl);
  // C stays stuck-at (the ATPG is stuck-at-only, as in the runner).
  const FaultList sa = FaultList::build(c);
  atpg::CombTestSetOptions copt;
  copt.seed = 5;
  const atpg::CombTestSet comb = atpg::generate_comb_test_set(c, sa, copt);
  const sim::Sequence t0 = tgen::random_test_sequence(c, 20, 5);
  const tcomp::PipelineResult r = tcomp::run_pipeline(fsim, t0, comb.tests);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.compacted_cycles, r.compacted.total_vectors());
}

TEST(Degenerate, BatchEdgeShapes) {
  // The pattern-parallel batch API on its degenerate shapes: an empty
  // batch, a single-test batch (below the lanes threshold, so the
  // per-test fallback runs), and a ragged batch whose size is not a
  // multiple of the lane count — each element must still equal its
  // per-test answer, at every lane width.
  const Circuit c = small_circuit(4);
  const FaultList fl = FaultList::build(c);
  FaultSimulator ref(c, fl);
  ref.set_lane_width(sim::LaneWidth::W64);

  std::vector<Vector3> scan_ins;
  std::vector<Sequence> seqs;
  for (std::size_t i = 0; i < 9; ++i) {
    scan_ins.push_back(Vector3(c.num_flip_flops(),
                               i % 2 ? sim::V3::One : sim::V3::Zero));
    // Ragged lengths, including a length-0 test in the middle.
    seqs.push_back(tgen::random_test_sequence(
        c, i == 4 ? 0 : 1 + (i * 3) % 7, 100 + i));
  }
  std::vector<FaultSimulator::BatchTest> batch(9);
  std::vector<FaultSet> want;
  for (std::size_t i = 0; i < 9; ++i) {
    batch[i] = {&scan_ins[i], &seqs[i]};
    want.push_back(ref.detect_scan_test(scan_ins[i], seqs[i]));
  }

  for (const auto lw : {sim::LaneWidth::W64, sim::LaneWidth::W256,
                        sim::LaneWidth::W512}) {
    FaultSimulator fsim(c, fl);
    fsim.set_lane_width(lw);
    EXPECT_TRUE(
        fsim.detect_batch(std::span<const FaultSimulator::BatchTest>{})
            .empty());
    const auto one = fsim.detect_batch(std::span(batch).first(1));
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], want[0]);
    const auto all = fsim.detect_batch(batch);
    ASSERT_EQ(all.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(all[i], want[i]) << "test " << i;
    }
    const auto times = fsim.times_batch(batch, fsim.all_faults());
    ASSERT_EQ(times.size(), batch.size());
  }
}

TEST(Degenerate, BatchRejectsMixedScanAndNoScan) {
  // One batch must be homogeneous: all tests with a scan-in state or
  // none (the engine packs scan-out observation per pass, not per lane).
  const Circuit c = small_circuit(4);
  const FaultList fl = FaultList::build(c);
  FaultSimulator fsim(c, fl);
  const Vector3 si(c.num_flip_flops(), sim::V3::Zero);
  Sequence seq = tgen::random_test_sequence(c, 3, 17);
  const std::vector<FaultSimulator::BatchTest> mixed = {
      {&si, &seq}, {nullptr, &seq}};
  EXPECT_THROW((void)fsim.detect_batch(mixed), std::invalid_argument);
}

TEST(Degenerate, ZeroThreadsMeansHardwareConcurrency) {
  // set_num_threads(0) = one worker per hardware thread; results stay
  // bit-identical to serial even on degenerate inputs.
  const Circuit c = small_circuit(3);
  const FaultList fl = FaultList::build(c);
  FaultSimulator serial(c, fl);
  FaultSimulator wide(c, fl);
  wide.set_num_threads(0);
  const Sequence empty;
  Sequence seq = tgen::random_test_sequence(c, 3, 11);
  const Vector3 si(c.num_flip_flops(), sim::V3::X);
  EXPECT_EQ(serial.detect_scan_test(si, seq),
            wide.detect_scan_test(si, seq));
  EXPECT_EQ(serial.detect_scan_test(si, empty),
            wide.detect_scan_test(si, empty));
}

}  // namespace
}  // namespace scanc
