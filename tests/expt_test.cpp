#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "expt/options.hpp"
#include "expt/runner.hpp"
#include "expt/tables.hpp"

namespace scanc::expt {
namespace {

CircuitRun sample_run() {
  CircuitRun r;
  r.name = "s298";
  r.flip_flops = 14;
  r.comb_tests = 24;
  r.faults = 308;
  r.detectable = 305;
  r.atpg.det_t0 = 265;
  r.atpg.det_scan = 279;
  r.atpg.det_final = 305;
  r.atpg.len_t0 = 117;
  r.atpg.len_scan = 68;
  r.atpg.added = 10;
  r.atpg.cyc_init = 246;
  r.atpg.cyc_comp = 218;
  r.atpg.atspeed_ave = 8.67;
  r.atpg.atspeed_min = 1;
  r.atpg.atspeed_max = 68;
  r.random = r.atpg;
  r.random.len_t0 = 1000;
  r.cyc_dyn = 376;
  r.cyc_4_init = 374;
  r.cyc_4_comp = 318;
  r.atspeed_ave_4 = 1.2;
  r.atspeed_min_4 = 1;
  r.atspeed_max_4 = 2;
  r.seconds = 1.5;
  return r;
}

TEST(RunnerCache, SerializationRoundTrips) {
  const CircuitRun r = sample_run();
  const std::string text = serialize_run(r);
  const auto back = deserialize_run(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->name, r.name);
  EXPECT_EQ(back->flip_flops, r.flip_flops);
  EXPECT_EQ(back->faults, r.faults);
  EXPECT_EQ(back->atpg.det_scan, r.atpg.det_scan);
  EXPECT_EQ(back->atpg.cyc_comp, r.atpg.cyc_comp);
  EXPECT_DOUBLE_EQ(back->atspeed_ave_4, r.atspeed_ave_4);
  EXPECT_EQ(back->random.len_t0, r.random.len_t0);
  EXPECT_EQ(back->cyc_dyn, r.cyc_dyn);
}

TEST(RunnerCache, RejectsCorruptAndStaleInput) {
  EXPECT_FALSE(deserialize_run("").has_value());
  EXPECT_FALSE(deserialize_run("version=0\nname=x\n").has_value());
  std::string text = serialize_run(sample_run());
  text = text.substr(0, text.size() / 2);  // truncated
  EXPECT_FALSE(deserialize_run(text).has_value());
}

TEST(Options, ParsesFlags) {
  const char* argv[] = {"bin",          "--circuits=s298,b01", "--full",
                        "--seed=42",    "--fresh",             "--cache=/tmp/x",
                        "--no-dynamic", "--verbose"};
  const BenchConfig cfg = parse_bench_args(8, argv);
  ASSERT_EQ(cfg.circuits.size(), 2u);
  EXPECT_EQ(cfg.circuits[0], "s298");
  EXPECT_EQ(cfg.circuits[1], "b01");
  EXPECT_TRUE(cfg.include_large);
  EXPECT_TRUE(cfg.runner.force_fresh);
  EXPECT_TRUE(cfg.runner.verbose);
  EXPECT_FALSE(cfg.runner.run_dynamic_baseline);
  EXPECT_EQ(cfg.runner.seed, 42u);
  EXPECT_EQ(cfg.runner.cache_path, "/tmp/x");
}

TEST(Options, ParsesTimeBudget) {
  const char* argv[] = {"bin", "--time-budget=3600"};
  const BenchConfig cfg = parse_bench_args(2, argv);
  ASSERT_TRUE(cfg.runner.cancel.valid());
  EXPECT_FALSE(cfg.runner.cancel.stop_requested());
  EXPECT_FALSE(cfg.runner.cancel.deadline().never());
  const double remaining = cfg.runner.cancel.deadline().remaining_seconds();
  EXPECT_GT(remaining, 3500.0);
  EXPECT_LE(remaining, 3600.0);

  const char* no_budget[] = {"bin"};
  EXPECT_FALSE(parse_bench_args(1, no_budget).runner.cancel.valid());

  const char* bad[] = {"bin", "--time-budget=soon"};
  EXPECT_THROW((void)parse_bench_args(2, bad), std::invalid_argument);
  const char* negative[] = {"bin", "--time-budget=-5"};
  EXPECT_THROW((void)parse_bench_args(2, negative), std::invalid_argument);
}

TEST(Options, ParsesAtpgBackend) {
  const char* sat[] = {"bin", "--atpg=sat"};
  EXPECT_EQ(parse_bench_args(2, sat).runner.atpg, atpg::AtpgBackend::Sat);
  const char* aut[] = {"bin", "--atpg=auto"};
  EXPECT_EQ(parse_bench_args(2, aut).runner.atpg, atpg::AtpgBackend::Auto);
  const char* podem[] = {"bin", "--atpg=podem"};
  EXPECT_EQ(parse_bench_args(2, podem).runner.atpg,
            atpg::AtpgBackend::Podem);
  const char* none[] = {"bin"};
  EXPECT_EQ(parse_bench_args(1, none).runner.atpg,
            atpg::AtpgBackend::Podem);
  const char* bad[] = {"bin", "--atpg=minisat"};
  EXPECT_THROW((void)parse_bench_args(2, bad), std::invalid_argument);
}

TEST(Options, AtpgBackendGetsOwnCacheEntry) {
  RunnerOptions opt;
  const std::string base = cache_entry_path(opt, "s298");
  opt.atpg = atpg::AtpgBackend::Sat;
  const std::string sat = cache_entry_path(opt, "s298");
  opt.atpg = atpg::AtpgBackend::Auto;
  const std::string aut = cache_entry_path(opt, "s298");
  EXPECT_NE(base, sat);
  EXPECT_NE(base, aut);
  EXPECT_NE(sat, aut);
  EXPECT_EQ(sat, base + ".sat");
  EXPECT_EQ(aut, base + ".auto");
}

TEST(Options, RejectsUnknownFlagAndCircuit) {
  const char* bad_flag[] = {"bin", "--bogus"};
  EXPECT_THROW((void)parse_bench_args(2, bad_flag), std::invalid_argument);
  const char* bad_circuit[] = {"bin", "--circuits=nosuch"};
  EXPECT_THROW((void)parse_bench_args(2, bad_circuit),
               std::invalid_argument);
}

TEST(Tables, AllPrintersProduceRows) {
  const std::vector<CircuitRun> runs = {sample_run()};
  for (const auto printer : {print_table1, print_table2, print_table3,
                             print_table4, print_table5}) {
    std::ostringstream out;
    printer(runs, out);
    EXPECT_NE(out.str().find("s298"), std::string::npos);
    EXPECT_GT(out.str().size(), 80u);
  }
  std::ostringstream md;
  write_markdown_report(runs, md);
  EXPECT_NE(md.str().find("| s298 |"), std::string::npos);
}

TEST(Tables, MarksInterruptedRows) {
  CircuitRun partial = sample_run();
  partial.completed = false;
  partial.stopped_at = "pipeline-atpg/phase3";
  for (const auto printer : {print_table1, print_table2, print_table3,
                             print_table4, print_table5}) {
    std::ostringstream out;
    printer({partial}, out);
    EXPECT_NE(out.str().find("s298!"), std::string::npos);
    EXPECT_NE(out.str().find("interrupted at pipeline-atpg/phase3"),
              std::string::npos);
  }
  // Completed rows stay unmarked.
  std::ostringstream clean;
  print_table1({sample_run()}, clean);
  EXPECT_EQ(clean.str().find("s298!"), std::string::npos);
  EXPECT_EQ(clean.str().find("interrupted"), std::string::npos);
}

TEST(Tables, Table3TotalsExcludeLarge) {
  CircuitRun small = sample_run();
  CircuitRun large = sample_run();
  large.name = "s35932";
  large.cyc_4_init = 1000000;  // would dominate the total if included
  std::ostringstream out;
  print_table3({small, large}, out);
  const std::string text = out.str();
  const std::size_t total_pos = text.find("total*");
  ASSERT_NE(total_pos, std::string::npos);
  EXPECT_EQ(text.find("1000374", total_pos), std::string::npos)
      << "total must not include s35932";
}

TEST(Runner, EndToEndWithCacheOnTinyCircuit) {
  // Use the smallest suite entry end-to-end, writing a real cache file.
  const auto entry = gen::find_suite_entry("b02");
  ASSERT_TRUE(entry.has_value());
  const std::string cache =
      (std::filesystem::temp_directory_path() / "scanc_test_cache").string();
  RunnerOptions opt;
  opt.cache_path = cache;
  opt.force_fresh = true;
  opt.random_t0_length = 200;  // keep the test quick
  const CircuitRun fresh = run_circuit(*entry, opt);
  EXPECT_EQ(fresh.name, "b02");
  EXPECT_GT(fresh.faults, 0u);
  EXPECT_GE(fresh.atpg.det_final, fresh.atpg.det_scan);
  EXPECT_GE(fresh.atpg.det_scan, fresh.atpg.det_t0);
  EXPECT_LE(fresh.atpg.cyc_comp, fresh.atpg.cyc_init);

  // Second call must hit the cache and reproduce the result.
  opt.force_fresh = false;
  const CircuitRun cached = run_circuit(*entry, opt);
  EXPECT_EQ(serialize_run(cached), serialize_run(fresh));
  std::filesystem::remove(cache + ".b02.seed1");
}

// The acceptance gate for the SAT backend: under --atpg=auto every
// fault the structural engine aborts on is resolved by SAT, so the
// measurement ends with zero unresolved classes and an exact
// detectable count.
TEST(Runner, AutoBackendLeavesNoAbortedFaults) {
  for (const char* name : {"b02", "s298"}) {
    const auto entry = gen::find_suite_entry(name);
    ASSERT_TRUE(entry.has_value());
    RunnerOptions opt;
    opt.cache_path.clear();  // in-memory: no cache, no journal
    opt.random_t0_length = 100;
    opt.run_dynamic_baseline = false;
    opt.atpg = atpg::AtpgBackend::Auto;
    const CircuitRun run = run_circuit(*entry, opt);
    EXPECT_TRUE(run.completed);
    EXPECT_EQ(run.aborted, 0u) << name;
    EXPECT_EQ(run.detectable, run.faults - run.proven_untestable) << name;
    // Everything the pipeline finally covers is within the detectable
    // universe.
    EXPECT_LE(run.atpg.det_final, run.detectable) << name;
  }
}

}  // namespace
}  // namespace scanc::expt
