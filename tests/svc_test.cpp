// Compaction service tests: JSON codec, wire framing, spec validation,
// and the daemon itself — hostile clients, overload shedding, typed
// failures, deadline cuts, and drain/restart resume (bit-identical).
//
// Daemon tests run the service in-process (Daemon::run on a thread
// talking over a real AF_UNIX socket), so they exercise the same code
// paths as scanc-serve without process management.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "svc/client.hpp"
#include "svc/daemon.hpp"
#include "svc/job.hpp"
#include "svc/json.hpp"
#include "svc/wire.hpp"
#include "util/cancel.hpp"

namespace scanc::svc {
namespace {

using util::CancelToken;
using util::Deadline;

// ---------------------------------------------------------------------
// JSON codec.

TEST(SvcJson, RoundTripsValues) {
  const char* cases[] = {
      "null",
      "true",
      "false",
      "0",
      "42",
      "18446744073709551615",  // u64 max, must stay exact
      "-1.5",
      "\"hello\"",
      "[]",
      "[1,2,3]",
      "{}",
      "{\"a\":1,\"b\":[true,null],\"c\":{\"d\":\"e\"}}",
  };
  for (const char* text : cases) {
    const Json parsed = Json::parse(text);
    EXPECT_EQ(Json::parse(parsed.dump()).dump(), parsed.dump()) << text;
  }
  EXPECT_EQ(Json::parse("18446744073709551615").as_u64(),
            18446744073709551615ULL);
}

TEST(SvcJson, DecodesEscapesAndSurrogatePairs) {
  EXPECT_EQ(Json::parse("\"\\u0041\\n\\t\\\"\\\\\"").as_string(),
            "A\n\t\"\\");
  // U+1F600 as a surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(Json::parse("\"\\uD83D\\uDE00\"").as_string(),
            "\xF0\x9F\x98\x80");
}

TEST(SvcJson, RejectsMalformedInput) {
  const char* bad[] = {
      "",       "{",         "[1,]",     "{\"a\":}", "nul",
      "tru",    "1 2",       "{} extra", "\"unterminated",
      "\"\\uD83D\"",  // lone high surrogate
      "{\"a\" 1}",
  };
  for (const char* text : bad) {
    EXPECT_THROW((void)Json::parse(text), JsonError) << text;
  }
  // Depth and size caps.
  std::string deep;
  for (int i = 0; i < 64; ++i) deep += '[';
  for (int i = 0; i < 64; ++i) deep += ']';
  EXPECT_THROW((void)Json::parse(deep, 32), JsonError);
  EXPECT_THROW((void)Json::parse("[1,2,3]", 32, 4), JsonError);
}

// ---------------------------------------------------------------------
// Wire framing.

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST(SvcWire, FrameRoundTrip) {
  SocketPair sp;
  const std::string msg = "{\"op\":\"ping\"}";
  write_frame(sp.a, msg, Deadline::after(1.0));
  std::string out;
  ASSERT_TRUE(read_frame(sp.b, out, Deadline::after(1.0)));
  EXPECT_EQ(out, msg);
  // Clean close -> EOF at the frame boundary, not an error.
  ::close(sp.a);
  sp.a = -1;
  EXPECT_FALSE(read_frame(sp.b, out, Deadline::after(1.0)));
}

TEST(SvcWire, RejectsOversizedLengthPrefix) {
  SocketPair sp;
  const unsigned char hdr[4] = {0x7F, 0xFF, 0xFF, 0xFF};  // ~2 GiB claim
  ASSERT_EQ(::send(sp.a, hdr, sizeof(hdr), 0), 4);
  std::string out;
  try {
    (void)read_frame(sp.b, out, Deadline::after(1.0));
    FAIL() << "oversized prefix accepted";
  } catch (const WireError& e) {
    EXPECT_EQ(e.kind(), WireError::Kind::TooLarge);
  }
}

TEST(SvcWire, DetectsTruncatedFrame) {
  SocketPair sp;
  const unsigned char hdr[4] = {0, 0, 0, 100};  // promise 100 bytes...
  ASSERT_EQ(::send(sp.a, hdr, sizeof(hdr), 0), 4);
  ASSERT_EQ(::send(sp.a, "short", 5, 0), 5);  // ...deliver 5, hang up
  ::close(sp.a);
  sp.a = -1;
  std::string out;
  try {
    (void)read_frame(sp.b, out, Deadline::after(1.0));
    FAIL() << "truncated frame accepted";
  } catch (const WireError& e) {
    EXPECT_EQ(e.kind(), WireError::Kind::Eof);
  }
}

// ---------------------------------------------------------------------
// Spec validation.

Json gen_obj(const std::string& name, std::size_t gates = 40,
             std::size_t flip_flops = 6) {
  Json g = Json::object();
  g.set("name", Json::string(name));
  g.set("inputs", Json::integer(4));
  g.set("outputs", Json::integer(4));
  g.set("flip_flops", Json::integer(flip_flops));
  g.set("gates", Json::integer(gates));
  g.set("seed", Json::integer(7));
  return g;
}

Json gen_spec(const std::string& id, std::size_t gates = 40,
              std::size_t t0 = 40, std::size_t flip_flops = 6) {
  Json s = Json::object();
  s.set("id", Json::string(id));
  s.set("kind", Json::string("gen"));
  s.set("gen", gen_obj("t-" + id, gates, flip_flops));
  s.set("t0_length", Json::integer(t0));
  return s;
}

TEST(SvcJob, SpecRoundTripsThroughJson) {
  const JobSpec spec = parse_job_spec(gen_spec("round-trip"));
  const JobSpec again = parse_job_spec(job_spec_json(spec));
  EXPECT_EQ(job_spec_json(again).dump(), job_spec_json(spec).dump());
  EXPECT_EQ(circuit_key(again), circuit_key(spec));
}

TEST(SvcJob, RejectsHostileSpecs) {
  const auto expect_bad = [](Json spec, const char* why) {
    try {
      (void)parse_job_spec(spec);
      FAIL() << why;
    } catch (const JobError& e) {
      EXPECT_EQ(e.kind(), JobErrorKind::BadRequest) << why;
    }
  };
  Json traversal = gen_spec("x");
  traversal.set("id", Json::string("../../etc/passwd"));
  expect_bad(std::move(traversal), "path-traversal id");

  Json unknown = gen_spec("x");
  unknown.set("bogus_knob", Json::integer(1));
  expect_bad(std::move(unknown), "unknown key");

  Json oversize = Json::object();
  oversize.set("id", Json::string("x"));
  oversize.set("kind", Json::string("gen"));
  Json g = gen_obj("t-x");
  g.set("gates", Json::integer(10'000'000));
  oversize.set("gen", std::move(g));
  expect_bad(std::move(oversize), "gates over cap");

  Json suite = Json::object();
  suite.set("id", Json::string("x"));
  suite.set("kind", Json::string("suite"));
  suite.set("circuit", Json::string("no-such-circuit"));
  try {
    (void)job_entry(parse_job_spec(suite));
    FAIL() << "unknown suite circuit";
  } catch (const JobError& e) {
    EXPECT_EQ(e.kind(), JobErrorKind::BadRequest);
  }
}

// ---------------------------------------------------------------------
// Daemon harness.

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/scanc_svc_XXXXXX";
    path = ::mkdtemp(tmpl);
    EXPECT_FALSE(path.empty());
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

/// Runs Daemon::run on a thread; stop() drains and returns the open
/// (re-queued) job count.
class DaemonHarness {
 public:
  explicit DaemonHarness(DaemonOptions options)
      : shutdown_(CancelToken::make()), daemon_(std::move(options)) {
    thread_ = std::thread([this] { open_ = daemon_.run(shutdown_); });
  }
  ~DaemonHarness() {
    if (thread_.joinable()) stop();
  }

  std::size_t stop() {
    shutdown_.request_stop();
    thread_.join();
    return open_;
  }

 private:
  CancelToken shutdown_;
  Daemon daemon_;
  std::thread thread_;
  std::size_t open_ = 0;
};

DaemonOptions fast_options(const TempDir& dir, std::size_t executors = 2,
                           std::size_t max_queue = 8) {
  DaemonOptions opt;
  opt.socket_path = dir.path + "/s.sock";
  opt.state_dir = dir.path + "/state";
  std::filesystem::create_directories(opt.state_dir);
  opt.executors = executors;
  opt.max_queue = max_queue;
  opt.backoff_initial_seconds = 0.01;
  opt.backoff_max_seconds = 0.05;
  return opt;
}

std::string wait_state(Client& client, const std::string& id,
                       double seconds = 60.0) {
  const Json resp = client.wait(id, seconds);
  const Json* job = resp.find("job");
  if (job == nullptr) return "<no job>";
  return job->find("state")->as_string();
}

// ---------------------------------------------------------------------
// Daemon behavior.

TEST(SvcDaemon, SubmitWaitDoneAndIdempotentResubmit) {
  TempDir dir;
  DaemonOptions opt = fast_options(dir);
  const std::string socket = opt.socket_path;
  DaemonHarness harness(std::move(opt));

  Client client;
  client.connect(socket);
  EXPECT_TRUE(client.ping());

  const Json sub = client.submit_raw(gen_spec("j1"));
  EXPECT_TRUE(sub.find("accepted")->as_bool());
  EXPECT_EQ(wait_state(client, "j1"), "done");

  const Json status = client.status("j1");
  const Json* job = status.find("job");
  ASSERT_NE(job, nullptr);
  const Json* result = job->find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_GT(result->find("faults")->as_u64(), 0u);

  // Same id again: idempotent, reports the existing (terminal) job.
  const Json again = client.submit_raw(gen_spec("j1"));
  EXPECT_TRUE(again.find("accepted")->as_bool());
  EXPECT_TRUE(again.find("existing")->as_bool());
  EXPECT_EQ(again.find("state")->as_string(), "done");

  // Unknown job id is a typed not_found, not a hang.
  const Json missing = client.status("nope");
  EXPECT_FALSE(missing.find("ok")->as_bool());
  EXPECT_EQ(missing.find("kind")->as_string(), "not_found");
}

TEST(SvcDaemon, HostileClientsCannotKillTheDaemon) {
  TempDir dir;
  DaemonOptions opt = fast_options(dir);
  const std::string socket = opt.socket_path;
  DaemonHarness harness(std::move(opt));

  {  // Garbage JSON in a well-formed frame: typed protocol error, and
     // the connection survives for the next request.
    Client client;
    client.connect(socket);
    write_frame(client.fd(), "this is not json", Deadline::after(1.0));
    std::string payload;
    ASSERT_TRUE(read_frame(client.fd(), payload, Deadline::after(5.0)));
    const Json resp = Json::parse(payload);
    EXPECT_FALSE(resp.find("ok")->as_bool());
    EXPECT_EQ(resp.find("kind")->as_string(), "protocol");
    EXPECT_TRUE(client.ping());
  }
  {  // Oversized length prefix: the daemon reports and closes.
    Client client;
    client.connect(socket);
    const unsigned char hdr[4] = {0x7F, 0xFF, 0xFF, 0xFF};
    ASSERT_EQ(::send(client.fd(), hdr, sizeof(hdr), MSG_NOSIGNAL), 4);
    std::string payload;
    try {
      if (read_frame(client.fd(), payload, Deadline::after(5.0))) {
        EXPECT_FALSE(Json::parse(payload).find("ok")->as_bool());
      }
    } catch (const WireError&) {
      // Server may close before the error frame is readable; fine.
    }
  }
  {  // Truncated frame then hangup mid-payload.
    Client client;
    client.connect(socket);
    const unsigned char hdr[4] = {0, 0, 0, 100};
    ASSERT_EQ(::send(client.fd(), hdr, sizeof(hdr), MSG_NOSIGNAL), 4);
    ASSERT_EQ(::send(client.fd(), "short", 5, MSG_NOSIGNAL), 5);
    client.close();
  }
  {  // Mid-job disconnect: the job is daemon-owned and completes anyway.
    Client client;
    client.connect(socket);
    EXPECT_TRUE(client.submit_raw(gen_spec("orphan"))
                    .find("accepted")
                    ->as_bool());
    client.close();
  }
  // After all of the above the daemon still serves.
  Client client;
  client.connect(socket);
  EXPECT_TRUE(client.ping());
  EXPECT_EQ(wait_state(client, "orphan"), "done");
}

TEST(SvcDaemon, BadSpecsFailTypedWithoutSideEffects) {
  TempDir dir;
  DaemonOptions opt = fast_options(dir);
  const std::string socket = opt.socket_path;
  DaemonHarness harness(std::move(opt));

  Client client;
  client.connect(socket);

  Json traversal = gen_spec("ok-id");
  traversal.set("id", Json::string("../../etc/passwd"));
  const Json r1 = client.submit_raw(std::move(traversal));
  EXPECT_FALSE(r1.find("ok")->as_bool());
  EXPECT_EQ(r1.find("kind")->as_string(), "bad_request");

  Json unknown_circuit = Json::object();
  unknown_circuit.set("id", Json::string("u1"));
  unknown_circuit.set("kind", Json::string("suite"));
  unknown_circuit.set("circuit", Json::string("no-such-circuit"));
  const Json r2 = client.submit_raw(std::move(unknown_circuit));
  EXPECT_FALSE(r2.find("ok")->as_bool());
  EXPECT_EQ(r2.find("kind")->as_string(), "bad_request");

  // Neither rejected spec left a job behind.
  const Json stats = client.stats();
  EXPECT_EQ(stats.find("jobs")->as_u64(), 0u);
  EXPECT_TRUE(client.ping());
}

TEST(SvcDaemon, OverloadShedsLowestPriorityAndRejectsEqual) {
  TempDir dir;
  DaemonOptions opt = fast_options(dir, /*executors=*/1, /*max_queue=*/1);
  const std::string socket = opt.socket_path;
  DaemonHarness harness(std::move(opt));

  Client client;
  client.connect(socket);

  // A ~20s job occupies the single executor while we probe admission
  // (the probes take microseconds; teardown drain-cancels the job).
  Json slow = gen_spec("slow", /*gates=*/600, /*t0=*/500, /*flip_flops=*/24);
  slow.set("priority", Json::integer(9));
  EXPECT_TRUE(client.submit_raw(std::move(slow)).find("accepted")->as_bool());
  // Wait for the executor to take it so the queue is actually empty.
  for (int i = 0; i < 1000; ++i) {
    const Json status = client.status("slow");
    const Json* job = status.find("job");
    ASSERT_NE(job, nullptr);
    if (job->find("state")->as_string() == "running") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  Json low = gen_spec("low-pri");
  low.set("priority", Json::integer(0));
  EXPECT_TRUE(client.submit_raw(std::move(low)).find("accepted")->as_bool());

  // Higher-priority arrival displaces the queued priority-0 job...
  Json high = gen_spec("high-pri");
  high.set("priority", Json::integer(3));
  EXPECT_TRUE(client.submit_raw(std::move(high)).find("accepted")->as_bool());

  const Json shed = client.status("low-pri");
  const Json* shed_job = shed.find("job");
  ASSERT_NE(shed_job, nullptr);
  EXPECT_EQ(shed_job->find("state")->as_string(), "shed");
  EXPECT_EQ(shed_job->find("error_kind")->as_string(), "shed");

  // ...but an equal-priority arrival is rejected, not churned.
  Json equal = gen_spec("equal-pri");
  equal.set("priority", Json::integer(3));
  const Json rej = client.submit_raw(std::move(equal));
  EXPECT_FALSE(rej.find("accepted")->as_bool());
  EXPECT_EQ(rej.find("reason")->as_string(), "queue_full");
}

TEST(SvcDaemon, PerJobDeadlineCutsTyped) {
  TempDir dir;
  DaemonOptions opt = fast_options(dir);
  opt.watchdog_interval_seconds = 0.01;
  const std::string socket = opt.socket_path;
  DaemonHarness harness(std::move(opt));

  Client client;
  client.connect(socket);
  Json spec =
      gen_spec("doomed", /*gates=*/600, /*t0=*/500, /*flip_flops=*/24);
  spec.set("deadline_seconds", Json::number(0.02));
  EXPECT_TRUE(client.submit_raw(std::move(spec)).find("accepted")->as_bool());

  EXPECT_EQ(wait_state(client, "doomed"), "failed");
  const Json status = client.status("doomed");
  const Json* job = status.find("job");
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->find("error_kind")->as_string(), "deadline_exceeded");
}

namespace {

std::string normalized_result(const Json& job) {
  const Json* result = job.find("result");
  if (result == nullptr) return "<no result>";
  Json copy = *result;
  copy.set("seconds", Json::number(0.0));  // the one wall-clock field
  return copy.dump();
}

}  // namespace

TEST(SvcDaemon, DrainAndRestartResumesBitIdentically) {
  // ~5s uninterrupted: slow enough that the drain lands mid-run, fast
  // enough for CI.
  const Json spec =
      gen_spec("resume-me", /*gates=*/400, /*t0=*/300, /*flip_flops=*/16);

  // Reference: the same job run to completion with no interruption.
  std::string reference;
  {
    TempDir ref_dir;
    DaemonOptions opt = fast_options(ref_dir);
    const std::string socket = opt.socket_path;
    DaemonHarness harness(std::move(opt));
    Client client;
    client.connect(socket);
    EXPECT_TRUE(client.submit_raw(spec).find("accepted")->as_bool());
    ASSERT_EQ(wait_state(client, "resume-me", 120.0), "done");
    reference = normalized_result(*client.status("resume-me").find("job"));
  }

  TempDir dir;
  DaemonOptions opt = fast_options(dir);
  const std::string socket = opt.socket_path;
  const std::string state_dir = opt.state_dir;

  // Generation 1: submit, let the job start, then drain mid-run.
  {
    DaemonOptions gen1 = opt;
    DaemonHarness harness(std::move(gen1));
    Client client;
    client.connect(socket);
    EXPECT_TRUE(client.submit_raw(spec).find("accepted")->as_bool());
    for (int i = 0; i < 500; ++i) {
      const Json status = client.status("resume-me");
      const Json* job = status.find("job");
      ASSERT_NE(job, nullptr);
      if (job->find("state")->as_string() != "queued") break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    client.close();
    harness.stop();  // drain: snapshot written, job re-queued (or done)
  }

  // Generation 2: same state dir resumes and finishes the job.
  {
    DaemonOptions gen2 = opt;
    DaemonHarness harness(std::move(gen2));
    Client client;
    client.connect(socket);
    ASSERT_EQ(wait_state(client, "resume-me", 120.0), "done");
    const std::string resumed =
        normalized_result(*client.status("resume-me").find("job"));
    EXPECT_EQ(resumed, reference);
  }
}

TEST(SvcDaemon, SharedRegistryReusesCircuitsAcrossJobs) {
  TempDir dir;
  DaemonOptions opt = fast_options(dir);
  const std::string socket = opt.socket_path;
  DaemonHarness harness(std::move(opt));

  Client client;
  client.connect(socket);
  // Two jobs over the same generated circuit (different measurement
  // seeds) must share one parsed circuit via the registry.
  Json a = gen_spec("reg-a");
  Json b = Json::object();
  b.set("id", Json::string("reg-b"));
  b.set("kind", Json::string("gen"));
  b.set("gen", gen_obj("t-reg-a"));  // same circuit key as reg-a
  b.set("t0_length", Json::integer(40));
  b.set("seed", Json::integer(2));
  EXPECT_TRUE(client.submit_raw(std::move(a)).find("accepted")->as_bool());
  EXPECT_EQ(wait_state(client, "reg-a"), "done");
  EXPECT_TRUE(client.submit_raw(std::move(b)).find("accepted")->as_bool());
  EXPECT_EQ(wait_state(client, "reg-b"), "done");

  const Json stats = client.stats();
  EXPECT_GE(stats.find("registry_circuits")->as_u64(), 1u);
  const Json* counters = stats.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GE(counters->find("registry_circuit_hits")->as_u64(), 1u);
}

// ---------------------------------------------------------------------
// Live introspection: the watch stream and events replay.

/// Reads stream frames until the end frame (or `max_frames`), recording
/// event frames and dropped markers.
struct StreamCapture {
  std::vector<Json> events;
  std::vector<std::uint64_t> dropped_markers;
  Json end = Json::object();
  bool ended = false;
};

StreamCapture read_stream(Client& client, std::size_t max_frames = 4096) {
  StreamCapture cap;
  for (std::size_t i = 0; i < max_frames; ++i) {
    auto frame = client.next_frame(30.0);
    if (!frame) break;
    if (frame->find("end") != nullptr) {
      cap.end = std::move(*frame);
      cap.ended = true;
      break;
    }
    if (const Json* d = frame->find("dropped")) {
      cap.dropped_markers.push_back(d->as_u64());
      continue;
    }
    const Json* ev = frame->find("event");
    if (ev == nullptr) {
      ADD_FAILURE() << "unexpected stream frame: " << frame->dump();
      break;
    }
    cap.events.push_back(*ev);
  }
  return cap;
}

TEST(SvcWatch, LiveStreamIsOrderedAndGapFreeOrMarked) {
  TempDir dir;
  DaemonOptions opt = fast_options(dir);
  opt.event_history = 4096;  // replay covers events before the attach
  opt.watch_queue_capacity = 65536;  // no shedding: assert true gap-freedom
  const std::string socket = opt.socket_path;
  DaemonHarness harness(std::move(opt));

  Client submitter;
  submitter.connect(socket);
  ASSERT_TRUE(
      submitter.submit_raw(gen_spec("w1", 60, 80)).find("accepted")->as_bool());

  Client watcher;
  watcher.connect(socket);
  const Json ack = watcher.watch_start("w1");
  ASSERT_NE(ack.find("ok"), nullptr) << ack.dump();
  ASSERT_TRUE(ack.find("ok")->as_bool()) << ack.dump();
  EXPECT_EQ(ack.find("op")->as_string(), "watch");

  StreamCapture cap = read_stream(watcher);
  ASSERT_TRUE(cap.ended) << "stream must end when the job is terminal";
  EXPECT_EQ(cap.end.find("state")->as_string(), "done");
  ASSERT_FALSE(cap.events.empty());

  // Sequence numbers are strictly increasing and gap-free unless an
  // explicit dropped marker accounted for the hole (acceptance
  // criterion).  With a huge history ring and a fast consumer there
  // should be no marker at all, so the stream starts at seq 1.
  ASSERT_TRUE(cap.dropped_markers.empty());
  std::uint64_t expected = 1;
  std::map<std::string, int> phase_depth;  // open begins per phase path
  bool saw_phase_begin = false;
  bool saw_phase_end = false;
  bool saw_round = false;
  bool saw_done_state = false;
  for (const Json& ev : cap.events) {
    EXPECT_EQ(ev.find("job")->as_string(), "w1");
    EXPECT_EQ(ev.find("seq")->as_u64(), expected)
        << "gap in the event sequence at " << ev.dump();
    ++expected;
    const std::string kind = ev.find("kind")->as_string();
    const std::string phase = ev.find("phase")->as_string();
    if (kind == "phase_begin") {
      ++phase_depth[phase];
      if (phase == "phase1+2") saw_phase_begin = true;
    } else if (kind == "phase_end") {
      // Every end closes a previously streamed begin of the same phase.
      EXPECT_GT(phase_depth[phase], 0)
          << "phase_end without a begin: " << ev.dump();
      --phase_depth[phase];
      if (phase == "phase1+2") saw_phase_end = true;
    } else if (kind == "round") {
      saw_round = true;
      EXPECT_GT(phase_depth["phase1+2"], 0)
          << "rounds happen inside an open phase1+2";
    } else if (kind == "job_state" &&
               ev.find("note")->as_string() == "done") {
      saw_done_state = true;
    }
  }
  EXPECT_TRUE(saw_phase_begin);
  EXPECT_TRUE(saw_phase_end);
  EXPECT_TRUE(saw_round);
  EXPECT_TRUE(saw_done_state);

  // The stream ended cleanly: the same connection serves requests again.
  EXPECT_TRUE(watcher.ping());
}

TEST(SvcWatch, FinishedJobRepliesReplayWithDroppedMarker) {
  TempDir dir;
  DaemonOptions opt = fast_options(dir);
  // A tiny ring guarantees overflow, so the replay must carry an
  // explicit dropped marker — the deterministic shed path.
  opt.event_history = 4;
  const std::string socket = opt.socket_path;
  DaemonHarness harness(std::move(opt));

  Client client;
  client.connect(socket);
  ASSERT_TRUE(
      client.submit_raw(gen_spec("old")).find("accepted")->as_bool());
  ASSERT_EQ(wait_state(client, "old"), "done");

  Client watcher;
  watcher.connect(socket);
  const Json ack = watcher.watch_start("old");
  ASSERT_TRUE(ack.find("ok")->as_bool()) << ack.dump();
  EXPECT_FALSE(ack.find("live")->as_bool());

  StreamCapture cap = read_stream(watcher);
  ASSERT_TRUE(cap.ended);
  EXPECT_LE(cap.events.size(), 4u) << "replay is bounded by the ring";
  ASSERT_FALSE(cap.dropped_markers.empty())
      << "ring overflow must surface as a dropped marker";
  EXPECT_GT(cap.dropped_markers.front(), 0u);
  // Post-marker events are still ordered and contiguous.
  for (std::size_t i = 1; i < cap.events.size(); ++i) {
    EXPECT_EQ(cap.events[i].find("seq")->as_u64(),
              cap.events[i - 1].find("seq")->as_u64() + 1);
  }
}

TEST(SvcWatch, UnknownJobIsTypedErrorAndConnectionSurvives) {
  TempDir dir;
  DaemonOptions opt = fast_options(dir);
  const std::string socket = opt.socket_path;
  DaemonHarness harness(std::move(opt));

  Client client;
  client.connect(socket);
  const Json resp = client.watch_start("no-such-job");
  ASSERT_NE(resp.find("ok"), nullptr);
  EXPECT_FALSE(resp.find("ok")->as_bool());
  EXPECT_EQ(resp.find("kind")->as_string(), "not_found");
  // The typed miss is a single response frame, not a dead stream.
  EXPECT_TRUE(client.ping());
}

TEST(SvcWatch, VanishingSubscriberDoesNotStallTheJob) {
  TempDir dir;
  DaemonOptions opt = fast_options(dir);
  const std::string socket = opt.socket_path;
  DaemonHarness harness(std::move(opt));

  Client submitter;
  submitter.connect(socket);
  ASSERT_TRUE(
      submitter.submit_raw(gen_spec("v1", 60, 80)).find("accepted")->as_bool());

  // Attach a watcher and vanish without reading a single stream frame.
  {
    Client watcher;
    watcher.connect(socket);
    (void)watcher.watch_start("v1");
  }  // destructor closes the fd mid-stream

  // The job still completes and the daemon still serves.
  EXPECT_EQ(wait_state(submitter, "v1", 120.0), "done");
  EXPECT_TRUE(submitter.ping());
}

TEST(SvcWatch, AllJobsStreamEndsOnDrain) {
  TempDir dir;
  DaemonOptions opt = fast_options(dir);
  const std::string socket = opt.socket_path;
  auto harness = std::make_unique<DaemonHarness>(std::move(opt));

  Client submitter;
  submitter.connect(socket);
  ASSERT_TRUE(
      submitter.submit_raw(gen_spec("d1")).find("accepted")->as_bool());
  ASSERT_EQ(wait_state(submitter, "d1"), "done");

  Client watcher;
  watcher.connect(socket);
  const Json ack = watcher.watch_start("*");
  ASSERT_TRUE(ack.find("ok")->as_bool()) << ack.dump();

  std::thread stopper([&] { harness->stop(); });
  // The wildcard stream ends with a draining end frame, not a cut.
  bool saw_drain_end = false;
  for (int i = 0; i < 4096 && !saw_drain_end; ++i) {
    std::optional<Json> frame;
    try {
      frame = watcher.next_frame(30.0);
    } catch (const WireError&) {
      break;  // acceptable: connection torn down by process exit timing
    }
    if (!frame) break;
    if (frame->find("end") != nullptr) {
      const Json* reason = frame->find("reason");
      saw_drain_end =
          reason != nullptr && reason->as_string() == "draining";
    }
  }
  stopper.join();
  EXPECT_TRUE(saw_drain_end);
}

TEST(SvcEvents, BoundedReplayVerbAndTypedMiss) {
  TempDir dir;
  DaemonOptions opt = fast_options(dir);
  opt.event_history = 16;
  const std::string socket = opt.socket_path;
  DaemonHarness harness(std::move(opt));

  Client client;
  client.connect(socket);
  ASSERT_TRUE(client.submit_raw(gen_spec("e1")).find("accepted")->as_bool());
  ASSERT_EQ(wait_state(client, "e1"), "done");

  const Json resp = client.events("e1");
  ASSERT_TRUE(resp.find("ok")->as_bool()) << resp.dump();
  EXPECT_EQ(resp.find("op")->as_string(), "events");
  const Json* events = resp.find("events");
  ASSERT_NE(events, nullptr);
  EXPECT_FALSE(events->items().empty());
  EXPECT_LE(events->items().size(), 16u);
  // Every replayed event is schema-complete.
  for (const Json& ev : events->items()) {
    EXPECT_NE(ev.find("kind"), nullptr);
    EXPECT_NE(ev.find("seq"), nullptr);
    EXPECT_NE(ev.find("t_us"), nullptr);
  }

  const Json miss = client.events("never-submitted");
  EXPECT_FALSE(miss.find("ok")->as_bool());
  EXPECT_EQ(miss.find("kind")->as_string(), "not_found");
}

}  // namespace
}  // namespace scanc::svc
