// End-to-end integration tests: the full experiment flow on small suite
// circuits, asserting the invariants that must hold regardless of the
// synthetic-circuit substitution (see DESIGN.md §3 "expected shape").
#include <gtest/gtest.h>

#include "atpg/comb_tset.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "gen/suite.hpp"
#include "tcomp/baselines.hpp"
#include "tcomp/pipeline.hpp"
#include "tgen/greedy_tgen.hpp"
#include "tgen/random_seq.hpp"

namespace scanc {
namespace {

using fault::FaultList;
using fault::FaultSet;
using fault::FaultSimulator;

struct FlowResult {
  netlist::Circuit circuit;
  FaultList faults;
  std::unique_ptr<FaultSimulator> fsim;
  atpg::CombTestSet comb;
  tcomp::PipelineResult pipeline;
  tcomp::ScanTestSet b4_init;
  tcomp::CombineResult b4_comp;
};

FlowResult run_flow(const std::string& name, bool random_t0) {
  const auto entry = gen::find_suite_entry(name);
  EXPECT_TRUE(entry.has_value());
  FlowResult r{gen::build_suite_circuit(*entry), FaultList{}, nullptr,
               {}, {}, {}, {}};
  r.faults = FaultList::build(r.circuit);
  r.fsim = std::make_unique<FaultSimulator>(r.circuit, r.faults);
  r.comb = atpg::generate_comb_test_set(r.circuit, r.faults, {});
  sim::Sequence t0;
  if (random_t0) {
    t0 = tgen::random_test_sequence(r.circuit, 300, 1);
  } else {
    tgen::GreedyTgenOptions gopt;
    gopt.max_length = 400;
    t0 = tgen::generate_test_sequence(r.circuit, r.faults, gopt).sequence;
  }
  r.pipeline = tcomp::run_pipeline(*r.fsim, t0, r.comb.tests);
  r.b4_init = tcomp::comb_initial_set(r.comb.tests);
  r.b4_comp = tcomp::combine_tests(*r.fsim, r.b4_init);
  return r;
}

class SuiteFlow : public ::testing::TestWithParam<const char*> {};

TEST_P(SuiteFlow, PaperShapeInvariants) {
  const FlowResult r = run_flow(GetParam(), /*random_t0=*/false);
  const std::size_t nsv = r.circuit.num_flip_flops();

  // Table 1 shape: det(T0) <= det(tau_seq) <= det(final).
  EXPECT_LE(r.pipeline.f0.count(), r.pipeline.f_seq.count());
  EXPECT_LE(r.pipeline.f_seq.count(), r.pipeline.final_coverage.count());

  // The final test set achieves complete coverage of every fault that
  // tau_seq or C detects.
  const FaultSet want = r.pipeline.f_seq | r.comb.detected;
  EXPECT_TRUE(r.pipeline.final_coverage.contains(want));

  // The [4] baseline preserves its own coverage through combining.
  FaultSet before = tcomp::coverage(*r.fsim, r.b4_init);
  FaultSet after = tcomp::coverage(*r.fsim, r.b4_comp.tests);
  EXPECT_TRUE(after.contains(before));

  // Both procedures' compaction steps never increase test time.
  EXPECT_LE(tcomp::clock_cycles(r.pipeline.compacted, nsv),
            tcomp::clock_cycles(r.pipeline.initial, nsv));
  EXPECT_LE(tcomp::clock_cycles(r.b4_comp.tests, nsv),
            tcomp::clock_cycles(r.b4_init, nsv));

  // Table 4 shape: the proposed set's at-speed sequences are longer on
  // average than the [4] baseline's (the paper's at-speed claim) — the
  // baseline starts from length-one tests, the proposed set from
  // tau_seq, so this holds by construction whenever tau_seq is longer
  // than one vector.
  if (r.pipeline.tau_seq.seq.length() > 1) {
    const auto prop = tcomp::at_speed_stats(r.pipeline.compacted);
    const auto base = tcomp::at_speed_stats(r.b4_comp.tests);
    EXPECT_GT(prop.max_length, base.max_length);
  }

  // Both final sets detect the same fault universe (complete coverage of
  // C's detectable faults).
  EXPECT_TRUE(r.pipeline.final_coverage.contains(r.comb.detected));
}

INSTANTIATE_TEST_SUITE_P(Circuits, SuiteFlow,
                         ::testing::Values("s298", "s344", "b01", "b06"));

TEST(SuiteFlowRandom, RandomT0VariantInvariants) {
  const FlowResult r = run_flow("s298", /*random_t0=*/true);
  // Table 5 shape: the procedure still reaches complete coverage of C's
  // detectable faults from a plain random T0.
  EXPECT_TRUE(r.pipeline.final_coverage.contains(r.comb.detected));
  // And tau_seq is far shorter than the length-300 random T0.
  EXPECT_LT(r.pipeline.tau_seq.seq.length(), 300u);
}

TEST(SuiteFlowDeterminism, SameSeedSameTables) {
  const FlowResult a = run_flow("b06", false);
  const FlowResult b = run_flow("b06", false);
  EXPECT_EQ(a.pipeline.tau_seq.seq, b.pipeline.tau_seq.seq);
  EXPECT_EQ(a.pipeline.added_tests, b.pipeline.added_tests);
  EXPECT_EQ(
      tcomp::clock_cycles(a.pipeline.compacted, a.circuit.num_flip_flops()),
      tcomp::clock_cycles(b.pipeline.compacted, b.circuit.num_flip_flops()));
}

}  // namespace
}  // namespace scanc
