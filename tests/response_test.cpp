#include <gtest/gtest.h>

#include <sstream>

#include "gen/embedded.hpp"
#include "sim/seq_sim.hpp"
#include "tcomp/response.hpp"

namespace scanc::tcomp {
namespace {

using netlist::Circuit;

TEST(Response, S27HandComputedValues) {
  const Circuit c = gen::make_s27();
  ScanTest t;
  t.scan_in = sim::vector3_from_string("000");
  t.seq.frames.push_back(sim::vector3_from_string("1111"));
  t.seq.frames.push_back(sim::vector3_from_string("0000"));
  const TestResponse r = expected_response(c, t);
  // Same values as the SeqSim hand-computed test, but with a known
  // initial state instead of all-X.
  ASSERT_EQ(r.outputs.size(), 2u);
  EXPECT_EQ(sim::to_string(r.outputs[0]), "1");
  EXPECT_EQ(sim::to_string(r.scan_out), "000");
}

TEST(Response, ScanOutMatchesSimulatorFinalState) {
  const Circuit c = gen::make_s27();
  ScanTest t;
  t.scan_in = sim::vector3_from_string("101");
  for (const char* v : {"1010", "0110", "1100"}) {
    t.seq.frames.push_back(sim::vector3_from_string(v));
  }
  const TestResponse r = expected_response(c, t);
  const sim::Trace trace = sim::simulate_fault_free(c, &t.scan_in, t.seq);
  EXPECT_EQ(r.scan_out, trace.states.back());
  ASSERT_EQ(r.outputs.size(), 3u);
  for (int u = 0; u < 3; ++u) {
    EXPECT_EQ(r.outputs[u], trace.po_frames[u]);
  }
}

TEST(Response, BatchMatchesIndividual) {
  const Circuit c = gen::make_s27();
  ScanTestSet set;
  ScanTest a;
  a.scan_in = sim::vector3_from_string("111");
  a.seq.frames.push_back(sim::vector3_from_string("0000"));
  ScanTest b;
  b.scan_in = sim::vector3_from_string("010");
  b.seq.frames.push_back(sim::vector3_from_string("1111"));
  b.seq.frames.push_back(sim::vector3_from_string("0101"));
  set.tests = {a, b};
  const std::vector<TestResponse> rs = expected_responses(c, set);
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_EQ(rs[0].scan_out, expected_response(c, a).scan_out);
  EXPECT_EQ(rs[1].scan_out, expected_response(c, b).scan_out);
}

TEST(Response, TestProgramFormat) {
  const Circuit c = gen::make_s27();
  ScanTestSet set;
  ScanTest t;
  t.scan_in = sim::vector3_from_string("000");
  t.seq.frames.push_back(sim::vector3_from_string("1111"));
  set.tests = {t};
  std::ostringstream out;
  write_test_program(c, set, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("test 0\n"), std::string::npos);
  EXPECT_NE(text.find("scanin 000\n"), std::string::npos);
  EXPECT_NE(text.find("vector 1111 expect 1\n"), std::string::npos);
  EXPECT_NE(text.find("scanout "), std::string::npos);
}

TEST(Response, PartialScanInYieldsXWhereUndetermined) {
  // An X scan-in bit (unscanned flip-flop) propagates X into the
  // response wherever the logic depends on it.
  const Circuit c = gen::make_s27();
  ScanTest t;
  t.scan_in = sim::vector3_from_string("xx0");  // G5, G6 unknown
  t.seq.frames.push_back(sim::vector3_from_string("0000"));
  const TestResponse r = expected_response(c, t);
  // G17 = NOT(NOR(G5, G9)): with G5 = X and G9 = NAND(G16, G15) where
  // G12 = NOR(0, G7=0) = 1 -> G15 = 1, G16 = OR(0, G8); G8 = AND(1, G6=X)
  // = X -> G16 = X -> G9 = NAND(X, 1) = X -> G11 = NOR(X, X) = X.
  EXPECT_EQ(sim::to_string(r.outputs[0]), "x");
}

TEST(Response, EmptySequenceYieldsXScanOut) {
  const Circuit c = gen::make_s27();
  ScanTest t;
  t.scan_in = sim::vector3_from_string("000");
  const TestResponse r = expected_response(c, t);
  EXPECT_TRUE(r.outputs.empty());
  EXPECT_EQ(sim::to_string(r.scan_out), "xxx");
}

}  // namespace
}  // namespace scanc::tcomp
