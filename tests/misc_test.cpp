// Cross-cutting tests for smaller API surfaces: engine save/restore,
// test-set serialization, multi-chain metrics, and writer edge cases.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "gen/embedded.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/bench_writer.hpp"
#include "sim/seq_sim.hpp"
#include "tcomp/scan_test.hpp"
#include "tgen/random_seq.hpp"
#include "util/rng.hpp"

namespace scanc {
namespace {

TEST(SeqSimState, SaveRestoreResumesExactly) {
  const netlist::Circuit c = gen::make_s27();
  const sim::Sequence seq = tgen::random_test_sequence(c, 12, 3);

  // Reference: straight-through simulation.
  const sim::Trace ref = sim::simulate_fault_free(c, nullptr, seq);

  // Split run: simulate 6 frames, save, continue on a second engine.
  sim::PackedSeqSim a(c);
  a.reset();
  for (int t = 0; t < 6; ++t) {
    a.apply_frame(seq.frames[t]);
    a.latch();
  }
  std::vector<sim::PackedV3> saved(c.num_flip_flops());
  a.get_ff_values(saved);

  sim::PackedSeqSim b(c);
  b.reset();
  b.set_ff_values(saved);
  for (std::size_t t = 6; t < seq.length(); ++t) {
    b.apply_frame(seq.frames[t]);
    EXPECT_EQ(sim::to_string(b.outputs_slot(0)),
              sim::to_string(ref.po_frames[t]))
        << "frame " << t;
    b.latch();
  }
  EXPECT_EQ(sim::to_string(b.state_slot(0)),
            sim::to_string(ref.states.back()));
}

TEST(SeqSimState, CapturedTracksLatchedDValues) {
  const netlist::Circuit c = gen::make_s27();
  sim::PackedSeqSim s(c);
  s.reset();
  s.load_state(sim::vector3_from_string("000"));
  s.apply_frame(sim::vector3_from_string("1111"));
  s.latch();
  // Hand-computed: state after all-ones from 000 is (1,0,0).
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(sim::slot(s.captured(static_cast<std::size_t>(i)), 0),
              i == 0 ? sim::V3::One : sim::V3::Zero);
  }
}

TEST(TestSetWriter, EmitsAllTestsInOrder) {
  tcomp::ScanTestSet set;
  tcomp::ScanTest a;
  a.scan_in = sim::vector3_from_string("01");
  a.seq.frames.push_back(sim::vector3_from_string("110"));
  tcomp::ScanTest b;
  b.scan_in = sim::vector3_from_string("10");
  b.seq.frames.push_back(sim::vector3_from_string("000"));
  b.seq.frames.push_back(sim::vector3_from_string("111"));
  set.tests = {a, b};
  std::ostringstream out;
  tcomp::write_test_set(set, out);
  EXPECT_EQ(out.str(),
            "test 0\nscanin 01\nvector 110\n"
            "test 1\nscanin 10\nvector 000\nvector 111\n");
}

TEST(MultiChainCycles, FormulaAndMonotonicity) {
  tcomp::ScanTestSet set;
  tcomp::ScanTest t;
  t.seq.frames.assign(5, sim::Vector3(2, sim::V3::Zero));
  set.tests.assign(3, t);
  // (k+1)*ceil(nsv/chains) + sum L: k=3, nsv=10, sumL=15.
  EXPECT_EQ(tcomp::clock_cycles(set, 10, 1), 4 * 10 + 15u);
  EXPECT_EQ(tcomp::clock_cycles(set, 10, 2), 4 * 5 + 15u);
  EXPECT_EQ(tcomp::clock_cycles(set, 10, 3), 4 * 4 + 15u);
  EXPECT_EQ(tcomp::clock_cycles(set, 10, 16), 4 * 1 + 15u);
  // More chains never increase the time.
  std::uint64_t prev = tcomp::clock_cycles(set, 10, 1);
  for (std::size_t chains = 2; chains <= 12; ++chains) {
    const std::uint64_t now = tcomp::clock_cycles(set, 10, chains);
    EXPECT_LE(now, prev);
    prev = now;
  }
  // Single-chain overload agrees.
  EXPECT_EQ(tcomp::clock_cycles(set, 10), tcomp::clock_cycles(set, 10, 1));
}

TEST(BenchWriter, ConstGatesRoundTrip) {
  netlist::CircuitBuilder b("consts");
  b.add_input("a");
  b.add_gate(netlist::GateType::Const1, "one", {});
  b.add_gate(netlist::GateType::And, "o", {"a", "one"});
  b.mark_output("o");
  const netlist::Circuit c = b.build();
  const std::string text = netlist::to_bench_string(c);
  const netlist::Circuit c2 = netlist::parse_bench(text);
  EXPECT_EQ(c2.num_nodes(), c.num_nodes());
  EXPECT_EQ(c2.node(c2.find("one")).type, netlist::GateType::Const1);
}

TEST(BenchParser, LoadsFromFileAndNamesByStem) {
  const auto path =
      std::filesystem::temp_directory_path() / "scanc_roundtrip.bench";
  {
    std::ofstream out(path);
    out << gen::s27_bench_text();
  }
  const netlist::Circuit c = netlist::load_bench_file(path.string());
  EXPECT_EQ(c.name(), "scanc_roundtrip");
  EXPECT_EQ(c.num_gates(), 10u);
  std::filesystem::remove(path);
  EXPECT_THROW((void)netlist::load_bench_file(path.string()),
               std::runtime_error);
}

TEST(BenchParser, AcceptsRichSignalNames) {
  const netlist::Circuit c = netlist::parse_bench(
      "INPUT(top.u1/a[3])\nOUTPUT(n$1)\nn$1 = NOT(top.u1/a[3])\n");
  EXPECT_EQ(c.num_inputs(), 1u);
  EXPECT_NE(c.find("top.u1/a[3]"), netlist::kNoNode);
}

}  // namespace
}  // namespace scanc
