#include <gtest/gtest.h>

#include "atpg/comb_tset.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "gen/circuit_gen.hpp"
#include "gen/embedded.hpp"
#include "tcomp/baselines.hpp"
#include "tcomp/combine.hpp"
#include "tcomp/iterate.hpp"
#include "tcomp/omission.hpp"
#include "tcomp/phase1.hpp"
#include "tcomp/pipeline.hpp"
#include "tcomp/restoration.hpp"
#include "tcomp/topoff.hpp"
#include "tgen/greedy_tgen.hpp"
#include "tgen/random_seq.hpp"

namespace scanc::tcomp {
namespace {

using fault::FaultList;
using fault::FaultSet;
using fault::FaultSimulator;
using netlist::Circuit;

// Shared fixture pieces: a circuit with its fault list, simulator, comb
// test set and a T0 sequence.
struct Rig {
  Circuit circuit;
  FaultList faults;
  std::unique_ptr<FaultSimulator> fsim;
  atpg::CombTestSet comb;
  sim::Sequence t0;

  explicit Rig(Circuit c, std::uint64_t seed, std::size_t t0_len = 0)
      : circuit(std::move(c)), faults(FaultList::build(circuit)) {
    fsim = std::make_unique<FaultSimulator>(circuit, faults);
    atpg::CombTestSetOptions copt;
    copt.seed = seed;
    comb = atpg::generate_comb_test_set(circuit, faults, copt);
    if (t0_len == 0) {
      tgen::GreedyTgenOptions gopt;
      gopt.seed = seed;
      gopt.max_length = 300;
      t0 = tgen::generate_test_sequence(circuit, faults, gopt).sequence;
    } else {
      t0 = tgen::random_test_sequence(circuit, t0_len, seed);
    }
  }
};

Rig make_rig(std::uint64_t seed, std::size_t gates = 80,
                 std::size_t ffs = 8, std::size_t t0_len = 0) {
  gen::GenParams p;
  p.name = "tc";
  p.seed = seed * 1337 + 11;
  p.num_inputs = 5;
  p.num_outputs = 4;
  p.num_flip_flops = ffs;
  p.num_gates = gates;
  return Rig(gen::generate_circuit(p), seed, t0_len);
}

TEST(Metrics, ClockCyclesFormula) {
  ScanTestSet set;
  EXPECT_EQ(clock_cycles(set, 10), 0u);
  ScanTest a;
  a.scan_in = sim::vector3_from_string("0000000000");
  a.seq.frames.assign(3, sim::Vector3(2, sim::V3::Zero));
  ScanTest b = a;
  b.seq.frames.assign(5, sim::Vector3(2, sim::V3::One));
  set.tests = {a, b};
  // (k+1)*N_SV + sum L = 3*10 + 8 = 38
  EXPECT_EQ(clock_cycles(set, 10), 38u);
}

TEST(Metrics, ClockCyclesFromCounts) {
  // Empty set costs nothing, regardless of the other counts.
  EXPECT_EQ(clock_cycles_from_counts(0, 0, 10), 0u);
  EXPECT_EQ(clock_cycles_from_counts(0, 0, 10, 4), 0u);
  // chains = 0 and chains = 1 both mean a single chain.
  EXPECT_EQ(clock_cycles_from_counts(2, 8, 10, 0),
            clock_cycles_from_counts(2, 8, 10, 1));
  EXPECT_EQ(clock_cycles_from_counts(2, 8, 10), 38u);
  // Multi-chain shift cost is ceil(N_SV / chains): 10 cells on 4 chains
  // shift in 3 cycles, so (2+1)*3 + 8 = 17.
  EXPECT_EQ(clock_cycles_from_counts(2, 8, 10, 4), 17u);
  // The ScanTestSet overloads are exactly the counts helper.
  ScanTestSet set;
  ScanTest t;
  t.seq.frames.assign(5, sim::Vector3(2, sim::V3::Zero));
  set.tests = {t, t, t};
  EXPECT_EQ(clock_cycles(set, 7),
            clock_cycles_from_counts(3, 15, 7));
  EXPECT_EQ(clock_cycles(set, 7, 3),
            clock_cycles_from_counts(3, 15, 7, 3));
}

TEST(Pipeline, ResultCarriesCycleAccounting) {
  Rig s = make_rig(21);
  const PipelineResult r = run_pipeline(*s.fsim, s.t0, s.comb.tests);
  const std::size_t nsv = s.fsim->num_scanned();
  EXPECT_EQ(r.initial_cycles, clock_cycles(r.initial, nsv));
  EXPECT_EQ(r.compacted_cycles, clock_cycles(r.compacted, nsv));
  EXPECT_LE(r.compacted_cycles, r.initial_cycles);
  EXPECT_GT(r.compacted_cycles, 0u);
}

TEST(Metrics, AtSpeedStats) {
  ScanTestSet set;
  ScanTest t;
  t.seq.frames.assign(1, sim::Vector3{});
  set.tests.push_back(t);
  t.seq.frames.assign(7, sim::Vector3{});
  set.tests.push_back(t);
  const AtSpeedStats s = at_speed_stats(set);
  EXPECT_DOUBLE_EQ(s.average, 4.0);
  EXPECT_EQ(s.min_length, 1u);
  EXPECT_EQ(s.max_length, 7u);
}

TEST(Phase1, ContainmentChainHoldsOnS27) {
  Rig s(gen::make_s27(), 3);
  ASSERT_FALSE(s.comb.tests.empty());
  std::vector<char> selected(s.comb.tests.size(), 0);
  const Phase1Result r =
      run_phase1(*s.fsim, s.t0, s.comb.tests, selected);
  // F0 <= F_SI <= F_SO (paper Section 3.1).
  EXPECT_TRUE(r.f_si.contains(r.f0));
  EXPECT_TRUE(r.f_so.contains(r.f_si));
  // Reported F_SO must equal an explicit simulation of tau_SO.
  const FaultSet resim = s.fsim->detect_scan_test(r.test.scan_in, r.test.seq);
  EXPECT_EQ(resim, r.f_so);
  // The test is the prefix of T0 ending at the scan-out time.
  EXPECT_EQ(r.test.seq.length(), r.scan_out_time + 1);
  EXPECT_LE(r.test.seq.length(), s.t0.length());
}

TEST(Phase1, EarliestRuleIsMinimal) {
  Rig s(gen::make_s27(), 4);
  std::vector<char> selected(s.comb.tests.size(), 0);
  const Phase1Result r =
      run_phase1(*s.fsim, s.t0, s.comb.tests, selected);
  // No strictly shorter prefix may cover F_SI.
  for (std::size_t u = 0; u < r.scan_out_time; ++u) {
    const sim::Sequence prefix = s.t0.subsequence(0, u);
    const FaultSet det =
        s.fsim->detect_scan_test(r.test.scan_in, prefix, &r.f_si);
    EXPECT_FALSE(det.contains(r.f_si)) << "prefix " << u;
  }
}

TEST(Phase1, SelectedCandidatesLoseTies) {
  Rig s(gen::make_s27(), 5);
  ASSERT_GE(s.comb.tests.size(), 2u);
  std::vector<char> selected(s.comb.tests.size(), 0);
  const Phase1Result first =
      run_phase1(*s.fsim, s.t0, s.comb.tests, selected);
  selected[first.chosen_candidate] = 1;
  const Phase1Result second =
      run_phase1(*s.fsim, s.t0, s.comb.tests, selected);
  if (second.chosen_candidate == first.chosen_candidate) {
    // Re-picking a selected candidate must mean it strictly beats every
    // unselected one; the result reports it as selected.
    EXPECT_TRUE(second.chose_selected);
  } else {
    EXPECT_FALSE(second.chose_selected);
  }
}

TEST(Phase1, I1RuleDetectsAtLeastI0) {
  Rig s(make_rig(6, 90, 8, 120));
  std::vector<char> selected(s.comb.tests.size(), 0);
  Phase1Options i0;
  Phase1Options i1;
  i1.scan_out_rule = ScanOutRule::LargestSet;
  const Phase1Result a =
      run_phase1(*s.fsim, s.t0, s.comb.tests, selected, i0);
  const Phase1Result b =
      run_phase1(*s.fsim, s.t0, s.comb.tests, selected, i1);
  EXPECT_GE(b.f_so.count(), a.f_so.count());
  // i0 is the minimum valid scan-out time, so i1 can only be later.
  EXPECT_GE(b.scan_out_time, a.scan_out_time);
}

TEST(Phase1, RejectsEmptyInputs) {
  Rig s(gen::make_s27(), 7);
  std::vector<char> selected;
  EXPECT_THROW((void)run_phase1(*s.fsim, s.t0, {}, selected),
               std::invalid_argument);
  std::vector<char> sel2(s.comb.tests.size(), 0);
  EXPECT_THROW((void)run_phase1(*s.fsim, sim::Sequence{}, s.comb.tests, sel2),
               std::invalid_argument);
}

class OmissionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OmissionProperty, PreservesRequiredCoverage) {
  Rig s(make_rig(GetParam(), 70, 6, 80));
  std::vector<char> selected(s.comb.tests.size(), 0);
  const Phase1Result p1 =
      run_phase1(*s.fsim, s.t0, s.comb.tests, selected);
  const OmissionResult om = omit_vectors(*s.fsim, p1.test, p1.f_so);
  EXPECT_LE(om.test.seq.length(), p1.test.seq.length());
  EXPECT_EQ(om.test.seq.length() + om.omitted, p1.test.seq.length());
  EXPECT_GE(om.test.seq.length(), 1u);
  const FaultSet det =
      s.fsim->detect_scan_test(om.test.scan_in, om.test.seq);
  EXPECT_TRUE(det.contains(p1.f_so));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OmissionProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

class RestorationProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RestorationProperty, PreservesRequiredCoverage) {
  Rig s(make_rig(GetParam(), 70, 6, 80));
  std::vector<char> selected(s.comb.tests.size(), 0);
  const Phase1Result p1 =
      run_phase1(*s.fsim, s.t0, s.comb.tests, selected);
  const OmissionResult re = restore_vectors(*s.fsim, p1.test, p1.f_so);
  EXPECT_LE(re.test.seq.length(), p1.test.seq.length());
  EXPECT_EQ(re.test.seq.length() + re.omitted, p1.test.seq.length());
  const FaultSet det =
      s.fsim->detect_scan_test(re.test.scan_in, re.test.seq);
  EXPECT_TRUE(det.contains(p1.f_so));

  // Coarser restore steps trade length for speed but stay correct.
  RestorationOptions coarse;
  coarse.restore_step = 8;
  const OmissionResult rc =
      restore_vectors(*s.fsim, p1.test, p1.f_so, coarse);
  const FaultSet det2 =
      s.fsim->detect_scan_test(rc.test.scan_in, rc.test.seq);
  EXPECT_TRUE(det2.contains(p1.f_so));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RestorationProperty,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(Restoration, PipelineRunsWithRestorationPhase2) {
  Rig s(make_rig(22, 80, 8, 0));
  PipelineOptions opt;
  opt.iterate.phase2_method = Phase2Method::Restoration;
  const PipelineResult r = run_pipeline(*s.fsim, s.t0, s.comb.tests, opt);
  EXPECT_TRUE(r.final_coverage.contains(r.f_seq));
  EXPECT_TRUE(r.final_coverage.contains(s.comb.detected));
}

TEST(Omission, LengthOneSequenceUntouched) {
  Rig s(gen::make_s27(), 8);
  ScanTest t;
  t.scan_in = s.comb.tests[0].state;
  t.seq.frames.push_back(s.comb.tests[0].inputs);
  const FaultSet req = s.fsim->detect_scan_test(t.scan_in, t.seq);
  const OmissionResult om = omit_vectors(*s.fsim, t, req);
  EXPECT_EQ(om.omitted, 0u);
  EXPECT_EQ(om.test.seq.length(), 1u);
}

TEST(Iterate, CoverageNeverDecreasesAcrossIterations) {
  Rig s(make_rig(9, 100, 10, 150));
  const IterateResult r = iterate_phases(*s.fsim, s.t0, s.comb.tests);
  ASSERT_FALSE(r.iterations.empty());
  EXPECT_LE(r.iterations.size(), s.comb.tests.size());
  // The kept tau_seq achieves the best observed coverage.
  std::size_t best = 0;
  for (const IterationRecord& it : r.iterations) {
    best = std::max(best, it.detected);
  }
  EXPECT_EQ(r.f_seq.count(), best);
  // tau_seq's reported coverage is accurate.
  const FaultSet det =
      s.fsim->detect_scan_test(r.tau_seq.scan_in, r.tau_seq.seq);
  EXPECT_EQ(det, r.f_seq);
  // And it dominates the no-scan coverage of T0.
  EXPECT_GE(r.f_seq.count(), r.f0.count());
}

TEST(TopOff, CoversEverythingCoverable) {
  Rig s(make_rig(10, 80, 8, 0));
  // Pretend nothing is detected yet: top-off must reach C's coverage.
  FaultSet undetected = s.fsim->all_faults();
  const TopOffResult r = top_off(*s.fsim, s.comb.tests, undetected);
  FaultSet covered(s.fsim->num_classes());
  for (const ScanTest& t : r.tests.tests) {
    covered |= s.fsim->detect_scan_test(t.scan_in, t.seq);
  }
  FaultSet want = s.comb.detected;
  EXPECT_TRUE(covered.contains(want));
  // uncoverable = all faults minus C's coverage.
  FaultSet expect_unc = s.fsim->all_faults();
  expect_unc -= s.comb.detected;
  EXPECT_EQ(r.uncoverable, expect_unc);
  // All tests have length-one sequences.
  for (const ScanTest& t : r.tests.tests) EXPECT_EQ(t.seq.length(), 1u);
}

TEST(TopOff, EmptyTargetSelectsNothing) {
  Rig s(gen::make_s27(), 11);
  const TopOffResult r =
      top_off(*s.fsim, s.comb.tests, FaultSet(s.fsim->num_classes()));
  EXPECT_TRUE(r.tests.empty());
  EXPECT_TRUE(r.uncoverable.none());
}

TEST(TopOff, EssentialTestIsSelected) {
  // Craft candidates where one fault is detected by exactly one test:
  // that test must appear in the selection.
  Rig s(gen::make_s27(), 12);
  FaultSet undetected = s.fsim->all_faults();
  const TopOffResult r = top_off(*s.fsim, s.comb.tests, undetected);
  // Compute per-fault detection counts to find essential tests.
  std::vector<FaultSet> dets;
  for (const auto& c : s.comb.tests) {
    dets.push_back(atpg::detect_comb_test(*s.fsim, c, &undetected));
  }
  for (std::size_t j = 0; j < s.comb.tests.size(); ++j) {
    bool essential = false;
    dets[j].for_each([&](std::size_t f) {
      std::size_t n = 0;
      for (const auto& d : dets) n += d.test(f);
      if (n == 1) essential = true;
    });
    if (essential) {
      EXPECT_NE(std::find(r.chosen.begin(), r.chosen.end(), j),
                r.chosen.end())
          << "essential test " << j << " not selected";
    }
  }
}

class CombineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CombineProperty, PreservesCoverageAndReducesCycles) {
  Rig s(make_rig(GetParam(), 70, 7, 0));
  const ScanTestSet initial = comb_initial_set(s.comb.tests);
  const FaultSet before = coverage(*s.fsim, initial);
  const CombineResult r = combine_tests(*s.fsim, initial);
  const FaultSet after = coverage(*s.fsim, r.tests);
  EXPECT_TRUE(after.contains(before));
  EXPECT_EQ(r.tests.size() + r.combinations, initial.size());
  EXPECT_LE(clock_cycles(r.tests, s.circuit.num_flip_flops()),
            clock_cycles(initial, s.circuit.num_flip_flops()));
  // Total vector count is invariant under combining.
  EXPECT_EQ(r.tests.total_vectors(), initial.total_vectors());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CombineProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(Combine, SingleTestSetIsFixedPoint) {
  Rig s(gen::make_s27(), 13);
  ScanTestSet set;
  ScanTest t;
  t.scan_in = s.comb.tests[0].state;
  t.seq.frames.push_back(s.comb.tests[0].inputs);
  set.tests.push_back(t);
  const CombineResult r = combine_tests(*s.fsim, set);
  EXPECT_EQ(r.tests.size(), 1u);
  EXPECT_EQ(r.combinations, 0u);
}

TEST(Combine, TransferSequencesEnableMoreCombinations) {
  // With transfer sequences enabled, the combiner may only do better
  // (same or more combinations), must still preserve coverage, and every
  // inserted transfer sequence must stay shorter than N_SV.
  Rig s(make_rig(31, 90, 9, 0));
  const ScanTestSet initial = comb_initial_set(s.comb.tests);
  const FaultSet before = coverage(*s.fsim, initial);

  CombineOptions plain;
  const CombineResult a = combine_tests(*s.fsim, initial, plain);

  CombineOptions with_transfer;
  with_transfer.transfer.enabled = true;
  const CombineResult b = combine_tests(*s.fsim, initial, with_transfer);

  EXPECT_GE(b.combinations, a.combinations);
  EXPECT_TRUE(coverage(*s.fsim, b.tests).contains(before));
  // Total vectors grew by at most (transfer length) per combination and
  // every test's sequence is a concatenation of length-1 tests plus
  // transfers < N_SV.
  const std::size_t nsv = s.circuit.num_flip_flops();
  EXPECT_LE(b.tests.total_vectors(),
            initial.total_vectors() + b.combinations * (nsv - 1));
}

TEST(Combine, MaxCombinationsRespected) {
  Rig s(make_rig(14, 70, 7, 0));
  const ScanTestSet initial = comb_initial_set(s.comb.tests);
  CombineOptions opt;
  opt.max_combinations = 1;
  const CombineResult r = combine_tests(*s.fsim, initial, opt);
  EXPECT_LE(r.combinations, 1u);
}

class PipelineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineProperty, EndToEndInvariants) {
  Rig s(make_rig(GetParam(), 90, 9, 0));
  const PipelineResult r =
      run_pipeline(*s.fsim, s.t0, s.comb.tests);

  // Final coverage is complete for everything tau_seq or C can detect.
  FaultSet want = r.f_seq | s.comb.detected;
  EXPECT_TRUE(r.final_coverage.contains(want));

  // Compaction cannot increase the test application time.
  const std::size_t nsv = s.circuit.num_flip_flops();
  EXPECT_LE(clock_cycles(r.compacted, nsv), clock_cycles(r.initial, nsv));

  // Test-set structure: initial = {tau_seq} + added length-one tests.
  ASSERT_GE(r.initial.size(), 1u);
  EXPECT_EQ(r.initial.size(), 1 + r.added_tests);
  EXPECT_EQ(r.initial.tests[0].seq, r.tau_seq.seq);
  for (std::size_t i = 1; i < r.initial.size(); ++i) {
    EXPECT_EQ(r.initial.tests[i].seq.length(), 1u);
  }

  // Count monotonicity across the iterated phases (set containment of
  // the original F0 is not guaranteed once later iterations re-select the
  // scan-in state — only the count can never drop, as in Table 1).
  EXPECT_GE(r.f_seq.count(), r.f0.count());
  EXPECT_TRUE(r.final_coverage.contains(r.f_seq));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(Pipeline, Phase4AblationKeepsInitialSet) {
  Rig s(make_rig(20, 80, 8, 0));
  PipelineOptions opt;
  opt.run_phase4 = false;
  const PipelineResult r = run_pipeline(*s.fsim, s.t0, s.comb.tests, opt);
  EXPECT_EQ(r.compacted.size(), r.initial.size());
  EXPECT_EQ(r.combinations, 0u);
}

TEST(Baselines, CombInitialSetShape) {
  Rig s(gen::make_s27(), 15);
  const ScanTestSet set = comb_initial_set(s.comb.tests);
  ASSERT_EQ(set.size(), s.comb.tests.size());
  for (std::size_t j = 0; j < set.size(); ++j) {
    EXPECT_EQ(set.tests[j].seq.length(), 1u);
    EXPECT_EQ(set.tests[j].scan_in, s.comb.tests[j].state);
  }
  // Cycles = (K+1) * N_SV + K.
  EXPECT_EQ(clock_cycles(set, s.circuit.num_flip_flops()),
            (set.size() + 1) * s.circuit.num_flip_flops() + set.size());
}

TEST(Baselines, DynamicBaselineCoversTarget) {
  Rig s(make_rig(16, 80, 8, 0));
  const FaultSet target = s.comb.detected;
  const ScanTestSet set =
      dynamic_baseline(*s.fsim, s.comb.tests, target);
  const FaultSet cov = coverage(*s.fsim, set);
  EXPECT_TRUE(cov.contains(target));
  const std::size_t nsv = s.circuit.num_flip_flops();
  for (const ScanTest& t : set.tests) {
    EXPECT_GE(t.seq.length(), 1u);
    EXPECT_LE(t.seq.length(), std::max<std::size_t>(nsv, 1));
  }
}

}  // namespace
}  // namespace scanc::tcomp
