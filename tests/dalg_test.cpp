#include <gtest/gtest.h>

#include "atpg/comb_tset.hpp"
#include "atpg/dalg.hpp"
#include "atpg/podem.hpp"
#include "atpg/sat_backend.hpp"
#include "atpg/val5.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "gen/circuit_gen.hpp"
#include "gen/embedded.hpp"
#include "util/rng.hpp"

namespace scanc::atpg {
namespace {

using fault::Fault;
using fault::FaultClassId;
using fault::FaultList;
using fault::FaultSet;
using fault::FaultSimulator;
using netlist::Circuit;
using netlist::GateType;
using sim::V3;

TEST(Val5, ComponentsRoundTrip) {
  for (const V5 v : {V5::Zero, V5::One, V5::D, V5::Db}) {
    EXPECT_EQ(compose(good_of(v), bad_of(v)), v);
  }
  EXPECT_EQ(compose(V3::X, V3::One), V5::X);
  EXPECT_EQ(compose(V3::One, V3::X), V5::X);
}

TEST(Val5, ClassicTables) {
  EXPECT_EQ(v5_not(V5::D), V5::Db);
  EXPECT_EQ(v5_not(V5::Db), V5::D);
  EXPECT_EQ(v5_and(V5::D, V5::One), V5::D);
  EXPECT_EQ(v5_and(V5::D, V5::Zero), V5::Zero);
  EXPECT_EQ(v5_and(V5::D, V5::Db), V5::Zero);  // good 1&0=0, bad 0&1=0
  EXPECT_EQ(v5_and(V5::D, V5::X), V5::X);
  EXPECT_EQ(v5_or(V5::D, V5::Db), V5::One);
  EXPECT_EQ(v5_or(V5::D, V5::Zero), V5::D);
  EXPECT_EQ(v5_xor(V5::D, V5::D), V5::Zero);
  EXPECT_EQ(v5_xor(V5::D, V5::One), V5::Db);
  EXPECT_TRUE(is_error(V5::D));
  EXPECT_FALSE(is_error(V5::One));
}

TEST(Dalg, FindsTestForSimpleAndGate) {
  netlist::CircuitBuilder b("and2");
  b.add_input("a");
  b.add_input("b");
  b.add_gate(GateType::And, "o", {"a", "b"});
  b.mark_output("o");
  const Circuit c = b.build();
  Dalg dalg(c);
  const PodemResult r =
      dalg.generate(Fault{c.find("o"), sim::kStemPin, false});
  ASSERT_EQ(r.status, PodemStatus::Detected);
  EXPECT_EQ(r.cube.inputs[0], V3::One);
  EXPECT_EQ(r.cube.inputs[1], V3::One);
}

TEST(Dalg, ProvesRedundantFaultUntestable) {
  netlist::CircuitBuilder b("taut");
  b.add_input("a");
  b.add_gate(GateType::Not, "na", {"a"});
  b.add_gate(GateType::Or, "o", {"a", "na"});
  b.mark_output("o");
  const Circuit c = b.build();
  Dalg dalg(c);
  EXPECT_EQ(dalg.generate(Fault{c.find("o"), sim::kStemPin, true}).status,
            PodemStatus::Untestable);
  EXPECT_EQ(dalg.generate(Fault{c.find("o"), sim::kStemPin, false}).status,
            PodemStatus::Detected);
}

// Applies a cube (random-filled) and checks detection via the simulator.
bool cube_detects(const Circuit& c, const FaultList& fl, FaultClassId id,
                  const TestCube& cube, std::uint64_t seed) {
  util::Rng rng(seed);
  sim::Vector3 state = cube.state;
  sim::Vector3 inputs = cube.inputs;
  sim::randomize_x(state, rng);
  sim::randomize_x(inputs, rng);
  FaultSimulator fsim(c, fl);
  sim::Sequence seq;
  seq.frames.push_back(inputs);
  return fsim.detect_scan_test(state, seq).test(id);
}

// Cross-validation: the two engines agree on testability, and every
// D-algorithm cube detects its fault.
class DalgVsPodem : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DalgVsPodem, EnginesAgree) {
  gen::GenParams p;
  p.name = "dvp";
  p.seed = GetParam() * 17 + 3;
  p.num_inputs = 4;
  p.num_outputs = 3;
  p.num_flip_flops = 4;
  p.num_gates = 45;
  const Circuit c = gen::generate_circuit(p);
  const FaultList fl = FaultList::build(c);
  Podem podem(c);
  Dalg dalg(c);

  for (FaultClassId id = 0; id < fl.num_classes(); ++id) {
    const Fault& f = fl.representative(id);
    const PodemResult a = podem.generate(f);
    const PodemResult b = dalg.generate(f);
    if (a.status != PodemStatus::Aborted &&
        b.status != PodemStatus::Aborted) {
      EXPECT_EQ(a.status == PodemStatus::Detected,
                b.status == PodemStatus::Detected)
          << fault_name(f, c) << " PODEM=" << static_cast<int>(a.status)
          << " DALG=" << static_cast<int>(b.status);
    }
    if (b.status == PodemStatus::Detected) {
      EXPECT_TRUE(cube_detects(c, fl, id, b.cube, GetParam()))
          << fault_name(f, c);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DalgVsPodem,
                         ::testing::Range<std::uint64_t>(1, 13));

std::vector<std::string_view> views(const std::vector<std::string>& v) {
  return {v.begin(), v.end()};
}

// Class of a specific fault (faults_ scan; tests only).
FaultClassId class_of_fault(const FaultList& fl, const Fault& f) {
  for (std::size_t i = 0; i < fl.faults().size(); ++i) {
    if (fl.faults()[i] == f) return fl.class_of(i);
  }
  ADD_FAILURE() << "fault not in list";
  return 0;
}

// A justification frontier wider than max_enum_inputs must end the
// search with Aborted — never Untestable.  An Aborted fault stays in
// the compaction universe (later tests may still catch it, or the SAT
// backend resolves it under --atpg=auto); a false Untestable would
// silently drop a detectable fault from every downstream phase.
TEST(Dalg, WideJustificationAbortsInsteadOfClaimingUntestable) {
  netlist::CircuitBuilder b("wide_and");
  std::vector<std::string> ins;
  for (int i = 0; i < 10; ++i) {
    ins.push_back("a" + std::to_string(i));
    b.add_input(ins.back());
  }
  b.add_gate(GateType::And, "o", views(ins));
  b.mark_output("o");
  const Circuit c = b.build();
  // o stuck-at-1: activation needs good(o) = 0, putting the 10-input
  // AND on the J-frontier with 10 unknown inputs (> the default 8).
  const Fault f{c.find("o"), sim::kStemPin, true};
  Dalg dalg(c);
  EXPECT_EQ(dalg.generate(f).status, PodemStatus::Aborted);
  // Raising the enumeration budget resolves the same fault.
  DalgOptions wide;
  wide.max_enum_inputs = 16;
  Dalg relaxed(c, wide);
  const PodemResult r = relaxed.generate(f);
  ASSERT_EQ(r.status, PodemStatus::Detected);
  const FaultList fl = FaultList::build(c);
  EXPECT_TRUE(cube_detects(c, fl, class_of_fault(fl, f), r.cube, 3));
  // The SAT backend resolves it without any budget tuning — the
  // --atpg=auto contract for exactly this kind of abort.
  SatBackend sat(c);
  EXPECT_EQ(sat.generate(f).status, PodemStatus::Detected);
}

// Same contract for the D-frontier: propagating an error through an
// XOR with more X side-inputs than the enumeration budget aborts.
TEST(Dalg, WideXorPropagationAbortsInsteadOfClaimingUntestable) {
  netlist::CircuitBuilder b("wide_xor");
  b.add_input("a");
  std::vector<std::string> ins = {"a"};
  for (int i = 0; i < 10; ++i) {
    ins.push_back("s" + std::to_string(i));
    b.add_input(ins.back());
  }
  b.add_gate(GateType::Xor, "x", views(ins));
  b.mark_output("x");
  const Circuit c = b.build();
  const Fault f{c.find("a"), sim::kStemPin, false};
  Dalg dalg(c);
  EXPECT_EQ(dalg.generate(f).status, PodemStatus::Aborted);
  DalgOptions wide;
  wide.max_enum_inputs = 16;
  Dalg relaxed(c, wide);
  const PodemResult r = relaxed.generate(f);
  ASSERT_EQ(r.status, PodemStatus::Detected);
  const FaultList fl = FaultList::build(c);
  EXPECT_TRUE(cube_detects(c, fl, class_of_fault(fl, f), r.cube, 5));
  SatBackend sat(c);
  EXPECT_EQ(sat.generate(f).status, PodemStatus::Detected);
}

// End-to-end: generate_comb_test_set under the Auto backend leaves no
// fault unresolved on a circuit the structural engine aborts on.
TEST(Dalg, AutoBackendResolvesEveryAbort) {
  netlist::CircuitBuilder b("wide_and2");
  std::vector<std::string> ins;
  for (int i = 0; i < 10; ++i) {
    ins.push_back("a" + std::to_string(i));
    b.add_input(ins.back());
  }
  b.add_gate(GateType::And, "o", views(ins));
  b.mark_output("o");
  const Circuit c = b.build();
  const FaultList fl = FaultList::build(c);
  CombTestSetOptions opt;
  opt.engine = AtpgEngine::Dalg;
  const CombTestSet structural = generate_comb_test_set(c, fl, opt);
  ASSERT_GT(structural.aborted, 0u);  // the gap --atpg=auto closes
  opt.backend = AtpgBackend::Auto;
  const CombTestSet resolved = generate_comb_test_set(c, fl, opt);
  EXPECT_EQ(resolved.aborted, 0u);
  EXPECT_EQ(resolved.detected.count() + resolved.proven_untestable,
            fl.num_classes());
  EXPECT_EQ(resolved.untestable.count(), resolved.proven_untestable);
}

TEST(Dalg, WorksOnS27) {
  const Circuit c = gen::make_s27();
  const FaultList fl = FaultList::build(c);
  Dalg dalg(c);
  std::size_t detected = 0;
  for (FaultClassId id = 0; id < fl.num_classes(); ++id) {
    const PodemResult r = dalg.generate(fl.representative(id));
    if (r.status == PodemStatus::Detected) {
      ++detected;
      EXPECT_TRUE(cube_detects(c, fl, id, r.cube, 7));
    }
  }
  // Every s27 fault is combinationally testable in the scan view.
  EXPECT_EQ(detected, fl.num_classes());
}

}  // namespace
}  // namespace scanc::atpg
