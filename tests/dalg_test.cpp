#include <gtest/gtest.h>

#include "atpg/dalg.hpp"
#include "atpg/podem.hpp"
#include "atpg/val5.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "gen/circuit_gen.hpp"
#include "gen/embedded.hpp"
#include "util/rng.hpp"

namespace scanc::atpg {
namespace {

using fault::Fault;
using fault::FaultClassId;
using fault::FaultList;
using fault::FaultSet;
using fault::FaultSimulator;
using netlist::Circuit;
using netlist::GateType;
using sim::V3;

TEST(Val5, ComponentsRoundTrip) {
  for (const V5 v : {V5::Zero, V5::One, V5::D, V5::Db}) {
    EXPECT_EQ(compose(good_of(v), bad_of(v)), v);
  }
  EXPECT_EQ(compose(V3::X, V3::One), V5::X);
  EXPECT_EQ(compose(V3::One, V3::X), V5::X);
}

TEST(Val5, ClassicTables) {
  EXPECT_EQ(v5_not(V5::D), V5::Db);
  EXPECT_EQ(v5_not(V5::Db), V5::D);
  EXPECT_EQ(v5_and(V5::D, V5::One), V5::D);
  EXPECT_EQ(v5_and(V5::D, V5::Zero), V5::Zero);
  EXPECT_EQ(v5_and(V5::D, V5::Db), V5::Zero);  // good 1&0=0, bad 0&1=0
  EXPECT_EQ(v5_and(V5::D, V5::X), V5::X);
  EXPECT_EQ(v5_or(V5::D, V5::Db), V5::One);
  EXPECT_EQ(v5_or(V5::D, V5::Zero), V5::D);
  EXPECT_EQ(v5_xor(V5::D, V5::D), V5::Zero);
  EXPECT_EQ(v5_xor(V5::D, V5::One), V5::Db);
  EXPECT_TRUE(is_error(V5::D));
  EXPECT_FALSE(is_error(V5::One));
}

TEST(Dalg, FindsTestForSimpleAndGate) {
  netlist::CircuitBuilder b("and2");
  b.add_input("a");
  b.add_input("b");
  b.add_gate(GateType::And, "o", {"a", "b"});
  b.mark_output("o");
  const Circuit c = b.build();
  Dalg dalg(c);
  const PodemResult r =
      dalg.generate(Fault{c.find("o"), sim::kStemPin, false});
  ASSERT_EQ(r.status, PodemStatus::Detected);
  EXPECT_EQ(r.cube.inputs[0], V3::One);
  EXPECT_EQ(r.cube.inputs[1], V3::One);
}

TEST(Dalg, ProvesRedundantFaultUntestable) {
  netlist::CircuitBuilder b("taut");
  b.add_input("a");
  b.add_gate(GateType::Not, "na", {"a"});
  b.add_gate(GateType::Or, "o", {"a", "na"});
  b.mark_output("o");
  const Circuit c = b.build();
  Dalg dalg(c);
  EXPECT_EQ(dalg.generate(Fault{c.find("o"), sim::kStemPin, true}).status,
            PodemStatus::Untestable);
  EXPECT_EQ(dalg.generate(Fault{c.find("o"), sim::kStemPin, false}).status,
            PodemStatus::Detected);
}

// Applies a cube (random-filled) and checks detection via the simulator.
bool cube_detects(const Circuit& c, const FaultList& fl, FaultClassId id,
                  const TestCube& cube, std::uint64_t seed) {
  util::Rng rng(seed);
  sim::Vector3 state = cube.state;
  sim::Vector3 inputs = cube.inputs;
  sim::randomize_x(state, rng);
  sim::randomize_x(inputs, rng);
  FaultSimulator fsim(c, fl);
  sim::Sequence seq;
  seq.frames.push_back(inputs);
  return fsim.detect_scan_test(state, seq).test(id);
}

// Cross-validation: the two engines agree on testability, and every
// D-algorithm cube detects its fault.
class DalgVsPodem : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DalgVsPodem, EnginesAgree) {
  gen::GenParams p;
  p.name = "dvp";
  p.seed = GetParam() * 17 + 3;
  p.num_inputs = 4;
  p.num_outputs = 3;
  p.num_flip_flops = 4;
  p.num_gates = 45;
  const Circuit c = gen::generate_circuit(p);
  const FaultList fl = FaultList::build(c);
  Podem podem(c);
  Dalg dalg(c);

  for (FaultClassId id = 0; id < fl.num_classes(); ++id) {
    const Fault& f = fl.representative(id);
    const PodemResult a = podem.generate(f);
    const PodemResult b = dalg.generate(f);
    if (a.status != PodemStatus::Aborted &&
        b.status != PodemStatus::Aborted) {
      EXPECT_EQ(a.status == PodemStatus::Detected,
                b.status == PodemStatus::Detected)
          << fault_name(f, c) << " PODEM=" << static_cast<int>(a.status)
          << " DALG=" << static_cast<int>(b.status);
    }
    if (b.status == PodemStatus::Detected) {
      EXPECT_TRUE(cube_detects(c, fl, id, b.cube, GetParam()))
          << fault_name(f, c);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DalgVsPodem,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(Dalg, WorksOnS27) {
  const Circuit c = gen::make_s27();
  const FaultList fl = FaultList::build(c);
  Dalg dalg(c);
  std::size_t detected = 0;
  for (FaultClassId id = 0; id < fl.num_classes(); ++id) {
    const PodemResult r = dalg.generate(fl.representative(id));
    if (r.status == PodemStatus::Detected) {
      ++detected;
      EXPECT_TRUE(cube_detects(c, fl, id, r.cube, 7));
    }
  }
  // Every s27 fault is combinationally testable in the scan view.
  EXPECT_EQ(detected, fl.num_classes());
}

}  // namespace
}  // namespace scanc::atpg
