#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/bitset.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace scanc::util {
namespace {

class BitsetSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitsetSizes, SetTestResetRoundTrip) {
  const std::size_t n = GetParam();
  Bitset b(n);
  EXPECT_EQ(b.size(), n);
  EXPECT_TRUE(b.none());
  EXPECT_EQ(b.count(), 0u);
  for (std::size_t i = 0; i < n; i += 3) b.set(i);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(b.test(i), i % 3 == 0) << i;
  }
  EXPECT_EQ(b.count(), (n + 2) / 3);
  for (std::size_t i = 0; i < n; i += 3) b.reset(i);
  EXPECT_TRUE(b.none());
}

TEST_P(BitsetSizes, FillRespectsSize) {
  const std::size_t n = GetParam();
  Bitset b(n);
  b.fill();
  EXPECT_EQ(b.count(), n);
  EXPECT_TRUE(b.all());
  Bitset c(n, true);
  EXPECT_EQ(b, c);
}

TEST_P(BitsetSizes, FindIterationMatchesForEach) {
  const std::size_t n = GetParam();
  if (n == 0) return;
  Bitset b(n);
  Rng rng(n * 31 + 7);
  std::set<std::size_t> expect;
  for (std::size_t k = 0; k < n / 2 + 1; ++k) {
    const std::size_t i = rng.below(n);
    b.set(i);
    expect.insert(i);
  }
  std::vector<std::size_t> via_find;
  for (std::size_t i = b.find_first(); i < n; i = b.find_next(i + 1)) {
    via_find.push_back(i);
  }
  std::vector<std::size_t> via_for_each;
  b.for_each([&](std::size_t i) { via_for_each.push_back(i); });
  const std::vector<std::size_t> want(expect.begin(), expect.end());
  EXPECT_EQ(via_find, want);
  EXPECT_EQ(via_for_each, want);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitsetSizes,
                         ::testing::Values(1, 2, 63, 64, 65, 128, 200,
                                           1000));

TEST(Bitset, SetAlgebra) {
  Bitset a(100);
  Bitset b(100);
  a.set(1);
  a.set(50);
  a.set(99);
  b.set(50);
  b.set(3);
  const Bitset u = a | b;
  EXPECT_EQ(u.count(), 4u);
  const Bitset i = a & b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(50));
  const Bitset d = a - b;
  EXPECT_EQ(d.count(), 2u);
  EXPECT_TRUE(d.test(1));
  EXPECT_FALSE(d.test(50));
  EXPECT_TRUE(u.contains(a));
  EXPECT_TRUE(u.contains(b));
  EXPECT_FALSE(a.contains(b));
}

TEST(Bitset, ContainsReflexiveAndEmpty) {
  Bitset a(77);
  a.set(5);
  EXPECT_TRUE(a.contains(a));
  EXPECT_TRUE(a.contains(Bitset(77)));
}

TEST(Bitset, FindOnEmptyAndPastEnd) {
  Bitset b(70);
  EXPECT_EQ(b.find_first(), 70u);
  EXPECT_EQ(b.find_next(200), 70u);
  b.set(69);
  EXPECT_EQ(b.find_first(), 69u);
  EXPECT_EQ(b.find_next(69), 69u);
  EXPECT_EQ(b.find_next(70), 70u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  Rng c(124);
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 10; ++i) differs |= (a2.next() != c.next());
  EXPECT_TRUE(differs);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(9);
  for (const std::uint64_t bound : {1ull, 2ull, 7ull, 64ull, 1000000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(10);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.unit();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, CoinAndChanceAreRoughlyFair) {
  Rng rng(12);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.coin();
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(1, 4);
  EXPECT_GT(hits, 2000);
  EXPECT_LT(hits, 3000);
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t s = 42;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 200;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, ParallelForIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(10, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 50);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [](std::size_t i) {
                          if (i == 7) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives a failed batch.
  std::atomic<int> ran{0};
  pool.parallel_for(8, [&](std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, SubmittedTasksRunBeforeJoin) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // Destructor drains the queue and joins.
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, ResolveThreadsMapsZeroToHardware) {
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(1), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(6), 6u);
}

}  // namespace
}  // namespace scanc::util
