#include <gtest/gtest.h>

#include "fault/transition.hpp"
#include "gen/circuit_gen.hpp"
#include "gen/embedded.hpp"
#include "sim/seq_sim.hpp"
#include "tgen/random_seq.hpp"
#include "util/rng.hpp"

namespace scanc::fault {
namespace {

using netlist::Circuit;
using netlist::GateType;
using sim::V3;
using sim::Vector3;

TEST(TransitionModel, IndexingRoundTrips) {
  EXPECT_EQ(transition_fault_index(0, false), 0u);
  EXPECT_EQ(transition_fault_index(0, true), 1u);
  EXPECT_EQ(transition_fault_index(7, false), 14u);
  const Circuit c = gen::make_s27();
  EXPECT_EQ(num_transition_faults(c), 2 * c.num_nodes());
}

TEST(TransitionSim, LengthOneTestDetectsNothing) {
  // The structural heart of the paper's at-speed argument.
  const Circuit c = gen::make_s27();
  TransitionFaultSim tsim(c);
  sim::Sequence seq;
  seq.frames.push_back(sim::vector3_from_string("1111"));
  const util::Bitset det =
      tsim.detect(sim::vector3_from_string("000"), seq);
  EXPECT_TRUE(det.none());
}

TEST(TransitionSim, HandCraftedLaunchCapture) {
  // o = BUF(a): slow-to-rise at 'a' is caught by a 0 -> 1 input pair,
  // slow-to-fall by 1 -> 0; the same pair cannot catch both.
  netlist::CircuitBuilder b("buf");
  b.add_input("a");
  b.add_gate(GateType::Dff, "q", {"a"});  // gives the circuit state
  b.add_gate(GateType::Buf, "o", {"a"});
  b.mark_output("o");
  const Circuit c = b.build();
  TransitionFaultSim tsim(c);
  const netlist::NodeId a = c.find("a");

  sim::Sequence rise;
  rise.frames.push_back(sim::vector3_from_string("0"));
  rise.frames.push_back(sim::vector3_from_string("1"));
  const util::Bitset det_rise =
      tsim.detect(sim::vector3_from_string("0"), rise);
  EXPECT_TRUE(det_rise.test(transition_fault_index(a, false)));  // STR
  EXPECT_FALSE(det_rise.test(transition_fault_index(a, true)));

  sim::Sequence fall;
  fall.frames.push_back(sim::vector3_from_string("1"));
  fall.frames.push_back(sim::vector3_from_string("0"));
  const util::Bitset det_fall =
      tsim.detect(sim::vector3_from_string("0"), fall);
  EXPECT_TRUE(det_fall.test(transition_fault_index(a, true)));  // STF
  EXPECT_FALSE(det_fall.test(transition_fault_index(a, false)));
}

// Independent reference: explicit per-frame re-simulation with a scalar
// forced value, checking PO (and final scan-out) differences.
bool reference_detects(const Circuit& c, netlist::NodeId node,
                       bool slow_to_fall, const Vector3& si,
                       const sim::Sequence& seq) {
  const sim::Trace good = sim::simulate_fault_free(c, &si, seq);
  for (std::size_t t = 1; t < seq.length(); ++t) {
    // Launch: the node held the initial value in the previous frame.
    sim::PackedSeqSim probe(c);
    probe.reset();
    probe.load_state(si);
    for (std::size_t u = 0; u + 1 < t; ++u) {
      probe.apply_frame(seq.frames[u]);
      probe.latch();
    }
    probe.apply_frame(seq.frames[t - 1]);
    const V3 launch = sim::slot(probe.value(node), 0);
    if (launch != (slow_to_fall ? V3::One : V3::Zero)) continue;
    probe.latch();

    // Capture: stuck-at behaviour for one cycle from the frame-t state.
    sim::InjectionMap inj(c.num_nodes());
    inj.add(node, sim::kStemPin, slow_to_fall, 1ULL << 1);
    sim::PackedSeqSim faulty(c);
    faulty.reset(&inj);
    faulty.load_state(probe.state_slot(0), &inj);
    faulty.apply_frame(seq.frames[t], &inj);
    for (std::size_t i = 0; i < c.num_outputs(); ++i) {
      const V3 g = good.po_frames[t][i];
      const V3 f = sim::slot(faulty.value(c.primary_outputs()[i]), 1);
      if (sim::is_binary(g) && sim::is_binary(f) && g != f) return true;
    }
    if (t + 1 == seq.length()) {
      faulty.latch(&inj);
      for (std::size_t i = 0; i < c.num_flip_flops(); ++i) {
        const V3 g = good.states[t][i];
        const V3 f = sim::slot(faulty.captured(i), 1);
        if (sim::is_binary(g) && sim::is_binary(f) && g != f) return true;
      }
    }
  }
  return false;
}

class TransitionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransitionProperty, MatchesReferenceModel) {
  gen::GenParams p;
  p.name = "tf";
  p.seed = GetParam() * 19 + 7;
  p.num_inputs = 4;
  p.num_outputs = 3;
  p.num_flip_flops = 4;
  p.num_gates = 35;
  const Circuit c = gen::generate_circuit(p);
  TransitionFaultSim tsim(c);
  util::Rng rng(GetParam());
  const sim::Sequence seq = sim::random_sequence(c.num_inputs(), 8, rng);
  const Vector3 si = sim::random_vector(c.num_flip_flops(), rng);
  const util::Bitset det = tsim.detect(si, seq);
  for (netlist::NodeId id = 0; id < c.num_nodes(); ++id) {
    for (const bool stf : {false, true}) {
      EXPECT_EQ(det.test(transition_fault_index(id, stf)),
                reference_detects(c, id, stf, si, seq))
          << c.node(id).name << (stf ? "/STF" : "/STR");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransitionProperty,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(TransitionSim, LongerSequencesDetectMore) {
  const Circuit c = gen::make_s27();
  TransitionFaultSim tsim(c);
  util::Rng rng(3);
  const sim::Sequence seq = sim::random_sequence(c.num_inputs(), 40, rng);
  const Vector3 si = sim::random_vector(c.num_flip_flops(), rng);
  const util::Bitset det_short = tsim.detect(si, seq.subsequence(0, 4));
  const util::Bitset det_long = tsim.detect(si, seq);
  EXPECT_GE(det_long.count(), det_short.count());
  EXPECT_GT(det_long.count(), 0u);
}

}  // namespace
}  // namespace scanc::fault
