#include <gtest/gtest.h>

#include "gen/circuit_gen.hpp"
#include "gen/embedded.hpp"
#include "netlist/analysis.hpp"

namespace scanc::netlist {
namespace {

TEST(Analysis, FaninConeOfS27Output) {
  const Circuit c = gen::make_s27();
  // G17 = NOT(G11); G11 = NOR(G5, G9); G9 = NAND(G16, G15); ...
  const util::Bitset cone = fanin_cone(c, c.find("G17"));
  for (const char* name :
       {"G17", "G11", "G5", "G9", "G16", "G15", "G8", "G12", "G14", "G3",
        "G1", "G7", "G6", "G0"}) {
    EXPECT_TRUE(cone.test(c.find(name))) << name;
  }
  // G10 and G13 feed only flip-flop D pins: not in G17's in-cycle cone.
  EXPECT_FALSE(cone.test(c.find("G10")));
  EXPECT_FALSE(cone.test(c.find("G13")));
}

TEST(Analysis, FaninConeStopsAtFlipFlops) {
  const Circuit c = gen::make_s27();
  // The cone contains G5 (a DFF output) but not G5's next-state logic.
  const util::Bitset cone = fanin_cone(c, c.find("G11"));
  EXPECT_TRUE(cone.test(c.find("G5")));
  // G10 drives G5's D pin only.
  EXPECT_FALSE(cone.test(c.find("G10")));
}

TEST(Analysis, FanoutConeOfInput) {
  const Circuit c = gen::make_s27();
  const util::Bitset cone = fanout_cone(c, c.find("G0"));
  // G0 -> G14 -> {G8, G10}; G8 -> {G15, G16} -> G9 -> G11 -> {G17, ...}.
  for (const char* name :
       {"G0", "G14", "G8", "G10", "G15", "G16", "G9", "G11", "G17"}) {
    EXPECT_TRUE(cone.test(c.find(name))) << name;
  }
  // The cone does not cross flip-flops: G5/G6/G7 are capture points, so
  // logic reachable only through them (G12, G13) stays outside.
  EXPECT_FALSE(cone.test(c.find("G5")));
  EXPECT_FALSE(cone.test(c.find("G6")));
  EXPECT_FALSE(cone.test(c.find("G12")));
  EXPECT_FALSE(cone.test(c.find("G13")));
}

TEST(Analysis, SupportOfS27Output) {
  const Circuit c = gen::make_s27();
  const std::vector<NodeId> sup = support(c, c.find("G17"));
  // G17 depends on all four PIs and all three state bits... except G2,
  // which only reaches G13 (a D pin).
  std::vector<std::string> names;
  for (const NodeId id : sup) names.push_back(c.node(id).name);
  EXPECT_NE(std::find(names.begin(), names.end(), "G0"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "G1"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "G3"), names.end());
  EXPECT_EQ(std::find(names.begin(), names.end(), "G2"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "G5"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "G6"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "G7"), names.end());
}

TEST(Analysis, DuplicateGatesFindsStructuralTwins) {
  CircuitBuilder b("dups");
  b.add_input("a");
  b.add_input("x");
  b.add_gate(GateType::And, "g1", {"a", "x"});
  b.add_gate(GateType::And, "g2", {"x", "a"});  // same multiset
  b.add_gate(GateType::Or, "g3", {"a", "x"});   // different type
  b.add_gate(GateType::Xor, "o", {"g1", "g2"});
  b.mark_output("o");
  b.mark_output("g3");
  const Circuit c = b.build();
  const auto dups = duplicate_gates(c);
  ASSERT_EQ(dups.size(), 1u);
  const auto names = std::make_pair(c.node(dups[0].first).name,
                                    c.node(dups[0].second).name);
  EXPECT_TRUE((names.first == "g1" && names.second == "g2") ||
              (names.first == "g2" && names.second == "g1"));
}

TEST(Analysis, NoDuplicatesInS27) {
  EXPECT_TRUE(duplicate_gates(gen::make_s27()).empty());
}

TEST(Analysis, ShapeStatsOnS27) {
  const ShapeStats s = shape_stats(gen::make_s27());
  EXPECT_EQ(s.max_fanout, 3u);  // G11 feeds G17, G10, G6
  EXPECT_EQ(s.max_fanin, 2u);
  EXPECT_EQ(s.fanout_stems, 4u);  // G14, G8, G11, G12
  EXPECT_GT(s.avg_fanout, 1.0);
  EXPECT_GT(s.avg_fanin, 1.0);
}

TEST(Analysis, GeneratedCircuitsHaveReasonableShape) {
  gen::GenParams p;
  p.name = "shape";
  p.seed = 5;
  p.num_inputs = 6;
  p.num_outputs = 4;
  p.num_flip_flops = 10;
  p.num_gates = 150;
  const Circuit c = gen::generate_circuit(p);
  const ShapeStats s = shape_stats(c);
  EXPECT_GT(s.fanout_stems, 10u);
  EXPECT_LT(s.avg_fanin, 4.0);
  // The reconvergence-avoidance keeps duplicates rare.
  EXPECT_LT(duplicate_gates(c).size(), c.num_gates() / 10);
}

}  // namespace
}  // namespace scanc::netlist
