// Randomized equivalence suite for the parallel fault-group execution
// layer and the simulation kernels: every FaultSimulator query must
// return bit-identical results for num_threads = 1 (serial, no pool)
// and num_threads = N (worker pool), for every kernel mode (Auto,
// forced Full, forced Cone), and for every lane width (scalar 64-bit
// vs the 256/512-bit wide engine, intrinsic or portable), across
// generated circuits under full- and partial-scan masks.  The
// pattern-parallel batch queries (detect_batch, times_batch) must
// match their per-test scalar answers element for element, including
// ragged final lane chunks.  This is the determinism guarantee
// documented in docs/execution.md, pinned.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "gen/circuit_gen.hpp"
#include "sim/seq_sim.hpp"
#include "tgen/random_seq.hpp"
#include "util/rng.hpp"

namespace scanc::fault {
namespace {

using sim::Sequence;
using sim::Vector3;

std::size_t parallel_threads() {
  // Exceeding the core count is fine: the point is exercising the pool
  // path, worker-local engines, and the group partitioning.
  return std::max<std::size_t>(4, std::thread::hardware_concurrency());
}

struct Case {
  std::uint64_t seed;
  bool partial_scan;
  bool tdf = false;  ///< run under the transition-delay fault model
};

class ParallelEquivalence : public ::testing::TestWithParam<Case> {
 protected:
  void SetUp() override {
    const Case& c = GetParam();
    gen::GenParams p;
    p.name = "equiv";
    p.seed = c.seed;
    p.num_inputs = 6;
    p.num_outputs = 5;
    p.num_flip_flops = 12;
    p.num_gates = 220;  // a few hundred classes -> several fault groups
    circuit_ = gen::generate_circuit(p);
    faults_ = FaultList::build(*circuit_, c.tdf ? FaultModel::transition()
                                                : FaultModel::stuck_at());
    scan_mask_ = util::Bitset(circuit_->num_flip_flops(), true);
    if (c.partial_scan) {
      util::Rng rng(c.seed * 131 + 7);
      for (std::size_t i = 0; i < scan_mask_.size(); ++i) {
        if (rng.below(3) == 0) scan_mask_.reset(i);
      }
      if (scan_mask_.none()) scan_mask_.set(0);
    }
    serial_.emplace(*circuit_, *faults_, scan_mask_);
    serial_->set_num_threads(1);
    // The reference runs the scalar 64-bit kernels; the wide
    // configurations below must match it bit for bit.
    serial_->set_lane_width(sim::LaneWidth::W64);
    parallel_.emplace(*circuit_, *faults_, scan_mask_);
    parallel_->set_num_threads(parallel_threads());
    // Kernel-forced simulators: the cone-restricted kernel must be
    // bit-identical to the full kernel on every query, serial and
    // parallel alike.
    full_.emplace(*circuit_, *faults_, scan_mask_);
    full_->set_num_threads(1);
    full_->set_kernel(KernelMode::Full);
    cone_.emplace(*circuit_, *faults_, scan_mask_);
    cone_->set_num_threads(parallel_threads());
    cone_->set_kernel(KernelMode::Cone);
    // Wide-lane simulators: 256-bit serial and 512-bit under the pool.
    // Where the CPU lacks the intrinsics these resolve to the portable
    // WideWord implementation at the same width — equally valid, the
    // contract is width-independent bit-identity.
    wide256_.emplace(*circuit_, *faults_, scan_mask_);
    wide256_->set_num_threads(1);
    wide256_->set_lane_width(sim::LaneWidth::W256);
    wide512_.emplace(*circuit_, *faults_, scan_mask_);
    wide512_->set_num_threads(parallel_threads());
    wide512_->set_lane_width(sim::LaneWidth::W512);

    util::Rng rng(c.seed * 977 + 13);
    seq_ = tgen::random_test_sequence(*circuit_, 48, c.seed * 3 + 1);
    scan_in_ = sim::random_vector(circuit_->num_flip_flops(), rng);
    targets_ = util::Bitset(faults_->num_classes());
    for (std::size_t i = 0; i < targets_.size(); ++i) {
      if (rng.below(2) == 0) targets_.set(i);
    }
    if (targets_.none()) targets_.set(faults_->num_classes() / 2);
  }

  /// The simulators that must agree with `serial_` (Auto kernel, scalar
  /// lanes) on every query.
  std::vector<FaultSimulator*> others() {
    return {&*parallel_, &*full_, &*cone_, &*wide256_, &*wide512_};
  }

  /// Pattern-parallel batch material: `n` tests with random scan-in
  /// states and ragged sequence lengths (prefixes of seq_), so a batch
  /// spans several lane chunks and ends on a partial one.
  struct BatchMaterial {
    std::vector<Vector3> scan_ins;
    std::vector<Sequence> seqs;
    std::vector<FaultSimulator::BatchTest> batch;
  };
  BatchMaterial make_batch(std::size_t n) {
    BatchMaterial m;
    util::Rng rng(GetParam().seed * 2654435761ULL + 99);
    m.scan_ins.reserve(n);
    m.seqs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      m.scan_ins.push_back(
          sim::random_vector(circuit_->num_flip_flops(), rng));
      m.seqs.push_back(seq_.subsequence(0, rng.below(seq_.length())));
    }
    m.batch.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      m.batch[i] = {&m.scan_ins[i], &m.seqs[i]};
    }
    return m;
  }

  std::optional<netlist::Circuit> circuit_;
  std::optional<FaultList> faults_;
  util::Bitset scan_mask_;
  std::optional<FaultSimulator> serial_;
  std::optional<FaultSimulator> parallel_;
  std::optional<FaultSimulator> full_;
  std::optional<FaultSimulator> cone_;
  std::optional<FaultSimulator> wide256_;
  std::optional<FaultSimulator> wide512_;
  Sequence seq_;
  Vector3 scan_in_;
  FaultSet targets_;
};

TEST_P(ParallelEquivalence, DetectNoScan) {
  const FaultSet all = serial_->detect_no_scan(seq_);
  const FaultSet sub = serial_->detect_no_scan(seq_, &targets_);
  for (FaultSimulator* other : others()) {
    EXPECT_EQ(all, other->detect_no_scan(seq_));
    EXPECT_EQ(sub, other->detect_no_scan(seq_, &targets_));
  }
}

TEST_P(ParallelEquivalence, DetectScanTest) {
  const FaultSet all = serial_->detect_scan_test(scan_in_, seq_);
  const FaultSet sub = serial_->detect_scan_test(scan_in_, seq_, &targets_);
  for (FaultSimulator* other : others()) {
    EXPECT_EQ(all, other->detect_scan_test(scan_in_, seq_));
    EXPECT_EQ(sub, other->detect_scan_test(scan_in_, seq_, &targets_));
  }
}

TEST_P(ParallelEquivalence, DetectionTimes) {
  const auto a = serial_->detection_times(scan_in_, seq_, targets_);
  for (FaultSimulator* other : others()) {
    const auto b = other->detection_times(scan_in_, seq_, targets_);
    ASSERT_EQ(a.targets, b.targets);
    EXPECT_EQ(a.first_po, b.first_po);
    ASSERT_EQ(a.state_diff.size(), b.state_diff.size());
    for (std::size_t i = 0; i < a.state_diff.size(); ++i) {
      EXPECT_EQ(a.state_diff[i], b.state_diff[i]) << "target " << i;
    }
  }
}

TEST_P(ParallelEquivalence, PrefixDetection) {
  const auto a = serial_->prefix_detection(scan_in_, seq_, targets_);
  for (FaultSimulator* other : others()) {
    const auto b = other->prefix_detection(scan_in_, seq_, targets_);
    ASSERT_EQ(a.targets, b.targets);
    EXPECT_EQ(a.first_po, b.first_po);
    EXPECT_EQ(a.detected, b.detected);
    EXPECT_EQ(a.all_detected(), b.all_detected());
  }
}

TEST_P(ParallelEquivalence, DetectsAll) {
  // A set the test provably covers (true case, exercises the
  // cooperative-cancellation path trivially) ...
  const FaultSet covered = serial_->detect_scan_test(scan_in_, seq_);
  // ... and the full universe (false on any realistic circuit, so the
  // "all satisfied so far" flag actually flips under the pool).
  const FaultSet all = serial_->all_faults();
  const bool all_covered = serial_->detects_all(scan_in_, seq_, all);
  for (FaultSimulator* other : others()) {
    if (!covered.none()) {
      EXPECT_TRUE(other->detects_all(scan_in_, seq_, covered));
    }
    EXPECT_EQ(all_covered, other->detects_all(scan_in_, seq_, all));
  }
  if (!covered.none()) {
    EXPECT_TRUE(serial_->detects_all(scan_in_, seq_, covered));
  }
}

TEST_P(ParallelEquivalence, ConsistentFaults) {
  // Observe the fault-free response: every undetected fault (and none of
  // the PO/scan-out-detected ones) must remain consistent, identically
  // in every mode.
  const sim::Trace good =
      sim::simulate_fault_free(*circuit_, &scan_in_, seq_);
  Vector3 observed_scan_out = good.states.back();
  for (std::size_t i = 0; i < observed_scan_out.size(); ++i) {
    if (!scan_mask_.test(i)) observed_scan_out[i] = sim::V3::X;
  }
  const FaultSet a = serial_->consistent_faults(
      scan_in_, seq_, good.po_frames, observed_scan_out, targets_);
  for (FaultSimulator* other : others()) {
    EXPECT_EQ(a, other->consistent_faults(scan_in_, seq_, good.po_frames,
                                          observed_scan_out, targets_));
  }
}

TEST_P(ParallelEquivalence, BatchDetect) {
  // 10 tests > 8 lanes: the 512-bit engine takes one full chunk plus a
  // ragged chunk of 2; every element must equal its per-test answer.
  const BatchMaterial m = make_batch(10);
  std::vector<FaultSet> want;
  want.reserve(m.batch.size());
  for (std::size_t i = 0; i < m.batch.size(); ++i) {
    want.push_back(
        serial_->detect_scan_test(m.scan_ins[i], m.seqs[i], &targets_));
  }
  std::vector<FaultSimulator*> sims = others();
  sims.push_back(&*serial_);  // W64: the per-test fallback inside the API
  for (FaultSimulator* s : sims) {
    const std::vector<FaultSet> got = s->detect_batch(m.batch, &targets_);
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(want[i], got[i]) << "test " << i;
    }
  }
}

TEST_P(ParallelEquivalence, BatchTimes) {
  const BatchMaterial m = make_batch(9);
  std::vector<FaultSimulator::DetectionTimes> want;
  want.reserve(m.batch.size());
  for (std::size_t i = 0; i < m.batch.size(); ++i) {
    want.push_back(
        serial_->detection_times(m.scan_ins[i], m.seqs[i], targets_));
  }
  std::vector<FaultSimulator*> sims = others();
  sims.push_back(&*serial_);
  for (FaultSimulator* s : sims) {
    const auto got = s->times_batch(m.batch, targets_);
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(want[i].targets, got[i].targets) << "test " << i;
      EXPECT_EQ(want[i].first_po, got[i].first_po) << "test " << i;
      ASSERT_EQ(want[i].state_diff.size(), got[i].state_diff.size());
      for (std::size_t j = 0; j < want[i].state_diff.size(); ++j) {
        EXPECT_EQ(want[i].state_diff[j], got[i].state_diff[j])
            << "test " << i << " target " << j;
      }
    }
  }
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  return std::string(info.param.tdf ? "tdf_" : "") +
         (info.param.partial_scan ? "partial_seed" : "full_seed") +
         std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ParallelEquivalence,
    ::testing::Values(Case{1, false}, Case{2, false}, Case{3, false},
                      Case{1, true}, Case{2, true}, Case{3, true},
                      // Transition-delay model: the frame-gated kernel
                      // paths (activation-aware Full and Cone variants)
                      // must agree bit-for-bit too.
                      Case{1, false, true}, Case{2, false, true},
                      Case{3, false, true}, Case{1, true, true},
                      Case{2, true, true}, Case{3, true, true}),
    case_name);

}  // namespace
}  // namespace scanc::fault
