#include <gtest/gtest.h>

#include <algorithm>

#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "gen/circuit_gen.hpp"
#include "gen/embedded.hpp"
#include "netlist/circuit.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace scanc::fault {
namespace {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;
using sim::Sequence;
using sim::Vector3;

Circuit make_and_chain() {
  netlist::CircuitBuilder b("andchain");
  b.add_input("a");
  b.add_input("b");
  b.add_input("c");
  b.add_gate(GateType::And, "x", {"a", "b"});
  b.add_gate(GateType::And, "y", {"x", "c"});
  b.mark_output("y");
  return b.build();
}

TEST(FaultList, EnumeratesStemsAndFanoutBranches) {
  // a feeds both gates -> fanout 2 -> branch faults exist for each sink.
  netlist::CircuitBuilder b("fan");
  b.add_input("a");
  b.add_gate(GateType::Not, "n1", {"a"});
  b.add_gate(GateType::Not, "n2", {"a"});
  b.mark_output("n1");
  b.mark_output("n2");
  const Circuit c = b.build();
  const FaultList fl = FaultList::build(c);
  // Stems: 3 nodes * 2 = 6.  Branches: two sinks of 'a' * 2 = 4.
  EXPECT_EQ(fl.num_faults(), 10u);
}

TEST(FaultList, NoBranchFaultsWithoutFanout) {
  const Circuit c = make_and_chain();
  const FaultList fl = FaultList::build(c);
  // 5 nodes, no stem has fanout > 1 -> stems only.
  EXPECT_EQ(fl.num_faults(), 10u);
  for (const Fault& f : fl.faults()) {
    EXPECT_EQ(f.pin, sim::kStemPin);
  }
}

TEST(FaultList, AndGateCollapsing) {
  const Circuit c = make_and_chain();
  const FaultList fl = FaultList::build(c);
  // AND input SA0 == output SA0: {a0,b0,x0} collapse, {x0(in),c0,y0}
  // collapse; the two classes share x0 so all five join one class.
  // Classes: {a/0,b/0,x/0,c/0,y/0}, {a/1},{b/1},{c/1},{x/1},{y/1}
  EXPECT_EQ(fl.num_classes(), 6u);
}

TEST(FaultList, NotGateCollapsesWithInversion) {
  netlist::CircuitBuilder b("inv");
  b.add_input("a");
  b.add_gate(GateType::Not, "n", {"a"});
  b.mark_output("n");
  const Circuit c = b.build();
  const FaultList fl = FaultList::build(c);
  // a/0 == n/1 and a/1 == n/0: 4 faults -> 2 classes.
  EXPECT_EQ(fl.num_faults(), 4u);
  EXPECT_EQ(fl.num_classes(), 2u);
}

TEST(FaultList, XorGateDoesNotCollapse) {
  netlist::CircuitBuilder b("x");
  b.add_input("a");
  b.add_input("b");
  b.add_gate(GateType::Xor, "o", {"a", "b"});
  b.mark_output("o");
  const FaultList fl = FaultList::build(b.build());
  EXPECT_EQ(fl.num_classes(), fl.num_faults());
}

TEST(FaultList, DffBoundaryNotCollapsed) {
  netlist::CircuitBuilder b("ff");
  b.add_input("a");
  b.add_gate(GateType::Dff, "q", {"d"});
  b.add_gate(GateType::Buf, "d", {"a"});
  b.mark_output("q");
  const FaultList fl = FaultList::build(b.build());
  // a and d collapse through the BUF; q does not collapse with d.
  EXPECT_EQ(fl.num_classes(), 4u);
}

TEST(FaultList, S27FaultCounts) {
  const FaultList fl = FaultList::build(gen::make_s27());
  // 17 nodes * 2 stems = 34; fanout stems: G14(2), G8(2), G11(3), G12(2)
  // contribute 2+2+3+2 = 9 sinks * 2 = 18 branch faults.
  EXPECT_EQ(fl.num_faults(), 52u);
  // Collapsed count: hand-derived equivalences leave 32 classes.
  EXPECT_EQ(fl.num_classes(), 32u);
  // Every class id maps back to itself through its representative.
  for (FaultClassId id = 0; id < fl.num_classes(); ++id) {
    const Fault& rep = fl.representative(id);
    bool found = false;
    for (std::size_t i = 0; i < fl.num_faults(); ++i) {
      if (fl.faults()[i] == rep) {
        EXPECT_EQ(fl.class_of(i), id);
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(FaultName, FormatsStemAndBranch) {
  const Circuit c = gen::make_s27();
  const Fault stem{c.find("G17"), sim::kStemPin, false};
  EXPECT_EQ(fault_name(stem, c), "G17/SA0");
  const Fault branch{c.find("G8"), 1, true};
  EXPECT_EQ(fault_name(branch, c), "G8.in1/SA1");
}

TEST(FaultSim, DetectsStuckOutputOnS27) {
  const Circuit c = gen::make_s27();
  const FaultList fl = FaultList::build(c);
  FaultSimulator fsim(c, fl);
  Sequence seq;
  seq.frames.push_back(sim::vector3_from_string("1111"));
  // Fault-free PO (G17) is 1; G17/SA0 must be caught immediately.
  const FaultSet det = fsim.detect_no_scan(seq);
  bool g17_sa0_detected = false;
  for (FaultClassId id = 0; id < fl.num_classes(); ++id) {
    const Fault& rep = fl.representative(id);
    if (rep.node == c.find("G17") && rep.pin == sim::kStemPin &&
        !rep.value) {
      g17_sa0_detected = det.test(id);
    }
  }
  EXPECT_TRUE(g17_sa0_detected);
  EXPECT_GT(det.count(), 0u);
  EXPECT_LT(det.count(), fl.num_classes());
}

TEST(FaultSim, ScanObservationDetectsMoreThanPoObservation) {
  const Circuit c = gen::make_s27();
  const FaultList fl = FaultList::build(c);
  FaultSimulator fsim(c, fl);
  util::Rng rng(11);
  const Sequence seq = sim::random_sequence(c.num_inputs(), 6, rng);
  const Vector3 si = sim::random_vector(c.num_flip_flops(), rng);
  const FaultSet po_only = fsim.detect_no_scan(seq);
  const FaultSet with_scan = fsim.detect_scan_test(si, seq);
  // Scan adds controllability and observability; on s27 it must not lose
  // detections and generally gains some.
  EXPECT_GE(with_scan.count(), po_only.count());
}

TEST(FaultSim, TargetRestrictionLimitsWork) {
  const Circuit c = gen::make_s27();
  const FaultList fl = FaultList::build(c);
  FaultSimulator fsim(c, fl);
  util::Rng rng(12);
  const Sequence seq = sim::random_sequence(c.num_inputs(), 8, rng);
  const FaultSet all = fsim.detect_no_scan(seq);

  FaultSet targets(fl.num_classes());
  targets.set(0);
  targets.set(fl.num_classes() - 1);
  const FaultSet restricted = fsim.detect_no_scan(seq, &targets);
  EXPECT_TRUE(targets.contains(restricted));
  EXPECT_EQ(restricted.test(0), all.test(0));
  EXPECT_EQ(restricted.test(fl.num_classes() - 1),
            all.test(fl.num_classes() - 1));
}

TEST(FaultSim, DetectsAllAgreesWithDetectSet) {
  const Circuit c = gen::make_s27();
  const FaultList fl = FaultList::build(c);
  FaultSimulator fsim(c, fl);
  util::Rng rng(13);
  const Sequence seq = sim::random_sequence(c.num_inputs(), 10, rng);
  const Vector3 si = sim::random_vector(c.num_flip_flops(), rng);
  const FaultSet det = fsim.detect_scan_test(si, seq);
  EXPECT_TRUE(fsim.detects_all(si, seq, det));
  // Requiring one extra undetected fault must fail.
  FaultSet more = det;
  bool extended = false;
  for (FaultClassId id = 0; id < fl.num_classes() && !extended; ++id) {
    if (!more.test(id)) {
      more.set(id);
      extended = true;
    }
  }
  if (extended) {
    EXPECT_FALSE(fsim.detects_all(si, seq, more));
  }
}

TEST(FaultSim, DetectionTimesPrefixSemantics) {
  const Circuit c = gen::make_s27();
  const FaultList fl = FaultList::build(c);
  FaultSimulator fsim(c, fl);
  util::Rng rng(14);
  const Sequence seq = sim::random_sequence(c.num_inputs(), 12, rng);
  const Vector3 si = sim::random_vector(c.num_flip_flops(), rng);
  FaultSet all(fl.num_classes());
  all.fill();
  const auto times = fsim.detection_times(si, seq, all);

  // The record's prefix coverage must equal an explicit simulation of the
  // truncated test, for every prefix length.
  for (std::size_t u = 0; u < seq.length(); ++u) {
    const Sequence prefix = seq.subsequence(0, u);
    const FaultSet det = fsim.detect_scan_test(si, prefix);
    for (std::size_t k = 0; k < times.targets.size(); ++k) {
      EXPECT_EQ(times.detected_by_prefix(k, u), det.test(times.targets[k]))
          << "fault " << fault_name(fl.representative(times.targets[k]), c)
          << " prefix " << u;
    }
  }
}

// Property: detection-time records reproduce explicit prefix simulation
// on generated circuits (s27 version above; this sweeps random ones).
class DetectionTimesProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DetectionTimesProperty, PrefixSemanticsOnRandomCircuits) {
  gen::GenParams p;
  p.name = "dt";
  p.seed = GetParam() * 41 + 9;
  p.num_inputs = 4;
  p.num_outputs = 3;
  p.num_flip_flops = 5;
  p.num_gates = 40;
  const Circuit c = gen::generate_circuit(p);
  const FaultList fl = FaultList::build(c);
  FaultSimulator fsim(c, fl);
  util::Rng rng(GetParam() * 13 + 1);
  const Sequence seq = sim::random_sequence(c.num_inputs(), 9, rng);
  const Vector3 si = sim::random_vector(c.num_flip_flops(), rng);
  FaultSet all = fsim.all_faults();
  const auto times = fsim.detection_times(si, seq, all);
  // Check a few prefixes exhaustively.
  for (const std::size_t u : {2u, 5u, 8u}) {
    const FaultSet det = fsim.detect_scan_test(si, seq.subsequence(0, u));
    for (std::size_t k = 0; k < times.targets.size(); ++k) {
      EXPECT_EQ(times.detected_by_prefix(k, u), det.test(times.targets[k]))
          << "prefix " << u;
    }
  }
  // prefix_detection agrees with detect_scan_test on the full test.
  const auto light = fsim.prefix_detection(si, seq, all);
  EXPECT_EQ(light.detected, fsim.detect_scan_test(si, seq));
  // first_po times agree between the light and full records.
  for (std::size_t k = 0; k < times.targets.size(); ++k) {
    EXPECT_EQ(light.first_po[k], times.first_po[k]) << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectionTimesProperty,
                         ::testing::Range<std::uint64_t>(1, 7));

// Regression: PrefixDetection::all_detected() must check the targets
// actually simulated.  `detected` is indexed per *class* while `targets`
// is the simulated subset, so a count()-vs-size comparison breaks as
// soon as `detected` carries class bits outside that subset.
TEST(FaultSim, PrefixAllDetectedChecksSimulatedTargets) {
  const Circuit c = gen::make_s27();
  const FaultList fl = FaultList::build(c);
  FaultSimulator fsim(c, fl);
  util::Rng rng(23);
  const Sequence seq = sim::random_sequence(c.num_inputs(), 12, rng);
  const Vector3 si = sim::random_vector(c.num_flip_flops(), rng);

  // Non-trivial targets filter: exactly the classes the test covers.
  const FaultSet covered = fsim.detect_scan_test(si, seq);
  ASSERT_FALSE(covered.none());
  auto result = fsim.prefix_detection(si, seq, covered);
  EXPECT_TRUE(result.all_detected());

  // Merging unrelated per-class coverage into `detected` (count now
  // exceeds targets.size()) must not flip the answer.
  FaultSet extra(fl.num_classes());
  for (std::size_t i = 0; i < extra.size(); ++i) {
    if (!covered.test(i)) extra.set(i);
  }
  result.detected |= extra;
  EXPECT_TRUE(result.all_detected());

  // A targets filter containing an uncovered class must report false
  // even though other classes push the detected count past size().
  if (!extra.none()) {
    FaultSet with_missing = covered;
    with_missing.set(extra.find_first());
    const auto miss = fsim.prefix_detection(si, seq, with_missing);
    EXPECT_FALSE(miss.all_detected());
  }

  // Hand-built record pinning the per-class semantics.
  FaultSimulator::PrefixDetection pd;
  pd.targets = {0, 1};
  pd.first_po = {-1, -1};
  pd.detected = FaultSet(fl.num_classes());
  pd.detected.set(0);
  pd.detected.set(2);  // stray non-target class bits
  pd.detected.set(3);
  EXPECT_FALSE(pd.all_detected());  // target 1 missing
  pd.detected.set(1);
  EXPECT_TRUE(pd.all_detected());   // count() == 4 > targets.size() == 2
}

TEST(Session, LatchedEffectsCountsBinaryDifferences) {
  const Circuit c = gen::make_s27();
  const FaultList fl = FaultList::build(c);
  FaultSimulator fsim(c, fl);
  FaultSet targets = fsim.all_faults();
  FaultSimulator::Session session(fsim, targets);
  EXPECT_EQ(session.latched_effects(), 0u);  // all-X start: no effects
  util::Rng rng(4);
  const Sequence seq = sim::random_sequence(c.num_inputs(), 6, rng);
  std::size_t effects = 0;
  for (const auto& v : seq.frames) {
    (void)session.step(v);
    effects = std::max(effects, session.latched_effects());
  }
  EXPECT_GT(effects, 0u);  // some fault effect reaches the state
}

// Property: the parallel-fault simulator agrees with the independent
// serial single-fault golden model on random circuits.
class ParallelVsSerial : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelVsSerial, DetectionAgrees) {
  gen::GenParams p;
  p.name = "pv";
  p.seed = GetParam() * 31 + 5;
  p.num_inputs = 4;
  p.num_outputs = 3;
  p.num_flip_flops = 5;
  p.num_gates = 40;
  const Circuit c = gen::generate_circuit(p);
  const FaultList fl = FaultList::build(c);
  FaultSimulator fsim(c, fl);

  util::Rng rng(GetParam() * 101 + 7);
  const Sequence seq = sim::random_sequence(c.num_inputs(), 10, rng);
  const Vector3 si = sim::random_vector(c.num_flip_flops(), rng);

  const FaultSet no_scan = fsim.detect_no_scan(seq);
  const FaultSet scan = fsim.detect_scan_test(si, seq);
  for (FaultClassId id = 0; id < fl.num_classes(); ++id) {
    const Fault& rep = fl.representative(id);
    EXPECT_EQ(no_scan.test(id),
              test::serial_detects(c, rep, nullptr, seq, false))
        << "no-scan " << fault_name(rep, c);
    EXPECT_EQ(scan.test(id), test::serial_detects(c, rep, &si, seq, true))
        << "scan " << fault_name(rep, c);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelVsSerial,
                         ::testing::Range<std::uint64_t>(1, 13));

// Property: all members of a collapsed class behave identically.
class CollapseSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CollapseSoundness, ClassMembersIndistinguishable) {
  gen::GenParams p;
  p.name = "cs";
  p.seed = GetParam() * 77 + 3;
  p.num_inputs = 4;
  p.num_outputs = 3;
  p.num_flip_flops = 4;
  p.num_gates = 30;
  const Circuit c = gen::generate_circuit(p);
  const FaultList fl = FaultList::build(c);

  util::Rng rng(GetParam() * 997 + 1);
  const Sequence seq = sim::random_sequence(c.num_inputs(), 8, rng);
  const Vector3 si = sim::random_vector(c.num_flip_flops(), rng);

  // Every fault must be detected iff its representative is detected.
  for (std::size_t i = 0; i < fl.num_faults(); ++i) {
    const Fault& f = fl.faults()[i];
    const Fault& rep = fl.representative(fl.class_of(i));
    EXPECT_EQ(test::serial_detects(c, f, &si, seq, true),
              test::serial_detects(c, rep, &si, seq, true))
        << fault_name(f, c) << " vs " << fault_name(rep, c);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollapseSoundness,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace scanc::fault
