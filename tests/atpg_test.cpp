#include <gtest/gtest.h>

#include "atpg/comb_tset.hpp"
#include "atpg/podem.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "gen/circuit_gen.hpp"
#include "gen/embedded.hpp"
#include "netlist/circuit.hpp"
#include "sim/seq_sim.hpp"
#include "util/rng.hpp"

namespace scanc::atpg {
namespace {

using fault::Fault;
using fault::FaultClassId;
using fault::FaultList;
using fault::FaultSet;
using fault::FaultSimulator;
using netlist::Circuit;
using netlist::GateType;
using sim::V3;
using sim::Vector3;

// Applies a cube (with X randomly filled) as a length-1 scan test and
// checks whether it detects `fault`.
bool cube_detects(const Circuit& c, const FaultList& fl, const Fault& f,
                  const TestCube& cube, std::uint64_t seed) {
  util::Rng rng(seed);
  Vector3 state = cube.state;
  Vector3 inputs = cube.inputs;
  sim::randomize_x(state, rng);
  sim::randomize_x(inputs, rng);
  FaultSimulator fsim(c, fl);
  sim::Sequence seq;
  seq.frames.push_back(inputs);
  // Locate the class of this fault.
  for (std::size_t i = 0; i < fl.num_faults(); ++i) {
    if (fl.faults()[i] == f) {
      const FaultSet det = fsim.detect_scan_test(state, seq);
      return det.test(fl.class_of(i));
    }
  }
  ADD_FAILURE() << "fault not in list";
  return false;
}

TEST(Podem, FindsTestForSimpleAndGate) {
  netlist::CircuitBuilder b("and2");
  b.add_input("a");
  b.add_input("b");
  b.add_gate(GateType::And, "o", {"a", "b"});
  b.mark_output("o");
  const Circuit c = b.build();
  Podem podem(c);
  // o stuck-at-0 requires a=b=1.
  const PodemResult r =
      podem.generate(Fault{c.find("o"), sim::kStemPin, false});
  ASSERT_EQ(r.status, PodemStatus::Detected);
  EXPECT_EQ(r.cube.inputs[0], V3::One);
  EXPECT_EQ(r.cube.inputs[1], V3::One);
}

TEST(Podem, ProvesRedundantFaultUntestable) {
  // o = OR(a, NOT(a)) is constant 1: o stuck-at-1 is untestable.
  netlist::CircuitBuilder b("taut");
  b.add_input("a");
  b.add_gate(GateType::Not, "na", {"a"});
  b.add_gate(GateType::Or, "o", {"a", "na"});
  b.mark_output("o");
  const Circuit c = b.build();
  Podem podem(c);
  const PodemResult r =
      podem.generate(Fault{c.find("o"), sim::kStemPin, true});
  EXPECT_EQ(r.status, PodemStatus::Untestable);
  // ... while o stuck-at-0 is detected by any input.
  const PodemResult r2 =
      podem.generate(Fault{c.find("o"), sim::kStemPin, false});
  EXPECT_EQ(r2.status, PodemStatus::Detected);
}

TEST(Podem, UsesStateInputsForFaultsBehindFlipFlops) {
  // The fault is only excitable through the flip-flop's value: PODEM must
  // assign the PPI (scan) input.
  netlist::CircuitBuilder b("ffex");
  b.add_input("a");
  b.add_gate(GateType::Dff, "q", {"d"});
  b.add_gate(GateType::And, "x", {"a", "q"});
  b.add_gate(GateType::Buf, "d", {"a"});
  b.mark_output("x");
  const Circuit c = b.build();
  Podem podem(c);
  const PodemResult r =
      podem.generate(Fault{c.find("x"), sim::kStemPin, false});
  ASSERT_EQ(r.status, PodemStatus::Detected);
  EXPECT_EQ(r.cube.state[0], V3::One);
  EXPECT_EQ(r.cube.inputs[0], V3::One);
}

TEST(Podem, ObservesThroughFlipFlopCapture) {
  // The only observation point is a D line (PPO): detection must use the
  // scan-out observation.
  netlist::CircuitBuilder b("ppo");
  b.add_input("a");
  b.add_input("en");
  b.add_gate(GateType::Dff, "q", {"d"});
  b.add_gate(GateType::And, "d", {"a", "en"});
  b.add_gate(GateType::Buf, "o", {"q"});
  b.mark_output("o");
  const Circuit c = b.build();
  Podem podem(c);
  const Fault f{c.find("d"), sim::kStemPin, false};
  const PodemResult r = podem.generate(f);
  ASSERT_EQ(r.status, PodemStatus::Detected);
  const FaultList fl = FaultList::build(c);
  EXPECT_TRUE(cube_detects(c, fl, f, r.cube, 5));
}

// Property: on random circuits, every Detected cube really detects its
// fault, and every Untestable verdict is confirmed by exhaustive
// enumeration (the circuits are small enough to brute-force).
class PodemSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PodemSoundness, CubesDetectAndUntestableConfirmed) {
  gen::GenParams p;
  p.name = "pod";
  p.seed = GetParam() * 13 + 1;
  p.num_inputs = 4;
  p.num_outputs = 3;
  p.num_flip_flops = 3;  // 7 assignable bits -> brute force 128 patterns
  p.num_gates = 35;
  const Circuit c = gen::generate_circuit(p);
  const FaultList fl = FaultList::build(c);
  FaultSimulator fsim(c, fl);
  Podem podem(c);

  for (FaultClassId id = 0; id < fl.num_classes(); ++id) {
    const Fault& f = fl.representative(id);
    const PodemResult r = podem.generate(f);
    if (r.status == PodemStatus::Detected) {
      EXPECT_TRUE(cube_detects(c, fl, f, r.cube, GetParam()))
          << fault_name(f, c);
    } else if (r.status == PodemStatus::Untestable) {
      // Exhaustive check: no (state, input) pattern detects it.
      const std::size_t bits = c.num_inputs() + c.num_flip_flops();
      ASSERT_LE(bits, 16u);
      bool detected = false;
      for (std::uint64_t pat = 0; pat < (1ull << bits) && !detected;
           ++pat) {
        Vector3 inputs(c.num_inputs());
        Vector3 state(c.num_flip_flops());
        for (std::size_t i = 0; i < c.num_inputs(); ++i) {
          inputs[i] = sim::v3_from_bool((pat >> i) & 1);
        }
        for (std::size_t i = 0; i < c.num_flip_flops(); ++i) {
          state[i] = sim::v3_from_bool((pat >> (c.num_inputs() + i)) & 1);
        }
        sim::Sequence seq;
        seq.frames.push_back(inputs);
        detected = fsim.detect_scan_test(state, seq).test(id);
      }
      EXPECT_FALSE(detected)
          << fault_name(f, c) << " claimed untestable but a test exists";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PodemSoundness,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(CombTestSet, CoversS27Completely) {
  const Circuit c = gen::make_s27();
  const FaultList fl = FaultList::build(c);
  const CombTestSet ts = generate_comb_test_set(c, fl, {});
  EXPECT_EQ(ts.aborted, 0u);
  // All of s27's 32 collapsed faults are combinationally testable.
  EXPECT_EQ(ts.proven_untestable, 0u);
  EXPECT_EQ(ts.detected.count(), fl.num_classes());
  EXPECT_GE(ts.tests.size(), 4u);
  EXPECT_LE(ts.tests.size(), 12u);
  // Tests are fully specified (random-filled).
  for (const CombTest& t : ts.tests) {
    EXPECT_TRUE(sim::fully_specified(t.state));
    EXPECT_TRUE(sim::fully_specified(t.inputs));
  }
}

TEST(CombTestSet, ReverseCompactionPreservesCoverage) {
  gen::GenParams p;
  p.name = "rc";
  p.seed = 99;
  p.num_inputs = 6;
  p.num_outputs = 4;
  p.num_flip_flops = 8;
  p.num_gates = 120;
  const Circuit c = gen::generate_circuit(p);
  const FaultList fl = FaultList::build(c);
  CombTestSetOptions opt;
  opt.compaction = TestSetCompaction::None;
  const CombTestSet raw = generate_comb_test_set(c, fl, opt);
  opt.compaction = TestSetCompaction::ReverseOrder;
  const CombTestSet reverse = generate_comb_test_set(c, fl, opt);
  opt.compaction = TestSetCompaction::GreedyCover;
  const CombTestSet compacted = generate_comb_test_set(c, fl, opt);
  EXPECT_EQ(reverse.detected, raw.detected);
  EXPECT_LE(reverse.tests.size(), raw.tests.size());
  EXPECT_LE(compacted.tests.size(), reverse.tests.size());
  EXPECT_EQ(compacted.detected, raw.detected);
  EXPECT_LE(compacted.tests.size(), raw.tests.size());

  // Re-simulating the compacted set reproduces exactly its claimed
  // coverage.
  FaultSimulator fsim(c, fl);
  FaultSet redetected(fl.num_classes());
  for (const CombTest& t : compacted.tests) {
    redetected |= detect_comb_test(fsim, t);
  }
  EXPECT_TRUE(redetected.contains(compacted.detected));
}

TEST(CombTestSet, RandomSourceCoversMostFaults) {
  gen::GenParams p;
  p.name = "rnd";
  p.seed = 7;
  p.num_inputs = 6;
  p.num_outputs = 4;
  p.num_flip_flops = 6;
  p.num_gates = 100;
  const Circuit c = gen::generate_circuit(p);
  const FaultList fl = FaultList::build(c);
  const CombTestSet ts = generate_random_comb_test_set(c, fl, {});
  // Random patterns typically reach the bulk of the faults quickly.
  EXPECT_GE(ts.detected.count(), fl.num_classes() * 3 / 4);
  EXPECT_EQ(ts.proven_untestable, 0u);
}

TEST(CombTestSet, NDetectProvidesRepeatedDetections) {
  gen::GenParams p;
  p.name = "nd";
  p.seed = 55;
  p.num_inputs = 6;
  p.num_outputs = 4;
  p.num_flip_flops = 6;
  p.num_gates = 80;
  const Circuit c = gen::generate_circuit(p);
  const FaultList fl = FaultList::build(c);

  CombTestSetOptions one;
  const CombTestSet t1 = generate_comb_test_set(c, fl, one);
  CombTestSetOptions three = one;
  three.n_detect = 3;
  const CombTestSet t3 = generate_comb_test_set(c, fl, three);

  // Same single-detection coverage, more tests overall.
  EXPECT_EQ(t3.detected, t1.detected);
  EXPECT_GE(t3.tests.size(), t1.tests.size());

  // Every detected fault is caught by min(3, achievable-by-set) distinct
  // tests; verify >= 2 detections for most (a strict per-fault bound of
  // "achievable" would need an exhaustive test enumeration).
  FaultSimulator fsim(c, fl);
  std::vector<int> hits(fl.num_classes(), 0);
  for (const CombTest& t : t3.tests) {
    detect_comb_test(fsim, t).for_each([&](std::size_t f) { ++hits[f]; });
  }
  std::size_t multi = 0;
  std::size_t detected = 0;
  t3.detected.for_each([&](std::size_t f) {
    ++detected;
    if (hits[f] >= 2) ++multi;
  });
  EXPECT_GE(multi * 10, detected * 7) << "most faults multiply detected";
}

TEST(CombTestSet, CheckpointTargetingKeepsExactCoverage) {
  gen::GenParams p;
  p.name = "cp";
  p.seed = 66;
  p.num_inputs = 6;
  p.num_outputs = 4;
  p.num_flip_flops = 8;
  p.num_gates = 110;
  const Circuit c = gen::generate_circuit(p);
  const FaultList fl = FaultList::build(c);

  CombTestSetOptions full;
  const CombTestSet a = generate_comb_test_set(c, fl, full);
  CombTestSetOptions cps = full;
  cps.checkpoints_only = true;
  const CombTestSet b = generate_comb_test_set(c, fl, cps);

  // The fallback pass makes checkpoint targeting coverage-exact.
  EXPECT_EQ(b.detected.count(), a.detected.count());
  EXPECT_EQ(b.proven_untestable + b.aborted,
            a.proven_untestable + a.aborted);
}

TEST(CombTestSet, AtpgCoverageAtLeastRandomCoverage) {
  gen::GenParams p;
  p.name = "cmp";
  p.seed = 21;
  p.num_inputs = 5;
  p.num_outputs = 4;
  p.num_flip_flops = 6;
  p.num_gates = 90;
  const Circuit c = gen::generate_circuit(p);
  const FaultList fl = FaultList::build(c);
  const CombTestSet atpg = generate_comb_test_set(c, fl, {});
  const CombTestSet rnd = generate_random_comb_test_set(c, fl, {});
  EXPECT_GE(atpg.detected.count(), rnd.detected.count());
}

}  // namespace
}  // namespace scanc::atpg
