// Tests for the differential fuzzing subsystem (src/check/): workload
// determinism, oracle agreement on hand-built circuits, the seeded
// regression corpus, the targeted cone-kernel audit cases, and the
// TraceCache copy-on-write contract the fuzzer's warm configurations
// lean on.  The open-ended hunt lives in the fuzz_check binary; these
// tests pin fixed seeds so a regression fails deterministically in CI.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "check/differ.hpp"
#include "check/oracle_sim.hpp"
#include "check/shrink.hpp"
#include "check/workload.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "fault/model.hpp"
#include "netlist/circuit.hpp"
#include "sim/trace_cache.hpp"
#include "util/rng.hpp"

namespace scanc {
namespace {

using check::CheckConfig;
using check::Workload;
using fault::FaultList;
using fault::FaultSet;
using fault::FaultSimulator;
using netlist::Circuit;
using netlist::GateType;
using sim::Sequence;
using sim::Vector3;

// Names the classes present in exactly one of the two sets.
std::string set_delta(const FaultSet& full, const FaultSet& cone,
                      const FaultList& fl, const Circuit& c) {
  std::string out;
  for (fault::FaultClassId id = 0; id < full.size(); ++id) {
    if (full.test(id) == cone.test(id)) continue;
    out += full.test(id) ? " full-only:" : " cone-only:";
    out += fault::fault_name(fl.representative(id), c);
  }
  return out;
}

// --- Workload generation ----------------------------------------------

TEST(CheckWorkload, DeterministicExpansion) {
  const Workload a = check::make_workload(12345);
  const Workload b = check::make_workload(12345);
  EXPECT_EQ(a.circuit.num_nodes(), b.circuit.num_nodes());
  EXPECT_EQ(a.scan_mask, b.scan_mask);
  EXPECT_EQ(a.targets, b.targets);
  ASSERT_EQ(a.tests.size(), b.tests.size());
  for (std::size_t i = 0; i < a.tests.size(); ++i) {
    EXPECT_EQ(a.tests[i].scan_in, b.tests[i].scan_in);
    EXPECT_EQ(a.tests[i].seq.frames, b.tests[i].seq.frames);
  }
  EXPECT_EQ(a.no_scan_seq.frames, b.no_scan_seq.frames);
}

TEST(CheckWorkload, CoversAdversarialShapes) {
  // Over 256 seeds the generator must produce every shape the fuzzer
  // promises to stress: flip-flop-free circuits, empty scan masks,
  // length-0 sequences, and all-X scan-in vectors.
  bool saw_no_ff = false, saw_empty_mask = false;
  bool saw_len0 = false, saw_all_x = false;
  for (std::uint64_t s = 0; s < 256; ++s) {
    const Workload w = check::make_workload(s * 7919 + 1);
    if (w.circuit.num_flip_flops() == 0) saw_no_ff = true;
    if (w.circuit.num_flip_flops() > 0 && w.scan_mask.count() == 0) {
      saw_empty_mask = true;
    }
    for (const tcomp::ScanTest& t : w.tests) {
      if (t.seq.length() == 0) saw_len0 = true;
      bool all_x = t.scan_in.size() > 0;
      for (std::size_t i = 0; i < t.scan_in.size(); ++i) {
        if (t.scan_in[i] != sim::V3::X) all_x = false;
      }
      if (all_x) saw_all_x = true;
    }
  }
  EXPECT_TRUE(saw_no_ff);
  EXPECT_TRUE(saw_empty_mask);
  EXPECT_TRUE(saw_len0);
  EXPECT_TRUE(saw_all_x);
}

// --- Oracle vs production kernels on a hand-built circuit -------------

// One FF fed straight from a PI (the scan path is pi -> d -> ff), with
// the FF read both by a PO gate and by its own next-state logic.
Circuit scan_path_circuit() {
  netlist::CircuitBuilder b("spath");
  b.add_input("pi");
  b.add_input("en");
  b.add_gate(GateType::Buf, "d", {"pi"});
  b.add_gate(GateType::Dff, "q", {"d"});
  b.add_gate(GateType::And, "po", {"q", "en"});
  b.mark_output("po");
  return b.build();
}

TEST(CheckOracle, AgreesWithFullKernelOnEveryFault) {
  const Circuit c = scan_path_circuit();
  const FaultList fl = FaultList::build(c);
  FaultSimulator fsim(c, fl);
  Sequence seq;
  seq.frames.push_back(sim::vector3_from_string("10"));
  seq.frames.push_back(sim::vector3_from_string("01"));
  seq.frames.push_back(sim::vector3_from_string("11"));
  const Vector3 si = sim::vector3_from_string("0");
  const FaultSet det = fsim.detect_scan_test(si, seq);
  for (std::size_t i = 0; i < fl.num_faults(); ++i) {
    const fault::Fault& f = fl.faults()[i];
    const check::OracleResult o =
        check::oracle_run(c, fsim.scan_mask(), f, &si, seq, true);
    EXPECT_EQ(o.detected, det.test(fl.class_of(i)))
        << "fault " << fault::fault_name(f, c);
  }
}

TEST(CheckOracle, StemFaultOnFfIsNotCaptured) {
  // PPO convention: a stuck-at on the FF's Q stem corrupts every reader
  // but not the latch content, so it must be PO-detectable yet invisible
  // to scan-out.  q/SA1 with en=1, pi=0, scan-in 0: PO reads q=1 vs 0
  // (detected at a PO), but the captured chain content stays fault-free.
  const Circuit c = scan_path_circuit();
  const FaultList fl = FaultList::build(c);
  FaultSimulator fsim(c, fl);
  const netlist::NodeId q = c.find("q");
  for (std::size_t i = 0; i < fl.num_faults(); ++i) {
    const fault::Fault& f = fl.faults()[i];
    if (f.node != q || f.pin != sim::kStemPin || !f.value) continue;
    Sequence seq;
    seq.frames.push_back(sim::vector3_from_string("01"));
    const Vector3 si = sim::vector3_from_string("0");
    const check::OracleResult o =
        check::oracle_run(c, fsim.scan_mask(), f, &si, seq, true);
    EXPECT_TRUE(o.detected);
    EXPECT_EQ(o.first_po, 0);
    ASSERT_EQ(o.state_diff.size(), 1u);
    EXPECT_EQ(o.state_diff[0], 0) << "stem fault must not corrupt capture";
    return;
  }
  FAIL() << "q stem SA1 not in fault list";
}

// --- Transition-delay faults: oracle vs kernels -----------------------

TEST(CheckOracleTdf, AgreesWithBothKernelsOnEveryFault) {
  // The scalar launch/capture interpreter and the packed frame-gated
  // kernels must agree fault-by-fault, in both kernel modes.
  const Circuit c = scan_path_circuit();
  const FaultList fl = FaultList::build(c, fault::FaultModel::transition());
  Sequence seq;
  seq.frames.push_back(sim::vector3_from_string("10"));
  seq.frames.push_back(sim::vector3_from_string("01"));
  seq.frames.push_back(sim::vector3_from_string("11"));
  seq.frames.push_back(sim::vector3_from_string("01"));
  const Vector3 si = sim::vector3_from_string("0");
  for (const fault::KernelMode mode :
       {fault::KernelMode::Full, fault::KernelMode::Cone}) {
    FaultSimulator fsim(c, fl);
    fsim.set_kernel(mode);
    const FaultSet det = fsim.detect_scan_test(si, seq);
    for (std::size_t i = 0; i < fl.num_faults(); ++i) {
      const fault::Fault& f = fl.faults()[i];
      const check::OracleResult o = check::oracle_run(
          c, fsim.scan_mask(), fl.model(), f, &si, seq, true);
      EXPECT_EQ(o.detected, det.test(fl.class_of(i)))
          << "fault " << fault::fault_name(f, c, fl.model()) << " kernel "
          << static_cast<int>(mode);
    }
  }
}

TEST(CheckOracleTdf, LaunchCaptureSemanticsByHand) {
  // q/STR (slow-to-rise) on the FF output: scan-in q=0, pi=1 in frame 0
  // captures q=1 for frame 1 — the launch.  In that one frame the site
  // behaves as stuck-at-0, so po = q&en flips 1 -> 0 iff en=1 there.
  const Circuit c = scan_path_circuit();
  const FaultList fl = FaultList::build(c, fault::FaultModel::transition());
  const netlist::NodeId q = c.find("q");
  const fault::Fault* str = nullptr;
  for (const fault::Fault& f : fl.faults()) {
    if (f.node == q && !f.value) str = &f;  // stale 0 = slow-to-rise
  }
  ASSERT_NE(str, nullptr) << "q/STR not enumerated";
  FaultSimulator fsim(c, fl);
  Sequence launch_observed;  // en=1 at the capture frame
  launch_observed.frames.push_back(sim::vector3_from_string("10"));
  launch_observed.frames.push_back(sim::vector3_from_string("01"));
  const Vector3 si = sim::vector3_from_string("0");
  const check::OracleResult o = check::oracle_run(
      c, fsim.scan_mask(), fl.model(), *str, &si, launch_observed, true);
  EXPECT_TRUE(o.detected);
  EXPECT_EQ(o.first_po, 1);

  // Same launch with en=0 at the capture frame: active but unobserved at
  // the PO, and the FF stem corruption is never captured (PPO rule), so
  // scan-out sees nothing either.
  Sequence launch_masked;
  launch_masked.frames.push_back(sim::vector3_from_string("10"));
  launch_masked.frames.push_back(sim::vector3_from_string("00"));
  const check::OracleResult m = check::oracle_run(
      c, fsim.scan_mask(), fl.model(), *str, &si, launch_masked, true);
  EXPECT_FALSE(m.detected);

  // No transition at the site (pi held 0): never active.
  Sequence quiet;
  quiet.frames.push_back(sim::vector3_from_string("01"));
  quiet.frames.push_back(sim::vector3_from_string("01"));
  const check::OracleResult n = check::oracle_run(
      c, fsim.scan_mask(), fl.model(), *str, &si, quiet, true);
  EXPECT_FALSE(n.detected);
}

// --- Seeded regression corpus -----------------------------------------

TEST(CheckCorpus, FixedSeedsRunClean) {
  // The ctest-side slice of the fuzzer: a fixed corpus that re-runs the
  // whole comparison matrix on every build.  Any divergence is a real
  // kernel/compaction bug — fuzz_check --seed=<seed> --iters=1 repros it.
  CheckConfig cfg;
  cfg.threads = 4;
  std::uint64_t state = 0xC0FFEE;
  for (int i = 0; i < 250; ++i) {
    const std::uint64_t seed = util::splitmix64(state);
    const check::CaseReport r = check_case(check::make_workload(seed), cfg);
    for (const std::string& d : r.divergences) {
      ADD_FAILURE() << "seed " << seed << ": " << d;
    }
    if (r.failed()) break;
  }
}

TEST(CheckCorpus, FixedSeedsRunCleanTransition) {
  // The same matrix under the transition model: every configuration
  // (full/cone/auto, cold/warm, serial/parallel) plus the scalar TDF
  // oracle must agree on the frame-gated semantics.
  CheckConfig cfg;
  cfg.threads = 4;
  std::uint64_t state = 0xBEEFED;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t seed = util::splitmix64(state);
    const check::CaseReport r = check_case(
        check::make_workload(seed, fault::FaultModel::transition()), cfg);
    for (const std::string& d : r.divergences) {
      ADD_FAILURE() << "seed " << seed << ": " << d;
    }
    if (r.failed()) break;
  }
}

// --- Targeted cone-kernel audit cases ---------------------------------

// Satellite audit: with an all-X scan-in, the cone kernel's whole-frame
// skipping starts from a state where every cone FF is X, and a fault
// injected on the scan path (the FF's D-side logic) must still wake the
// cone and reach the scan-out observation.  These cases pin the exact
// shapes the audit covered, under both full and partial scan.
TEST(CheckConeAudit, AllXScanInWithScanPathFault) {
  const Circuit c = scan_path_circuit();
  const FaultList fl = FaultList::build(c);
  Sequence seq;
  seq.frames.push_back(sim::vector3_from_string("1x"));
  seq.frames.push_back(sim::vector3_from_string("0x"));
  const Vector3 all_x = sim::vector3_from_string("x");
  FaultSimulator full(c, fl);
  full.set_kernel(fault::KernelMode::Full);
  FaultSimulator cone(c, fl);
  cone.set_kernel(fault::KernelMode::Cone);
  EXPECT_EQ(full.detect_scan_test(all_x, seq),
            cone.detect_scan_test(all_x, seq));
  // detect_no_scan starts all-X too — same skipping hazard, PO-only.
  EXPECT_EQ(full.detect_no_scan(seq), cone.detect_no_scan(seq));
}

TEST(CheckConeAudit, PartialScanUnscannedConeFf) {
  // Two FFs, only one scanned: the unscanned FF's position is forced to
  // X on every load, so the cone around it must never claim a binary
  // fault-free reference there.
  netlist::CircuitBuilder b("pcone");
  b.add_input("a");
  b.add_gate(GateType::Dff, "q0", {"d0"});
  b.add_gate(GateType::Dff, "q1", {"d1"});
  b.add_gate(GateType::Not, "d0", {"q1"});
  b.add_gate(GateType::Xor, "d1", {"a", "q0"});
  b.add_gate(GateType::Or, "po", {"q0", "q1"});
  b.mark_output("po");
  const Circuit c = b.build();
  const FaultList fl = FaultList::build(c);
  util::Bitset mask(2);
  mask.set(0);  // q0 scanned, q1 not
  Sequence seq;
  seq.frames.push_back(sim::vector3_from_string("1"));
  seq.frames.push_back(sim::vector3_from_string("0"));
  seq.frames.push_back(sim::vector3_from_string("1"));
  // scan_in spans *all* flip-flops; the unscanned q1 position must be
  // forced to X regardless of what the caller wrote there.
  for (const char* si_str : {"0x", "1x", "xx", "01", "10"}) {
    const Vector3 si = sim::vector3_from_string(si_str);
    FaultSimulator full(c, fl, mask);
    full.set_kernel(fault::KernelMode::Full);
    FaultSimulator cone(c, fl, mask);
    cone.set_kernel(fault::KernelMode::Cone);
    const FaultSet df = full.detect_scan_test(si, seq);
    const FaultSet dc = cone.detect_scan_test(si, seq);
    EXPECT_EQ(df, dc) << "scan-in " << si_str
                      << set_delta(df, dc, fl, c);
  }
}

// --- TraceCache copy-on-write -----------------------------------------

TEST(TraceCacheCow, HeldTraceSurvivesExtendingGet) {
  const Workload w = check::make_workload(99);
  sim::TraceCache cache(w.circuit, 4);
  Sequence shorter;
  Sequence longer;
  util::Rng rng(7);
  for (int t = 0; t < 6; ++t) {
    Vector3 v(w.circuit.num_inputs());
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = rng.coin() ? sim::V3::One : sim::V3::Zero;
    }
    longer.frames.push_back(v);
    if (t < 3) shorter.frames.push_back(v);
  }

  // Hold the short trace across a get() that extends the cached entry.
  const auto held = cache.get(nullptr, shorter);
  ASSERT_EQ(held->length(), 3u);
  std::vector<sim::V3> frame0(held->frame(0).begin(), held->frame(0).end());

  const auto extended = cache.get(nullptr, longer);
  EXPECT_EQ(cache.extensions(), 1u);
  ASSERT_EQ(extended->length(), 6u);
  // Copy-on-write: the holder's trace is physically untouched...
  EXPECT_NE(held.get(), extended.get());
  EXPECT_EQ(held->length(), 3u);
  EXPECT_TRUE(std::equal(frame0.begin(), frame0.end(),
                         held->frame(0).begin()));
  // ...and the extension agrees with it on the shared prefix.
  for (std::size_t t = 0; t < 3; ++t) {
    const auto a = held->frame(t);
    const auto b = extended->frame(t);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin())) << "frame " << t;
  }
}

TEST(TraceCacheCow, UnsharedEntryExtendsInPlace) {
  const Workload w = check::make_workload(99);
  sim::TraceCache cache(w.circuit, 4);
  Sequence shorter;
  Sequence longer;
  for (int t = 0; t < 4; ++t) {
    Vector3 v(w.circuit.num_inputs(), sim::V3::One);
    longer.frames.push_back(v);
    if (t < 2) shorter.frames.push_back(v);
  }
  const sim::NodeTrace* raw = nullptr;
  {
    const auto held = cache.get(nullptr, shorter);
    raw = held.get();
  }  // released: only the cache entry still owns the trace
  const auto extended = cache.get(nullptr, longer);
  EXPECT_EQ(cache.extensions(), 1u);
  EXPECT_EQ(extended.get(), raw) << "no holder -> extend in place";
  EXPECT_EQ(extended->length(), 4u);
}

// --- Per-case watchdog -------------------------------------------------

TEST(CheckWatchdog, ExpiredBudgetCutsCaseAsTimeoutNotDivergence) {
  // A watchdog that fires immediately must cut the case at the first
  // comparison boundary: the report says timed_out, and the cut itself
  // contributes no divergence (a slow case is not a wrong case).
  CheckConfig cfg;
  cfg.threads = 2;
  cfg.max_case_seconds = 1e-9;
  const check::CaseReport r = check_case(check::make_workload(12345), cfg);
  EXPECT_TRUE(r.timed_out);
  EXPECT_TRUE(r.divergences.empty());
  EXPECT_FALSE(r.failed());
}

TEST(CheckWatchdog, GenerousBudgetRunsTheFullMatrix) {
  // With a budget the case cannot exhaust, the watchdog must be
  // invisible: same comparison count as a run with no watchdog at all.
  CheckConfig plain;
  plain.threads = 2;
  const check::CaseReport base = check_case(check::make_workload(777), plain);
  CheckConfig guarded = plain;
  guarded.max_case_seconds = 3600.0;
  const check::CaseReport r = check_case(check::make_workload(777), guarded);
  EXPECT_FALSE(r.timed_out);
  EXPECT_EQ(r.comparisons, base.comparisons);
  EXPECT_EQ(r.divergences, base.divergences);
}

// --- Shrinker output ---------------------------------------------------

TEST(CheckShrink, ReproIsStandalone) {
  const Workload w = check::make_workload(4242);
  check::CaseReport report;
  report.divergences.push_back("synthetic divergence for formatting");
  std::ostringstream out;
  check::write_repro(out, w, report);
  const std::string text = out.str();
  EXPECT_NE(text.find("seed=4242"), std::string::npos);
  EXPECT_NE(text.find("synthetic divergence"), std::string::npos);
  EXPECT_NE(text.find("INPUT("), std::string::npos);
  EXPECT_NE(text.find("OUTPUT("), std::string::npos);
}

}  // namespace
}  // namespace scanc
