#include <gtest/gtest.h>

#include "gen/circuit_gen.hpp"
#include "gen/suite.hpp"
#include "netlist/bench_writer.hpp"
#include "sim/seq_sim.hpp"
#include "util/rng.hpp"

namespace scanc::gen {
namespace {

using netlist::Circuit;

GenParams small_params(std::uint64_t seed) {
  GenParams p;
  p.name = "t";
  p.seed = seed;
  p.num_inputs = 5;
  p.num_outputs = 4;
  p.num_flip_flops = 8;
  p.num_gates = 80;
  return p;
}

TEST(CircuitGen, MatchesRequestedInterface) {
  const Circuit c = generate_circuit(small_params(42));
  EXPECT_EQ(c.num_inputs(), 5u);
  EXPECT_EQ(c.num_flip_flops(), 8u);
  // POs may dedup by one when the parity root coincides with a chosen PO.
  EXPECT_GE(c.num_outputs(), 3u);
  EXPECT_LE(c.num_outputs(), 4u);
}

TEST(CircuitGen, GateCountNearTarget) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    GenParams p = small_params(seed);
    p.num_gates = 200;
    const Circuit c = generate_circuit(p);
    EXPECT_GE(c.num_gates(), 150u) << seed;
    EXPECT_LE(c.num_gates(), 260u) << seed;
  }
}

TEST(CircuitGen, DeterministicForSameSeed) {
  const Circuit a = generate_circuit(small_params(7));
  const Circuit b = generate_circuit(small_params(7));
  EXPECT_EQ(netlist::to_bench_string(a), netlist::to_bench_string(b));
}

TEST(CircuitGen, DifferentSeedsDiffer) {
  const Circuit a = generate_circuit(small_params(7));
  const Circuit b = generate_circuit(small_params(8));
  EXPECT_NE(netlist::to_bench_string(a), netlist::to_bench_string(b));
}

TEST(CircuitGen, RejectsDegenerateParams) {
  GenParams p = small_params(1);
  p.num_inputs = 0;
  EXPECT_THROW((void)generate_circuit(p), std::invalid_argument);
  p = small_params(1);
  p.num_outputs = 0;
  EXPECT_THROW((void)generate_circuit(p), std::invalid_argument);
}

TEST(CircuitGen, NoDanglingSignals) {
  const Circuit c = generate_circuit(small_params(9));
  for (netlist::NodeId id = 0; id < c.num_nodes(); ++id) {
    const bool used = !c.node(id).fanouts.empty() || c.is_primary_output(id);
    EXPECT_TRUE(used) << c.node(id).name;
  }
}

// The key structural property for the paper's procedure: circuits must be
// initializable from the all-X state by primary inputs alone.
class Initializability : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Initializability, RandomSequenceResolvesMostState) {
  GenParams p = small_params(GetParam());
  p.num_flip_flops = 12;
  p.num_gates = 120;
  const Circuit c = generate_circuit(p);
  util::Rng rng(GetParam() ^ 0xabcdef);
  const sim::Sequence seq = sim::random_sequence(c.num_inputs(), 64, rng);
  const sim::Trace t = sim::simulate_fault_free(c, nullptr, seq);
  std::size_t binary = 0;
  for (const sim::V3 v : t.states.back()) {
    if (sim::is_binary(v)) ++binary;
  }
  // At least half the flip-flops settle to known values.
  EXPECT_GE(binary, c.num_flip_flops() / 2) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Initializability,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(Suite, HasAllPaperCircuits) {
  EXPECT_EQ(suite().size(), 19u);
  EXPECT_TRUE(find_suite_entry("s298").has_value());
  EXPECT_TRUE(find_suite_entry("s35932").has_value());
  EXPECT_TRUE(find_suite_entry("b11").has_value());
  EXPECT_FALSE(find_suite_entry("nope").has_value());
}

TEST(Suite, NamesExcludeLargeByDefault) {
  const auto names = suite_names(false);
  EXPECT_EQ(names.size(), 18u);
  for (const auto& n : names) EXPECT_NE(n, "s35932");
  const auto all = suite_names(true);
  EXPECT_EQ(all.size(), 19u);
}

TEST(Suite, EntriesCarryPaperNumbers) {
  const auto e = find_suite_entry("s298");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->paper.flip_flops, 14);
  EXPECT_EQ(e->paper.total_faults, 308);
  EXPECT_EQ(e->paper.len_t0, 117);
  EXPECT_EQ(e->params.num_flip_flops, 14u);
}

TEST(Suite, CircuitsBuildWithMatchingInterface) {
  for (const SuiteEntry& e : suite()) {
    if (e.large) continue;  // s35932 covered in the bench run
    if (e.params.num_gates > 1000) continue;  // keep unit tests fast
    const Circuit c = build_suite_circuit(e);
    EXPECT_EQ(c.num_inputs(), e.params.num_inputs) << e.params.name;
    EXPECT_EQ(c.num_flip_flops(), e.params.num_flip_flops) << e.params.name;
  }
}

}  // namespace
}  // namespace scanc::gen
