// Unit tests for the flat simulation kernel substrate: the CSR/levelized
// schedule (netlist/csr.hpp), the shared fault-free NodeTrace and its
// prefix-aware cache (sim/node_trace.hpp, sim/trace_cache.hpp), and the
// per-group cone precomputation (sim/cone_kernel.hpp).  The end-to-end
// cone-vs-full equivalence sweeps live in parallel_equiv_test.cpp; these
// tests pin the structural invariants each layer promises.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <vector>

#include "fault/fault_list.hpp"
#include "fault/group_worker.hpp"
#include "gen/circuit_gen.hpp"
#include "netlist/circuit.hpp"
#include "netlist/csr.hpp"
#include "sim/cone_kernel.hpp"
#include "sim/node_trace.hpp"
#include "sim/seq_sim.hpp"
#include "sim/trace_cache.hpp"
#include "util/rng.hpp"

namespace scanc {
namespace {

using netlist::CsrSchedule;
using netlist::GateType;
using netlist::NodeId;
using sim::Sequence;
using sim::V3;
using sim::Vector3;

netlist::Circuit make_circuit(std::uint64_t seed, std::size_t gates = 180) {
  gen::GenParams p;
  p.name = "csr";
  p.seed = seed;
  p.num_inputs = 5;
  p.num_outputs = 4;
  p.num_flip_flops = 9;
  p.num_gates = gates;
  return gen::generate_circuit(p);
}

// --- CsrSchedule ------------------------------------------------------

TEST(CsrSchedule, MirrorsNodeConnectivity) {
  const netlist::Circuit c = make_circuit(11);
  const CsrSchedule& csr = c.csr();
  ASSERT_EQ(csr.num_nodes(), c.num_nodes());
  for (NodeId id = 0; id < c.num_nodes(); ++id) {
    const netlist::Node& n = c.node(id);
    EXPECT_EQ(csr.types[id], n.type);
    const std::span<const NodeId> fi = csr.fanins(id);
    ASSERT_EQ(fi.size(), n.fanins.size());
    EXPECT_TRUE(std::equal(fi.begin(), fi.end(), n.fanins.begin()));
    const std::span<const NodeId> fo = csr.fanouts(id);
    ASSERT_EQ(fo.size(), n.fanouts.size());
    EXPECT_TRUE(std::equal(fo.begin(), fo.end(), n.fanouts.begin()));
  }
}

TEST(CsrSchedule, OrderIsLevelMajorAndComplete) {
  const netlist::Circuit c = make_circuit(12);
  const CsrSchedule& csr = c.csr();
  ASSERT_EQ(csr.order.size(), c.num_gates());

  // Every combinational gate appears exactly once; sources never do.
  std::set<NodeId> seen(csr.order.begin(), csr.order.end());
  ASSERT_EQ(seen.size(), csr.order.size());
  for (const NodeId id : csr.order) {
    EXPECT_TRUE(netlist::is_combinational(c.node(id).type));
  }

  // Level-major, ascending NodeId within a level, topologically valid.
  for (std::size_t i = 0; i + 1 < csr.order.size(); ++i) {
    const std::uint32_t la = c.node(csr.order[i]).level;
    const std::uint32_t lb = c.node(csr.order[i + 1]).level;
    EXPECT_LE(la, lb);
    if (la == lb) {
      EXPECT_LT(csr.order[i], csr.order[i + 1]);
    }
  }
  for (const NodeId id : csr.order) {
    for (const NodeId f : csr.fanins(id)) {
      EXPECT_LT(c.node(f).level, c.node(id).level);
    }
  }
}

TEST(CsrSchedule, LevelOffsetsSliceTheOrder) {
  const netlist::Circuit c = make_circuit(13);
  const CsrSchedule& csr = c.csr();
  ASSERT_EQ(csr.level_offsets.size(), c.depth() + 1);
  EXPECT_EQ(csr.level_offsets.front(), 0u);
  EXPECT_EQ(csr.level_offsets.back(), csr.order.size());
  for (std::uint32_t l = 1; l <= c.depth(); ++l) {
    for (std::uint32_t i = csr.level_offsets[l - 1];
         i < csr.level_offsets[l]; ++i) {
      EXPECT_EQ(c.node(csr.order[i]).level, l);
    }
  }
}

TEST(CsrSchedule, RankInvertsTheOrder) {
  const netlist::Circuit c = make_circuit(14);
  const CsrSchedule& csr = c.csr();
  ASSERT_EQ(csr.rank.size(), c.num_nodes());
  for (std::size_t i = 0; i < csr.order.size(); ++i) {
    EXPECT_EQ(csr.rank[csr.order[i]], i);
  }
  for (NodeId id = 0; id < c.num_nodes(); ++id) {
    if (netlist::is_source(c.node(id).type)) {
      EXPECT_EQ(csr.rank[id], netlist::kNoRank);
    }
  }
}

// --- NodeTrace --------------------------------------------------------

TEST(NodeTrace, MatchesReferenceSimulators) {
  const netlist::Circuit c = make_circuit(21);
  util::Rng rng(99);
  const Vector3 scan_in = sim::random_vector(c.num_flip_flops(), rng);
  const Sequence seq = sim::random_sequence(c.num_inputs(), 17, rng);

  sim::NodeTrace trace(c, &scan_in);
  trace.extend(seq.frames);
  ASSERT_EQ(trace.length(), seq.length());

  const sim::Trace packed = sim::simulate_fault_free(c, &scan_in, seq);
  const sim::Trace scalar =
      sim::simulate_fault_free_scalar(c, &scan_in, seq);
  for (std::size_t t = 0; t < seq.length(); ++t) {
    const std::span<const NodeId> pos = c.primary_outputs();
    for (std::size_t j = 0; j < pos.size(); ++j) {
      EXPECT_EQ(trace.value(t, pos[j]), packed.po_frames[t][j]);
      EXPECT_EQ(trace.value(t, pos[j]), scalar.po_frames[t][j]);
    }
    // state_at_start(t + 1) is the state after latching frame t.
    const Vector3 st = trace.state_at_start(t + 1);
    EXPECT_EQ(st, packed.states[t]);
    EXPECT_EQ(st, scalar.states[t]);
  }
  EXPECT_EQ(trace.state_at_start(0), scan_in);
  EXPECT_EQ(trace.initial_state(), scan_in);
}

TEST(NodeTrace, ExtendsIncrementally) {
  const netlist::Circuit c = make_circuit(22);
  util::Rng rng(7);
  const Sequence seq = sim::random_sequence(c.num_inputs(), 12, rng);

  // One shot vs two extends vs a prefix copy + extend: identical frames.
  sim::NodeTrace whole(c, nullptr);
  whole.extend(seq.frames);
  sim::NodeTrace stepped(c, nullptr);
  stepped.extend(std::span<const Vector3>(seq.frames).first(5));
  sim::NodeTrace copied(stepped, 5);
  stepped.extend(std::span<const Vector3>(seq.frames).subspan(5));
  copied.extend(std::span<const Vector3>(seq.frames).subspan(5));
  ASSERT_EQ(stepped.length(), seq.length());
  ASSERT_EQ(copied.length(), seq.length());
  for (std::size_t t = 0; t < seq.length(); ++t) {
    const std::span<const V3> a = whole.frame(t);
    const std::span<const V3> b = stepped.frame(t);
    const std::span<const V3> d = copied.frame(t);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
    EXPECT_TRUE(std::equal(a.begin(), a.end(), d.begin()));
  }
}

// --- TraceCache -------------------------------------------------------

TEST(TraceCache, HitExtendAndPartialReuse) {
  const netlist::Circuit c = make_circuit(31);
  util::Rng rng(5);
  const Vector3 scan_in = sim::random_vector(c.num_flip_flops(), rng);
  Sequence seq = sim::random_sequence(c.num_inputs(), 10, rng);

  sim::TraceCache cache(c);
  const auto t1 = cache.get(&scan_in, seq);
  EXPECT_EQ(cache.misses(), 1u);
  ASSERT_GE(t1->length(), seq.length());

  // Exact repeat: same trace object, no new work.
  const auto t2 = cache.get(&scan_in, seq);
  EXPECT_EQ(t2.get(), t1.get());
  EXPECT_EQ(cache.hits(), 1u);

  // Prefix query: the longer cached trace serves it unchanged.
  Sequence shorter = seq;
  shorter.frames.resize(6);
  const auto t3 = cache.get(&scan_in, shorter);
  EXPECT_EQ(t3.get(), t1.get());
  EXPECT_EQ(cache.hits(), 2u);

  // Extension: cached trace is a prefix of the query.  The outstanding
  // shared_ptrs must keep seeing the old frames (copy-on-write).
  Sequence longer = seq;
  util::Rng rng2(6);
  for (int i = 0; i < 4; ++i) {
    longer.frames.push_back(sim::random_vector(c.num_inputs(), rng2));
  }
  const auto t4 = cache.get(&scan_in, longer);
  EXPECT_EQ(cache.extensions(), 1u);
  ASSERT_GE(t4->length(), longer.length());
  EXPECT_EQ(t1->length(), seq.length());

  // Partial overlap: same first 6 frames, divergent tail -> the common
  // prefix is copied, only the tail is re-simulated.
  Sequence branched = seq;
  branched.frames.resize(6);
  for (int i = 0; i < 5; ++i) {
    branched.frames.push_back(sim::random_vector(c.num_inputs(), rng2));
  }
  const auto t5 = cache.get(&scan_in, branched);
  EXPECT_EQ(cache.partial_reuses(), 1u);
  const sim::Trace ref = sim::simulate_fault_free(c, &scan_in, branched);
  const std::span<const NodeId> pos = c.primary_outputs();
  for (std::size_t t = 0; t < branched.length(); ++t) {
    for (std::size_t j = 0; j < pos.size(); ++j) {
      EXPECT_EQ(t5->value(t, pos[j]), ref.po_frames[t][j]);
    }
  }
}

TEST(TraceCache, DistinguishesScanStates) {
  const netlist::Circuit c = make_circuit(32);
  util::Rng rng(8);
  const Sequence seq = sim::random_sequence(c.num_inputs(), 8, rng);
  Vector3 a = sim::random_vector(c.num_flip_flops(), rng);
  Vector3 b = a;
  b[0] = b[0] == V3::One ? V3::Zero : V3::One;

  sim::TraceCache cache(c);
  const auto ta = cache.get(&a, seq);
  const auto tb = cache.get(&b, seq);
  const auto tn = cache.get(nullptr, seq);
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_NE(ta.get(), tb.get());
  EXPECT_NE(ta.get(), tn.get());
  EXPECT_EQ(ta->initial_state(), a);
  EXPECT_EQ(tb->initial_state(), b);
}

TEST(TraceCache, EvictsLeastRecentlyUsed) {
  const netlist::Circuit c = make_circuit(33);
  util::Rng rng(9);
  const Sequence seq = sim::random_sequence(c.num_inputs(), 4, rng);
  std::vector<Vector3> keys;
  for (int i = 0; i < 3; ++i) {
    keys.push_back(sim::random_vector(c.num_flip_flops(), rng));
  }

  sim::TraceCache cache(c, /*capacity=*/2);
  (void)cache.get(&keys[0], seq);
  (void)cache.get(&keys[1], seq);
  (void)cache.get(&keys[0], seq);  // refresh key 0
  (void)cache.get(&keys[2], seq);  // evicts key 1
  EXPECT_EQ(cache.size(), 2u);
  (void)cache.get(&keys[0], seq);
  EXPECT_EQ(cache.hits(), 2u);
  (void)cache.get(&keys[1], seq);  // was evicted -> miss
  EXPECT_EQ(cache.misses(), 4u);
}

// --- ConePlan ---------------------------------------------------------

std::vector<sim::ConeSite> sites_of(const fault::FaultList& faults,
                                    std::span<const fault::FaultClassId> ids) {
  std::vector<sim::ConeSite> sites;
  for (const fault::FaultClassId id : ids) {
    const fault::Fault& f = faults.representative(id);
    sites.push_back(sim::ConeSite{f.node, f.pin, f.value});
  }
  return sites;
}

TEST(ConePlan, ClosureScheduleAndBoundary) {
  const netlist::Circuit c = make_circuit(41, 240);
  const fault::FaultList faults = fault::FaultList::build(c);
  const CsrSchedule& csr = c.csr();

  // A few groups of different sizes, spread across the class list.
  util::Rng rng(41);
  for (const std::size_t group_size : {1u, 7u, 63u}) {
    std::vector<fault::FaultClassId> ids;
    for (std::size_t j = 0; j < group_size; ++j) {
      ids.push_back(static_cast<fault::FaultClassId>(
          rng.below(faults.num_classes())));
    }
    const std::vector<sim::ConeSite> sites = sites_of(faults, ids);
    sim::ConePlan plan;
    plan.build(c, sites);

    // Sequential closure: every fanout of an in-cone node is in-cone
    // (divergence propagates through gates *and* flip-flops).
    for (NodeId id = 0; id < c.num_nodes(); ++id) {
      if (!plan.in_cone(id)) continue;
      for (const NodeId out : csr.fanouts(id)) {
        EXPECT_TRUE(plan.in_cone(out)) << "fanout " << out << " of " << id;
      }
    }
    for (const sim::ConeSite& s : sites) EXPECT_TRUE(plan.in_cone(s.node));

    // eval() is exactly the in-cone combinational gates, in strictly
    // increasing CSR rank (level-major sub-order of csr.order).
    std::size_t in_cone_gates = 0;
    for (const NodeId id : csr.order) {
      if (plan.in_cone(id)) ++in_cone_gates;
    }
    ASSERT_EQ(plan.eval().size(), in_cone_gates);
    for (std::size_t i = 0; i < plan.eval().size(); ++i) {
      EXPECT_TRUE(plan.in_cone(plan.eval()[i]));
      EXPECT_TRUE(netlist::is_combinational(c.node(plan.eval()[i]).type));
      if (i > 0) {
        EXPECT_LT(csr.rank[plan.eval()[i - 1]], csr.rank[plan.eval()[i]]);
      }
    }

    // Boundary completeness: every value the cone evaluation reads is
    // either produced inside the cone or seeded from the trace.
    std::vector<char> produced(c.num_nodes(), 0);
    for (const NodeId id : plan.eval()) produced[id] = 1;
    for (const NodeId ff : plan.cone_ffs()) produced[ff] = 1;
    std::vector<char> seeded(c.num_nodes(), 0);
    for (const NodeId id : plan.boundary()) seeded[id] = 1;
    const auto covered = [&](NodeId id) {
      return produced[id] != 0 || seeded[id] != 0;
    };
    for (const NodeId id : plan.eval()) {
      for (const NodeId f : csr.fanins(id)) {
        EXPECT_TRUE(covered(f)) << "fanin " << f << " of gate " << id;
      }
    }
    for (const NodeId ff : plan.cone_ffs()) {
      EXPECT_TRUE(covered(csr.fanins(ff)[0])) << "D fanin of FF " << ff;
    }

    // FF/PO membership mirrors in_cone over the declaration lists.
    const std::span<const NodeId> ffs = c.flip_flops();
    std::size_t k = 0;
    for (std::size_t i = 0; i < ffs.size(); ++i) {
      if (!plan.in_cone(ffs[i])) continue;
      ASSERT_LT(k, plan.cone_ffs().size());
      EXPECT_EQ(plan.cone_ffs()[k], ffs[i]);
      EXPECT_EQ(plan.cone_ff_pos()[k], i);
      ++k;
    }
    EXPECT_EQ(k, plan.cone_ffs().size());
    for (const NodeId po : plan.cone_pos()) EXPECT_TRUE(plan.in_cone(po));

    // Activation lines: one per site; the stem line is the site node,
    // a branch line is the driving fanin.
    ASSERT_EQ(plan.act_lines().size(), sites.size());
    for (std::size_t i = 0; i < sites.size(); ++i) {
      const sim::ConeSite& s = sites[i];
      const NodeId expect_line =
          s.pin == sim::kStemPin
              ? s.node
              : csr.fanins(s.node)[static_cast<std::size_t>(s.pin)];
      EXPECT_EQ(plan.act_lines()[i], expect_line);
      EXPECT_EQ(plan.act_stuck_one()[i] != 0, s.stuck_one);
    }
  }
}

// Direct worker-level check: one group, forced cone vs full kernel.
TEST(ConeKernel, WorkerDetectMasksMatchFullKernel) {
  const netlist::Circuit c = make_circuit(42, 260);
  const fault::FaultList faults = fault::FaultList::build(c);
  util::Rng rng(55);
  const Vector3 scan_in = sim::random_vector(c.num_flip_flops(), rng);
  const Sequence seq = sim::random_sequence(c.num_inputs(), 24, rng);

  sim::NodeTrace trace(c, &scan_in);
  trace.extend(seq.frames);

  const util::Bitset scan_mask(c.num_flip_flops(), true);
  fault::GroupWorker full_w(c, faults, scan_mask);
  fault::GroupWorker cone_w(c, faults, scan_mask);
  std::vector<fault::FaultClassId> group;
  for (fault::FaultClassId id = 0;
       id < std::min<std::size_t>(faults.num_classes(), 63); ++id) {
    group.push_back(id);
  }
  const std::uint64_t full_mask = full_w.run_detect(
      &scan_in, seq, group, /*observe_scan_out=*/true, /*early_exit=*/false);
  const fault::KernelChoice kc{&trace, /*force_cone=*/true};
  const std::uint64_t cone_mask = cone_w.run_detect(
      &scan_in, seq, group, /*observe_scan_out=*/true, /*early_exit=*/false,
      nullptr, nullptr, kc);
  EXPECT_EQ(full_mask, cone_mask);
}

}  // namespace
}  // namespace scanc
