// Shared test utilities.
//
// serial_detects() is an *independent* golden model for fault detection:
// a scalar, one-fault-at-a-time sequential simulator written without any
// code from the packed engine's fault-injection path.  Property tests
// compare the production parallel-fault simulator against it.
#pragma once

#include <vector>

#include "fault/fault.hpp"
#include "netlist/circuit.hpp"
#include "sim/packed.hpp"
#include "sim/sequence.hpp"

namespace scanc::test {

/// Scalar simulation of one machine (fault-free or single-fault).
/// Returns per-frame PO vectors and per-frame *captured* states — the
/// clean latch contents that scan-out observes (a Q-output stem fault
/// corrupts only what the logic reads, per the full-scan PPI convention).
struct SerialTrace {
  std::vector<sim::Vector3> po_frames;
  std::vector<sim::Vector3> states;
};

inline SerialTrace serial_simulate(const netlist::Circuit& c,
                                   const fault::Fault* f,
                                   const sim::Vector3* scan_in,
                                   const sim::Sequence& seq) {
  using netlist::GateType;
  using netlist::NodeId;
  using sim::V3;

  const auto forced = [&](NodeId node, int pin, V3 v) -> V3 {
    if (f != nullptr && f->node == node && f->pin == pin) {
      return f->value ? V3::One : V3::Zero;
    }
    return v;
  };

  std::vector<V3> val(c.num_nodes(), V3::X);
  for (NodeId id = 0; id < c.num_nodes(); ++id) {
    if (c.node(id).type == GateType::Const0) {
      val[id] = forced(id, sim::kStemPin, V3::Zero);
    } else if (c.node(id).type == GateType::Const1) {
      val[id] = forced(id, sim::kStemPin, V3::One);
    } else if (netlist::is_source(c.node(id).type)) {
      val[id] = forced(id, sim::kStemPin, V3::X);
    }
  }
  const auto ffs = c.flip_flops();
  if (scan_in != nullptr) {
    for (std::size_t i = 0; i < ffs.size(); ++i) {
      val[ffs[i]] = forced(ffs[i], sim::kStemPin, (*scan_in)[i]);
    }
  }

  SerialTrace trace;
  std::vector<V3> fanins;
  std::vector<V3> next(ffs.size());
  for (const sim::Vector3& pi : seq.frames) {
    const auto pis = c.primary_inputs();
    for (std::size_t i = 0; i < pis.size(); ++i) {
      val[pis[i]] = forced(pis[i], sim::kStemPin, pi[i]);
    }
    for (const netlist::NodeId id : c.topo_order()) {
      const netlist::Node& n = c.node(id);
      fanins.clear();
      for (std::size_t p = 0; p < n.fanins.size(); ++p) {
        fanins.push_back(forced(id, static_cast<int>(p), val[n.fanins[p]]));
      }
      val[id] = forced(id, sim::kStemPin,
                       sim::eval_gate_scalar(n.type, fanins));
    }
    sim::Vector3 po(c.num_outputs(), V3::X);
    for (std::size_t i = 0; i < c.primary_outputs().size(); ++i) {
      po[i] = val[c.primary_outputs()[i]];
    }
    trace.po_frames.push_back(std::move(po));
    for (std::size_t i = 0; i < ffs.size(); ++i) {
      // Captured value: D-side faults apply, Q stem faults do not.
      next[i] = forced(ffs[i], 0, val[c.node(ffs[i]).fanins[0]]);
    }
    sim::Vector3 st(ffs.size(), V3::X);
    for (std::size_t i = 0; i < ffs.size(); ++i) {
      st[i] = next[i];
      // The logic reads the captured value through the (possibly stuck) Q.
      val[ffs[i]] = forced(ffs[i], sim::kStemPin, next[i]);
    }
    trace.states.push_back(std::move(st));
  }
  return trace;
}

/// Conservative detection: some observation shows binary fault-free vs
/// binary faulty values that differ.  Observations: POs at every frame;
/// the final state if observe_scan_out.
inline bool serial_detects(const netlist::Circuit& c, const fault::Fault& f,
                           const sim::Vector3* scan_in,
                           const sim::Sequence& seq, bool observe_scan_out) {
  using sim::V3;
  const SerialTrace good = serial_simulate(c, nullptr, scan_in, seq);
  const SerialTrace bad = serial_simulate(c, &f, scan_in, seq);
  const auto differs = [](V3 a, V3 b) {
    return sim::is_binary(a) && sim::is_binary(b) && a != b;
  };
  for (std::size_t t = 0; t < seq.length(); ++t) {
    for (std::size_t i = 0; i < good.po_frames[t].size(); ++i) {
      if (differs(good.po_frames[t][i], bad.po_frames[t][i])) return true;
    }
  }
  if (observe_scan_out && !seq.frames.empty()) {
    const auto& gs = good.states.back();
    const auto& bs = bad.states.back();
    for (std::size_t i = 0; i < gs.size(); ++i) {
      if (differs(gs[i], bs[i])) return true;
    }
  }
  return false;
}

}  // namespace scanc::test
