#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "gen/embedded.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/bench_writer.hpp"
#include "netlist/circuit.hpp"
#include "netlist/gate.hpp"

namespace scanc::netlist {
namespace {

TEST(GateType, NamesRoundTrip) {
  for (int i = 0; i < kNumGateTypes; ++i) {
    const auto t = static_cast<GateType>(i);
    const auto parsed = gate_type_from_string(to_string(t));
    ASSERT_TRUE(parsed.has_value()) << to_string(t);
    EXPECT_EQ(*parsed, t);
  }
}

TEST(GateType, ParsesAliasesCaseInsensitive) {
  EXPECT_EQ(gate_type_from_string("NAND"), GateType::Nand);
  EXPECT_EQ(gate_type_from_string("BUFF"), GateType::Buf);
  EXPECT_EQ(gate_type_from_string("Inv"), GateType::Not);
  EXPECT_EQ(gate_type_from_string("bogus"), std::nullopt);
}

TEST(GateType, Classification) {
  EXPECT_TRUE(is_source(GateType::Input));
  EXPECT_TRUE(is_source(GateType::Dff));
  EXPECT_TRUE(is_source(GateType::Const0));
  EXPECT_FALSE(is_source(GateType::Nand));
  EXPECT_TRUE(is_combinational(GateType::Xor));
  EXPECT_TRUE(is_nary(GateType::Nor));
  EXPECT_FALSE(is_nary(GateType::Not));
  EXPECT_EQ(required_fanins(GateType::Dff), 1);
  EXPECT_EQ(required_fanins(GateType::Input), 0);
  EXPECT_EQ(required_fanins(GateType::And), -1);
}

TEST(GateType, ControllingValues) {
  EXPECT_TRUE(has_controlling_value(GateType::And));
  EXPECT_FALSE(controlling_value(GateType::And));
  EXPECT_TRUE(controlling_value(GateType::Or));
  EXPECT_TRUE(controlling_value(GateType::Nor));
  EXPECT_FALSE(has_controlling_value(GateType::Xor));
  EXPECT_TRUE(is_inverting(GateType::Nand));
  EXPECT_FALSE(is_inverting(GateType::Or));
}

TEST(CircuitBuilder, BuildsSmallCombinationalCircuit) {
  CircuitBuilder b("tiny");
  b.add_input("a");
  b.add_input("b");
  b.add_gate(GateType::And, "c", {"a", "b"});
  b.add_gate(GateType::Not, "d", {"c"});
  b.mark_output("d");
  const Circuit c = b.build();
  EXPECT_EQ(c.name(), "tiny");
  EXPECT_EQ(c.num_nodes(), 4u);
  EXPECT_EQ(c.num_inputs(), 2u);
  EXPECT_EQ(c.num_outputs(), 1u);
  EXPECT_EQ(c.num_flip_flops(), 0u);
  EXPECT_EQ(c.num_gates(), 2u);
  EXPECT_EQ(c.depth(), 2u);
  const NodeId d = c.find("d");
  ASSERT_NE(d, kNoNode);
  EXPECT_TRUE(c.is_primary_output(d));
  EXPECT_EQ(c.node(d).level, 2u);
}

TEST(CircuitBuilder, ForwardReferencesResolve) {
  CircuitBuilder b;
  b.add_input("a");
  b.add_gate(GateType::Dff, "q", {"next"});   // "next" defined later
  b.add_gate(GateType::Xor, "next", {"a", "q"});
  b.mark_output("next");
  const Circuit c = b.build();
  EXPECT_EQ(c.num_flip_flops(), 1u);
  const NodeId q = c.find("q");
  const NodeId next = c.find("next");
  ASSERT_NE(q, kNoNode);
  EXPECT_EQ(c.node(q).fanins[0], next);
}

TEST(CircuitBuilder, RejectsDuplicateDefinition) {
  CircuitBuilder b;
  b.add_input("a");
  EXPECT_THROW(b.add_input("a"), std::invalid_argument);
}

TEST(CircuitBuilder, RejectsUndefinedSignal) {
  CircuitBuilder b;
  b.add_input("a");
  b.add_gate(GateType::And, "c", {"a", "ghost"});
  b.mark_output("c");
  EXPECT_THROW((void)b.build(), std::invalid_argument);
}

TEST(CircuitBuilder, RejectsCombinationalCycle) {
  CircuitBuilder b;
  b.add_input("a");
  b.add_gate(GateType::And, "x", {"a", "y"});
  b.add_gate(GateType::Or, "y", {"a", "x"});
  b.mark_output("y");
  EXPECT_THROW((void)b.build(), std::invalid_argument);
}

TEST(CircuitBuilder, AcceptsCycleThroughFlipFlop) {
  CircuitBuilder b;
  b.add_input("a");
  b.add_gate(GateType::Dff, "q", {"x"});
  b.add_gate(GateType::And, "x", {"a", "q"});
  b.mark_output("x");
  EXPECT_NO_THROW((void)b.build());
}

TEST(CircuitBuilder, RejectsWrongArity) {
  CircuitBuilder b;
  b.add_input("a");
  b.add_input("b");
  EXPECT_THROW(b.add_gate(GateType::Not, "n", {"a", "b"}),
               std::invalid_argument);
  EXPECT_THROW(b.add_gate(GateType::And, "m", {}), std::invalid_argument);
}

TEST(CircuitBuilder, FanoutsAreComputed) {
  CircuitBuilder b;
  b.add_input("a");
  b.add_gate(GateType::Not, "n1", {"a"});
  b.add_gate(GateType::Not, "n2", {"a"});
  b.mark_output("n1");
  b.mark_output("n2");
  const Circuit c = b.build();
  EXPECT_EQ(c.node(c.find("a")).fanouts.size(), 2u);
}

TEST(CircuitBuilder, DuplicateOutputMarkIsIdempotent) {
  CircuitBuilder b;
  b.add_input("a");
  b.add_gate(GateType::Buf, "o", {"a"});
  b.mark_output("o");
  b.mark_output("o");
  const Circuit c = b.build();
  EXPECT_EQ(c.num_outputs(), 1u);
}

TEST(BenchParser, ParsesS27) {
  const Circuit c = gen::make_s27();
  EXPECT_EQ(c.num_inputs(), 4u);
  EXPECT_EQ(c.num_outputs(), 1u);
  EXPECT_EQ(c.num_flip_flops(), 3u);
  EXPECT_EQ(c.num_gates(), 10u);
  EXPECT_EQ(c.node(c.find("G11")).type, GateType::Nor);
  EXPECT_EQ(c.node(c.find("G17")).type, GateType::Not);
  EXPECT_EQ(c.node(c.find("G7")).type, GateType::Dff);
}

TEST(BenchParser, HandlesCommentsAndBlankLines) {
  const Circuit c = netlist::parse_bench(R"(
# a comment
INPUT(a)   # trailing comment

OUTPUT(o)
o = NOT(a)
)");
  EXPECT_EQ(c.num_inputs(), 1u);
  EXPECT_EQ(c.num_gates(), 1u);
}

TEST(BenchParser, ReportsLineNumbers) {
  try {
    (void)parse_bench("INPUT(a)\no = FROB(a)\nOUTPUT(o)\n");
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(BenchParser, RejectsMalformedLines) {
  EXPECT_THROW((void)parse_bench("INPUT a\n"), BenchParseError);
  EXPECT_THROW((void)parse_bench("INPUT(a) junk\n"), BenchParseError);
  EXPECT_THROW((void)parse_bench("x = AND(a,)\nINPUT(a)\n"),
               BenchParseError);
  EXPECT_THROW((void)parse_bench("FOO(a)\n"), BenchParseError);
  EXPECT_THROW((void)parse_bench("x = AND(a, b%c)\n"), BenchParseError);
}

// Hostile-input hardening: every malformed netlist must surface as a
// BenchParseError — never a bare std::invalid_argument, a crash, or a
// hang (docs/robustness.md).

TEST(BenchParser, RejectsTruncatedMidGate) {
  // A file cut off mid-definition (e.g. a torn download).
  EXPECT_THROW((void)parse_bench("INPUT(a)\nx = AND(a"), BenchParseError);
  EXPECT_THROW((void)parse_bench("INPUT(a)\nx = AND(a,"), BenchParseError);
  EXPECT_THROW((void)parse_bench("INPUT(a)\nx = AND("), BenchParseError);
  EXPECT_THROW((void)parse_bench("INPUT(a)\nx ="), BenchParseError);
  EXPECT_THROW((void)parse_bench("INPUT(a)\nx"), BenchParseError);
}

TEST(BenchParser, RejectsDuplicateGateDefinition) {
  try {
    (void)parse_bench("INPUT(a)\nx = AND(a, a)\nx = OR(a, a)\n");
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(BenchParser, RejectsDuplicateInput) {
  try {
    (void)parse_bench("INPUT(a)\nINPUT(a)\n");
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(BenchParser, RejectsGateRedefiningAnInput) {
  EXPECT_THROW((void)parse_bench("INPUT(a)\na = AND(a, a)\n"),
               BenchParseError);
}

TEST(BenchParser, RejectsCombinationalSelfLoop) {
  EXPECT_THROW((void)parse_bench("INPUT(a)\nOUTPUT(x)\nx = AND(x, a)\n"),
               BenchParseError);
  // Longer combinational cycle.
  EXPECT_THROW((void)parse_bench("INPUT(a)\nOUTPUT(x)\n"
                                 "x = AND(y, a)\ny = OR(x, a)\n"),
               BenchParseError);
}

TEST(BenchParser, RejectsAbsurdlyLongLine) {
  // A single line past the 64 MiB bound (a binary or corrupt file) must
  // be rejected promptly, not ground through character validation.
  std::string text = "INPUT(a)\nx = AND(a, ";
  text.append((64ull << 20) + 16, 'b');
  try {
    (void)parse_bench(text);
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(BenchWriter, RoundTripsS27) {
  const Circuit c = gen::make_s27();
  const std::string text = to_bench_string(c);
  const Circuit c2 = parse_bench(text, "s27");
  EXPECT_EQ(c2.num_nodes(), c.num_nodes());
  EXPECT_EQ(c2.num_inputs(), c.num_inputs());
  EXPECT_EQ(c2.num_outputs(), c.num_outputs());
  EXPECT_EQ(c2.num_flip_flops(), c.num_flip_flops());
  EXPECT_EQ(c2.num_gates(), c.num_gates());
  // Structure must match node-by-node under name lookup.
  for (NodeId id = 0; id < c.num_nodes(); ++id) {
    const Node& n = c.node(id);
    const NodeId id2 = c2.find(n.name);
    ASSERT_NE(id2, kNoNode) << n.name;
    const Node& n2 = c2.node(id2);
    EXPECT_EQ(n2.type, n.type) << n.name;
    ASSERT_EQ(n2.fanins.size(), n.fanins.size()) << n.name;
    for (std::size_t i = 0; i < n.fanins.size(); ++i) {
      EXPECT_EQ(c2.node(n2.fanins[i]).name, c.node(n.fanins[i]).name);
    }
  }
}

TEST(Circuit, StatsMatchS27) {
  const CircuitStats s = stats(gen::make_s27());
  EXPECT_EQ(s.inputs, 4u);
  EXPECT_EQ(s.outputs, 1u);
  EXPECT_EQ(s.flip_flops, 3u);
  EXPECT_EQ(s.gates, 10u);
  EXPECT_GE(s.depth, 4u);
}

TEST(Circuit, TopoOrderRespectsDependencies) {
  const Circuit c = gen::make_s27();
  std::vector<int> pos(c.num_nodes(), -1);
  int k = 0;
  for (const NodeId id : c.topo_order()) pos[id] = k++;
  for (const NodeId id : c.topo_order()) {
    for (const NodeId f : c.node(id).fanins) {
      if (is_combinational(c.node(f).type)) {
        EXPECT_LT(pos[f], pos[id]);
      }
    }
  }
}

}  // namespace
}  // namespace scanc::netlist
