// SAT ATPG backend: solver unit tests, encoding agreement with the
// structural engines, untestability-proof soundness against the
// simulation kernels, and two-frame transition-delay generation.
#include <gtest/gtest.h>

#include <algorithm>

#include "atpg/podem.hpp"
#include "atpg/sat_backend.hpp"
#include "atpg/sat_solver.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "fault/model.hpp"
#include "gen/circuit_gen.hpp"
#include "gen/embedded.hpp"
#include "netlist/circuit.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace scanc::atpg {
namespace {

using fault::Fault;
using fault::FaultList;
using fault::FaultSet;
using fault::FaultSimulator;
using netlist::Circuit;
using netlist::GateType;
using sim::V3;
using sim::Vector3;

// ---------------------------------------------------------------------
// CDCL solver units.

TEST(SatSolver, SolvesSimpleSatInstance) {
  SatSolver s;
  const SatVar a = s.new_var();
  const SatVar b = s.new_var();
  ASSERT_TRUE(s.add_clause({mk_lit(a), mk_lit(b)}));
  ASSERT_TRUE(s.add_clause({mk_lit(a, true), mk_lit(b)}));
  ASSERT_EQ(s.solve(), SatResult::Sat);
  EXPECT_TRUE(s.model_value(b));
}

TEST(SatSolver, DetectsRootUnsat) {
  SatSolver s;
  const SatVar a = s.new_var();
  ASSERT_TRUE(s.add_clause({mk_lit(a)}));
  EXPECT_FALSE(s.add_clause({mk_lit(a, true)}));
  EXPECT_TRUE(s.root_unsat());
  EXPECT_EQ(s.solve(), SatResult::Unsat);
}

TEST(SatSolver, UnsatByResolution) {
  // (a|b)(a|!b)(!a|b)(!a|!b) is unsatisfiable but not by unit
  // propagation alone: the solver must search/learn.
  SatSolver s;
  const SatLit a = mk_lit(s.new_var());
  const SatLit b = mk_lit(s.new_var());
  ASSERT_TRUE(s.add_clause({a, b}));
  ASSERT_TRUE(s.add_clause({a, lit_neg(b)}));
  ASSERT_TRUE(s.add_clause({lit_neg(a), b}));
  ASSERT_TRUE(s.add_clause({lit_neg(a), lit_neg(b)}));
  EXPECT_EQ(s.solve(), SatResult::Unsat);
}

// Pigeonhole: n+1 pigeons in n holes.  Small but requires real search.
void add_pigeonhole(SatSolver& s, int holes) {
  const int pigeons = holes + 1;
  std::vector<std::vector<SatLit>> at(
      static_cast<std::size_t>(pigeons));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) {
      at[static_cast<std::size_t>(p)].push_back(mk_lit(s.new_var()));
    }
    ASSERT_TRUE(s.add_clause(at[static_cast<std::size_t>(p)]));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p = 0; p < pigeons; ++p) {
      for (int q = p + 1; q < pigeons; ++q) {
        ASSERT_TRUE(s.add_clause(
            {lit_neg(at[static_cast<std::size_t>(p)]
                       [static_cast<std::size_t>(h)]),
             lit_neg(at[static_cast<std::size_t>(q)]
                       [static_cast<std::size_t>(h)])}));
      }
    }
  }
}

TEST(SatSolver, ProvesPigeonholeUnsat) {
  SatSolver s;
  add_pigeonhole(s, 5);
  EXPECT_EQ(s.solve(), SatResult::Unsat);
  EXPECT_GT(s.stats().conflicts, 0u);
}

TEST(SatSolver, ConflictLimitYieldsUnknown) {
  SatSolver s;
  add_pigeonhole(s, 7);
  SatLimits limits;
  limits.max_conflicts = 2;
  EXPECT_EQ(s.solve(limits), SatResult::Unknown);
  // The instance stays solvable afterwards with a real budget.
  EXPECT_EQ(s.solve(), SatResult::Unsat);
}

TEST(SatSolver, CancelledTokenYieldsUnknown) {
  SatSolver s;
  add_pigeonhole(s, 7);
  SatLimits limits;
  limits.cancel = util::CancelToken::make(util::Deadline::after(0.0));
  EXPECT_EQ(s.solve(limits), SatResult::Unknown);
}

TEST(SatSolver, AssumptionsAreTransient) {
  SatSolver s;
  const SatLit a = mk_lit(s.new_var());
  const SatLit b = mk_lit(s.new_var());
  ASSERT_TRUE(s.add_clause({lit_neg(a), b}));
  ASSERT_TRUE(s.add_clause({lit_neg(b), lit_neg(a)}));  // a -> b -> !a
  EXPECT_EQ(s.solve({a}), SatResult::Unsat);
  // Unsat under the assumption only: the instance itself is fine.
  EXPECT_EQ(s.solve(), SatResult::Sat);
  EXPECT_EQ(s.solve({lit_neg(a)}), SatResult::Sat);
  EXPECT_FALSE(s.model_value(lit_var(a)));
}

TEST(SatSolver, SelectorRetirementKeepsSolverUsable) {
  // The incremental ATPG contract: guarded clauses die by unit ¬s.
  SatSolver s;
  const SatLit x = mk_lit(s.new_var());
  const SatLit sel = mk_lit(s.new_var());
  // Guarded contradiction: sel -> x and sel -> !x.
  ASSERT_TRUE(s.add_clause({lit_neg(sel), x}));
  ASSERT_TRUE(s.add_clause({lit_neg(sel), lit_neg(x)}));
  EXPECT_EQ(s.solve({sel}), SatResult::Unsat);
  ASSERT_TRUE(s.add_clause({lit_neg(sel)}));  // retire
  const SatLit sel2 = mk_lit(s.new_var());
  ASSERT_TRUE(s.add_clause({lit_neg(sel2), x}));
  EXPECT_EQ(s.solve({sel2}), SatResult::Sat);
  EXPECT_TRUE(s.model_value(lit_var(x)));
}

// ---------------------------------------------------------------------
// Stuck-at encoding on hand-built circuits.

TEST(SatBackendStuck, FindsTestForSimpleAndGate) {
  netlist::CircuitBuilder b("and2");
  b.add_input("a");
  b.add_input("b");
  b.add_gate(GateType::And, "o", {"a", "b"});
  b.mark_output("o");
  const Circuit c = b.build();
  SatBackend sat(c);
  const PodemResult r =
      sat.generate(Fault{c.find("o"), sim::kStemPin, false});
  ASSERT_EQ(r.status, PodemStatus::Detected);
  EXPECT_EQ(r.cube.inputs[0], V3::One);
  EXPECT_EQ(r.cube.inputs[1], V3::One);
}

TEST(SatBackendStuck, ProvesRedundantFaultUntestable) {
  // o = OR(a, NOT(a)) is constant 1: o stuck-at-1 is untestable.
  netlist::CircuitBuilder b("taut");
  b.add_input("a");
  b.add_gate(GateType::Not, "na", {"a"});
  b.add_gate(GateType::Or, "o", {"a", "na"});
  b.mark_output("o");
  const Circuit c = b.build();
  SatBackend sat(c);
  EXPECT_EQ(sat.generate(Fault{c.find("o"), sim::kStemPin, true}).status,
            PodemStatus::Untestable);
  EXPECT_EQ(sat.generate(Fault{c.find("o"), sim::kStemPin, false}).status,
            PodemStatus::Detected);
  EXPECT_EQ(sat.stats().proofs, 1u);
  EXPECT_EQ(sat.stats().tests, 1u);
}

TEST(SatBackendStuck, UsesStateInputsForFaultsBehindFlipFlops) {
  netlist::CircuitBuilder b("ffex");
  b.add_input("a");
  b.add_gate(GateType::Dff, "q", {"d"});
  b.add_gate(GateType::And, "x", {"a", "q"});
  b.add_gate(GateType::Buf, "d", {"a"});
  b.mark_output("x");
  const Circuit c = b.build();
  SatBackend sat(c);
  const PodemResult r =
      sat.generate(Fault{c.find("x"), sim::kStemPin, false});
  ASSERT_EQ(r.status, PodemStatus::Detected);
  EXPECT_EQ(r.cube.state[0], V3::One);
  EXPECT_EQ(r.cube.inputs[0], V3::One);
}

TEST(SatBackendStuck, ObservesFaultsAtScanCaptureOnly) {
  // The only observation point is the flip-flop's D capture: a fault on
  // the input is invisible at POs (there are none) but scan-observable.
  netlist::CircuitBuilder b("cap");
  b.add_input("a");
  b.add_gate(GateType::Not, "d", {"a"});
  b.add_gate(GateType::Dff, "q", {"d"});
  b.add_gate(GateType::Buf, "dead", {"q"});  // keep q read
  b.mark_output("dead");
  const Circuit c = b.build();
  SatBackend sat(c);
  const PodemResult r =
      sat.generate(Fault{c.find("a"), sim::kStemPin, true});
  ASSERT_EQ(r.status, PodemStatus::Detected);
  EXPECT_EQ(r.cube.inputs[0], V3::Zero);
}

TEST(SatBackendStuck, FlipFlopDPinBranchFaultUsesStuckCapture) {
  // Branch fault on the FF's own D pin: detected iff the driver carries
  // the opposite value; with the driver constant at the stuck value the
  // fault is untestable.
  netlist::CircuitBuilder b("dpin");
  b.add_input("a");
  b.add_gate(GateType::Dff, "q", {"a"});
  b.mark_output("q");
  const Circuit c = b.build();
  SatBackend sat(c);
  const PodemResult r = sat.generate(Fault{c.find("q"), 0, false});
  ASSERT_EQ(r.status, PodemStatus::Detected);
  EXPECT_EQ(r.cube.inputs[0], V3::One);

  netlist::CircuitBuilder b2("dpin0");
  b2.add_input("a");
  b2.add_gate(GateType::Const0, "z", {});
  b2.add_gate(GateType::Dff, "q", {"z"});
  b2.add_gate(GateType::And, "o", {"a", "q"});
  b2.mark_output("o");
  const Circuit c2 = b2.build();
  SatBackend sat2(c2);
  EXPECT_EQ(sat2.generate(Fault{c2.find("q"), 0, false}).status,
            PodemStatus::Untestable);
  EXPECT_EQ(sat2.generate(Fault{c2.find("q"), 0, true}).status,
            PodemStatus::Detected);
}

TEST(SatBackendStuck, UnscannedFlipFlopBlocksExcitation) {
  // Partial scan: with the single flip-flop unscanned its value is X,
  // the AND can never be excited, and its D line is unobservable.
  netlist::CircuitBuilder b("pscan");
  b.add_input("a");
  b.add_gate(GateType::Dff, "q", {"d"});
  b.add_gate(GateType::And, "x", {"a", "q"});
  b.add_gate(GateType::Buf, "d", {"a"});
  b.mark_output("x");
  const Circuit c = b.build();
  SatBackendOptions opt;
  opt.scan_mask = util::Bitset(1);  // 1 FF, bit clear = unscanned
  SatBackend sat(c, std::move(opt));
  EXPECT_EQ(sat.generate(Fault{c.find("x"), sim::kStemPin, false}).status,
            PodemStatus::Untestable);
  // a stuck-at-0 still reaches x... no: x = a AND X is 0 or X, never a
  // binary difference.  The only testable faults go through nothing —
  // verify against PODEM rather than hand-deriving.
  Podem podem(c, PodemOptions{.backtrack_limit = 100000,
                              .scan_mask = util::Bitset(1)});
  const FaultList fl = FaultList::build(c);
  for (std::size_t i = 0; i < fl.num_classes(); ++i) {
    const Fault f = fl.representative(static_cast<fault::FaultClassId>(i));
    const PodemStatus ps = podem.generate(f).status;
    const PodemStatus ss = sat.generate(f).status;
    if (ps == PodemStatus::Aborted || ss == PodemStatus::Aborted) continue;
    EXPECT_EQ(ps, ss) << "fault class " << i;
  }
}

// ---------------------------------------------------------------------
// Agreement sweep on generated circuits: SAT vs PODEM verdicts, SAT
// tests confirmed by the fault simulator, SAT proofs never contradicted
// by random simulation.

void agreement_sweep(std::uint64_t seed, util::Bitset scan_mask) {
  gen::GenParams params;
  params.name = "satsweep";
  params.num_inputs = 6;
  params.num_outputs = 4;
  params.num_flip_flops = 6;
  params.num_gates = 80;
  params.seed = seed;
  const Circuit c = gen::generate_circuit(params);
  const FaultList fl = FaultList::build(c);
  FaultSimulator fsim = scan_mask.empty()
                            ? FaultSimulator(c, fl)
                            : FaultSimulator(c, fl, scan_mask);

  PodemOptions popt;
  popt.backtrack_limit = 200000;
  popt.scan_mask = scan_mask;
  Podem podem(c, popt);
  SatBackendOptions sopt;
  sopt.scan_mask = scan_mask;
  SatBackend sat(c, std::move(sopt));

  util::Rng rng(seed * 77 + 1);
  std::size_t checked = 0;
  for (std::size_t i = 0; i < fl.num_classes(); ++i) {
    const Fault f = fl.representative(static_cast<fault::FaultClassId>(i));
    const PodemResult sr = sat.generate(f);
    ASSERT_NE(sr.status, PodemStatus::Aborted)
        << "SAT aborted on class " << i << " seed " << seed;
    const PodemResult pr = podem.generate(f);
    if (pr.status != PodemStatus::Aborted) {
      EXPECT_EQ(pr.status, sr.status)
          << "engines disagree on class " << i << " seed " << seed;
    }
    if (sr.status == PodemStatus::Detected) {
      // The SAT cube, applied as a length-one scan test, must detect
      // the fault under the conservative kernels.
      Vector3 state = sr.cube.state;
      Vector3 inputs = sr.cube.inputs;
      sim::randomize_x(state, rng);
      // Unscanned state bits must stay X in the applied test.
      for (std::size_t j = 0; j < state.size(); ++j) {
        if (!scan_mask.empty() && !scan_mask.test(j)) state[j] = V3::X;
      }
      sim::randomize_x(inputs, rng);
      sim::Sequence seq;
      seq.frames.push_back(inputs);
      const FaultSet det = fsim.detect_scan_test(state, seq);
      EXPECT_TRUE(det.test(i))
          << "SAT test misses its own fault, class " << i << " seed "
          << seed;
    } else {
      // Proof soundness: no random test may detect a proven-untestable
      // fault.
      for (int t = 0; t < 16; ++t) {
        Vector3 state(c.num_flip_flops(), V3::X);
        for (std::size_t j = 0; j < state.size(); ++j) {
          if (scan_mask.empty() || scan_mask.test(j)) {
            state[j] = sim::v3_from_bool(rng.coin());
          }
        }
        sim::Sequence seq;
        seq.frames.push_back(sim::random_vector(c.num_inputs(), rng));
        const FaultSet det = fsim.detect_scan_test(state, seq);
        ASSERT_FALSE(det.test(i))
            << "random test detects SAT-proven-untestable class " << i
            << " seed " << seed;
      }
    }
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(SatBackendStuck, AgreesWithPodemOnGeneratedCircuits) {
  agreement_sweep(11, {});
  agreement_sweep(12, {});
}

TEST(SatBackendStuck, AgreesWithPodemUnderPartialScan) {
  util::Bitset mask(6);
  mask.set(0);
  mask.set(2);
  mask.set(3);  // 3 of 6 scanned
  agreement_sweep(13, mask);
}

TEST(SatBackendStuck, AgreesWithPodemOnS27) {
  const Circuit c = gen::make_s27();
  const FaultList fl = FaultList::build(c);
  Podem podem(c, PodemOptions{.backtrack_limit = 1000000});
  SatBackend sat(c);
  for (std::size_t i = 0; i < fl.num_classes(); ++i) {
    const Fault f = fl.representative(static_cast<fault::FaultClassId>(i));
    const PodemResult pr = podem.generate(f);
    const PodemResult sr = sat.generate(f);
    ASSERT_NE(sr.status, PodemStatus::Aborted);
    if (pr.status != PodemStatus::Aborted) {
      EXPECT_EQ(pr.status, sr.status) << "class " << i;
    }
  }
}

// ---------------------------------------------------------------------
// Transition-delay (two-frame) encoding.

TEST(SatBackendTransition, HandCraftedLaunchCapture) {
  // o = BUF(a): slow-to-rise needs a 0 -> 1 pair on 'a'.
  netlist::CircuitBuilder b("buf");
  b.add_input("a");
  b.add_gate(GateType::Dff, "q", {"a"});
  b.add_gate(GateType::Buf, "o", {"a"});
  b.mark_output("o");
  const Circuit c = b.build();
  SatBackend sat(c);
  const TransitionTest str =
      sat.generate_transition(Fault{c.find("a"), sim::kStemPin, false});
  ASSERT_EQ(str.status, PodemStatus::Detected);
  ASSERT_EQ(str.seq.frames.size(), 2u);
  EXPECT_EQ(str.seq.frames[0][0], V3::Zero);  // launch: stale 0
  EXPECT_EQ(str.seq.frames[1][0], V3::One);   // capture: transition to 1
}

TEST(SatBackendTransition, MaskedLaunchIsUntestable) {
  // The stem is AND-gated by a constant 0 on the only path out: no
  // transition can be observed.
  netlist::CircuitBuilder b("mask");
  b.add_input("a");
  b.add_gate(GateType::Const0, "z", {});
  b.add_gate(GateType::And, "o", {"a", "z"});
  b.mark_output("o");
  const Circuit c = b.build();
  SatBackend sat(c);
  EXPECT_EQ(sat.generate_transition(Fault{c.find("a"), sim::kStemPin,
                                          false})
                .status,
            PodemStatus::Untestable);
}

TEST(SatBackendTransition, TestsConfirmedByTransitionKernels) {
  gen::GenParams params;
  params.name = "tdfsweep";
  params.num_inputs = 5;
  params.num_outputs = 3;
  params.num_flip_flops = 5;
  params.num_gates = 60;
  params.seed = 21;
  const Circuit c = gen::generate_circuit(params);
  const FaultList fl =
      FaultList::build(c, fault::FaultModel::transition());
  FaultSimulator fsim(c, fl);
  SatBackend sat(c);
  util::Rng rng(99);
  std::size_t detected = 0;
  std::size_t untestable = 0;
  for (std::size_t i = 0; i < fl.num_classes(); ++i) {
    const Fault f = fl.representative(static_cast<fault::FaultClassId>(i));
    const TransitionTest r = sat.generate_transition(f);
    ASSERT_NE(r.status, PodemStatus::Aborted) << "class " << i;
    if (r.status == PodemStatus::Detected) {
      ++detected;
      Vector3 state = r.state;
      sim::randomize_x(state, rng);
      const FaultSet det = fsim.detect_scan_test(state, r.seq);
      EXPECT_TRUE(det.test(i))
          << "SAT transition test misses its fault, class " << i;
    } else {
      ++untestable;
      for (int t = 0; t < 8; ++t) {
        sim::Sequence seq;
        seq.frames.push_back(sim::random_vector(c.num_inputs(), rng));
        seq.frames.push_back(sim::random_vector(c.num_inputs(), rng));
        const FaultSet det = fsim.detect_scan_test(
            sim::random_vector(c.num_flip_flops(), rng), seq);
        ASSERT_FALSE(det.test(i))
            << "random launch pair detects proven-untestable class " << i;
      }
    }
  }
  EXPECT_GT(detected, 0u);
  // A generated circuit of this size typically has a few untestable
  // transitions; the sweep is still meaningful if it does not.
  (void)untestable;
}

TEST(SatBackendTransition, SolverRebuildPreservesResults) {
  const Circuit c = gen::make_s27();
  const FaultList fl =
      FaultList::build(c, fault::FaultModel::transition());
  SatBackendOptions opt;
  opt.rebuild_vars = 1;  // force a rebuild before every fault
  SatBackend sat(c, std::move(opt));
  SatBackend fresh(c);
  for (std::size_t i = 0; i < fl.num_classes(); ++i) {
    const Fault f = fl.representative(static_cast<fault::FaultClassId>(i));
    EXPECT_EQ(sat.generate_transition(f).status,
              fresh.generate_transition(f).status)
        << "class " << i;
  }
  EXPECT_GT(sat.stats().rebuilds, 0u);
}

}  // namespace
}  // namespace scanc::atpg
