// Crash-safety, cancellation, and resume validation (docs/robustness.md).
//
// The core property under test: a run interrupted at an arbitrary point
// — by a deadline, an explicit cancel, or a SIGKILL'd process — and then
// resumed produces measurement numbers bit-identical to an uninterrupted
// run, and a damaged cache or journal degrades to recomputation, never a
// crash.
//
// The SIGKILL harness forks; run_circuit is invoked with the default
// num_threads = 1, so the forking process is single-threaded and the
// child may safely do real work without exec.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "atpg/comb_tset.hpp"
#include "expt/runner.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "gen/embedded.hpp"
#include "gen/suite.hpp"
#include "sim/seq_sim.hpp"
#include "tcomp/iterate.hpp"
#include "tcomp/pipeline.hpp"
#include "tgen/random_seq.hpp"
#include "util/cancel.hpp"
#include "util/store.hpp"
#include "util/event_bus.hpp"
#include "util/telemetry.hpp"
#include "util/trace_writer.hpp"

namespace scanc {
namespace {

namespace fs = std::filesystem;

std::string read_raw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_raw(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A fresh scratch directory per test (removed on destruction).
struct ScratchDir {
  explicit ScratchDir(const std::string& tag)
      : path((fs::temp_directory_path() /
              ("scanc_resilience_" + tag + "_" + std::to_string(getpid())))
                 .string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string path;
};

// ---------------------------------------------------------------------
// util::store — the checksummed atomic blob store.

TEST(Store, Crc32MatchesKnownVectors) {
  EXPECT_EQ(util::crc32(""), 0x00000000u);
  EXPECT_EQ(util::crc32("123456789"), 0xCBF43926u);  // IEEE check value
}

TEST(Store, RoundTripsArbitraryBytes) {
  ScratchDir dir("store_rt");
  const std::string path = dir.path + "/blob";
  std::string payload = "line1\nline2\n";
  payload.push_back('\0');
  payload += "\xff\x01 binary tail";
  ASSERT_TRUE(util::store_write(path, payload));
  const auto back = util::store_read(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);
}

TEST(Store, MissingFileIsAMiss) {
  EXPECT_FALSE(util::store_read("/nonexistent/dir/blob").has_value());
}

TEST(Store, WriteIntoMissingDirectoryFailsCleanly) {
  EXPECT_FALSE(util::store_write("/nonexistent/dir/blob", "x"));
}

TEST(Store, EveryTruncationIsAMiss) {
  // Simulates a torn write / torn copy at every possible byte count.
  ScratchDir dir("store_trunc");
  const std::string path = dir.path + "/blob";
  ASSERT_TRUE(util::store_write(path, "the payload\nwith lines\n"));
  const std::string full = read_raw(path);
  ASSERT_FALSE(full.empty());
  for (std::size_t len = 0; len < full.size(); ++len) {
    write_raw(path, std::string_view(full).substr(0, len));
    EXPECT_FALSE(util::store_read(path).has_value()) << "prefix " << len;
  }
  write_raw(path, full);
  EXPECT_TRUE(util::store_read(path).has_value());
}

TEST(Store, Everysingle_bit_corruption_is_a_miss) {
  ScratchDir dir("store_flip");
  const std::string path = dir.path + "/blob";
  ASSERT_TRUE(util::store_write(path, "payload under test 0123456789"));
  const std::string full = read_raw(path);
  for (std::size_t i = 0; i < full.size(); ++i) {
    std::string bad = full;
    bad[i] = static_cast<char>(bad[i] ^ 0x08);
    write_raw(path, bad);
    EXPECT_FALSE(util::store_read(path).has_value()) << "byte " << i;
  }
}

TEST(Store, ForeignFileIsAMiss) {
  ScratchDir dir("store_foreign");
  const std::string path = dir.path + "/blob";
  write_raw(path, "not a store file at all\n");
  EXPECT_FALSE(util::store_read(path).has_value());
  write_raw(path, "scanc-store 999 00000000 1\nx");  // version skew
  EXPECT_FALSE(util::store_read(path).has_value());
}

// ---------------------------------------------------------------------
// util::cancel — tokens, deadlines, stickiness.

TEST(Cancel, InertTokenNeverStops) {
  util::CancelToken t;
  EXPECT_FALSE(t.valid());
  EXPECT_FALSE(t.stop_requested());
  t.request_stop();  // no-op, must not crash
  EXPECT_FALSE(t.stop_requested());
}

TEST(Cancel, RequestStopIsStickyAndShared) {
  const util::CancelToken a = util::CancelToken::make();
  const util::CancelToken b = a;  // same shared state
  EXPECT_FALSE(a.stop_requested());
  b.request_stop();
  EXPECT_TRUE(a.stop_requested());
  EXPECT_TRUE(b.stop_requested());
}

TEST(Cancel, DeadlineExpiryRaisesToken) {
  EXPECT_TRUE(util::Deadline::after(-1.0).expired());
  EXPECT_FALSE(util::Deadline().expired());
  EXPECT_GT(util::Deadline().remaining_seconds(), 1e18);

  const auto t = util::CancelToken::make(util::Deadline::after(-1.0));
  EXPECT_TRUE(t.stop_requested());
  const auto slow = util::CancelToken::make(util::Deadline::after(3600.0));
  EXPECT_FALSE(slow.stop_requested());
}

// ---------------------------------------------------------------------
// Cooperative cancellation inside the fault simulator and the pipeline.
// These tests also run under TSan in CI (Cancel* filter).

struct SimFixture {
  SimFixture()
      : circuit(gen::make_s27()),
        faults(fault::FaultList::build(circuit)),
        fsim(circuit, faults) {}
  netlist::Circuit circuit;
  fault::FaultList faults;
  fault::FaultSimulator fsim;
};

TEST(CancelSim, RaisedTokenMakesDetectsAllConservativelyFalse) {
  SimFixture fx;
  const sim::Sequence seq =
      tgen::random_test_sequence(fx.circuit, 64, /*seed=*/7);
  const sim::Vector3 si(fx.circuit.num_flip_flops());
  // Uncancelled: the sequence detects some faults.
  const fault::FaultSet det = fx.fsim.detect_scan_test(si, seq);
  ASSERT_GT(det.count(), 0u);
  ASSERT_TRUE(fx.fsim.detects_all(si, seq, det));
  // A raised token forces the conservative answer even for a check that
  // would pass — a coverage check the cut interrupts must reject.
  const auto token = util::CancelToken::make();
  token.request_stop();
  fx.fsim.set_cancel(token);
  EXPECT_FALSE(fx.fsim.detects_all(si, seq, det));
  // Queries return promptly with partial (here: empty) results.
  EXPECT_EQ(fx.fsim.detect_scan_test(si, seq).count(), 0u);
}

TEST(CancelSim, MidQueryCancellationFromAnotherThreadIsClean) {
  // Raise the token from a second thread while queries run on a
  // multi-threaded simulator; TSan checks the synchronisation.  The
  // exact cut point is timing-dependent; the assertions below hold for
  // every cut.
  SimFixture fx;
  fx.fsim.set_num_threads(2);
  const sim::Sequence seq =
      tgen::random_test_sequence(fx.circuit, 512, /*seed=*/11);
  const sim::Vector3 si(fx.circuit.num_flip_flops());
  const fault::FaultSet full = fx.fsim.detect_scan_test(si, seq);

  for (int round = 0; round < 8; ++round) {
    const auto token = util::CancelToken::make();
    fx.fsim.set_cancel(token);
    std::thread raiser([&token] { token.request_stop(); });
    const fault::FaultSet det = fx.fsim.detect_scan_test(si, seq);
    raiser.join();
    // Partial result: a subset of the uncancelled detection set.
    fault::FaultSet extra = det;
    extra -= full;
    EXPECT_TRUE(extra.none()) << "round " << round;
  }
}

TEST(CancelSim, RaisedTokenKeepsConsistentFaultsConservative) {
  // consistent_faults under cancellation must err toward "consistent":
  // a fault may stay in the candidate set spuriously, but must never be
  // excluded without its mismatch being observed.
  SimFixture fx;
  const sim::Sequence seq =
      tgen::random_test_sequence(fx.circuit, 64, /*seed=*/7);
  const sim::Vector3 si(fx.circuit.num_flip_flops());
  const sim::Trace good =
      sim::simulate_fault_free(fx.circuit, &si, seq);
  const fault::FaultSet targets = fx.fsim.all_faults();
  const fault::FaultSet base = fx.fsim.consistent_faults(
      si, seq, good.po_frames, good.states.back(), targets);
  // Observing the fault-free response leaves some faults inconsistent
  // (the detected ones), so the conservative direction is observable.
  ASSERT_LT(base.count(), targets.count());

  // A pre-raised token (same state as an expired deadline, see
  // DeadlineExpiryRaisesToken) skips every group: all targets remain
  // consistent — a strict superset of the uncancelled answer.
  const auto token = util::CancelToken::make();
  token.request_stop();
  fx.fsim.set_cancel(token);
  const fault::FaultSet cancelled = fx.fsim.consistent_faults(
      si, seq, good.po_frames, good.states.back(), targets);
  EXPECT_EQ(cancelled.count(), targets.count());
}

TEST(CancelSim, MidQueryConsistencyCancellationIsConservative) {
  // Raise the token from a second thread mid-query: whatever frame the
  // per-frame poll in run_consistency cuts at, the result only loses
  // mismatches, so it is a superset of the uncancelled consistent set.
  SimFixture fx;
  fx.fsim.set_num_threads(2);
  const sim::Sequence seq =
      tgen::random_test_sequence(fx.circuit, 512, /*seed=*/11);
  const sim::Vector3 si(fx.circuit.num_flip_flops());
  const sim::Trace good =
      sim::simulate_fault_free(fx.circuit, &si, seq);
  const fault::FaultSet targets = fx.fsim.all_faults();
  const fault::FaultSet base = fx.fsim.consistent_faults(
      si, seq, good.po_frames, good.states.back(), targets);

  for (int round = 0; round < 8; ++round) {
    const auto token = util::CancelToken::make();
    fx.fsim.set_cancel(token);
    std::thread raiser([&token] { token.request_stop(); });
    const fault::FaultSet cut = fx.fsim.consistent_faults(
        si, seq, good.po_frames, good.states.back(), targets);
    raiser.join();
    fault::FaultSet lost = base;
    lost -= cut;
    EXPECT_TRUE(lost.none()) << "round " << round;
  }
}

TEST(CancelSim, PipelineStopsAtIterateWithValidEmptyResult) {
  SimFixture fx;
  atpg::CombTestSetOptions copt;
  copt.seed = 1;
  const atpg::CombTestSet comb =
      atpg::generate_comb_test_set(fx.circuit, fx.faults, copt);
  const sim::Sequence t0 =
      tgen::random_test_sequence(fx.circuit, 64, /*seed=*/3);

  tcomp::PipelineOptions popt;
  popt.cancel = util::CancelToken::make();
  popt.cancel.request_stop();  // cancelled before the first round
  const tcomp::PipelineResult r =
      tcomp::run_pipeline(fx.fsim, t0, comb.tests, popt);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.stopped_at, tcomp::PipelinePhase::Iterate);
  EXPECT_STREQ(tcomp::to_string(r.stopped_at), "phase1+2");
  // Best-so-far is empty but *well-formed*: sized sets, empty test set.
  EXPECT_EQ(r.compacted.size(), 0u);
  EXPECT_EQ(r.f_seq.size(), fx.fsim.num_classes());
  EXPECT_EQ(r.final_coverage.count(), 0u);
  fx.fsim.set_cancel({});  // detach before fx is destroyed
}

TEST(CancelSim, IterateKeepsBestCompleteRound) {
  // An inert-then-raised token between rounds: iterate must return the
  // best complete round, flagged stopped, and never a half-round.
  SimFixture fx;
  atpg::CombTestSetOptions copt;
  copt.seed = 1;
  const atpg::CombTestSet comb =
      atpg::generate_comb_test_set(fx.circuit, fx.faults, copt);
  const sim::Sequence t0 =
      tgen::random_test_sequence(fx.circuit, 64, /*seed=*/3);

  tcomp::IterateOptions base;
  const tcomp::IterateResult full = iterate_phases(fx.fsim, t0, comb.tests,
                                                   base);
  ASSERT_TRUE(full.tau_valid);
  ASSERT_FALSE(full.stopped);

  // Cancel up front: no round may run.
  tcomp::IterateOptions opt = base;
  opt.cancel = util::CancelToken::make();
  opt.cancel.request_stop();
  const tcomp::IterateResult cut = iterate_phases(fx.fsim, t0, comb.tests,
                                                  opt);
  EXPECT_TRUE(cut.stopped);
  EXPECT_FALSE(cut.tau_valid);
  EXPECT_TRUE(cut.iterations.empty());
}

// ---------------------------------------------------------------------
// Runner-level degradation: corrupt caches recompute, never crash.

expt::RunnerOptions tiny_runner(const std::string& cache_path) {
  expt::RunnerOptions opt;
  opt.cache_path = cache_path;
  opt.random_t0_length = 120;  // keep each full measurement quick
  return opt;
}

/// Same, but under the transition-delay fault model: the interrupt and
/// resume machinery must be model-agnostic (the journal keys on the
/// model, and frame-gated coverage bookkeeping resumes identically).
expt::RunnerOptions tiny_transition_runner(const std::string& cache_path) {
  expt::RunnerOptions opt = tiny_runner(cache_path);
  opt.fault_model = fault::FaultModelKind::Transition;
  return opt;
}

/// serialize_run minus wall-clock (`seconds` accumulates across resumed
/// attempts and legitimately differs; every measured number must not).
std::string measured_numbers(const expt::CircuitRun& run) {
  std::istringstream in(expt::serialize_run(run));
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("seconds=", 0) == 0) continue;
    out << line << "\n";
  }
  return out.str();
}

TEST(RunnerResilience, CorruptCacheDegradesToRecompute) {
  const auto entry = gen::find_suite_entry("b02");
  ASSERT_TRUE(entry.has_value());
  ScratchDir dir("corrupt_cache");
  const expt::RunnerOptions opt = tiny_runner(dir.path + "/cache");
  const std::string path = expt::cache_entry_path(opt, "b02");

  const expt::CircuitRun baseline = expt::run_circuit(*entry, opt);
  ASSERT_TRUE(baseline.completed);
  ASSERT_TRUE(fs::exists(path));

  // Garbage file, valid envelope around garbage payload, truncation:
  // all three must silently recompute to the same numbers.
  const std::string good = read_raw(path);
  const std::string damage[] = {
      std::string("\x7f""ELF not a cache"),
      std::string(),  // empty file
      good.substr(0, good.size() / 2),
  };
  for (const std::string& bytes : damage) {
    write_raw(path, bytes);
    const expt::CircuitRun rerun = expt::run_circuit(*entry, opt);
    EXPECT_TRUE(rerun.completed);
    EXPECT_EQ(measured_numbers(rerun), measured_numbers(baseline));
  }
  // Valid envelope, hostile payload (wrong version, junk fields).
  ASSERT_TRUE(util::store_write(path, "version=999\nname=b02\nxx\n"));
  const expt::CircuitRun rerun = expt::run_circuit(*entry, opt);
  EXPECT_TRUE(rerun.completed);
  EXPECT_EQ(measured_numbers(rerun), measured_numbers(baseline));
}

TEST(RunnerResilience, CorruptJournalDegradesToRecompute) {
  const auto entry = gen::find_suite_entry("b02");
  ASSERT_TRUE(entry.has_value());
  ScratchDir dir("corrupt_journal");
  const expt::RunnerOptions opt = tiny_runner(dir.path + "/cache");
  const std::string journal =
      expt::cache_entry_path(opt, "b02") + ".journal";

  write_raw(journal, "random bytes that are not a store envelope");
  const expt::CircuitRun run = expt::run_circuit(*entry, opt);
  EXPECT_TRUE(run.completed);
  // A completed run retires the journal.
  EXPECT_FALSE(fs::exists(journal));
}

// ---------------------------------------------------------------------
// Interrupt/resume bit-identity: deadline cuts at randomized points.

/// Runs b02 to completion under repeated deadline cuts, starting from
/// `budget_seconds` and growing it each attempt so progress is
/// guaranteed even when one budget is too small to finish a phase.
/// Returns the final (completed) run and counts partial attempts.
expt::CircuitRun run_with_deadline_cuts(const gen::SuiteEntry& entry,
                                        const expt::RunnerOptions& base,
                                        double budget_seconds,
                                        int* partial_attempts) {
  *partial_attempts = 0;
  for (int attempt = 0; attempt < 400; ++attempt) {
    expt::RunnerOptions opt = base;
    opt.cancel = util::CancelToken::make(
        util::Deadline::after(budget_seconds * (1.0 + 0.25 * attempt)));
    const expt::CircuitRun run = expt::run_circuit(entry, opt);
    if (run.completed) return run;
    EXPECT_FALSE(run.stopped_at.empty());
    ++*partial_attempts;
  }
  ADD_FAILURE() << "never completed under growing budgets";
  return {};
}

TEST(RunnerResilience, DeadlineInterruptsThenResumeIsBitIdentical) {
  const auto entry = gen::find_suite_entry("b02");
  ASSERT_TRUE(entry.has_value());

  ScratchDir dir("deadline_resume");
  const expt::RunnerOptions base_opt = tiny_runner(dir.path + "/base");
  const expt::CircuitRun baseline = expt::run_circuit(*entry, base_opt);
  ASSERT_TRUE(baseline.completed);
  const std::string want = measured_numbers(baseline);

  // 12 starting budgets spread over orders of magnitude, so the cuts
  // land in different phases (sub-ms cuts die in setup; larger ones
  // inside each pipeline/baseline phase).
  const double budgets[] = {1e-4, 3e-4, 8e-4, 2e-3, 4e-3, 7e-3,
                            1e-2, 2e-2, 3e-2, 5e-2, 8e-2, 1.2e-1};
  int total_partials = 0;
  int point = 0;
  for (const double budget : budgets) {
    const expt::RunnerOptions opt =
        tiny_runner(dir.path + "/cut" + std::to_string(point++));
    int partials = 0;
    const expt::CircuitRun resumed =
        run_with_deadline_cuts(*entry, opt, budget, &partials);
    total_partials += partials;
    EXPECT_EQ(measured_numbers(resumed), want) << "budget " << budget;
    EXPECT_GE(resumed.seconds, 0.0);
  }
  // The harness must actually have interrupted runs, not just completed
  // them on the first try.
  EXPECT_GE(total_partials, 12);
}

TEST(RunnerResilience, PartialRunReportsPhaseAndIsNeverCached) {
  const auto entry = gen::find_suite_entry("b02");
  ASSERT_TRUE(entry.has_value());
  ScratchDir dir("partial_report");
  expt::RunnerOptions opt = tiny_runner(dir.path + "/cache");
  opt.cancel = util::CancelToken::make();
  opt.cancel.request_stop();
  const expt::CircuitRun run = expt::run_circuit(*entry, opt);
  EXPECT_FALSE(run.completed);
  EXPECT_EQ(run.stopped_at, "setup");
  // No result cache may exist for a partial run.
  EXPECT_FALSE(fs::exists(expt::cache_entry_path(opt, "b02")));
}

TEST(RunnerResilience,
     TransitionDeadlineInterruptsThenResumeIsBitIdentical) {
  // The deadline-cut schedule under the transition-delay model: cuts
  // land in frame-gated simulation phases the stuck-at sweep never
  // exercises, and resume must still be bit-identical.
  const auto entry = gen::find_suite_entry("b02");
  ASSERT_TRUE(entry.has_value());

  ScratchDir dir("tdf_deadline_resume");
  const expt::RunnerOptions base_opt =
      tiny_transition_runner(dir.path + "/base");
  const expt::CircuitRun baseline = expt::run_circuit(*entry, base_opt);
  ASSERT_TRUE(baseline.completed);
  const std::string want = measured_numbers(baseline);

  const double budgets[] = {1e-4, 8e-4, 4e-3, 1e-2, 3e-2, 8e-2};
  int total_partials = 0;
  int point = 0;
  for (const double budget : budgets) {
    const expt::RunnerOptions opt =
        tiny_transition_runner(dir.path + "/cut" + std::to_string(point++));
    int partials = 0;
    const expt::CircuitRun resumed =
        run_with_deadline_cuts(*entry, opt, budget, &partials);
    total_partials += partials;
    EXPECT_EQ(measured_numbers(resumed), want) << "budget " << budget;
  }
  EXPECT_GE(total_partials, 6);
}

// ---------------------------------------------------------------------
// SIGKILL injection: a child process is killed at randomized points;
// the surviving cache directory must resume to bit-identical numbers.

TEST(RunnerResilience, SigkillAtRandomPointsThenResumeIsBitIdentical) {
  const auto entry = gen::find_suite_entry("b02");
  ASSERT_TRUE(entry.has_value());

  ScratchDir dir("kill_resume");
  const expt::RunnerOptions base_opt = tiny_runner(dir.path + "/base");
  const expt::CircuitRun baseline = expt::run_circuit(*entry, base_opt);
  ASSERT_TRUE(baseline.completed);
  const std::string want = measured_numbers(baseline);

  const expt::RunnerOptions opt = tiny_runner(dir.path + "/kill");
  // Deterministically scattered kill delays (µs).  run_circuit uses
  // num_threads = 1, so this process is single-threaded here and
  // fork-without-exec is safe.
  const useconds_t delays[] = {300,  800,  1500, 2500, 4000,
                               6000, 9000, 13000, 20000, 30000};
  for (const useconds_t delay : delays) {
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      // In the child: run (resuming from whatever the journal holds).
      // _exit keeps gtest/atexit machinery from running twice.
      try {
        const expt::CircuitRun run = expt::run_circuit(*entry, opt);
        _exit(run.completed ? 0 : 3);
      } catch (...) {
        _exit(2);
      }
    }
    usleep(delay);
    kill(child, SIGKILL);
    int status = 0;
    ASSERT_EQ(waitpid(child, &status, 0), child);
    // Either the kill landed or the child finished first; a child that
    // *crashed* (exit 2) is a bug regardless.
    if (WIFEXITED(status)) {
      EXPECT_NE(WEXITSTATUS(status), 2);
    }
  }

  // Resume in-process: must complete and match the uninterrupted run.
  const expt::CircuitRun resumed = expt::run_circuit(*entry, opt);
  ASSERT_TRUE(resumed.completed);
  EXPECT_EQ(measured_numbers(resumed), want);
  // Completion retires the journal.
  EXPECT_FALSE(
      fs::exists(expt::cache_entry_path(opt, "b02") + ".journal"));
}

TEST(RunnerResilience, TransitionSigkillThenResumeIsBitIdentical) {
  // The SIGKILL sweep under the transition-delay model.
  const auto entry = gen::find_suite_entry("b02");
  ASSERT_TRUE(entry.has_value());

  ScratchDir dir("tdf_kill_resume");
  const expt::RunnerOptions base_opt =
      tiny_transition_runner(dir.path + "/base");
  const expt::CircuitRun baseline = expt::run_circuit(*entry, base_opt);
  ASSERT_TRUE(baseline.completed);
  const std::string want = measured_numbers(baseline);

  const expt::RunnerOptions opt = tiny_transition_runner(dir.path + "/kill");
  const useconds_t delays[] = {300, 1500, 4000, 9000, 20000, 40000};
  for (const useconds_t delay : delays) {
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      try {
        const expt::CircuitRun run = expt::run_circuit(*entry, opt);
        _exit(run.completed ? 0 : 3);
      } catch (...) {
        _exit(2);
      }
    }
    usleep(delay);
    kill(child, SIGKILL);
    int status = 0;
    ASSERT_EQ(waitpid(child, &status, 0), child);
    if (WIFEXITED(status)) {
      EXPECT_NE(WEXITSTATUS(status), 2);
    }
  }

  const expt::CircuitRun resumed = expt::run_circuit(*entry, opt);
  ASSERT_TRUE(resumed.completed);
  EXPECT_EQ(measured_numbers(resumed), want);
  EXPECT_FALSE(
      fs::exists(expt::cache_entry_path(opt, "b02") + ".journal"));
}

TEST(RunnerResilience, KillResumeMetricsAreCumulativeAcrossAttempts) {
  // The journal carries cumulative obs counter snapshots (obs.* lines)
  // so a resumed run's --metrics-out reports the whole job, not just the
  // final attempt.  Kill children at scattered points, then resume in
  // this process: the credited totals must cover at least the work an
  // uninterrupted run performs (every phase is either journaled complete
  // — its counters credited — or redone live; partial attempts only add).
  const auto entry = gen::find_suite_entry("b02");
  ASSERT_TRUE(entry.has_value());
  ScratchDir dir("kill_metrics");

  constexpr std::size_t kFrames =
      static_cast<std::size_t>(obs::Counter::FramesSimulated);
  constexpr std::size_t kQueries =
      static_cast<std::size_t>(obs::Counter::QueriesRun);

  // Uninterrupted baseline cost, as counter deltas (the suite shares the
  // process-global registry, so absolute values mean nothing here).
  const expt::RunnerOptions base_opt = tiny_runner(dir.path + "/base");
  const obs::CounterSnapshot s0 = obs::snapshot_counters();
  const expt::CircuitRun baseline = expt::run_circuit(*entry, base_opt);
  ASSERT_TRUE(baseline.completed);
  const obs::CounterSnapshot uninterrupted =
      obs::counter_delta(obs::snapshot_counters(), s0);
  ASSERT_GT(uninterrupted[kFrames], 0u);
  ASSERT_GT(uninterrupted[kQueries], 0u);

  const expt::RunnerOptions opt = tiny_runner(dir.path + "/kill");
  const std::string journal =
      expt::cache_entry_path(opt, "b02") + ".journal";
  std::vector<std::uint64_t> journaled_frames;
  const useconds_t delays[] = {300,  800,  1500, 2500, 4000,
                               6000, 9000, 13000, 20000, 30000};
  for (const useconds_t delay : delays) {
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      try {
        // Deadline backstop: even when the SIGKILL misses, the child is
        // cut and the journal survives for the in-process resume below.
        expt::RunnerOptions copt = opt;
        copt.cancel =
            util::CancelToken::make(util::Deadline::after(0.05));
        const expt::CircuitRun run = expt::run_circuit(*entry, copt);
        _exit(run.completed ? 0 : 3);
      } catch (...) {
        _exit(2);
      }
    }
    usleep(delay);
    kill(child, SIGKILL);
    int status = 0;
    ASSERT_EQ(waitpid(child, &status, 0), child);
    if (WIFEXITED(status)) {
      EXPECT_NE(WEXITSTATUS(status), 2);
    }
    if (const auto payload = util::store_read(journal)) {
      const std::size_t at = payload->find("obs.frames_simulated=");
      if (at != std::string::npos &&
          payload->find("obs_pid=") != std::string::npos) {
        journaled_frames.push_back(
            std::strtoull(payload->c_str() + at + 21, nullptr, 10));
      }
    }
  }
  // At least one checkpoint must have journaled counter snapshots, and
  // the carried totals are cumulative: each attempt credits the last
  // journal, so the journaled value never decreases.
  ASSERT_FALSE(journaled_frames.empty());
  for (std::size_t i = 1; i < journaled_frames.size(); ++i) {
    EXPECT_GE(journaled_frames[i], journaled_frames[i - 1]) << "attempt "
                                                            << i;
  }

  // Resume in this (different-pid) process from a clean registry: the
  // journal's totals are credited exactly once, the remaining phases run
  // live, and the cumulative numbers cover the uninterrupted cost.  A
  // child that outran the killer may have completed the run; drop the
  // result cache so the resume actually executes (the ≥ bound holds on
  // both the credited-journal and full-recompute paths).
  fs::remove(expt::cache_entry_path(opt, "b02"));
  obs::reset();
  const expt::CircuitRun resumed = expt::run_circuit(*entry, opt);
  ASSERT_TRUE(resumed.completed);
  const obs::CounterSnapshot cumulative = obs::snapshot_counters();
  EXPECT_GE(cumulative[kFrames], uninterrupted[kFrames]);
  EXPECT_GE(cumulative[kQueries], uninterrupted[kQueries]);
}

TEST(ObsShutdown, DrainEventsReachTheLogBeforeSinksSeal) {
  // The SIGTERM drain path (scanc-serve, compact_bench) publishes its
  // final phase-end events and then calls obs::shutdown_sinks(), which
  // must flush+close the event log before sealing the Chrome trace.
  // Pin the contract: every event published up to the shutdown call is
  // on disk afterwards, both sinks are sealed (the trace is a complete
  // JSON document), and a straggler publish after shutdown cannot
  // resurrect or corrupt either file.
  ScratchDir dir("obs_shutdown");
  const std::string trace_path = dir.path + "/trace.json";
  const std::string log_path = dir.path + "/events.jsonl";
  ASSERT_TRUE(obs::open_trace(trace_path));
  ASSERT_TRUE(obs::open_event_log(log_path));
  ASSERT_TRUE(obs::events_enabled());

  obs::publish_event(obs::EventKind::PhaseBegin, "pipeline");
  obs::publish_event(obs::EventKind::Round, "phase1+2", 17, 0);
  // The drain's last gasp — this is the event a wrong ordering loses.
  obs::publish_event(obs::EventKind::PhaseEnd, "pipeline", 17, 1,
                     "drain");

  obs::shutdown_sinks();
  EXPECT_FALSE(obs::events_enabled());
  EXPECT_FALSE(obs::tracing_enabled());

  // Every pre-shutdown event was flushed, in publish order.
  std::ifstream log(log_path);
  ASSERT_TRUE(log.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(log, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"kind\":\"phase_begin\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"kind\":\"round\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"kind\":\"phase_end\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"note\":\"drain\""), std::string::npos);

  // The trace was sealed after the log: a complete JSON document.
  std::ifstream trace(trace_path);
  std::stringstream tbuf;
  tbuf << trace.rdbuf();
  const std::string tdoc = tbuf.str();
  ASSERT_FALSE(tdoc.empty());
  const auto last = tdoc.find_last_not_of(" \t\r\n");
  ASSERT_NE(last, std::string::npos);
  EXPECT_EQ(tdoc[last], '}') << "trace must be sealed, not truncated";

  // Stragglers after shutdown are dropped, not appended.
  obs::publish_event(obs::EventKind::Counters, "exec", 0, 1);
  std::ifstream relog(log_path);
  std::size_t count = 0;
  for (std::string line; std::getline(relog, line);) ++count;
  EXPECT_EQ(count, 3u);
}

}  // namespace
}  // namespace scanc
