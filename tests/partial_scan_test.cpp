// Partial-scan extension tests: the paper notes the procedure extends to
// partial scan; these tests pin down the extension's semantics — an
// unscanned flip-flop is unknown at test start, unobservable at
// scan-out, and never a PODEM decision variable.
#include <gtest/gtest.h>

#include "atpg/comb_tset.hpp"
#include "atpg/podem.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "gen/circuit_gen.hpp"
#include "gen/embedded.hpp"
#include "tcomp/pipeline.hpp"
#include "tgen/random_seq.hpp"
#include "util/rng.hpp"

namespace scanc {
namespace {

using fault::FaultList;
using fault::FaultSet;
using fault::FaultSimulator;
using netlist::Circuit;
using netlist::GateType;

util::Bitset mask_of(std::initializer_list<int> scanned, std::size_t n) {
  util::Bitset m(n);
  for (const int i : scanned) m.set(static_cast<std::size_t>(i));
  return m;
}

// ff0 observable only via scan-out; ff1 readable only through logic.
Circuit two_ff_circuit() {
  netlist::CircuitBuilder b("pscan");
  b.add_input("a");
  b.add_input("bsel");
  b.add_gate(GateType::Dff, "q0", {"d0"});
  b.add_gate(GateType::Dff, "q1", {"d1"});
  b.add_gate(GateType::And, "d0", {"a", "bsel"});
  b.add_gate(GateType::Xor, "d1", {"a", "q1"});
  b.add_gate(GateType::And, "o", {"q1", "bsel"});
  b.mark_output("o");
  return b.build();
}

TEST(PartialScanSim, UnscannedScanInIsIgnored) {
  const Circuit c = two_ff_circuit();
  const FaultList fl = FaultList::build(c);
  // Only ff0 scanned: scan-in values for ff1 must be forced to X, so the
  // two detect runs below (differing only in ff1's scan-in bit) agree.
  FaultSimulator fsim(c, fl, mask_of({0}, 2));
  sim::Sequence seq;
  seq.frames.push_back(sim::vector3_from_string("11"));
  const FaultSet a =
      fsim.detect_scan_test(sim::vector3_from_string("10"), seq);
  const FaultSet b =
      fsim.detect_scan_test(sim::vector3_from_string("11"), seq);
  EXPECT_EQ(a, b);
}

TEST(PartialScanSim, UnscannedCaptureNotObserved) {
  const Circuit c = two_ff_circuit();
  const FaultList fl = FaultList::build(c);
  // d0 stuck-at-0 is observable only at ff0's capture.  With ff0 off the
  // scan chain the fault must go undetected; with ff0 scanned it is
  // caught by a=1, bsel=1.
  sim::Sequence seq;
  seq.frames.push_back(sim::vector3_from_string("11"));
  const sim::Vector3 si = sim::vector3_from_string("11");

  const auto class_of_d0_sa0 = [&]() -> fault::FaultClassId {
    for (std::size_t i = 0; i < fl.num_faults(); ++i) {
      const fault::Fault& f = fl.faults()[i];
      if (f.node == c.find("d0") && f.pin == sim::kStemPin &&
          !f.value) {
        return fl.class_of(i);
      }
    }
    ADD_FAILURE();
    return 0;
  }();

  FaultSimulator full(c, fl);
  EXPECT_TRUE(full.detect_scan_test(si, seq).test(class_of_d0_sa0));

  FaultSimulator partial(c, fl, mask_of({1}, 2));
  EXPECT_FALSE(partial.detect_scan_test(si, seq).test(class_of_d0_sa0));
}

TEST(PartialScanSim, MaskedCoverageNeverExceedsFullScan) {
  gen::GenParams p;
  p.name = "ps";
  p.seed = 77;
  p.num_inputs = 5;
  p.num_outputs = 4;
  p.num_flip_flops = 8;
  p.num_gates = 90;
  const Circuit c = gen::generate_circuit(p);
  const FaultList fl = FaultList::build(c);
  util::Rng rng(5);
  const sim::Sequence seq = sim::random_sequence(c.num_inputs(), 12, rng);
  const sim::Vector3 si = sim::random_vector(c.num_flip_flops(), rng);

  FaultSimulator full(c, fl);
  const FaultSet all = full.detect_scan_test(si, seq);
  for (const auto scanned : {0b00001111, 0b01010101, 0b00000000}) {
    util::Bitset m(8);
    for (int i = 0; i < 8; ++i) {
      if ((scanned >> i) & 1) m.set(static_cast<std::size_t>(i));
    }
    FaultSimulator partial(c, fl, m);
    EXPECT_EQ(partial.num_scanned(), m.count());
    const FaultSet det = partial.detect_scan_test(si, seq);
    EXPECT_TRUE(all.contains(det)) << scanned;
  }
}

TEST(PartialScanPodem, CubesRespectMaskAndDetect) {
  gen::GenParams p;
  p.name = "psp";
  p.seed = 31;
  p.num_inputs = 5;
  p.num_outputs = 4;
  p.num_flip_flops = 6;
  p.num_gates = 70;
  const Circuit c = gen::generate_circuit(p);
  const FaultList fl = FaultList::build(c);
  const util::Bitset mask = mask_of({0, 2, 4}, 6);

  atpg::PodemOptions popt;
  popt.scan_mask = mask;
  atpg::Podem podem(c, popt);
  FaultSimulator fsim(c, fl, mask);
  util::Rng rng(9);

  std::size_t detected = 0;
  for (fault::FaultClassId id = 0; id < fl.num_classes(); ++id) {
    const atpg::PodemResult r = podem.generate(fl.representative(id));
    if (r.status != atpg::PodemStatus::Detected) continue;
    ++detected;
    // Unscanned state bits stay X in the cube.
    for (const std::size_t i : {1u, 3u, 5u}) {
      EXPECT_EQ(r.cube.state[i], sim::V3::X);
    }
    sim::Vector3 state = r.cube.state;
    sim::Vector3 inputs = r.cube.inputs;
    sim::randomize_x(inputs, rng);
    for (std::size_t i = 0; i < 6; ++i) {
      if (mask.test(i) && state[i] == sim::V3::X) {
        state[i] = sim::v3_from_bool(rng.coin());
      } else if (!mask.test(i)) {
        state[i] = sim::V3::X;
      }
    }
    sim::Sequence seq;
    seq.frames.push_back(inputs);
    EXPECT_TRUE(fsim.detect_scan_test(state, seq).test(id))
        << fault_name(fl.representative(id), c);
  }
  EXPECT_GT(detected, 0u);
}

// Regression: under partial scan, PODEM's backtrace can dead-end on an
// unscanned flip-flop (an unassignable X source).  Treating that
// dead-end as branch exhaustion used to make generate() return
// Untestable for faults that are detectable — here the detectability
// witness is a masked fault-simulation run on a cube the SAT backend
// produced for exactly this configuration (circuit seed 13, scan mask
// {0,2,3} of 6, fault pi0 stuck-at-0).  A dead-ended search must end
// Detected or Aborted, never Untestable.
TEST(PartialScanPodem, BacktraceDeadEndIsNeverAnUntestabilityProof) {
  gen::GenParams p;
  p.name = "psdead";
  p.seed = 13;
  p.num_inputs = 6;
  p.num_outputs = 4;
  p.num_flip_flops = 6;
  p.num_gates = 80;
  const Circuit c = gen::generate_circuit(p);
  const FaultList fl = FaultList::build(c);
  const util::Bitset mask = mask_of({0, 2, 3}, 6);

  atpg::PodemOptions popt;
  popt.scan_mask = mask;
  atpg::Podem podem(c, popt);
  FaultSimulator fsim(c, fl, mask);
  util::Rng rng(17);

  // No fault PODEM calls untestable may be detectable by simulation:
  // try to detect every "untestable" class with random mask-respecting
  // tests — any hit disproves the proof.
  FaultSet claimed_untestable(fl.num_classes());
  for (fault::FaultClassId id = 0; id < fl.num_classes(); ++id) {
    if (podem.generate(fl.representative(id)).status ==
        atpg::PodemStatus::Untestable) {
      claimed_untestable.set(id);
    }
  }
  for (int t = 0; t < 64; ++t) {
    sim::Vector3 state = sim::random_vector(6, rng);
    for (std::size_t i = 0; i < 6; ++i) {
      if (!mask.test(i)) state[i] = sim::V3::X;
    }
    sim::Sequence seq;
    seq.frames.push_back(sim::random_vector(c.num_inputs(), rng));
    const FaultSet det =
        fsim.detect_scan_test(state, seq, &claimed_untestable);
    det.for_each([&](std::size_t id) {
      ADD_FAILURE() << "PODEM claimed untestable but simulation detects "
                    << fault_name(fl.representative(
                           static_cast<fault::FaultClassId>(id)), c);
    });
  }
}

TEST(PartialScanFlow, PipelineRunsEndToEnd) {
  gen::GenParams p;
  p.name = "psf";
  p.seed = 41;
  p.num_inputs = 5;
  p.num_outputs = 4;
  p.num_flip_flops = 8;
  p.num_gates = 90;
  const Circuit c = gen::generate_circuit(p);
  const FaultList fl = FaultList::build(c);
  const util::Bitset mask = mask_of({0, 1, 2, 3}, 8);

  atpg::CombTestSetOptions copt;
  copt.podem.scan_mask = mask;
  const atpg::CombTestSet comb = atpg::generate_comb_test_set(c, fl, copt);
  for (const atpg::CombTest& t : comb.tests) {
    for (const std::size_t i : {4u, 5u, 6u, 7u}) {
      EXPECT_EQ(t.state[i], sim::V3::X);
    }
  }

  FaultSimulator fsim(c, fl, mask);
  const sim::Sequence t0 = tgen::random_test_sequence(c, 150, 3);
  const tcomp::PipelineResult r =
      tcomp::run_pipeline(fsim, t0, comb.tests);
  EXPECT_TRUE(r.final_coverage.contains(r.f_seq));
  EXPECT_TRUE(r.final_coverage.contains(comb.detected));

  // Partial scan cannot beat full-scan coverage.
  FaultSimulator full_sim(c, fl);
  const atpg::CombTestSet full_comb =
      atpg::generate_comb_test_set(c, fl, {});
  const tcomp::PipelineResult full =
      tcomp::run_pipeline(full_sim, t0, full_comb.tests);
  EXPECT_LE(r.final_coverage.count(), full.final_coverage.count());
}

}  // namespace
}  // namespace scanc
