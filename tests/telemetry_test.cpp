// Tests for scanc::obs (src/util/telemetry.hpp): per-thread counter
// sharding under real pool concurrency (the TSan CI job runs this
// binary), Chrome-trace span nesting, kill/resume counter crediting,
// and the zero-allocation guarantee of the disabled-telemetry hot path.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/event_bus.hpp"
#include "util/telemetry.hpp"
#include "util/thread_pool.hpp"
#include "util/trace_writer.hpp"

// ---------------------------------------------------------------------
// Global allocation counter for the zero-allocation test.  Counts every
// operator-new in the process; tests snapshot it around the region of
// interest.  Sized deletes forward to the counting sized-free path.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace scanc;

std::uint64_t count(obs::Counter c) { return obs::value(c); }

// ---------------------------------------------------------------------
// Counter sharding.

TEST(TelemetryCounters, AggregatesAcrossPoolWorkers) {
  obs::reset();
  constexpr std::size_t kTasks = 2000;
  constexpr std::uint64_t kPerTask = 3;
  {
    util::ThreadPool pool(8);
    pool.parallel_for(kTasks, [&](std::size_t) {
      obs::add(obs::Counter::FramesSimulated, kPerTask);
    });
    // Workers still alive: aggregation must see their live blocks.
    EXPECT_EQ(count(obs::Counter::FramesSimulated), kTasks * kPerTask);
  }
  // Workers joined: their totals must have drained into the retired
  // pool, not vanished with the thread-local blocks.
  EXPECT_EQ(count(obs::Counter::FramesSimulated), kTasks * kPerTask);
}

TEST(TelemetryCounters, DrainsOnThreadExit) {
  obs::reset();
  std::thread t([] { obs::add(obs::Counter::GroupsExecuted, 41); });
  t.join();
  obs::add(obs::Counter::GroupsExecuted);
  EXPECT_EQ(count(obs::Counter::GroupsExecuted), 42u);
}

TEST(TelemetryCounters, ConcurrentWritersNeverLoseIncrements) {
  obs::reset();
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([] {
      for (std::uint64_t j = 0; j < kPerThread; ++j) {
        obs::add(obs::Counter::QueriesRun);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(count(obs::Counter::QueriesRun), kThreads * kPerThread);
}

TEST(TelemetryCounters, DeltaSaturatesAtZero) {
  obs::CounterSnapshot before{};
  obs::CounterSnapshot after{};
  before[0] = 10;
  after[0] = 4;   // counter went "backwards" (e.g. across a reset)
  after[1] = 7;
  const obs::CounterSnapshot d = obs::counter_delta(after, before);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[1], 7u);
}

TEST(TelemetryCounters, CreditMergesCarriedTotals) {
  obs::reset();
  obs::add(obs::Counter::FramesSimulated, 100);
  obs::CounterSnapshot carried{};
  carried[static_cast<std::size_t>(obs::Counter::FramesSimulated)] = 900;
  carried[static_cast<std::size_t>(obs::Counter::FaultsDetected)] = 5;
  obs::credit(carried);
  EXPECT_EQ(count(obs::Counter::FramesSimulated), 1000u);
  EXPECT_EQ(count(obs::Counter::FaultsDetected), 5u);
  // Credit lands in snapshots too.
  const obs::CounterSnapshot snap = obs::snapshot_counters();
  EXPECT_EQ(
      snap[static_cast<std::size_t>(obs::Counter::FramesSimulated)], 1000u);
}

TEST(TelemetryCounters, NamesAreStableSnakeCase) {
  for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
    const std::string name =
        obs::counter_name(static_cast<obs::Counter>(i));
    EXPECT_FALSE(name.empty());
    for (const char ch : name) {
      EXPECT_TRUE((ch >= 'a' && ch <= 'z') || ch == '_')
          << "counter " << i << " name '" << name << "'";
    }
  }
  EXPECT_STREQ(obs::counter_name(obs::Counter::FramesSimulated),
               "frames_simulated");
  EXPECT_STREQ(obs::counter_name(obs::Counter::TraceCachePartialReuses),
               "trace_cache_partial_reuses");
}

// ---------------------------------------------------------------------
// Gauges, histograms, phases.

TEST(TelemetryGauges, LastWriterWins) {
  obs::reset();
  obs::set_gauge(obs::Gauge::TraceCacheSize, 7);
  obs::set_gauge(obs::Gauge::TraceCacheSize, 3);
  EXPECT_EQ(obs::gauge(obs::Gauge::TraceCacheSize), 3u);
}

TEST(TelemetryHistograms, Log2Buckets) {
  obs::reset();
  obs::record(obs::Histogram::QueryNanos, 0);
  obs::record(obs::Histogram::QueryNanos, 1000);  // 2^9 <= 1000 < 2^10
  obs::record(obs::Histogram::QueryNanos, 1000);
  const obs::HistogramData h = obs::histogram(obs::Histogram::QueryNanos);
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 2000u);
  EXPECT_EQ(h.min, 0u);
  EXPECT_EQ(h.max, 1000u);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[9], 2u);
}

TEST(TelemetryPhases, RecordPhaseBumpsFaultsDetected) {
  obs::reset();
  obs::record_phase("phase1+2", 1.5, 10);
  obs::record_phase("phase3", 0.5, 4);
  const std::vector<obs::PhaseRecord> records = obs::phase_records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "phase1+2");
  EXPECT_DOUBLE_EQ(records[0].seconds, 1.5);
  EXPECT_EQ(records[1].faults_delta, 4u);
  EXPECT_EQ(count(obs::Counter::FaultsDetected), 14u);
}

TEST(TelemetryPhases, PhaseSpanRestoresEnclosingPhase) {
  obs::set_current_phase("outer");
  {
    obs::PhaseSpan inner("inner");
    EXPECT_STREQ(obs::current_phase(), "inner");
  }
  EXPECT_STREQ(obs::current_phase(), "outer");
}

// ---------------------------------------------------------------------
// Trace spans.

struct ParsedEvent {
  std::string name;
  std::uint64_t ts = 0;
  std::uint64_t dur = 0;
  unsigned tid = 0;
};

// Parses the one-event-per-line complete events out of a trace file.
std::vector<ParsedEvent> parse_spans(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<ParsedEvent> out;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t name_at = line.find("\"name\":\"");
    if (name_at == std::string::npos ||
        line.find("\"ph\":\"X\"") == std::string::npos) {
      continue;
    }
    ParsedEvent e;
    const std::size_t name_start = name_at + 8;
    e.name = line.substr(name_start, line.find('"', name_start) - name_start);
    unsigned long long ts = 0;
    unsigned long long dur = 0;
    EXPECT_EQ(std::sscanf(line.c_str() + line.find("\"tid\":"),
                          "\"tid\":%u,\"ts\":%llu,\"dur\":%llu", &e.tid, &ts,
                          &dur),
              3)
        << line;
    e.ts = ts;
    e.dur = dur;
    out.push_back(std::move(e));
  }
  return out;
}

TEST(TelemetrySpans, NestedSpansContainedAndEndOrdered) {
  const std::string path = testing::TempDir() + "scanc_span_nesting.json";
  ASSERT_TRUE(obs::open_trace(path));
  {
    obs::Span outer("outer", "phase");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      obs::Span inner("inner", "step");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  obs::Span after("after", "phase");
  obs::close_trace();  // 'after' still open: must not appear
  const std::vector<ParsedEvent> spans = parse_spans(path);
  ASSERT_EQ(spans.size(), 2u);
  // Events are emitted at span end, so the inner span comes first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "outer");
  const ParsedEvent& inner = spans[0];
  const ParsedEvent& outer = spans[1];
  EXPECT_EQ(inner.tid, outer.tid);
  // [inner.ts, inner.ts+dur] strictly inside [outer.ts, outer.ts+dur].
  EXPECT_GT(inner.ts, outer.ts);
  EXPECT_LT(inner.ts + inner.dur, outer.ts + outer.dur);
  EXPECT_GE(inner.dur, 1000u);  // slept 2 ms inside
  // The file as a whole is closed JSON.
  std::ifstream in(path);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(text.find("\n]}"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TelemetrySpans, SpansFromPoolWorkersCarryDistinctTids) {
  const std::string path = testing::TempDir() + "scanc_span_tids.json";
  ASSERT_TRUE(obs::open_trace(path));
  {
    util::ThreadPool pool(4);
    pool.parallel_for(32, [](std::size_t) {
      obs::Span s("worker span", "query");
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    });
  }
  obs::close_trace();
  const std::vector<ParsedEvent> spans = parse_spans(path);
  ASSERT_EQ(spans.size(), 32u);
  // Spans on the same thread never partially overlap (they are strictly
  // sequential there), which is what keeps Perfetto's per-tid stacks
  // well-formed.
  for (std::size_t i = 0; i < spans.size(); ++i) {
    for (std::size_t j = i + 1; j < spans.size(); ++j) {
      if (spans[i].tid != spans[j].tid) continue;
      const ParsedEvent& a = spans[i];
      const ParsedEvent& b = spans[j];
      const bool disjoint =
          a.ts + a.dur <= b.ts || b.ts + b.dur <= a.ts;
      const bool nested =
          (a.ts >= b.ts && a.ts + a.dur <= b.ts + b.dur) ||
          (b.ts >= a.ts && b.ts + b.dur <= a.ts + a.dur);
      EXPECT_TRUE(disjoint || nested)
          << a.name << "[" << a.ts << "," << a.ts + a.dur << ") vs "
          << b.name << "[" << b.ts << "," << b.ts + b.dur << ")";
    }
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Disabled-telemetry hot path.

TEST(TelemetryOverhead, DisabledSpansAndCountersAllocateNothing) {
  ASSERT_FALSE(obs::tracing_enabled());
  ASSERT_FALSE(obs::events_enabled());
  obs::add(obs::Counter::FramesSimulated);  // warm this thread's block
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 10000; ++i) {
    obs::Span span("hot", "query");
    obs::add(obs::Counter::FramesSimulated, 2);
    obs::add(obs::Counter::FramesSkipped);
    obs::publish_event(obs::EventKind::Round, "phase1+2", 7, 1);
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << "disabled telemetry hot path allocated " << (after - before)
      << " times in 10000 iterations";
}

// ---------------------------------------------------------------------
// Reporting.

TEST(TelemetryReports, MetricsJsonCarriesSchemaAndSections) {
  obs::reset();
  obs::add(obs::Counter::FramesSimulated, 12);
  obs::record(obs::Histogram::QueryNanos, 500);
  obs::record_phase("phase1+2", 0.25, 3);
  std::ostringstream out;
  obs::write_metrics_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"schema\": \"scanc-metrics-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"frames_simulated\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"derived\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
  EXPECT_NE(json.find("\"phase1+2\""), std::string::npos);
}

TEST(TelemetryReports, SummaryMentionsCountersAndPhases) {
  obs::reset();
  obs::add(obs::Counter::FramesSimulated, 90);
  obs::add(obs::Counter::FramesSkipped, 10);
  obs::record_phase("coverage", 0.125, 0);
  std::ostringstream out;
  obs::print_summary(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("frames simulated"), std::string::npos);
  EXPECT_NE(text.find("90"), std::string::npos);
  EXPECT_NE(text.find("coverage"), std::string::npos);
}

TEST(TelemetryReports, HeartbeatPrintsProgressLines) {
  obs::reset();
  obs::set_current_phase("hb-test");
  std::ostringstream sink;
  obs::Heartbeat hb;
  hb.start(0.02, &sink);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  hb.stop();
  const std::string text = sink.str();
  EXPECT_NE(text.find("[obs]"), std::string::npos);
  EXPECT_NE(text.find("phase=hb-test"), std::string::npos);
  // stop() joins: no lines appear after it.
  const std::size_t len = text.size();
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(sink.str().size(), len);
}

// ---------------------------------------------------------------------
// Event bus (src/util/event_bus.hpp).

TEST(EventBus, SubscriberSeesOrderedGapFreeSequences) {
  obs::reset_events();
  const auto sub = obs::subscribe("", 64);
  ASSERT_TRUE(obs::events_enabled());
  {
    const obs::EventJobScope scope("job-a");
    obs::publish_event(obs::EventKind::PhaseBegin, "phase1+2");
    obs::publish_event(obs::EventKind::Round, "phase1+2", 10, 0);
    obs::publish_event(obs::EventKind::Round, "phase1+2", 14, 1);
    obs::publish_event(obs::EventKind::PhaseEnd, "phase1+2", 14, 3);
  }
  std::vector<obs::Event> got;
  std::uint64_t dropped = 1;
  sub->poll(got, 0.5, &dropped);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(dropped, 0u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].job, "job-a");
    EXPECT_EQ(got[i].seq, i + 1) << "per-job sequence must be gap-free";
  }
  EXPECT_EQ(got[0].kind, obs::EventKind::PhaseBegin);
  EXPECT_EQ(got[3].kind, obs::EventKind::PhaseEnd);
  EXPECT_EQ(got[2].faults, 14u);
  // Timestamps share the trace-span epoch and are monotone.
  EXPECT_LE(got[0].t_us, got[3].t_us);
}

TEST(EventBus, SlowConsumerIsShedWithDropCount) {
  obs::reset_events();
  const auto sub = obs::subscribe("", 2);
  for (int i = 0; i < 5; ++i) {
    obs::publish_event(obs::EventKind::Round, "phase1+2", i, i);
  }
  std::vector<obs::Event> got;
  std::uint64_t dropped = 0;
  sub->poll(got, 0.0, &dropped);
  EXPECT_EQ(got.size(), 2u) << "queue is bounded at its capacity";
  EXPECT_EQ(dropped, 3u) << "overflow is counted, not silent";
  // The retained events are the oldest (drop-newest shedding), and the
  // producer-side sequence still has no gaps before the cut.
  EXPECT_EQ(got[0].seq, 1u);
  EXPECT_EQ(got[1].seq, 2u);
}

TEST(EventBus, JobFilterAndScopeRouting) {
  obs::reset_events();
  const auto only_b = obs::subscribe("job-b", 16);
  {
    const obs::EventJobScope scope_a("job-a");
    obs::publish_event(obs::EventKind::Round, "p", 1, 0);
    {
      const obs::EventJobScope scope_b("job-b");
      obs::publish_event(obs::EventKind::Round, "p", 2, 0);
    }
    // Scope nesting restores the outer job.
    obs::publish_event(obs::EventKind::Round, "p", 3, 1);
  }
  std::vector<obs::Event> got;
  only_b->poll(got, 0.2, nullptr);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].job, "job-b");
  EXPECT_EQ(got[0].faults, 2u);
}

TEST(EventBus, HistoryRingBoundsAndCountsOverflow) {
  obs::reset_events();
  obs::set_event_history(4);
  ASSERT_TRUE(obs::events_enabled());
  {
    const obs::EventJobScope scope("job-h");
    for (int i = 0; i < 7; ++i) {
      obs::publish_event(obs::EventKind::Round, "p", i, i);
    }
  }
  const obs::EventHistory h = obs::event_history("job-h");
  EXPECT_EQ(h.events.size(), 4u);
  EXPECT_EQ(h.dropped, 3u);
  // The ring keeps the newest events; their sequence numbers expose the
  // discarded prefix.
  EXPECT_EQ(h.events.front().seq, 4u);
  EXPECT_EQ(h.events.back().seq, 7u);
  obs::set_event_history(0);
  EXPECT_FALSE(obs::events_enabled());
}

TEST(EventBus, SeededHistoryContinuesSequenceGapFree) {
  obs::reset_events();
  obs::set_event_history(8);
  std::vector<obs::Event> persisted(2);
  persisted[0].kind = obs::EventKind::PhaseBegin;
  persisted[0].job = "job-r";
  persisted[0].seq = 5;
  persisted[1].kind = obs::EventKind::PhaseEnd;
  persisted[1].job = "job-r";
  persisted[1].seq = 6;
  obs::seed_event_history("job-r", persisted, 4);
  {
    const obs::EventJobScope scope("job-r");
    obs::publish_event(obs::EventKind::JobState, "svc", 0, 0, "resumed");
  }
  const obs::EventHistory h = obs::event_history("job-r");
  ASSERT_EQ(h.events.size(), 3u);
  EXPECT_EQ(h.dropped, 4u);
  EXPECT_EQ(h.events.back().seq, 7u)
      << "post-resume events continue the persisted sequence";
  obs::set_event_history(0);
}

TEST(EventBus, EventJsonIsOneSchemaStableObject) {
  obs::Event e;
  e.kind = obs::EventKind::JobState;
  e.job = "j\"1";
  e.phase = "svc";
  e.note = "done";
  e.seq = 9;
  e.t_us = 1234;
  e.faults = 2;
  e.value = 3;
  const std::string line = obs::event_json(e);
  EXPECT_NE(line.find("\"kind\":\"job_state\""), std::string::npos);
  EXPECT_NE(line.find("\"job\":\"j\\\"1\""), std::string::npos);
  EXPECT_NE(line.find("\"seq\":9"), std::string::npos);
  EXPECT_NE(line.find("\"t_us\":1234"), std::string::npos);
  EXPECT_NE(line.find("\"faults\":2"), std::string::npos);
  EXPECT_NE(line.find("\"value\":3"), std::string::npos);
  EXPECT_NE(line.find("\"note\":\"done\""), std::string::npos);
  EXPECT_EQ(obs::event_kind_from("job_state"), obs::EventKind::JobState);
  EXPECT_EQ(obs::event_kind_from("nope"), obs::EventKind::kCount);
}

TEST(EventBus, JsonlLogSinkWritesAndRotates) {
  obs::reset_events();
  const std::string path = "event_log_test.jsonl";
  ASSERT_TRUE(obs::open_event_log(path, 400));
  ASSERT_TRUE(obs::events_enabled());
  {
    const obs::EventJobScope scope("job-l");
    for (int i = 0; i < 20; ++i) {
      obs::publish_event(obs::EventKind::Round, "phase1+2", i, i);
    }
  }
  obs::close_event_log();
  EXPECT_FALSE(obs::events_enabled());
  std::ifstream current(path);
  ASSERT_TRUE(current.good());
  std::string all((std::istreambuf_iterator<char>(current)),
                  std::istreambuf_iterator<char>());
  EXPECT_LE(all.size(), 400u + 200u) << "size cap bounds the live file";
  EXPECT_NE(all.find("\"kind\":\"round\""), std::string::npos);
  std::ifstream rotated(path + ".1");
  EXPECT_TRUE(rotated.good()) << "overflow rotated to .1";
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
}

TEST(EventBus, ShutdownSinksClosesEventLogAndTrace) {
  obs::reset_events();
  ASSERT_TRUE(obs::open_event_log("shutdown_order_test.jsonl"));
  ASSERT_TRUE(obs::open_trace("shutdown_order_test.trace.json"));
  obs::publish_event(obs::EventKind::PhaseEnd, "phase4", 1, 2);
  obs::shutdown_sinks();
  EXPECT_FALSE(obs::events_enabled());
  EXPECT_FALSE(obs::tracing_enabled());
  std::ifstream log("shutdown_order_test.jsonl");
  std::string all((std::istreambuf_iterator<char>(log)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("\"kind\":\"phase_end\""), std::string::npos)
      << "events published before shutdown_sinks reach the log";
  std::remove("shutdown_order_test.jsonl");
  std::remove("shutdown_order_test.trace.json");
}

TEST(TelemetryReports, MetricsSnapshotsAreOrderable) {
  obs::reset();
  std::ostringstream first;
  std::ostringstream second;
  obs::write_metrics_json(first);
  obs::write_metrics_json(second);
  const auto stamp = [](const std::string& json, const char* key) {
    const std::size_t at = json.find(key);
    EXPECT_NE(at, std::string::npos) << key;
    return std::strtoull(json.c_str() + at + std::strlen(key), nullptr, 10);
  };
  const std::uint64_t s1 = stamp(first.str(), "\"sequence\": ");
  const std::uint64_t s2 = stamp(second.str(), "\"sequence\": ");
  EXPECT_LT(s1, s2) << "sequence is monotonic across snapshots";
  const std::uint64_t ms = stamp(first.str(), "\"emitted_unix_ms\": ");
  EXPECT_GT(ms, 1'600'000'000'000ull) << "wall-clock stamp is plausible";
}

TEST(TelemetryReports, ResetZeroesEverything) {
  obs::add(obs::Counter::FramesSimulated, 5);
  obs::set_gauge(obs::Gauge::ThreadsConfigured, 4);
  obs::record(obs::Histogram::TaskRunNanos, 77);
  obs::record_phase("p", 1.0, 2);
  obs::reset();
  EXPECT_EQ(count(obs::Counter::FramesSimulated), 0u);
  EXPECT_EQ(count(obs::Counter::FaultsDetected), 0u);
  EXPECT_EQ(obs::gauge(obs::Gauge::ThreadsConfigured), 0u);
  EXPECT_EQ(obs::histogram(obs::Histogram::TaskRunNanos).count, 0u);
  EXPECT_TRUE(obs::phase_records().empty());
}

}  // namespace
