file(REMOVE_RECURSE
  "CMakeFiles/partial_scan_test.dir/partial_scan_test.cpp.o"
  "CMakeFiles/partial_scan_test.dir/partial_scan_test.cpp.o.d"
  "partial_scan_test"
  "partial_scan_test.pdb"
  "partial_scan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
