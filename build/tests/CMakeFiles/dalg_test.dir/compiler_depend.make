# Empty compiler generated dependencies file for dalg_test.
# This may be replaced when dependencies are built.
