file(REMOVE_RECURSE
  "CMakeFiles/dalg_test.dir/dalg_test.cpp.o"
  "CMakeFiles/dalg_test.dir/dalg_test.cpp.o.d"
  "dalg_test"
  "dalg_test.pdb"
  "dalg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dalg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
