
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/netlist_test.cpp" "tests/CMakeFiles/netlist_test.dir/netlist_test.cpp.o" "gcc" "tests/CMakeFiles/netlist_test.dir/netlist_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/scanc_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scanc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/scanc_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/scanc_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/atpg/CMakeFiles/scanc_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/tgen/CMakeFiles/scanc_tgen.dir/DependInfo.cmake"
  "/root/repo/build/src/tcomp/CMakeFiles/scanc_tcomp.dir/DependInfo.cmake"
  "/root/repo/build/src/expt/CMakeFiles/scanc_expt.dir/DependInfo.cmake"
  "/root/repo/build/src/diag/CMakeFiles/scanc_diag.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
