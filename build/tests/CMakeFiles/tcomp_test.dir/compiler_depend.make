# Empty compiler generated dependencies file for tcomp_test.
# This may be replaced when dependencies are built.
