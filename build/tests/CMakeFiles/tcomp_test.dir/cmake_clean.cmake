file(REMOVE_RECURSE
  "CMakeFiles/tcomp_test.dir/tcomp_test.cpp.o"
  "CMakeFiles/tcomp_test.dir/tcomp_test.cpp.o.d"
  "tcomp_test"
  "tcomp_test.pdb"
  "tcomp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcomp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
