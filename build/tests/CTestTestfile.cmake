# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/atpg_test[1]_include.cmake")
include("/root/repo/build/tests/tgen_test[1]_include.cmake")
include("/root/repo/build/tests/tcomp_test[1]_include.cmake")
include("/root/repo/build/tests/expt_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/partial_scan_test[1]_include.cmake")
include("/root/repo/build/tests/response_test[1]_include.cmake")
include("/root/repo/build/tests/dalg_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/diag_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/transition_test[1]_include.cmake")
