file(REMOVE_RECURSE
  "libscanc_atpg.a"
)
