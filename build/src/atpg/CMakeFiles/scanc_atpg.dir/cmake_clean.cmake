file(REMOVE_RECURSE
  "CMakeFiles/scanc_atpg.dir/comb_tset.cpp.o"
  "CMakeFiles/scanc_atpg.dir/comb_tset.cpp.o.d"
  "CMakeFiles/scanc_atpg.dir/dalg.cpp.o"
  "CMakeFiles/scanc_atpg.dir/dalg.cpp.o.d"
  "CMakeFiles/scanc_atpg.dir/podem.cpp.o"
  "CMakeFiles/scanc_atpg.dir/podem.cpp.o.d"
  "libscanc_atpg.a"
  "libscanc_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanc_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
