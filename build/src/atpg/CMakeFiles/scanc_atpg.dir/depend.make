# Empty dependencies file for scanc_atpg.
# This may be replaced when dependencies are built.
