file(REMOVE_RECURSE
  "libscanc_expt.a"
)
