# Empty compiler generated dependencies file for scanc_expt.
# This may be replaced when dependencies are built.
