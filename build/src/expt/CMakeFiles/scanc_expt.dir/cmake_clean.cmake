file(REMOVE_RECURSE
  "CMakeFiles/scanc_expt.dir/options.cpp.o"
  "CMakeFiles/scanc_expt.dir/options.cpp.o.d"
  "CMakeFiles/scanc_expt.dir/runner.cpp.o"
  "CMakeFiles/scanc_expt.dir/runner.cpp.o.d"
  "CMakeFiles/scanc_expt.dir/tables.cpp.o"
  "CMakeFiles/scanc_expt.dir/tables.cpp.o.d"
  "libscanc_expt.a"
  "libscanc_expt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanc_expt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
