
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcomp/baselines.cpp" "src/tcomp/CMakeFiles/scanc_tcomp.dir/baselines.cpp.o" "gcc" "src/tcomp/CMakeFiles/scanc_tcomp.dir/baselines.cpp.o.d"
  "/root/repo/src/tcomp/combine.cpp" "src/tcomp/CMakeFiles/scanc_tcomp.dir/combine.cpp.o" "gcc" "src/tcomp/CMakeFiles/scanc_tcomp.dir/combine.cpp.o.d"
  "/root/repo/src/tcomp/iterate.cpp" "src/tcomp/CMakeFiles/scanc_tcomp.dir/iterate.cpp.o" "gcc" "src/tcomp/CMakeFiles/scanc_tcomp.dir/iterate.cpp.o.d"
  "/root/repo/src/tcomp/omission.cpp" "src/tcomp/CMakeFiles/scanc_tcomp.dir/omission.cpp.o" "gcc" "src/tcomp/CMakeFiles/scanc_tcomp.dir/omission.cpp.o.d"
  "/root/repo/src/tcomp/phase1.cpp" "src/tcomp/CMakeFiles/scanc_tcomp.dir/phase1.cpp.o" "gcc" "src/tcomp/CMakeFiles/scanc_tcomp.dir/phase1.cpp.o.d"
  "/root/repo/src/tcomp/pipeline.cpp" "src/tcomp/CMakeFiles/scanc_tcomp.dir/pipeline.cpp.o" "gcc" "src/tcomp/CMakeFiles/scanc_tcomp.dir/pipeline.cpp.o.d"
  "/root/repo/src/tcomp/response.cpp" "src/tcomp/CMakeFiles/scanc_tcomp.dir/response.cpp.o" "gcc" "src/tcomp/CMakeFiles/scanc_tcomp.dir/response.cpp.o.d"
  "/root/repo/src/tcomp/restoration.cpp" "src/tcomp/CMakeFiles/scanc_tcomp.dir/restoration.cpp.o" "gcc" "src/tcomp/CMakeFiles/scanc_tcomp.dir/restoration.cpp.o.d"
  "/root/repo/src/tcomp/scan_test.cpp" "src/tcomp/CMakeFiles/scanc_tcomp.dir/scan_test.cpp.o" "gcc" "src/tcomp/CMakeFiles/scanc_tcomp.dir/scan_test.cpp.o.d"
  "/root/repo/src/tcomp/topoff.cpp" "src/tcomp/CMakeFiles/scanc_tcomp.dir/topoff.cpp.o" "gcc" "src/tcomp/CMakeFiles/scanc_tcomp.dir/topoff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/scanc_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scanc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/scanc_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/atpg/CMakeFiles/scanc_atpg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
