file(REMOVE_RECURSE
  "libscanc_tcomp.a"
)
