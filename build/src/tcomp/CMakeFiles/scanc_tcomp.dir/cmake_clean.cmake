file(REMOVE_RECURSE
  "CMakeFiles/scanc_tcomp.dir/baselines.cpp.o"
  "CMakeFiles/scanc_tcomp.dir/baselines.cpp.o.d"
  "CMakeFiles/scanc_tcomp.dir/combine.cpp.o"
  "CMakeFiles/scanc_tcomp.dir/combine.cpp.o.d"
  "CMakeFiles/scanc_tcomp.dir/iterate.cpp.o"
  "CMakeFiles/scanc_tcomp.dir/iterate.cpp.o.d"
  "CMakeFiles/scanc_tcomp.dir/omission.cpp.o"
  "CMakeFiles/scanc_tcomp.dir/omission.cpp.o.d"
  "CMakeFiles/scanc_tcomp.dir/phase1.cpp.o"
  "CMakeFiles/scanc_tcomp.dir/phase1.cpp.o.d"
  "CMakeFiles/scanc_tcomp.dir/pipeline.cpp.o"
  "CMakeFiles/scanc_tcomp.dir/pipeline.cpp.o.d"
  "CMakeFiles/scanc_tcomp.dir/response.cpp.o"
  "CMakeFiles/scanc_tcomp.dir/response.cpp.o.d"
  "CMakeFiles/scanc_tcomp.dir/restoration.cpp.o"
  "CMakeFiles/scanc_tcomp.dir/restoration.cpp.o.d"
  "CMakeFiles/scanc_tcomp.dir/scan_test.cpp.o"
  "CMakeFiles/scanc_tcomp.dir/scan_test.cpp.o.d"
  "CMakeFiles/scanc_tcomp.dir/topoff.cpp.o"
  "CMakeFiles/scanc_tcomp.dir/topoff.cpp.o.d"
  "libscanc_tcomp.a"
  "libscanc_tcomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanc_tcomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
