# Empty compiler generated dependencies file for scanc_tcomp.
# This may be replaced when dependencies are built.
