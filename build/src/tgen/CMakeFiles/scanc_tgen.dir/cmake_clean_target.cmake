file(REMOVE_RECURSE
  "libscanc_tgen.a"
)
