
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tgen/greedy_tgen.cpp" "src/tgen/CMakeFiles/scanc_tgen.dir/greedy_tgen.cpp.o" "gcc" "src/tgen/CMakeFiles/scanc_tgen.dir/greedy_tgen.cpp.o.d"
  "/root/repo/src/tgen/random_seq.cpp" "src/tgen/CMakeFiles/scanc_tgen.dir/random_seq.cpp.o" "gcc" "src/tgen/CMakeFiles/scanc_tgen.dir/random_seq.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/scanc_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scanc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/scanc_fault.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
