file(REMOVE_RECURSE
  "CMakeFiles/scanc_tgen.dir/greedy_tgen.cpp.o"
  "CMakeFiles/scanc_tgen.dir/greedy_tgen.cpp.o.d"
  "CMakeFiles/scanc_tgen.dir/random_seq.cpp.o"
  "CMakeFiles/scanc_tgen.dir/random_seq.cpp.o.d"
  "libscanc_tgen.a"
  "libscanc_tgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanc_tgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
