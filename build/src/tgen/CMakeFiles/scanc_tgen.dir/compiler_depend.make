# Empty compiler generated dependencies file for scanc_tgen.
# This may be replaced when dependencies are built.
