file(REMOVE_RECURSE
  "CMakeFiles/scanc_netlist.dir/analysis.cpp.o"
  "CMakeFiles/scanc_netlist.dir/analysis.cpp.o.d"
  "CMakeFiles/scanc_netlist.dir/bench_parser.cpp.o"
  "CMakeFiles/scanc_netlist.dir/bench_parser.cpp.o.d"
  "CMakeFiles/scanc_netlist.dir/bench_writer.cpp.o"
  "CMakeFiles/scanc_netlist.dir/bench_writer.cpp.o.d"
  "CMakeFiles/scanc_netlist.dir/circuit.cpp.o"
  "CMakeFiles/scanc_netlist.dir/circuit.cpp.o.d"
  "CMakeFiles/scanc_netlist.dir/gate.cpp.o"
  "CMakeFiles/scanc_netlist.dir/gate.cpp.o.d"
  "libscanc_netlist.a"
  "libscanc_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanc_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
