
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/analysis.cpp" "src/netlist/CMakeFiles/scanc_netlist.dir/analysis.cpp.o" "gcc" "src/netlist/CMakeFiles/scanc_netlist.dir/analysis.cpp.o.d"
  "/root/repo/src/netlist/bench_parser.cpp" "src/netlist/CMakeFiles/scanc_netlist.dir/bench_parser.cpp.o" "gcc" "src/netlist/CMakeFiles/scanc_netlist.dir/bench_parser.cpp.o.d"
  "/root/repo/src/netlist/bench_writer.cpp" "src/netlist/CMakeFiles/scanc_netlist.dir/bench_writer.cpp.o" "gcc" "src/netlist/CMakeFiles/scanc_netlist.dir/bench_writer.cpp.o.d"
  "/root/repo/src/netlist/circuit.cpp" "src/netlist/CMakeFiles/scanc_netlist.dir/circuit.cpp.o" "gcc" "src/netlist/CMakeFiles/scanc_netlist.dir/circuit.cpp.o.d"
  "/root/repo/src/netlist/gate.cpp" "src/netlist/CMakeFiles/scanc_netlist.dir/gate.cpp.o" "gcc" "src/netlist/CMakeFiles/scanc_netlist.dir/gate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
