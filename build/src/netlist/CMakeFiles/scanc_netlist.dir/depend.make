# Empty dependencies file for scanc_netlist.
# This may be replaced when dependencies are built.
