file(REMOVE_RECURSE
  "libscanc_netlist.a"
)
