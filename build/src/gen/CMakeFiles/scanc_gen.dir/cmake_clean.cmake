file(REMOVE_RECURSE
  "CMakeFiles/scanc_gen.dir/circuit_gen.cpp.o"
  "CMakeFiles/scanc_gen.dir/circuit_gen.cpp.o.d"
  "CMakeFiles/scanc_gen.dir/embedded.cpp.o"
  "CMakeFiles/scanc_gen.dir/embedded.cpp.o.d"
  "CMakeFiles/scanc_gen.dir/suite.cpp.o"
  "CMakeFiles/scanc_gen.dir/suite.cpp.o.d"
  "libscanc_gen.a"
  "libscanc_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanc_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
