file(REMOVE_RECURSE
  "libscanc_gen.a"
)
