# Empty compiler generated dependencies file for scanc_gen.
# This may be replaced when dependencies are built.
