file(REMOVE_RECURSE
  "libscanc_diag.a"
)
