file(REMOVE_RECURSE
  "CMakeFiles/scanc_diag.dir/diagnosis.cpp.o"
  "CMakeFiles/scanc_diag.dir/diagnosis.cpp.o.d"
  "libscanc_diag.a"
  "libscanc_diag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanc_diag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
