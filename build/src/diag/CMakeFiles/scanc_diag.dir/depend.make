# Empty dependencies file for scanc_diag.
# This may be replaced when dependencies are built.
