file(REMOVE_RECURSE
  "CMakeFiles/scanc_sim.dir/seq_sim.cpp.o"
  "CMakeFiles/scanc_sim.dir/seq_sim.cpp.o.d"
  "libscanc_sim.a"
  "libscanc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
