file(REMOVE_RECURSE
  "libscanc_sim.a"
)
