# Empty compiler generated dependencies file for scanc_sim.
# This may be replaced when dependencies are built.
