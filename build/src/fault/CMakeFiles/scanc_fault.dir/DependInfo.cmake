
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/fault_list.cpp" "src/fault/CMakeFiles/scanc_fault.dir/fault_list.cpp.o" "gcc" "src/fault/CMakeFiles/scanc_fault.dir/fault_list.cpp.o.d"
  "/root/repo/src/fault/fault_sim.cpp" "src/fault/CMakeFiles/scanc_fault.dir/fault_sim.cpp.o" "gcc" "src/fault/CMakeFiles/scanc_fault.dir/fault_sim.cpp.o.d"
  "/root/repo/src/fault/transition.cpp" "src/fault/CMakeFiles/scanc_fault.dir/transition.cpp.o" "gcc" "src/fault/CMakeFiles/scanc_fault.dir/transition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/scanc_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scanc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
