file(REMOVE_RECURSE
  "CMakeFiles/scanc_fault.dir/fault_list.cpp.o"
  "CMakeFiles/scanc_fault.dir/fault_list.cpp.o.d"
  "CMakeFiles/scanc_fault.dir/fault_sim.cpp.o"
  "CMakeFiles/scanc_fault.dir/fault_sim.cpp.o.d"
  "CMakeFiles/scanc_fault.dir/transition.cpp.o"
  "CMakeFiles/scanc_fault.dir/transition.cpp.o.d"
  "libscanc_fault.a"
  "libscanc_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanc_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
