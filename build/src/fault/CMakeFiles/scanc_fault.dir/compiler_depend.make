# Empty compiler generated dependencies file for scanc_fault.
# This may be replaced when dependencies are built.
