file(REMOVE_RECURSE
  "libscanc_fault.a"
)
