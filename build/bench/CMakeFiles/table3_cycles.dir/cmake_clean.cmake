file(REMOVE_RECURSE
  "CMakeFiles/table3_cycles.dir/table3_cycles.cpp.o"
  "CMakeFiles/table3_cycles.dir/table3_cycles.cpp.o.d"
  "table3_cycles"
  "table3_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
