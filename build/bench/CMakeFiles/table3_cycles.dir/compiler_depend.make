# Empty compiler generated dependencies file for table3_cycles.
# This may be replaced when dependencies are built.
