file(REMOVE_RECURSE
  "CMakeFiles/report_markdown.dir/report_markdown.cpp.o"
  "CMakeFiles/report_markdown.dir/report_markdown.cpp.o.d"
  "report_markdown"
  "report_markdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_markdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
