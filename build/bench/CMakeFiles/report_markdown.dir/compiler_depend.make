# Empty compiler generated dependencies file for report_markdown.
# This may be replaced when dependencies are built.
