# Empty compiler generated dependencies file for atpg_engines.
# This may be replaced when dependencies are built.
