file(REMOVE_RECURSE
  "CMakeFiles/atpg_engines.dir/atpg_engines.cpp.o"
  "CMakeFiles/atpg_engines.dir/atpg_engines.cpp.o.d"
  "atpg_engines"
  "atpg_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atpg_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
