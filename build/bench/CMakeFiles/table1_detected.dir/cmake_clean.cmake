file(REMOVE_RECURSE
  "CMakeFiles/table1_detected.dir/table1_detected.cpp.o"
  "CMakeFiles/table1_detected.dir/table1_detected.cpp.o.d"
  "table1_detected"
  "table1_detected.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_detected.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
