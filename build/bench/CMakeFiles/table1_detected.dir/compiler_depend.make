# Empty compiler generated dependencies file for table1_detected.
# This may be replaced when dependencies are built.
