# Empty compiler generated dependencies file for table4_atspeed.
# This may be replaced when dependencies are built.
