file(REMOVE_RECURSE
  "CMakeFiles/table4_atspeed.dir/table4_atspeed.cpp.o"
  "CMakeFiles/table4_atspeed.dir/table4_atspeed.cpp.o.d"
  "table4_atspeed"
  "table4_atspeed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_atspeed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
