# Empty compiler generated dependencies file for table5_random.
# This may be replaced when dependencies are built.
