file(REMOVE_RECURSE
  "CMakeFiles/table5_random.dir/table5_random.cpp.o"
  "CMakeFiles/table5_random.dir/table5_random.cpp.o.d"
  "table5_random"
  "table5_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
