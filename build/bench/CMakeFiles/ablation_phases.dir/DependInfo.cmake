
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_phases.cpp" "bench/CMakeFiles/ablation_phases.dir/ablation_phases.cpp.o" "gcc" "bench/CMakeFiles/ablation_phases.dir/ablation_phases.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/expt/CMakeFiles/scanc_expt.dir/DependInfo.cmake"
  "/root/repo/build/src/tgen/CMakeFiles/scanc_tgen.dir/DependInfo.cmake"
  "/root/repo/build/src/tcomp/CMakeFiles/scanc_tcomp.dir/DependInfo.cmake"
  "/root/repo/build/src/atpg/CMakeFiles/scanc_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/scanc_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scanc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/scanc_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/scanc_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
