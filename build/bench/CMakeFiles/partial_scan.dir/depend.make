# Empty dependencies file for partial_scan.
# This may be replaced when dependencies are built.
