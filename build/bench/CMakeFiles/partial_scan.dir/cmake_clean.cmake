file(REMOVE_RECURSE
  "CMakeFiles/partial_scan.dir/partial_scan.cpp.o"
  "CMakeFiles/partial_scan.dir/partial_scan.cpp.o.d"
  "partial_scan"
  "partial_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
