# Empty dependencies file for table2_lengths.
# This may be replaced when dependencies are built.
