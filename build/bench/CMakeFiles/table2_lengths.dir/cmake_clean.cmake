file(REMOVE_RECURSE
  "CMakeFiles/table2_lengths.dir/table2_lengths.cpp.o"
  "CMakeFiles/table2_lengths.dir/table2_lengths.cpp.o.d"
  "table2_lengths"
  "table2_lengths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_lengths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
