file(REMOVE_RECURSE
  "CMakeFiles/transition_coverage.dir/transition_coverage.cpp.o"
  "CMakeFiles/transition_coverage.dir/transition_coverage.cpp.o.d"
  "transition_coverage"
  "transition_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transition_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
