# Empty compiler generated dependencies file for tgen_quality.
# This may be replaced when dependencies are built.
