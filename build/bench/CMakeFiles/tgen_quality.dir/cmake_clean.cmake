file(REMOVE_RECURSE
  "CMakeFiles/tgen_quality.dir/tgen_quality.cpp.o"
  "CMakeFiles/tgen_quality.dir/tgen_quality.cpp.o.d"
  "tgen_quality"
  "tgen_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgen_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
