file(REMOVE_RECURSE
  "CMakeFiles/atpg_tour.dir/atpg_tour.cpp.o"
  "CMakeFiles/atpg_tour.dir/atpg_tour.cpp.o.d"
  "atpg_tour"
  "atpg_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atpg_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
