# Empty compiler generated dependencies file for atpg_tour.
# This may be replaced when dependencies are built.
