# Empty compiler generated dependencies file for compact_bench.
# This may be replaced when dependencies are built.
