file(REMOVE_RECURSE
  "CMakeFiles/compact_bench.dir/compact_bench.cpp.o"
  "CMakeFiles/compact_bench.dir/compact_bench.cpp.o.d"
  "compact_bench"
  "compact_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compact_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
