# Empty dependencies file for atspeed_compaction.
# This may be replaced when dependencies are built.
