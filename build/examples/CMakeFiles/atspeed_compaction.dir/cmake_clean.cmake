file(REMOVE_RECURSE
  "CMakeFiles/atspeed_compaction.dir/atspeed_compaction.cpp.o"
  "CMakeFiles/atspeed_compaction.dir/atspeed_compaction.cpp.o.d"
  "atspeed_compaction"
  "atspeed_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atspeed_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
