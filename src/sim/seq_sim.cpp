#include "sim/seq_sim.hpp"

#include <cassert>

namespace scanc::sim {

using netlist::Circuit;
using netlist::GateType;
using netlist::Node;
using netlist::NodeId;

PackedSeqSim::PackedSeqSim(const Circuit& circuit)
    : circuit_(&circuit),
      values_(circuit.num_nodes(), packed_x()),
      captured_(circuit.num_flip_flops(), packed_x()),
      next_state_(circuit.num_flip_flops()) {}

void PackedSeqSim::reset(const InjectionMap* inj) {
  for (NodeId id = 0; id < values_.size(); ++id) {
    const GateType t = circuit_->node(id).type;
    PackedV3 v = packed_x();
    if (t == GateType::Const0) v = packed_zero();
    if (t == GateType::Const1) v = packed_one();
    if (inj && inj->any(id) && netlist::is_source(t)) {
      v = apply_stem(v, inj->at(id));
    }
    values_[id] = v;
  }
  for (auto& cap : captured_) cap = packed_x();
}

void PackedSeqSim::load_state(const Vector3& state, const InjectionMap* inj) {
  const auto ffs = circuit_->flip_flops();
  assert(state.size() == ffs.size());
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    PackedV3 v = broadcast(state[i]);
    captured_[i] = v;  // scan-in stores the clean value
    if (inj && inj->any(ffs[i])) v = apply_stem(v, inj->at(ffs[i]));
    values_[ffs[i]] = v;  // the logic reads through the (possibly stuck) Q
  }
}

void PackedSeqSim::apply_frame(const Vector3& pi, const InjectionMap* inj) {
  const auto pis = circuit_->primary_inputs();
  assert(pi.size() == pis.size());
  for (std::size_t i = 0; i < pis.size(); ++i) {
    PackedV3 v = broadcast(pi[i]);
    if (inj && inj->any(pis[i])) v = apply_stem(v, inj->at(pis[i]));
    values_[pis[i]] = v;
  }

  // Level-major CSR schedule: flat offset/id arrays, no per-Node vector
  // chasing on the inner loop.
  const netlist::CsrSchedule& csr = circuit_->csr();
  const PackedV3* vals = values_.data();
  for (const NodeId id : csr.order) {
    const std::span<const NodeId> fi = csr.fanins(id);
    PackedV3 out;
    if (inj == nullptr || !inj->any(id)) {
      // Fast path: no injections touch this gate.
      out = eval_gate_at(csr.types[id], fi.size(),
                         [&](std::size_t i) { return vals[fi[i]]; });
    } else {
      // Slow path: gather fanins with branch injections, then apply the
      // stem injections to the computed output.
      const std::span<const Injection> injs = inj->at(id);
      out = eval_gate_at(csr.types[id], fi.size(), [&](std::size_t i) {
        return apply_pin(vals[fi[i]], static_cast<int>(i), injs);
      });
      out = apply_stem(out, injs);
    }
    values_[id] = out;
  }
}

void PackedSeqSim::latch(const InjectionMap* inj) {
  const netlist::CsrSchedule& csr = circuit_->csr();
  const auto ffs = circuit_->flip_flops();
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    PackedV3 v = values_[csr.fanins(ffs[i])[0]];
    if (inj && inj->any(ffs[i])) {
      // Branch fault on the D input corrupts the captured value itself.
      v = apply_pin(v, 0, inj->at(ffs[i]));
    }
    next_state_[i] = v;
  }
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    captured_[i] = next_state_[i];
    PackedV3 v = next_state_[i];
    if (inj && inj->any(ffs[i])) {
      // Stem fault on Q corrupts only what the logic reads next frame.
      v = apply_stem(v, inj->at(ffs[i]));
    }
    values_[ffs[i]] = v;
  }
}

void PackedSeqSim::get_ff_values(std::span<PackedV3> out) const {
  const auto ffs = circuit_->flip_flops();
  assert(out.size() == ffs.size());
  for (std::size_t i = 0; i < ffs.size(); ++i) out[i] = values_[ffs[i]];
}

void PackedSeqSim::set_ff_values(std::span<const PackedV3> vals) {
  const auto ffs = circuit_->flip_flops();
  assert(vals.size() == ffs.size());
  for (std::size_t i = 0; i < ffs.size(); ++i) values_[ffs[i]] = vals[i];
}

Vector3 PackedSeqSim::state_slot(unsigned slot_bit) const {
  const auto ffs = circuit_->flip_flops();
  Vector3 s(ffs.size(), V3::X);
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    s[i] = slot(values_[ffs[i]], slot_bit);
  }
  return s;
}

Vector3 PackedSeqSim::outputs_slot(unsigned slot_bit) const {
  const auto pos = circuit_->primary_outputs();
  Vector3 s(pos.size(), V3::X);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    s[i] = slot(values_[pos[i]], slot_bit);
  }
  return s;
}

Trace simulate_fault_free(const Circuit& c, const Vector3* scan_in,
                          const Sequence& seq) {
  PackedSeqSim sim(c);
  sim.reset();
  if (scan_in != nullptr) sim.load_state(*scan_in);
  Trace trace;
  trace.po_frames.reserve(seq.length());
  trace.states.reserve(seq.length());
  for (const Vector3& pi : seq.frames) {
    sim.apply_frame(pi);
    trace.po_frames.push_back(sim.outputs_slot(0));
    sim.latch();
    trace.states.push_back(sim.state_slot(0));
  }
  return trace;
}

Trace simulate_fault_free_scalar(const Circuit& c, const Vector3* scan_in,
                                 const Sequence& seq) {
  std::vector<V3> values(c.num_nodes(), V3::X);
  for (NodeId id = 0; id < c.num_nodes(); ++id) {
    if (c.node(id).type == GateType::Const0) values[id] = V3::Zero;
    if (c.node(id).type == GateType::Const1) values[id] = V3::One;
  }
  const auto ffs = c.flip_flops();
  if (scan_in != nullptr) {
    assert(scan_in->size() == ffs.size());
    for (std::size_t i = 0; i < ffs.size(); ++i) values[ffs[i]] = (*scan_in)[i];
  }

  Trace trace;
  std::vector<V3> fanin_scratch;
  std::vector<V3> next_state(ffs.size());
  for (const Vector3& pi : seq.frames) {
    const auto pis = c.primary_inputs();
    assert(pi.size() == pis.size());
    for (std::size_t i = 0; i < pis.size(); ++i) values[pis[i]] = pi[i];
    for (const NodeId id : c.topo_order()) {
      const Node& n = c.node(id);
      fanin_scratch.clear();
      for (const NodeId f : n.fanins) fanin_scratch.push_back(values[f]);
      values[id] = eval_gate_scalar(n.type, fanin_scratch);
    }
    Vector3 po(c.num_outputs(), V3::X);
    for (std::size_t i = 0; i < c.primary_outputs().size(); ++i) {
      po[i] = values[c.primary_outputs()[i]];
    }
    trace.po_frames.push_back(std::move(po));
    for (std::size_t i = 0; i < ffs.size(); ++i) {
      next_state[i] = values[c.node(ffs[i]).fanins[0]];
    }
    for (std::size_t i = 0; i < ffs.size(); ++i) values[ffs[i]] = next_state[i];
    Vector3 st(ffs.size(), V3::X);
    for (std::size_t i = 0; i < ffs.size(); ++i) st[i] = values[ffs[i]];
    trace.states.push_back(std::move(st));
  }
  return trace;
}

}  // namespace scanc::sim
