// Prefix-aware LRU cache of fault-free NodeTraces.
//
// The compaction procedures re-simulate heavily overlapping tests: vector
// omission runs (SI, T with frame u dropped) for many u, restoration
// re-extends previously truncated tests, and coverage checks repeat the
// same (SI, T) for different target sets.  The fault-free trace depends
// only on (scan_in, seq), so this cache shares one trace across all of
// them:
//   - exact or prefix hit: the query's sequence is a prefix of a cached
//     trace -> return it unchanged (callers read only the frames they
//     need);
//   - extension: a cached trace's sequence is a prefix of the query ->
//     extend it in place (copy-on-write when other callers still hold
//     the trace) and return;
//   - partial overlap: copy the longest common prefix from the best
//     cached trace and simulate only the divergent tail.
//
// Not thread-safe: get() must be called from the thread that owns the
// FaultSimulator (worker threads only ever read the returned trace
// through a shared_ptr<const NodeTrace>).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "netlist/circuit.hpp"
#include "sim/node_trace.hpp"
#include "sim/sequence.hpp"

namespace scanc::sim {

class TraceCache {
 public:
  explicit TraceCache(const netlist::Circuit& c, std::size_t capacity = 8);

  /// Returns the fault-free trace of (scan_in, seq), reusing or
  /// extending cached work where possible.  `scan_in` must already be
  /// masked for partial scan (nullptr = no scan-in, all-X start).  The
  /// returned trace has length() >= seq.length(); frames beyond
  /// seq.length() belong to a longer cached test and must be ignored.
  [[nodiscard]] std::shared_ptr<const NodeTrace> get(const Vector3* scan_in,
                                                     const Sequence& seq);

  /// One trace request of a batch lookup.
  struct Request {
    const Vector3* scan_in = nullptr;  ///< masked; nullptr = no scan-in
    const Sequence* seq = nullptr;
  };

  /// Batch form of get(): returns one trace per request, in order.
  /// Exact/prefix hits are served from the cache; everything else is
  /// simulated fresh, pattern-packed up to 64 tests per pass
  /// (NodeTrace::extend_batch), with duplicate keys inside the batch
  /// sharing one trace.  The batched miss path skips the
  /// extension/partial-prefix reuse get() performs — batches are made
  /// of distinct tests, where those almost never apply — so counters
  /// record such requests as plain misses.  Results are bit-identical
  /// to calling get() per request.
  [[nodiscard]] std::vector<std::shared_ptr<const NodeTrace>> get_batch(
      std::span<const Request> reqs);

  /// Drops every cached trace.
  void clear() { entries_.clear(); }

  // Observability for tests and tuning.
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t extensions() const noexcept {
    return extensions_;
  }
  [[nodiscard]] std::uint64_t partial_reuses() const noexcept {
    return partial_reuses_;
  }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_;
  }

 private:
  struct Entry {
    bool has_scan_in = false;
    Vector3 scan_in;  ///< masked scan-in state (empty when !has_scan_in)
    Sequence seq;     ///< the sequence the trace covers
    std::shared_ptr<NodeTrace> trace;
    std::uint64_t stamp = 0;  ///< LRU clock
  };

  [[nodiscard]] bool key_matches(const Entry& e,
                                 const Vector3* scan_in) const;

  const netlist::Circuit* circuit_;
  std::size_t capacity_;
  std::uint64_t tick_ = 0;
  std::vector<Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t extensions_ = 0;
  std::uint64_t partial_reuses_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace scanc::sim
