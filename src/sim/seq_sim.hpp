// Bit-parallel sequential simulation engine.
//
// PackedSeqSim evaluates a Circuit one clock frame at a time with 64
// independent simulation slots per signal and optional stuck-line
// injections (sim/injection.hpp).  It is the shared engine underneath the
// fault-free simulator and the parallel-fault simulator.
//
// Frame protocol:
//   1. reset(inj)               — all state X, constants set
//   2. load_state(s, inj)       — optional scan-in (overwrites FF values)
//   3. for each time unit t:
//        apply_frame(pi_t, inj) — set PIs, evaluate combinational logic
//        ... observe PO values ...
//        latch(inj)             — sample next state into the FFs
//   4. ... observe FF values (scan-out) ...
//
// All slots receive the same PI/state stimulus (broadcast); slots only
// diverge through injections.
#pragma once

#include <vector>

#include "netlist/circuit.hpp"
#include "sim/injection.hpp"
#include "sim/packed.hpp"
#include "sim/sequence.hpp"

namespace scanc::sim {

class PackedSeqSim {
 public:
  explicit PackedSeqSim(const netlist::Circuit& circuit);

  /// The simulated circuit.
  [[nodiscard]] const netlist::Circuit& circuit() const noexcept {
    return *circuit_;
  }

  /// Sets every FF to X, constants to their values, and everything else
  /// to X.  Stem injections on constants and FFs are applied.
  void reset(const InjectionMap* inj = nullptr);

  /// Overwrites the FF values with `state` (indexed in flip_flops()
  /// order), then applies FF stem injections.  Models scan-in.
  void load_state(const Vector3& state, const InjectionMap* inj = nullptr);

  /// Sets the PI values (broadcast; PI stem injections applied) and
  /// evaluates all combinational gates in topological order with branch
  /// and stem injections.
  void apply_frame(const Vector3& pi, const InjectionMap* inj = nullptr);

  /// Samples every FF's next-state (its fanin value, with branch
  /// injections on the FF's data pin) and installs it as the new FF value
  /// (with FF stem injections).  All FFs update simultaneously.
  ///
  /// Fault-model convention (standard full-scan PPI/PPO treatment): a
  /// stem fault on the FF output (Q) corrupts the value *read* by the
  /// logic but not the captured latch content, so scan-out — which
  /// observes the captured content — sees the clean capture.  Faults on
  /// the D side corrupt the capture itself and are therefore directly
  /// scan-observable.
  void latch(const InjectionMap* inj = nullptr);

  /// Captured latch content of FF index `i` (flip_flops() order) as of the
  /// last latch()/load_state(): the value scan-out observes.
  [[nodiscard]] const PackedV3& captured(std::size_t i) const {
    return captured_[i];
  }

  /// Current packed value of a node.
  [[nodiscard]] const PackedV3& value(netlist::NodeId id) const {
    return values_[id];
  }

  /// Scalar value of a node in one slot.
  [[nodiscard]] V3 value_slot(netlist::NodeId id, unsigned slot_bit) const {
    return slot(values_[id], slot_bit);
  }

  /// Current state (FF values) of one slot as a scalar vector.
  [[nodiscard]] Vector3 state_slot(unsigned slot_bit) const;

  /// Copies the raw packed FF values (as the logic reads them, i.e. with
  /// any injections already applied) into `out`; size = num_flip_flops().
  /// Together with set_ff_values this lets a caller suspend and resume a
  /// simulation (incremental fault simulation sessions).
  void get_ff_values(std::span<PackedV3> out) const;

  /// Restores raw packed FF values previously saved by get_ff_values.
  void set_ff_values(std::span<const PackedV3> vals);

  /// Current PO values of one slot as a scalar vector.
  [[nodiscard]] Vector3 outputs_slot(unsigned slot_bit) const;

 private:
  const netlist::Circuit* circuit_;
  std::vector<PackedV3> values_;
  std::vector<PackedV3> captured_;    // clean latch contents (scan-out view)
  std::vector<PackedV3> next_state_;  // scratch for simultaneous latch
};

/// Result of a fault-free sequential simulation.
struct Trace {
  /// po_frames[t] = PO values after applying frame t.
  std::vector<Vector3> po_frames;
  /// states[t] = FF values after latching frame t (states[0] follows the
  /// first frame).  The final entry is the scan-out state.
  std::vector<Vector3> states;
};

/// Simulates `seq` fault-free from `scan_in` (or from the all-X state if
/// scan_in is nullptr), recording PO values per frame and the state after
/// every latch.  Reference semantics for the whole library.
[[nodiscard]] Trace simulate_fault_free(const netlist::Circuit& c,
                                        const Vector3* scan_in,
                                        const Sequence& seq);

/// Same semantics as simulate_fault_free, computed with the scalar V3
/// engine.  Used as an independent golden model in tests.
[[nodiscard]] Trace simulate_fault_free_scalar(const netlist::Circuit& c,
                                               const Vector3* scan_in,
                                               const Sequence& seq);

}  // namespace scanc::sim
