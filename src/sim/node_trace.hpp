// Fault-free per-node value trace of a scan test.
//
// A NodeTrace records the three-valued fault-free value of *every* node
// at *every* time unit of a test (scan_in, seq), computed once with the
// scalar CSR kernel and then shared read-only across fault groups and
// worker threads.  The cone-restricted kernel (sim/cone_kernel.hpp)
// seeds cone-boundary fanins from it instead of re-simulating the
// out-of-cone logic 63 slots wide, and skips whole frames when no fault
// effect is live.
//
// Layout: value(t, id) is the value of node `id` after evaluating frame
// t.  Flip-flop ids hold the state *read during* frame t (before the
// latch), so:
//   - PO value at time t                = value(t, po)
//   - captured latch content after t    = value(t, d) where d is the
//                                         FF's D fanin
//   - FF state at the start of frame k  = value(k-1, d), or the scan-in
//                                         state for k == 0
//
// Traces are extendable: extend() appends frames, resuming from the
// state the recorded prefix ends in.  TraceCache exploits this for the
// overlapping re-simulations vector omission / restoration produce.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "netlist/circuit.hpp"
#include "sim/logic.hpp"
#include "sim/sequence.hpp"

namespace scanc::sim {

class NodeTrace {
 public:
  /// Starts an empty trace from `scan_in` (or the all-X state when
  /// nullptr).  `scan_in` must already be masked for partial scan.
  NodeTrace(const netlist::Circuit& c, const Vector3* scan_in);

  /// Copies the first `prefix_len` frames of `other` (prefix reuse).
  NodeTrace(const NodeTrace& other, std::size_t prefix_len);

  [[nodiscard]] const netlist::Circuit& circuit() const noexcept {
    return *circuit_;
  }

  /// Number of recorded frames.
  [[nodiscard]] std::size_t length() const noexcept { return length_; }

  /// Value of node `id` after evaluating frame `t` (see header comment).
  [[nodiscard]] V3 value(std::size_t t, netlist::NodeId id) const {
    return vals_[t * stride_ + id];
  }

  /// All node values of frame `t`, indexed by NodeId.
  [[nodiscard]] std::span<const V3> frame(std::size_t t) const {
    return {vals_.data() + t * stride_, stride_};
  }

  /// FF state at the start of frame `k` (flip_flops() order); k ==
  /// length() gives the final scan-out state, k == 0 the initial state.
  [[nodiscard]] Vector3 state_at_start(std::size_t k) const;

  /// The (masked) scan-in state the trace started from; all-X when the
  /// test runs without scan-in.
  [[nodiscard]] const Vector3& initial_state() const noexcept {
    return initial_state_;
  }

  /// Simulates the given PI frames fault-free with the scalar CSR
  /// kernel, appending one recorded frame each.
  void extend(std::span<const Vector3> pi_frames);

  /// Extends up to 64 traces in one pattern-packed pass: trace k rides
  /// bit-slot k of a PackedV3 word, so every gate is evaluated once for
  /// all of them instead of once per trace.  Each trace resumes from
  /// the state its recorded prefix ends in and appends one frame per
  /// entry of its PI span; ragged lengths are fine (finished slots idle
  /// on all-X inputs and record nothing).  All traces must share one
  /// circuit and be distinct objects.  Bit-identical to calling
  /// extend() on each trace in turn.
  static void extend_batch(
      std::span<NodeTrace* const> traces,
      std::span<const std::span<const Vector3>> pi_frames);

 private:
  const netlist::Circuit* circuit_;
  std::size_t stride_;  ///< num_nodes
  std::size_t length_ = 0;
  std::vector<V3> vals_;  ///< length_ x stride_, frame-major
  Vector3 initial_state_;
};

}  // namespace scanc::sim
