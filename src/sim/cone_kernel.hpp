// Cone-restricted bit-parallel simulation kernel.
//
// A fault group of <= 63 stuck-line injections can only perturb the
// nodes in the union fanout cone of its injection sites — the *sequential*
// closure: combinational fanout cones plus every flip-flop they reach,
// whose state divergence re-enters the logic on later frames.  Every
// node outside that cone is slot-uniform (all 64 slots hold the
// fault-free value), so evaluating it 64 slots wide is pure waste.
//
// ConePlan precomputes, per group, the in-cone evaluation schedule (a
// compacted slice of the circuit's level-major CSR order), the in-cone
// flip-flops and primary outputs, and the *boundary*: the out-of-cone
// fanins whose (fault-free) values the in-cone logic reads.  ConeSim
// then simulates only the cone, seeding boundary fanins each frame by
// broadcasting the shared fault-free NodeTrace value.
//
// Equivalence: in the full kernel an out-of-cone node's packed word is
// the broadcast of its fault-free value, which is exactly what the
// boundary seeding installs — so every in-cone word ConeSim computes is
// bit-identical to the full kernel's.  Out-of-cone observation points
// never contribute detections (slot-uniform words have no slot that
// differs from slot 0), so detection masks restricted to in-cone
// POs/FFs are also bit-identical.
//
// Frame skipping: while every in-cone FF (read value *and* captured
// latch content) is slot-uniform ("clean") and no injection is
// activated at frame t (the fault-free value of every injected line
// already equals its stuck value), frame t changes nothing — all slots
// remain fault-free — and is skipped entirely.  On the next simulated
// frame the cone FF values are re-seeded from the trace.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/circuit.hpp"
#include "sim/injection.hpp"
#include "sim/node_trace.hpp"
#include "sim/packed.hpp"

namespace scanc::sim {

/// One injection site: the line a fault group member occupies.
struct ConeSite {
  netlist::NodeId node = netlist::kNoNode;
  std::int32_t pin = kStemPin;  ///< fanin pin, or kStemPin for the stem
  bool stuck_one = false;
};

/// Per-group cone precomputation.  Rebuild (not reallocate) per group:
/// build() clears and refills every vector.
class ConePlan {
 public:
  /// Computes the sequential fanout-cone closure of `sites` over `c`.
  void build(const netlist::Circuit& c, std::span<const ConeSite> sites);

  /// In-cone combinational gates, in the circuit's level-major CSR
  /// order (a valid topological order of the cone).
  [[nodiscard]] std::span<const netlist::NodeId> eval() const noexcept {
    return eval_;
  }

  /// Out-of-cone (or source) nodes the in-cone logic reads; seeded from
  /// the fault-free trace every simulated frame.  Includes in-cone
  /// sources (injected PIs/constants), which are seeded then re-injected.
  [[nodiscard]] std::span<const netlist::NodeId> boundary() const noexcept {
    return boundary_;
  }

  /// In-cone flip-flops: node ids and their positions in flip_flops().
  [[nodiscard]] std::span<const netlist::NodeId> cone_ffs() const noexcept {
    return cone_ffs_;
  }
  [[nodiscard]] std::span<const std::uint32_t> cone_ff_pos() const noexcept {
    return cone_ff_pos_;
  }

  /// In-cone primary outputs (node ids) — the only POs whose packed
  /// words can differ from slot 0.
  [[nodiscard]] std::span<const netlist::NodeId> cone_pos() const noexcept {
    return cone_pos_;
  }

  /// True if `id` is in the cone (including injected sources).
  [[nodiscard]] bool in_cone(netlist::NodeId id) const {
    return in_cone_[id] != 0;
  }

  /// Injected lines for activation checks: line i is stuck at
  /// act_stuck_one()[i] and carries the fault-free value of node
  /// act_lines()[i].
  [[nodiscard]] std::span<const netlist::NodeId> act_lines() const noexcept {
    return act_lines_;
  }
  [[nodiscard]] std::span<const char> act_stuck_one() const noexcept {
    return act_stuck_one_;
  }

 private:
  std::vector<netlist::NodeId> eval_;
  std::vector<netlist::NodeId> boundary_;
  std::vector<netlist::NodeId> cone_ffs_;
  std::vector<std::uint32_t> cone_ff_pos_;
  std::vector<netlist::NodeId> cone_pos_;
  std::vector<char> in_cone_;
  std::vector<netlist::NodeId> act_lines_;
  std::vector<char> act_stuck_one_;
  std::vector<netlist::NodeId> bfs_;  ///< scratch
};

/// Cone-restricted counterpart of PackedSeqSim.  One instance per
/// worker; begin() rebinds it to a (plan, injections, trace) triple for
/// one test, eval_frame()/latch() step through the frames.
class ConeSim {
 public:
  explicit ConeSim(const netlist::Circuit& c);

  /// Binds the engine to one test run.  `plan`, `inj` and `trace` must
  /// outlive the run; `trace` must cover every frame stepped.
  void begin(const ConePlan& plan, const InjectionMap& inj,
             const NodeTrace& trace);

  /// Evaluates frame `t`.  Returns false when the frame was skipped
  /// (all slots provably fault-free and no injection activated): node
  /// values then equal the fault-free trace and no observation point
  /// can detect anything.  When true, in-cone words are bit-identical
  /// to a full-kernel apply_frame.
  bool eval_frame(std::size_t t);

  /// Latches the in-cone flip-flops (only valid after eval_frame
  /// returned true for this frame) and updates clean().
  void latch();

  /// True while every in-cone FF read value and captured content is
  /// slot-uniform — i.e. all machines are in the fault-free state.
  [[nodiscard]] bool clean() const noexcept { return clean_; }

  /// Packed word of an in-cone node (or boundary node) after
  /// eval_frame.
  [[nodiscard]] const PackedV3& value(netlist::NodeId id) const {
    return values_[id];
  }

  /// Captured latch content of FF position `i` (flip_flops() order).
  /// Valid for in-cone FFs when !clean(); fault-free otherwise.
  [[nodiscard]] const PackedV3& captured(std::size_t i) const {
    return captured_[i];
  }

 private:
  const netlist::Circuit* circuit_;
  const ConePlan* plan_ = nullptr;
  const InjectionMap* inj_ = nullptr;
  const NodeTrace* trace_ = nullptr;
  std::vector<PackedV3> values_;
  std::vector<PackedV3> captured_;
  std::vector<PackedV3> next_;  ///< scratch for simultaneous latch
  bool clean_ = true;
};

}  // namespace scanc::sim
