// Scalar three-valued logic (0 / 1 / X).
//
// Encoding: two bits per value, bit 0 = "can be 0", bit 1 = "can be 1".
// X (unknown) has both bits set.  The pattern 00 is not a valid value.
// This encoding is shared with the bit-parallel engine (sim/packed.hpp),
// where each of the two bits becomes a 64-bit word.
#pragma once

#include <cassert>
#include <cstdint>

namespace scanc::sim {

/// Three-valued logic value.
enum class V3 : std::uint8_t {
  Zero = 0b01,
  One = 0b10,
  X = 0b11,
};

/// Builds a binary V3 from a bool.
[[nodiscard]] constexpr V3 v3_from_bool(bool b) noexcept {
  return b ? V3::One : V3::Zero;
}

/// True if the value is 0 or 1 (not X).
[[nodiscard]] constexpr bool is_binary(V3 v) noexcept { return v != V3::X; }

/// Converts a binary value to bool.  Precondition: is_binary(v).
[[nodiscard]] constexpr bool to_bool(V3 v) noexcept {
  assert(is_binary(v));
  return v == V3::One;
}

[[nodiscard]] constexpr V3 v3_not(V3 a) noexcept {
  const auto bits = static_cast<std::uint8_t>(a);
  return static_cast<V3>(((bits & 1) << 1) | ((bits >> 1) & 1));
}

[[nodiscard]] constexpr V3 v3_and(V3 a, V3 b) noexcept {
  const auto x = static_cast<std::uint8_t>(a);
  const auto y = static_cast<std::uint8_t>(b);
  // is0 = a.is0 | b.is0 ; is1 = a.is1 & b.is1
  return static_cast<V3>(((x | y) & 1) | (x & y & 0b10));
}

[[nodiscard]] constexpr V3 v3_or(V3 a, V3 b) noexcept {
  const auto x = static_cast<std::uint8_t>(a);
  const auto y = static_cast<std::uint8_t>(b);
  // is0 = a.is0 & b.is0 ; is1 = a.is1 | b.is1
  return static_cast<V3>((x & y & 1) | ((x | y) & 0b10));
}

[[nodiscard]] constexpr V3 v3_xor(V3 a, V3 b) noexcept {
  const auto a0 = static_cast<std::uint8_t>(a) & 1;
  const auto a1 = (static_cast<std::uint8_t>(a) >> 1) & 1;
  const auto b0 = static_cast<std::uint8_t>(b) & 1;
  const auto b1 = (static_cast<std::uint8_t>(b) >> 1) & 1;
  const std::uint8_t is0 = (a0 & b0) | (a1 & b1);
  const std::uint8_t is1 = (a0 & b1) | (a1 & b0);
  return static_cast<V3>(is0 | (is1 << 1));
}

/// Character rendering: '0', '1', 'x'.
[[nodiscard]] constexpr char to_char(V3 v) noexcept {
  switch (v) {
    case V3::Zero:
      return '0';
    case V3::One:
      return '1';
    default:
      return 'x';
  }
}

/// Parses '0', '1', 'x'/'X' (anything else is X).
[[nodiscard]] constexpr V3 v3_from_char(char c) noexcept {
  if (c == '0') return V3::Zero;
  if (c == '1') return V3::One;
  return V3::X;
}

}  // namespace scanc::sim
