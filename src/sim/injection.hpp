// Fault-injection bookkeeping for the bit-parallel simulator.
//
// An injection forces the value of one circuit *line* to a stuck value in
// the simulation slots selected by a 64-bit mask.  Lines are either stems
// (a node's output, pin == kStemPin) or branches (the connection feeding
// fanin `pin` of a node).  The fault simulator assigns one slot per fault
// and registers the corresponding injections here before each pass.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/circuit.hpp"
#include "sim/packed.hpp"

namespace scanc::sim {

/// Pin value denoting a stem (node output) injection.
inline constexpr int kStemPin = -1;

/// One stuck-line injection.
struct Injection {
  std::int32_t pin = kStemPin;  ///< fanin index, or kStemPin for the stem
  bool stuck_one = false;       ///< stuck-at-1 if true, else stuck-at-0
  std::uint64_t mask = 0;       ///< simulation slots the fault occupies
};

/// Applies every stem injection in `injs` to a node's output value.
[[nodiscard]] inline PackedV3 apply_stem(PackedV3 v,
                                         std::span<const Injection> injs) {
  for (const Injection& inj : injs) {
    if (inj.pin == kStemPin) v = inject(v, inj.mask, inj.stuck_one);
  }
  return v;
}

/// Applies every branch injection on fanin `pin` to the value read
/// through that pin.
[[nodiscard]] inline PackedV3 apply_pin(PackedV3 v, int pin,
                                        std::span<const Injection> injs) {
  for (const Injection& inj : injs) {
    if (inj.pin == pin) v = inject(v, inj.mask, inj.stuck_one);
  }
  return v;
}

/// Injections grouped by the node they attach to.  Cleared and refilled
/// once per fault group; clear() touches only previously used nodes so a
/// pass over a large circuit stays O(active faults).
class InjectionMap {
 public:
  explicit InjectionMap(std::size_t num_nodes)
      : per_node_(num_nodes), has_(num_nodes, 0) {}

  /// Registers an injection on `node` (stem if pin == kStemPin, else the
  /// branch feeding fanin `pin`).
  void add(netlist::NodeId node, int pin, bool stuck_one,
           std::uint64_t mask) {
    if (!has_[node]) {
      touched_.push_back(node);
      has_[node] = 1;
    }
    per_node_[node].push_back(Injection{pin, stuck_one, mask});
  }

  /// Removes all injections.
  void clear() {
    for (const netlist::NodeId n : touched_) {
      per_node_[n].clear();
      has_[n] = 0;
    }
    touched_.clear();
  }

  /// True if `node` carries any injection (one flat byte load — this is
  /// on the simulator's innermost path).
  [[nodiscard]] bool any(netlist::NodeId node) const {
    return has_[node] != 0;
  }

  /// Injections attached to `node`.
  [[nodiscard]] std::span<const Injection> at(netlist::NodeId node) const {
    return per_node_[node];
  }

  /// True if no injections are registered at all.
  [[nodiscard]] bool empty() const noexcept { return touched_.empty(); }

 private:
  std::vector<std::vector<Injection>> per_node_;
  std::vector<netlist::NodeId> touched_;
  std::vector<char> has_;
};

}  // namespace scanc::sim
