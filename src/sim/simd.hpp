// Runtime lane-width selection for the wide simulation kernels.
//
// A lane-width *request* (user-facing: --lane-width=64|256|512|auto) is
// resolved against what this build compiled and what this CPU supports
// into a SimdConfig: the total bit width and the implementation that
// will run it.  Requests never fail — a width the hardware lacks falls
// back to the portable WideWord<NW> implementation at the same width,
// which is bit-identical by construction (and is forced everywhere when
// the build sets SCANC_FORCE_SCALAR_WIDE).
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

namespace scanc::sim {

/// User-facing lane-width request.  W64 = the classic single-word
/// kernels (no wide engine at all); Auto = widest profitable lane.
enum class LaneWidth { Auto, W64, W256, W512 };

/// Which implementation executes a wide pass.
enum class SimdIsa { Portable, Avx2, Avx512 };

struct SimdConfig {
  unsigned bits = 64;  ///< total lane width: 64, 256, or 512
  SimdIsa isa = SimdIsa::Portable;

  /// Number of 64-bit lanes (1 = the wide engine is not used).
  [[nodiscard]] std::size_t lanes() const noexcept { return bits / 64; }

  friend bool operator==(const SimdConfig&, const SimdConfig&) = default;
};

/// True when the running CPU supports the ISA (false on non-x86).
[[nodiscard]] bool cpu_has_avx2() noexcept;
[[nodiscard]] bool cpu_has_avx512() noexcept;

/// Resolves a request against compiled TUs + CPU features (see file
/// comment).  Auto resolves to the widest intrinsic implementation
/// available, else portable 256-bit.
[[nodiscard]] SimdConfig resolve_simd(LaneWidth request) noexcept;

[[nodiscard]] const char* isa_name(SimdIsa isa) noexcept;
[[nodiscard]] const char* lane_width_name(LaneWidth w) noexcept;

/// Parses "64" | "256" | "512" | "auto" (nullopt on anything else).
[[nodiscard]] std::optional<LaneWidth> parse_lane_width(
    std::string_view s) noexcept;

}  // namespace scanc::sim
