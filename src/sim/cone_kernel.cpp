#include "sim/cone_kernel.hpp"

#include <algorithm>
#include <cassert>

namespace scanc::sim {

using netlist::GateType;
using netlist::NodeId;

void ConePlan::build(const netlist::Circuit& c,
                     std::span<const ConeSite> sites) {
  const std::size_t n = c.num_nodes();
  const netlist::CsrSchedule& csr = c.csr();
  eval_.clear();
  boundary_.clear();
  cone_ffs_.clear();
  cone_ff_pos_.clear();
  cone_pos_.clear();
  act_lines_.clear();
  act_stuck_one_.clear();
  in_cone_.assign(n, 0);
  bfs_.clear();

  // Seeds: the node whose output (stem) or input reading (branch) the
  // injection perturbs — in both cases the node's own value can diverge
  // (for a D-branch on a flip-flop, from the next frame on).
  for (const ConeSite& s : sites) {
    if (!in_cone_[s.node]) {
      in_cone_[s.node] = 1;
      bfs_.push_back(s.node);
    }
    act_lines_.push_back(s.pin == kStemPin
                             ? s.node
                             : csr.fanins(s.node)[static_cast<std::size_t>(
                                   s.pin)]);
    act_stuck_one_.push_back(s.stuck_one ? 1 : 0);
  }

  // Sequential closure: BFS over fanouts, propagating *through*
  // flip-flops (a reached FF's state divergence re-enters the logic).
  for (std::size_t head = 0; head < bfs_.size(); ++head) {
    for (const NodeId v : csr.fanouts(bfs_[head])) {
      if (!in_cone_[v]) {
        in_cone_[v] = 1;
        bfs_.push_back(v);
      }
    }
  }

  // Classify.  Scanning the full CSR order keeps eval_ level-major.
  for (const NodeId id : csr.order) {
    if (in_cone_[id]) eval_.push_back(id);
  }
  const auto ffs = c.flip_flops();
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    if (in_cone_[ffs[i]]) {
      cone_ffs_.push_back(ffs[i]);
      cone_ff_pos_.push_back(static_cast<std::uint32_t>(i));
    }
  }
  for (const NodeId po : c.primary_outputs()) {
    if (in_cone_[po]) cone_pos_.push_back(po);
  }

  // Boundary: every value the cone reads but does not itself produce.
  // Cone production covers in-cone combinational gates (eval_) and
  // in-cone flip-flops (latched); in-cone *sources* (injected PIs or
  // constants) and all out-of-cone fanins must be seeded from the
  // fault-free trace each frame.
  const auto produced = [&](NodeId v) {
    return in_cone_[v] != 0 && (netlist::is_combinational(csr.types[v]) ||
                                csr.types[v] == GateType::Dff);
  };
  for (const NodeId id : bfs_) {
    if (!produced(id)) boundary_.push_back(id);  // in-cone PI/const seeds
  }
  for (const NodeId g : eval_) {
    for (const NodeId f : csr.fanins(g)) {
      if (!produced(f)) boundary_.push_back(f);
    }
  }
  for (const NodeId f : cone_ffs_) {
    const NodeId d = csr.fanins(f)[0];
    if (!produced(d)) boundary_.push_back(d);
  }
  std::sort(boundary_.begin(), boundary_.end());
  boundary_.erase(std::unique(boundary_.begin(), boundary_.end()),
                  boundary_.end());
}

ConeSim::ConeSim(const netlist::Circuit& c)
    : circuit_(&c),
      values_(c.num_nodes(), packed_x()),
      captured_(c.num_flip_flops(), packed_x()) {}

void ConeSim::begin(const ConePlan& plan, const InjectionMap& inj,
                    const NodeTrace& trace) {
  plan_ = &plan;
  inj_ = &inj;
  trace_ = &trace;
  next_.resize(plan.cone_ffs().size());
  // All machines start in the (fault-free) scan-in / all-X state; the
  // first simulated frame re-seeds the cone FFs from the trace.
  clean_ = true;
}

bool ConeSim::eval_frame(std::size_t t) {
  assert(t < trace_->length());
  if (clean_) {
    // Activation check: while every injected line's fault-free value
    // already equals its stuck value, the injections are no-ops and the
    // whole frame is identical to the fault-free trace.
    const auto lines = plan_->act_lines();
    const auto stuck = plan_->act_stuck_one();
    bool active = false;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const V3 v = trace_->value(t, lines[i]);
      if (v != (stuck[i] ? V3::One : V3::Zero)) {
        active = true;
        break;
      }
    }
    if (!active) return false;
    // Resuming from the fault-free state: re-seed the cone FF read
    // values (possibly stale after skipped frames) from the trace.
    for (const NodeId f : plan_->cone_ffs()) {
      PackedV3 v = broadcast(trace_->value(t, f));
      if (inj_->any(f)) v = apply_stem(v, inj_->at(f));
      values_[f] = v;
    }
  }

  // Seed the cone boundary with the broadcast fault-free values; stem
  // injections on in-cone sources (PIs/constants) are re-applied on top.
  for (const NodeId b : plan_->boundary()) {
    PackedV3 v = broadcast(trace_->value(t, b));
    if (inj_->any(b)) v = apply_stem(v, inj_->at(b));
    values_[b] = v;
  }

  // Evaluate the compacted schedule (same fast/slow split as the full
  // kernel's apply_frame).
  const netlist::CsrSchedule& csr = circuit_->csr();
  const PackedV3* vals = values_.data();
  for (const NodeId id : plan_->eval()) {
    const std::span<const NodeId> fi = csr.fanins(id);
    PackedV3 out;
    if (!inj_->any(id)) {
      out = eval_gate_at(csr.types[id], fi.size(),
                         [&](std::size_t i) { return vals[fi[i]]; });
    } else {
      const std::span<const Injection> injs = inj_->at(id);
      out = eval_gate_at(csr.types[id], fi.size(), [&](std::size_t i) {
        return apply_pin(vals[fi[i]], static_cast<int>(i), injs);
      });
      out = apply_stem(out, injs);
    }
    values_[id] = out;
  }
  return true;
}

void ConeSim::latch() {
  const netlist::CsrSchedule& csr = circuit_->csr();
  const auto ffs = plan_->cone_ffs();
  const auto pos = plan_->cone_ff_pos();
  for (std::size_t k = 0; k < ffs.size(); ++k) {
    PackedV3 v = values_[csr.fanins(ffs[k])[0]];
    if (inj_->any(ffs[k])) v = apply_pin(v, 0, inj_->at(ffs[k]));
    next_[k] = v;
  }
  std::uint64_t diff = 0;
  for (std::size_t k = 0; k < ffs.size(); ++k) {
    captured_[pos[k]] = next_[k];
    PackedV3 r = next_[k];
    if (inj_->any(ffs[k])) r = apply_stem(r, inj_->at(ffs[k]));
    values_[ffs[k]] = r;
    diff |= diverging_slots(next_[k]) | diverging_slots(r);
  }
  clean_ = diff == 0;
}

}  // namespace scanc::sim
