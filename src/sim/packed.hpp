// Bit-parallel three-valued logic: 64 independent simulation slots per
// value.  Slot semantics are defined by the caller (the fault simulator
// uses slot 0 as the fault-free machine and slots 1..63 as faulty
// machines; the pattern-parallel combinational simulator uses slots as
// independent input patterns).
//
// Encoding per slot mirrors sim/logic.hpp: (is0, is1) with X = (1,1).
#pragma once

#include <cstdint>
#include <span>

#include "netlist/gate.hpp"
#include "sim/logic.hpp"

namespace scanc::sim {

/// 64 three-valued values, one per bit position.
struct PackedV3 {
  std::uint64_t is0 = 0;
  std::uint64_t is1 = 0;

  friend bool operator==(const PackedV3&, const PackedV3&) = default;
};

/// All slots = 0 / 1 / X.
[[nodiscard]] constexpr PackedV3 packed_zero() noexcept { return {~0ULL, 0}; }
[[nodiscard]] constexpr PackedV3 packed_one() noexcept { return {0, ~0ULL}; }
[[nodiscard]] constexpr PackedV3 packed_x() noexcept { return {~0ULL, ~0ULL}; }

/// Broadcasts one scalar value to all 64 slots.
[[nodiscard]] constexpr PackedV3 broadcast(V3 v) noexcept {
  const auto bits = static_cast<std::uint8_t>(v);
  return {(bits & 1) ? ~0ULL : 0ULL, (bits & 2) ? ~0ULL : 0ULL};
}

/// Extracts the scalar value of one slot.
[[nodiscard]] constexpr V3 slot(const PackedV3& v, unsigned bit) noexcept {
  const std::uint8_t b0 = (v.is0 >> bit) & 1;
  const std::uint8_t b1 = (v.is1 >> bit) & 1;
  return static_cast<V3>(b0 | (b1 << 1));
}

/// Writes a scalar value into one slot.
constexpr void set_slot(PackedV3& v, unsigned bit, V3 value) noexcept {
  const std::uint64_t mask = 1ULL << bit;
  const auto bits = static_cast<std::uint8_t>(value);
  v.is0 = (bits & 1) ? (v.is0 | mask) : (v.is0 & ~mask);
  v.is1 = (bits & 2) ? (v.is1 | mask) : (v.is1 & ~mask);
}

[[nodiscard]] constexpr PackedV3 p_not(PackedV3 a) noexcept {
  return {a.is1, a.is0};
}

[[nodiscard]] constexpr PackedV3 p_and(PackedV3 a, PackedV3 b) noexcept {
  return {a.is0 | b.is0, a.is1 & b.is1};
}

[[nodiscard]] constexpr PackedV3 p_or(PackedV3 a, PackedV3 b) noexcept {
  return {a.is0 & b.is0, a.is1 | b.is1};
}

[[nodiscard]] constexpr PackedV3 p_xor(PackedV3 a, PackedV3 b) noexcept {
  return {(a.is0 & b.is0) | (a.is1 & b.is1),
          (a.is0 & b.is1) | (a.is1 & b.is0)};
}

/// Forces the slots selected by `mask` to the given stuck value, leaving
/// other slots untouched.  This is the fault-injection primitive.
[[nodiscard]] constexpr PackedV3 inject(PackedV3 v, std::uint64_t mask,
                                        bool stuck_one) noexcept {
  if (stuck_one) {
    return {v.is0 & ~mask, v.is1 | mask};
  }
  return {v.is0 | mask, v.is1 & ~mask};
}

/// Slots whose value is binary (not X).
[[nodiscard]] constexpr std::uint64_t binary_slots(PackedV3 v) noexcept {
  return v.is0 ^ v.is1;
}

/// Slots whose three-valued code differs from slot 0's (slot 0 is the
/// fault-free reference in the parallel-fault simulator).  Zero iff the
/// word is slot-uniform.
[[nodiscard]] constexpr std::uint64_t diverging_slots(PackedV3 v) noexcept {
  const std::uint64_t r0 = (v.is0 & 1) ? ~0ULL : 0ULL;
  const std::uint64_t r1 = (v.is1 & 1) ? ~0ULL : 0ULL;
  return (v.is0 ^ r0) | (v.is1 ^ r1);
}

/// Slots where `v` holds a binary value that differs from the binary
/// reference value `ref` (the conservative detection criterion: an X in a
/// faulty machine never counts as a detection).
[[nodiscard]] constexpr std::uint64_t differs_from_reference(
    PackedV3 v, bool ref_one) noexcept {
  // Value is binary-0 while reference is 1, or binary-1 while ref is 0.
  const std::uint64_t bin = binary_slots(v);
  return bin & (ref_one ? v.is0 : v.is1);
}

/// Evaluates an n-ary gate over packed fanin values.
/// `type` must be combinational; fanins must respect the gate's arity.
[[nodiscard]] inline PackedV3 eval_gate(netlist::GateType type,
                                        std::span<const PackedV3> in) noexcept {
  using netlist::GateType;
  switch (type) {
    case GateType::Buf:
      return in[0];
    case GateType::Not:
      return p_not(in[0]);
    case GateType::And:
    case GateType::Nand: {
      PackedV3 acc = in[0];
      for (std::size_t i = 1; i < in.size(); ++i) acc = p_and(acc, in[i]);
      return type == GateType::Nand ? p_not(acc) : acc;
    }
    case GateType::Or:
    case GateType::Nor: {
      PackedV3 acc = in[0];
      for (std::size_t i = 1; i < in.size(); ++i) acc = p_or(acc, in[i]);
      return type == GateType::Nor ? p_not(acc) : acc;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      PackedV3 acc = in[0];
      for (std::size_t i = 1; i < in.size(); ++i) acc = p_xor(acc, in[i]);
      return type == GateType::Xnor ? p_not(acc) : acc;
    }
    default:
      // Sources are never evaluated from fanins.
      return packed_x();
  }
}

/// Evaluates an n-ary gate with fanin values produced by a callable
/// (`at(i)` returns the PackedV3 read through fanin pin i).  This is the
/// single gate-evaluation loop shared by the full and cone-restricted
/// kernels: the callable absorbs the difference between plain array
/// reads and reads with branch injections applied.
template <class FaninAt>
[[nodiscard]] inline PackedV3 eval_gate_at(netlist::GateType type,
                                           std::size_t arity,
                                           FaninAt&& at) noexcept {
  using netlist::GateType;
  switch (type) {
    case GateType::Buf:
      return at(0);
    case GateType::Not:
      return p_not(at(0));
    case GateType::And:
    case GateType::Nand: {
      PackedV3 acc = at(0);
      for (std::size_t i = 1; i < arity; ++i) acc = p_and(acc, at(i));
      return type == GateType::Nand ? p_not(acc) : acc;
    }
    case GateType::Or:
    case GateType::Nor: {
      PackedV3 acc = at(0);
      for (std::size_t i = 1; i < arity; ++i) acc = p_or(acc, at(i));
      return type == GateType::Nor ? p_not(acc) : acc;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      PackedV3 acc = at(0);
      for (std::size_t i = 1; i < arity; ++i) acc = p_xor(acc, at(i));
      return type == GateType::Xnor ? p_not(acc) : acc;
    }
    default:
      // Sources are never evaluated from fanins.
      return packed_x();
  }
}

/// Scalar gate evaluation over V3 fanins (reference model for tests).
[[nodiscard]] inline V3 eval_gate_scalar(netlist::GateType type,
                                         std::span<const V3> in) noexcept {
  using netlist::GateType;
  switch (type) {
    case GateType::Buf:
      return in[0];
    case GateType::Not:
      return v3_not(in[0]);
    case GateType::And:
    case GateType::Nand: {
      V3 acc = in[0];
      for (std::size_t i = 1; i < in.size(); ++i) acc = v3_and(acc, in[i]);
      return type == GateType::Nand ? v3_not(acc) : acc;
    }
    case GateType::Or:
    case GateType::Nor: {
      V3 acc = in[0];
      for (std::size_t i = 1; i < in.size(); ++i) acc = v3_or(acc, in[i]);
      return type == GateType::Nor ? v3_not(acc) : acc;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      V3 acc = in[0];
      for (std::size_t i = 1; i < in.size(); ++i) acc = v3_xor(acc, in[i]);
      return type == GateType::Xnor ? v3_not(acc) : acc;
    }
    default:
      return V3::X;
  }
}

}  // namespace scanc::sim
