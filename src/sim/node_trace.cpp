#include "sim/node_trace.hpp"

#include <cassert>

#include "sim/packed.hpp"

namespace scanc::sim {

using netlist::GateType;
using netlist::NodeId;

NodeTrace::NodeTrace(const netlist::Circuit& c, const Vector3* scan_in)
    : circuit_(&c),
      stride_(c.num_nodes()),
      initial_state_(c.num_flip_flops(), V3::X) {
  if (scan_in != nullptr) {
    assert(scan_in->size() == initial_state_.size());
    initial_state_ = *scan_in;
  }
}

NodeTrace::NodeTrace(const NodeTrace& other, std::size_t prefix_len)
    : circuit_(other.circuit_),
      stride_(other.stride_),
      length_(prefix_len),
      vals_(other.vals_.begin(),
            other.vals_.begin() +
                static_cast<std::ptrdiff_t>(prefix_len * other.stride_)),
      initial_state_(other.initial_state_) {
  assert(prefix_len <= other.length_);
}

Vector3 NodeTrace::state_at_start(std::size_t k) const {
  if (k == 0) return initial_state_;
  const netlist::CsrSchedule& csr = circuit_->csr();
  const auto ffs = circuit_->flip_flops();
  Vector3 st(ffs.size(), V3::X);
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    st[i] = value(k - 1, csr.fanins(ffs[i])[0]);
  }
  return st;
}

void NodeTrace::extend(std::span<const Vector3> pi_frames) {
  const netlist::CsrSchedule& csr = circuit_->csr();
  const auto pis = circuit_->primary_inputs();
  const auto ffs = circuit_->flip_flops();

  // Working values: constants, then the state the prefix ends in.
  std::vector<V3> work(stride_, V3::X);
  for (NodeId id = 0; id < stride_; ++id) {
    if (csr.types[id] == GateType::Const0) work[id] = V3::Zero;
    if (csr.types[id] == GateType::Const1) work[id] = V3::One;
  }
  const Vector3 st = state_at_start(length_);
  for (std::size_t i = 0; i < ffs.size(); ++i) work[ffs[i]] = st[i];

  vals_.reserve(vals_.size() + pi_frames.size() * stride_);
  std::vector<V3> scratch;
  std::vector<V3> next_state(ffs.size());
  for (const Vector3& pi : pi_frames) {
    assert(pi.size() == pis.size());
    for (std::size_t i = 0; i < pis.size(); ++i) work[pis[i]] = pi[i];
    for (const NodeId id : csr.order) {
      scratch.clear();
      for (const NodeId f : csr.fanins(id)) scratch.push_back(work[f]);
      work[id] = eval_gate_scalar(csr.types[id], scratch);
    }
    // Record the frame *before* latching so FF ids hold the state read
    // during this frame.
    vals_.insert(vals_.end(), work.begin(), work.end());
    ++length_;
    for (std::size_t i = 0; i < ffs.size(); ++i) {
      next_state[i] = work[csr.fanins(ffs[i])[0]];
    }
    for (std::size_t i = 0; i < ffs.size(); ++i) work[ffs[i]] = next_state[i];
  }
}

}  // namespace scanc::sim
