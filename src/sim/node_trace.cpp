#include "sim/node_trace.hpp"

#include <algorithm>
#include <cassert>

#include "sim/packed.hpp"

namespace scanc::sim {

using netlist::GateType;
using netlist::NodeId;

NodeTrace::NodeTrace(const netlist::Circuit& c, const Vector3* scan_in)
    : circuit_(&c),
      stride_(c.num_nodes()),
      initial_state_(c.num_flip_flops(), V3::X) {
  if (scan_in != nullptr) {
    assert(scan_in->size() == initial_state_.size());
    initial_state_ = *scan_in;
  }
}

NodeTrace::NodeTrace(const NodeTrace& other, std::size_t prefix_len)
    : circuit_(other.circuit_),
      stride_(other.stride_),
      length_(prefix_len),
      vals_(other.vals_.begin(),
            other.vals_.begin() +
                static_cast<std::ptrdiff_t>(prefix_len * other.stride_)),
      initial_state_(other.initial_state_) {
  assert(prefix_len <= other.length_);
}

Vector3 NodeTrace::state_at_start(std::size_t k) const {
  if (k == 0) return initial_state_;
  const netlist::CsrSchedule& csr = circuit_->csr();
  const auto ffs = circuit_->flip_flops();
  Vector3 st(ffs.size(), V3::X);
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    st[i] = value(k - 1, csr.fanins(ffs[i])[0]);
  }
  return st;
}

void NodeTrace::extend(std::span<const Vector3> pi_frames) {
  const netlist::CsrSchedule& csr = circuit_->csr();
  const auto pis = circuit_->primary_inputs();
  const auto ffs = circuit_->flip_flops();

  // Working values: constants, then the state the prefix ends in.
  std::vector<V3> work(stride_, V3::X);
  for (NodeId id = 0; id < stride_; ++id) {
    if (csr.types[id] == GateType::Const0) work[id] = V3::Zero;
    if (csr.types[id] == GateType::Const1) work[id] = V3::One;
  }
  const Vector3 st = state_at_start(length_);
  for (std::size_t i = 0; i < ffs.size(); ++i) work[ffs[i]] = st[i];

  vals_.reserve(vals_.size() + pi_frames.size() * stride_);
  std::vector<V3> scratch;
  std::vector<V3> next_state(ffs.size());
  for (const Vector3& pi : pi_frames) {
    assert(pi.size() == pis.size());
    for (std::size_t i = 0; i < pis.size(); ++i) work[pis[i]] = pi[i];
    for (const NodeId id : csr.order) {
      scratch.clear();
      for (const NodeId f : csr.fanins(id)) scratch.push_back(work[f]);
      work[id] = eval_gate_scalar(csr.types[id], scratch);
    }
    // Record the frame *before* latching so FF ids hold the state read
    // during this frame.
    vals_.insert(vals_.end(), work.begin(), work.end());
    ++length_;
    for (std::size_t i = 0; i < ffs.size(); ++i) {
      next_state[i] = work[csr.fanins(ffs[i])[0]];
    }
    for (std::size_t i = 0; i < ffs.size(); ++i) work[ffs[i]] = next_state[i];
  }
}

void NodeTrace::extend_batch(
    std::span<NodeTrace* const> traces,
    std::span<const std::span<const Vector3>> pi_frames) {
  assert(traces.size() == pi_frames.size());
  assert(traces.size() <= 64);
  if (traces.empty()) return;
  if (traces.size() == 1) {
    traces[0]->extend(pi_frames[0]);
    return;
  }
  const netlist::Circuit& c = *traces[0]->circuit_;
  const netlist::CsrSchedule& csr = c.csr();
  const auto pis = c.primary_inputs();
  const auto ffs = c.flip_flops();
  const std::size_t stride = traces[0]->stride_;
  const std::size_t n = traces.size();

  // Working values: constants splat across all slots, then each trace's
  // resume state in its own slot.
  std::vector<PackedV3> work(stride, broadcast(V3::X));
  for (NodeId id = 0; id < stride; ++id) {
    if (csr.types[id] == GateType::Const0) work[id] = broadcast(V3::Zero);
    if (csr.types[id] == GateType::Const1) work[id] = broadcast(V3::One);
  }
  std::size_t max_len = 0;
  for (std::size_t k = 0; k < n; ++k) {
    NodeTrace& tr = *traces[k];
    assert(tr.circuit_ == &c);
    const Vector3 st = tr.state_at_start(tr.length_);
    for (std::size_t i = 0; i < ffs.size(); ++i) {
      set_slot(work[ffs[i]], static_cast<unsigned>(k), st[i]);
    }
    tr.vals_.reserve(tr.vals_.size() + pi_frames[k].size() * stride);
    max_len = std::max(max_len, pi_frames[k].size());
  }

  std::vector<PackedV3> next_state(ffs.size());
  for (std::size_t t = 0; t < max_len; ++t) {
    for (std::size_t i = 0; i < pis.size(); ++i) {
      PackedV3 v = broadcast(V3::X);
      for (std::size_t k = 0; k < n; ++k) {
        if (t < pi_frames[k].size()) {
          assert(pi_frames[k][t].size() == pis.size());
          set_slot(v, static_cast<unsigned>(k), pi_frames[k][t][i]);
        }
      }
      work[pis[i]] = v;
    }
    for (const NodeId id : csr.order) {
      const std::span<const NodeId> fi = csr.fanins(id);
      work[id] = eval_gate_at(csr.types[id], fi.size(),
                              [&](std::size_t i) { return work[fi[i]]; });
    }
    // Record the frame *before* latching, one slot extraction per trace
    // still inside its own sequence.
    for (std::size_t k = 0; k < n; ++k) {
      if (t >= pi_frames[k].size()) continue;
      NodeTrace& tr = *traces[k];
      const std::size_t off = tr.vals_.size();
      tr.vals_.resize(off + stride);
      for (NodeId id = 0; id < stride; ++id) {
        tr.vals_[off + id] = slot(work[id], static_cast<unsigned>(k));
      }
      ++tr.length_;
    }
    for (std::size_t i = 0; i < ffs.size(); ++i) {
      next_state[i] = work[csr.fanins(ffs[i])[0]];
    }
    for (std::size_t i = 0; i < ffs.size(); ++i) work[ffs[i]] = next_state[i];
  }
}

}  // namespace scanc::sim
