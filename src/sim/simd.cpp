#include "sim/simd.hpp"

namespace scanc::sim {

namespace {

[[nodiscard]] bool force_portable() noexcept {
#if defined(SCANC_FORCE_SCALAR_WIDE)
  return true;
#else
  return false;
#endif
}

[[nodiscard]] bool avx2_compiled() noexcept {
#if defined(SCANC_HAVE_AVX2_TU)
  return true;
#else
  return false;
#endif
}

[[nodiscard]] bool avx512_compiled() noexcept {
#if defined(SCANC_HAVE_AVX512_TU)
  return true;
#else
  return false;
#endif
}

}  // namespace

bool cpu_has_avx2() noexcept {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool cpu_has_avx512() noexcept {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx512f") != 0;
#else
  return false;
#endif
}

SimdConfig resolve_simd(LaneWidth request) noexcept {
  const bool a2 = !force_portable() && avx2_compiled() && cpu_has_avx2();
  const bool a512 =
      !force_portable() && avx512_compiled() && cpu_has_avx512();
  switch (request) {
    case LaneWidth::W64:
      return {64, SimdIsa::Portable};
    case LaneWidth::W256:
      return {256, a2 ? SimdIsa::Avx2 : SimdIsa::Portable};
    case LaneWidth::W512:
      return {512, a512 ? SimdIsa::Avx512 : SimdIsa::Portable};
    case LaneWidth::Auto:
      if (a512) return {512, SimdIsa::Avx512};
      if (a2) return {256, SimdIsa::Avx2};
      // No intrinsic TU (or forced portable): 4 lanes keeps the working
      // set modest while the compiler autovectorizes the lane loops.
      return {256, SimdIsa::Portable};
  }
  return {64, SimdIsa::Portable};
}

const char* isa_name(SimdIsa isa) noexcept {
  switch (isa) {
    case SimdIsa::Portable:
      return "portable";
    case SimdIsa::Avx2:
      return "avx2";
    case SimdIsa::Avx512:
      return "avx512";
  }
  return "?";
}

const char* lane_width_name(LaneWidth w) noexcept {
  switch (w) {
    case LaneWidth::Auto:
      return "auto";
    case LaneWidth::W64:
      return "64";
    case LaneWidth::W256:
      return "256";
    case LaneWidth::W512:
      return "512";
  }
  return "?";
}

std::optional<LaneWidth> parse_lane_width(std::string_view s) noexcept {
  if (s == "auto") return LaneWidth::Auto;
  if (s == "64") return LaneWidth::W64;
  if (s == "256") return LaneWidth::W256;
  if (s == "512") return LaneWidth::W512;
  return std::nullopt;
}

}  // namespace scanc::sim
