// SIMD-widened bit-parallel three-valued logic.
//
// A wide word is NW independent 64-bit lanes.  Each lane keeps the
// packed.hpp slot convention (the fault simulator's slot 0 = lane-local
// fault-free reference, slots 1..63 = faulty machines), so one wide pass
// simulates NW *independent* 64-slot simulations at once.  The two uses:
//
//   pattern-parallel (PPSFP)  — lanes carry different scan tests with
//                               the same fault group replicated per lane
//                               (per-lane stimulus, splat injections);
//   wide fault-parallel       — lanes carry different fault groups under
//                               the same test (broadcast stimulus,
//                               per-lane injection masks).
//
// Because every operation here is lane-wise (no bit ever crosses a
// 64-bit lane boundary), each lane evolves exactly as a PackedV3 pass
// over the same inputs would — the bit-identity contract the check/
// differ enforces.
//
// Word types:
//   WideWord<NW>  — portable uint64_t[NW]; plain loops the compiler
//                   autovectorizes (and the SCANC_FORCE_SCALAR_WIDE
//                   fallback proves bit-identical on any hardware);
//   Avx2Word      — one __m256i (4 lanes), compiled only in TUs built
//                   with -mavx2;
//   Avx512Word    — one __m512i (8 lanes), compiled only in TUs built
//                   with -mavx512f.
// Runtime dispatch between them lives in sim/simd.hpp.
#pragma once

#include <cstdint>
#include <cstring>

#include "netlist/gate.hpp"
#include "sim/logic.hpp"

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace scanc::sim {

/// Portable wide word: NW independent 64-bit lanes.
template <std::size_t NW>
struct WideWord {
  static constexpr std::size_t kLanes = NW;

  std::uint64_t w[NW];

  [[nodiscard]] static WideWord zero() noexcept {
    WideWord r;
    for (std::size_t i = 0; i < NW; ++i) r.w[i] = 0;
    return r;
  }
  [[nodiscard]] static WideWord splat(std::uint64_t v) noexcept {
    WideWord r;
    for (std::size_t i = 0; i < NW; ++i) r.w[i] = v;
    return r;
  }
  [[nodiscard]] std::uint64_t lane(std::size_t i) const noexcept {
    return w[i];
  }
  void set_lane(std::size_t i, std::uint64_t v) noexcept { w[i] = v; }

  [[nodiscard]] bool any() const noexcept {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < NW; ++i) acc |= w[i];
    return acc != 0;
  }

  friend WideWord operator&(WideWord a, WideWord b) noexcept {
    for (std::size_t i = 0; i < NW; ++i) a.w[i] &= b.w[i];
    return a;
  }
  friend WideWord operator|(WideWord a, WideWord b) noexcept {
    for (std::size_t i = 0; i < NW; ++i) a.w[i] |= b.w[i];
    return a;
  }
  friend WideWord operator^(WideWord a, WideWord b) noexcept {
    for (std::size_t i = 0; i < NW; ++i) a.w[i] ^= b.w[i];
    return a;
  }
  friend WideWord operator~(WideWord a) noexcept {
    for (std::size_t i = 0; i < NW; ++i) a.w[i] = ~a.w[i];
    return a;
  }

  /// Per lane: all-ones when the lane's bit 0 is set, else all-zeros
  /// (broadcasts each lane's reference-slot bit across the lane).
  [[nodiscard]] static WideWord bcast_bit0(WideWord a) noexcept {
    for (std::size_t i = 0; i < NW; ++i) {
      a.w[i] = static_cast<std::uint64_t>(
          -static_cast<std::int64_t>(a.w[i] & 1));
    }
    return a;
  }
};

#if defined(__AVX2__)
/// 4 lanes in one __m256i.  Only visible to TUs compiled with -mavx2.
struct Avx2Word {
  static constexpr std::size_t kLanes = 4;

  __m256i v;

  [[nodiscard]] static Avx2Word zero() noexcept {
    return {_mm256_setzero_si256()};
  }
  [[nodiscard]] static Avx2Word splat(std::uint64_t x) noexcept {
    return {_mm256_set1_epi64x(static_cast<long long>(x))};
  }
  [[nodiscard]] std::uint64_t lane(std::size_t i) const noexcept {
    alignas(32) std::uint64_t tmp[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), v);
    return tmp[i];
  }
  void set_lane(std::size_t i, std::uint64_t x) noexcept {
    alignas(32) std::uint64_t tmp[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), v);
    tmp[i] = x;
    v = _mm256_load_si256(reinterpret_cast<const __m256i*>(tmp));
  }
  [[nodiscard]] bool any() const noexcept {
    return _mm256_testz_si256(v, v) == 0;
  }

  friend Avx2Word operator&(Avx2Word a, Avx2Word b) noexcept {
    return {_mm256_and_si256(a.v, b.v)};
  }
  friend Avx2Word operator|(Avx2Word a, Avx2Word b) noexcept {
    return {_mm256_or_si256(a.v, b.v)};
  }
  friend Avx2Word operator^(Avx2Word a, Avx2Word b) noexcept {
    return {_mm256_xor_si256(a.v, b.v)};
  }
  friend Avx2Word operator~(Avx2Word a) noexcept {
    return {_mm256_xor_si256(a.v, _mm256_set1_epi64x(-1))};
  }
  [[nodiscard]] static Avx2Word bcast_bit0(Avx2Word a) noexcept {
    // -(x & 1) per 64-bit lane: all-ones iff the lane's bit 0 is set.
    const __m256i low = _mm256_and_si256(a.v, _mm256_set1_epi64x(1));
    return {_mm256_sub_epi64(_mm256_setzero_si256(), low)};
  }
};
#endif  // __AVX2__

#if defined(__AVX512F__)
/// 8 lanes in one __m512i.  Only visible to TUs compiled with -mavx512f.
struct Avx512Word {
  static constexpr std::size_t kLanes = 8;

  __m512i v;

  [[nodiscard]] static Avx512Word zero() noexcept {
    return {_mm512_setzero_si512()};
  }
  [[nodiscard]] static Avx512Word splat(std::uint64_t x) noexcept {
    return {_mm512_set1_epi64(static_cast<long long>(x))};
  }
  [[nodiscard]] std::uint64_t lane(std::size_t i) const noexcept {
    alignas(64) std::uint64_t tmp[8];
    _mm512_store_si512(tmp, v);
    return tmp[i];
  }
  void set_lane(std::size_t i, std::uint64_t x) noexcept {
    alignas(64) std::uint64_t tmp[8];
    _mm512_store_si512(tmp, v);
    tmp[i] = x;
    v = _mm512_load_si512(tmp);
  }
  [[nodiscard]] bool any() const noexcept {
    return _mm512_test_epi64_mask(v, v) != 0;
  }

  friend Avx512Word operator&(Avx512Word a, Avx512Word b) noexcept {
    return {_mm512_and_si512(a.v, b.v)};
  }
  friend Avx512Word operator|(Avx512Word a, Avx512Word b) noexcept {
    return {_mm512_or_si512(a.v, b.v)};
  }
  friend Avx512Word operator^(Avx512Word a, Avx512Word b) noexcept {
    return {_mm512_xor_si512(a.v, b.v)};
  }
  friend Avx512Word operator~(Avx512Word a) noexcept {
    return {_mm512_xor_si512(a.v, _mm512_set1_epi64(-1))};
  }
  [[nodiscard]] static Avx512Word bcast_bit0(Avx512Word a) noexcept {
    const __m512i low = _mm512_and_si512(a.v, _mm512_set1_epi64(1));
    return {_mm512_sub_epi64(_mm512_setzero_si512(), low)};
  }
};
#endif  // __AVX512F__

/// NW lanes of 64 three-valued slots each; the wide mirror of PackedV3.
template <class W>
struct WideV3 {
  W is0, is1;
};

template <class W>
[[nodiscard]] inline WideV3<W> wide_zero() noexcept {
  return {~W::zero(), W::zero()};
}
template <class W>
[[nodiscard]] inline WideV3<W> wide_one() noexcept {
  return {W::zero(), ~W::zero()};
}
template <class W>
[[nodiscard]] inline WideV3<W> wide_x() noexcept {
  return {~W::zero(), ~W::zero()};
}

template <class W>
[[nodiscard]] inline WideV3<W> w_not(WideV3<W> a) noexcept {
  return {a.is1, a.is0};
}
template <class W>
[[nodiscard]] inline WideV3<W> w_and(WideV3<W> a, WideV3<W> b) noexcept {
  return {a.is0 | b.is0, a.is1 & b.is1};
}
template <class W>
[[nodiscard]] inline WideV3<W> w_or(WideV3<W> a, WideV3<W> b) noexcept {
  return {a.is0 & b.is0, a.is1 | b.is1};
}
template <class W>
[[nodiscard]] inline WideV3<W> w_xor(WideV3<W> a, WideV3<W> b) noexcept {
  return {(a.is0 & b.is0) | (a.is1 & b.is1),
          (a.is0 & b.is1) | (a.is1 & b.is0)};
}

/// Forces the slots selected by `mask` (per-lane 64-bit masks) to the
/// stuck value — the wide fault-injection primitive.
template <class W>
[[nodiscard]] inline WideV3<W> w_inject(WideV3<W> v, W mask,
                                        bool stuck_one) noexcept {
  if (stuck_one) return {v.is0 & ~mask, v.is1 | mask};
  return {v.is0 | mask, v.is1 & ~mask};
}

/// Writes the 64-slot broadcast of a scalar value into one lane.
template <class W>
inline void set_lane_broadcast(WideV3<W>& v, std::size_t lane,
                               V3 value) noexcept {
  const auto bits = static_cast<std::uint8_t>(value);
  v.is0.set_lane(lane, (bits & 1) ? ~0ULL : 0ULL);
  v.is1.set_lane(lane, (bits & 2) ? ~0ULL : 0ULL);
}

/// Per-lane detection mask: slots holding a binary value that differs
/// from the lane's binary slot-0 reference, slot 0 cleared.  Lanes whose
/// reference slot is X contribute nothing (conservative 3-valued
/// detection, exactly as differs_from_reference per lane).
template <class W>
[[nodiscard]] inline W wide_detections(const WideV3<W>& v) noexcept {
  const W bin = v.is0 ^ v.is1;           // slots with a binary value
  const W r0 = W::bcast_bit0(v.is0);     // lane reference can be 0
  const W r1 = W::bcast_bit0(v.is1);     // lane reference can be 1
  const W refbin = r0 ^ r1;              // lane reference is binary
  return bin & refbin & ((r1 & v.is0) | (r0 & v.is1)) & W::splat(~1ULL);
}

/// Evaluates an n-ary gate over wide fanin values produced by a callable
/// (`at(i)` returns the WideV3 read through fanin pin i) — the wide
/// mirror of eval_gate_at.
template <class W, class FaninAt>
[[nodiscard]] inline WideV3<W> wide_eval_gate_at(netlist::GateType type,
                                                 std::size_t arity,
                                                 FaninAt&& at) noexcept {
  using netlist::GateType;
  switch (type) {
    case GateType::Buf:
      return at(0);
    case GateType::Not:
      return w_not(at(0));
    case GateType::And:
    case GateType::Nand: {
      WideV3<W> acc = at(0);
      for (std::size_t i = 1; i < arity; ++i) acc = w_and(acc, at(i));
      return type == GateType::Nand ? w_not(acc) : acc;
    }
    case GateType::Or:
    case GateType::Nor: {
      WideV3<W> acc = at(0);
      for (std::size_t i = 1; i < arity; ++i) acc = w_or(acc, at(i));
      return type == GateType::Nor ? w_not(acc) : acc;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      WideV3<W> acc = at(0);
      for (std::size_t i = 1; i < arity; ++i) acc = w_xor(acc, at(i));
      return type == GateType::Xnor ? w_not(acc) : acc;
    }
    default:
      // Sources are never evaluated from fanins.
      return wide_x<W>();
  }
}

}  // namespace scanc::sim
