// Wide (multi-lane) sequential simulation engine.
//
// WideSeqSim<W> is the lane-parallel mirror of PackedSeqSim: one WideV3
// per node, NW = W::kLanes independent 64-slot simulations advancing in
// lockstep.  Unlike PackedSeqSim, stimulus is *per lane*: load_state and
// apply_frame take one Vector3 per lane (nullptr = leave the lane at X),
// so lanes can carry different scan tests (pattern-parallel) or the same
// test replicated (wide fault-parallel).  Injections carry per-lane slot
// masks (WideInjectionMap); a splat mask replicates one fault group
// across every lane.
//
// Bit-identity: every operation is lane-wise, so lane l evolves exactly
// as a PackedSeqSim pass fed lane l's stimulus and injection masks —
// the contract the batch engine's callers and check/ rely on.
//
// This header is included only by the batch-engine translation units
// (one per instantiated word type); everything here is a template.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "netlist/circuit.hpp"
#include "sim/sequence.hpp"
#include "sim/wide.hpp"

namespace scanc::sim {

/// One stuck-line injection with per-lane slot masks.
template <class W>
struct WideInjection {
  std::int32_t pin;  ///< fanin index, or kStemPin (-1) for the stem
  bool stuck_one;
  W mask;
};

template <class W>
[[nodiscard]] inline WideV3<W> w_apply_stem(
    WideV3<W> v, std::span<const WideInjection<W>> injs) noexcept {
  for (const WideInjection<W>& inj : injs) {
    if (inj.pin == -1) v = w_inject(v, inj.mask, inj.stuck_one);
  }
  return v;
}

template <class W>
[[nodiscard]] inline WideV3<W> w_apply_pin(
    WideV3<W> v, int pin, std::span<const WideInjection<W>> injs) noexcept {
  for (const WideInjection<W>& inj : injs) {
    if (inj.pin == pin) v = w_inject(v, inj.mask, inj.stuck_one);
  }
  return v;
}

/// Wide mirror of InjectionMap: injections grouped by node, O(active)
/// clear via the touched list.
template <class W>
class WideInjectionMap {
 public:
  explicit WideInjectionMap(std::size_t num_nodes)
      : per_node_(num_nodes), has_(num_nodes, 0) {}

  void add(netlist::NodeId node, int pin, bool stuck_one, W mask) {
    if (!has_[node]) {
      touched_.push_back(node);
      has_[node] = 1;
    }
    per_node_[node].push_back(WideInjection<W>{pin, stuck_one, mask});
  }

  void clear() {
    for (const netlist::NodeId n : touched_) {
      per_node_[n].clear();
      has_[n] = 0;
    }
    touched_.clear();
  }

  [[nodiscard]] bool any(netlist::NodeId node) const {
    return has_[node] != 0;
  }
  [[nodiscard]] std::span<const WideInjection<W>> at(
      netlist::NodeId node) const {
    return per_node_[node];
  }
  [[nodiscard]] bool empty() const noexcept { return touched_.empty(); }

 private:
  std::vector<std::vector<WideInjection<W>>> per_node_;
  std::vector<netlist::NodeId> touched_;
  std::vector<char> has_;
};

template <class W>
class WideSeqSim {
 public:
  static constexpr std::size_t kLanes = W::kLanes;

  explicit WideSeqSim(const netlist::Circuit& circuit)
      : circuit_(&circuit),
        values_(circuit.num_nodes(), wide_x<W>()),
        captured_(circuit.num_flip_flops(), wide_x<W>()),
        next_state_(circuit.num_flip_flops()) {}

  [[nodiscard]] const netlist::Circuit& circuit() const noexcept {
    return *circuit_;
  }

  /// All lanes to X, constants set, stem injections on sources applied.
  void reset(const WideInjectionMap<W>* inj) {
    using netlist::GateType;
    for (netlist::NodeId id = 0; id < values_.size(); ++id) {
      const GateType t = circuit_->node(id).type;
      WideV3<W> v = wide_x<W>();
      if (t == GateType::Const0) v = wide_zero<W>();
      if (t == GateType::Const1) v = wide_one<W>();
      if (inj && inj->any(id) && netlist::is_source(t)) {
        v = w_apply_stem(v, inj->at(id));
      }
      values_[id] = v;
    }
    for (auto& cap : captured_) cap = wide_x<W>();
  }

  /// Per-lane scan-in: lane l's FFs take states[l] (nullptr leaves the
  /// lane's current values untouched — an all-X lane after reset()).
  /// Stem injections are re-applied to the whole word; injection is
  /// idempotent, so untouched lanes keep their already-forced slots.
  void load_state(std::span<const Vector3* const> states,
                  const WideInjectionMap<W>* inj) {
    const auto ffs = circuit_->flip_flops();
    assert(states.size() <= kLanes);
    for (std::size_t i = 0; i < ffs.size(); ++i) {
      WideV3<W> cap = captured_[i];
      WideV3<W> v = values_[ffs[i]];
      for (std::size_t l = 0; l < states.size(); ++l) {
        if (states[l] == nullptr) continue;
        assert(states[l]->size() == ffs.size());
        const V3 s = (*states[l])[i];
        set_lane_broadcast(cap, l, s);  // scan-in stores the clean value
        set_lane_broadcast(v, l, s);
      }
      captured_[i] = cap;
      if (inj && inj->any(ffs[i])) v = w_apply_stem(v, inj->at(ffs[i]));
      values_[ffs[i]] = v;  // the logic reads through the (stuck) Q
    }
  }

  /// Per-lane PI stimulus (nullptr lane = all-X inputs), then one
  /// levelized evaluation of the combinational logic.
  void apply_frame(std::span<const Vector3* const> pis_per_lane,
                   const WideInjectionMap<W>* inj) {
    const auto pis = circuit_->primary_inputs();
    assert(pis_per_lane.size() <= kLanes);
    for (std::size_t i = 0; i < pis.size(); ++i) {
      WideV3<W> v = wide_x<W>();
      for (std::size_t l = 0; l < pis_per_lane.size(); ++l) {
        if (pis_per_lane[l] == nullptr) continue;
        assert(pis_per_lane[l]->size() == pis.size());
        set_lane_broadcast(v, l, (*pis_per_lane[l])[i]);
      }
      if (inj && inj->any(pis[i])) v = w_apply_stem(v, inj->at(pis[i]));
      values_[pis[i]] = v;
    }

    const netlist::CsrSchedule& csr = circuit_->csr();
    const WideV3<W>* vals = values_.data();
    for (const netlist::NodeId id : csr.order) {
      const std::span<const netlist::NodeId> fi = csr.fanins(id);
      WideV3<W> out;
      if (inj == nullptr || !inj->any(id)) {
        out = wide_eval_gate_at<W>(csr.types[id], fi.size(),
                                   [&](std::size_t i) { return vals[fi[i]]; });
      } else {
        const std::span<const WideInjection<W>> injs = inj->at(id);
        out = wide_eval_gate_at<W>(
            csr.types[id], fi.size(), [&](std::size_t i) {
              return w_apply_pin(vals[fi[i]], static_cast<int>(i), injs);
            });
        out = w_apply_stem(out, injs);
      }
      values_[id] = out;
    }
  }

  /// Simultaneous latch with the same D-branch / Q-stem injection
  /// convention as PackedSeqSim::latch.
  void latch(const WideInjectionMap<W>* inj) {
    const netlist::CsrSchedule& csr = circuit_->csr();
    const auto ffs = circuit_->flip_flops();
    for (std::size_t i = 0; i < ffs.size(); ++i) {
      WideV3<W> v = values_[csr.fanins(ffs[i])[0]];
      if (inj && inj->any(ffs[i])) v = w_apply_pin(v, 0, inj->at(ffs[i]));
      next_state_[i] = v;
    }
    for (std::size_t i = 0; i < ffs.size(); ++i) {
      captured_[i] = next_state_[i];
      WideV3<W> v = next_state_[i];
      if (inj && inj->any(ffs[i])) v = w_apply_stem(v, inj->at(ffs[i]));
      values_[ffs[i]] = v;
    }
  }

  [[nodiscard]] const WideV3<W>& value(netlist::NodeId id) const {
    return values_[id];
  }
  [[nodiscard]] const WideV3<W>& captured(std::size_t i) const {
    return captured_[i];
  }

 private:
  const netlist::Circuit* circuit_;
  std::vector<WideV3<W>> values_;
  std::vector<WideV3<W>> captured_;
  std::vector<WideV3<W>> next_state_;
};

}  // namespace scanc::sim
