// Value vectors and primary-input sequences.
//
// A Vector3 assigns one V3 per position (primary input or flip-flop, by
// the circuit's declaration order).  A Sequence is an ordered list of
// primary-input vectors, applied one per functional clock cycle.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/logic.hpp"
#include "util/rng.hpp"

namespace scanc::sim {

/// One assignment of three-valued values (e.g. a PI vector or a state).
using Vector3 = std::vector<V3>;

/// A primary-input sequence: frames[t] is the PI vector at time unit t.
struct Sequence {
  std::vector<Vector3> frames;

  [[nodiscard]] std::size_t length() const noexcept { return frames.size(); }
  [[nodiscard]] bool empty() const noexcept { return frames.empty(); }

  /// Subsequence [from, to] inclusive (paper notation A[u1, u2]).
  [[nodiscard]] Sequence subsequence(std::size_t from, std::size_t to) const {
    Sequence s;
    s.frames.assign(frames.begin() + static_cast<std::ptrdiff_t>(from),
                    frames.begin() + static_cast<std::ptrdiff_t>(to) + 1);
    return s;
  }

  /// Concatenation (used by test combining).
  [[nodiscard]] Sequence concatenated(const Sequence& tail) const {
    Sequence s = *this;
    s.frames.insert(s.frames.end(), tail.frames.begin(), tail.frames.end());
    return s;
  }

  friend bool operator==(const Sequence&, const Sequence&) = default;
};

/// Renders a vector as a string of 0/1/x characters.
[[nodiscard]] inline std::string to_string(const Vector3& v) {
  std::string s;
  s.reserve(v.size());
  for (const V3 x : v) s.push_back(to_char(x));
  return s;
}

/// Parses a 0/1/x string into a vector.
[[nodiscard]] inline Vector3 vector3_from_string(std::string_view s) {
  Vector3 v;
  v.reserve(s.size());
  for (const char c : s) v.push_back(v3_from_char(c));
  return v;
}

/// Random fully-specified vector of `width` bits.
[[nodiscard]] inline Vector3 random_vector(std::size_t width,
                                           util::Rng& rng) {
  Vector3 v(width, V3::Zero);
  for (auto& x : v) x = v3_from_bool(rng.coin());
  return v;
}

/// Replaces every X in `v` with a random binary value.
inline void randomize_x(Vector3& v, util::Rng& rng) {
  for (auto& x : v) {
    if (x == V3::X) x = v3_from_bool(rng.coin());
  }
}

/// Random sequence of `length` fully-specified vectors of `width` bits.
[[nodiscard]] inline Sequence random_sequence(std::size_t width,
                                              std::size_t length,
                                              util::Rng& rng) {
  Sequence s;
  s.frames.reserve(length);
  for (std::size_t t = 0; t < length; ++t) {
    s.frames.push_back(random_vector(width, rng));
  }
  return s;
}

/// True if every element of `v` is binary (no X).
[[nodiscard]] inline bool fully_specified(const Vector3& v) noexcept {
  for (const V3 x : v) {
    if (!is_binary(x)) return false;
  }
  return true;
}

}  // namespace scanc::sim
