#include "sim/trace_cache.hpp"

#include <algorithm>
#include <cassert>

#include "util/telemetry.hpp"

namespace scanc::sim {

TraceCache::TraceCache(const netlist::Circuit& c, std::size_t capacity)
    : circuit_(&c), capacity_(std::max<std::size_t>(capacity, 1)) {}

bool TraceCache::key_matches(const Entry& e, const Vector3* scan_in) const {
  if (e.has_scan_in != (scan_in != nullptr)) return false;
  return scan_in == nullptr || e.scan_in == *scan_in;
}

namespace {

/// Length of the common frame prefix of two sequences.
std::size_t common_prefix(const Sequence& a, const Sequence& b) {
  const std::size_t n = std::min(a.length(), b.length());
  for (std::size_t t = 0; t < n; ++t) {
    if (a.frames[t] != b.frames[t]) return t;
  }
  return n;
}

}  // namespace

std::shared_ptr<const NodeTrace> TraceCache::get(const Vector3* scan_in,
                                                 const Sequence& seq) {
  ++tick_;
  std::size_t best = entries_.size();
  std::size_t best_lcp = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& e = entries_[i];
    if (!key_matches(e, scan_in)) continue;
    const std::size_t lcp = common_prefix(e.seq, seq);
    if (lcp == seq.length() && e.seq.length() >= seq.length()) {
      // The query is a prefix of (or equal to) the cached trace.
      ++hits_;
      obs::add(obs::Counter::TraceCacheHits);
      e.stamp = tick_;
      return e.trace;
    }
    if (lcp == e.seq.length()) {
      // The cached trace is a proper prefix of the query: extend it.
      ++extensions_;
      obs::add(obs::Counter::TraceCacheExtensions);
      if (e.trace.use_count() > 1) {
        // Another caller still reads the shorter trace: copy-on-write.
        e.trace = std::make_shared<NodeTrace>(*e.trace, e.trace->length());
      }
      e.trace->extend(std::span<const Vector3>(seq.frames).subspan(lcp));
      e.seq = seq;
      e.stamp = tick_;
      return e.trace;
    }
    if (lcp > best_lcp) {
      best = i;
      best_lcp = lcp;
    }
  }

  // Miss: build a trace, seeding from the longest common prefix found.
  std::shared_ptr<NodeTrace> trace;
  if (best < entries_.size() && best_lcp > 0) {
    ++partial_reuses_;
    obs::add(obs::Counter::TraceCachePartialReuses);
    trace = std::make_shared<NodeTrace>(*entries_[best].trace, best_lcp);
  } else {
    ++misses_;
    obs::add(obs::Counter::TraceCacheMisses);
    trace = std::make_shared<NodeTrace>(*circuit_, scan_in);
  }
  trace->extend(
      std::span<const Vector3>(seq.frames).subspan(trace->length()));

  if (entries_.size() >= capacity_) {
    auto lru = std::min_element(
        entries_.begin(), entries_.end(),
        [](const Entry& a, const Entry& b) { return a.stamp < b.stamp; });
    entries_.erase(lru);
    ++evictions_;
    obs::add(obs::Counter::TraceCacheEvictions);
  }
  Entry e;
  e.has_scan_in = scan_in != nullptr;
  if (scan_in != nullptr) e.scan_in = *scan_in;
  e.seq = seq;
  e.trace = trace;
  e.stamp = tick_;
  entries_.push_back(std::move(e));
  obs::set_gauge(obs::Gauge::TraceCacheSize, entries_.size());
  return trace;
}

std::vector<std::shared_ptr<const NodeTrace>> TraceCache::get_batch(
    std::span<const Request> reqs) {
  std::vector<std::shared_ptr<const NodeTrace>> out(reqs.size());

  // A batch miss to build fresh; `indices` collects every request that
  // shares the same key (duplicates inside one batch share one trace).
  struct Pending {
    std::vector<std::size_t> indices;
    std::shared_ptr<NodeTrace> trace;
  };
  std::vector<Pending> pending;

  for (std::size_t r = 0; r < reqs.size(); ++r) {
    const Request& req = reqs[r];
    assert(req.seq != nullptr);
    ++tick_;
    bool served = false;
    for (Entry& e : entries_) {
      if (!key_matches(e, req.scan_in)) continue;
      const std::size_t lcp = common_prefix(e.seq, *req.seq);
      if (lcp == req.seq->length() && e.seq.length() >= req.seq->length()) {
        ++hits_;
        obs::add(obs::Counter::TraceCacheHits);
        e.stamp = tick_;
        out[r] = e.trace;
        served = true;
        break;
      }
    }
    if (served) continue;
    for (Pending& p : pending) {
      const Request& first = reqs[p.indices.front()];
      const bool key_eq =
          (first.scan_in == nullptr) == (req.scan_in == nullptr) &&
          (req.scan_in == nullptr || *first.scan_in == *req.scan_in);
      if (key_eq && common_prefix(*first.seq, *req.seq) == req.seq->length() &&
          first.seq->length() == req.seq->length()) {
        p.indices.push_back(r);
        served = true;
        break;
      }
    }
    if (served) continue;
    pending.push_back(Pending{{r}, nullptr});
  }

  // Simulate the misses fresh, pattern-packed 64 per pass.
  for (std::size_t base = 0; base < pending.size(); base += 64) {
    const std::size_t n = std::min<std::size_t>(64, pending.size() - base);
    std::vector<NodeTrace*> traces(n);
    std::vector<std::span<const Vector3>> frames(n);
    for (std::size_t k = 0; k < n; ++k) {
      Pending& p = pending[base + k];
      const Request& req = reqs[p.indices.front()];
      p.trace = std::make_shared<NodeTrace>(*circuit_, req.scan_in);
      traces[k] = p.trace.get();
      frames[k] = std::span<const Vector3>(req.seq->frames);
    }
    NodeTrace::extend_batch(traces, frames);
  }

  for (Pending& p : pending) {
    const Request& req = reqs[p.indices.front()];
    ++misses_;
    obs::add(obs::Counter::TraceCacheMisses);
    if (entries_.size() >= capacity_) {
      auto lru = std::min_element(
          entries_.begin(), entries_.end(),
          [](const Entry& a, const Entry& b) { return a.stamp < b.stamp; });
      entries_.erase(lru);
      ++evictions_;
      obs::add(obs::Counter::TraceCacheEvictions);
    }
    Entry e;
    e.has_scan_in = req.scan_in != nullptr;
    if (req.scan_in != nullptr) e.scan_in = *req.scan_in;
    e.seq = *req.seq;
    e.trace = p.trace;
    e.stamp = tick_;
    entries_.push_back(std::move(e));
    for (const std::size_t r : p.indices) out[r] = p.trace;
  }
  obs::set_gauge(obs::Gauge::TraceCacheSize, entries_.size());
  return out;
}

}  // namespace scanc::sim
