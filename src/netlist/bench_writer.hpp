// Serializer for the ISCAS .bench netlist format (inverse of the parser).
#pragma once

#include <ostream>
#include <string>

#include "netlist/circuit.hpp"

namespace scanc::netlist {

/// Writes `c` in .bench syntax.  Round-trips with parse_bench: the parsed
/// result is structurally identical (same nodes, fanins, interface lists).
void write_bench(const Circuit& c, std::ostream& out);

/// Convenience: serialize to a string.
[[nodiscard]] std::string to_bench_string(const Circuit& c);

}  // namespace scanc::netlist
