#include "netlist/analysis.hpp"

#include <algorithm>
#include <unordered_map>

namespace scanc::netlist {

util::Bitset fanin_cone(const Circuit& c, NodeId node) {
  util::Bitset cone(c.num_nodes());
  std::vector<NodeId> stack{node};
  cone.set(node);
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    // Sources (incl. flip-flop outputs) end the in-cycle cone.
    if (is_source(c.node(id).type)) continue;
    for (const NodeId f : c.node(id).fanins) {
      if (!cone.test(f)) {
        cone.set(f);
        stack.push_back(f);
      }
    }
  }
  return cone;
}

util::Bitset fanout_cone(const Circuit& c, NodeId node) {
  util::Bitset cone(c.num_nodes());
  std::vector<NodeId> stack{node};
  cone.set(node);
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    for (const NodeId out : c.node(id).fanouts) {
      if (c.node(out).type == GateType::Dff) continue;
      if (!cone.test(out)) {
        cone.set(out);
        stack.push_back(out);
      }
    }
  }
  return cone;
}

std::vector<NodeId> support(const Circuit& c, NodeId node) {
  const util::Bitset cone = fanin_cone(c, node);
  std::vector<NodeId> out;
  for (const NodeId id : c.primary_inputs()) {
    if (cone.test(id)) out.push_back(id);
  }
  for (const NodeId id : c.flip_flops()) {
    if (cone.test(id)) out.push_back(id);
  }
  return out;
}

std::vector<std::pair<NodeId, NodeId>> duplicate_gates(const Circuit& c) {
  // Key: gate type + sorted fanin list (all implemented gate functions
  // are commutative, so fanin order is irrelevant).
  std::unordered_map<std::string, NodeId> seen;
  std::vector<std::pair<NodeId, NodeId>> dups;
  for (const NodeId id : c.topo_order()) {
    const Node& n = c.node(id);
    std::vector<NodeId> fanins(n.fanins.begin(), n.fanins.end());
    std::sort(fanins.begin(), fanins.end());
    std::string key;
    key.reserve(8 + fanins.size() * 8);
    key += static_cast<char>(n.type);
    for (const NodeId f : fanins) {
      key += '.';
      key += std::to_string(f);
    }
    const auto [it, inserted] = seen.emplace(std::move(key), id);
    if (!inserted) dups.emplace_back(it->second, id);
  }
  return dups;
}

ShapeStats shape_stats(const Circuit& c) {
  ShapeStats s;
  std::size_t fanout_total = 0;
  std::size_t driving = 0;
  std::size_t fanin_total = 0;
  std::size_t gates = 0;
  for (NodeId id = 0; id < c.num_nodes(); ++id) {
    const Node& n = c.node(id);
    if (!n.fanouts.empty()) {
      ++driving;
      fanout_total += n.fanouts.size();
      s.max_fanout = std::max(s.max_fanout, n.fanouts.size());
      if (n.fanouts.size() > 1) ++s.fanout_stems;
    }
    if (is_combinational(n.type)) {
      ++gates;
      fanin_total += n.fanins.size();
      s.max_fanin = std::max(s.max_fanin, n.fanins.size());
    }
  }
  if (driving > 0) {
    s.avg_fanout =
        static_cast<double>(fanout_total) / static_cast<double>(driving);
  }
  if (gates > 0) {
    s.avg_fanin =
        static_cast<double>(fanin_total) / static_cast<double>(gates);
  }
  return s;
}

}  // namespace scanc::netlist
