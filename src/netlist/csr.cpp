#include "netlist/csr.hpp"

#include <numeric>

#include "netlist/circuit.hpp"

namespace scanc::netlist {

CsrSchedule CsrSchedule::build(const Circuit& c) {
  const std::size_t n = c.num_nodes();
  CsrSchedule s;
  s.types.reserve(n);
  for (NodeId id = 0; id < n; ++id) s.types.push_back(c.node(id).type);

  s.fanin_offsets.assign(n + 1, 0);
  s.fanout_offsets.assign(n + 1, 0);
  for (NodeId id = 0; id < n; ++id) {
    s.fanin_offsets[id + 1] =
        s.fanin_offsets[id] +
        static_cast<std::uint32_t>(c.node(id).fanins.size());
    s.fanout_offsets[id + 1] =
        s.fanout_offsets[id] +
        static_cast<std::uint32_t>(c.node(id).fanouts.size());
  }
  s.fanin_ids.reserve(s.fanin_offsets.back());
  s.fanout_ids.reserve(s.fanout_offsets.back());
  for (NodeId id = 0; id < n; ++id) {
    const Node& node = c.node(id);
    s.fanin_ids.insert(s.fanin_ids.end(), node.fanins.begin(),
                       node.fanins.end());
    s.fanout_ids.insert(s.fanout_ids.end(), node.fanouts.begin(),
                        node.fanouts.end());
  }

  // Level-major order via counting sort over levels (comb gates have
  // level >= 1; ascending NodeId within a level because the node scan is
  // ascending).
  const std::uint32_t depth = c.depth();
  s.level_offsets.assign(depth + 1, 0);
  for (NodeId id = 0; id < n; ++id) {
    if (is_combinational(s.types[id])) {
      // Gate of level l is counted at index l; the prefix sum then makes
      // level_offsets[l-1] the start of level l's slice.
      ++s.level_offsets[c.node(id).level];
    }
  }
  std::partial_sum(s.level_offsets.begin(), s.level_offsets.end(),
                   s.level_offsets.begin());
  s.order.assign(c.num_gates(), 0);
  s.rank.assign(n, kNoRank);
  std::vector<std::uint32_t> cursor(s.level_offsets.begin(),
                                    s.level_offsets.end());
  for (NodeId id = 0; id < n; ++id) {
    if (!is_combinational(s.types[id])) continue;
    const std::uint32_t pos = cursor[c.node(id).level - 1]++;
    s.order[pos] = id;
    s.rank[id] = pos;
  }
  return s;
}

}  // namespace scanc::netlist
