#include "netlist/circuit.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace scanc::netlist {

NodeId Circuit::find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kNoNode : it->second;
}

CircuitStats stats(const Circuit& c) {
  CircuitStats s;
  s.inputs = c.num_inputs();
  s.outputs = c.num_outputs();
  s.flip_flops = c.num_flip_flops();
  s.gates = c.num_gates();
  s.depth = c.depth();
  return s;
}

CircuitBuilder::CircuitBuilder(std::string circuit_name)
    : name_(std::move(circuit_name)) {}

NodeId CircuitBuilder::intern(std::string_view name) {
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(nodes_.size());
  Node n;
  n.name = std::string(name);
  nodes_.push_back(std::move(n));
  defined_.push_back(0);
  by_name_.emplace(std::string(name), id);
  return id;
}

NodeId CircuitBuilder::define(GateType type, std::string_view name) {
  const NodeId id = intern(name);
  if (defined_[id]) {
    throw std::invalid_argument("duplicate definition of signal '" +
                                std::string(name) + "'");
  }
  defined_[id] = 1;
  nodes_[id].type = type;
  return id;
}

NodeId CircuitBuilder::add_input(std::string_view name) {
  return define(GateType::Input, name);
}

NodeId CircuitBuilder::add_gate(GateType type, std::string_view name,
                                std::span<const std::string_view> fanins) {
  if (type == GateType::Input) {
    throw std::invalid_argument("use add_input for primary inputs");
  }
  const int req = required_fanins(type);
  if (req >= 0 && fanins.size() != static_cast<std::size_t>(req)) {
    throw std::invalid_argument("gate '" + std::string(name) +
                                "': wrong number of fanins");
  }
  if (is_nary(type) && fanins.empty()) {
    throw std::invalid_argument("gate '" + std::string(name) +
                                "': n-ary gate needs at least one fanin");
  }
  std::vector<NodeId> ids;
  ids.reserve(fanins.size());
  for (const std::string_view f : fanins) ids.push_back(intern(f));
  const NodeId id = define(type, name);
  nodes_[id].fanins = std::move(ids);
  return id;
}

NodeId CircuitBuilder::add_gate(GateType type, std::string_view name,
                                std::initializer_list<std::string_view> f) {
  std::vector<std::string_view> v(f);
  return add_gate(type, name, std::span<const std::string_view>(v));
}

NodeId CircuitBuilder::add_gate_ids(GateType type, std::string_view name,
                                    std::span<const NodeId> fanins) {
  if (type == GateType::Input) {
    throw std::invalid_argument("use add_input for primary inputs");
  }
  const int req = required_fanins(type);
  if (req >= 0 && fanins.size() != static_cast<std::size_t>(req)) {
    throw std::invalid_argument("gate '" + std::string(name) +
                                "': wrong number of fanins");
  }
  if (is_nary(type) && fanins.empty()) {
    throw std::invalid_argument("gate '" + std::string(name) +
                                "': n-ary gate needs at least one fanin");
  }
  for (const NodeId f : fanins) {
    if (f >= nodes_.size()) {
      throw std::invalid_argument("gate '" + std::string(name) +
                                  "': fanin id out of range");
    }
  }
  const NodeId id = define(type, name);
  nodes_[id].fanins.assign(fanins.begin(), fanins.end());
  return id;
}

void CircuitBuilder::mark_output(std::string_view name) {
  intern(name);
  output_names_.emplace_back(name);
}

Circuit CircuitBuilder::build() {
  // Every referenced signal must have been defined.
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (!defined_[id]) {
      throw std::invalid_argument("signal '" + nodes_[id].name +
                                  "' referenced but never defined");
    }
  }

  Circuit c;
  c.name_ = std::move(name_);
  c.nodes_ = std::move(nodes_);
  c.by_name_ = std::move(by_name_);

  // Fanouts.
  for (NodeId id = 0; id < c.nodes_.size(); ++id) {
    for (const NodeId f : c.nodes_[id].fanins) {
      c.nodes_[f].fanouts.push_back(id);
    }
  }

  // Interface lists.
  c.is_output_.assign(c.nodes_.size(), 0);
  for (NodeId id = 0; id < c.nodes_.size(); ++id) {
    switch (c.nodes_[id].type) {
      case GateType::Input:
        c.primary_inputs_.push_back(id);
        break;
      case GateType::Dff:
        c.flip_flops_.push_back(id);
        break;
      default:
        break;
    }
  }
  for (const std::string& out : output_names_) {
    const NodeId id = c.by_name_.at(out);
    if (!c.is_output_[id]) {
      c.is_output_[id] = 1;
      c.primary_outputs_.push_back(id);
    }
  }

  // Topological order of combinational gates via Kahn's algorithm.
  // Sources (Input/Dff/Const) have no in-cycle dependencies.  A DFF node
  // is also a *sink*: its fanin must be evaluated, but nothing in-cycle
  // depends on the DFF's own next-state sampling.
  std::vector<std::uint32_t> pending(c.nodes_.size(), 0);
  for (NodeId id = 0; id < c.nodes_.size(); ++id) {
    if (is_combinational(c.nodes_[id].type)) {
      std::uint32_t deps = 0;
      for (const NodeId f : c.nodes_[id].fanins) {
        if (is_combinational(c.nodes_[f].type)) ++deps;
      }
      pending[id] = deps;
    }
  }
  std::vector<NodeId> ready;
  for (NodeId id = 0; id < c.nodes_.size(); ++id) {
    if (is_combinational(c.nodes_[id].type) && pending[id] == 0) {
      ready.push_back(id);
    }
  }
  c.topo_order_.reserve(c.nodes_.size());
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const NodeId id = ready[head];
    c.topo_order_.push_back(id);
    for (const NodeId out : c.nodes_[id].fanouts) {
      if (is_combinational(c.nodes_[out].type) && --pending[out] == 0) {
        ready.push_back(out);
      }
    }
  }
  std::size_t num_comb = 0;
  for (const Node& n : c.nodes_) {
    if (is_combinational(n.type)) ++num_comb;
  }
  if (c.topo_order_.size() != num_comb) {
    throw std::invalid_argument("circuit '" + c.name_ +
                                "' has a combinational cycle");
  }

  // Levels.
  for (const NodeId id : c.topo_order_) {
    std::uint32_t lvl = 0;
    for (const NodeId f : c.nodes_[id].fanins) {
      // Source fanins (incl. DFF current-state) are level 0.
      const std::uint32_t fl =
          is_combinational(c.nodes_[f].type) ? c.nodes_[f].level : 0;
      lvl = std::max(lvl, fl + 1);
    }
    c.nodes_[id].level = lvl;
    c.depth_ = std::max(c.depth_, lvl);
  }

  c.csr_ = CsrSchedule::build(c);
  return c;
}

}  // namespace scanc::netlist
