// Flat CSR / levelized evaluation schedule for a Circuit.
//
// The per-Node `std::vector` fanin/fanout lists are convenient for
// construction and analysis but hostile to the simulation inner loop:
// every gate evaluation chases a Node pointer and a heap-allocated
// vector.  A CsrSchedule flattens the whole connectivity into four
// arrays (offsets + ids, fanin and fanout side) plus a level-major
// evaluation order, so the hot loops index contiguous memory only.
// Circuit precomputes one at build() time; every simulation kernel
// (full and cone-restricted) runs off it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/gate.hpp"

namespace scanc::netlist {

// Identical to the alias in circuit.hpp (redeclared so this header does
// not depend on it; circuit.hpp includes us).
using NodeId = std::uint32_t;

class Circuit;

/// Rank value for nodes outside the combinational evaluation order
/// (sources: inputs, flip-flops, constants).
inline constexpr std::uint32_t kNoRank = 0xffffffffu;

/// Flat connectivity + levelized evaluation order.  All vectors are
/// indexed by NodeId except `order`/`level_offsets`, which describe the
/// combinational evaluation schedule.
struct CsrSchedule {
  /// Gate type per node (dense copy of Node::type for cache locality).
  std::vector<GateType> types;
  /// fanins of node `n` = fanin_ids[fanin_offsets[n] .. fanin_offsets[n+1])
  std::vector<std::uint32_t> fanin_offsets;
  std::vector<NodeId> fanin_ids;
  /// fanouts of node `n`, same layout.
  std::vector<std::uint32_t> fanout_offsets;
  std::vector<NodeId> fanout_ids;
  /// Combinational gates in level-major order (level 1 first; ascending
  /// NodeId within a level).  A valid topological order: every fanin of
  /// a level-l gate has level < l.
  std::vector<NodeId> order;
  /// Gates of level l (1-based) occupy
  /// order[level_offsets[l-1] .. level_offsets[l]).  Size depth()+1.
  std::vector<std::uint32_t> level_offsets;
  /// Position of each node in `order`; kNoRank for sources.
  std::vector<std::uint32_t> rank;

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return types.size();
  }

  [[nodiscard]] std::span<const NodeId> fanins(NodeId n) const {
    return {fanin_ids.data() + fanin_offsets[n],
            fanin_ids.data() + fanin_offsets[n + 1]};
  }

  [[nodiscard]] std::span<const NodeId> fanouts(NodeId n) const {
    return {fanout_ids.data() + fanout_offsets[n],
            fanout_ids.data() + fanout_offsets[n + 1]};
  }

  /// Flattens `c`'s connectivity.  Called once from CircuitBuilder.
  [[nodiscard]] static CsrSchedule build(const Circuit& c);
};

}  // namespace scanc::netlist
