#include "netlist/bench_writer.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace scanc::netlist {
namespace {

std::string upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

}  // namespace

void write_bench(const Circuit& c, std::ostream& out) {
  out << "# " << c.name() << "\n";
  out << "# " << c.num_inputs() << " inputs, " << c.num_outputs()
      << " outputs, " << c.num_flip_flops() << " flip-flops, "
      << c.num_gates() << " gates\n";
  for (const NodeId id : c.primary_inputs()) {
    out << "INPUT(" << c.node(id).name << ")\n";
  }
  for (const NodeId id : c.primary_outputs()) {
    out << "OUTPUT(" << c.node(id).name << ")\n";
  }
  out << "\n";
  // Constants and DFFs first (conventional), then combinational gates in
  // topological order.
  for (const Node& n : c.nodes()) {
    if (n.type == GateType::Const0) out << n.name << " = CONST0()\n";
    if (n.type == GateType::Const1) out << n.name << " = CONST1()\n";
  }
  for (const NodeId id : c.flip_flops()) {
    const Node& n = c.node(id);
    out << n.name << " = DFF(" << c.node(n.fanins[0]).name << ")\n";
  }
  for (const NodeId id : c.topo_order()) {
    const Node& n = c.node(id);
    out << n.name << " = " << upper(to_string(n.type)) << "(";
    for (std::size_t i = 0; i < n.fanins.size(); ++i) {
      if (i > 0) out << ", ";
      out << c.node(n.fanins[i]).name;
    }
    out << ")\n";
  }
}

std::string to_bench_string(const Circuit& c) {
  std::ostringstream out;
  write_bench(c, out);
  return out.str();
}

}  // namespace scanc::netlist
