#include "netlist/gate.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace scanc::netlist {
namespace {

constexpr std::array<std::string_view, kNumGateTypes> kNames = {
    "input", "buf", "not", "and",  "nand",   "or",
    "nor",   "xor", "xnor", "dff", "const0", "const1"};

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

}  // namespace

std::string_view to_string(GateType t) noexcept {
  return kNames[static_cast<std::size_t>(t)];
}

std::optional<GateType> gate_type_from_string(std::string_view s) noexcept {
  const std::string key = lower(s);
  // Common .bench aliases.
  if (key == "buff" || key == "buffer") return GateType::Buf;
  if (key == "inv" || key == "inverter") return GateType::Not;
  for (int i = 0; i < kNumGateTypes; ++i) {
    if (key == kNames[static_cast<std::size_t>(i)]) {
      return static_cast<GateType>(i);
    }
  }
  return std::nullopt;
}

}  // namespace scanc::netlist
