#include "netlist/bench_parser.hpp"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

namespace scanc::netlist {
namespace {

/// Upper bound on one logical line.  Real .bench lines are tiny; a line
/// this long means a binary or corrupt file, and rejecting it early
/// keeps hostile inputs from ballooning signal-name allocations.
constexpr std::size_t kMaxLineBytes = 64ull << 20;  // 64 MiB

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '.' || c == '[' || c == ']' || c == '-' || c == '/' ||
         c == '$';
}

// Splits "a, b ,c" into trimmed tokens; rejects empty tokens.
std::vector<std::string_view> split_args(std::string_view args,
                                         std::size_t line) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= args.size(); ++i) {
    if (i == args.size() || args[i] == ',') {
      const std::string_view tok = trim(args.substr(start, i - start));
      if (tok.empty()) {
        throw BenchParseError(line, "empty argument in gate fanin list");
      }
      for (const char c : tok) {
        if (!is_name_char(c)) {
          throw BenchParseError(line, "invalid character in signal name '" +
                                          std::string(tok) + "'");
        }
      }
      out.push_back(tok);
      start = i + 1;
    }
  }
  return out;
}

}  // namespace

Circuit parse_bench(std::string_view text, std::string name) {
  CircuitBuilder builder(std::move(name));
  std::size_t lineno = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = (eol == std::string_view::npos) ? text.size() + 1 : eol + 1;
    ++lineno;
    if (line.size() > kMaxLineBytes) {
      throw BenchParseError(lineno, "line exceeds 64 MiB");
    }

    // Strip comments and whitespace.
    if (const std::size_t hash = line.find('#');
        hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    const std::size_t open = line.find('(');
    const std::size_t close = line.rfind(')');
    if (open == std::string_view::npos || close == std::string_view::npos ||
        close < open) {
      throw BenchParseError(lineno, "expected '(' ... ')'");
    }
    const std::string_view head = trim(line.substr(0, open));
    const std::string_view args = line.substr(open + 1, close - open - 1);
    if (!trim(line.substr(close + 1)).empty()) {
      throw BenchParseError(lineno, "trailing text after ')'");
    }

    const std::size_t eq = head.find('=');
    if (eq == std::string_view::npos) {
      // INPUT(x) or OUTPUT(x)
      const auto kind = gate_type_from_string(head);
      const std::vector<std::string_view> names = split_args(args, lineno);
      if (names.size() != 1) {
        throw BenchParseError(lineno, "INPUT/OUTPUT takes one signal");
      }
      if (kind == GateType::Input) {
        try {
          builder.add_input(names[0]);
        } catch (const std::invalid_argument& e) {
          // e.g. a duplicate INPUT(x): surface it as a parse error with
          // the offending line, like every other builder rejection.
          throw BenchParseError(lineno, e.what());
        }
      } else if (trim(head) == "OUTPUT" || trim(head) == "output" ||
                 trim(head) == "Output") {
        try {
          builder.mark_output(names[0]);
        } catch (const std::invalid_argument& e) {
          throw BenchParseError(lineno, e.what());
        }
      } else {
        throw BenchParseError(lineno,
                              "unknown directive '" + std::string(head) + "'");
      }
      continue;
    }

    // name = GATE(fanins)
    const std::string_view lhs = trim(head.substr(0, eq));
    const std::string_view keyword = trim(head.substr(eq + 1));
    if (lhs.empty()) throw BenchParseError(lineno, "missing signal name");
    for (const char c : lhs) {
      if (!is_name_char(c)) {
        throw BenchParseError(lineno, "invalid character in signal name '" +
                                          std::string(lhs) + "'");
      }
    }
    const auto type = gate_type_from_string(keyword);
    if (!type || *type == GateType::Input) {
      throw BenchParseError(lineno,
                            "unknown gate type '" + std::string(keyword) + "'");
    }
    std::vector<std::string_view> fanins;
    if (!trim(args).empty()) fanins = split_args(args, lineno);
    try {
      builder.add_gate(*type, lhs, fanins);
    } catch (const std::invalid_argument& e) {
      throw BenchParseError(lineno, e.what());
    }
  }
  try {
    return builder.build();
  } catch (const std::invalid_argument& e) {
    throw BenchParseError(lineno, e.what());
  }
}

Circuit parse_bench(std::istream& in, std::string name) {
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_bench(buf.str(), std::move(name));
}

Circuit load_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open bench file: " + path);
  }
  return parse_bench(in, std::filesystem::path(path).stem().string());
}

}  // namespace scanc::netlist
