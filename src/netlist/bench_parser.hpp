// Parser for the ISCAS-85/89 ".bench" netlist format.
//
// Grammar (line oriented):
//   # comment
//   INPUT(name)
//   OUTPUT(name)
//   name = GATE(fanin1, fanin2, ...)
//
// GATE is one of AND, NAND, OR, NOR, NOT, BUF(F), XOR, XNOR, DFF
// (case-insensitive).  Whitespace is insignificant.  Signals may be
// referenced before definition.
#pragma once

#include <istream>
#include <stdexcept>
#include <string>
#include <string_view>

#include "netlist/circuit.hpp"

namespace scanc::netlist {

/// Error thrown on malformed .bench input; carries a 1-based line number.
class BenchParseError : public std::runtime_error {
 public:
  BenchParseError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}

  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Parses a .bench netlist from a string.  `name` becomes Circuit::name().
[[nodiscard]] Circuit parse_bench(std::string_view text,
                                  std::string name = "circuit");

/// Parses a .bench netlist from a stream.
[[nodiscard]] Circuit parse_bench(std::istream& in,
                                  std::string name = "circuit");

/// Reads and parses a .bench file; the circuit name is derived from the
/// file's basename.  Throws std::runtime_error if the file cannot be read.
[[nodiscard]] Circuit load_bench_file(const std::string& path);

}  // namespace scanc::netlist
