// Gate-level sequential circuit graph (ISCAS .bench semantics).
//
// A Circuit is an immutable, validated netlist.  Construct one through
// CircuitBuilder, which checks structural invariants (defined fanins,
// acyclic combinational logic, correct arities) and precomputes the
// derived data every downstream engine needs: fanout lists, a topological
// order of the combinational gates, and levels.
//
// Sequential semantics: each D flip-flop node holds the circuit state.
// Within a clock cycle the DFF node's value is a *source* (the current
// state); the DFF's single fanin is the next-state function, sampled at
// the end of the cycle.  Full-scan access means all DFF values can be set
// (scan-in) and observed (scan-out) directly.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/csr.hpp"
#include "netlist/gate.hpp"

namespace scanc::netlist {

/// Index of a node (signal) within a Circuit.  Dense, 0-based.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// One node: a named signal plus the gate that drives it.
struct Node {
  std::string name;             ///< signal name from the netlist
  GateType type = GateType::Buf;
  std::vector<NodeId> fanins;   ///< driving signals, in declaration order
  std::vector<NodeId> fanouts;  ///< consuming nodes (computed by build())
  std::uint32_t level = 0;      ///< 0 for sources; 1+max(fanin level) else
};

/// Immutable, validated gate-level circuit.
class Circuit {
 public:
  /// Circuit name (e.g. "s27").
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Number of nodes (signals).
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return nodes_.size();
  }

  /// Node accessor.  `id` must be < num_nodes().
  [[nodiscard]] const Node& node(NodeId id) const { return nodes_[id]; }

  /// All nodes, indexed by NodeId.
  [[nodiscard]] std::span<const Node> nodes() const noexcept {
    return nodes_;
  }

  /// Primary inputs, in declaration order.
  [[nodiscard]] std::span<const NodeId> primary_inputs() const noexcept {
    return primary_inputs_;
  }

  /// Primary outputs, in declaration order.
  [[nodiscard]] std::span<const NodeId> primary_outputs() const noexcept {
    return primary_outputs_;
  }

  /// D flip-flops (state variables), in declaration order.  For full-scan
  /// circuits this is also the scan-chain order.
  [[nodiscard]] std::span<const NodeId> flip_flops() const noexcept {
    return flip_flops_;
  }

  /// Number of primary inputs / outputs / state variables.
  [[nodiscard]] std::size_t num_inputs() const noexcept {
    return primary_inputs_.size();
  }
  [[nodiscard]] std::size_t num_outputs() const noexcept {
    return primary_outputs_.size();
  }
  [[nodiscard]] std::size_t num_flip_flops() const noexcept {
    return flip_flops_.size();
  }

  /// Combinational gates (everything that is not a source), in a valid
  /// topological evaluation order.
  [[nodiscard]] std::span<const NodeId> topo_order() const noexcept {
    return topo_order_;
  }

  /// Number of combinational gates.
  [[nodiscard]] std::size_t num_gates() const noexcept {
    return topo_order_.size();
  }

  /// Maximum combinational level (depth).  0 for a circuit with no gates.
  [[nodiscard]] std::uint32_t depth() const noexcept { return depth_; }

  /// Flat CSR connectivity + levelized evaluation order (precomputed by
  /// build()).  The simulation kernels run off this instead of the
  /// per-Node vectors.
  [[nodiscard]] const CsrSchedule& csr() const noexcept { return csr_; }

  /// Looks up a node by name; returns kNoNode if absent.
  [[nodiscard]] NodeId find(std::string_view name) const;

  /// True if `id` is designated as a primary output.
  [[nodiscard]] bool is_primary_output(NodeId id) const {
    return is_output_[id];
  }

 private:
  friend class CircuitBuilder;

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<NodeId> primary_inputs_;
  std::vector<NodeId> primary_outputs_;
  std::vector<NodeId> flip_flops_;
  std::vector<NodeId> topo_order_;
  std::vector<char> is_output_;
  std::unordered_map<std::string, NodeId> by_name_;
  std::uint32_t depth_ = 0;
  CsrSchedule csr_;
};

/// Incremental builder for Circuit.  Names may be referenced before they
/// are defined (forward references), as .bench files require; build()
/// verifies every referenced name was eventually defined.
///
/// Throws std::invalid_argument on structural errors (duplicate
/// definition, undefined fanin, wrong arity, combinational cycle).
class CircuitBuilder {
 public:
  explicit CircuitBuilder(std::string circuit_name = "circuit");

  /// Declares a primary input.  Returns its NodeId.
  NodeId add_input(std::string_view name);

  /// Defines a gate driving signal `name` from the given fanin names.
  /// `type` must not be Input (use add_input).  Returns the NodeId.
  NodeId add_gate(GateType type, std::string_view name,
                  std::span<const std::string_view> fanins);

  /// Convenience overload taking an initializer list of fanin names.
  NodeId add_gate(GateType type, std::string_view name,
                  std::initializer_list<std::string_view> fanins);

  /// Defines a gate by fanin NodeIds (for programmatic construction).
  NodeId add_gate_ids(GateType type, std::string_view name,
                      std::span<const NodeId> fanins);

  /// Marks a signal (defined before or after this call) as primary output.
  void mark_output(std::string_view name);

  /// Number of nodes added so far.
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

  /// Validates and finalizes.  The builder is left in a moved-from state.
  [[nodiscard]] Circuit build();

 private:
  NodeId intern(std::string_view name);
  NodeId define(GateType type, std::string_view name);

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<char> defined_;
  std::vector<std::string> output_names_;
  std::unordered_map<std::string, NodeId> by_name_;
};

/// Summary statistics for reporting.
struct CircuitStats {
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  std::size_t flip_flops = 0;
  std::size_t gates = 0;  ///< combinational gates
  std::uint32_t depth = 0;
};

/// Computes summary statistics.
[[nodiscard]] CircuitStats stats(const Circuit& c);

}  // namespace scanc::netlist
