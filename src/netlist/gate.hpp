// Gate types for ISCAS-style gate-level netlists.
//
// The netlist model is signal-centric: every node in a Circuit is a named
// signal together with the gate that drives it.  Primary inputs and D
// flip-flop outputs are sources within a clock cycle; all other gate types
// are combinational.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace scanc::netlist {

/// The function computed by the gate driving a signal.
enum class GateType : std::uint8_t {
  Input,   ///< primary input; no fanins
  Buf,     ///< identity; exactly one fanin
  Not,     ///< inversion; exactly one fanin
  And,     ///< n-ary AND, n >= 1
  Nand,    ///< n-ary NAND, n >= 1
  Or,      ///< n-ary OR, n >= 1
  Nor,     ///< n-ary NOR, n >= 1
  Xor,     ///< n-ary XOR (odd parity), n >= 1
  Xnor,    ///< n-ary XNOR (even parity), n >= 1
  Dff,     ///< D flip-flop output; one fanin (next-state); source in-cycle
  Const0,  ///< constant 0; no fanins
  Const1,  ///< constant 1; no fanins
};

/// Number of distinct gate types (for table-driven code).
inline constexpr int kNumGateTypes = 12;

/// True for gate types that act as value sources within a single clock
/// cycle (their value is not computed from fanins in the current frame).
[[nodiscard]] constexpr bool is_source(GateType t) noexcept {
  return t == GateType::Input || t == GateType::Dff ||
         t == GateType::Const0 || t == GateType::Const1;
}

/// True for combinational gate types (evaluated from fanins every frame).
[[nodiscard]] constexpr bool is_combinational(GateType t) noexcept {
  return !is_source(t);
}

/// True if the gate type admits an arbitrary number (>= 1) of fanins.
[[nodiscard]] constexpr bool is_nary(GateType t) noexcept {
  switch (t) {
    case GateType::And:
    case GateType::Nand:
    case GateType::Or:
    case GateType::Nor:
    case GateType::Xor:
    case GateType::Xnor:
      return true;
    default:
      return false;
  }
}

/// Exact fanin count required by the gate type, or -1 for n-ary types.
[[nodiscard]] constexpr int required_fanins(GateType t) noexcept {
  switch (t) {
    case GateType::Input:
    case GateType::Const0:
    case GateType::Const1:
      return 0;
    case GateType::Buf:
    case GateType::Not:
    case GateType::Dff:
      return 1;
    default:
      return -1;
  }
}

/// True if the gate has a controlling value: one input at that value fixes
/// the output regardless of the others (AND/NAND: 0, OR/NOR: 1).
[[nodiscard]] constexpr bool has_controlling_value(GateType t) noexcept {
  switch (t) {
    case GateType::And:
    case GateType::Nand:
    case GateType::Or:
    case GateType::Nor:
      return true;
    default:
      return false;
  }
}

/// Controlling input value for AND/NAND/OR/NOR; unspecified otherwise.
[[nodiscard]] constexpr bool controlling_value(GateType t) noexcept {
  return t == GateType::Or || t == GateType::Nor;
}

/// True if the gate inverts (NOT/NAND/NOR/XNOR).
[[nodiscard]] constexpr bool is_inverting(GateType t) noexcept {
  switch (t) {
    case GateType::Not:
    case GateType::Nand:
    case GateType::Nor:
    case GateType::Xnor:
      return true;
    default:
      return false;
  }
}

/// Canonical lower-case name used in .bench files ("and", "dff", ...).
[[nodiscard]] std::string_view to_string(GateType t) noexcept;

/// Parses a .bench gate keyword (case-insensitive).  Returns std::nullopt
/// for unknown keywords.
[[nodiscard]] std::optional<GateType> gate_type_from_string(
    std::string_view s) noexcept;

}  // namespace scanc::netlist
