// Structural analysis utilities over Circuit: cones, supports, duplicate
// detection and shape statistics.  Shared by ATPG heuristics, the
// synthetic-circuit generator's quality checks, and the examples.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "netlist/circuit.hpp"
#include "util/bitset.hpp"

namespace scanc::netlist {

/// Transitive fanin cone of `node` (inclusive), as a node-indexed set.
/// The cone stops at sources: flip-flop outputs are not traversed into
/// their next-state logic (single-cycle view).
[[nodiscard]] util::Bitset fanin_cone(const Circuit& c, NodeId node);

/// Transitive fanout cone of `node` (inclusive).  Traversal stops at
/// flip-flops (their D pin is a capture point, not an in-cycle signal).
[[nodiscard]] util::Bitset fanout_cone(const Circuit& c, NodeId node);

/// Input support of `node`: the primary inputs and flip-flop outputs in
/// its fanin cone, in declaration order.
[[nodiscard]] std::vector<NodeId> support(const Circuit& c, NodeId node);

/// Pairs of structurally identical gates (same type, same fanin multiset)
/// — redundant logic a synthesis step would merge.  Each duplicate is
/// reported once, paired with its earliest structural twin.
[[nodiscard]] std::vector<std::pair<NodeId, NodeId>> duplicate_gates(
    const Circuit& c);

/// Shape statistics for reporting.
struct ShapeStats {
  std::size_t max_fanout = 0;
  double avg_fanout = 0.0;       ///< over driving nodes with fanout > 0
  std::size_t max_fanin = 0;
  double avg_fanin = 0.0;        ///< over combinational gates
  std::size_t fanout_stems = 0;  ///< nodes with fanout > 1
};

[[nodiscard]] ShapeStats shape_stats(const Circuit& c);

}  // namespace scanc::netlist
