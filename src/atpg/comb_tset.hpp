// Compact combinational test-set generation (the paper's test set C).
//
// The DAC-2001 procedure consumes a complete, compact combinational test
// set C for the scan view of the circuit: scan-in candidates come from
// the state parts of C's tests (Phase 1), and top-off tests come from C
// itself (Phase 3).  The paper took C from minimal-test-set work [9] for
// ISCAS-89 and from random-pattern selection for ITC-99; this module
// provides both sources:
//
//   generate_comb_test_set        — deterministic PODEM with fault
//                                   dropping, then reverse-order static
//                                   compaction (the [9] substitute), and
//   generate_random_comb_test_set — greedy selection out of a large
//                                   random-pattern pool, then the same
//                                   reverse-order compaction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "atpg/dalg.hpp"
#include "atpg/podem.hpp"
#include "atpg/sat_backend.hpp"
#include "fault/fault_sim.hpp"
#include "util/cancel.hpp"

namespace scanc::atpg {

/// One fully-specified combinational (scan) test.
struct CombTest {
  sim::Vector3 state;   ///< scan-in part c_js (flip_flops() order)
  sim::Vector3 inputs;  ///< primary-input part c_jp
};

/// A combinational test set plus coverage bookkeeping.
struct CombTestSet {
  std::vector<CombTest> tests;
  fault::FaultSet detected;       ///< classes detected by the final set
  /// Classes proven untestable (search exhausted / SAT proof).  Sized
  /// num_classes whenever `detected` is; `untestable.count()` equals
  /// `proven_untestable`.  Downstream phases may drop these classes
  /// from their fault universe: no scan test of any length detects a
  /// combinationally-redundant fault under full scan.
  fault::FaultSet untestable;
  std::size_t proven_untestable = 0;  ///< search exhausted: no test exists
  std::size_t aborted = 0;        ///< ATPG hit its backtrack/conflict limit

  /// Classes detectable as far as this generation run could prove:
  /// detected plus aborted (unresolved) classes, i.e. everything not
  /// proven untestable.
  [[nodiscard]] std::size_t num_tests() const noexcept {
    return tests.size();
  }
};

/// Static compaction applied to the generated set.
enum class TestSetCompaction : std::uint8_t {
  None,
  ReverseOrder,  ///< classic reverse-order redundancy drop
  GreedyCover,   ///< greedy set cover over per-test detection sets, then
                 ///< a reverse-order polish (default; smallest sets)
};

/// Which ATPG engine generates the test cubes.
enum class AtpgEngine : std::uint8_t { Podem, Dalg };

/// Options for test-set generation.
struct CombTestSetOptions {
  std::uint64_t seed = 1;           ///< random fill / pattern pool seed
  AtpgEngine engine = AtpgEngine::Podem;
  PodemOptions podem;               ///< PODEM search bounds
  DalgOptions dalg;                 ///< D-algorithm search bounds
  /// Backend selection (docs/atpg.md): Podem runs `engine` alone; Sat
  /// sends every target straight to the SAT backend; Auto runs `engine`
  /// first and falls back to SAT only for targets it aborts on, so
  /// every fault ends the run Detected or proven Untestable (up to the
  /// SAT conflict limit).
  AtpgBackend backend = AtpgBackend::Podem;
  /// SAT backend bounds.  `sat.scan_mask` and `sat.cancel` are
  /// overridden with `podem.scan_mask` and `cancel` below so all
  /// engines see one scan configuration and one cancellation signal.
  SatBackendOptions sat;
  TestSetCompaction compaction = TestSetCompaction::GreedyCover;
  std::size_t random_pool = 4096;   ///< pool size for the random source
  /// N-detect: drop a fault from the target list only after this many
  /// distinct tests detect it.  N > 1 yields larger sets that catch more
  /// unmodeled defects (compaction then preserves N detections per
  /// fault).  Standard value 1.
  std::size_t n_detect = 1;
  /// Generate targets only at checkpoint faults (primary inputs and
  /// fanout branches).  By the checkpoint theorem a combinational test
  /// set detecting all checkpoint faults detects all stuck-at faults;
  /// coverage is still *measured* on every fault, so the reported
  /// `detected` set is exact.  Cuts PODEM calls substantially on wide
  /// circuits.
  bool checkpoints_only = false;
  /// Cooperative cancellation, polled between per-fault targets.  A
  /// cancelled run returns the tests generated so far — callers that
  /// observe the raised token must discard the truncated set (the
  /// experiment runner does; see its phase checks).
  util::CancelToken cancel;
};

/// Deterministic ATPG test set: one PODEM call per still-undetected
/// collapsed fault class, fault dropping after every generated test.
[[nodiscard]] CombTestSet generate_comb_test_set(
    const netlist::Circuit& circuit, const fault::FaultList& faults,
    const CombTestSetOptions& options = {});

/// Random-selection test set: draws `options.random_pool` random
/// (state, input) patterns and keeps those that detect new faults.
/// Coverage is whatever the pool achieves (no untestability proofs).
[[nodiscard]] CombTestSet generate_random_comb_test_set(
    const netlist::Circuit& circuit, const fault::FaultList& faults,
    const CombTestSetOptions& options = {});

/// Applies one combinational test as a length-one scan test and returns
/// the classes it detects among `targets`.
[[nodiscard]] fault::FaultSet detect_comb_test(
    fault::FaultSimulator& fsim, const CombTest& test,
    const fault::FaultSet* targets = nullptr);

/// Batch form of detect_comb_test: one detection set per test, in
/// order, routed through the simulator's pattern-parallel (PPSFP) path
/// — bit-identical to calling detect_comb_test on each.
[[nodiscard]] std::vector<fault::FaultSet> detect_comb_tests(
    fault::FaultSimulator& fsim, std::span<const CombTest> tests,
    const fault::FaultSet* targets = nullptr);

}  // namespace scanc::atpg
