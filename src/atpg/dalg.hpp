// The D-algorithm (Roth, 1966) over the full-scan combinational view —
// the library's second ATPG engine, used to cross-validate PODEM and as
// an alternative for circuits where PODEM's input-only decisions thrash.
//
// Unlike PODEM, the D-algorithm makes decisions on internal lines: it
// maintains a J-frontier of assigned-but-unjustified gates and a
// D-frontier of gates a fault effect could still pass, alternating
// error-propagation decisions with line-justification decisions, with
// chronological backtracking over an assignment trail.
//
// Values are Roth's 5-valued composites (atpg/val5.hpp).  Branch faults
// are modeled by transforming the faulty value seen at the faulty fanin
// pin; stem faults by forcing the faulty component of the site's output.
//
// Same result contract as PODEM: Detected / Untestable (search space
// exhausted) / Aborted (backtrack limit).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "atpg/podem.hpp"  // PodemResult/TestCube/PodemOptions shapes
#include "atpg/val5.hpp"
#include "fault/fault.hpp"
#include "netlist/circuit.hpp"
#include "util/bitset.hpp"

namespace scanc::atpg {

struct DalgOptions {
  std::uint32_t backtrack_limit = 4000;
  /// Justification gives up on gates with more unknown inputs than this
  /// (enumeration is 2^k); such faults abort.
  std::size_t max_enum_inputs = 8;
  /// Partial scan (same semantics as PodemOptions::scan_mask): unscanned
  /// flip-flops are unassignable (their Q stays X) and unobservable at
  /// their D line.  Empty means full scan.
  util::Bitset scan_mask;
};

/// D-algorithm test generator.
class Dalg {
 public:
  explicit Dalg(const netlist::Circuit& circuit, DalgOptions options = {});

  /// Attempts to generate a test cube for `fault`.
  [[nodiscard]] PodemResult generate(const fault::Fault& fault);

 private:
  struct TrailEntry {
    netlist::NodeId node;
    V5 previous;
  };

  void set_value(netlist::NodeId id, V5 v);
  void undo_to(std::size_t mark);
  [[nodiscard]] V5 eval(netlist::NodeId id, const fault::Fault& fault) const;
  /// Runs implication to a fixed point; false on conflict.
  [[nodiscard]] bool imply(const fault::Fault& fault);
  [[nodiscard]] bool error_observed() const;
  [[nodiscard]] bool solve(const fault::Fault& fault,
                           std::uint32_t& backtracks, bool& aborted);

  void compute_cone(const fault::Fault& fault);

  const netlist::Circuit* circuit_;
  DalgOptions options_;
  std::vector<V5> value_;
  std::vector<TrailEntry> trail_;
  /// Fanout cone of the fault site: the only lines that may legally
  /// carry D/D'.  Backward implication demanding an error value outside
  /// the cone is a conflict.
  std::vector<char> in_cone_;
  std::vector<char> assignable_;     // per node: PI or scanned FF Q
  std::vector<char> observable_ff_;  // per FF index: D line observed
};

}  // namespace scanc::atpg
