#include "atpg/dalg.hpp"

#include <algorithm>

namespace scanc::atpg {

using fault::Fault;
using netlist::Circuit;
using netlist::GateType;
using netlist::Node;
using netlist::NodeId;

namespace {

/// Value seen past a stuck branch: the good component passes, the faulty
/// component is the stuck value.
V5 transform_branch(V5 actual, bool stuck_one) {
  return compose(good_of(actual),
                 stuck_one ? sim::V3::One : sim::V3::Zero);
}

/// n-ary composite evaluation of a plain (fault-free) gate function.
V5 eval_plain(GateType type, const V5* vals, std::size_t n) {
  V5 acc = vals[0];
  switch (type) {
    case GateType::Buf:
      return acc;
    case GateType::Not:
      return v5_not(acc);
    case GateType::And:
    case GateType::Nand:
      for (std::size_t i = 1; i < n; ++i) acc = v5_and(acc, vals[i]);
      return type == GateType::Nand ? v5_not(acc) : acc;
    case GateType::Or:
    case GateType::Nor:
      for (std::size_t i = 1; i < n; ++i) acc = v5_or(acc, vals[i]);
      return type == GateType::Nor ? v5_not(acc) : acc;
    case GateType::Xor:
    case GateType::Xnor:
      for (std::size_t i = 1; i < n; ++i) acc = v5_xor(acc, vals[i]);
      return type == GateType::Xnor ? v5_not(acc) : acc;
    default:
      return V5::X;
  }
}

}  // namespace

Dalg::Dalg(const Circuit& circuit, DalgOptions options)
    : circuit_(&circuit),
      options_(options),
      value_(circuit.num_nodes(), V5::X),
      in_cone_(circuit.num_nodes(), 0),
      assignable_(circuit.num_nodes(), 0),
      observable_ff_(circuit.num_flip_flops(), 1) {
  for (const NodeId id : circuit.primary_inputs()) assignable_[id] = 1;
  const auto ffs = circuit.flip_flops();
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    const bool scanned =
        options_.scan_mask.empty() || options_.scan_mask.test(i);
    observable_ff_[i] = scanned ? 1 : 0;
    assignable_[ffs[i]] = scanned ? 1 : 0;
  }
}

void Dalg::compute_cone(const Fault& fault) {
  std::fill(in_cone_.begin(), in_cone_.end(), 0);
  std::vector<NodeId> stack;
  const auto push = [&](NodeId id) {
    if (!in_cone_[id]) {
      in_cone_[id] = 1;
      stack.push_back(id);
    }
  };
  // Stem faults corrupt the site node's own signal; branch faults only
  // the fed gate's output onward.
  push(fault.pin == sim::kStemPin ? fault.node : fault.node);
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    for (const NodeId out : circuit_->node(id).fanouts) {
      // A flip-flop consumer is a capture point, not an in-frame signal.
      if (circuit_->node(out).type == GateType::Dff) continue;
      push(out);
    }
  }
}

void Dalg::set_value(NodeId id, V5 v) {
  trail_.push_back(TrailEntry{id, value_[id]});
  value_[id] = v;
}

void Dalg::undo_to(std::size_t mark) {
  while (trail_.size() > mark) {
    value_[trail_.back().node] = trail_.back().previous;
    trail_.pop_back();
  }
}

V5 Dalg::eval(NodeId id, const Fault& fault) const {
  const Node& n = circuit_->node(id);
  V5 vals[8];
  const std::size_t nf = std::min<std::size_t>(n.fanins.size(), 8);
  // Wide gates are folded progressively below for n > 8.
  V5 folded = V5::X;
  bool use_folded = n.fanins.size() > 8;
  if (!use_folded) {
    for (std::size_t p = 0; p < nf; ++p) {
      V5 v = value_[n.fanins[p]];
      if (fault.node == id && fault.pin == static_cast<std::int32_t>(p)) {
        v = transform_branch(v, fault.value);
      }
      vals[p] = v;
    }
  } else {
    // Rare n-ary case: fold with the same per-pin transformation.
    for (std::size_t p = 0; p < n.fanins.size(); ++p) {
      V5 v = value_[n.fanins[p]];
      if (fault.node == id && fault.pin == static_cast<std::int32_t>(p)) {
        v = transform_branch(v, fault.value);
      }
      if (p == 0) {
        folded = v;
        continue;
      }
      switch (n.type) {
        case GateType::And:
        case GateType::Nand:
          folded = v5_and(folded, v);
          break;
        case GateType::Or:
        case GateType::Nor:
          folded = v5_or(folded, v);
          break;
        default:
          folded = v5_xor(folded, v);
          break;
      }
    }
  }
  V5 out = use_folded
               ? (netlist::is_inverting(n.type) ? v5_not(folded) : folded)
               : eval_plain(n.type, vals, nf);
  if (fault.node == id && fault.pin == sim::kStemPin) {
    out = compose(good_of(out),
                  fault.value ? sim::V3::One : sim::V3::Zero);
  }
  return out;
}

bool Dalg::imply(const Fault& fault) {
  bool conflict = false;
  // Backward assignment with the cone rule: only the fault site's fanout
  // cone may carry an error value.
  const auto backward_set = [&](NodeId in, V5 want, bool& changed) {
    if (value_[in] == want) return;
    const bool unassignable_source =
        netlist::is_source(circuit_->node(in).type) && !assignable_[in] &&
        circuit_->node(in).type != GateType::Const0 &&
        circuit_->node(in).type != GateType::Const1;
    if (value_[in] != V5::X || (is_error(want) && !in_cone_[in]) ||
        unassignable_source) {
      conflict = true;
      return;
    }
    set_value(in, want);
    changed = true;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (const NodeId id : circuit_->topo_order()) {
      if (conflict) return false;
      const Node& n = circuit_->node(id);
      const V5 ev = eval(id, fault);
      const V5 v = value_[id];
      if (ev != V5::X) {
        if (v == V5::X) {
          set_value(id, ev);
          changed = true;
        } else if (v != ev) {
          return false;  // conflict
        }
        continue;
      }
      if (v == V5::X || fault.node == id) {
        // Unassigned output, or the fault gate (left to justification —
        // backward reasoning through the transformation is not worth the
        // complexity).
        continue;
      }
      // Backward implication for an assigned-but-unimplied output.
      switch (n.type) {
        case GateType::Buf:
        case GateType::Not: {
          const V5 want = n.type == GateType::Not ? v5_not(v) : v;
          backward_set(n.fanins[0], want, changed);
          break;
        }
        case GateType::And:
        case GateType::Nand:
        case GateType::Or:
        case GateType::Nor: {
          const bool or_like =
              n.type == GateType::Or || n.type == GateType::Nor;
          const V5 inner = netlist::is_inverting(n.type) ? v5_not(v) : v;
          const V5 all_value = or_like ? V5::Zero : V5::One;
          if (inner == all_value) {
            // Every input is forced to the non-controlling value.
            for (const NodeId in : n.fanins) {
              backward_set(in, all_value, changed);
            }
          } else if (inner == (or_like ? V5::One : V5::Zero)) {
            // One controlling input needed: force only the last X input
            // when every other input is the non-controlling value.
            NodeId last_x = netlist::kNoNode;
            bool others_noncontrolling = true;
            for (const NodeId in : n.fanins) {
              if (value_[in] == V5::X) {
                if (last_x != netlist::kNoNode) {
                  others_noncontrolling = false;
                  break;
                }
                last_x = in;
              } else if (value_[in] != all_value) {
                others_noncontrolling = false;
                break;
              }
            }
            if (others_noncontrolling && last_x != netlist::kNoNode) {
              backward_set(last_x, or_like ? V5::One : V5::Zero, changed);
            }
          }
          break;
        }
        case GateType::Xor:
        case GateType::Xnor: {
          // With one X input and the rest assigned, solve for it.
          NodeId last_x = netlist::kNoNode;
          V5 fold = n.type == GateType::Xnor ? V5::One : V5::Zero;
          bool single = true;
          for (const NodeId in : n.fanins) {
            if (value_[in] == V5::X) {
              if (last_x != netlist::kNoNode) {
                single = false;
                break;
              }
              last_x = in;
            } else {
              fold = v5_xor(fold, value_[in]);
            }
          }
          if (single && last_x != netlist::kNoNode && fold != V5::X) {
            const V5 want = v5_xor(fold, v);
            if (want != V5::X) backward_set(last_x, want, changed);
          }
          break;
        }
        default:
          break;
      }
    }
  }
  return !conflict;
}

bool Dalg::error_observed() const {
  for (const NodeId po : circuit_->primary_outputs()) {
    if (is_error(value_[po])) return true;
  }
  const auto ffs = circuit_->flip_flops();
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    if (!observable_ff_[i]) continue;
    if (is_error(value_[circuit_->node(ffs[i]).fanins[0]])) return true;
  }
  return false;
}

bool Dalg::solve(const Fault& fault, std::uint32_t& backtracks,
                 bool& aborted) {
  if (backtracks > options_.backtrack_limit) {
    aborted = true;
    return false;
  }
  const std::size_t mark = trail_.size();
  if (!imply(fault)) {
    ++backtracks;
    undo_to(mark);
    return false;
  }

  // Collect the frontiers.
  std::vector<NodeId> unjustified;
  std::vector<NodeId> dfrontier;
  for (const NodeId id : circuit_->topo_order()) {
    const V5 ev = eval(id, fault);
    if (value_[id] != V5::X) {
      if (ev == V5::X) unjustified.push_back(id);
      continue;
    }
    if (ev != V5::X) continue;  // will be implied, not a choice point
    bool error_in = false;
    const Node& n = circuit_->node(id);
    for (std::size_t p = 0; p < n.fanins.size() && !error_in; ++p) {
      V5 v = value_[n.fanins[p]];
      if (fault.node == id && fault.pin == static_cast<std::int32_t>(p)) {
        v = transform_branch(v, fault.value);
      }
      error_in = is_error(v);
    }
    if (error_in) dfrontier.push_back(id);
  }

  // Observation check, including the (ff, 0) branch-fault capture.
  bool observed = error_observed();
  if (!observed && fault.pin == 0 &&
      circuit_->node(fault.node).type == GateType::Dff) {
    observed = is_error(transform_branch(
        value_[circuit_->node(fault.node).fanins[0]], fault.value));
  }

  if (observed) {
    if (unjustified.empty()) return true;
    // Justify the deepest unjustified gate by enumerating its X inputs.
    const NodeId g = unjustified.back();
    const Node& n = circuit_->node(g);
    std::vector<NodeId> xs;
    for (const NodeId in : n.fanins) {
      // Unassignable sources (unscanned flip-flops) stay X; the
      // enumeration may still justify through the other inputs.
      if (value_[in] == V5::X &&
          (!netlist::is_source(circuit_->node(in).type) ||
           assignable_[in])) {
        xs.push_back(in);
      }
    }
    if (xs.empty() || xs.size() > options_.max_enum_inputs) {
      aborted = aborted || xs.size() > options_.max_enum_inputs;
      ++backtracks;
      undo_to(mark);
      return false;
    }
    for (std::uint64_t combo = 0; combo < (1ull << xs.size()); ++combo) {
      const std::size_t inner = trail_.size();
      for (std::size_t b = 0; b < xs.size(); ++b) {
        set_value(xs[b], v5_from_bool((combo >> b) & 1));
      }
      if (eval(g, fault) == value_[g] && solve(fault, backtracks, aborted)) {
        return true;
      }
      ++backtracks;
      undo_to(inner);
      if (aborted) break;
    }
    undo_to(mark);
    return false;
  }

  // Not observed: propagate through some D-frontier gate.
  if (dfrontier.empty()) {
    ++backtracks;
    undo_to(mark);
    return false;
  }
  for (const NodeId g : dfrontier) {
    const Node& n = circuit_->node(g);
    std::vector<NodeId> xs;
    for (const NodeId in : n.fanins) {
      if (value_[in] == V5::X &&
          (!netlist::is_source(circuit_->node(in).type) ||
           assignable_[in])) {
        xs.push_back(in);
      }
    }
    if (netlist::has_controlling_value(n.type)) {
      // AND/NAND/OR/NOR: the only propagating side-input assignment is
      // all-non-controlling.
      const std::size_t inner = trail_.size();
      const V5 nc = v5_from_bool(!netlist::controlling_value(n.type));
      for (const NodeId in : xs) set_value(in, nc);
      if (solve(fault, backtracks, aborted)) return true;
      ++backtracks;
      undo_to(inner);
    } else {
      // XOR-family (and BUF/NOT degenerate cases): every binary
      // side-input combination propagates the error; a specific one may
      // conflict with other constraints, so enumerate them.
      if (xs.size() > options_.max_enum_inputs) {
        aborted = true;
        break;
      }
      for (std::uint64_t combo = 0; combo < (1ull << xs.size()); ++combo) {
        const std::size_t inner = trail_.size();
        for (std::size_t b = 0; b < xs.size(); ++b) {
          set_value(xs[b], v5_from_bool((combo >> b) & 1));
        }
        if (solve(fault, backtracks, aborted)) return true;
        ++backtracks;
        undo_to(inner);
        if (aborted) break;
      }
    }
    if (aborted) break;
  }
  undo_to(mark);
  return false;
}

PodemResult Dalg::generate(const Fault& fault) {
  PodemResult result;
  std::fill(value_.begin(), value_.end(), V5::X);
  trail_.clear();
  for (NodeId id = 0; id < circuit_->num_nodes(); ++id) {
    if (circuit_->node(id).type == GateType::Const0) value_[id] = V5::Zero;
    if (circuit_->node(id).type == GateType::Const1) value_[id] = V5::One;
  }

  // Fault-site setup.  A site or activation line that is an unassignable
  // source (unscanned flip-flop output) can never be driven to the
  // activation value in the single-frame scan view.
  compute_cone(fault);
  const auto unassignable_source = [&](NodeId id) {
    const GateType t = circuit_->node(id).type;
    return netlist::is_source(t) && t != GateType::Const0 &&
           t != GateType::Const1 && !assignable_[id];
  };
  if (fault.pin == sim::kStemPin) {
    const V5 site = fault.value ? V5::Db : V5::D;
    if ((value_[fault.node] != V5::X && value_[fault.node] != site) ||
        unassignable_source(fault.node)) {
      result.status = PodemStatus::Untestable;  // constant/unknown site
      return result;
    }
    set_value(fault.node, site);
  } else {
    const NodeId driver = circuit_->node(fault.node).fanins[fault.pin];
    const V5 want = v5_from_bool(!fault.value);
    if ((value_[driver] != V5::X && value_[driver] != want) ||
        unassignable_source(driver)) {
      result.status = PodemStatus::Untestable;
      return result;
    }
    set_value(driver, want);
  }

  std::uint32_t backtracks = 0;
  bool aborted = false;
  const bool found = solve(fault, backtracks, aborted);
  result.backtracks = backtracks;
  if (found) {
    result.status = PodemStatus::Detected;
    for (const NodeId id : circuit_->primary_inputs()) {
      result.cube.inputs.push_back(good_of(value_[id]));
    }
    for (const NodeId id : circuit_->flip_flops()) {
      result.cube.state.push_back(good_of(value_[id]));
    }
    return result;
  }
  result.status = aborted ? PodemStatus::Aborted : PodemStatus::Untestable;
  return result;
}

}  // namespace scanc::atpg
