#include "atpg/comb_tset.hpp"

#include <algorithm>
#include <memory>

#include "util/rng.hpp"
#include "util/telemetry.hpp"

namespace scanc::atpg {

using fault::FaultClassId;
using fault::FaultList;
using fault::FaultSet;
using fault::FaultSimulator;
using netlist::Circuit;

fault::FaultSet detect_comb_test(FaultSimulator& fsim, const CombTest& test,
                                 const FaultSet* targets) {
  sim::Sequence seq;
  seq.frames.push_back(test.inputs);
  return fsim.detect_scan_test(test.state, seq, targets);
}

std::vector<fault::FaultSet> detect_comb_tests(FaultSimulator& fsim,
                                               std::span<const CombTest> tests,
                                               const FaultSet* targets) {
  std::vector<sim::Sequence> seqs(tests.size());
  std::vector<FaultSimulator::BatchTest> batch(tests.size());
  for (std::size_t j = 0; j < tests.size(); ++j) {
    seqs[j].frames.push_back(tests[j].inputs);
    batch[j] = {&tests[j].state, &seqs[j]};
  }
  return fsim.detect_batch(batch, targets);
}

namespace {

/// Fills X positions with random binary values, except at unscanned
/// flip-flop positions (partial scan), which must stay X.
void randomize_state(sim::Vector3& state, const util::Bitset& scan_mask,
                     util::Rng& rng) {
  for (std::size_t i = 0; i < state.size(); ++i) {
    const bool scanned = scan_mask.empty() || scan_mask.test(i);
    if (!scanned) {
      state[i] = sim::V3::X;
    } else if (state[i] == sim::V3::X) {
      state[i] = sim::v3_from_bool(rng.coin());
    }
  }
}

/// Per-class outstanding detection requirements.  For N-detect sets the
/// compactors must preserve min(N, achievable) detections per fault, so
/// all compaction below is count-based (N = 1 reduces to plain sets).
using Needs = std::vector<std::uint32_t>;

Needs requirement_counts(const std::vector<FaultSet>& det,
                         std::size_t num_classes, std::size_t n_detect) {
  Needs needs(num_classes, 0);
  for (const FaultSet& d : det) {
    d.for_each([&](std::size_t f) {
      if (needs[f] < n_detect) ++needs[f];
    });
  }
  return needs;
}

/// Number of outstanding requirements this test helps with.
std::size_t gain_of(const FaultSet& det, const Needs& needs) {
  std::size_t gain = 0;
  det.for_each([&](std::size_t f) { gain += needs[f] > 0 ? 1 : 0; });
  return gain;
}

void consume(const FaultSet& det, Needs& needs) {
  det.for_each([&](std::size_t f) {
    if (needs[f] > 0) --needs[f];
  });
}

/// Reverse-order static compaction: keep a test only if some fault still
/// needs it.  Preserves min(N, achievable) detections per fault.
void reverse_compact(FaultSimulator& fsim, std::vector<CombTest>& tests,
                     std::size_t num_classes, std::size_t n_detect) {
  const std::vector<FaultSet> det = detect_comb_tests(fsim, tests);
  Needs needs = requirement_counts(det, num_classes, n_detect);
  std::vector<CombTest> kept;
  for (std::size_t j = tests.size(); j-- > 0;) {
    if (gain_of(det[j], needs) > 0) {
      kept.push_back(std::move(tests[j]));
      consume(det[j], needs);
    }
  }
  std::reverse(kept.begin(), kept.end());
  tests = std::move(kept);
}

/// Greedy cover over the tests' full detection sets: repeatedly keep the
/// test satisfying the most outstanding requirements.  Produces smaller
/// sets than reverse order alone (the substitute for the minimal test
/// sets of [9]); a reverse-order pass afterwards polishes stragglers.
void greedy_cover_compact(FaultSimulator& fsim,
                          std::vector<CombTest>& tests,
                          std::size_t num_classes, std::size_t n_detect) {
  const std::vector<FaultSet> det = detect_comb_tests(fsim, tests);
  Needs needs = requirement_counts(det, num_classes, n_detect);
  std::vector<CombTest> kept;
  std::vector<char> used(tests.size(), 0);
  for (;;) {
    std::size_t best = tests.size();
    std::size_t best_gain = 0;
    for (std::size_t j = 0; j < tests.size(); ++j) {
      if (used[j]) continue;
      const std::size_t gain = gain_of(det[j], needs);
      if (gain > best_gain) {
        best = j;
        best_gain = gain;
      }
    }
    if (best == tests.size()) break;  // nothing else helps
    used[best] = 1;
    kept.push_back(tests[best]);
    consume(det[best], needs);
  }
  tests = std::move(kept);
  reverse_compact(fsim, tests, num_classes, n_detect);
}

void compact(FaultSimulator& fsim, std::vector<CombTest>& tests,
             std::size_t num_classes, const CombTestSetOptions& options) {
  switch (options.compaction) {
    case TestSetCompaction::None:
      break;
    case TestSetCompaction::ReverseOrder:
      reverse_compact(fsim, tests, num_classes,
                      std::max<std::size_t>(options.n_detect, 1));
      break;
    case TestSetCompaction::GreedyCover:
      greedy_cover_compact(fsim, tests, num_classes,
                           std::max<std::size_t>(options.n_detect, 1));
      break;
  }
}

/// True if the representative fault of `id` is a checkpoint fault in the
/// scan view: a fanout-branch fault, or a stem fault on a primary input
/// or flip-flop output (the view's inputs).
bool is_checkpoint(const FaultList& faults, const Circuit& circuit,
                   fault::FaultClassId id) {
  const fault::Fault& f = faults.representative(id);
  if (f.pin != sim::kStemPin) return true;
  const netlist::GateType t = circuit.node(f.node).type;
  return t == netlist::GateType::Input || t == netlist::GateType::Dff;
}

}  // namespace

CombTestSet generate_comb_test_set(const Circuit& circuit,
                                   const FaultList& faults,
                                   const CombTestSetOptions& options) {
  const util::Bitset& mask = options.podem.scan_mask;
  FaultSimulator fsim(circuit, faults,
                      mask.empty()
                          ? util::Bitset(circuit.num_flip_flops(), true)
                          : mask);
  Podem podem(circuit, options.podem);
  Dalg dalg(circuit, options.dalg);
  // The SAT backend is built lazily: under Auto it only exists once the
  // structural engine aborts on some target, so the common all-easy run
  // never pays for the CNF encoding.
  std::unique_ptr<SatBackend> sat;
  const auto sat_backend = [&]() -> SatBackend& {
    if (!sat) {
      SatBackendOptions so = options.sat;
      so.scan_mask = mask;
      so.cancel = options.cancel;
      sat = std::make_unique<SatBackend>(circuit, so);
    }
    return *sat;
  };
  const auto run_engine = [&](const fault::Fault& f) {
    if (options.backend == AtpgBackend::Sat) return sat_backend().generate(f);
    PodemResult r = options.engine == AtpgEngine::Dalg ? dalg.generate(f)
                                                       : podem.generate(f);
    if (options.backend == AtpgBackend::Auto &&
        r.status == PodemStatus::Aborted) {
      obs::add(obs::Counter::AtpgSatFallbacks);
      r = sat_backend().generate(f);
    }
    return r;
  };
  util::Rng rng(options.seed ^ 0xc0b1ed5e7ULL);
  const std::size_t n_detect = std::max<std::size_t>(options.n_detect, 1);

  CombTestSet out;
  out.detected = FaultSet(faults.num_classes());
  out.untestable = FaultSet(faults.num_classes());
  // Outstanding detections per class and the set of classes still worth
  // simulating (need > 0).
  Needs need(faults.num_classes(), static_cast<std::uint32_t>(n_detect));
  FaultSet active(faults.num_classes());
  active.fill();
  const auto settle = [&](std::size_t f) {
    if (need[f] > 0) --need[f];
    if (need[f] == 0) active.reset(f);
  };
  // Aborted faults stay in `active` (later tests may still catch them by
  // simulation) but are not retried by PODEM.
  std::vector<char> gave_up(faults.num_classes(), 0);

  const auto target_pass = [&](bool checkpoints) {
    for (FaultClassId id = 0; id < faults.num_classes(); ++id) {
      if (options.cancel.stop_requested()) return;
      if (checkpoints && !is_checkpoint(faults, circuit, id)) continue;
      while (active.test(id) && !gave_up[id]) {
        const PodemResult r = run_engine(faults.representative(id));
        if (r.status == PodemStatus::Untestable) {
          ++out.proven_untestable;
          out.untestable.set(id);
          need[id] = 0;
          active.reset(id);
          break;
        }
        if (r.status == PodemStatus::Aborted) {
          ++out.aborted;
          gave_up[id] = 1;
          break;
        }
        CombTest t{r.cube.state, r.cube.inputs};
        randomize_state(t.state, mask, rng);
        sim::randomize_x(t.inputs, rng);
        const FaultSet det = detect_comb_test(fsim, t, &active);
        out.detected |= det;
        const bool hit = det.test(id);
        det.for_each(settle);
        out.tests.push_back(std::move(t));
        if (!hit) break;  // safety: the fill lost the target fault
      }
    }
  };

  target_pass(options.checkpoints_only);
  if (options.checkpoints_only) {
    // The checkpoint theorem covers everything in theory; sweep the
    // leftovers (redundancy interactions, partial-scan masking) exactly.
    target_pass(false);
  }

  // A cancelled run skips compaction too: the caller discards the set.
  if (options.cancel.stop_requested()) return out;
  compact(fsim, out.tests, faults.num_classes(), options);
  return out;
}

CombTestSet generate_random_comb_test_set(const Circuit& circuit,
                                          const FaultList& faults,
                                          const CombTestSetOptions& options) {
  const util::Bitset& mask = options.podem.scan_mask;
  FaultSimulator fsim(circuit, faults,
                      mask.empty()
                          ? util::Bitset(circuit.num_flip_flops(), true)
                          : mask);
  util::Rng rng(options.seed ^ 0x9a4d03c5ULL);

  CombTestSet out;
  out.detected = FaultSet(faults.num_classes());
  out.untestable = FaultSet(faults.num_classes());
  FaultSet undetected(faults.num_classes());
  undetected.fill();

  for (std::size_t i = 0; i < options.random_pool; ++i) {
    if (undetected.none() || options.cancel.stop_requested()) break;
    CombTest t{sim::random_vector(circuit.num_flip_flops(), rng),
               sim::random_vector(circuit.num_inputs(), rng)};
    randomize_state(t.state, mask, rng);
    const FaultSet det = detect_comb_test(fsim, t, &undetected);
    if (det.none()) continue;
    out.detected |= det;
    undetected -= det;
    out.tests.push_back(std::move(t));
  }

  if (options.cancel.stop_requested()) return out;
  compact(fsim, out.tests, faults.num_classes(), options);
  return out;
}

}  // namespace scanc::atpg
