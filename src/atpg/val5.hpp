// Roth's 5-valued D-calculus: {0, 1, X, D, D'}.
//
// D means "1 in the good circuit, 0 in the faulty circuit"; D' the
// reverse.  A value is a pair (good, bad) of ternary values restricted to
// the representable composites — partially-known pairs such as (1, X)
// are approximated by X, the classic conservative choice that keeps the
// D-algorithm sound (every approximation is resolved once decisions bind
// the remaining X lines).
#pragma once

#include <cstdint>

#include "netlist/gate.hpp"
#include "sim/logic.hpp"

namespace scanc::atpg {

/// The five composite values.
enum class V5 : std::uint8_t { Zero, One, X, D, Db };

/// good-circuit component (D -> 1, D' -> 0).
[[nodiscard]] constexpr sim::V3 good_of(V5 v) noexcept {
  switch (v) {
    case V5::Zero:
    case V5::Db:
      return sim::V3::Zero;
    case V5::One:
    case V5::D:
      return sim::V3::One;
    default:
      return sim::V3::X;
  }
}

/// faulty-circuit component (D -> 0, D' -> 1).
[[nodiscard]] constexpr sim::V3 bad_of(V5 v) noexcept {
  switch (v) {
    case V5::Zero:
    case V5::D:
      return sim::V3::Zero;
    case V5::One:
    case V5::Db:
      return sim::V3::One;
    default:
      return sim::V3::X;
  }
}

/// Composes a 5-valued value from ternary components; partially-known
/// pairs collapse to X.
[[nodiscard]] constexpr V5 compose(sim::V3 good, sim::V3 bad) noexcept {
  if (!sim::is_binary(good) || !sim::is_binary(bad)) return V5::X;
  if (good == sim::V3::One) {
    return bad == sim::V3::One ? V5::One : V5::D;
  }
  return bad == sim::V3::Zero ? V5::Zero : V5::Db;
}

/// True for D or D' (a fault effect).
[[nodiscard]] constexpr bool is_error(V5 v) noexcept {
  return v == V5::D || v == V5::Db;
}

/// True for 0/1/D/D' (fully determined in both circuits).
[[nodiscard]] constexpr bool is_assigned(V5 v) noexcept {
  return v != V5::X;
}

[[nodiscard]] constexpr V5 v5_not(V5 a) noexcept {
  return compose(sim::v3_not(good_of(a)), sim::v3_not(bad_of(a)));
}

[[nodiscard]] constexpr V5 v5_and(V5 a, V5 b) noexcept {
  return compose(sim::v3_and(good_of(a), good_of(b)),
                 sim::v3_and(bad_of(a), bad_of(b)));
}

[[nodiscard]] constexpr V5 v5_or(V5 a, V5 b) noexcept {
  return compose(sim::v3_or(good_of(a), good_of(b)),
                 sim::v3_or(bad_of(a), bad_of(b)));
}

[[nodiscard]] constexpr V5 v5_xor(V5 a, V5 b) noexcept {
  return compose(sim::v3_xor(good_of(a), good_of(b)),
                 sim::v3_xor(bad_of(a), bad_of(b)));
}

/// Converts a binary bool to V5.
[[nodiscard]] constexpr V5 v5_from_bool(bool b) noexcept {
  return b ? V5::One : V5::Zero;
}

/// Display character: '0' '1' 'x' 'D' 'd' (d = D').
[[nodiscard]] constexpr char to_char(V5 v) noexcept {
  switch (v) {
    case V5::Zero:
      return '0';
    case V5::One:
      return '1';
    case V5::D:
      return 'D';
    case V5::Db:
      return 'd';
    default:
      return 'x';
  }
}

}  // namespace scanc::atpg
