// Dual-rail Tseitin encoding of the scan (combinational) view for SAT
// ATPG (docs/atpg.md).
//
// Every signal is encoded as a *rail pair* (is1, is0) of literals so the
// three-valued semantics the rest of the repo computes — conservative
// Kleene logic with X — is captured exactly: X is "both rails false",
// and no reachable assignment sets both rails true.  Binary sources (PIs
// and scanned flip-flop Q outputs) use a single variable per signal
// (is0 = ¬is1), unscanned flip-flops are forced to X with constant-false
// rails.  A SAT model therefore *is* a binary assignment of the scan
// view's free inputs, and an UNSAT proof means no such assignment
// produces a conservative detection — the exact notion of combinational
// untestability used by PODEM/D-alg, the fault-simulation kernels, and
// the scalar oracle.
//
// The good circuit is encoded once and shared across faults.  Each fault
// adds a guarded faulty cone (fresh rails for the nodes reachable from
// the fault site without crossing flip-flops), a miter over the
// observable points (primary outputs plus the D inputs of scanned
// flip-flops), and an activation constraint; every per-fault clause
// carries the negation of a selector literal so that one solve() under
// the selector assumption targets exactly that fault, and retiring the
// fault with the unit ¬selector permanently satisfies its clauses.
//
// Transition-delay faults use the two-timeframe launch/capture
// construction: frame 1's flip-flop rails are aliased to frame 0's
// next-state (D driver) rails, launch forces the stem to the stale value
// in frame 0 and the opposite value in frame 1, and the faulty copy
// (stem stuck at the stale value) exists only in frame 1, observed at
// frame-1 outputs and captures.  This matches the fault-simulation
// kernels' launch-through-capture semantics frame for frame.
#pragma once

#include <cstdint>
#include <vector>

#include "atpg/podem.hpp"
#include "atpg/sat_solver.hpp"
#include "fault/fault.hpp"
#include "netlist/circuit.hpp"
#include "sim/sequence.hpp"
#include "util/bitset.hpp"

namespace scanc::atpg {

/// Dual-rail value of one signal: X = neither, never both.
struct Rail {
  SatLit is1 = 0;
  SatLit is0 = 0;
};

class CnfEncoder {
 public:
  /// `scan_mask` follows PodemOptions semantics: empty = full scan.
  CnfEncoder(const netlist::Circuit& circuit, util::Bitset scan_mask,
             SatSolver& solver);

  /// Encodes the shared single-frame good circuit (idempotent).
  void ensure_comb_frame();

  /// Encodes the shared two-frame good circuit for transition-delay
  /// faults (idempotent; implies the single frame).
  void ensure_two_frames();

  /// Adds the guarded faulty cone + miter for a stuck-at fault.  All
  /// emitted clauses carry ¬selector; solve under {selector}.
  void add_stuck_fault(const fault::Fault& fault, SatLit selector);

  /// Adds the guarded two-frame launch/capture encoding for a
  /// transition-delay (stem) fault.
  void add_transition_fault(const fault::Fault& fault, SatLit selector);

  /// Extracts the (state, inputs) test cube from the current model.
  /// Scanned flip-flops and PIs come out binary; unscanned stay X.
  [[nodiscard]] TestCube extract_comb_test() const;

  /// Extracts a two-frame transition test from the current model:
  /// `state` is the frame-0 scan-in, `seq` the two PI frames.
  void extract_transition_test(sim::Vector3& state,
                               sim::Sequence& seq) const;

  [[nodiscard]] const netlist::Circuit& circuit() const noexcept {
    return *circuit_;
  }

 private:
  [[nodiscard]] bool scanned(std::size_t ff_index) const {
    return scan_mask_.empty() || scan_mask_.test(ff_index);
  }
  [[nodiscard]] bool lit_model(SatLit l) const {
    return solver_->model_value(lit_var(l)) != lit_sign(l);
  }
  [[nodiscard]] Rail const_rail(bool value) const {
    return value ? Rail{true_lit_, lit_neg(true_lit_)}
                 : Rail{lit_neg(true_lit_), true_lit_};
  }
  [[nodiscard]] Rail binary_source_rail();
  [[nodiscard]] Rail x_rail() const {
    return Rail{lit_neg(true_lit_), lit_neg(true_lit_)};
  }

  // Guarded clause emission: when guard_ is set, every clause gets it
  // appended (guard_ holds ¬selector).
  void emit(std::initializer_list<SatLit> lits);
  void emit_clause(std::vector<SatLit> lits);
  [[nodiscard]] SatLit and_of(std::vector<SatLit> lits);
  [[nodiscard]] SatLit or_of(std::vector<SatLit> lits);
  [[nodiscard]] Rail encode_gate(netlist::GateType type,
                                 const std::vector<Rail>& fanins);

  /// Rails of `node` in good frame `frame` (0 or 1).
  [[nodiscard]] const Rail& good(std::size_t frame,
                                 netlist::NodeId node) const {
    return frames_[frame][node];
  }

  /// Forward closure of the fault site through combinational fanout
  /// (never expanding through flip-flops), in topological order.
  [[nodiscard]] std::vector<netlist::NodeId> faulty_cone(
      netlist::NodeId seed);

  /// Encodes the faulty copy of `cone` in `frame`, seeding the site
  /// with `seed_rail`, and returns the bad rails (index = position in
  /// cone; lookup helper resolves out-of-cone nodes to good rails).
  void encode_faulty_cone(std::size_t frame,
                          const std::vector<netlist::NodeId>& cone,
                          const Rail& seed_rail,
                          std::vector<Rail>& bad_rails);

  /// Appends the detection literals of one observation point — fresh
  /// literals implied by (good=1 ∧ bad=0) and (good=0 ∧ bad=1).
  void add_detect_terms(const Rail& good_rail, const Rail& bad_rail,
                        std::vector<SatLit>& detect);

  /// Miter over frame-`frame` POs and scanned-FF D drivers.  `bad_of`
  /// maps a NodeId to its faulty rail (good rail when out of cone).
  template <typename BadOf>
  void add_miter(std::size_t frame, const fault::Fault& fault,
                 SatLit selector, BadOf&& bad_of);

  const netlist::Circuit* circuit_;
  util::Bitset scan_mask_;
  SatSolver* solver_;
  SatLit true_lit_ = 0;
  SatLit guard_ = -1;  ///< ¬selector while encoding a fault, else -1

  // frames_[f][node] = good rails of node in timeframe f.
  std::vector<std::vector<Rail>> frames_;
  // Scratch: cone membership marks, topological positions for cone
  // ordering, and node-indexed faulty rails (valid where in_cone_).
  std::vector<char> in_cone_;
  std::vector<std::uint32_t> topo_pos_;
  std::vector<Rail> bad_scratch_;
};

}  // namespace scanc::atpg
