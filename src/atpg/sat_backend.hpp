// SAT-based combinational ATPG: the backend that resolves every fault.
//
// Where PODEM/D-alg abort on their backtrack budgets and leave a fault's
// testability unknown, the SAT backend either produces a test or an
// UNSAT proof that none exists in the scan view (docs/atpg.md).  It is
// the complete engine behind `--atpg=sat` and the abort-rescue engine
// behind `--atpg=auto`.
//
// The backend owns one incremental CDCL solver (sat_solver.hpp) and one
// dual-rail encoder (cnf.hpp).  The good circuit is encoded once; each
// generate() call adds the fault's guarded clauses, solves under the
// fault's selector assumption, and retires the selector, so consecutive
// faults share both the circuit clauses and everything the solver
// learned about them.  The accumulated per-fault clauses are garbage
// once retired; when the variable count crosses `rebuild_vars` the
// solver is rebuilt from scratch to bound memory.
//
// Results reuse PodemStatus: Detected (model extracted as a test),
// Untestable (UNSAT — a proof, not a budget), Aborted (conflict limit
// or cancellation; testability still unknown).
#pragma once

#include <cstdint>
#include <memory>

#include "atpg/cnf.hpp"
#include "atpg/podem.hpp"
#include "atpg/sat_solver.hpp"
#include "fault/fault.hpp"
#include "netlist/circuit.hpp"
#include "sim/sequence.hpp"
#include "util/bitset.hpp"
#include "util/cancel.hpp"

namespace scanc::atpg {

/// Which engine generates tests (and how aborts are handled).
enum class AtpgBackend : std::uint8_t {
  Podem,  ///< structural engines only; aborts stay unresolved
  Sat,    ///< SAT only: every fault resolved (test or proof)
  Auto,   ///< structural first, SAT retries each Aborted fault
};

[[nodiscard]] const char* to_string(AtpgBackend b) noexcept;

/// Options for the SAT backend.
struct SatBackendOptions {
  /// Per-fault conflict budget before giving up with Aborted.
  /// 0 = unbounded (the backend is then complete).
  std::uint64_t conflict_limit = 100000;
  /// Partial scan, PodemOptions semantics: empty = full scan.
  util::Bitset scan_mask;
  /// Cooperative cancellation, polled inside the solver decision loop.
  util::CancelToken cancel;
  /// Rebuild the solver once it holds this many variables (retired
  /// per-fault clauses are dead weight).  0 = never rebuild.
  std::size_t rebuild_vars = 2000000;
};

/// Cumulative backend statistics.
struct SatBackendStats {
  std::uint64_t solve_calls = 0;
  std::uint64_t tests = 0;      ///< Detected results
  std::uint64_t proofs = 0;     ///< Untestable results (UNSAT)
  std::uint64_t aborted = 0;    ///< Aborted results (budget/cancel)
  std::uint64_t conflicts = 0;  ///< CDCL conflicts, all solves
  std::uint64_t rebuilds = 0;   ///< solver reconstructions
};

/// A two-frame transition-delay test: scan-in state, then the launch
/// and capture primary-input vectors.
struct TransitionTest {
  PodemStatus status = PodemStatus::Aborted;
  sim::Vector3 state;  ///< frame-0 scan-in (flip_flops() order)
  sim::Sequence seq;   ///< two PI frames (launch, capture)
};

class SatBackend {
 public:
  explicit SatBackend(const netlist::Circuit& circuit,
                      SatBackendOptions options = {});
  ~SatBackend();
  SatBackend(SatBackend&&) noexcept;
  SatBackend& operator=(SatBackend&&) noexcept;

  /// Stuck-at test generation in the single-frame scan view.  The
  /// returned cube is fully specified on the assignable inputs.
  [[nodiscard]] PodemResult generate(const fault::Fault& fault);

  /// Transition-delay test generation in the two-frame view.
  [[nodiscard]] TransitionTest generate_transition(
      const fault::Fault& fault);

  [[nodiscard]] const SatBackendStats& stats() const noexcept {
    return stats_;
  }

 private:
  void ensure_solver();
  [[nodiscard]] SatResult solve_fault(SatLit selector);

  const netlist::Circuit* circuit_;
  SatBackendOptions options_;
  std::unique_ptr<SatSolver> solver_;
  std::unique_ptr<CnfEncoder> encoder_;
  SatBackendStats stats_;
};

}  // namespace scanc::atpg
