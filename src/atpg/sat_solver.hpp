// Self-contained CDCL SAT solver for the ATPG backend (docs/atpg.md).
//
// Zero external dependencies, matching the repo style: two-literal
// watching, first-UIP conflict-clause learning with non-chronological
// backjumping, VSIDS-style variable activities, phase saving, Luby
// restarts, and assumption-based incremental solving.  The incremental
// contract is the classic selector-literal scheme: per-fault clauses are
// guarded by a fresh selector variable, one solve() runs under the
// assumption that the selector is true, and retiring the fault adds the
// unit clause of the negated selector so its clauses go permanently
// satisfied without touching the shared circuit encoding.
//
// Bounded search: solve() gives up with SatResult::Unknown after
// `SatLimits::max_conflicts` conflicts or as soon as the cancel token is
// raised (polled in the decision loop, so deadlines cut mid-proof).
// Unknown maps to PodemStatus::Aborted upstream — never to a verdict.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/cancel.hpp"

namespace scanc::atpg {

/// Variable index (0-based).
using SatVar = std::int32_t;

/// Literal: variable << 1 | sign (sign 1 = negated).
using SatLit = std::int32_t;

[[nodiscard]] constexpr SatLit mk_lit(SatVar v, bool negated = false) {
  return (v << 1) | static_cast<SatLit>(negated);
}
[[nodiscard]] constexpr SatVar lit_var(SatLit l) { return l >> 1; }
[[nodiscard]] constexpr bool lit_sign(SatLit l) { return (l & 1) != 0; }
[[nodiscard]] constexpr SatLit lit_neg(SatLit l) { return l ^ 1; }

enum class SatResult : std::uint8_t {
  Sat,      ///< model available via SatSolver::model_value
  Unsat,    ///< proven unsatisfiable under the given assumptions
  Unknown,  ///< conflict budget exhausted or cancellation requested
};

/// Per-solve search bounds.
struct SatLimits {
  /// Conflicts before the call gives up with Unknown.  0 = unbounded.
  std::uint64_t max_conflicts = 0;
  /// Cooperative cancellation, polled in the decision loop.
  util::CancelToken cancel;
};

/// Cumulative statistics across all solve() calls on one solver.
struct SatStats {
  std::uint64_t solves = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learnt_clauses = 0;
};

class SatSolver {
 public:
  SatSolver();

  /// Creates a fresh unassigned variable and returns its index.
  SatVar new_var();

  [[nodiscard]] std::size_t num_vars() const noexcept {
    return assigns_.size();
  }

  /// Adds a clause over existing variables.  Returns false when the
  /// clause system is already unsatisfiable at the root level (an empty
  /// clause arose); the solver stays usable and every later solve()
  /// reports Unsat.  Clauses may be added between solve() calls.
  bool add_clause(std::span<const SatLit> lits);
  bool add_clause(std::initializer_list<SatLit> lits) {
    return add_clause(std::span<const SatLit>(lits.begin(), lits.size()));
  }

  /// Solves under `assumptions` (each forced true for this call only).
  [[nodiscard]] SatResult solve(std::span<const SatLit> assumptions,
                                const SatLimits& limits = {});
  [[nodiscard]] SatResult solve(std::initializer_list<SatLit> assumptions,
                                const SatLimits& limits = {}) {
    return solve(
        std::span<const SatLit>(assumptions.begin(), assumptions.size()),
        limits);
  }
  [[nodiscard]] SatResult solve(const SatLimits& limits = {}) {
    return solve(std::span<const SatLit>{}, limits);
  }

  /// Model value of a variable after solve() returned Sat.
  [[nodiscard]] bool model_value(SatVar v) const {
    return model_[static_cast<std::size_t>(v)] == 1;
  }

  [[nodiscard]] const SatStats& stats() const noexcept { return stats_; }

  /// True once the root-level clause system is unsatisfiable.
  [[nodiscard]] bool root_unsat() const noexcept { return !ok_; }

 private:
  // Clause storage: an arena of literals with small headers; references
  // are arena offsets, stable because clauses are never erased (retired
  // fault clauses die by selector unit instead).
  using ClauseRef = std::uint32_t;
  static constexpr ClauseRef kNoClause = 0xffffffffu;

  struct Watch {
    ClauseRef cref;
    SatLit blocker;  ///< cached literal; if true, clause needs no work
  };

  static constexpr std::uint8_t kFalse = 0;
  static constexpr std::uint8_t kTrue = 1;
  static constexpr std::uint8_t kUndef = 2;

  [[nodiscard]] std::uint8_t lit_value(SatLit l) const {
    const std::uint8_t a = assigns_[static_cast<std::size_t>(lit_var(l))];
    return a == kUndef ? kUndef
                       : static_cast<std::uint8_t>(a ^ (l & 1));
  }

  [[nodiscard]] std::uint32_t clause_size(ClauseRef c) const {
    return arena_[c];
  }
  [[nodiscard]] const SatLit* clause_lits(ClauseRef c) const {
    return reinterpret_cast<const SatLit*>(&arena_[c + 1]);
  }
  [[nodiscard]] SatLit* clause_lits(ClauseRef c) {
    return reinterpret_cast<SatLit*>(&arena_[c + 1]);
  }

  ClauseRef alloc_clause(std::span<const SatLit> lits);
  void attach_clause(ClauseRef c);
  void enqueue(SatLit l, ClauseRef reason);
  ClauseRef propagate();
  void analyze(ClauseRef confl, std::vector<SatLit>& learnt,
               std::uint32_t& backjump_level);
  void cancel_until(std::uint32_t level);
  void new_decision_level() { level_starts_.push_back(trail_.size()); }
  [[nodiscard]] std::uint32_t decision_level() const {
    return static_cast<std::uint32_t>(level_starts_.size());
  }
  [[nodiscard]] SatVar pick_branch_var();
  void bump_var(SatVar v);
  void decay_activities();

  bool ok_ = true;
  std::vector<std::uint32_t> arena_;        ///< [size, lits...]*
  std::vector<std::vector<Watch>> watches_; ///< indexed by literal
  std::vector<std::uint8_t> assigns_;       ///< kFalse/kTrue/kUndef per var
  std::vector<std::uint8_t> phase_;         ///< saved polarity per var
  std::vector<ClauseRef> reason_;           ///< antecedent per var
  std::vector<std::uint32_t> var_level_;    ///< assignment level per var
  std::vector<double> activity_;            ///< VSIDS activity per var
  std::vector<SatLit> trail_;
  std::vector<std::size_t> level_starts_;
  std::size_t qhead_ = 0;
  double var_inc_ = 1.0;
  std::vector<std::uint8_t> seen_;          ///< analyze scratch
  std::vector<std::uint8_t> model_;
  // Order heap substitute: a lazily-filtered max-activity scan is too
  // slow; keep a binary heap keyed by activity.
  std::vector<SatVar> heap_;
  std::vector<std::int32_t> heap_pos_;      ///< -1 = not in heap
  void heap_insert(SatVar v);
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);
  [[nodiscard]] bool heap_less(SatVar a, SatVar b) const {
    return activity_[static_cast<std::size_t>(a)] <
           activity_[static_cast<std::size_t>(b)];
  }

  SatStats stats_;
};

}  // namespace scanc::atpg
