#include "atpg/podem.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "sim/packed.hpp"

namespace scanc::atpg {

using fault::Fault;
using netlist::Circuit;
using netlist::GateType;
using netlist::Node;
using netlist::NodeId;
using sim::V3;

namespace {

constexpr std::uint32_t kCcMax = 1u << 24;

std::uint32_t sat_add(std::uint32_t a, std::uint32_t b) {
  return std::min(kCcMax, a + b);
}

bool has_effect(V3 good, V3 bad) {
  return sim::is_binary(good) && sim::is_binary(bad) && good != bad;
}

bool x_ish(V3 good, V3 bad) { return good == V3::X || bad == V3::X; }

}  // namespace

Podem::Podem(const Circuit& circuit, PodemOptions options)
    : circuit_(&circuit),
      options_(options),
      good_(circuit.num_nodes(), V3::X),
      bad_(circuit.num_nodes(), V3::X),
      assign_(circuit.num_nodes(), V3::X),
      cc0_(circuit.num_nodes(), 1),
      cc1_(circuit.num_nodes(), 1),
      x_reach_(circuit.num_nodes(), 0),
      dirty_(circuit.num_nodes(), 0),
      assignable_(circuit.num_nodes(), 0),
      observable_ff_(circuit.num_flip_flops(), 1) {
  const auto ffs = circuit.flip_flops();
  inputs_.reserve(circuit.num_inputs() + ffs.size());
  for (const NodeId id : circuit.primary_inputs()) {
    inputs_.push_back(id);
    assignable_[id] = 1;
  }
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    const bool scanned =
        options_.scan_mask.empty() || options_.scan_mask.test(i);
    observable_ff_[i] = scanned ? 1 : 0;
    if (scanned) {
      inputs_.push_back(ffs[i]);
      assignable_[ffs[i]] = 1;
    }
  }
  // Steer backtrace away from unscanned flip-flops: they can never be
  // justified.
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    if (!observable_ff_[i]) {
      cc0_[ffs[i]] = kCcMax;
      cc1_[ffs[i]] = kCcMax;
    }
  }
  compute_controllability();
}

void Podem::compute_controllability() {
  for (const NodeId id : circuit_->topo_order()) {
    const Node& n = circuit_->node(id);
    std::uint32_t c0 = 0;
    std::uint32_t c1 = 0;
    switch (n.type) {
      case GateType::Buf:
        c0 = cc0_[n.fanins[0]];
        c1 = cc1_[n.fanins[0]];
        break;
      case GateType::Not:
        c0 = cc1_[n.fanins[0]];
        c1 = cc0_[n.fanins[0]];
        break;
      case GateType::And:
      case GateType::Nand: {
        std::uint32_t all1 = 0;
        std::uint32_t any0 = kCcMax;
        for (const NodeId f : n.fanins) {
          all1 = sat_add(all1, cc1_[f]);
          any0 = std::min(any0, cc0_[f]);
        }
        c0 = (n.type == GateType::And) ? any0 : all1;
        c1 = (n.type == GateType::And) ? all1 : any0;
        break;
      }
      case GateType::Or:
      case GateType::Nor: {
        std::uint32_t all0 = 0;
        std::uint32_t any1 = kCcMax;
        for (const NodeId f : n.fanins) {
          all0 = sat_add(all0, cc0_[f]);
          any1 = std::min(any1, cc1_[f]);
        }
        c0 = (n.type == GateType::Or) ? all0 : any1;
        c1 = (n.type == GateType::Or) ? any1 : all0;
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        // Fold pairwise: cost of even / odd parity over the fanins.
        std::uint32_t even = 0;
        std::uint32_t odd = kCcMax;
        for (const NodeId f : n.fanins) {
          const std::uint32_t e =
              std::min(sat_add(even, cc0_[f]), sat_add(odd, cc1_[f]));
          const std::uint32_t o =
              std::min(sat_add(even, cc1_[f]), sat_add(odd, cc0_[f]));
          even = e;
          odd = o;
        }
        c0 = (n.type == GateType::Xor) ? even : odd;
        c1 = (n.type == GateType::Xor) ? odd : even;
        break;
      }
      default:
        continue;
    }
    cc0_[id] = sat_add(c0, 1);
    cc1_[id] = sat_add(c1, 1);
  }
}

std::pair<V3, V3> Podem::eval_node(const Node& n, NodeId id,
                                   const Fault& fault) const {
  const bool fault_here = fault.node == id;
  const V3 stuck = fault.value ? V3::One : V3::Zero;
  const auto bad_in = [&](std::size_t p) -> V3 {
    if (fault_here && fault.pin == static_cast<std::int32_t>(p)) {
      return stuck;
    }
    return bad_[n.fanins[p]];
  };

  V3 g;
  V3 b;
  switch (n.type) {
    case GateType::Buf:
    case GateType::Not:
      g = good_[n.fanins[0]];
      b = bad_in(0);
      if (n.type == GateType::Not) {
        g = v3_not(g);
        b = v3_not(b);
      }
      break;
    case GateType::And:
    case GateType::Nand: {
      g = good_[n.fanins[0]];
      b = bad_in(0);
      for (std::size_t p = 1; p < n.fanins.size(); ++p) {
        g = v3_and(g, good_[n.fanins[p]]);
        b = v3_and(b, bad_in(p));
      }
      if (n.type == GateType::Nand) {
        g = v3_not(g);
        b = v3_not(b);
      }
      break;
    }
    case GateType::Or:
    case GateType::Nor: {
      g = good_[n.fanins[0]];
      b = bad_in(0);
      for (std::size_t p = 1; p < n.fanins.size(); ++p) {
        g = v3_or(g, good_[n.fanins[p]]);
        b = v3_or(b, bad_in(p));
      }
      if (n.type == GateType::Nor) {
        g = v3_not(g);
        b = v3_not(b);
      }
      break;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      g = good_[n.fanins[0]];
      b = bad_in(0);
      for (std::size_t p = 1; p < n.fanins.size(); ++p) {
        g = v3_xor(g, good_[n.fanins[p]]);
        b = v3_xor(b, bad_in(p));
      }
      if (n.type == GateType::Xnor) {
        g = v3_not(g);
        b = v3_not(b);
      }
      break;
    }
    default:
      g = V3::X;
      b = V3::X;
      break;
  }
  if (fault_here && fault.pin == sim::kStemPin) b = stuck;
  return {g, b};
}

void Podem::imply(const Fault& fault) {
  const bool stem = fault.pin == sim::kStemPin;
  const V3 stuck = fault.value ? V3::One : V3::Zero;

  for (NodeId id = 0; id < circuit_->num_nodes(); ++id) {
    const GateType t = circuit_->node(id).type;
    if (t == GateType::Input || t == GateType::Dff) {
      good_[id] = assign_[id];
      bad_[id] = assign_[id];
    } else if (t == GateType::Const0) {
      good_[id] = V3::Zero;
      bad_[id] = V3::Zero;
    } else if (t == GateType::Const1) {
      good_[id] = V3::One;
      bad_[id] = V3::One;
    } else {
      continue;
    }
    if (stem && fault.node == id) bad_[id] = stuck;
  }

  for (const NodeId id : circuit_->topo_order()) {
    const auto [g, b] = eval_node(circuit_->node(id), id, fault);
    good_[id] = g;
    bad_[id] = b;
  }
}

void Podem::propagate(NodeId changed_input, const Fault& fault) {
  // Event-driven re-implication: recompute only the fanout cone of the
  // changed input.  One cheap dirty-fanin check per gate in topological
  // order; evaluation happens only inside the cone.
  ++epoch_;
  good_[changed_input] = assign_[changed_input];
  bad_[changed_input] = assign_[changed_input];
  if (fault.pin == sim::kStemPin && fault.node == changed_input) {
    bad_[changed_input] = fault.value ? V3::One : V3::Zero;
  }
  dirty_[changed_input] = epoch_;

  for (const NodeId id : circuit_->topo_order()) {
    const Node& n = circuit_->node(id);
    bool touched = false;
    for (const NodeId f : n.fanins) {
      if (dirty_[f] == epoch_) {
        touched = true;
        break;
      }
    }
    if (!touched) continue;
    const auto [g, b] = eval_node(n, id, fault);
    if (g != good_[id] || b != bad_[id]) {
      good_[id] = g;
      bad_[id] = b;
      dirty_[id] = epoch_;
    }
  }
}

bool Podem::fault_effect_observed(const Fault& fault) const {
  for (const NodeId po : circuit_->primary_outputs()) {
    if (has_effect(good_[po], bad_[po])) return true;
  }
  const auto ffs = circuit_->flip_flops();
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    if (!observable_ff_[i]) continue;
    const NodeId ff = ffs[i];
    const NodeId d = circuit_->node(ff).fanins[0];
    V3 b = bad_[d];
    if (fault.node == ff && fault.pin == 0) {
      b = fault.value ? V3::One : V3::Zero;
    }
    if (has_effect(good_[d], b)) return true;
  }
  return false;
}

bool Podem::x_path_exists(const Fault& fault) {
  // x_reach_[id] = 1 when id is X-ish and some X-ish path leads from it to
  // an observation point (PO or a flip-flop D line).
  std::fill(x_reach_.begin(), x_reach_.end(), 0);
  const auto mark_base = [&](NodeId id) {
    if (x_ish(good_[id], bad_[id])) x_reach_[id] = 1;
  };
  for (const NodeId po : circuit_->primary_outputs()) mark_base(po);
  const auto ffs = circuit_->flip_flops();
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    if (observable_ff_[i]) mark_base(circuit_->node(ffs[i]).fanins[0]);
  }
  const auto order = circuit_->topo_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId id = *it;
    if (x_reach_[id]) continue;
    if (!x_ish(good_[id], bad_[id])) continue;
    for (const NodeId out : circuit_->node(id).fanouts) {
      if (x_reach_[out]) {
        x_reach_[id] = 1;
        break;
      }
    }
  }
  // Some gate with a fault effect on an input must have an X-path onward.
  for (const NodeId id : circuit_->topo_order()) {
    const Node& n = circuit_->node(id);
    if (!x_reach_[id]) continue;
    for (std::size_t p = 0; p < n.fanins.size(); ++p) {
      V3 b = bad_[n.fanins[p]];
      if (fault.node == id && fault.pin == static_cast<std::int32_t>(p)) {
        b = fault.value ? V3::One : V3::Zero;
      }
      if (has_effect(good_[n.fanins[p]], b)) return true;
    }
  }
  // A still-X observation line fed directly by the fault site also counts
  // (effect waiting to appear once the site value is set).
  return false;
}

std::optional<std::pair<NodeId, bool>> Podem::objective(const Fault& fault) {
  // Activation: the good value at the fault site must oppose the stuck
  // value.  For branch faults, the site value is the driving stem's.
  const NodeId site = fault.pin == sim::kStemPin
                          ? fault.node
                          : circuit_->node(fault.node).fanins[fault.pin];
  const V3 site_good = good_[site];
  const V3 want = fault.value ? V3::Zero : V3::One;
  if (site_good == V3::X) return std::make_pair(site, want == V3::One);
  if (site_good != want) return std::nullopt;  // conflict: cannot excite

  // Fault is excited; require a potential propagation path.  (Ternary
  // simulation is monotone, so once every path from every fault effect to
  // an observation point is blocked by a determined-equal node, no
  // further assignment can create a detection: pruning here is sound.)
  if (!x_path_exists(fault)) return std::nullopt;

  // D-frontier: gates with a fault effect on an input and an X-ish
  // output.  Try the deepest first (closest to the outputs) and take the
  // first gate offering an unassigned (X) input to drive.
  std::vector<NodeId> frontier;
  for (const NodeId id : circuit_->topo_order()) {
    const Node& n = circuit_->node(id);
    if (!x_ish(good_[id], bad_[id])) continue;
    bool effect_in = false;
    for (std::size_t p = 0; p < n.fanins.size() && !effect_in; ++p) {
      V3 b = bad_[n.fanins[p]];
      if (fault.node == id && fault.pin == static_cast<std::int32_t>(p)) {
        b = fault.value ? V3::One : V3::Zero;
      }
      effect_in = has_effect(good_[n.fanins[p]], b);
    }
    if (effect_in) frontier.push_back(id);
  }
  std::sort(frontier.begin(), frontier.end(), [&](NodeId a, NodeId b) {
    return circuit_->node(a).level > circuit_->node(b).level;
  });
  for (const NodeId id : frontier) {
    const Node& n = circuit_->node(id);
    for (const NodeId f : n.fanins) {
      if (good_[f] != V3::X) continue;
      const bool value = netlist::has_controlling_value(n.type)
                             ? !netlist::controlling_value(n.type)
                             : false;  // XOR-family: any binary value
      return std::make_pair(f, value);
    }
  }

  // No frontier gate is directly drivable, but an X-path remains: the
  // blockage sits in the faulty-value cone (good values binary, bad still
  // X).  Keep the search complete by assigning any unassigned input —
  // backtracking explores both values.
  for (const NodeId in : inputs_) {
    if (assign_[in] == V3::X) return std::make_pair(in, false);
  }
  return std::nullopt;
}

std::optional<std::pair<NodeId, bool>> Podem::backtrace(NodeId node,
                                                        bool value) const {
  for (;;) {
    const Node& n = circuit_->node(node);
    if (n.type == GateType::Input || n.type == GateType::Dff) {
      // Unscanned flip-flops are not decision variables.
      return (assignable_[node] && assign_[node] == V3::X)
                 ? std::make_optional(std::make_pair(node, value))
                 : std::nullopt;
    }
    if (n.type == GateType::Const0 || n.type == GateType::Const1) {
      return std::nullopt;  // constants cannot be driven
    }
    switch (n.type) {
      case GateType::Buf:
        node = n.fanins[0];
        break;
      case GateType::Not:
        node = n.fanins[0];
        value = !value;
        break;
      case GateType::And:
      case GateType::Nand:
      case GateType::Or:
      case GateType::Nor: {
        const bool inner = netlist::is_inverting(n.type) ? !value : value;
        const bool ctrl = netlist::controlling_value(n.type);  // 0 AND, 1 OR
        // inner == !ctrl: all inputs must be !ctrl -> pick the hardest X
        // input; inner == ctrl: one input suffices -> pick the easiest.
        const bool need = inner;
        NodeId pick = netlist::kNoNode;
        std::uint32_t pick_cost = 0;
        const bool want_hardest = (inner != ctrl);
        for (const NodeId f : n.fanins) {
          if (good_[f] != V3::X) continue;
          const std::uint32_t cost = need ? cc1_[f] : cc0_[f];
          if (pick == netlist::kNoNode ||
              (want_hardest ? cost > pick_cost : cost < pick_cost)) {
            pick = f;
            pick_cost = cost;
          }
        }
        if (pick == netlist::kNoNode) return std::nullopt;
        node = pick;
        value = need;
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        // Choose an X input.  With every other input binary the gate
        // computes out = parity ^ in (inversion folded into parity), so
        // the required input is out ^ parity; otherwise any value works.
        NodeId pick = netlist::kNoNode;
        bool others_binary = true;
        bool parity = (n.type == GateType::Xnor);
        for (const NodeId f : n.fanins) {
          if (good_[f] == V3::X) {
            if (pick == netlist::kNoNode) {
              pick = f;
            } else {
              others_binary = false;
            }
          } else {
            parity ^= (good_[f] == V3::One);
          }
        }
        if (pick == netlist::kNoNode) return std::nullopt;
        node = pick;
        value = others_binary ? (value != parity) : false;
        break;
      }
      default:
        return std::nullopt;
    }
  }
}

PodemResult Podem::generate(const Fault& fault) {
  struct Decision {
    NodeId input;
    bool value;
    bool flipped;
  };

  std::fill(assign_.begin(), assign_.end(), V3::X);
  std::vector<Decision> decisions;
  PodemResult result;
  imply(fault);

  for (;;) {
    if (fault_effect_observed(fault)) {
      result.status = PodemStatus::Detected;
      result.cube.inputs.clear();
      result.cube.state.clear();
      for (const NodeId id : circuit_->primary_inputs()) {
        result.cube.inputs.push_back(assign_[id]);
      }
      for (const NodeId id : circuit_->flip_flops()) {
        result.cube.state.push_back(assign_[id]);
      }
      return result;
    }

    bool need_backtrack = true;
    if (const auto obj = objective(fault)) {
      auto bt = backtrace(obj->first, obj->second);
      if (!bt) {
        // Backtrace dead-ended on an unassignable X source (an
        // unscanned flip-flop; only possible under partial scan).
        // That is a heuristic failure, not a proof — declaring the
        // branch exhausted here made PODEM report Untestable for
        // detectable faults.  Stay complete: decide any unassigned
        // input and let backtracking explore both values.
        for (const NodeId in : inputs_) {
          if (assign_[in] == V3::X) {
            bt = std::make_pair(in, false);
            break;
          }
        }
      }
      if (bt) {
        decisions.push_back(Decision{bt->first, bt->second, false});
        assign_[bt->first] = sim::v3_from_bool(bt->second);
        propagate(bt->first, fault);
        need_backtrack = false;
      }
    }
    if (!need_backtrack) continue;

    // Backtrack: undo fully-explored decisions, flip the newest untried.
    while (!decisions.empty() && decisions.back().flipped) {
      assign_[decisions.back().input] = V3::X;
      propagate(decisions.back().input, fault);
      decisions.pop_back();
    }
    if (decisions.empty()) {
      result.status = PodemStatus::Untestable;
      return result;
    }
    if (++result.backtracks > options_.backtrack_limit) {
      result.status = PodemStatus::Aborted;
      return result;
    }
    Decision& d = decisions.back();
    d.flipped = true;
    d.value = !d.value;
    assign_[d.input] = sim::v3_from_bool(d.value);
    propagate(d.input, fault);
  }
}

}  // namespace scanc::atpg
