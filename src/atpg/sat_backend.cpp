#include "atpg/sat_backend.hpp"

#include <algorithm>

#include "util/telemetry.hpp"

namespace scanc::atpg {

const char* to_string(AtpgBackend b) noexcept {
  switch (b) {
    case AtpgBackend::Podem: return "podem";
    case AtpgBackend::Sat: return "sat";
    case AtpgBackend::Auto: return "auto";
  }
  return "?";
}

SatBackend::SatBackend(const netlist::Circuit& circuit,
                       SatBackendOptions options)
    : circuit_(&circuit), options_(std::move(options)) {}

SatBackend::~SatBackend() = default;
SatBackend::SatBackend(SatBackend&&) noexcept = default;
SatBackend& SatBackend::operator=(SatBackend&&) noexcept = default;

void SatBackend::ensure_solver() {
  if (solver_ && options_.rebuild_vars != 0 &&
      solver_->num_vars() > options_.rebuild_vars) {
    solver_.reset();
    encoder_.reset();
    ++stats_.rebuilds;
  }
  if (!solver_) {
    solver_ = std::make_unique<SatSolver>();
    encoder_ = std::make_unique<CnfEncoder>(*circuit_, options_.scan_mask,
                                            *solver_);
  }
}

SatResult SatBackend::solve_fault(SatLit selector) {
  SatLimits limits;
  limits.max_conflicts = options_.conflict_limit;
  limits.cancel = options_.cancel;
  const std::uint64_t before = solver_->stats().conflicts;
  const SatResult res = solver_->solve({selector}, limits);
  const std::uint64_t delta = solver_->stats().conflicts - before;
  ++stats_.solve_calls;
  stats_.conflicts += delta;
  obs::add(obs::Counter::AtpgSatSolveCalls);
  obs::add(obs::Counter::AtpgSatConflicts, delta);
  switch (res) {
    case SatResult::Sat: ++stats_.tests; break;
    case SatResult::Unsat:
      ++stats_.proofs;
      obs::add(obs::Counter::AtpgSatProofs);
      break;
    case SatResult::Unknown: ++stats_.aborted; break;
  }
  return res;
}

PodemResult SatBackend::generate(const fault::Fault& fault) {
  ensure_solver();
  const SatLit s = mk_lit(solver_->new_var());
  encoder_->add_stuck_fault(fault, s);
  const SatResult res = solve_fault(s);
  PodemResult out;
  out.backtracks = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      solver_->stats().conflicts, 0xffffffffu));
  if (res == SatResult::Sat) {
    out.status = PodemStatus::Detected;
    out.cube = encoder_->extract_comb_test();
  } else if (res == SatResult::Unsat) {
    out.status = PodemStatus::Untestable;
  } else {
    out.status = PodemStatus::Aborted;
  }
  // Retire the fault: the unit clause permanently satisfies its guarded
  // clauses, keeping later solves incremental over the shared circuit.
  solver_->add_clause({lit_neg(s)});
  return out;
}

TransitionTest SatBackend::generate_transition(const fault::Fault& fault) {
  ensure_solver();
  const SatLit s = mk_lit(solver_->new_var());
  encoder_->add_transition_fault(fault, s);
  const SatResult res = solve_fault(s);
  TransitionTest out;
  if (res == SatResult::Sat) {
    out.status = PodemStatus::Detected;
    encoder_->extract_transition_test(out.state, out.seq);
  } else if (res == SatResult::Unsat) {
    out.status = PodemStatus::Untestable;
  } else {
    out.status = PodemStatus::Aborted;
  }
  solver_->add_clause({lit_neg(s)});
  return out;
}

}  // namespace scanc::atpg
