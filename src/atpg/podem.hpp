// PODEM combinational ATPG over the full-scan view of a circuit.
//
// The scan (combinational) view treats primary inputs and flip-flop Q
// outputs as assignable inputs, and primary outputs and flip-flop D
// capture lines as observation points.  A generated test is a cube over
// (state, inputs); applied as the scan test (SI, <t>) of length one it
// detects the target fault.
//
// Values are pairs (good, bad) of three-valued logic — the classic
// 5-valued D-calculus {0, 1, X, D, D'} plus the partially-specified
// combinations that arise naturally with X inputs.
//
// The search is standard PODEM: excite the fault, backtrace objectives to
// an input assignment, imply by forward simulation, track the D-frontier
// with an X-path check, and backtrack on conflicts.  A backtrack limit
// bounds the search; exhausting the search space without hitting the
// limit proves the fault combinationally untestable.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "netlist/circuit.hpp"
#include "sim/sequence.hpp"
#include "util/bitset.hpp"

namespace scanc::atpg {

/// Outcome of one PODEM run.
enum class PodemStatus : std::uint8_t {
  Detected,    ///< test cube found
  Untestable,  ///< search space exhausted: no test exists (in the scan view)
  Aborted,     ///< backtrack limit hit; testability unresolved
};

/// A test cube over the scan view: values may contain X (unspecified).
struct TestCube {
  sim::Vector3 state;   ///< flip-flop scan-in part (flip_flops() order)
  sim::Vector3 inputs;  ///< primary-input part (primary_inputs() order)
};

/// PODEM result.
struct PodemResult {
  PodemStatus status = PodemStatus::Aborted;
  TestCube cube;          ///< valid iff status == Detected
  std::uint32_t backtracks = 0;
};

/// PODEM options.
struct PodemOptions {
  std::uint32_t backtrack_limit = 2000;
  /// Partial scan: which flip-flops (flip_flops() order) are scannable.
  /// Empty means full scan.  Unscanned flip-flops are neither assignable
  /// (their Q stays X) nor observable at their D line.
  util::Bitset scan_mask;
};

/// Combinational test generator for single stuck-at faults.
class Podem {
 public:
  explicit Podem(const netlist::Circuit& circuit,
                 PodemOptions options = {});

  /// Attempts to generate a test cube for `fault`.
  [[nodiscard]] PodemResult generate(const fault::Fault& fault);

 private:
  struct Impl;
  // Scratch state lives in the class to avoid per-call allocation.
  const netlist::Circuit* circuit_;
  PodemOptions options_;

  // Per-node 5-valued state (good, bad), assignments and controllability.
  std::vector<sim::V3> good_;
  std::vector<sim::V3> bad_;
  std::vector<sim::V3> assign_;       // per assignable input node id
  std::vector<netlist::NodeId> inputs_;  // PIs then scanned FF Q nodes
  std::vector<std::uint32_t> cc0_;    // SCOAP-like controllability to 0
  std::vector<std::uint32_t> cc1_;    // SCOAP-like controllability to 1
  std::vector<char> x_reach_;         // X-path reachability scratch
  std::vector<std::uint32_t> dirty_;  // epoch marks for event-driven imply
  std::vector<char> assignable_;      // per node: PI or scanned FF
  std::vector<char> observable_ff_;   // per FF index: D line observed
  std::uint32_t epoch_ = 0;

  void compute_controllability();
  void imply(const fault::Fault& fault);
  void propagate(netlist::NodeId changed_input, const fault::Fault& fault);
  [[nodiscard]] std::pair<sim::V3, sim::V3> eval_node(
      const netlist::Node& n, netlist::NodeId id,
      const fault::Fault& fault) const;
  [[nodiscard]] bool fault_effect_observed(const fault::Fault& fault) const;
  [[nodiscard]] bool x_path_exists(const fault::Fault& fault);
  [[nodiscard]] std::optional<std::pair<netlist::NodeId, bool>> objective(
      const fault::Fault& fault);
  [[nodiscard]] std::optional<std::pair<netlist::NodeId, bool>> backtrace(
      netlist::NodeId node, bool value) const;
};

}  // namespace scanc::atpg
