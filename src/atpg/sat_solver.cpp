#include "atpg/sat_solver.hpp"

#include <algorithm>
#include <cassert>

namespace scanc::atpg {

namespace {

/// Luby restart sequence (1,1,2,1,1,2,4,...), scaled by the base below.
std::uint64_t luby(std::uint64_t i) {
  // Find the finite subsequence containing index i and its size.
  std::uint64_t size = 1;
  std::uint64_t seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return 1ull << seq;
}

constexpr std::uint64_t kRestartBase = 128;
constexpr double kActivityDecay = 0.95;
constexpr double kActivityRescale = 1e100;
constexpr std::uint64_t kCancelPollMask = 255;  ///< poll every 256 loops

}  // namespace

SatSolver::SatSolver() = default;

SatVar SatSolver::new_var() {
  const SatVar v = static_cast<SatVar>(assigns_.size());
  assigns_.push_back(kUndef);
  phase_.push_back(0);  // default polarity: false (X rails start unset)
  reason_.push_back(kNoClause);
  var_level_.push_back(0);
  activity_.push_back(0.0);
  seen_.push_back(0);
  model_.push_back(0);
  heap_pos_.push_back(-1);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_insert(v);
  return v;
}

SatSolver::ClauseRef SatSolver::alloc_clause(std::span<const SatLit> lits) {
  const ClauseRef c = static_cast<ClauseRef>(arena_.size());
  arena_.push_back(static_cast<std::uint32_t>(lits.size()));
  for (const SatLit l : lits) {
    arena_.push_back(static_cast<std::uint32_t>(l));
  }
  return c;
}

void SatSolver::attach_clause(ClauseRef c) {
  const SatLit* lits = clause_lits(c);
  assert(clause_size(c) >= 2);
  watches_[static_cast<std::size_t>(lit_neg(lits[0]))].push_back(
      Watch{c, lits[1]});
  watches_[static_cast<std::size_t>(lit_neg(lits[1]))].push_back(
      Watch{c, lits[0]});
}

bool SatSolver::add_clause(std::span<const SatLit> lits) {
  assert(decision_level() == 0);
  if (!ok_) return false;
  // Root-level simplification: drop false literals, detect satisfied or
  // tautological clauses, deduplicate.
  std::vector<SatLit> out;
  out.reserve(lits.size());
  for (const SatLit l : lits) {
    const std::uint8_t v = lit_value(l);
    if (v == kTrue) return true;  // already satisfied forever
    if (v == kFalse) continue;    // falsified at root: drop
    bool skip = false;
    for (const SatLit o : out) {
      if (o == l) skip = true;
      if (o == lit_neg(l)) return true;  // tautology
    }
    if (!skip) out.push_back(l);
  }
  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    enqueue(out[0], kNoClause);
    if (propagate() != kNoClause) {
      ok_ = false;
      return false;
    }
    return true;
  }
  attach_clause(alloc_clause(out));
  return true;
}

void SatSolver::enqueue(SatLit l, ClauseRef reason) {
  const auto v = static_cast<std::size_t>(lit_var(l));
  assert(assigns_[v] == kUndef);
  assigns_[v] = lit_sign(l) ? kFalse : kTrue;
  phase_[v] = lit_sign(l) ? 0 : 1;
  reason_[v] = reason;
  var_level_[v] = decision_level();
  trail_.push_back(l);
}

SatSolver::ClauseRef SatSolver::propagate() {
  while (qhead_ < trail_.size()) {
    const SatLit p = trail_[qhead_++];
    ++stats_.propagations;
    std::vector<Watch>& ws = watches_[static_cast<std::size_t>(p)];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < ws.size(); ++i) {
      const Watch w = ws[i];
      if (lit_value(w.blocker) == kTrue) {
        ws[keep++] = w;
        continue;
      }
      SatLit* lits = clause_lits(w.cref);
      const std::uint32_t size = clause_size(w.cref);
      // Normalise: the falsified watch sits at index 1.
      const SatLit false_lit = lit_neg(p);
      if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
      assert(lits[1] == false_lit);
      if (lit_value(lits[0]) == kTrue) {
        ws[keep++] = Watch{w.cref, lits[0]};
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      for (std::uint32_t k = 2; k < size; ++k) {
        if (lit_value(lits[k]) != kFalse) {
          std::swap(lits[1], lits[k]);
          watches_[static_cast<std::size_t>(lit_neg(lits[1]))].push_back(
              Watch{w.cref, lits[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      if (lit_value(lits[0]) == kFalse) {
        // Conflict: keep the remaining watches, return the clause.
        for (std::size_t j = i; j < ws.size(); ++j) ws[keep++] = ws[j];
        ws.resize(keep);
        qhead_ = trail_.size();
        return w.cref;
      }
      ws[keep++] = w;
      enqueue(lits[0], w.cref);
    }
    ws.resize(keep);
  }
  return kNoClause;
}

void SatSolver::bump_var(SatVar v) {
  const auto i = static_cast<std::size_t>(v);
  activity_[i] += var_inc_;
  if (activity_[i] > kActivityRescale) {
    for (double& a : activity_) a *= 1.0 / kActivityRescale;
    var_inc_ *= 1.0 / kActivityRescale;
  }
  if (heap_pos_[i] >= 0) {
    heap_sift_up(static_cast<std::size_t>(heap_pos_[i]));
  }
}

void SatSolver::decay_activities() { var_inc_ /= kActivityDecay; }

void SatSolver::analyze(ClauseRef confl, std::vector<SatLit>& learnt,
                        std::uint32_t& backjump_level) {
  learnt.clear();
  learnt.push_back(0);  // slot for the asserting (1UIP) literal
  std::uint32_t counter = 0;
  SatLit p = 0;
  bool have_p = false;
  std::size_t trail_index = trail_.size();
  std::vector<SatVar> to_clear;

  ClauseRef reason = confl;
  for (;;) {
    assert(reason != kNoClause);
    const SatLit* lits = clause_lits(reason);
    const std::uint32_t size = clause_size(reason);
    // Skip lits[0] when it is the literal we just resolved on.
    for (std::uint32_t k = (have_p && lits[0] == p) ? 1 : 0; k < size;
         ++k) {
      const SatLit q = lits[k];
      if (have_p && q == p) continue;
      const auto v = static_cast<std::size_t>(lit_var(q));
      if (seen_[v] != 0 || var_level_[v] == 0) continue;
      seen_[v] = 1;
      to_clear.push_back(lit_var(q));
      bump_var(lit_var(q));
      if (var_level_[v] >= decision_level()) {
        ++counter;
      } else {
        learnt.push_back(q);
      }
    }
    // Pick the next seen literal on the trail to resolve on.
    while (seen_[static_cast<std::size_t>(
               lit_var(trail_[trail_index - 1]))] == 0) {
      --trail_index;
    }
    --trail_index;
    p = trail_[trail_index];
    have_p = true;
    seen_[static_cast<std::size_t>(lit_var(p))] = 0;
    --counter;
    if (counter == 0) break;
    reason = reason_[static_cast<std::size_t>(lit_var(p))];
  }
  learnt[0] = lit_neg(p);

  // Conflict-clause minimisation (local): drop literals implied by the
  // rest of the clause through their reason clause.
  std::size_t kept = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    const auto v = static_cast<std::size_t>(lit_var(learnt[i]));
    const ClauseRef r = reason_[v];
    bool redundant = false;
    if (r != kNoClause) {
      redundant = true;
      const SatLit* lits = clause_lits(r);
      const std::uint32_t size = clause_size(r);
      for (std::uint32_t k = 0; k < size; ++k) {
        const auto u = static_cast<std::size_t>(lit_var(lits[k]));
        if (u == v) continue;
        if (seen_[u] == 0 && var_level_[u] != 0) {
          redundant = false;
          break;
        }
      }
    }
    if (!redundant) learnt[kept++] = learnt[i];
  }
  learnt.resize(kept);

  // Backjump level: the highest level among the non-asserting literals.
  backjump_level = 0;
  std::size_t max_i = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    const std::uint32_t lvl =
        var_level_[static_cast<std::size_t>(lit_var(learnt[i]))];
    if (lvl > backjump_level) {
      backjump_level = lvl;
      max_i = i;
    }
  }
  if (learnt.size() > 1) std::swap(learnt[1], learnt[max_i]);

  for (const SatVar v : to_clear) {
    seen_[static_cast<std::size_t>(v)] = 0;
  }
}

void SatSolver::cancel_until(std::uint32_t level) {
  if (decision_level() <= level) return;
  const std::size_t bound = level_starts_[level];
  for (std::size_t i = trail_.size(); i-- > bound;) {
    const auto v = static_cast<std::size_t>(lit_var(trail_[i]));
    assigns_[v] = kUndef;
    reason_[v] = kNoClause;
    if (heap_pos_[static_cast<std::size_t>(v)] < 0) {
      heap_insert(static_cast<SatVar>(v));
    }
  }
  trail_.resize(bound);
  level_starts_.resize(level);
  qhead_ = trail_.size();
}

void SatSolver::heap_insert(SatVar v) {
  heap_pos_[static_cast<std::size_t>(v)] =
      static_cast<std::int32_t>(heap_.size());
  heap_.push_back(v);
  heap_sift_up(heap_.size() - 1);
}

void SatSolver::heap_sift_up(std::size_t i) {
  const SatVar v = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!heap_less(heap_[parent], v)) break;
    heap_[i] = heap_[parent];
    heap_pos_[static_cast<std::size_t>(heap_[i])] =
        static_cast<std::int32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(i);
}

void SatSolver::heap_sift_down(std::size_t i) {
  const SatVar v = heap_[i];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= heap_.size()) break;
    if (child + 1 < heap_.size() &&
        heap_less(heap_[child], heap_[child + 1])) {
      ++child;
    }
    if (!heap_less(v, heap_[child])) break;
    heap_[i] = heap_[child];
    heap_pos_[static_cast<std::size_t>(heap_[i])] =
        static_cast<std::int32_t>(i);
    i = child;
  }
  heap_[i] = v;
  heap_pos_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(i);
}

SatVar SatSolver::pick_branch_var() {
  while (!heap_.empty()) {
    const SatVar v = heap_[0];
    heap_[0] = heap_.back();
    heap_pos_[static_cast<std::size_t>(heap_[0])] = 0;
    heap_.pop_back();
    if (!heap_.empty()) heap_sift_down(0);
    heap_pos_[static_cast<std::size_t>(v)] = -1;
    if (assigns_[static_cast<std::size_t>(v)] == kUndef) return v;
  }
  return -1;
}

SatResult SatSolver::solve(std::span<const SatLit> assumptions,
                           const SatLimits& limits) {
  ++stats_.solves;
  if (!ok_) return SatResult::Unsat;
  assert(decision_level() == 0);
  if (propagate() != kNoClause) {
    ok_ = false;
    return SatResult::Unsat;
  }

  std::vector<SatLit> learnt;
  std::uint64_t conflicts_this_call = 0;
  std::uint64_t restart_idx = 0;
  std::uint64_t restart_budget = kRestartBase * luby(restart_idx);
  std::uint64_t conflicts_since_restart = 0;
  std::uint64_t loops = 0;
  const auto finish = [&](SatResult r) {
    cancel_until(0);
    return r;
  };

  for (;;) {
    if (((++loops) & kCancelPollMask) == 0 &&
        limits.cancel.stop_requested()) {
      return finish(SatResult::Unknown);
    }
    const ClauseRef confl = propagate();
    if (confl != kNoClause) {
      ++stats_.conflicts;
      ++conflicts_this_call;
      ++conflicts_since_restart;
      if (decision_level() == 0) {
        ok_ = false;
        return finish(SatResult::Unsat);
      }
      if (decision_level() <= assumptions.size()) {
        // The conflict depends only on assumptions (every decision so
        // far is one): unsatisfiable under these assumptions.
        return finish(SatResult::Unsat);
      }
      std::uint32_t backjump = 0;
      analyze(confl, learnt, backjump);
      // Backjumping below the assumption prefix is fine: the levels up
      // to the jump target still correspond one-to-one to the leading
      // assumptions, and the decision loop re-places the rest.
      cancel_until(backjump);
      decay_activities();
      if (learnt.size() == 1) {
        cancel_until(0);
        if (!add_clause(learnt)) return finish(SatResult::Unsat);
      } else {
        ++stats_.learnt_clauses;
        const ClauseRef c = alloc_clause(learnt);
        attach_clause(c);
        enqueue(learnt[0], c);
      }
      if (limits.max_conflicts != 0 &&
          conflicts_this_call >= limits.max_conflicts) {
        return finish(SatResult::Unknown);
      }
      if (conflicts_since_restart >= restart_budget) {
        ++stats_.restarts;
        conflicts_since_restart = 0;
        restart_budget = kRestartBase * luby(++restart_idx);
        cancel_until(0);
      }
      continue;
    }

    // No conflict: place the next assumption, or branch.
    if (decision_level() < assumptions.size()) {
      const SatLit a = assumptions[decision_level()];
      const std::uint8_t v = lit_value(a);
      if (v == kFalse) return finish(SatResult::Unsat);
      new_decision_level();
      if (v == kUndef) enqueue(a, kNoClause);
      continue;
    }
    const SatVar next = pick_branch_var();
    if (next < 0) {
      // Complete assignment: record the model.
      for (std::size_t i = 0; i < assigns_.size(); ++i) {
        model_[i] = assigns_[i] == kTrue ? 1 : 0;
      }
      return finish(SatResult::Sat);
    }
    ++stats_.decisions;
    new_decision_level();
    enqueue(mk_lit(next, phase_[static_cast<std::size_t>(next)] == 0),
            kNoClause);
  }
}

}  // namespace scanc::atpg
