#include "atpg/cnf.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "sim/injection.hpp"

namespace scanc::atpg {

using netlist::GateType;
using netlist::Node;
using netlist::NodeId;

CnfEncoder::CnfEncoder(const netlist::Circuit& circuit,
                       util::Bitset scan_mask, SatSolver& solver)
    : circuit_(&circuit),
      scan_mask_(std::move(scan_mask)),
      solver_(&solver) {
  // One global constant: a variable forced true at the root, so constant
  // rails fold structurally instead of needing per-use clauses.
  const SatVar t = solver_->new_var();
  true_lit_ = mk_lit(t);
  solver_->add_clause({true_lit_});

  const std::size_t n = circuit.num_nodes();
  in_cone_.assign(n, 0);
  bad_scratch_.assign(n, Rail{});
  // Topological position: sources sort first (position 0), combinational
  // gates by their evaluation order, so a fault cone can be encoded by a
  // single ascending sort.
  topo_pos_.assign(n, 0);
  std::uint32_t pos = 1;
  for (const NodeId id : circuit.topo_order()) topo_pos_[id] = pos++;
}

Rail CnfEncoder::binary_source_rail() {
  const SatVar v = solver_->new_var();
  return Rail{mk_lit(v), mk_lit(v, true)};
}

void CnfEncoder::emit(std::initializer_list<SatLit> lits) {
  emit_clause(std::vector<SatLit>(lits));
}

void CnfEncoder::emit_clause(std::vector<SatLit> lits) {
  if (guard_ >= 0) lits.push_back(guard_);
  solver_->add_clause(lits);
}

SatLit CnfEncoder::and_of(std::vector<SatLit> lits) {
  const SatLit false_lit = lit_neg(true_lit_);
  std::size_t out = 0;
  for (const SatLit l : lits) {
    if (l == false_lit) return false_lit;
    if (l == true_lit_) continue;
    lits[out++] = l;
  }
  lits.resize(out);
  if (lits.empty()) return true_lit_;
  if (lits.size() == 1) return lits[0];
  const SatLit v = mk_lit(solver_->new_var());
  std::vector<SatLit> big;
  big.reserve(lits.size() + 1);
  big.push_back(v);
  for (const SatLit l : lits) {
    emit({lit_neg(v), l});
    big.push_back(lit_neg(l));
  }
  emit_clause(std::move(big));
  return v;
}

SatLit CnfEncoder::or_of(std::vector<SatLit> lits) {
  for (SatLit& l : lits) l = lit_neg(l);
  return lit_neg(and_of(std::move(lits)));
}

Rail CnfEncoder::encode_gate(GateType type,
                             const std::vector<Rail>& fanins) {
  const auto ones = [&] {
    std::vector<SatLit> v;
    v.reserve(fanins.size());
    for (const Rail& r : fanins) v.push_back(r.is1);
    return v;
  };
  const auto zeros = [&] {
    std::vector<SatLit> v;
    v.reserve(fanins.size());
    for (const Rail& r : fanins) v.push_back(r.is0);
    return v;
  };
  switch (type) {
    case GateType::Buf:
      return fanins[0];
    case GateType::Not:
      return Rail{fanins[0].is0, fanins[0].is1};
    case GateType::And:
      return Rail{and_of(ones()), or_of(zeros())};
    case GateType::Nand:
      return Rail{or_of(zeros()), and_of(ones())};
    case GateType::Or:
      return Rail{or_of(ones()), and_of(zeros())};
    case GateType::Nor:
      return Rail{and_of(zeros()), or_of(ones())};
    case GateType::Xor:
    case GateType::Xnor: {
      // Pairwise fold of the Kleene XOR: X in → X out, so each rail of
      // the accumulator needs both operand rails binary.
      Rail acc = fanins[0];
      for (std::size_t i = 1; i < fanins.size(); ++i) {
        const Rail& b = fanins[i];
        const SatLit odd = or_of(
            {and_of({acc.is1, b.is0}), and_of({acc.is0, b.is1})});
        const SatLit even = or_of(
            {and_of({acc.is1, b.is1}), and_of({acc.is0, b.is0})});
        acc = Rail{odd, even};
      }
      if (type == GateType::Xnor) return Rail{acc.is0, acc.is1};
      return acc;
    }
    case GateType::Const0:
      return const_rail(false);
    case GateType::Const1:
      return const_rail(true);
    case GateType::Input:
    case GateType::Dff:
      break;  // sources: never encoded as gates
  }
  assert(false && "source node passed to encode_gate");
  return x_rail();
}

void CnfEncoder::ensure_comb_frame() {
  if (!frames_.empty()) return;
  assert(guard_ < 0 && "good circuit must be unguarded");
  std::vector<Rail>& f0 = frames_.emplace_back(circuit_->num_nodes());
  for (const NodeId id : circuit_->primary_inputs()) {
    f0[id] = binary_source_rail();
  }
  const auto ffs = circuit_->flip_flops();
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    f0[ffs[i]] = scanned(i) ? binary_source_rail() : x_rail();
  }
  // Constant nodes are sources too (absent from topo_order).
  for (NodeId id = 0; id < circuit_->num_nodes(); ++id) {
    const GateType t = circuit_->node(id).type;
    if (t == GateType::Const0 || t == GateType::Const1) {
      f0[id] = const_rail(t == GateType::Const1);
    }
  }
  std::vector<Rail> fanin_rails;
  for (const NodeId id : circuit_->topo_order()) {
    const Node& n = circuit_->node(id);
    fanin_rails.clear();
    for (const NodeId in : n.fanins) fanin_rails.push_back(f0[in]);
    f0[id] = encode_gate(n.type, fanin_rails);
  }
}

void CnfEncoder::ensure_two_frames() {
  ensure_comb_frame();
  if (frames_.size() >= 2) return;
  assert(guard_ < 0 && "good circuit must be unguarded");
  std::vector<Rail>& f1 = frames_.emplace_back(circuit_->num_nodes());
  for (const NodeId id : circuit_->primary_inputs()) {
    f1[id] = binary_source_rail();
  }
  // Frame-1 state is frame-0's captured next state: alias every
  // flip-flop's rails to its D driver's frame-0 rails (scanned or not —
  // the latch is functional for all state bits).
  for (const NodeId ff : circuit_->flip_flops()) {
    f1[ff] = frames_[0][circuit_->node(ff).fanins[0]];
  }
  for (NodeId id = 0; id < circuit_->num_nodes(); ++id) {
    const GateType t = circuit_->node(id).type;
    if (t == GateType::Const0 || t == GateType::Const1) {
      f1[id] = const_rail(t == GateType::Const1);
    }
  }
  std::vector<Rail> fanin_rails;
  for (const NodeId id : circuit_->topo_order()) {
    const Node& n = circuit_->node(id);
    fanin_rails.clear();
    for (const NodeId in : n.fanins) fanin_rails.push_back(f1[in]);
    f1[id] = encode_gate(n.type, fanin_rails);
  }
}

std::vector<NodeId> CnfEncoder::faulty_cone(NodeId seed) {
  std::vector<NodeId> cone;
  std::vector<NodeId> stack{seed};
  // in_cone_ doubles as the visited set; the caller clears the marks
  // once the fault is fully encoded.
  auto& marks = in_cone_;
  marks[seed] = 1;
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    cone.push_back(id);
    for (const NodeId out : circuit_->node(id).fanouts) {
      // A flip-flop's in-cycle value is a source: the effect reaching
      // its D input is observed at capture, never propagated through.
      if (marks[out] || circuit_->node(out).type == GateType::Dff) {
        continue;
      }
      marks[out] = 1;
      stack.push_back(out);
    }
  }
  std::sort(cone.begin(), cone.end(), [&](NodeId a, NodeId b) {
    return topo_pos_[a] < topo_pos_[b];
  });
  return cone;
}

void CnfEncoder::encode_faulty_cone(std::size_t frame,
                                    const std::vector<NodeId>& cone,
                                    const Rail& seed_rail,
                                    std::vector<Rail>& bad_rails) {
  std::vector<Rail> fanin_rails;
  for (std::size_t i = 0; i < cone.size(); ++i) {
    const NodeId id = cone[i];
    if (i == 0) {
      bad_rails[id] = seed_rail;
      continue;
    }
    const Node& n = circuit_->node(id);
    fanin_rails.clear();
    for (const NodeId in : n.fanins) {
      fanin_rails.push_back(in_cone_[in] ? bad_rails[in]
                                         : good(frame, in));
    }
    bad_rails[id] = encode_gate(n.type, fanin_rails);
  }
}

void CnfEncoder::add_detect_terms(const Rail& good_rail,
                                  const Rail& bad_rail,
                                  std::vector<SatLit>& detect) {
  const SatLit false_lit = lit_neg(true_lit_);
  const SatLit hi = and_of({good_rail.is1, bad_rail.is0});
  if (hi != false_lit) detect.push_back(hi);
  const SatLit lo = and_of({good_rail.is0, bad_rail.is1});
  if (lo != false_lit) detect.push_back(lo);
}

template <typename BadOf>
void CnfEncoder::add_miter(std::size_t frame, const fault::Fault& fault,
                           SatLit selector, BadOf&& bad_of) {
  std::vector<SatLit> detect;
  for (const NodeId po : circuit_->primary_outputs()) {
    const Rail& g = good(frame, po);
    const Rail b = bad_of(po);
    if (b.is1 == g.is1 && b.is0 == g.is0) continue;
    add_detect_terms(g, b, detect);
  }
  const auto ffs = circuit_->flip_flops();
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    if (!scanned(i)) continue;
    const NodeId d = circuit_->node(ffs[i]).fanins[0];
    const Rail& g = good(frame, d);
    // A fault on the flip-flop's own D pin corrupts exactly this
    // capture (and nothing else): the faulty value is the stuck
    // constant rather than the cone value.
    const bool own_pin =
        fault.node == ffs[i] && fault.pin != sim::kStemPin;
    const Rail b = own_pin ? const_rail(fault.value) : bad_of(d);
    if (b.is1 == g.is1 && b.is0 == g.is0) continue;
    add_detect_terms(g, b, detect);
  }
  // One observation point must show the effect.  With no point left the
  // clause degenerates to (¬selector): untestable, proven by unit
  // propagation alone.
  emit_clause(std::move(detect));
  (void)selector;
}

void CnfEncoder::add_stuck_fault(const fault::Fault& fault,
                                 SatLit selector) {
  ensure_comb_frame();
  guard_ = lit_neg(selector);
  const Node& n = circuit_->node(fault.node);

  if (n.type == GateType::Dff && fault.pin != sim::kStemPin) {
    // Branch fault on a flip-flop's D pin: no combinational fanout —
    // the corruption exists only in the captured state (see add_miter's
    // own-pin case).  Activation still requires the driver to carry the
    // opposite value.
    const Rail& site = good(0, n.fanins[0]);
    emit({fault.value ? site.is0 : site.is1});
    add_miter(0, fault, selector, [&](NodeId id) -> Rail {
      return good(0, id);
    });
    guard_ = -1;
    return;
  }

  // Activation: the good value at the fault site must be the binary
  // opposite of the stuck value (with conservative X semantics an X at
  // the site can never yield a binary difference downstream).
  NodeId seed = fault.node;
  Rail seed_rail;
  if (fault.pin == sim::kStemPin) {
    const Rail& site = good(0, fault.node);
    emit({fault.value ? site.is0 : site.is1});
    seed_rail = const_rail(fault.value);
  } else {
    const NodeId in = n.fanins[static_cast<std::size_t>(fault.pin)];
    const Rail& site = good(0, in);
    emit({fault.value ? site.is0 : site.is1});
    // The faulty gate output: the driven gate re-evaluated with the
    // faulted pin pinned to the stuck constant.
    std::vector<Rail> fanin_rails;
    fanin_rails.reserve(n.fanins.size());
    for (std::size_t j = 0; j < n.fanins.size(); ++j) {
      fanin_rails.push_back(j == static_cast<std::size_t>(fault.pin)
                                ? const_rail(fault.value)
                                : good(0, n.fanins[j]));
    }
    seed_rail = encode_gate(n.type, fanin_rails);
  }

  const std::vector<NodeId> cone = faulty_cone(seed);
  encode_faulty_cone(0, cone, seed_rail, bad_scratch_);
  add_miter(0, fault, selector, [&](NodeId id) -> Rail {
    return in_cone_[id] ? bad_scratch_[id] : good(0, id);
  });
  for (const NodeId id : cone) in_cone_[id] = 0;
  guard_ = -1;
}

void CnfEncoder::add_transition_fault(const fault::Fault& fault,
                                      SatLit selector) {
  ensure_two_frames();
  assert(fault.pin == sim::kStemPin &&
         "transition faults are stem faults");
  guard_ = lit_neg(selector);
  const bool stale = fault.value;

  // Launch: the stem holds the stale value in frame 0 and the opposite
  // (binary) value in frame 1 — the delayed transition.
  const Rail& g0 = good(0, fault.node);
  emit({stale ? g0.is1 : g0.is0});
  const Rail& g1 = good(1, fault.node);
  emit({stale ? g1.is0 : g1.is1});

  // Capture: the slow line still shows the stale value in frame 1, i.e.
  // the stem is stuck at the stale value in the faulty frame-1 copy.
  const std::vector<NodeId> cone = faulty_cone(fault.node);
  encode_faulty_cone(1, cone, const_rail(stale), bad_scratch_);
  add_miter(1, fault, selector, [&](NodeId id) -> Rail {
    return in_cone_[id] ? bad_scratch_[id] : good(1, id);
  });
  for (const NodeId id : cone) in_cone_[id] = 0;
  guard_ = -1;
}

TestCube CnfEncoder::extract_comb_test() const {
  TestCube cube;
  const auto ffs = circuit_->flip_flops();
  cube.state.resize(ffs.size(), sim::V3::X);
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    if (!scanned(i)) continue;
    cube.state[i] = sim::v3_from_bool(lit_model(good(0, ffs[i]).is1));
  }
  const auto pis = circuit_->primary_inputs();
  cube.inputs.resize(pis.size(), sim::V3::X);
  for (std::size_t i = 0; i < pis.size(); ++i) {
    cube.inputs[i] = sim::v3_from_bool(lit_model(good(0, pis[i]).is1));
  }
  return cube;
}

void CnfEncoder::extract_transition_test(sim::Vector3& state,
                                         sim::Sequence& seq) const {
  const auto ffs = circuit_->flip_flops();
  state.assign(ffs.size(), sim::V3::X);
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    if (!scanned(i)) continue;
    state[i] = sim::v3_from_bool(lit_model(good(0, ffs[i]).is1));
  }
  const auto pis = circuit_->primary_inputs();
  seq.frames.assign(2, sim::Vector3(pis.size(), sim::V3::X));
  for (std::size_t f = 0; f < 2; ++f) {
    for (std::size_t i = 0; i < pis.size(); ++i) {
      seq.frames[f][i] =
          sim::v3_from_bool(lit_model(good(f, pis[i]).is1));
    }
  }
}

}  // namespace scanc::atpg
