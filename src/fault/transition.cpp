#include "fault/transition.hpp"

#include <algorithm>

namespace scanc::fault {

using netlist::Circuit;
using netlist::NodeId;
using sim::PackedV3;
using sim::Sequence;
using sim::V3;
using sim::Vector3;

TransitionFaultSim::TransitionFaultSim(const Circuit& circuit)
    : circuit_(&circuit),
      sim_(circuit),
      injections_(circuit.num_nodes()),
      prev_good_(circuit.num_nodes(), V3::X) {}

util::Bitset TransitionFaultSim::detect(const Vector3& scan_in,
                                        const Sequence& seq) {
  util::Bitset detected(num_transition_faults(*circuit_));
  if (seq.length() < 2) return detected;  // no launch cycle
  const std::size_t len = seq.length();

  // Fault-free pass: record the state entering each frame and every
  // node's value per frame (the launch conditions).
  std::vector<Vector3> state_before(len);
  std::vector<std::vector<V3>> good(len,
                                    std::vector<V3>(circuit_->num_nodes()));
  sim_.reset();
  sim_.load_state(scan_in);
  for (std::size_t t = 0; t < len; ++t) {
    state_before[t] = sim_.state_slot(0);
    sim_.apply_frame(seq.frames[t]);
    for (NodeId id = 0; id < circuit_->num_nodes(); ++id) {
      good[t][id] = sim::slot(sim_.value(id), 0);
    }
    sim_.latch();
  }

  // Per capture frame t >= 1: candidates are undetected faults whose
  // launch value held at t-1; the stale value acts as a stuck-at for one
  // cycle, observed at the POs of frame t (plus scan-out when t is
  // last).
  const auto po_detections = [&]() {
    std::uint64_t det = 0;
    for (const NodeId po : circuit_->primary_outputs()) {
      const PackedV3 w = sim_.value(po);
      const bool ref0 = (w.is0 & 1) != 0;
      const bool ref1 = (w.is1 & 1) != 0;
      if (ref0 == ref1) continue;
      det |= sim::differs_from_reference(w, ref1);
    }
    return det & ~1ULL;
  };
  const auto scan_detections = [&]() {
    std::uint64_t det = 0;
    for (std::size_t i = 0; i < circuit_->num_flip_flops(); ++i) {
      const PackedV3 w = sim_.captured(i);
      const bool ref0 = (w.is0 & 1) != 0;
      const bool ref1 = (w.is1 & 1) != 0;
      if (ref0 == ref1) continue;
      det |= sim::differs_from_reference(w, ref1);
    }
    return det & ~1ULL;
  };

  std::vector<std::size_t> group;  // transition-fault indices
  group.reserve(63);
  for (std::size_t t = 1; t < len; ++t) {
    // Gather this frame's launch-ready candidates.
    std::vector<std::size_t> candidates;
    for (NodeId id = 0; id < circuit_->num_nodes(); ++id) {
      const V3 launch = good[t - 1][id];
      if (!sim::is_binary(launch)) continue;
      const bool slow_to_fall = launch == V3::One;
      const std::size_t f = transition_fault_index(id, slow_to_fall);
      if (!detected.test(f)) candidates.push_back(f);
    }

    for (std::size_t base = 0; base < candidates.size(); base += 63) {
      const std::size_t n =
          std::min<std::size_t>(63, candidates.size() - base);
      injections_.clear();
      for (std::size_t j = 0; j < n; ++j) {
        const std::size_t f = candidates[base + j];
        const NodeId node = static_cast<NodeId>(f / 2);
        // STR holds the line at 0 through the capture cycle; STF at 1.
        const bool stuck_one = (f & 1) != 0;
        injections_.add(node, sim::kStemPin, stuck_one, 1ULL << (j + 1));
      }
      sim_.reset(&injections_);
      sim_.load_state(state_before[t], &injections_);
      sim_.apply_frame(seq.frames[t], &injections_);
      std::uint64_t det = po_detections();
      if (t + 1 == len) {
        sim_.latch(&injections_);
        det |= scan_detections();
      }
      while (det != 0) {
        const int bit = std::countr_zero(det);
        det &= det - 1;
        detected.set(candidates[base + static_cast<std::size_t>(bit) - 1]);
      }
    }
  }
  return detected;
}

util::Bitset TransitionFaultSim::coverage(
    std::span<const Vector3> scan_ins, std::span<const Sequence> seqs) {
  util::Bitset covered(num_transition_faults(*circuit_));
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    covered |= detect(scan_ins[i], seqs[i]);
  }
  return covered;
}

}  // namespace scanc::fault
