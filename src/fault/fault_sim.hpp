// Parallel-fault sequential fault simulator.
//
// Simulates 63 faulty machines plus the fault-free reference per pass
// (one simulation slot each; slot 0 is fault-free).  Faults are injected
// as stuck-line masks (sim/injection.hpp) at the representative fault of
// each collapsed class.
//
// Layering (docs/execution.md):
//   engine     fault::GroupWorker      — worker-local mutable state
//   execution  fault::for_each_group   — group partitioning + thread pool
//   call-site  FaultSimulator queries  — this file; paper-facing API
// Every query routes through the same group plan, so set_num_threads(n)
// parallelises all of them while keeping results bit-identical to a
// serial run (see group_exec.hpp for the determinism argument).
//
// Kernels: each group pass runs either the full CSR-levelized kernel
// (whole circuit, 64 slots wide) or the cone-restricted kernel
// (sim/cone_kernel.hpp), which evaluates only the group's union fanout
// cone and seeds its boundary from a shared fault-free trace
// (sim/node_trace.hpp, memoized across queries by sim/trace_cache.hpp).
// set_kernel() selects the mode; results are bit-identical either way.
//
// Detection is conservative (standard for 3-valued simulation): a fault
// is detected at an observation point only when both the fault-free and
// the faulty values are binary and differ.  Observation points are the
// primary outputs at every time unit and, for scan tests, the scan-out
// state after the final time unit.
//
// Supported queries map one-to-one onto the operations the DAC-2001
// procedure needs:
//   - detect_no_scan      : Phase 1 Step 1 (faults detected by T0 alone)
//   - detect_scan_test    : Phase 1 Step 2 / Phase 3 (coverage of (SI,T))
//   - detection_times     : Phase 1 Step 3 (scan-out time selection from a
//                           single simulation pass)
//   - detects_all         : Phase 2 / Phase 4 coverage-preservation checks
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fault/fault_list.hpp"
#include "fault/group_exec.hpp"
#include "netlist/circuit.hpp"
#include "sim/seq_sim.hpp"
#include "sim/simd.hpp"
#include "sim/trace_cache.hpp"
#include "util/bitset.hpp"
#include "util/cancel.hpp"

namespace scanc::fault {

/// A set of collapsed fault classes.
using FaultSet = util::Bitset;

/// Which simulation kernel the queries run on.  All modes produce
/// bit-identical results:
///   Auto — per fault group, use the cone-restricted kernel when the
///          group's union fanout cone is small enough to pay off, else
///          the full kernel (the default);
///   Full — always evaluate the whole circuit (no fault-free trace is
///          computed under stuck-at; frame-gated models still build one
///          as their activation oracle);
///   Cone — always use the cone-restricted kernel (testing/benchmarks).
enum class KernelMode { Auto, Full, Cone };

class FaultSimulator {
 public:
  FaultSimulator(const netlist::Circuit& circuit, const FaultList& faults);

  /// Partial-scan construction: `scan_mask` selects which flip-flops (in
  /// flip_flops() order) are on the scan chain.  Scan-in values at
  /// unscanned positions are forced to X (their state is unknown at test
  /// start) and scan-out observes only scanned flip-flops.  The paper
  /// notes the procedure extends to partial scan; this is that extension.
  FaultSimulator(const netlist::Circuit& circuit, const FaultList& faults,
                 util::Bitset scan_mask);

  /// Worker threads every query fans fault groups across: 1 (default)
  /// runs serially on the calling thread, 0 means one per hardware
  /// thread.  Results are bit-identical for every setting.
  void set_num_threads(std::size_t n) noexcept { num_threads_ = n; }
  [[nodiscard]] std::size_t num_threads() const noexcept {
    return num_threads_;
  }

  /// Cooperative cancellation for every query: once `token` is raised
  /// (explicitly or by its deadline), in-flight passes abort at the
  /// next simulation-frame boundary, pending fault groups are skipped,
  /// and the query returns promptly with a *partial* result.  Callers
  /// that observe token.stop_requested() must treat results as
  /// incomplete (detects_all conservatively reports false).  The
  /// default (inert) token never cancels and costs one relaxed load
  /// per frame.
  void set_cancel(util::CancelToken token) noexcept {
    cancel_ = std::move(token);
  }
  [[nodiscard]] const util::CancelToken& cancel() const noexcept {
    return cancel_;
  }

  /// Kernel selection for every query (see KernelMode).  Results are
  /// bit-identical across modes; only the work per group changes.
  void set_kernel(KernelMode m) noexcept { kernel_ = m; }
  [[nodiscard]] KernelMode kernel() const noexcept { return kernel_; }

  /// SIMD lane width for the wide passes (sim/simd.hpp): batch queries
  /// pack lanes() tests per pass (PPSFP), and Full-kernel stuck-at
  /// queries pack lanes() fault groups per pass.  Auto (default) picks
  /// the widest ISA the CPU supports; W64 disables both wide paths.
  /// Results are bit-identical across widths.
  void set_lane_width(sim::LaneWidth w) noexcept { lane_width_ = w; }
  [[nodiscard]] sim::LaneWidth lane_width() const noexcept {
    return lane_width_;
  }

  /// The (width, ISA) configuration lane_width() resolves to on this
  /// machine.
  [[nodiscard]] sim::SimdConfig simd_config() const noexcept {
    return sim::resolve_simd(lane_width_);
  }

  /// The shared fault-free trace cache (exposed for tests/diagnostics).
  [[nodiscard]] const sim::TraceCache& trace_cache() const noexcept {
    return trace_cache_;
  }

  /// The scan-chain membership mask (all-set for full scan).
  [[nodiscard]] const util::Bitset& scan_mask() const noexcept {
    return scan_mask_;
  }

  /// Number of scanned flip-flops (the N_SV that scan operations cost).
  [[nodiscard]] std::size_t num_scanned() const noexcept {
    return scan_mask_.count();
  }

  /// Number of collapsed fault classes (the size of every FaultSet).
  [[nodiscard]] std::size_t num_classes() const noexcept {
    return faults_->num_classes();
  }

  /// The simulated circuit.
  [[nodiscard]] const netlist::Circuit& circuit() const noexcept {
    return *circuit_;
  }

  /// The fault universe.
  [[nodiscard]] const FaultList& fault_list() const noexcept {
    return *faults_;
  }

  /// An all-true FaultSet over the fault classes.
  [[nodiscard]] FaultSet all_faults() const {
    FaultSet s(num_classes());
    s.fill();
    return s;
  }

  /// Faults detected by `seq` applied from the all-X (unknown) state with
  /// observation at primary outputs only — the circuit runs without scan.
  /// If `targets` is given, only those classes are simulated.
  [[nodiscard]] FaultSet detect_no_scan(const sim::Sequence& seq,
                                        const FaultSet* targets = nullptr);

  /// Faults detected by the scan test (scan_in, seq): the state is set to
  /// `scan_in`, POs are observed every time unit, and the state reached
  /// after the final time unit is observed by scan-out.
  [[nodiscard]] FaultSet detect_scan_test(const sim::Vector3& scan_in,
                                          const sim::Sequence& seq,
                                          const FaultSet* targets = nullptr);

  /// One test of a batch query.  `scan_in == nullptr` means the test
  /// runs without scan (all-X start, POs only), as detect_no_scan.
  struct BatchTest {
    const sim::Vector3* scan_in = nullptr;
    const sim::Sequence* seq = nullptr;
  };

  /// Pattern-parallel (PPSFP) batch of detect_scan_test /
  /// detect_no_scan: one detected-fault set per test, in order,
  /// bit-identical to running the per-test query on each.  The batch
  /// must be homogeneous — every test with scan-in, or every test
  /// without.  Packs simd_config().lanes() tests into the bit-lanes of
  /// one wide pass per fault group, sharing the per-group setup and
  /// every gate evaluation across the batch; falls back to the per-test
  /// query when the batch or the lane width is 1, or under Cone kernel
  /// mode (the cone kernel is per-test by construction).
  [[nodiscard]] std::vector<FaultSet> detect_batch(
      std::span<const BatchTest> tests, const FaultSet* targets = nullptr);

  /// Per-fault detection-time records for the scan test (scan_in, seq).
  ///
  /// For each simulated class f:
  ///   first_po[f']   = earliest time unit at which f is detected at a PO
  ///                    (-1 if never), and
  ///   state_diff[f'] = the set of time units u such that, if scan-out
  ///                    were performed after time unit u, f would be
  ///                    detected at the scanned-out state.
  /// Because the truncated test (SI, T[0,u]) behaves identically to the
  /// full test on the first u+1 time units, these records determine the
  /// coverage of *every* prefix test without re-simulation:
  ///   (SI, T[0,u]) detects f  iff  first_po[f] <= u or u in state_diff[f].
  struct DetectionTimes {
    std::vector<FaultClassId> targets;    ///< simulated classes, in order
    std::vector<std::int64_t> first_po;   ///< per target; -1 = never
    std::vector<util::Bitset> state_diff; ///< per target; size = seq length

    /// Coverage of the prefix test ending at time unit u (see above).
    [[nodiscard]] bool detected_by_prefix(std::size_t target_index,
                                          std::size_t u) const {
      return (first_po[target_index] >= 0 &&
              first_po[target_index] <= static_cast<std::int64_t>(u)) ||
             state_diff[target_index].test(u);
    }
  };

  [[nodiscard]] DetectionTimes detection_times(const sim::Vector3& scan_in,
                                               const sim::Sequence& seq,
                                               const FaultSet& targets);

  /// Pattern-parallel (PPSFP) batch of detection_times: one record per
  /// test, in order, bit-identical to the per-test query.  Every test
  /// must have scan-in.  Same packing and fallback rules as
  /// detect_batch.
  [[nodiscard]] std::vector<DetectionTimes> times_batch(
      std::span<const BatchTest> tests, const FaultSet& targets);

  /// Lighter variant of detection_times for coverage checking: records
  /// each target's earliest PO detection time and whether the complete
  /// test (including the final scan-out) detects it, without per-frame
  /// scan-out records.  Groups whose faults are all PO-detected exit
  /// early, making this much cheaper than detection_times on passing
  /// checks.
  struct PrefixDetection {
    std::vector<FaultClassId> targets;   ///< simulated classes, in order
    std::vector<std::int64_t> first_po;  ///< per target; -1 = not at a PO
    util::Bitset detected;               ///< per *class*: test detects it

    /// True if every simulated target is detected.  `detected` is
    /// indexed by class, not by target, so this checks the targets
    /// actually simulated — extra class bits (e.g. after merging in
    /// another query's result) don't skew the answer.
    [[nodiscard]] bool all_detected() const noexcept {
      for (const FaultClassId t : targets) {
        if (!detected.test(t)) return false;
      }
      return true;
    }
  };

  [[nodiscard]] PrefixDetection prefix_detection(const sim::Vector3& scan_in,
                                                 const sim::Sequence& seq,
                                                 const FaultSet& targets);

  /// True iff the scan test (scan_in, seq) detects every class in
  /// `required`.  Exits early where possible: serially, the first
  /// failing group stops the scan; in parallel, a shared "all satisfied
  /// so far" flag cancels in-flight groups cooperatively.
  [[nodiscard]] bool detects_all(const sim::Vector3& scan_in,
                                 const sim::Sequence& seq,
                                 const FaultSet& required);

  /// Compares every target fault's predicted response under the scan
  /// test (scan_in, seq) against an observed response, returning the set
  /// of faults *consistent* with the observation.  Comparison is
  /// conservative: positions where either side is X never count as a
  /// mismatch.  `observed_pos[t]` is the observed PO vector after time
  /// unit t; `observed_scan_out` the observed scan-out state.
  /// This is the kernel of effect-cause fault diagnosis (diag/).
  /// Cancellation is conservative in the inclusive direction: groups
  /// skipped or aborted by a raised cancel token report no mismatches,
  /// so their faults stay in the consistent set (candidates are never
  /// wrongly excluded by a partial result).
  [[nodiscard]] FaultSet consistent_faults(
      const sim::Vector3& scan_in, const sim::Sequence& seq,
      std::span<const sim::Vector3> observed_pos,
      const sim::Vector3& observed_scan_out, const FaultSet& targets);

  /// Incremental no-scan simulation over a fixed target set: all machines
  /// start in the all-X state and advance one frame per step() with PO
  /// observation.  snapshot()/restore() allow speculative extension —
  /// the engine a simulation-based sequence generator needs.
  ///
  /// Sessions run on the parent's serial engine: step() is not
  /// parallelised and must not run concurrently with parent queries.
  class Session {
   public:
    Session(FaultSimulator& parent, const FaultSet& targets);

    /// Applies one PI vector; updates detected().  Returns the number of
    /// classes newly detected on this frame.
    std::size_t step(const sim::Vector3& pi);

    /// Classes detected at POs so far.
    [[nodiscard]] const FaultSet& detected() const noexcept {
      return detected_;
    }

    /// Number of (fault, flip-flop) pairs currently holding a latched
    /// fault effect (binary difference vs the fault-free machine) — a
    /// propagation-potential fitness signal.
    [[nodiscard]] std::size_t latched_effects() const;

    /// Opaque saved state of the whole session.
    struct Snapshot {
      std::vector<sim::PackedV3> ff_values;  // per group x per FF
      FaultSet detected;
      std::vector<std::uint32_t> group_remaining;
      // Frame-gated sessions only (empty / 0 under stuck-at):
      sim::Vector3 free_state;         // fault-free machine state
      std::vector<sim::V3> prev_site;  // per target: last site value
      std::size_t tdf_latched = 0;
    };

    [[nodiscard]] Snapshot snapshot() const;
    void restore(const Snapshot& snap);

   private:
    /// Advances a frame-gated session (see step()).
    std::size_t step_tdf(const sim::Vector3& pi);

    FaultSimulator* parent_;
    GroupWorker* worker_;  // the parent's serial engine
    std::vector<FaultClassId> targets_;
    std::size_t num_groups_ = 0;
    std::vector<sim::PackedV3> ff_values_;  // num_groups x num_ffs
    /// Per-group injection maps, built once at construction — step()
    /// re-installs simulation state per group every frame, but the
    /// injections never change for a fixed target set.  Unused (empty)
    /// under a frame-gated model, where injections depend on the frame.
    std::vector<sim::InjectionMap> group_injections_;
    FaultSet detected_;
    /// Undetected faults left per group; fully-detected groups are
    /// skipped by step().
    std::vector<std::uint32_t> group_remaining_;
    // --- frame-gated (transition-delay) session state ------------------
    // Under a frame-gated model effects never persist, so the session
    // tracks only the fault-free machine state entering the next frame
    // (a scalar Vector3 — the free machine is slot-uniform): each step
    // launches active faults one-frame from it via load_state, which
    // applies FF-stem injections exactly like the batch passes.
    // prev_site_ holds the free value of each target's stem from the
    // previous frame (X before the first step: frame 0 never launches).
    bool tdf_ = false;
    sim::Vector3 free_state_;         // per FF, entering the next frame
    std::vector<sim::V3> prev_site_;  // per target
    std::size_t tdf_latched_ = 0;     // latched_effects() under TDF
  };

 private:
  /// The execution policy every query plan runs under.
  [[nodiscard]] ExecPolicy policy() const noexcept {
    return ExecPolicy{num_threads_};
  }

  /// Rejects a scan-in vector whose width is not flip_flops().size().
  /// Scan-in states are indexed in flip_flops() order by every kernel;
  /// a short vector would read out of bounds (and the two kernels would
  /// read *different* garbage), so the width is validated once at the
  /// query boundary.
  void check_scan_in(const sim::Vector3& scan_in) const;

  /// Targets to simulate: every class, or the members of `targets`,
  /// ordered by cone locality (pack_rank_) so that faults whose fanout
  /// cones overlap land in the same group — the smaller the union cone,
  /// the more the cone kernel saves.  The order is a fixed total order
  /// (rank, then class id), identical for every query and every subset.
  [[nodiscard]] std::vector<FaultClassId> collect(
      const FaultSet* targets) const;

  /// Scatters per-group detection masks into a per-class FaultSet, in
  /// group order.  With `complement`, classes whose bit is *clear* are
  /// set instead (mismatch mask -> consistent set).
  void reduce_masks(std::span<const FaultClassId> list,
                    std::span<const std::uint64_t> group_masks,
                    FaultSet& out, bool complement = false) const;

  /// Fault-free trace for the kernel choice: nullptr in Full mode under
  /// a frame-less model, else the cached (masked scan_in, seq) trace
  /// shared across groups (frame-gated models always need it for the
  /// activation predicate).
  [[nodiscard]] std::shared_ptr<const sim::NodeTrace> acquire_trace(
      const sim::Vector3* scan_in, const sim::Sequence& seq);

  /// Fault-free traces for a batch query: one per test under a
  /// frame-gated model (the batch passes' activation oracle), empty
  /// under stuck-at (the wide passes run the full kernel and need no
  /// trace).  Acquired before the group fan-out — TraceCache is not
  /// thread-safe.
  [[nodiscard]] std::vector<std::shared_ptr<const sim::NodeTrace>>
  acquire_traces(std::span<const BatchTest> tests);

  /// True when a (sub)query should take the wide PPSFP path.
  [[nodiscard]] bool use_batch(std::size_t num_tests,
                               const sim::SimdConfig& cfg) const noexcept {
    return num_tests > 1 && cfg.lanes() > 1 && kernel_ != KernelMode::Cone;
  }

  /// Runs a detect-shaped plan on the wide fault-parallel path (lanes()
  /// groups per pass) when it applies — Full kernel, frame-less model,
  /// >= 2 groups, wide lanes — filling det (one mask per group) and
  /// returning true.  Returns false untouched when the per-group 64-bit
  /// plan should run instead.
  bool wide_fp_detect(const sim::Vector3* scan_in, const sim::Sequence& seq,
                      std::span<const FaultClassId> list,
                      bool observe_scan_out,
                      const std::atomic<bool>* keep_going,
                      std::span<std::uint64_t> det);

  /// The per-group kernel choice handed to every worker pass.
  [[nodiscard]] KernelChoice kernel_choice(
      const sim::NodeTrace* trace) const noexcept {
    return KernelChoice{trace, kernel_ == KernelMode::Cone,
                        kernel_ != KernelMode::Full};
  }

  const netlist::Circuit* circuit_;
  const FaultList* faults_;
  util::Bitset scan_mask_;
  std::size_t num_threads_ = 1;
  KernelMode kernel_ = KernelMode::Auto;
  sim::LaneWidth lane_width_ = sim::LaneWidth::Auto;
  util::CancelToken cancel_;
  GroupExecutor exec_;
  sim::TraceCache trace_cache_;
  std::vector<std::uint32_t> pack_rank_;  ///< per class: cone-locality rank
};

}  // namespace scanc::fault
