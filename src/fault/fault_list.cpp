#include "fault/fault_list.hpp"

#include <numeric>
#include <unordered_map>

namespace scanc::fault {

using netlist::Circuit;

std::string fault_name(const Fault& f, const Circuit& c,
                       const FaultModel& model) {
  std::string s = c.node(f.node).name;
  if (f.pin != sim::kStemPin) {
    s += ".in" + std::to_string(f.pin);
  }
  s += model.fault_suffix(f);
  return s;
}

std::string fault_name(const Fault& f, const Circuit& c) {
  return fault_name(f, c, FaultModel::stuck_at());
}

namespace {

/// Union-find with path halving.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[b] = a;
  }

 private:
  std::vector<std::uint32_t> parent_;
};

}  // namespace

FaultList FaultList::build(const Circuit& c, const FaultModel& model) {
  FaultList fl;
  fl.model_ = &model;
  model.enumerate(c, fl.faults_);

  UnionFind uf(fl.faults_.size());
  model.collapse(c, fl.faults_,
                 [&uf](std::uint32_t a, std::uint32_t b) { uf.unite(a, b); });

  // Assign dense class ids, representative = the root fault.
  fl.class_of_.assign(fl.faults_.size(), 0);
  std::unordered_map<std::uint32_t, FaultClassId> root_to_class;
  for (std::uint32_t i = 0; i < fl.faults_.size(); ++i) {
    const std::uint32_t root = uf.find(i);
    auto [it, inserted] = root_to_class.emplace(
        root, static_cast<FaultClassId>(fl.representatives_.size()));
    if (inserted) fl.representatives_.push_back(root);
    fl.class_of_[i] = it->second;
  }
  return fl;
}

}  // namespace scanc::fault
