#include "fault/fault_list.hpp"

#include <numeric>
#include <unordered_map>

namespace scanc::fault {

using netlist::Circuit;
using netlist::GateType;
using netlist::Node;
using netlist::NodeId;

std::string fault_name(const Fault& f, const Circuit& c) {
  std::string s = c.node(f.node).name;
  if (f.pin != sim::kStemPin) {
    s += ".in" + std::to_string(f.pin);
  }
  s += f.stuck_one ? "/SA1" : "/SA0";
  return s;
}

namespace {

/// Union-find with path halving.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[b] = a;
  }

 private:
  std::vector<std::uint32_t> parent_;
};

std::uint64_t branch_key(NodeId node, int pin, bool stuck_one) {
  return (static_cast<std::uint64_t>(node) << 32) |
         (static_cast<std::uint64_t>(pin) << 1) |
         static_cast<std::uint64_t>(stuck_one);
}

}  // namespace

FaultList FaultList::build(const Circuit& c) {
  FaultList fl;

  // Stem faults: index node*2 + stuck_one.
  fl.faults_.reserve(c.num_nodes() * 2);
  for (NodeId id = 0; id < c.num_nodes(); ++id) {
    fl.faults_.push_back(Fault{id, sim::kStemPin, false});
    fl.faults_.push_back(Fault{id, sim::kStemPin, true});
  }

  // Branch faults where the driving stem has fanout > 1.  A primary
  // output designation is an additional (directly observable) fanout of
  // the stem, so a PO signal that also feeds gates gets branch faults on
  // every gate connection.
  const auto effective_fanout = [&](NodeId stem) {
    return c.node(stem).fanouts.size() +
           (c.is_primary_output(stem) ? 1u : 0u);
  };
  std::unordered_map<std::uint64_t, std::uint32_t> branch_index;
  for (NodeId id = 0; id < c.num_nodes(); ++id) {
    const Node& n = c.node(id);
    if (!netlist::is_combinational(n.type) && n.type != GateType::Dff) {
      continue;
    }
    for (std::size_t pin = 0; pin < n.fanins.size(); ++pin) {
      if (effective_fanout(n.fanins[pin]) <= 1) continue;
      for (const bool sv : {false, true}) {
        branch_index.emplace(branch_key(id, static_cast<int>(pin), sv),
                             static_cast<std::uint32_t>(fl.faults_.size()));
        fl.faults_.push_back(Fault{id, static_cast<std::int32_t>(pin), sv});
      }
    }
  }

  // Resolves the fault index of "fanin pin of node `id`, stuck at sv":
  // the branch fault if one was materialized, else the driving stem.
  const auto input_fault = [&](NodeId id, std::size_t pin,
                               bool sv) -> std::uint32_t {
    const auto it =
        branch_index.find(branch_key(id, static_cast<int>(pin), sv));
    if (it != branch_index.end()) return it->second;
    const NodeId stem = c.node(id).fanins[pin];
    return stem * 2 + (sv ? 1u : 0u);
  };
  const auto stem_fault = [](NodeId id, bool sv) -> std::uint32_t {
    return id * 2 + (sv ? 1u : 0u);
  };

  // Structural equivalence collapsing.
  UnionFind uf(fl.faults_.size());
  for (NodeId id = 0; id < c.num_nodes(); ++id) {
    const Node& n = c.node(id);
    switch (n.type) {
      case GateType::Buf:
        uf.unite(stem_fault(id, false), input_fault(id, 0, false));
        uf.unite(stem_fault(id, true), input_fault(id, 0, true));
        break;
      case GateType::Not:
        uf.unite(stem_fault(id, true), input_fault(id, 0, false));
        uf.unite(stem_fault(id, false), input_fault(id, 0, true));
        break;
      case GateType::And:
        for (std::size_t p = 0; p < n.fanins.size(); ++p) {
          uf.unite(stem_fault(id, false), input_fault(id, p, false));
        }
        break;
      case GateType::Nand:
        for (std::size_t p = 0; p < n.fanins.size(); ++p) {
          uf.unite(stem_fault(id, true), input_fault(id, p, false));
        }
        break;
      case GateType::Or:
        for (std::size_t p = 0; p < n.fanins.size(); ++p) {
          uf.unite(stem_fault(id, true), input_fault(id, p, true));
        }
        break;
      case GateType::Nor:
        for (std::size_t p = 0; p < n.fanins.size(); ++p) {
          uf.unite(stem_fault(id, false), input_fault(id, p, true));
        }
        break;
      default:
        break;  // XOR/XNOR/DFF/sources: no structural equivalence
    }
  }

  // Assign dense class ids, representative = the root fault.
  fl.class_of_.assign(fl.faults_.size(), 0);
  std::unordered_map<std::uint32_t, FaultClassId> root_to_class;
  for (std::uint32_t i = 0; i < fl.faults_.size(); ++i) {
    const std::uint32_t root = uf.find(i);
    auto [it, inserted] = root_to_class.emplace(
        root, static_cast<FaultClassId>(fl.representatives_.size()));
    if (inserted) fl.representatives_.push_back(root);
    fl.class_of_[i] = it->second;
  }
  return fl;
}

}  // namespace scanc::fault
