// Single stuck-at fault model on circuit lines.
//
// Lines are stems (a node's output signal) and branches (the connection
// feeding one fanin pin of a node).  Branch faults are only distinct from
// the driving stem's fault when the stem has fanout > 1; the fault
// enumeration therefore materializes branch faults only at such fanout
// branches.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/circuit.hpp"
#include "sim/injection.hpp"

namespace scanc::fault {

/// One single stuck-at fault.
struct Fault {
  netlist::NodeId node = netlist::kNoNode;  ///< owning node
  std::int32_t pin = sim::kStemPin;  ///< fanin pin, or kStemPin for the stem
  bool stuck_one = false;            ///< stuck-at-1 if true

  friend bool operator==(const Fault&, const Fault&) = default;
};

/// Human-readable fault name, e.g. "G17/SA0" or "G22.in1/SA1".
[[nodiscard]] std::string fault_name(const Fault& f,
                                     const netlist::Circuit& c);

}  // namespace scanc::fault
