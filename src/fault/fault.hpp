// A fault site on a circuit line, shared by every fault model.
//
// Lines are stems (a node's output signal) and branches (the connection
// feeding one fanin pin of a node).  Which sites exist, how they collapse,
// and what `value` means are decided by the active fault::FaultModel:
// under stuck-at, `value` is the stuck value and branch faults are
// materialized at fanout stems; under transition-delay, `value` is the
// stale value the line holds when the delayed transition is launched
// (false = slow-to-rise, true = slow-to-fall) and only stem sites exist.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/circuit.hpp"
#include "sim/injection.hpp"

namespace scanc::fault {

class FaultModel;

/// One fault site: a line plus the model-interpreted fault value.
struct Fault {
  netlist::NodeId node = netlist::kNoNode;  ///< owning node
  std::int32_t pin = sim::kStemPin;  ///< fanin pin, or kStemPin for the stem
  bool value = false;  ///< model-defined: stuck value / stale value

  friend bool operator==(const Fault&, const Fault&) = default;
};

/// Human-readable fault name under a model, e.g. "G17/SA0", "G22.in1/SA1",
/// "G5/STR".
[[nodiscard]] std::string fault_name(const Fault& f,
                                     const netlist::Circuit& c,
                                     const FaultModel& model);

/// Stuck-at-model fault name (the historical two-argument form).
[[nodiscard]] std::string fault_name(const Fault& f,
                                     const netlist::Circuit& c);

}  // namespace scanc::fault
