#include "fault/group_exec.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "util/event_bus.hpp"
#include "util/telemetry.hpp"
#include "util/trace_writer.hpp"

namespace scanc::fault {

GroupExecutor::GroupExecutor(const netlist::Circuit& circuit,
                             const FaultList& faults, util::Bitset scan_mask)
    : circuit_(&circuit), faults_(&faults), scan_mask_(std::move(scan_mask)) {}

GroupWorker& GroupExecutor::worker(std::size_t i) {
  while (workers_.size() <= i) {
    workers_.push_back(
        std::make_unique<GroupWorker>(*circuit_, *faults_, scan_mask_));
  }
  return *workers_[i];
}

void GroupExecutor::for_each_group(std::span<const FaultClassId> targets,
                                   const ExecPolicy& policy,
                                   const GroupFn& fn) {
  const std::size_t ng = num_groups(targets.size());
  if (ng == 0) return;
  obs::add(obs::Counter::GroupsExecuted, ng);
  // Periodic execution snapshot for live watchers, throttled so even a
  // query storm publishes at most ~20 events/s per thread; the counter
  // itself stays exact above.  for_each_group runs on the caller (job)
  // thread, so the event carries the job scope.
  if (obs::events_enabled()) {
    constexpr std::uint64_t kThrottleMicros = 50'000;
    thread_local std::uint64_t last_publish_us = 0;
    const std::uint64_t now = obs::now_micros();
    if (now - last_publish_us >= kThrottleMicros) {
      last_publish_us = now;
      obs::publish_event(obs::EventKind::Counters, "exec",
                         obs::value(obs::Counter::GroupsExecuted), ng);
    }
  }
  const auto group_at = [targets](std::size_t g) {
    const std::size_t base = g * kGroupSize;
    return targets.subspan(base,
                           std::min(kGroupSize, targets.size() - base));
  };
  for_each_chunk(ng, policy, [&](GroupWorker& w, std::size_t g) {
    fn(w, g, group_at(g));
  });
}

void GroupExecutor::for_each_chunk(std::size_t num_chunks,
                                   const ExecPolicy& policy,
                                   const ChunkFn& fn) {
  if (num_chunks == 0) return;
  const std::size_t threads = std::min(
      util::ThreadPool::resolve_threads(policy.num_threads), num_chunks);
  if (threads <= 1) {
    GroupWorker& w = worker(0);
    for (std::size_t c = 0; c < num_chunks; ++c) fn(w, c);
    return;
  }

  // One worker per executing thread, created before the fan-out so the
  // worker vector is never mutated concurrently.
  static_cast<void>(worker(threads - 1));
  if (pool_ == nullptr || pool_->size() < threads) {
    pool_ = std::make_unique<util::ThreadPool>(threads);
  }
  std::atomic<std::size_t> next{0};
  pool_->parallel_for(threads, [&](std::size_t wi) {
    GroupWorker& w = *workers_[wi];
    for (std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
         c < num_chunks; c = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(w, c);
    }
  });
}

}  // namespace scanc::fault
