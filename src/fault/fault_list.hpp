// Fault enumeration and structural equivalence collapsing.
//
// The collapsed fault list is the working fault universe for every
// engine: fault simulation, ATPG, and the compaction procedures all
// operate on representative (collapsed) faults.  The paper's fault counts
// (Table 1 column "flts") are collapsed stuck-at counts, as is
// conventional for the ISCAS benchmarks.
//
// Site enumeration and the equivalence rules live in the active
// fault::FaultModel (fault/model.hpp); this class owns the union-find
// pass and the dense class numbering, which are model-independent.
// Faults are never collapsed across flip-flops (the scan boundary makes
// D- and Q-side faults distinguishable under scan observation), a
// property every model's rules preserve.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/fault.hpp"
#include "fault/model.hpp"
#include "netlist/circuit.hpp"

namespace scanc::fault {

/// Index of a collapsed fault class (0 .. num_classes-1).
using FaultClassId = std::uint32_t;

/// Enumerated and collapsed fault universe of one circuit under one
/// fault model.
class FaultList {
 public:
  /// Enumerates the faults of `c` under `model` (default: stuck-at) and
  /// collapses equivalences.
  [[nodiscard]] static FaultList build(
      const netlist::Circuit& c,
      const FaultModel& model = FaultModel::stuck_at());

  /// The model this list was built under.
  [[nodiscard]] const FaultModel& model() const noexcept { return *model_; }

  /// Total number of enumerated (uncollapsed) faults.
  [[nodiscard]] std::size_t num_faults() const noexcept {
    return faults_.size();
  }

  /// Number of collapsed fault classes.  This is the "number of faults"
  /// reported everywhere in the library.
  [[nodiscard]] std::size_t num_classes() const noexcept {
    return representatives_.size();
  }

  /// Representative fault of a class.
  [[nodiscard]] const Fault& representative(FaultClassId id) const {
    return faults_[representatives_[id]];
  }

  /// All enumerated faults.
  [[nodiscard]] std::span<const Fault> faults() const noexcept {
    return faults_;
  }

  /// Class of an enumerated fault (by its index in faults()).
  [[nodiscard]] FaultClassId class_of(std::size_t fault_index) const {
    return class_of_[fault_index];
  }

 private:
  const FaultModel* model_ = &FaultModel::stuck_at();
  std::vector<Fault> faults_;
  std::vector<std::uint32_t> representatives_;  // fault index per class
  std::vector<FaultClassId> class_of_;          // fault index -> class
};

}  // namespace scanc::fault
