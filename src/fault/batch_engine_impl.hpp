// BatchEngine implementation template, instantiated once per word type
// by the per-ISA translation units (batch_engine.cpp and the
// -mavx2/-mavx512f TUs).  Include this header only from those TUs.
//
// Bit-identity discipline: every pass below replicates the control flow
// of the corresponding GroupWorker full-kernel pass lane by lane.
// Observations (PO detections, scan-out detections, detection-time
// records) are always masked with the set of lanes the per-test pass
// would observe *this frame*:
//
//   stuck-at   lanes whose test is still running (t < length)
//   TDF        lanes with an active launch this frame — inactive lanes
//              carry stale diverged values (their state is only reloaded
//              on active frames) and must never be observed
//
// Dead / inactive lanes keep evolving on all-X inputs; that is garbage
// by design and harmless because the masks above keep it unobserved.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstdint>

#include "fault/batch_engine.hpp"
#include "fault/group_exec.hpp"
#include "fault/group_worker.hpp"
#include "sim/wide_sim.hpp"
#include "util/telemetry.hpp"

namespace scanc::fault {

namespace batch_detail {

/// Mirror of group_worker.cpp's FrameTally: batches kernel counters into
/// locals and publishes once per pass.  Wide passes count *lane-frames*
/// (one unit per observed lane per frame) so FramesSimulated stays
/// comparable with the per-test kernels.
struct WideFrameTally {
  std::uint64_t simulated = 0;
  std::uint64_t tdf_activations = 0;
  std::uint64_t tdf_skipped = 0;
  ~WideFrameTally() {
    if (simulated != 0) obs::add(obs::Counter::FramesSimulated, simulated);
    if (tdf_activations != 0) {
      obs::add(obs::Counter::TdfActivations, tdf_activations);
    }
    if (tdf_skipped != 0) {
      obs::add(obs::Counter::TdfFramesSkipped, tdf_skipped);
    }
  }
};

}  // namespace batch_detail

template <class W>
class BatchEngineImpl final : public BatchEngine {
 public:
  static constexpr std::size_t kLanes = W::kLanes;

  BatchEngineImpl(const netlist::Circuit& circuit, const FaultList& faults,
                  util::Bitset scan_mask)
      : circuit_(&circuit),
        faults_(&faults),
        scan_mask_(std::move(scan_mask)),
        sim_(circuit),
        inj_(circuit.num_nodes()),
        state_scratch_(kLanes) {
    assert(scan_mask_.size() == circuit.num_flip_flops());
  }

  [[nodiscard]] std::size_t lanes() const noexcept override {
    return kLanes;
  }

  void detect_batch(std::span<const BatchTestRef> tests,
                    std::span<const FaultClassId> group,
                    bool observe_scan_out,
                    std::span<std::uint64_t> det) override {
    assert(!tests.empty() && tests.size() <= kLanes);
    assert(det.size() == tests.size());
    obs::add(obs::Counter::PpsfpBatches);
    obs::add(obs::Counter::PpsfpTestsPacked, tests.size());
    if (faults_->model().frame_gated()) {
      detect_batch_tdf(tests, group, observe_scan_out, det);
    } else {
      detect_batch_stuck(tests, group, observe_scan_out, det);
    }
  }

  void times_batch(std::span<const BatchTestRef> tests,
                   std::span<const FaultClassId> group, std::size_t stride,
                   std::span<std::int64_t> first_po,
                   std::span<util::Bitset> state_diff) override {
    assert(!tests.empty() && tests.size() <= kLanes);
    assert(stride >= group.size());
    assert(first_po.size() >= (tests.size() - 1) * stride + group.size());
    assert(state_diff.size() >= (tests.size() - 1) * stride + group.size());
    obs::add(obs::Counter::PpsfpBatches);
    obs::add(obs::Counter::PpsfpTestsPacked, tests.size());
    if (faults_->model().frame_gated()) {
      times_batch_tdf(tests, group, stride, first_po, state_diff);
    } else {
      times_batch_stuck(tests, group, stride, first_po, state_diff);
    }
  }

  void detect_groups(const sim::Vector3* scan_in, const sim::Sequence& seq,
                     std::span<const FaultClassId> list,
                     std::size_t first_group, std::size_t ngroups,
                     bool observe_scan_out, bool early_exit,
                     const std::atomic<bool>* keep_going,
                     const util::CancelToken* cancel,
                     std::span<std::uint64_t> det) override;

 private:
  // --- shared helpers --------------------------------------------------

  /// Word with lane l all-ones iff pred(l); lanes >= n are zero.
  template <class Pred>
  [[nodiscard]] static W lane_mask(std::size_t n, Pred pred) {
    W m = W::zero();
    for (std::size_t l = 0; l < n; ++l) {
      if (pred(l)) m.set_lane(l, ~0ULL);
    }
    return m;
  }

  [[nodiscard]] static std::size_t max_length(
      std::span<const BatchTestRef> tests) {
    std::size_t n = 0;
    for (const BatchTestRef& t : tests) {
      n = std::max(n, t.seq->length());
    }
    return n;
  }

  [[nodiscard]] static bool all_lanes_full(const W& det, const W& full) {
    return !((det & full) ^ full).any();
  }

  [[nodiscard]] W wide_po_detections() const {
    W d = W::zero();
    for (const netlist::NodeId po : circuit_->primary_outputs()) {
      d = d | sim::wide_detections(sim_.value(po));
    }
    return d;
  }

  [[nodiscard]] W wide_state_detections() const {
    W d = W::zero();
    for (std::size_t i = 0; i < circuit_->num_flip_flops(); ++i) {
      if (!scan_mask_.test(i)) continue;
      d = d | sim::wide_detections(sim_.captured(i));
    }
    return d;
  }

  /// Splat injections: the same group in every lane (slot j+1 =
  /// group[j]), the wide mirror of build_group_injections.
  void build_splat_injections(std::span<const FaultClassId> group) {
    inj_.clear();
    for (std::size_t j = 0; j < group.size(); ++j) {
      const Fault& f = faults_->representative(group[j]);
      inj_.add(f.node, f.pin, f.value, W::splat(1ULL << (j + 1)));
    }
  }

  /// Records fresh per-lane PO/state bits into the lane-major spans.
  static void record_lane_bits(std::uint64_t bits, std::size_t base,
                               std::size_t t,
                               std::span<std::int64_t> first_po) {
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      bits &= bits - 1;
      first_po[base + static_cast<std::size_t>(bit) - 1] =
          static_cast<std::int64_t>(t);
    }
  }
  static void record_lane_bits(std::uint64_t bits, std::size_t base,
                               std::size_t t,
                               std::span<util::Bitset> state_diff) {
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      bits &= bits - 1;
      state_diff[base + static_cast<std::size_t>(bit) - 1].set(t);
    }
  }

  // --- stuck-at PPSFP passes -------------------------------------------

  void detect_batch_stuck(std::span<const BatchTestRef> tests,
                          std::span<const FaultClassId> group,
                          bool observe_scan_out,
                          std::span<std::uint64_t> det_out) {
    const std::size_t n = tests.size();
    build_splat_injections(group);
    obs::add(obs::Counter::FullPasses, n);
    sim_.reset(&inj_);
    std::array<const sim::Vector3*, kLanes> ptr{};
    bool any_state = false;
    for (std::size_t l = 0; l < n; ++l) {
      if (tests[l].scan_in != nullptr) {
        state_scratch_[l] = masked_state(*tests[l].scan_in);
        ptr[l] = &state_scratch_[l];
        any_state = true;
      } else {
        ptr[l] = nullptr;
      }
    }
    if (any_state) sim_.load_state({ptr.data(), n}, &inj_);

    const W full = W::splat(group_slot_mask(group.size()));
    const std::size_t max_len = max_length(tests);
    W det = W::zero();
    batch_detail::WideFrameTally tally;
    for (std::size_t t = 0; t < max_len; ++t) {
      std::size_t live_count = 0;
      for (std::size_t l = 0; l < n; ++l) {
        const bool live = t < tests[l].seq->length();
        ptr[l] = live ? &tests[l].seq->frames[t] : nullptr;
        live_count += live ? 1 : 0;
      }
      const W live = lane_mask(n, [&](std::size_t l) {
        return t < tests[l].seq->length();
      });
      tally.simulated += live_count;
      sim_.apply_frame({ptr.data(), n}, &inj_);
      det = det | (wide_po_detections() & live);
      sim_.latch(&inj_);
      if (observe_scan_out) {
        const W finals = lane_mask(n, [&](std::size_t l) {
          return tests[l].seq->length() == t + 1;
        });
        if (finals.any()) {
          det = det | (wide_state_detections() & finals);
        }
      }
      // All lanes saturated: later frames cannot add detections (per-lane
      // det is capped at `full`, matching run_detect's early exit).
      if (all_lanes_full(det, full)) break;
    }
    for (std::size_t l = 0; l < n; ++l) det_out[l] = det.lane(l);
  }

  void times_batch_stuck(std::span<const BatchTestRef> tests,
                         std::span<const FaultClassId> group,
                         std::size_t stride,
                         std::span<std::int64_t> first_po,
                         std::span<util::Bitset> state_diff) {
    const std::size_t n = tests.size();
    build_splat_injections(group);
    obs::add(obs::Counter::FullPasses, n);
    sim_.reset(&inj_);
    std::array<const sim::Vector3*, kLanes> ptr{};
    for (std::size_t l = 0; l < n; ++l) {
      assert(tests[l].scan_in != nullptr);
      state_scratch_[l] = masked_state(*tests[l].scan_in);
      ptr[l] = &state_scratch_[l];
    }
    sim_.load_state({ptr.data(), n}, &inj_);

    const std::size_t max_len = max_length(tests);
    W det = W::zero();
    batch_detail::WideFrameTally tally;
    for (std::size_t t = 0; t < max_len; ++t) {
      for (std::size_t l = 0; l < n; ++l) {
        const bool live = t < tests[l].seq->length();
        ptr[l] = live ? &tests[l].seq->frames[t] : nullptr;
        tally.simulated += live ? 1 : 0;
      }
      const W live = lane_mask(n, [&](std::size_t l) {
        return t < tests[l].seq->length();
      });
      sim_.apply_frame({ptr.data(), n}, &inj_);
      const W fresh = wide_po_detections() & live & ~det;
      det = det | fresh;
      sim_.latch(&inj_);
      const W state = wide_state_detections() & live;
      for (std::size_t l = 0; l < n; ++l) {
        record_lane_bits(fresh.lane(l), l * stride, t, first_po);
        record_lane_bits(state.lane(l), l * stride, t, state_diff);
      }
    }
  }

  // --- transition-delay (frame-gated) PPSFP passes ---------------------

  /// Caches the group's (node, stale) sites — build_tdf_sites mirror.
  void build_tdf_sites(std::span<const FaultClassId> group) {
    tdf_sites_.clear();
    tdf_sites_.reserve(group.size());
    for (const FaultClassId id : group) {
      const Fault& f = faults_->representative(id);
      assert(f.pin == sim::kStemPin);
      tdf_sites_.push_back(TdfSite{f.node, f.value});
    }
  }

  [[nodiscard]] std::uint64_t tdf_activation(const sim::NodeTrace& trace,
                                             std::size_t t) const {
    assert(t >= 1);
    std::uint64_t act = 0;
    for (std::size_t j = 0; j < tdf_sites_.size(); ++j) {
      const TdfSite& s = tdf_sites_[j];
      const sim::V3 stale = s.stale ? sim::V3::One : sim::V3::Zero;
      const sim::V3 fresh = s.stale ? sim::V3::Zero : sim::V3::One;
      if (trace.value(t - 1, s.node) == stale &&
          trace.value(t, s.node) == fresh) {
        act |= 1ULL << (j + 1);
      }
    }
    return act;
  }

  /// Rebuilds inj_ from per-lane activation masks: site j gets one wide
  /// injection whose lane l mask is slot j+1 iff lane l launches it.
  void build_tdf_injections(std::span<const std::uint64_t> act,
                            std::size_t n) {
    inj_.clear();
    for (std::size_t j = 0; j < tdf_sites_.size(); ++j) {
      const std::uint64_t slot = 1ULL << (j + 1);
      W m = W::zero();
      bool used = false;
      for (std::size_t l = 0; l < n; ++l) {
        if ((act[l] & slot) != 0) {
          m.set_lane(l, slot);
          used = true;
        }
      }
      if (used) {
        const TdfSite& s = tdf_sites_[j];
        inj_.add(s.node, sim::kStemPin, s.stale, m);
      }
    }
  }

  void detect_batch_tdf(std::span<const BatchTestRef> tests,
                        std::span<const FaultClassId> group,
                        bool observe_scan_out,
                        std::span<std::uint64_t> det_out) {
    const std::size_t n = tests.size();
    build_tdf_sites(group);
    obs::add(obs::Counter::FullPasses, n);
    sim_.reset(nullptr);
    const std::size_t max_len = max_length(tests);
    std::array<const sim::Vector3*, kLanes> state_ptr{};
    std::array<const sim::Vector3*, kLanes> pi_ptr{};
    std::array<std::uint64_t, kLanes> act{};
    W det = W::zero();
    batch_detail::WideFrameTally tally;
    // Frame 0 has no launch frame and is never active in any lane.
    for (std::size_t t = 1; t < max_len; ++t) {
      bool any_act = false;
      for (std::size_t l = 0; l < n; ++l) {
        const bool live = t < tests[l].seq->length();
        act[l] = live ? tdf_activation(*tests[l].trace, t) : 0;
        if (live && act[l] == 0) ++tally.tdf_skipped;
        any_act |= act[l] != 0;
      }
      if (!any_act) continue;
      build_tdf_injections({act.data(), n}, n);
      for (std::size_t l = 0; l < n; ++l) {
        if (act[l] != 0) {
          tally.tdf_activations +=
              static_cast<std::uint64_t>(std::popcount(act[l]));
          ++tally.simulated;
          state_scratch_[l] = tests[l].trace->state_at_start(t);
          state_ptr[l] = &state_scratch_[l];
          pi_ptr[l] = &tests[l].seq->frames[t];
        } else {
          state_ptr[l] = nullptr;
          pi_ptr[l] = nullptr;
        }
      }
      sim_.load_state({state_ptr.data(), n}, &inj_);
      sim_.apply_frame({pi_ptr.data(), n}, &inj_);
      const W active = lane_mask(n, [&](std::size_t l) {
        return act[l] != 0;
      });
      det = det | (wide_po_detections() & active);
      if (observe_scan_out) {
        const W finals = lane_mask(n, [&](std::size_t l) {
          return act[l] != 0 && tests[l].seq->length() == t + 1;
        });
        if (finals.any()) {
          sim_.latch(&inj_);
          det = det | (wide_state_detections() & finals);
        }
      }
    }
    for (std::size_t l = 0; l < n; ++l) det_out[l] = det.lane(l);
  }

  void times_batch_tdf(std::span<const BatchTestRef> tests,
                       std::span<const FaultClassId> group,
                       std::size_t stride,
                       std::span<std::int64_t> first_po,
                       std::span<util::Bitset> state_diff) {
    const std::size_t n = tests.size();
    build_tdf_sites(group);
    obs::add(obs::Counter::FullPasses, n);
    sim_.reset(nullptr);
    const std::size_t max_len = max_length(tests);
    std::array<const sim::Vector3*, kLanes> state_ptr{};
    std::array<const sim::Vector3*, kLanes> pi_ptr{};
    std::array<std::uint64_t, kLanes> act{};
    W det = W::zero();
    batch_detail::WideFrameTally tally;
    for (std::size_t t = 1; t < max_len; ++t) {
      bool any_act = false;
      for (std::size_t l = 0; l < n; ++l) {
        const bool live = t < tests[l].seq->length();
        act[l] = live ? tdf_activation(*tests[l].trace, t) : 0;
        if (live && act[l] == 0) ++tally.tdf_skipped;
        any_act |= act[l] != 0;
      }
      if (!any_act) continue;
      build_tdf_injections({act.data(), n}, n);
      for (std::size_t l = 0; l < n; ++l) {
        if (act[l] != 0) {
          tally.tdf_activations +=
              static_cast<std::uint64_t>(std::popcount(act[l]));
          ++tally.simulated;
          state_scratch_[l] = tests[l].trace->state_at_start(t);
          state_ptr[l] = &state_scratch_[l];
          pi_ptr[l] = &tests[l].seq->frames[t];
        } else {
          state_ptr[l] = nullptr;
          pi_ptr[l] = nullptr;
        }
      }
      sim_.load_state({state_ptr.data(), n}, &inj_);
      sim_.apply_frame({pi_ptr.data(), n}, &inj_);
      const W active = lane_mask(n, [&](std::size_t l) {
        return act[l] != 0;
      });
      const W fresh = wide_po_detections() & active & ~det;
      det = det | fresh;
      sim_.latch(&inj_);
      const W state = wide_state_detections() & active;
      for (std::size_t l = 0; l < n; ++l) {
        record_lane_bits(fresh.lane(l), l * stride, t, first_po);
        record_lane_bits(state.lane(l), l * stride, t, state_diff);
      }
    }
  }

  /// masked_state mirror: unscanned positions forced to X.
  [[nodiscard]] sim::Vector3 masked_state(
      const sim::Vector3& scan_in) const {
    if (scan_mask_.all()) return scan_in;
    sim::Vector3 masked = scan_in;
    for (std::size_t i = 0; i < masked.size(); ++i) {
      if (!scan_mask_.test(i)) masked[i] = sim::V3::X;
    }
    return masked;
  }

  struct TdfSite {
    netlist::NodeId node;
    bool stale;
  };

  const netlist::Circuit* circuit_;
  const FaultList* faults_;
  util::Bitset scan_mask_;
  sim::WideSeqSim<W> sim_;
  sim::WideInjectionMap<W> inj_;
  std::vector<sim::Vector3> state_scratch_;
  std::vector<TdfSite> tdf_sites_;
};

// --- wide fault-parallel pass ------------------------------------------

template <class W>
void BatchEngineImpl<W>::detect_groups(
    const sim::Vector3* scan_in, const sim::Sequence& seq,
    std::span<const FaultClassId> list, std::size_t first_group,
    std::size_t ngroups, bool observe_scan_out, bool early_exit,
    const std::atomic<bool>* keep_going, const util::CancelToken* cancel,
    std::span<std::uint64_t> det_out) {
  assert(ngroups >= 1 && ngroups <= kLanes);
  assert(det_out.size() == ngroups);
  assert(!faults_->model().frame_gated());
  obs::add(obs::Counter::WideFpPasses);
  obs::add(obs::Counter::FullPasses, ngroups);

  // Per-lane injections: lane l carries group first_group + l.
  inj_.clear();
  W full = W::zero();
  for (std::size_t l = 0; l < ngroups; ++l) {
    const std::size_t base = (first_group + l) * kGroupSize;
    const std::size_t gn = std::min(kGroupSize, list.size() - base);
    full.set_lane(l, group_slot_mask(gn));
    for (std::size_t j = 0; j < gn; ++j) {
      const Fault& f = faults_->representative(list[base + j]);
      W m = W::zero();
      m.set_lane(l, 1ULL << (j + 1));
      inj_.add(f.node, f.pin, f.value, m);
    }
  }
  sim_.reset(&inj_);
  std::array<const sim::Vector3*, kLanes> ptr{};
  if (scan_in != nullptr) {
    state_scratch_[0] = masked_state(*scan_in);
    for (std::size_t l = 0; l < ngroups; ++l) ptr[l] = &state_scratch_[0];
    sim_.load_state({ptr.data(), ngroups}, &inj_);
  }

  W det = W::zero();
  bool aborted = false;
  batch_detail::WideFrameTally tally;
  for (std::size_t t = 0; t < seq.length(); ++t) {
    if ((keep_going != nullptr &&
         !keep_going->load(std::memory_order_relaxed)) ||
        (cancel != nullptr && cancel->stop_requested())) {
      aborted = true;  // partial masks, same contract as run_detect
      break;
    }
    tally.simulated += ngroups;
    for (std::size_t l = 0; l < ngroups; ++l) ptr[l] = &seq.frames[t];
    sim_.apply_frame({ptr.data(), ngroups}, &inj_);
    det = det | wide_po_detections();
    sim_.latch(&inj_);
    if (early_exit && t + 1 < seq.length() && all_lanes_full(det, full)) {
      break;
    }
  }
  if (observe_scan_out && !aborted && !all_lanes_full(det, full)) {
    det = det | wide_state_detections();
  }
  for (std::size_t l = 0; l < ngroups; ++l) det_out[l] = det.lane(l);
}

template <class W>
[[nodiscard]] std::unique_ptr<BatchEngine> make_batch_engine_impl(
    const netlist::Circuit& circuit, const FaultList& faults,
    util::Bitset scan_mask) {
  return std::make_unique<BatchEngineImpl<W>>(circuit, faults,
                                              std::move(scan_mask));
}

}  // namespace scanc::fault
