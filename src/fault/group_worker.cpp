#include "fault/group_worker.hpp"

#include <bit>
#include <cassert>
#include <utility>

namespace scanc::fault {

using netlist::NodeId;
using sim::PackedV3;
using sim::Sequence;
using sim::Vector3;

GroupWorker::GroupWorker(const netlist::Circuit& circuit,
                         const FaultList& faults, util::Bitset scan_mask)
    : circuit_(&circuit),
      faults_(&faults),
      scan_mask_(std::move(scan_mask)),
      sim_(circuit),
      injections_(circuit.num_nodes()) {
  assert(scan_mask_.size() == circuit.num_flip_flops());
}

Vector3 GroupWorker::masked_state(const Vector3& scan_in) const {
  if (scan_mask_.all()) return scan_in;
  Vector3 masked = scan_in;
  for (std::size_t i = 0; i < masked.size(); ++i) {
    if (!scan_mask_.test(i)) masked[i] = sim::V3::X;
  }
  return masked;
}

void GroupWorker::build_injections(std::span<const FaultClassId> group) {
  injections_.clear();
  for (std::size_t j = 0; j < group.size(); ++j) {
    const Fault& f = faults_->representative(group[j]);
    injections_.add(f.node, f.pin, f.stuck_one, 1ULL << (j + 1));
  }
}

void GroupWorker::start_test(const Vector3* scan_in,
                             std::span<const FaultClassId> group) {
  build_injections(group);
  sim_.reset(&injections_);
  if (scan_in != nullptr) {
    sim_.load_state(masked_state(*scan_in), &injections_);
  }
}

std::uint64_t GroupWorker::po_detections() const {
  std::uint64_t det = 0;
  for (const NodeId po : circuit_->primary_outputs()) {
    const PackedV3 w = sim_.value(po);
    const bool ref0 = (w.is0 & 1) != 0;
    const bool ref1 = (w.is1 & 1) != 0;
    if (ref0 == ref1) continue;  // fault-free X: no detection here
    det |= sim::differs_from_reference(w, ref1);
  }
  return det & ~1ULL;
}

std::uint64_t GroupWorker::state_detections() const {
  std::uint64_t det = 0;
  for (std::size_t i = 0; i < circuit_->num_flip_flops(); ++i) {
    if (!scan_mask_.test(i)) continue;  // not on the scan chain
    // Scan-out observes the captured latch contents (PPO convention).
    const PackedV3 w = sim_.captured(i);
    const bool ref0 = (w.is0 & 1) != 0;
    const bool ref1 = (w.is1 & 1) != 0;
    if (ref0 == ref1) continue;
    det |= sim::differs_from_reference(w, ref1);
  }
  return det & ~1ULL;
}

std::uint64_t GroupWorker::run_detect(const Vector3* scan_in,
                                      const Sequence& seq,
                                      std::span<const FaultClassId> group,
                                      bool observe_scan_out, bool early_exit,
                                      const std::atomic<bool>* keep_going,
                                      const util::CancelToken* cancel) {
  start_test(scan_in, group);
  const std::uint64_t full = group_slot_mask(group.size());
  std::uint64_t det = 0;
  for (std::size_t t = 0; t < seq.length(); ++t) {
    if (keep_going != nullptr &&
        !keep_going->load(std::memory_order_relaxed)) {
      return det;  // another group already decided the answer
    }
    if (cancel != nullptr && cancel->stop_requested()) {
      return det;  // cooperative cancellation: partial mask
    }
    sim_.apply_frame(seq.frames[t], &injections_);
    det |= po_detections();
    sim_.latch(&injections_);
    if (early_exit && det == full && t + 1 < seq.length()) return det;
  }
  if (observe_scan_out) det |= state_detections();
  return det;
}

void GroupWorker::run_times(const Vector3& scan_in, const Sequence& seq,
                            std::span<const FaultClassId> group,
                            std::span<std::int64_t> first_po,
                            std::span<util::Bitset> state_diff,
                            const util::CancelToken* cancel) {
  assert(first_po.size() == group.size());
  assert(state_diff.size() == group.size());
  start_test(&scan_in, group);
  std::uint64_t det = 0;
  for (std::size_t t = 0; t < seq.length(); ++t) {
    if (cancel != nullptr && cancel->stop_requested()) return;
    sim_.apply_frame(seq.frames[t], &injections_);
    std::uint64_t fresh = po_detections() & ~det;
    det |= fresh;
    while (fresh != 0) {
      const int bit = std::countr_zero(fresh);
      fresh &= fresh - 1;
      first_po[static_cast<std::size_t>(bit) - 1] =
          static_cast<std::int64_t>(t);
    }
    sim_.latch(&injections_);
    // Scan-out after time unit t would observe the just-latched state.
    std::uint64_t bits = state_detections();
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      bits &= bits - 1;
      state_diff[static_cast<std::size_t>(bit) - 1].set(t);
    }
  }
}

std::uint64_t GroupWorker::run_prefix(const Vector3& scan_in,
                                      const Sequence& seq,
                                      std::span<const FaultClassId> group,
                                      std::span<std::int64_t> first_po,
                                      const util::CancelToken* cancel) {
  assert(first_po.size() == group.size());
  start_test(&scan_in, group);
  const std::uint64_t full = group_slot_mask(group.size());
  std::uint64_t det = 0;
  for (std::size_t t = 0; t < seq.length(); ++t) {
    if (cancel != nullptr && cancel->stop_requested()) return det;
    sim_.apply_frame(seq.frames[t], &injections_);
    std::uint64_t fresh = po_detections() & ~det;
    det |= fresh;
    while (fresh != 0) {
      const int bit = std::countr_zero(fresh);
      fresh &= fresh - 1;
      first_po[static_cast<std::size_t>(bit) - 1] =
          static_cast<std::int64_t>(t);
    }
    if (det == full) return det;  // everything PO-detected: skip the rest
    sim_.latch(&injections_);
  }
  return det | state_detections();  // final scan-out
}

std::uint64_t GroupWorker::run_consistency(
    const Vector3& scan_in, const Sequence& seq,
    std::span<const sim::Vector3> observed_pos,
    const Vector3& observed_scan_out, std::span<const FaultClassId> group) {
  assert(observed_pos.size() == seq.length());
  assert(observed_scan_out.size() == circuit_->num_flip_flops());
  start_test(&scan_in, group);

  // Mismatch bits for one observation point: predicted binary, observed
  // binary, values differ.
  const auto mismatches = [](const PackedV3 w, sim::V3 obs) -> std::uint64_t {
    if (!sim::is_binary(obs)) return 0;
    return sim::differs_from_reference(w, obs == sim::V3::One);
  };

  const std::uint64_t full = group_slot_mask(group.size());
  std::uint64_t mismatch = 0;
  for (std::size_t t = 0; t < seq.length(); ++t) {
    sim_.apply_frame(seq.frames[t], &injections_);
    const auto pos = circuit_->primary_outputs();
    for (std::size_t i = 0; i < pos.size(); ++i) {
      mismatch |= mismatches(sim_.value(pos[i]), observed_pos[t][i]);
    }
    sim_.latch(&injections_);
    if ((mismatch & full) == full) break;
  }
  for (std::size_t i = 0; i < circuit_->num_flip_flops(); ++i) {
    if (!scan_mask_.test(i)) continue;
    mismatch |= mismatches(sim_.captured(i), observed_scan_out[i]);
  }
  return mismatch;
}

}  // namespace scanc::fault
