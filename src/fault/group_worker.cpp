#include "fault/group_worker.hpp"

#include <bit>
#include <cassert>
#include <utility>

#include "util/telemetry.hpp"

namespace scanc::fault {

using netlist::NodeId;
using sim::PackedV3;
using sim::Sequence;
using sim::Vector3;

namespace {

/// Batches per-frame kernel counters into locals and publishes once per
/// group pass, keeping the frame loops free of telemetry calls.
struct FrameTally {
  std::uint64_t simulated = 0;
  std::uint64_t skipped = 0;
  std::uint64_t tdf_activations = 0;
  std::uint64_t tdf_skipped = 0;
  ~FrameTally() {
    if (simulated != 0) {
      obs::add(obs::Counter::FramesSimulated, simulated);
    }
    if (skipped != 0) obs::add(obs::Counter::FramesSkipped, skipped);
    if (tdf_activations != 0) {
      obs::add(obs::Counter::TdfActivations, tdf_activations);
    }
    if (tdf_skipped != 0) {
      obs::add(obs::Counter::TdfFramesSkipped, tdf_skipped);
    }
  }
};

}  // namespace

void build_group_injections(const FaultList& faults,
                            std::span<const FaultClassId> group,
                            sim::InjectionMap& out) {
  out.clear();
  for (std::size_t j = 0; j < group.size(); ++j) {
    const Fault& f = faults.representative(group[j]);
    out.add(f.node, f.pin, f.value, 1ULL << (j + 1));
  }
}

GroupWorker::GroupWorker(const netlist::Circuit& circuit,
                         const FaultList& faults, util::Bitset scan_mask)
    : circuit_(&circuit),
      faults_(&faults),
      scan_mask_(std::move(scan_mask)),
      sim_(circuit),
      injections_(circuit.num_nodes()),
      cone_(circuit) {
  assert(scan_mask_.size() == circuit.num_flip_flops());
}

BatchEngine& GroupWorker::batch_engine(const sim::SimdConfig& cfg) {
  if (batch_engine_ == nullptr || !(batch_cfg_ == cfg)) {
    batch_engine_ = make_batch_engine(*circuit_, *faults_, scan_mask_, cfg);
    batch_cfg_ = cfg;
  }
  return *batch_engine_;
}

Vector3 GroupWorker::masked_state(const Vector3& scan_in) const {
  if (scan_mask_.all()) return scan_in;
  Vector3 masked = scan_in;
  for (std::size_t i = 0; i < masked.size(); ++i) {
    if (!scan_mask_.test(i)) masked[i] = sim::V3::X;
  }
  return masked;
}

void GroupWorker::build_injections(std::span<const FaultClassId> group) {
  build_group_injections(*faults_, group, injections_);
}

void GroupWorker::start_test(const Vector3* scan_in,
                             std::span<const FaultClassId> group) {
  build_injections(group);
  sim_.reset(&injections_);
  if (scan_in != nullptr) {
    sim_.load_state(masked_state(*scan_in), &injections_);
  }
}

bool GroupWorker::cone_selected(std::span<const FaultClassId> group,
                                const KernelChoice& kernel) {
  bool use_cone = false;
  if (kernel.trace != nullptr && kernel.allow_cone) {
    sites_.clear();
    sites_.reserve(group.size());
    for (const FaultClassId id : group) {
      const Fault& f = faults_->representative(id);
      sites_.push_back(sim::ConeSite{f.node, f.pin, f.value});
    }
    plan_.build(*circuit_, sites_);
    // Auto: the cone pays only when the compacted schedule drops at
    // least a quarter of the full evaluation work (boundary seeding and
    // plan construction eat the rest of the margin).
    use_cone = kernel.force_cone ||
               plan_.eval().size() * 4 <= circuit_->num_gates() * 3;
  }
  // cone_selected runs exactly once per group pass, so the kernel-choice
  // counters live here rather than in every query method.
  if (use_cone) {
    const std::uint64_t eval = plan_.eval().size();
    const std::uint64_t gates = circuit_->num_gates();
    obs::add(obs::Counter::ConePasses);
    obs::add(obs::Counter::ConeGatesScheduled, eval);
    obs::add(obs::Counter::ConeGatesDropped,
             gates >= eval ? gates - eval : 0);
  } else {
    obs::add(obs::Counter::FullPasses);
  }
  return use_cone;
}

std::uint64_t GroupWorker::po_detections() const {
  std::uint64_t det = 0;
  for (const NodeId po : circuit_->primary_outputs()) {
    const PackedV3 w = sim_.value(po);
    const bool ref0 = (w.is0 & 1) != 0;
    const bool ref1 = (w.is1 & 1) != 0;
    if (ref0 == ref1) continue;  // fault-free X: no detection here
    det |= sim::differs_from_reference(w, ref1);
  }
  return det & ~1ULL;
}

std::uint64_t GroupWorker::state_detections() const {
  std::uint64_t det = 0;
  for (std::size_t i = 0; i < circuit_->num_flip_flops(); ++i) {
    if (!scan_mask_.test(i)) continue;  // not on the scan chain
    // Scan-out observes the captured latch contents (PPO convention).
    const PackedV3 w = sim_.captured(i);
    const bool ref0 = (w.is0 & 1) != 0;
    const bool ref1 = (w.is1 & 1) != 0;
    if (ref0 == ref1) continue;
    det |= sim::differs_from_reference(w, ref1);
  }
  return det & ~1ULL;
}

std::uint64_t GroupWorker::po_detections_cone() const {
  std::uint64_t det = 0;
  for (const NodeId po : plan_.cone_pos()) {
    const PackedV3 w = cone_.value(po);
    const bool ref0 = (w.is0 & 1) != 0;
    const bool ref1 = (w.is1 & 1) != 0;
    if (ref0 == ref1) continue;
    det |= sim::differs_from_reference(w, ref1);
  }
  return det & ~1ULL;
}

std::uint64_t GroupWorker::state_detections_cone() const {
  if (cone_.clean()) return 0;  // every latch holds the fault-free value
  std::uint64_t det = 0;
  const auto pos = plan_.cone_ff_pos();
  for (const std::uint32_t i : pos) {
    if (!scan_mask_.test(i)) continue;
    const PackedV3 w = cone_.captured(i);
    const bool ref0 = (w.is0 & 1) != 0;
    const bool ref1 = (w.is1 & 1) != 0;
    if (ref0 == ref1) continue;
    det |= sim::differs_from_reference(w, ref1);
  }
  return det & ~1ULL;
}

std::uint64_t GroupWorker::run_detect(const Vector3* scan_in,
                                      const Sequence& seq,
                                      std::span<const FaultClassId> group,
                                      bool observe_scan_out, bool early_exit,
                                      const std::atomic<bool>* keep_going,
                                      const util::CancelToken* cancel,
                                      const KernelChoice& kernel) {
  if (faults_->model().frame_gated()) {
    assert(kernel.trace != nullptr);
    build_tdf_sites(group);
    if (cone_selected(group, kernel)) {
      return run_detect_tdf_cone(*kernel.trace, seq, group, observe_scan_out,
                                 early_exit, keep_going, cancel);
    }
    return run_detect_tdf(*kernel.trace, seq, group, observe_scan_out,
                          early_exit, keep_going, cancel);
  }
  if (cone_selected(group, kernel)) {
    build_injections(group);
    return run_detect_cone(*kernel.trace, seq, group, observe_scan_out,
                           early_exit, keep_going, cancel);
  }
  start_test(scan_in, group);
  const std::uint64_t full = group_slot_mask(group.size());
  std::uint64_t det = 0;
  FrameTally tally;
  for (std::size_t t = 0; t < seq.length(); ++t) {
    if (keep_going != nullptr &&
        !keep_going->load(std::memory_order_relaxed)) {
      return det;  // another group already decided the answer
    }
    if (cancel != nullptr && cancel->stop_requested()) {
      return det;  // cooperative cancellation: partial mask
    }
    ++tally.simulated;
    sim_.apply_frame(seq.frames[t], &injections_);
    det |= po_detections();
    sim_.latch(&injections_);
    if (early_exit && det == full && t + 1 < seq.length()) return det;
  }
  if (observe_scan_out) det |= state_detections();
  return det;
}

std::uint64_t GroupWorker::run_detect_cone(
    const sim::NodeTrace& trace, const Sequence& seq,
    std::span<const FaultClassId> group, bool observe_scan_out,
    bool early_exit, const std::atomic<bool>* keep_going,
    const util::CancelToken* cancel) {
  cone_.begin(plan_, injections_, trace);
  const std::uint64_t full = group_slot_mask(group.size());
  std::uint64_t det = 0;
  FrameTally tally;
  for (std::size_t t = 0; t < seq.length(); ++t) {
    if (keep_going != nullptr &&
        !keep_going->load(std::memory_order_relaxed)) {
      return det;
    }
    if (cancel != nullptr && cancel->stop_requested()) {
      return det;
    }
    if (cone_.eval_frame(t)) {
      ++tally.simulated;
      det |= po_detections_cone();
      cone_.latch();
    } else {
      ++tally.skipped;
    }
    // Skipped frames change nothing: all slots stay fault-free.
    if (early_exit && det == full && t + 1 < seq.length()) return det;
  }
  if (observe_scan_out) det |= state_detections_cone();
  return det;
}

void GroupWorker::run_times(const Vector3& scan_in, const Sequence& seq,
                            std::span<const FaultClassId> group,
                            std::span<std::int64_t> first_po,
                            std::span<util::Bitset> state_diff,
                            const util::CancelToken* cancel,
                            const KernelChoice& kernel) {
  assert(first_po.size() == group.size());
  assert(state_diff.size() == group.size());
  if (faults_->model().frame_gated()) {
    assert(kernel.trace != nullptr);
    build_tdf_sites(group);
    if (cone_selected(group, kernel)) {
      run_times_tdf_cone(*kernel.trace, seq, first_po, state_diff, cancel);
    } else {
      run_times_tdf(*kernel.trace, seq, first_po, state_diff, cancel);
    }
    return;
  }
  if (cone_selected(group, kernel)) {
    build_injections(group);
    run_times_cone(*kernel.trace, seq, group, first_po, state_diff, cancel);
    return;
  }
  start_test(&scan_in, group);
  std::uint64_t det = 0;
  FrameTally tally;
  for (std::size_t t = 0; t < seq.length(); ++t) {
    if (cancel != nullptr && cancel->stop_requested()) return;
    ++tally.simulated;
    sim_.apply_frame(seq.frames[t], &injections_);
    std::uint64_t fresh = po_detections() & ~det;
    det |= fresh;
    while (fresh != 0) {
      const int bit = std::countr_zero(fresh);
      fresh &= fresh - 1;
      first_po[static_cast<std::size_t>(bit) - 1] =
          static_cast<std::int64_t>(t);
    }
    sim_.latch(&injections_);
    // Scan-out after time unit t would observe the just-latched state.
    std::uint64_t bits = state_detections();
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      bits &= bits - 1;
      state_diff[static_cast<std::size_t>(bit) - 1].set(t);
    }
  }
}

void GroupWorker::run_times_cone(const sim::NodeTrace& trace,
                                 const Sequence& seq,
                                 std::span<const FaultClassId> group,
                                 std::span<std::int64_t> first_po,
                                 std::span<util::Bitset> state_diff,
                                 const util::CancelToken* cancel) {
  (void)group;
  cone_.begin(plan_, injections_, trace);
  std::uint64_t det = 0;
  FrameTally tally;
  for (std::size_t t = 0; t < seq.length(); ++t) {
    if (cancel != nullptr && cancel->stop_requested()) return;
    if (!cone_.eval_frame(t)) {
      ++tally.skipped;
      continue;  // no detections on a clean frame
    }
    ++tally.simulated;
    std::uint64_t fresh = po_detections_cone() & ~det;
    det |= fresh;
    while (fresh != 0) {
      const int bit = std::countr_zero(fresh);
      fresh &= fresh - 1;
      first_po[static_cast<std::size_t>(bit) - 1] =
          static_cast<std::int64_t>(t);
    }
    cone_.latch();
    std::uint64_t bits = state_detections_cone();
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      bits &= bits - 1;
      state_diff[static_cast<std::size_t>(bit) - 1].set(t);
    }
  }
}

std::uint64_t GroupWorker::run_prefix(const Vector3& scan_in,
                                      const Sequence& seq,
                                      std::span<const FaultClassId> group,
                                      std::span<std::int64_t> first_po,
                                      const util::CancelToken* cancel,
                                      const KernelChoice& kernel) {
  assert(first_po.size() == group.size());
  if (faults_->model().frame_gated()) {
    assert(kernel.trace != nullptr);
    build_tdf_sites(group);
    if (cone_selected(group, kernel)) {
      return run_prefix_tdf_cone(*kernel.trace, seq, group, first_po, cancel);
    }
    return run_prefix_tdf(*kernel.trace, seq, group, first_po, cancel);
  }
  if (cone_selected(group, kernel)) {
    build_injections(group);
    return run_prefix_cone(*kernel.trace, seq, group, first_po, cancel);
  }
  start_test(&scan_in, group);
  const std::uint64_t full = group_slot_mask(group.size());
  std::uint64_t det = 0;
  FrameTally tally;
  for (std::size_t t = 0; t < seq.length(); ++t) {
    if (cancel != nullptr && cancel->stop_requested()) return det;
    ++tally.simulated;
    sim_.apply_frame(seq.frames[t], &injections_);
    std::uint64_t fresh = po_detections() & ~det;
    det |= fresh;
    while (fresh != 0) {
      const int bit = std::countr_zero(fresh);
      fresh &= fresh - 1;
      first_po[static_cast<std::size_t>(bit) - 1] =
          static_cast<std::int64_t>(t);
    }
    if (det == full) return det;  // everything PO-detected: skip the rest
    sim_.latch(&injections_);
  }
  return det | state_detections();  // final scan-out
}

std::uint64_t GroupWorker::run_prefix_cone(const sim::NodeTrace& trace,
                                           const Sequence& seq,
                                           std::span<const FaultClassId> group,
                                           std::span<std::int64_t> first_po,
                                           const util::CancelToken* cancel) {
  cone_.begin(plan_, injections_, trace);
  const std::uint64_t full = group_slot_mask(group.size());
  std::uint64_t det = 0;
  FrameTally tally;
  for (std::size_t t = 0; t < seq.length(); ++t) {
    if (cancel != nullptr && cancel->stop_requested()) return det;
    if (!cone_.eval_frame(t)) {
      ++tally.skipped;
      continue;  // det < full here: no change
    }
    ++tally.simulated;
    std::uint64_t fresh = po_detections_cone() & ~det;
    det |= fresh;
    while (fresh != 0) {
      const int bit = std::countr_zero(fresh);
      fresh &= fresh - 1;
      first_po[static_cast<std::size_t>(bit) - 1] =
          static_cast<std::int64_t>(t);
    }
    if (det == full) return det;
    cone_.latch();
  }
  return det | state_detections_cone();  // final scan-out
}

std::uint64_t GroupWorker::run_consistency(
    const Vector3& scan_in, const Sequence& seq,
    std::span<const sim::Vector3> observed_pos,
    const Vector3& observed_scan_out, std::span<const FaultClassId> group,
    const util::CancelToken* cancel, const KernelChoice& kernel) {
  assert(observed_pos.size() == seq.length());
  assert(observed_scan_out.size() == circuit_->num_flip_flops());
  if (faults_->model().frame_gated()) {
    assert(kernel.trace != nullptr);
    build_tdf_sites(group);
    if (cone_selected(group, kernel)) {
      return run_consistency_tdf_cone(*kernel.trace, seq, observed_pos,
                                      observed_scan_out, group, cancel);
    }
    return run_consistency_tdf(*kernel.trace, seq, observed_pos,
                               observed_scan_out, group, cancel);
  }
  if (cone_selected(group, kernel)) {
    build_injections(group);
    return run_consistency_cone(*kernel.trace, seq, observed_pos,
                                observed_scan_out, group, cancel);
  }
  start_test(&scan_in, group);

  // Mismatch bits for one observation point: predicted binary, observed
  // binary, values differ.
  const auto mismatches = [](const PackedV3 w, sim::V3 obs) -> std::uint64_t {
    if (!sim::is_binary(obs)) return 0;
    return sim::differs_from_reference(w, obs == sim::V3::One);
  };

  const std::uint64_t full = group_slot_mask(group.size());
  std::uint64_t mismatch = 0;
  FrameTally tally;
  for (std::size_t t = 0; t < seq.length(); ++t) {
    if (cancel != nullptr && cancel->stop_requested()) return mismatch;
    ++tally.simulated;
    sim_.apply_frame(seq.frames[t], &injections_);
    const auto pos = circuit_->primary_outputs();
    for (std::size_t i = 0; i < pos.size(); ++i) {
      mismatch |= mismatches(sim_.value(pos[i]), observed_pos[t][i]);
    }
    sim_.latch(&injections_);
    if ((mismatch & full) == full) break;
  }
  for (std::size_t i = 0; i < circuit_->num_flip_flops(); ++i) {
    if (!scan_mask_.test(i)) continue;
    mismatch |= mismatches(sim_.captured(i), observed_scan_out[i]);
  }
  return mismatch;
}

std::uint64_t GroupWorker::run_consistency_cone(
    const sim::NodeTrace& trace, const Sequence& seq,
    std::span<const sim::Vector3> observed_pos,
    const Vector3& observed_scan_out, std::span<const FaultClassId> group,
    const util::CancelToken* cancel) {
  cone_.begin(plan_, injections_, trace);

  // Out-of-cone (or clean) observation points are slot-uniform at the
  // fault-free value, so a binary/binary difference against the
  // observation mismatches *all* slots at once — exactly what the full
  // kernel's differs_from_reference yields on a uniform word.
  const auto uniform_mismatch = [](sim::V3 v, sim::V3 obs) -> std::uint64_t {
    return (sim::is_binary(obs) && sim::is_binary(v) && v != obs) ? ~0ULL
                                                                  : 0;
  };
  const auto mismatches = [](const PackedV3 w, sim::V3 obs) -> std::uint64_t {
    if (!sim::is_binary(obs)) return 0;
    return sim::differs_from_reference(w, obs == sim::V3::One);
  };

  const std::uint64_t full = group_slot_mask(group.size());
  const auto pos = circuit_->primary_outputs();
  std::uint64_t mismatch = 0;
  bool broke = false;
  FrameTally tally;
  for (std::size_t t = 0; t < seq.length(); ++t) {
    if (cancel != nullptr && cancel->stop_requested()) return mismatch;
    const bool simulated = cone_.eval_frame(t);
    if (simulated) {
      ++tally.simulated;
    } else {
      ++tally.skipped;
    }
    for (std::size_t i = 0; i < pos.size(); ++i) {
      if (simulated && plan_.in_cone(pos[i])) {
        mismatch |= mismatches(cone_.value(pos[i]), observed_pos[t][i]);
      } else {
        mismatch |=
            uniform_mismatch(trace.value(t, pos[i]), observed_pos[t][i]);
      }
    }
    if (simulated) cone_.latch();
    if ((mismatch & full) == full) {
      broke = true;
      break;
    }
  }
  if (broke) return mismatch;  // every group slot already mismatches
  const Vector3 ff_free = trace.state_at_start(seq.length());
  const auto ffs = circuit_->flip_flops();
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    if (!scan_mask_.test(i)) continue;
    if (!cone_.clean() && plan_.in_cone(ffs[i])) {
      mismatch |= mismatches(cone_.captured(i), observed_scan_out[i]);
    } else {
      mismatch |= uniform_mismatch(ff_free[i], observed_scan_out[i]);
    }
  }
  return mismatch;
}

// ---------------------------------------------------------------------
// Frame-gated (transition-delay) passes.
//
// Semantics shared by all eight passes (and the check/ TDF oracle):
// fault j is *active* in frame t >= 1 iff the fault-free value of its
// stem was the stale value in frame t-1 and the opposite (binary) value
// in frame t — the delayed transition is launched.  An active frame is
// simulated one-frame from the fault-free state entering it with the
// stem stuck at the stale value; POs are observed in that frame, and the
// state captured at its end carries the effect to scan-out only when it
// is the test's final frame.  Effects never persist: every frame starts
// from the fault-free trace, which also makes prefix-coverage records
// per-frame independent exactly as under stuck-at.

void GroupWorker::build_tdf_sites(std::span<const FaultClassId> group) {
  tdf_sites_.clear();
  tdf_sites_.reserve(group.size());
  for (const FaultClassId id : group) {
    const Fault& f = faults_->representative(id);
    assert(f.pin == sim::kStemPin);
    tdf_sites_.push_back(TdfSite{f.node, f.value});
  }
}

std::uint64_t GroupWorker::tdf_activation(const sim::NodeTrace& trace,
                                          std::size_t t) const {
  assert(t >= 1);
  std::uint64_t act = 0;
  for (std::size_t j = 0; j < tdf_sites_.size(); ++j) {
    const TdfSite& s = tdf_sites_[j];
    const sim::V3 stale = s.stale ? sim::V3::One : sim::V3::Zero;
    const sim::V3 fresh = s.stale ? sim::V3::Zero : sim::V3::One;
    if (trace.value(t - 1, s.node) == stale &&
        trace.value(t, s.node) == fresh) {
      act |= 1ULL << (j + 1);
    }
  }
  return act;
}

void GroupWorker::build_tdf_injections(std::uint64_t act) {
  injections_.clear();
  while (act != 0) {
    const int bit = std::countr_zero(act);
    act &= act - 1;
    const TdfSite& s = tdf_sites_[static_cast<std::size_t>(bit) - 1];
    injections_.add(s.node, sim::kStemPin, s.stale, 1ULL << bit);
  }
}

std::uint64_t GroupWorker::run_detect_tdf(
    const sim::NodeTrace& trace, const Sequence& seq,
    std::span<const FaultClassId> group, bool observe_scan_out,
    bool early_exit, const std::atomic<bool>* keep_going,
    const util::CancelToken* cancel) {
  sim_.reset(nullptr);
  const std::uint64_t full = group_slot_mask(group.size());
  std::uint64_t det = 0;
  FrameTally tally;
  for (std::size_t t = 0; t < seq.length(); ++t) {
    if (keep_going != nullptr &&
        !keep_going->load(std::memory_order_relaxed)) {
      return det;
    }
    if (cancel != nullptr && cancel->stop_requested()) return det;
    const std::uint64_t act = t == 0 ? 0 : tdf_activation(trace, t);
    if (act == 0) {
      ++tally.tdf_skipped;
      continue;  // no launch: every machine follows the fault-free trace
    }
    tally.tdf_activations +=
        static_cast<std::uint64_t>(std::popcount(act));
    ++tally.simulated;
    build_tdf_injections(act);
    sim_.load_state(trace.state_at_start(t), &injections_);
    sim_.apply_frame(seq.frames[t], &injections_);
    det |= po_detections();
    if (observe_scan_out && t + 1 == seq.length()) {
      sim_.latch(&injections_);
      det |= state_detections();
    }
    if (early_exit && det == full && t + 1 < seq.length()) return det;
  }
  return det;
}

std::uint64_t GroupWorker::run_detect_tdf_cone(
    const sim::NodeTrace& trace, const Sequence& seq,
    std::span<const FaultClassId> group, bool observe_scan_out,
    bool early_exit, const std::atomic<bool>* keep_going,
    const util::CancelToken* cancel) {
  injections_.clear();
  cone_.begin(plan_, injections_, trace);
  const std::uint64_t full = group_slot_mask(group.size());
  std::uint64_t det = 0;
  FrameTally tally;
  for (std::size_t t = 0; t < seq.length(); ++t) {
    if (keep_going != nullptr &&
        !keep_going->load(std::memory_order_relaxed)) {
      return det;
    }
    if (cancel != nullptr && cancel->stop_requested()) return det;
    const std::uint64_t act = t == 0 ? 0 : tdf_activation(trace, t);
    if (act == 0) {
      ++tally.tdf_skipped;
      continue;
    }
    tally.tdf_activations +=
        static_cast<std::uint64_t>(std::popcount(act));
    build_tdf_injections(act);
    if (!cone_.eval_frame(t)) {
      ++tally.skipped;
      continue;
    }
    ++tally.simulated;
    det |= po_detections_cone();
    if (observe_scan_out && t + 1 == seq.length()) {
      cone_.latch();
      det |= state_detections_cone();
    }
    if (early_exit && det == full && t + 1 < seq.length()) return det;
  }
  return det;
}

void GroupWorker::run_times_tdf(const sim::NodeTrace& trace,
                                const Sequence& seq,
                                std::span<std::int64_t> first_po,
                                std::span<util::Bitset> state_diff,
                                const util::CancelToken* cancel) {
  sim_.reset(nullptr);
  std::uint64_t det = 0;
  FrameTally tally;
  for (std::size_t t = 0; t < seq.length(); ++t) {
    if (cancel != nullptr && cancel->stop_requested()) return;
    const std::uint64_t act = t == 0 ? 0 : tdf_activation(trace, t);
    if (act == 0) {
      ++tally.tdf_skipped;
      continue;  // inactive frames latch the fault-free state: no records
    }
    tally.tdf_activations +=
        static_cast<std::uint64_t>(std::popcount(act));
    ++tally.simulated;
    build_tdf_injections(act);
    sim_.load_state(trace.state_at_start(t), &injections_);
    sim_.apply_frame(seq.frames[t], &injections_);
    std::uint64_t fresh = po_detections() & ~det;
    det |= fresh;
    while (fresh != 0) {
      const int bit = std::countr_zero(fresh);
      fresh &= fresh - 1;
      first_po[static_cast<std::size_t>(bit) - 1] =
          static_cast<std::int64_t>(t);
    }
    sim_.latch(&injections_);
    // Scan-out after time unit t observes the state captured at the end
    // of the (active) frame t; effects decay again from t+1 on.
    std::uint64_t bits = state_detections();
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      bits &= bits - 1;
      state_diff[static_cast<std::size_t>(bit) - 1].set(t);
    }
  }
}

void GroupWorker::run_times_tdf_cone(const sim::NodeTrace& trace,
                                     const Sequence& seq,
                                     std::span<std::int64_t> first_po,
                                     std::span<util::Bitset> state_diff,
                                     const util::CancelToken* cancel) {
  injections_.clear();
  cone_.begin(plan_, injections_, trace);
  std::uint64_t det = 0;
  FrameTally tally;
  for (std::size_t t = 0; t < seq.length(); ++t) {
    if (cancel != nullptr && cancel->stop_requested()) return;
    const std::uint64_t act = t == 0 ? 0 : tdf_activation(trace, t);
    if (act == 0) {
      ++tally.tdf_skipped;
      continue;
    }
    tally.tdf_activations +=
        static_cast<std::uint64_t>(std::popcount(act));
    build_tdf_injections(act);
    if (!cone_.eval_frame(t)) {
      ++tally.skipped;
      continue;
    }
    ++tally.simulated;
    std::uint64_t fresh = po_detections_cone() & ~det;
    det |= fresh;
    while (fresh != 0) {
      const int bit = std::countr_zero(fresh);
      fresh &= fresh - 1;
      first_po[static_cast<std::size_t>(bit) - 1] =
          static_cast<std::int64_t>(t);
    }
    cone_.latch();
    std::uint64_t bits = state_detections_cone();
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      bits &= bits - 1;
      state_diff[static_cast<std::size_t>(bit) - 1].set(t);
    }
    // The latch dirtied the cone state; re-arm the clean path so the
    // next active frame re-seeds from the fault-free trace (per-frame
    // effect independence).
    if (!cone_.clean()) cone_.begin(plan_, injections_, trace);
  }
}

std::uint64_t GroupWorker::run_prefix_tdf(const sim::NodeTrace& trace,
                                          const Sequence& seq,
                                          std::span<const FaultClassId> group,
                                          std::span<std::int64_t> first_po,
                                          const util::CancelToken* cancel) {
  sim_.reset(nullptr);
  const std::uint64_t full = group_slot_mask(group.size());
  std::uint64_t det = 0;
  FrameTally tally;
  for (std::size_t t = 0; t < seq.length(); ++t) {
    if (cancel != nullptr && cancel->stop_requested()) return det;
    const std::uint64_t act = t == 0 ? 0 : tdf_activation(trace, t);
    if (act == 0) {
      ++tally.tdf_skipped;
      continue;
    }
    tally.tdf_activations +=
        static_cast<std::uint64_t>(std::popcount(act));
    ++tally.simulated;
    build_tdf_injections(act);
    sim_.load_state(trace.state_at_start(t), &injections_);
    sim_.apply_frame(seq.frames[t], &injections_);
    std::uint64_t fresh = po_detections() & ~det;
    det |= fresh;
    while (fresh != 0) {
      const int bit = std::countr_zero(fresh);
      fresh &= fresh - 1;
      first_po[static_cast<std::size_t>(bit) - 1] =
          static_cast<std::int64_t>(t);
    }
    if (det == full) return det;  // everything PO-detected: skip the rest
    if (t + 1 == seq.length()) {
      sim_.latch(&injections_);
      det |= state_detections();  // final scan-out (final frame active)
    }
  }
  return det;
}

std::uint64_t GroupWorker::run_prefix_tdf_cone(
    const sim::NodeTrace& trace, const Sequence& seq,
    std::span<const FaultClassId> group, std::span<std::int64_t> first_po,
    const util::CancelToken* cancel) {
  injections_.clear();
  cone_.begin(plan_, injections_, trace);
  const std::uint64_t full = group_slot_mask(group.size());
  std::uint64_t det = 0;
  FrameTally tally;
  for (std::size_t t = 0; t < seq.length(); ++t) {
    if (cancel != nullptr && cancel->stop_requested()) return det;
    const std::uint64_t act = t == 0 ? 0 : tdf_activation(trace, t);
    if (act == 0) {
      ++tally.tdf_skipped;
      continue;
    }
    tally.tdf_activations +=
        static_cast<std::uint64_t>(std::popcount(act));
    build_tdf_injections(act);
    if (!cone_.eval_frame(t)) {
      ++tally.skipped;
      continue;
    }
    ++tally.simulated;
    std::uint64_t fresh = po_detections_cone() & ~det;
    det |= fresh;
    while (fresh != 0) {
      const int bit = std::countr_zero(fresh);
      fresh &= fresh - 1;
      first_po[static_cast<std::size_t>(bit) - 1] =
          static_cast<std::int64_t>(t);
    }
    if (det == full) return det;
    if (t + 1 == seq.length()) {
      cone_.latch();
      det |= state_detections_cone();
    }
  }
  return det;
}

std::uint64_t GroupWorker::run_consistency_tdf(
    const sim::NodeTrace& trace, const Sequence& seq,
    std::span<const sim::Vector3> observed_pos,
    const Vector3& observed_scan_out, std::span<const FaultClassId> group,
    const util::CancelToken* cancel) {
  sim_.reset(nullptr);

  const auto mismatches = [](const PackedV3 w, sim::V3 obs) -> std::uint64_t {
    if (!sim::is_binary(obs)) return 0;
    return sim::differs_from_reference(w, obs == sim::V3::One);
  };
  // In an inactive frame every machine predicts the fault-free value, so
  // a binary/binary difference against the observation mismatches all
  // slots at once (the same word the full stuck-at kernel would yield on
  // a slot-uniform value).
  const auto uniform_mismatch = [](sim::V3 v, sim::V3 obs) -> std::uint64_t {
    return (sim::is_binary(obs) && sim::is_binary(v) && v != obs) ? ~0ULL
                                                                  : 0;
  };

  const std::uint64_t full = group_slot_mask(group.size());
  const auto pos = circuit_->primary_outputs();
  std::uint64_t mismatch = 0;
  bool final_active = false;
  bool broke = false;
  FrameTally tally;
  for (std::size_t t = 0; t < seq.length(); ++t) {
    if (cancel != nullptr && cancel->stop_requested()) return mismatch;
    const std::uint64_t act = t == 0 ? 0 : tdf_activation(trace, t);
    if (act == 0) {
      ++tally.tdf_skipped;
      for (std::size_t i = 0; i < pos.size(); ++i) {
        mismatch |=
            uniform_mismatch(trace.value(t, pos[i]), observed_pos[t][i]);
      }
    } else {
      tally.tdf_activations +=
          static_cast<std::uint64_t>(std::popcount(act));
      ++tally.simulated;
      build_tdf_injections(act);
      sim_.load_state(trace.state_at_start(t), &injections_);
      sim_.apply_frame(seq.frames[t], &injections_);
      for (std::size_t i = 0; i < pos.size(); ++i) {
        mismatch |= mismatches(sim_.value(pos[i]), observed_pos[t][i]);
      }
      if (t + 1 == seq.length()) {
        final_active = true;
        sim_.latch(&injections_);
      }
    }
    if ((mismatch & full) == full) {
      broke = true;
      break;
    }
  }
  if (broke) return mismatch;  // every group slot already mismatches
  if (final_active) {
    for (std::size_t i = 0; i < circuit_->num_flip_flops(); ++i) {
      if (!scan_mask_.test(i)) continue;
      mismatch |= mismatches(sim_.captured(i), observed_scan_out[i]);
    }
  } else {
    // Final frame inactive (or empty test): scan-out observes the
    // fault-free state on every machine.
    const Vector3 ff_free = trace.state_at_start(seq.length());
    for (std::size_t i = 0; i < circuit_->num_flip_flops(); ++i) {
      if (!scan_mask_.test(i)) continue;
      mismatch |= uniform_mismatch(ff_free[i], observed_scan_out[i]);
    }
  }
  return mismatch;
}

std::uint64_t GroupWorker::run_consistency_tdf_cone(
    const sim::NodeTrace& trace, const Sequence& seq,
    std::span<const sim::Vector3> observed_pos,
    const Vector3& observed_scan_out, std::span<const FaultClassId> group,
    const util::CancelToken* cancel) {
  injections_.clear();
  cone_.begin(plan_, injections_, trace);

  const auto mismatches = [](const PackedV3 w, sim::V3 obs) -> std::uint64_t {
    if (!sim::is_binary(obs)) return 0;
    return sim::differs_from_reference(w, obs == sim::V3::One);
  };
  const auto uniform_mismatch = [](sim::V3 v, sim::V3 obs) -> std::uint64_t {
    return (sim::is_binary(obs) && sim::is_binary(v) && v != obs) ? ~0ULL
                                                                  : 0;
  };

  const std::uint64_t full = group_slot_mask(group.size());
  const auto pos = circuit_->primary_outputs();
  std::uint64_t mismatch = 0;
  bool final_active = false;
  FrameTally tally;
  for (std::size_t t = 0; t < seq.length(); ++t) {
    if (cancel != nullptr && cancel->stop_requested()) return mismatch;
    const std::uint64_t act = t == 0 ? 0 : tdf_activation(trace, t);
    if (act == 0) {
      ++tally.tdf_skipped;
      for (std::size_t i = 0; i < pos.size(); ++i) {
        mismatch |=
            uniform_mismatch(trace.value(t, pos[i]), observed_pos[t][i]);
      }
    } else {
      tally.tdf_activations +=
          static_cast<std::uint64_t>(std::popcount(act));
      build_tdf_injections(act);
      const bool simulated = cone_.eval_frame(t);
      if (simulated) {
        ++tally.simulated;
      } else {
        ++tally.skipped;
      }
      for (std::size_t i = 0; i < pos.size(); ++i) {
        if (simulated && plan_.in_cone(pos[i])) {
          mismatch |= mismatches(cone_.value(pos[i]), observed_pos[t][i]);
        } else {
          mismatch |=
              uniform_mismatch(trace.value(t, pos[i]), observed_pos[t][i]);
        }
      }
      if (simulated && t + 1 == seq.length()) {
        cone_.latch();
        final_active = true;
      }
    }
    if ((mismatch & full) == full) return mismatch;
  }
  const Vector3 ff_free = trace.state_at_start(seq.length());
  const auto ffs = circuit_->flip_flops();
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    if (!scan_mask_.test(i)) continue;
    if (final_active && !cone_.clean() && plan_.in_cone(ffs[i])) {
      mismatch |= mismatches(cone_.captured(i), observed_scan_out[i]);
    } else {
      mismatch |= uniform_mismatch(ff_free[i], observed_scan_out[i]);
    }
  }
  return mismatch;
}

}  // namespace scanc::fault
