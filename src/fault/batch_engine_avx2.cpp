// AVX2 batch-engine instantiation.  This TU (alone) is compiled with
// -mavx2 when the compiler supports it; it deliberately instantiates
// only Avx2Word templates so no other symbol the linker might prefer is
// built with wide codegen.  Callers reach it through make_batch_engine,
// which consults __builtin_cpu_supports before selecting this path.
#include "fault/batch_engine_impl.hpp"
#include "fault/batch_engine_isa.hpp"

namespace scanc::fault {

std::unique_ptr<BatchEngine> make_batch_engine_avx2(
    const netlist::Circuit& circuit, const FaultList& faults,
    util::Bitset scan_mask) {
  return make_batch_engine_impl<sim::Avx2Word>(circuit, faults,
                                               std::move(scan_mask));
}

}  // namespace scanc::fault
