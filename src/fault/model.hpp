// Pluggable fault-model layer: site enumeration, collapsing rules, and
// per-frame activation semantics, abstracted behind fault::FaultModel.
//
// Two concrete models ship:
//
//   StuckAt     the classical single stuck-at model (stems + fanout
//               branches, structural equivalence collapsing through
//               BUF/NOT/AND/NAND/OR/NOR).  A stuck-at fault is active in
//               every frame, so kernels inject it unconditionally.
//
//   Transition  gross-delay transition faults (slow-to-rise / slow-to-
//               fall) at stems.  A transition fault is *frame-gated*:
//               its effect exists only in a frame whose fault-free site
//               value launches the delayed transition (previous frame at
//               the stale value, current frame at the opposite value,
//               both binary).  In an active frame the site behaves as
//               stuck at the stale value for exactly that frame; the
//               effect does not persist across frames.  docs/
//               fault_models.md derives the semantics and the
//               activation-aware frame-skipping rule the kernels use.
//
// The model owns what varies between fault types; the packed 64-slot
// fault-parallel machinery, group partitioning, trace cache, and the six
// FaultSimulator queries are model-agnostic and consume the model through
// FaultList::model().
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "netlist/circuit.hpp"

namespace scanc::fault {

/// The concrete fault models the library ships.
enum class FaultModelKind : std::uint8_t {
  StuckAt,     ///< single stuck-at (the default)
  Transition,  ///< gross-delay transition faults (STR/STF)
};

/// Effective fanout of a stem: gate connections plus the implicit
/// primary-output tap.  Branch faults (and per-model collapsing through
/// single-fanout lines) key off this count; it is the single shared
/// definition used by every model and by the check/ oracle.
[[nodiscard]] std::size_t effective_fanout(const netlist::Circuit& c,
                                           netlist::NodeId stem) noexcept;

/// One fault model: the site universe, its collapsing rules, and how the
/// simulation kernels must gate injection per frame.  Implementations are
/// stateless singletons; FaultList and the kernels hold them by
/// reference.
class FaultModel {
 public:
  virtual ~FaultModel() = default;

  [[nodiscard]] virtual FaultModelKind kind() const noexcept = 0;

  /// Stable command-line / journal name: "stuck" or "transition".
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Fault-name suffix for reporting: "/SA0", "/SA1", "/STR", "/STF".
  [[nodiscard]] virtual const char* fault_suffix(
      const Fault& f) const noexcept = 0;

  /// True when a fault of this model is only active in frames whose
  /// fault-free site value satisfies an activation predicate (transition
  /// launch).  Frame-gated models require the fault-free node trace in
  /// every kernel mode, and whole-frame skipping becomes
  /// activation-aware.
  [[nodiscard]] virtual bool frame_gated() const noexcept = 0;

  /// Enumerates the model's fault universe of `c` into `out`, in a
  /// stable order (equal circuits give equal lists).
  virtual void enumerate(const netlist::Circuit& c,
                         std::vector<Fault>& out) const = 0;

  /// Structural equivalence collapsing: calls `unite(a, b)` for every
  /// equivalent pair of fault indices (indices into the enumerate()
  /// order).  The caller owns the union-find and class numbering.
  virtual void collapse(
      const netlist::Circuit& c, std::span<const Fault> faults,
      const std::function<void(std::uint32_t, std::uint32_t)>& unite)
      const = 0;

  /// Process-lifetime singletons.
  [[nodiscard]] static const FaultModel& stuck_at() noexcept;
  [[nodiscard]] static const FaultModel& transition() noexcept;
  [[nodiscard]] static const FaultModel& get(FaultModelKind kind) noexcept;
};

}  // namespace scanc::fault
