// Parallel fault-group execution layer.
//
// Every FaultSimulator query reduces to the same plan: partition the
// target classes into groups of <= 63 (one simulation slot each, slot 0
// reserved for the fault-free machine), simulate each group
// independently, and combine per-group results in group order.  This
// file owns that plan.
//
// Determinism: each group's result depends only on (const inputs,
// group), never on which thread ran it or in what order, and callers
// write per-group/per-target slots and reduce serially in group order —
// so any thread count produces bit-identical results to a serial run.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "fault/group_worker.hpp"
#include "util/thread_pool.hpp"

namespace scanc::fault {

/// Group capacity: 63 faulty machines per pass (slot 0 is fault-free).
inline constexpr std::size_t kGroupSize = 63;

/// Number of <= 63-class groups covering `num_targets` classes.
[[nodiscard]] constexpr std::size_t num_groups(
    std::size_t num_targets) noexcept {
  return (num_targets + kGroupSize - 1) / kGroupSize;
}

/// How a query plan executes.
struct ExecPolicy {
  /// Worker threads: 1 = serial on the calling thread (no pool), 0 = one
  /// per hardware thread, otherwise the literal count.
  std::size_t num_threads = 1;
};

/// Per-group callback: the worker is exclusively owned by the executing
/// thread for the duration of the call; `group_index` addresses the
/// caller's result slot; `group` is the slice of target class ids.
using GroupFn = std::function<void(
    GroupWorker&, std::size_t group_index, std::span<const FaultClassId>)>;

/// Per-chunk callback for for_each_chunk: same worker-ownership contract
/// as GroupFn, but the caller defines what a chunk is (the wide
/// fault-parallel path runs one chunk of lanes() consecutive groups per
/// call).
using ChunkFn = std::function<void(GroupWorker&, std::size_t chunk_index)>;

/// Runs fault-group query plans over one (circuit, fault list, scan
/// mask) universe.  Owns the worker-local engines and the thread pool;
/// both are created lazily and reused across queries, so the serial path
/// allocates exactly one engine and never touches a thread primitive.
///
/// Not itself thread-safe: one executor serves one query at a time.
class GroupExecutor {
 public:
  GroupExecutor(const netlist::Circuit& circuit, const FaultList& faults,
                util::Bitset scan_mask);

  /// Partitions `targets` into <= 63-class groups and invokes `fn` once
  /// per group under `policy`.  Group order of *invocation* is
  /// unspecified beyond num_threads == 1 (ascending); callers must keep
  /// per-group result slots and reduce after this returns.
  void for_each_group(std::span<const FaultClassId> targets,
                      const ExecPolicy& policy, const GroupFn& fn);

  /// Generic fan-out `for_each_group` is built on: invokes `fn` once per
  /// chunk index in [0, num_chunks) under `policy` with a thread-owned
  /// worker.  Chunk invocation order is unspecified beyond
  /// num_threads == 1 (ascending); results must not depend on it.
  void for_each_chunk(std::size_t num_chunks, const ExecPolicy& policy,
                      const ChunkFn& fn);

  /// The engine the serial path uses (worker 0) — exposed for
  /// incremental simulation sessions that interleave with queries.
  [[nodiscard]] GroupWorker& serial_worker() { return worker(0); }

 private:
  [[nodiscard]] GroupWorker& worker(std::size_t i);

  const netlist::Circuit* circuit_;
  const FaultList* faults_;
  util::Bitset scan_mask_;
  std::vector<std::unique_ptr<GroupWorker>> workers_;
  std::unique_ptr<util::ThreadPool> pool_;
};

/// Query-plan entry point: partition `targets` into <= 63-class groups
/// and run `fn` over them on `exec` under `policy`.  (Thin sugar over
/// the member function so call sites read as a plan, not a method.)
inline void for_each_group(GroupExecutor& exec,
                           std::span<const FaultClassId> targets,
                           const ExecPolicy& policy, const GroupFn& fn) {
  exec.for_each_group(targets, policy, fn);
}

}  // namespace scanc::fault
