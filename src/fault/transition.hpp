// Transition (gross-delay) fault model — the defect type the paper's
// at-speed argument is about.
//
// A slow-to-rise (STR) fault at a line delays its 0->1 transition past
// one clock period; slow-to-fall (STF) dually.  Under functional
// at-speed application, the fault is detected by two *consecutive*
// vectors of a test's PI sequence: the first (launch) sets the line to
// its initial value, the second (capture) would transition it, and the
// line's stale value must reach an observation point in the capture
// cycle — i.e. the corresponding stuck-at effect is observed at a
// primary output in that cycle, or at the scan-out when the capture
// cycle is the test's last.
//
// The key structural consequence, and the reason the paper's long
// functional sequences matter: a scan test whose sequence has length one
// has no launch cycle and can detect *no* transition fault functionally.
// bench/transition_coverage quantifies this against the [4] baseline.
//
// Faults are modeled at stems (one STR + one STF per signal), the
// standard transition-fault universe.
#pragma once

#include "fault/fault_sim.hpp"
#include "netlist/circuit.hpp"
#include "sim/sequence.hpp"
#include "util/bitset.hpp"

namespace scanc::fault {

/// Transition-fault index: node * 2 + (slow_to_fall ? 1 : 0).
[[nodiscard]] constexpr std::size_t transition_fault_index(
    netlist::NodeId node, bool slow_to_fall) noexcept {
  return static_cast<std::size_t>(node) * 2 + (slow_to_fall ? 1 : 0);
}

/// Number of transition faults of a circuit (2 per signal).
[[nodiscard]] inline std::size_t num_transition_faults(
    const netlist::Circuit& c) noexcept {
  return c.num_nodes() * 2;
}

/// Transition-fault simulator: computes, per scan test, the set of
/// transition faults it detects under launch-on-capture functional
/// application (see the header comment for the detection condition).
class TransitionFaultSim {
 public:
  explicit TransitionFaultSim(const netlist::Circuit& circuit);

  /// Faults detected by one scan test (SI, T); indices per
  /// transition_fault_index.  A length-one sequence detects nothing.
  [[nodiscard]] util::Bitset detect(const sim::Vector3& scan_in,
                                    const sim::Sequence& seq);

  /// Union over a set of scan tests.
  [[nodiscard]] util::Bitset coverage(
      std::span<const sim::Vector3> scan_ins,
      std::span<const sim::Sequence> seqs);

  [[nodiscard]] const netlist::Circuit& circuit() const noexcept {
    return *circuit_;
  }

 private:
  const netlist::Circuit* circuit_;
  sim::PackedSeqSim sim_;
  sim::InjectionMap injections_;
  std::vector<sim::V3> prev_good_;  // per node, previous-frame good value
};

}  // namespace scanc::fault
