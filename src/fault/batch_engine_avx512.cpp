// AVX-512 batch-engine instantiation (compiled with -mavx512f when
// available; foundation subset only — the kernels need nothing beyond
// 512-bit and/or/xor/sub/test/compare).  See batch_engine_avx2.cpp for
// the TU-isolation rationale.
#include "fault/batch_engine_impl.hpp"
#include "fault/batch_engine_isa.hpp"

namespace scanc::fault {

std::unique_ptr<BatchEngine> make_batch_engine_avx512(
    const netlist::Circuit& circuit, const FaultList& faults,
    util::Bitset scan_mask) {
  return make_batch_engine_impl<sim::Avx512Word>(circuit, faults,
                                                 std::move(scan_mask));
}

}  // namespace scanc::fault
