#include "fault/model.hpp"

#include <unordered_map>

namespace scanc::fault {

using netlist::Circuit;
using netlist::GateType;
using netlist::Node;
using netlist::NodeId;

std::size_t effective_fanout(const Circuit& c, NodeId stem) noexcept {
  return c.node(stem).fanouts.size() + (c.is_primary_output(stem) ? 1u : 0u);
}

namespace {

std::uint64_t branch_key(NodeId node, int pin, bool value) {
  return (static_cast<std::uint64_t>(node) << 32) |
         (static_cast<std::uint64_t>(pin) << 1) |
         static_cast<std::uint64_t>(value);
}

// -----------------------------------------------------------------------
// Single stuck-at model.

class StuckAtModel final : public FaultModel {
 public:
  [[nodiscard]] FaultModelKind kind() const noexcept override {
    return FaultModelKind::StuckAt;
  }

  [[nodiscard]] const char* name() const noexcept override { return "stuck"; }

  [[nodiscard]] const char* fault_suffix(
      const Fault& f) const noexcept override {
    return f.value ? "/SA1" : "/SA0";
  }

  [[nodiscard]] bool frame_gated() const noexcept override { return false; }

  void enumerate(const Circuit& c, std::vector<Fault>& out) const override {
    // Stem faults: index node*2 + value.
    out.reserve(c.num_nodes() * 2);
    for (NodeId id = 0; id < c.num_nodes(); ++id) {
      out.push_back(Fault{id, sim::kStemPin, false});
      out.push_back(Fault{id, sim::kStemPin, true});
    }
    // Branch faults where the driving stem has fanout > 1.  A primary
    // output designation is an additional (directly observable) fanout
    // of the stem, so a PO signal that also feeds gates gets branch
    // faults on every gate connection.
    for (NodeId id = 0; id < c.num_nodes(); ++id) {
      const Node& n = c.node(id);
      if (!netlist::is_combinational(n.type) && n.type != GateType::Dff) {
        continue;
      }
      for (std::size_t pin = 0; pin < n.fanins.size(); ++pin) {
        if (effective_fanout(c, n.fanins[pin]) <= 1) continue;
        for (const bool sv : {false, true}) {
          out.push_back(Fault{id, static_cast<std::int32_t>(pin), sv});
        }
      }
    }
  }

  void collapse(const Circuit& c, std::span<const Fault> faults,
                const std::function<void(std::uint32_t, std::uint32_t)>&
                    unite) const override {
    // Rebuild the branch-fault index from the enumeration order (branch
    // faults follow the 2*num_nodes stem block).
    std::unordered_map<std::uint64_t, std::uint32_t> branch_index;
    for (std::uint32_t i = c.num_nodes() * 2; i < faults.size(); ++i) {
      const Fault& f = faults[i];
      branch_index.emplace(branch_key(f.node, f.pin, f.value), i);
    }
    // Resolves the fault index of "fanin pin of node `id`, stuck at sv":
    // the branch fault if one was materialized, else the driving stem.
    const auto input_fault = [&](NodeId id, std::size_t pin,
                                 bool sv) -> std::uint32_t {
      const auto it =
          branch_index.find(branch_key(id, static_cast<int>(pin), sv));
      if (it != branch_index.end()) return it->second;
      const NodeId stem = c.node(id).fanins[pin];
      return stem * 2 + (sv ? 1u : 0u);
    };
    const auto stem_fault = [](NodeId id, bool sv) -> std::uint32_t {
      return id * 2 + (sv ? 1u : 0u);
    };

    for (NodeId id = 0; id < c.num_nodes(); ++id) {
      const Node& n = c.node(id);
      switch (n.type) {
        case GateType::Buf:
          unite(stem_fault(id, false), input_fault(id, 0, false));
          unite(stem_fault(id, true), input_fault(id, 0, true));
          break;
        case GateType::Not:
          unite(stem_fault(id, true), input_fault(id, 0, false));
          unite(stem_fault(id, false), input_fault(id, 0, true));
          break;
        case GateType::And:
          for (std::size_t p = 0; p < n.fanins.size(); ++p) {
            unite(stem_fault(id, false), input_fault(id, p, false));
          }
          break;
        case GateType::Nand:
          for (std::size_t p = 0; p < n.fanins.size(); ++p) {
            unite(stem_fault(id, true), input_fault(id, p, false));
          }
          break;
        case GateType::Or:
          for (std::size_t p = 0; p < n.fanins.size(); ++p) {
            unite(stem_fault(id, true), input_fault(id, p, true));
          }
          break;
        case GateType::Nor:
          for (std::size_t p = 0; p < n.fanins.size(); ++p) {
            unite(stem_fault(id, false), input_fault(id, p, true));
          }
          break;
        default:
          break;  // XOR/XNOR/DFF/sources: no structural equivalence
      }
    }
  }
};

// -----------------------------------------------------------------------
// Transition-delay model.
//
// Universe: two stem faults per signal — value=false is slow-to-rise
// (stale 0), value=true is slow-to-fall (stale 1) — indexed node*2 +
// value, matching fault::transition_fault_index.  No branch faults: a
// gross-delay defect on the stem delays every branch identically, and
// per-branch delay resolution is below this model's abstraction.
//
// Collapsing: only through single-fanout BUF/NOT.  With effective fanout
// one, the output line transitions exactly when the input line does
// (inverted polarity through NOT), so the stale-value effects are
// indistinguishable at every observation point:
//   BUF:  in slow-to-v   ==  out slow-to-v
//   NOT:  in slow-to-v   ==  out slow-to-(!v)
// Controlling-value rules (AND/OR families) do NOT transfer: equal stale
// values at an input and the output do not imply equal activation frames,
// because the output can transition without that input transitioning.

class TransitionModel final : public FaultModel {
 public:
  [[nodiscard]] FaultModelKind kind() const noexcept override {
    return FaultModelKind::Transition;
  }

  [[nodiscard]] const char* name() const noexcept override {
    return "transition";
  }

  [[nodiscard]] const char* fault_suffix(
      const Fault& f) const noexcept override {
    return f.value ? "/STF" : "/STR";
  }

  [[nodiscard]] bool frame_gated() const noexcept override { return true; }

  void enumerate(const Circuit& c, std::vector<Fault>& out) const override {
    out.reserve(c.num_nodes() * 2);
    for (NodeId id = 0; id < c.num_nodes(); ++id) {
      out.push_back(Fault{id, sim::kStemPin, false});  // STR, stale 0
      out.push_back(Fault{id, sim::kStemPin, true});   // STF, stale 1
    }
  }

  void collapse(const Circuit& c, std::span<const Fault> /*faults*/,
                const std::function<void(std::uint32_t, std::uint32_t)>&
                    unite) const override {
    const auto stem_fault = [](NodeId id, bool sv) -> std::uint32_t {
      return id * 2 + (sv ? 1u : 0u);
    };
    for (NodeId id = 0; id < c.num_nodes(); ++id) {
      const Node& n = c.node(id);
      if (n.type != GateType::Buf && n.type != GateType::Not) continue;
      const NodeId in = n.fanins[0];
      if (effective_fanout(c, in) > 1) continue;
      if (n.type == GateType::Buf) {
        unite(stem_fault(id, false), stem_fault(in, false));
        unite(stem_fault(id, true), stem_fault(in, true));
      } else {
        unite(stem_fault(id, false), stem_fault(in, true));
        unite(stem_fault(id, true), stem_fault(in, false));
      }
    }
  }
};

}  // namespace

const FaultModel& FaultModel::stuck_at() noexcept {
  static const StuckAtModel model;
  return model;
}

const FaultModel& FaultModel::transition() noexcept {
  static const TransitionModel model;
  return model;
}

const FaultModel& FaultModel::get(FaultModelKind kind) noexcept {
  return kind == FaultModelKind::Transition ? transition() : stuck_at();
}

}  // namespace scanc::fault
