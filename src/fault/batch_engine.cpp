// Portable batch-engine instantiations and the runtime factory.
//
// This TU is compiled with the project's baseline flags; the AVX2 /
// AVX-512 instantiations live in their own TUs (batch_engine_avx2.cpp,
// batch_engine_avx512.cpp) compiled with -mavx2 / -mavx512f, so the
// baseline binary never contains wide instructions on its unconditional
// paths.  The factory trusts the SimdConfig it is given: resolve_simd()
// (sim/simd.hpp) only selects an intrinsic ISA the CPU reports and this
// build compiled.
#include "fault/batch_engine.hpp"

#include "fault/batch_engine_impl.hpp"
#include "fault/batch_engine_isa.hpp"

namespace scanc::fault {

std::unique_ptr<BatchEngine> make_batch_engine(
    const netlist::Circuit& circuit, const FaultList& faults,
    util::Bitset scan_mask, const sim::SimdConfig& cfg) {
  switch (cfg.isa) {
    case sim::SimdIsa::Avx2:
#if defined(SCANC_HAVE_AVX2_TU) && !defined(SCANC_FORCE_SCALAR_WIDE)
      return make_batch_engine_avx2(circuit, faults, std::move(scan_mask));
#else
      break;
#endif
    case sim::SimdIsa::Avx512:
#if defined(SCANC_HAVE_AVX512_TU) && !defined(SCANC_FORCE_SCALAR_WIDE)
      return make_batch_engine_avx512(circuit, faults,
                                      std::move(scan_mask));
#else
      break;
#endif
    case sim::SimdIsa::Portable:
      break;
  }
  if (cfg.bits >= 512) {
    return make_batch_engine_impl<sim::WideWord<8>>(circuit, faults,
                                                    std::move(scan_mask));
  }
  return make_batch_engine_impl<sim::WideWord<4>>(circuit, faults,
                                                  std::move(scan_mask));
}

}  // namespace scanc::fault
