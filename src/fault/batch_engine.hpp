// Wide batch simulation engine: pattern-parallel (PPSFP) and wide
// fault-parallel passes.
//
// A BatchEngine owns one WideSeqSim<W> (sim/wide_sim.hpp) for a concrete
// word type W — portable WideWord<NW>, Avx2Word, or Avx512Word — behind
// a virtual interface so the dispatch on lane width/ISA happens once per
// engine construction, never on the per-gate path.  Two pass shapes:
//
//   detect_batch / times_batch  (PPSFP)
//     lanes() scan tests in the bit-lanes of one pass, one fault group
//     replicated across lanes (splat injection masks, per-lane
//     stimulus).  Lane l's result is bit-identical to the corresponding
//     64-bit per-test GroupWorker pass — lanes never interact.
//
//   detect_groups  (wide fault-parallel)
//     one scan test broadcast to every lane, lanes() consecutive fault
//     groups with per-lane injection masks.  Lane l's mask is
//     bit-identical to run_detect over group first_group + l.
//
// Engines are created per worker thread (GroupWorker::batch_engine) and
// reused across passes; construction is cheap (two node-indexed arrays).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>

#include "fault/fault_list.hpp"
#include "netlist/circuit.hpp"
#include "sim/node_trace.hpp"
#include "sim/sequence.hpp"
#include "sim/simd.hpp"
#include "util/bitset.hpp"
#include "util/cancel.hpp"

namespace scanc::fault {

/// One scan test of a pattern batch.  `scan_in` (nullptr = no scan-in,
/// all-X start) is masked for partial scan by the engine.  `trace` is
/// the test's fault-free trace, required under frame-gated fault models
/// (it is the activation oracle) and ignored otherwise.
struct BatchTestRef {
  const sim::Vector3* scan_in = nullptr;
  const sim::Sequence* seq = nullptr;
  const sim::NodeTrace* trace = nullptr;
};

class BatchEngine {
 public:
  virtual ~BatchEngine() = default;

  /// Number of 64-bit lanes per pass (tests per PPSFP pass, groups per
  /// wide fault-parallel pass).
  [[nodiscard]] virtual std::size_t lanes() const noexcept = 0;

  /// PPSFP detection: simulates `group` (<= 63 classes) against
  /// tests[l] in lane l.  det[l] receives the detection mask of test l
  /// (bit j+1 = group[j]), bit-identical to GroupWorker::run_detect on
  /// that test.  tests.size() <= lanes(); shorter/empty tests simply
  /// stop being observed (ragged batches are fine).
  virtual void detect_batch(std::span<const BatchTestRef> tests,
                            std::span<const FaultClassId> group,
                            bool observe_scan_out,
                            std::span<std::uint64_t> det) = 0;

  /// PPSFP detection-time recording: strided lane-major records — test
  /// l, group member j lands at index l * stride + j of both spans
  /// (stride >= group.size() lets callers aim the engine at a slice of
  /// a per-query flat buffer).  first_po must be initialised to -1 and
  /// state_diff pre-sized to each test's sequence length, exactly as
  /// GroupWorker::run_times expects.
  virtual void times_batch(std::span<const BatchTestRef> tests,
                           std::span<const FaultClassId> group,
                           std::size_t stride,
                           std::span<std::int64_t> first_po,
                           std::span<util::Bitset> state_diff) = 0;

  /// Wide fault-parallel detection: `ngroups` (<= lanes()) consecutive
  /// groups of `list` starting at group index `first_group`, one test
  /// broadcast to every lane.  det[l] receives group first_group + l's
  /// mask.  `scan_in` is masked internally (mirrors run_detect).
  /// keep_going / cancel are polled per frame with the same partial-mask
  /// contract as GroupWorker::run_detect.  Stuck-at models only.
  virtual void detect_groups(const sim::Vector3* scan_in,
                             const sim::Sequence& seq,
                             std::span<const FaultClassId> list,
                             std::size_t first_group, std::size_t ngroups,
                             bool observe_scan_out, bool early_exit,
                             const std::atomic<bool>* keep_going,
                             const util::CancelToken* cancel,
                             std::span<std::uint64_t> det) = 0;
};

/// Builds the engine `cfg` resolves to (sim/simd.hpp): an intrinsic
/// word when that TU was compiled and cfg.isa selects it, else the
/// portable wide word at cfg.bits.  cfg.bits must be > 64.
[[nodiscard]] std::unique_ptr<BatchEngine> make_batch_engine(
    const netlist::Circuit& circuit, const FaultList& faults,
    util::Bitset scan_mask, const sim::SimdConfig& cfg);

}  // namespace scanc::fault
