// Worker-local parallel-fault simulation engine.
//
// A GroupWorker owns everything one pass over a group of <= 63 collapsed
// fault classes mutates — the PackedSeqSim, the InjectionMap, and the
// scan-mask scratch — and borrows only const circuit/fault data.  Any
// number of workers can therefore simulate disjoint fault groups
// concurrently over the same circuit; the execution layer
// (fault/group_exec.hpp) hands each executing thread its own worker.
//
// The per-group primitives map one-to-one onto the FaultSimulator
// queries built on top of them:
//   run_detect      -> detect_no_scan / detect_scan_test / detects_all
//   run_times       -> detection_times
//   run_prefix      -> prefix_detection
//   run_consistency -> consistent_faults
// Each primitive is a pure function of (const inputs, group): it fully
// re-initialises the owned state, so results never depend on what the
// worker ran before.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>

#include "fault/batch_engine.hpp"
#include "fault/fault_list.hpp"
#include "netlist/circuit.hpp"
#include "sim/cone_kernel.hpp"
#include "sim/node_trace.hpp"
#include "sim/seq_sim.hpp"
#include "sim/simd.hpp"
#include "util/bitset.hpp"
#include "util/cancel.hpp"

namespace scanc::fault {

/// Fault slots occupied by a group of size n: bits 1..n (slot 0 is the
/// fault-free reference machine).
[[nodiscard]] constexpr std::uint64_t group_slot_mask(std::size_t n) noexcept {
  return n >= 63 ? ~1ULL : ((1ULL << (n + 1)) - 2);
}

/// Registers `group`'s stuck-line injections into `out` (slot j+1 =
/// group[j]).  Shared by GroupWorker passes and the incremental Session,
/// which caches one map per group.
void build_group_injections(const FaultList& faults,
                            std::span<const FaultClassId> group,
                            sim::InjectionMap& out);

/// Kernel selection for one pass, resolved by the FaultSimulator.
/// With `trace == nullptr` the worker always runs the full kernel.
/// Otherwise it may run the cone-restricted kernel (sim/cone_kernel.hpp)
/// seeded from the shared fault-free trace — always when `force_cone`,
/// else only when the group's union cone is small enough to pay off —
/// unless `allow_cone` is cleared (KernelMode::Full under a frame-gated
/// fault model, where the trace is required for activation gating but
/// the cone kernel must stay off).  Either choice produces bit-identical
/// results.
struct KernelChoice {
  const sim::NodeTrace* trace = nullptr;
  bool force_cone = false;
  bool allow_cone = true;
};

class GroupWorker {
 public:
  /// Borrows `circuit` and `faults`; copies `scan_mask` so the worker
  /// stays valid if the owning simulator moves.
  GroupWorker(const netlist::Circuit& circuit, const FaultList& faults,
              util::Bitset scan_mask);

  /// Simulates one group through the whole test and returns its
  /// detection mask (bit j+1 = group[j] detected; bit 0 unused).
  /// `scan_in == nullptr` runs from the all-X state (no scan).  With
  /// `early_exit`, the pass stops once every group fault is PO-detected.
  /// `keep_going`, when given, is polled every frame: once it reads
  /// false the pass aborts and returns a partial mask (cooperative
  /// cancellation for detects_all under parallel execution).  `cancel`,
  /// when given, is likewise polled every frame; a raised token aborts
  /// the pass with a partial mask — callers that observe
  /// cancel->stop_requested() must treat the result as incomplete.
  std::uint64_t run_detect(const sim::Vector3* scan_in,
                           const sim::Sequence& seq,
                           std::span<const FaultClassId> group,
                           bool observe_scan_out, bool early_exit,
                           const std::atomic<bool>* keep_going = nullptr,
                           const util::CancelToken* cancel = nullptr,
                           const KernelChoice& kernel = {});

  /// Full detection-time recording for one group.  `first_po[j]` (init
  /// to -1 by the caller) receives the earliest PO detection time of
  /// group[j]; `state_diff[j]` (pre-sized to seq.length()) collects the
  /// time units whose scan-out would detect it.  Spans are group-local
  /// (index j, not class id).  A raised `cancel` aborts at the next
  /// frame boundary, leaving partial records.
  void run_times(const sim::Vector3& scan_in, const sim::Sequence& seq,
                 std::span<const FaultClassId> group,
                 std::span<std::int64_t> first_po,
                 std::span<util::Bitset> state_diff,
                 const util::CancelToken* cancel = nullptr,
                 const KernelChoice& kernel = {});

  /// Lighter prefix-coverage pass: records first PO detection times into
  /// `first_po` (group-local, init to -1) and returns the detection mask
  /// of the complete test including the final scan-out.  Exits early
  /// when every group fault is PO-detected.  A raised `cancel` aborts at
  /// the next frame boundary with a partial mask.
  std::uint64_t run_prefix(const sim::Vector3& scan_in,
                           const sim::Sequence& seq,
                           std::span<const FaultClassId> group,
                           std::span<std::int64_t> first_po,
                           const util::CancelToken* cancel = nullptr,
                           const KernelChoice& kernel = {});

  /// Response-comparison pass for diagnosis: returns the mask of group
  /// faults whose predicted response *mismatches* the observation
  /// (binary-vs-binary differences only).  A raised `cancel` aborts at
  /// the next frame boundary; the partial mask under-reports mismatches,
  /// which callers must treat as "conservatively consistent".
  std::uint64_t run_consistency(const sim::Vector3& scan_in,
                                const sim::Sequence& seq,
                                std::span<const sim::Vector3> observed_pos,
                                const sim::Vector3& observed_scan_out,
                                std::span<const FaultClassId> group,
                                const util::CancelToken* cancel = nullptr,
                                const KernelChoice& kernel = {});

  // --- incremental primitives (FaultSimulator::Session) ---------------

  /// Registers the group's stuck-line injections (slot j+1 = group[j]).
  void build_injections(std::span<const FaultClassId> group);

  /// PO / scan-out detection masks for the current simulation state.
  [[nodiscard]] std::uint64_t po_detections() const;
  [[nodiscard]] std::uint64_t state_detections() const;

  /// Copies `scan_in` with unscanned positions forced to X.
  [[nodiscard]] sim::Vector3 masked_state(const sim::Vector3& scan_in) const;

  /// Worker-local wide batch engine for `cfg` (PPSFP and wide
  /// fault-parallel passes), created on first use and rebuilt when the
  /// resolved config changes.  Callers only pass configs with
  /// cfg.lanes() > 1 — single-lane work stays on the scalar passes.
  [[nodiscard]] BatchEngine& batch_engine(const sim::SimdConfig& cfg);

  [[nodiscard]] sim::PackedSeqSim& sim() noexcept { return sim_; }
  [[nodiscard]] sim::InjectionMap& injections() noexcept {
    return injections_;
  }
  [[nodiscard]] const util::Bitset& scan_mask() const noexcept {
    return scan_mask_;
  }

 private:
  /// Resets the engine and loads the (masked) scan-in state, if any.
  void start_test(const sim::Vector3* scan_in,
                  std::span<const FaultClassId> group);

  /// Decides full vs cone kernel for `group` under `kernel`; when the
  /// cone is taken, plan_ holds the group's cone on return.
  [[nodiscard]] bool cone_selected(std::span<const FaultClassId> group,
                                   const KernelChoice& kernel);

  // Cone-kernel counterparts of the public passes (same contracts).
  std::uint64_t run_detect_cone(const sim::NodeTrace& trace,
                                const sim::Sequence& seq,
                                std::span<const FaultClassId> group,
                                bool observe_scan_out, bool early_exit,
                                const std::atomic<bool>* keep_going,
                                const util::CancelToken* cancel);
  void run_times_cone(const sim::NodeTrace& trace, const sim::Sequence& seq,
                      std::span<const FaultClassId> group,
                      std::span<std::int64_t> first_po,
                      std::span<util::Bitset> state_diff,
                      const util::CancelToken* cancel);
  std::uint64_t run_prefix_cone(const sim::NodeTrace& trace,
                                const sim::Sequence& seq,
                                std::span<const FaultClassId> group,
                                std::span<std::int64_t> first_po,
                                const util::CancelToken* cancel);
  std::uint64_t run_consistency_cone(const sim::NodeTrace& trace,
                                     const sim::Sequence& seq,
                                     std::span<const sim::Vector3> observed_pos,
                                     const sim::Vector3& observed_scan_out,
                                     std::span<const FaultClassId> group,
                                     const util::CancelToken* cancel);

  /// PO / scan-out detection masks over the cone only (bit-identical to
  /// the full-kernel masks: out-of-cone observation points are
  /// slot-uniform and can never contribute).
  [[nodiscard]] std::uint64_t po_detections_cone() const;
  [[nodiscard]] std::uint64_t state_detections_cone() const;

  // --- frame-gated (transition-delay) pass counterparts ---------------
  //
  // Under a frame-gated model (FaultModel::frame_gated()) every pass
  // needs the fault-free trace regardless of kernel: a fault is injected
  // only in frames whose fault-free site value launches the delayed
  // transition (previous frame at the stale value, current frame at the
  // opposite value, both binary).  An active frame is simulated
  // one-frame from the fault-free state entering it — effects never
  // persist across frames — and frames with no active fault are skipped
  // whole (activation-aware skipping, Counter::TdfFramesSkipped).
  // Scan-out can only observe a fault whose *final* frame is active.

  /// Caches the group's (node, stale value) sites for activation checks.
  void build_tdf_sites(std::span<const FaultClassId> group);

  /// Slot mask of faults active in frame `t` (launch condition met
  /// across frames t-1 -> t of the fault-free trace).  Requires t >= 1;
  /// frame 0 has no launch frame and is never active.
  [[nodiscard]] std::uint64_t tdf_activation(const sim::NodeTrace& trace,
                                             std::size_t t) const;

  /// Rebuilds injections_ with only the slots in `act` (stuck at the
  /// stale value for one frame).
  void build_tdf_injections(std::uint64_t act);

  std::uint64_t run_detect_tdf(const sim::NodeTrace& trace,
                               const sim::Sequence& seq,
                               std::span<const FaultClassId> group,
                               bool observe_scan_out, bool early_exit,
                               const std::atomic<bool>* keep_going,
                               const util::CancelToken* cancel);
  std::uint64_t run_detect_tdf_cone(const sim::NodeTrace& trace,
                                    const sim::Sequence& seq,
                                    std::span<const FaultClassId> group,
                                    bool observe_scan_out, bool early_exit,
                                    const std::atomic<bool>* keep_going,
                                    const util::CancelToken* cancel);
  void run_times_tdf(const sim::NodeTrace& trace, const sim::Sequence& seq,
                     std::span<std::int64_t> first_po,
                     std::span<util::Bitset> state_diff,
                     const util::CancelToken* cancel);
  void run_times_tdf_cone(const sim::NodeTrace& trace,
                          const sim::Sequence& seq,
                          std::span<std::int64_t> first_po,
                          std::span<util::Bitset> state_diff,
                          const util::CancelToken* cancel);
  std::uint64_t run_prefix_tdf(const sim::NodeTrace& trace,
                               const sim::Sequence& seq,
                               std::span<const FaultClassId> group,
                               std::span<std::int64_t> first_po,
                               const util::CancelToken* cancel);
  std::uint64_t run_prefix_tdf_cone(const sim::NodeTrace& trace,
                                    const sim::Sequence& seq,
                                    std::span<const FaultClassId> group,
                                    std::span<std::int64_t> first_po,
                                    const util::CancelToken* cancel);
  std::uint64_t run_consistency_tdf(const sim::NodeTrace& trace,
                                    const sim::Sequence& seq,
                                    std::span<const sim::Vector3> observed_pos,
                                    const sim::Vector3& observed_scan_out,
                                    std::span<const FaultClassId> group,
                                    const util::CancelToken* cancel);
  std::uint64_t run_consistency_tdf_cone(
      const sim::NodeTrace& trace, const sim::Sequence& seq,
      std::span<const sim::Vector3> observed_pos,
      const sim::Vector3& observed_scan_out,
      std::span<const FaultClassId> group, const util::CancelToken* cancel);

  /// One activation site: a stem plus the stale value the delayed
  /// transition leaves behind.
  struct TdfSite {
    netlist::NodeId node;
    bool stale;
  };

  const netlist::Circuit* circuit_;
  const FaultList* faults_;
  util::Bitset scan_mask_;
  sim::PackedSeqSim sim_;
  sim::InjectionMap injections_;
  sim::ConePlan plan_;
  sim::ConeSim cone_;
  std::vector<sim::ConeSite> sites_;
  std::vector<TdfSite> tdf_sites_;
  std::unique_ptr<BatchEngine> batch_engine_;
  sim::SimdConfig batch_cfg_;
};

}  // namespace scanc::fault
