// Internal: factory entry points of the ISA-specific translation units.
// Each symbol exists only when CMake found the matching compiler flag
// (SCANC_HAVE_AVX2_TU / SCANC_HAVE_AVX512_TU) — batch_engine.cpp guards
// every call site with those macros.
#pragma once

#include <memory>

#include "fault/batch_engine.hpp"

namespace scanc::fault {

std::unique_ptr<BatchEngine> make_batch_engine_avx2(
    const netlist::Circuit& circuit, const FaultList& faults,
    util::Bitset scan_mask);

std::unique_ptr<BatchEngine> make_batch_engine_avx512(
    const netlist::Circuit& circuit, const FaultList& faults,
    util::Bitset scan_mask);

}  // namespace scanc::fault
