#include "fault/fault_sim.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>

namespace scanc::fault {

using netlist::Circuit;
using sim::Sequence;
using sim::Vector3;

FaultSimulator::FaultSimulator(const Circuit& circuit,
                               const FaultList& faults)
    : FaultSimulator(circuit, faults,
                     util::Bitset(circuit.num_flip_flops(), true)) {}

FaultSimulator::FaultSimulator(const Circuit& circuit,
                               const FaultList& faults,
                               util::Bitset scan_mask)
    : circuit_(&circuit),
      faults_(&faults),
      scan_mask_(std::move(scan_mask)),
      exec_(circuit, faults, scan_mask_) {
  assert(scan_mask_.size() == circuit.num_flip_flops());
}

std::vector<FaultClassId> FaultSimulator::collect(
    const FaultSet* targets) const {
  std::vector<FaultClassId> out;
  if (targets == nullptr) {
    out.resize(num_classes());
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = static_cast<FaultClassId>(i);
    }
  } else {
    assert(targets->size() == num_classes());
    out.reserve(targets->count());
    targets->for_each(
        [&](std::size_t i) { out.push_back(static_cast<FaultClassId>(i)); });
  }
  return out;
}

void FaultSimulator::reduce_masks(std::span<const FaultClassId> list,
                                  std::span<const std::uint64_t> group_masks,
                                  FaultSet& out) const {
  for (std::size_t g = 0; g < group_masks.size(); ++g) {
    const std::size_t base = g * kGroupSize;
    const std::size_t n = std::min(kGroupSize, list.size() - base);
    for (std::size_t j = 0; j < n; ++j) {
      if (group_masks[g] & (1ULL << (j + 1))) out.set(list[base + j]);
    }
  }
}

FaultSet FaultSimulator::detect_no_scan(const Sequence& seq,
                                        const FaultSet* targets) {
  const std::vector<FaultClassId> list = collect(targets);
  std::vector<std::uint64_t> det(num_groups(list.size()), 0);
  for_each_group(exec_, list, policy(),
                 [&](GroupWorker& w, std::size_t g,
                     std::span<const FaultClassId> group) {
                   if (cancel_.stop_requested()) return;  // skip group
                   det[g] = w.run_detect(nullptr, seq, group,
                                         /*observe_scan_out=*/false,
                                         /*early_exit=*/true,
                                         /*keep_going=*/nullptr, &cancel_);
                 });
  FaultSet detected(num_classes());
  reduce_masks(list, det, detected);
  return detected;
}

FaultSet FaultSimulator::detect_scan_test(const Vector3& scan_in,
                                          const Sequence& seq,
                                          const FaultSet* targets) {
  const std::vector<FaultClassId> list = collect(targets);
  std::vector<std::uint64_t> det(num_groups(list.size()), 0);
  for_each_group(exec_, list, policy(),
                 [&](GroupWorker& w, std::size_t g,
                     std::span<const FaultClassId> group) {
                   if (cancel_.stop_requested()) return;  // skip group
                   det[g] = w.run_detect(&scan_in, seq, group,
                                         /*observe_scan_out=*/true,
                                         /*early_exit=*/true,
                                         /*keep_going=*/nullptr, &cancel_);
                 });
  FaultSet detected(num_classes());
  reduce_masks(list, det, detected);
  return detected;
}

FaultSimulator::DetectionTimes FaultSimulator::detection_times(
    const Vector3& scan_in, const Sequence& seq, const FaultSet& targets) {
  DetectionTimes times;
  times.targets = collect(&targets);
  times.first_po.assign(times.targets.size(), -1);
  times.state_diff.assign(times.targets.size(), util::Bitset(seq.length()));
  const std::span<std::int64_t> first_po(times.first_po);
  const std::span<util::Bitset> state_diff(times.state_diff);
  for_each_group(exec_, times.targets, policy(),
                 [&](GroupWorker& w, std::size_t g,
                     std::span<const FaultClassId> group) {
                   if (cancel_.stop_requested()) return;  // skip group
                   const std::size_t base = g * kGroupSize;
                   w.run_times(scan_in, seq, group,
                               first_po.subspan(base, group.size()),
                               state_diff.subspan(base, group.size()),
                               &cancel_);
                 });
  return times;
}

FaultSimulator::PrefixDetection FaultSimulator::prefix_detection(
    const Vector3& scan_in, const Sequence& seq, const FaultSet& targets) {
  PrefixDetection out;
  out.targets = collect(&targets);
  out.first_po.assign(out.targets.size(), -1);
  out.detected = util::Bitset(num_classes());
  const std::span<std::int64_t> first_po(out.first_po);
  std::vector<std::uint64_t> det(num_groups(out.targets.size()), 0);
  for_each_group(exec_, out.targets, policy(),
                 [&](GroupWorker& w, std::size_t g,
                     std::span<const FaultClassId> group) {
                   if (cancel_.stop_requested()) return;  // skip group
                   const std::size_t base = g * kGroupSize;
                   det[g] = w.run_prefix(scan_in, seq, group,
                                         first_po.subspan(base,
                                                          group.size()),
                                         &cancel_);
                 });
  reduce_masks(out.targets, det, out.detected);
  return out;
}

bool FaultSimulator::detects_all(const Vector3& scan_in, const Sequence& seq,
                                 const FaultSet& required) {
  const std::vector<FaultClassId> list = collect(&required);
  // Cooperative early exit: the first group that misses a fault flips
  // the flag; pending groups are skipped and in-flight groups abort at
  // their next frame boundary.  The answer never depends on the races —
  // the flag only ever moves true -> false, and it moves iff some group
  // genuinely fails.
  std::atomic<bool> all_ok{true};
  for_each_group(exec_, list, policy(),
                 [&](GroupWorker& w, std::size_t /*g*/,
                     std::span<const FaultClassId> group) {
                   if (!all_ok.load(std::memory_order_relaxed)) return;
                   if (cancel_.stop_requested()) {
                     // Cancelled: give up on the remaining groups and
                     // report false (conservative — see set_cancel).
                     all_ok.store(false, std::memory_order_relaxed);
                     return;
                   }
                   const std::uint64_t det =
                       w.run_detect(&scan_in, seq, group,
                                    /*observe_scan_out=*/true,
                                    /*early_exit=*/true, &all_ok, &cancel_);
                   if (det != group_slot_mask(group.size())) {
                     all_ok.store(false, std::memory_order_relaxed);
                   }
                 });
  return all_ok.load(std::memory_order_relaxed);
}

FaultSet FaultSimulator::consistent_faults(
    const Vector3& scan_in, const Sequence& seq,
    std::span<const sim::Vector3> observed_pos,
    const Vector3& observed_scan_out, const FaultSet& targets) {
  assert(observed_pos.size() == seq.length());
  assert(observed_scan_out.size() == circuit_->num_flip_flops());
  const std::vector<FaultClassId> list = collect(&targets);
  std::vector<std::uint64_t> mismatch(num_groups(list.size()), 0);
  for_each_group(exec_, list, policy(),
                 [&](GroupWorker& w, std::size_t g,
                     std::span<const FaultClassId> group) {
                   mismatch[g] = w.run_consistency(
                       scan_in, seq, observed_pos, observed_scan_out, group);
                 });
  FaultSet consistent(num_classes());
  for (std::size_t g = 0; g < mismatch.size(); ++g) {
    const std::size_t base = g * kGroupSize;
    const std::size_t n = std::min(kGroupSize, list.size() - base);
    for (std::size_t j = 0; j < n; ++j) {
      if (!(mismatch[g] & (1ULL << (j + 1)))) consistent.set(list[base + j]);
    }
  }
  return consistent;
}

FaultSimulator::Session::Session(FaultSimulator& parent,
                                 const FaultSet& targets)
    : parent_(&parent),
      worker_(&parent.exec_.serial_worker()),
      targets_(parent.collect(&targets)),
      detected_(parent.num_classes()) {
  num_groups_ = fault::num_groups(targets_.size());
  const std::size_t nff = parent_->circuit_->num_flip_flops();
  ff_values_.resize(num_groups_ * nff);
  group_remaining_.resize(num_groups_);
  for (std::size_t g = 0; g < num_groups_; ++g) {
    install_group(g);
    worker_->sim().reset(&worker_->injections());
    worker_->sim().get_ff_values(
        std::span<sim::PackedV3>(ff_values_.data() + g * nff, nff));
    group_remaining_[g] = static_cast<std::uint32_t>(
        std::min(kGroupSize, targets_.size() - g * kGroupSize));
  }
}

void FaultSimulator::Session::install_group(std::size_t g) {
  const std::size_t base = g * kGroupSize;
  const std::size_t n = std::min(kGroupSize, targets_.size() - base);
  worker_->build_injections(
      std::span<const FaultClassId>(targets_.data() + base, n));
}

std::size_t FaultSimulator::Session::step(const sim::Vector3& pi) {
  const std::size_t nff = parent_->circuit_->num_flip_flops();
  std::size_t newly = 0;
  for (std::size_t g = 0; g < num_groups_; ++g) {
    if (group_remaining_[g] == 0) continue;  // group fully detected
    install_group(g);
    worker_->sim().set_ff_values(
        std::span<const sim::PackedV3>(ff_values_.data() + g * nff, nff));
    worker_->sim().apply_frame(pi, &worker_->injections());
    std::uint64_t det = worker_->po_detections();
    worker_->sim().latch(&worker_->injections());
    worker_->sim().get_ff_values(
        std::span<sim::PackedV3>(ff_values_.data() + g * nff, nff));
    while (det != 0) {
      const int bit = std::countr_zero(det);
      det &= det - 1;
      const FaultClassId id =
          targets_[g * kGroupSize + static_cast<std::size_t>(bit) - 1];
      if (!detected_.test(id)) {
        detected_.set(id);
        --group_remaining_[g];
        ++newly;
      }
    }
  }
  return newly;
}

std::size_t FaultSimulator::Session::latched_effects() const {
  const std::size_t nff = parent_->circuit_->num_flip_flops();
  std::size_t effects = 0;
  for (std::size_t g = 0; g < num_groups_; ++g) {
    for (std::size_t i = 0; i < nff; ++i) {
      const sim::PackedV3 w = ff_values_[g * nff + i];
      const bool ref0 = (w.is0 & 1) != 0;
      const bool ref1 = (w.is1 & 1) != 0;
      if (ref0 == ref1) continue;
      effects += static_cast<std::size_t>(
          std::popcount(sim::differs_from_reference(w, ref1) & ~1ULL));
    }
  }
  return effects;
}

FaultSimulator::Session::Snapshot FaultSimulator::Session::snapshot() const {
  return Snapshot{ff_values_, detected_, group_remaining_};
}

void FaultSimulator::Session::restore(const Snapshot& snap) {
  ff_values_ = snap.ff_values;
  detected_ = snap.detected;
  group_remaining_ = snap.group_remaining;
}

}  // namespace scanc::fault
