#include "fault/fault_sim.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <iterator>
#include <stdexcept>
#include <string>

#include "fault/batch_engine.hpp"
#include "util/telemetry.hpp"

namespace scanc::fault {

namespace {

/// One per FaultSimulator query: a trace span plus the query counter and
/// latency histogram.
struct QueryScope {
  explicit QueryScope(const char* name) noexcept : span(name, "query") {
    obs::add(obs::Counter::QueriesRun);
  }
  obs::Span span;
  obs::ScopedTimer timer{obs::Counter::kCount, obs::Histogram::QueryNanos};
};

}  // namespace

using netlist::Circuit;
using sim::Sequence;
using sim::Vector3;

FaultSimulator::FaultSimulator(const Circuit& circuit,
                               const FaultList& faults)
    : FaultSimulator(circuit, faults,
                     util::Bitset(circuit.num_flip_flops(), true)) {}

FaultSimulator::FaultSimulator(const Circuit& circuit,
                               const FaultList& faults,
                               util::Bitset scan_mask)
    : circuit_(&circuit),
      faults_(&faults),
      scan_mask_(std::move(scan_mask)),
      exec_(circuit, faults, scan_mask_),
      trace_cache_(circuit) {
  assert(scan_mask_.size() == circuit.num_flip_flops());
  // Cone-locality rank per class: the representative's position in the
  // level-major CSR order (for source nodes, the earliest position among
  // their fanouts).  Sorting targets by this rank clusters faults whose
  // fanout cones overlap into the same simulation group.
  const netlist::CsrSchedule& csr = circuit.csr();
  pack_rank_.resize(faults.num_classes());
  for (FaultClassId id = 0; id < pack_rank_.size(); ++id) {
    const Fault& f = faults.representative(id);
    std::uint32_t r = csr.rank[f.node];
    if (r == netlist::kNoRank) {
      for (const netlist::NodeId out : csr.fanouts(f.node)) {
        r = std::min(r, csr.rank[out]);
      }
    }
    pack_rank_[id] = r;
  }
}

void FaultSimulator::check_scan_in(const Vector3& scan_in) const {
  if (scan_in.size() != circuit_->num_flip_flops()) {
    throw std::invalid_argument(
        "scan_in width " + std::to_string(scan_in.size()) +
        " != flip-flop count " +
        std::to_string(circuit_->num_flip_flops()));
  }
}

std::vector<FaultClassId> FaultSimulator::collect(
    const FaultSet* targets) const {
  std::vector<FaultClassId> out;
  if (targets == nullptr) {
    out.resize(num_classes());
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = static_cast<FaultClassId>(i);
    }
  } else {
    assert(targets->size() == num_classes());
    out.reserve(targets->count());
    targets->for_each(
        [&](std::size_t i) { out.push_back(static_cast<FaultClassId>(i)); });
  }
  // Stable sort on an ascending-id list = total order (rank, class id):
  // every subset of targets is enumerated in the same relative order, as
  // the compaction procedures' record-merging walks require.
  std::stable_sort(out.begin(), out.end(),
                   [this](FaultClassId a, FaultClassId b) {
                     return pack_rank_[a] < pack_rank_[b];
                   });
  return out;
}

void FaultSimulator::reduce_masks(std::span<const FaultClassId> list,
                                  std::span<const std::uint64_t> group_masks,
                                  FaultSet& out, bool complement) const {
  for (std::size_t g = 0; g < group_masks.size(); ++g) {
    const std::size_t base = g * kGroupSize;
    const std::size_t n = std::min(kGroupSize, list.size() - base);
    for (std::size_t j = 0; j < n; ++j) {
      const bool bit = (group_masks[g] & (1ULL << (j + 1))) != 0;
      if (bit != complement) out.set(list[base + j]);
    }
  }
}

std::shared_ptr<const sim::NodeTrace> FaultSimulator::acquire_trace(
    const sim::Vector3* scan_in, const sim::Sequence& seq) {
  // Frame-gated models need the fault-free trace in every mode: it is
  // the activation oracle, not just the cone kernel's seed.
  if (kernel_ == KernelMode::Full && !faults_->model().frame_gated()) {
    return nullptr;
  }
  if (scan_in == nullptr || scan_mask_.all()) {
    return trace_cache_.get(scan_in, seq);
  }
  // Partial scan: the trace must start from the masked state the
  // workers load (unscanned positions unknown).
  sim::Vector3 masked = *scan_in;
  for (std::size_t i = 0; i < masked.size(); ++i) {
    if (!scan_mask_.test(i)) masked[i] = sim::V3::X;
  }
  return trace_cache_.get(&masked, seq);
}

bool FaultSimulator::wide_fp_detect(const Vector3* scan_in,
                                    const Sequence& seq,
                                    std::span<const FaultClassId> list,
                                    bool observe_scan_out,
                                    const std::atomic<bool>* keep_going,
                                    std::span<std::uint64_t> det) {
  const sim::SimdConfig cfg = simd_config();
  const std::size_t ng = det.size();
  if (cfg.lanes() <= 1 || ng < 2 || kernel_ != KernelMode::Full ||
      faults_->model().frame_gated()) {
    return false;
  }
  obs::set_gauge(obs::Gauge::SimdLaneWidth, cfg.bits);
  obs::add(obs::Counter::GroupsExecuted, ng);
  const std::size_t lanes = cfg.lanes();
  const std::size_t nchunks = (ng + lanes - 1) / lanes;
  exec_.for_each_chunk(
      nchunks, policy(), [&](GroupWorker& w, std::size_t c) {
        if (cancel_.stop_requested()) return;  // skip chunk
        if (keep_going != nullptr &&
            !keep_going->load(std::memory_order_relaxed)) {
          return;
        }
        const std::size_t first = c * lanes;
        const std::size_t n = std::min(lanes, ng - first);
        w.batch_engine(cfg).detect_groups(scan_in, seq, list, first, n,
                                          observe_scan_out,
                                          /*early_exit=*/true, keep_going,
                                          &cancel_, det.subspan(first, n));
      });
  return true;
}

FaultSet FaultSimulator::detect_no_scan(const Sequence& seq,
                                        const FaultSet* targets) {
  const QueryScope scope("detect_no_scan");
  const std::vector<FaultClassId> list = collect(targets);
  std::vector<std::uint64_t> det(num_groups(list.size()), 0);
  if (!wide_fp_detect(nullptr, seq, list, /*observe_scan_out=*/false,
                      /*keep_going=*/nullptr, det)) {
    const auto trace = acquire_trace(nullptr, seq);
    const KernelChoice kc = kernel_choice(trace.get());
    for_each_group(exec_, list, policy(),
                   [&](GroupWorker& w, std::size_t g,
                       std::span<const FaultClassId> group) {
                     if (cancel_.stop_requested()) return;  // skip group
                     det[g] = w.run_detect(nullptr, seq, group,
                                           /*observe_scan_out=*/false,
                                           /*early_exit=*/true,
                                           /*keep_going=*/nullptr, &cancel_,
                                           kc);
                   });
  }
  FaultSet detected(num_classes());
  reduce_masks(list, det, detected);
  return detected;
}

FaultSet FaultSimulator::detect_scan_test(const Vector3& scan_in,
                                          const Sequence& seq,
                                          const FaultSet* targets) {
  check_scan_in(scan_in);
  const QueryScope scope("detect_scan_test");
  const std::vector<FaultClassId> list = collect(targets);
  std::vector<std::uint64_t> det(num_groups(list.size()), 0);
  if (!wide_fp_detect(&scan_in, seq, list, /*observe_scan_out=*/true,
                      /*keep_going=*/nullptr, det)) {
    const auto trace = acquire_trace(&scan_in, seq);
    const KernelChoice kc = kernel_choice(trace.get());
    for_each_group(exec_, list, policy(),
                   [&](GroupWorker& w, std::size_t g,
                       std::span<const FaultClassId> group) {
                     if (cancel_.stop_requested()) return;  // skip group
                     det[g] = w.run_detect(&scan_in, seq, group,
                                           /*observe_scan_out=*/true,
                                           /*early_exit=*/true,
                                           /*keep_going=*/nullptr, &cancel_,
                                           kc);
                   });
  }
  FaultSet detected(num_classes());
  reduce_masks(list, det, detected);
  return detected;
}

FaultSimulator::DetectionTimes FaultSimulator::detection_times(
    const Vector3& scan_in, const Sequence& seq, const FaultSet& targets) {
  check_scan_in(scan_in);
  const QueryScope scope("detection_times");
  DetectionTimes times;
  times.targets = collect(&targets);
  times.first_po.assign(times.targets.size(), -1);
  times.state_diff.assign(times.targets.size(), util::Bitset(seq.length()));
  const std::span<std::int64_t> first_po(times.first_po);
  const std::span<util::Bitset> state_diff(times.state_diff);
  const auto trace = acquire_trace(&scan_in, seq);
  const KernelChoice kc = kernel_choice(trace.get());
  for_each_group(exec_, times.targets, policy(),
                 [&](GroupWorker& w, std::size_t g,
                     std::span<const FaultClassId> group) {
                   if (cancel_.stop_requested()) return;  // skip group
                   const std::size_t base = g * kGroupSize;
                   w.run_times(scan_in, seq, group,
                               first_po.subspan(base, group.size()),
                               state_diff.subspan(base, group.size()),
                               &cancel_, kc);
                 });
  return times;
}

FaultSimulator::PrefixDetection FaultSimulator::prefix_detection(
    const Vector3& scan_in, const Sequence& seq, const FaultSet& targets) {
  check_scan_in(scan_in);
  const QueryScope scope("prefix_detection");
  PrefixDetection out;
  out.targets = collect(&targets);
  out.first_po.assign(out.targets.size(), -1);
  out.detected = util::Bitset(num_classes());
  const std::span<std::int64_t> first_po(out.first_po);
  const auto trace = acquire_trace(&scan_in, seq);
  const KernelChoice kc = kernel_choice(trace.get());
  std::vector<std::uint64_t> det(num_groups(out.targets.size()), 0);
  for_each_group(exec_, out.targets, policy(),
                 [&](GroupWorker& w, std::size_t g,
                     std::span<const FaultClassId> group) {
                   if (cancel_.stop_requested()) return;  // skip group
                   const std::size_t base = g * kGroupSize;
                   det[g] = w.run_prefix(scan_in, seq, group,
                                         first_po.subspan(base,
                                                          group.size()),
                                         &cancel_, kc);
                 });
  reduce_masks(out.targets, det, out.detected);
  return out;
}

bool FaultSimulator::detects_all(const Vector3& scan_in, const Sequence& seq,
                                 const FaultSet& required) {
  check_scan_in(scan_in);
  const QueryScope scope("detects_all");
  const std::vector<FaultClassId> list = collect(&required);
  // Cooperative early exit: the first group that misses a fault flips
  // the flag; pending groups are skipped and in-flight groups abort at
  // their next frame boundary.  The answer never depends on the races —
  // the flag only ever moves true -> false, and it moves iff some group
  // genuinely fails.
  std::atomic<bool> all_ok{true};
  const sim::SimdConfig cfg = simd_config();
  const std::size_t ng = num_groups(list.size());
  if (cfg.lanes() > 1 && ng >= 2 && kernel_ == KernelMode::Full &&
      !faults_->model().frame_gated()) {
    // Wide fault-parallel plan: lanes() groups per pass, each chunk
    // checking its lanes' masks so later chunks still exit early.
    obs::set_gauge(obs::Gauge::SimdLaneWidth, cfg.bits);
    obs::add(obs::Counter::GroupsExecuted, ng);
    const std::size_t lanes = cfg.lanes();
    const std::size_t nchunks = (ng + lanes - 1) / lanes;
    std::vector<std::uint64_t> det(ng, 0);
    exec_.for_each_chunk(
        nchunks, policy(), [&](GroupWorker& w, std::size_t c) {
          if (!all_ok.load(std::memory_order_relaxed)) return;
          if (cancel_.stop_requested()) {
            all_ok.store(false, std::memory_order_relaxed);
            return;
          }
          const std::size_t first = c * lanes;
          const std::size_t n = std::min(lanes, ng - first);
          w.batch_engine(cfg).detect_groups(
              &scan_in, seq, list, first, n,
              /*observe_scan_out=*/true, /*early_exit=*/true, &all_ok,
              &cancel_, std::span<std::uint64_t>(det).subspan(first, n));
          for (std::size_t l = 0; l < n; ++l) {
            const std::size_t base = (first + l) * kGroupSize;
            const std::size_t gn = std::min(kGroupSize, list.size() - base);
            if (det[first + l] != group_slot_mask(gn)) {
              all_ok.store(false, std::memory_order_relaxed);
            }
          }
        });
    return all_ok.load(std::memory_order_relaxed);
  }
  const auto trace = acquire_trace(&scan_in, seq);
  const KernelChoice kc = kernel_choice(trace.get());
  for_each_group(exec_, list, policy(),
                 [&](GroupWorker& w, std::size_t /*g*/,
                     std::span<const FaultClassId> group) {
                   if (!all_ok.load(std::memory_order_relaxed)) return;
                   if (cancel_.stop_requested()) {
                     // Cancelled: give up on the remaining groups and
                     // report false (conservative — see set_cancel).
                     all_ok.store(false, std::memory_order_relaxed);
                     return;
                   }
                   const std::uint64_t det =
                       w.run_detect(&scan_in, seq, group,
                                    /*observe_scan_out=*/true,
                                    /*early_exit=*/true, &all_ok, &cancel_,
                                    kc);
                   if (det != group_slot_mask(group.size())) {
                     all_ok.store(false, std::memory_order_relaxed);
                   }
                 });
  return all_ok.load(std::memory_order_relaxed);
}

FaultSet FaultSimulator::consistent_faults(
    const Vector3& scan_in, const Sequence& seq,
    std::span<const sim::Vector3> observed_pos,
    const Vector3& observed_scan_out, const FaultSet& targets) {
  check_scan_in(scan_in);
  assert(observed_pos.size() == seq.length());
  assert(observed_scan_out.size() == circuit_->num_flip_flops());
  const QueryScope scope("consistent_faults");
  const std::vector<FaultClassId> list = collect(&targets);
  const auto trace = acquire_trace(&scan_in, seq);
  const KernelChoice kc = kernel_choice(trace.get());
  std::vector<std::uint64_t> mismatch(num_groups(list.size()), 0);
  for_each_group(exec_, list, policy(),
                 [&](GroupWorker& w, std::size_t g,
                     std::span<const FaultClassId> group) {
                   // Skipped groups keep mismatch == 0: their faults
                   // remain (conservatively) consistent.
                   if (cancel_.stop_requested()) return;
                   mismatch[g] = w.run_consistency(scan_in, seq,
                                                   observed_pos,
                                                   observed_scan_out, group,
                                                   &cancel_, kc);
                 });
  FaultSet consistent(num_classes());
  reduce_masks(list, mismatch, consistent, /*complement=*/true);
  return consistent;
}

std::vector<std::shared_ptr<const sim::NodeTrace>>
FaultSimulator::acquire_traces(std::span<const BatchTest> tests) {
  if (!faults_->model().frame_gated()) return {};
  std::vector<sim::TraceCache::Request> reqs(tests.size());
  // Masked scan-in copies (partial scan) must outlive get_batch; the
  // reserve keeps their addresses stable.
  std::vector<sim::Vector3> masked;
  const bool full_scan = scan_mask_.all();
  if (!full_scan) masked.reserve(tests.size());
  for (std::size_t i = 0; i < tests.size(); ++i) {
    reqs[i].seq = tests[i].seq;
    if (tests[i].scan_in == nullptr) continue;
    if (full_scan) {
      reqs[i].scan_in = tests[i].scan_in;
      continue;
    }
    sim::Vector3 m = *tests[i].scan_in;
    for (std::size_t k = 0; k < m.size(); ++k) {
      if (!scan_mask_.test(k)) m[k] = sim::V3::X;
    }
    masked.push_back(std::move(m));
    reqs[i].scan_in = &masked.back();
  }
  return trace_cache_.get_batch(reqs);
}

std::vector<FaultSet> FaultSimulator::detect_batch(
    std::span<const BatchTest> tests, const FaultSet* targets) {
  const std::size_t num_tests = tests.size();
  std::vector<FaultSet> out;
  out.reserve(num_tests);
  if (num_tests == 0) return out;
  const bool with_scan = tests.front().scan_in != nullptr;
  for (const BatchTest& t : tests) {
    assert(t.seq != nullptr);
    if ((t.scan_in != nullptr) != with_scan) {
      throw std::invalid_argument(
          "detect_batch: batch mixes scan and no-scan tests");
    }
    if (with_scan) check_scan_in(*t.scan_in);
  }
  const sim::SimdConfig cfg = simd_config();
  if (!use_batch(num_tests, cfg)) {
    for (const BatchTest& t : tests) {
      out.push_back(with_scan ? detect_scan_test(*t.scan_in, *t.seq, targets)
                              : detect_no_scan(*t.seq, targets));
    }
    return out;
  }
  const QueryScope scope("detect_batch");
  obs::set_gauge(obs::Gauge::SimdLaneWidth, cfg.bits);
  obs::set_gauge(obs::Gauge::PpsfpTestsPerPass, cfg.lanes());
  const std::vector<FaultClassId> list = collect(targets);
  const auto traces = acquire_traces(tests);
  std::vector<BatchTestRef> refs(num_tests);
  for (std::size_t i = 0; i < num_tests; ++i) {
    refs[i] = BatchTestRef{tests[i].scan_in, tests[i].seq,
                           traces.empty() ? nullptr : traces[i].get()};
  }
  const std::size_t ng = num_groups(list.size());
  const std::size_t lanes = cfg.lanes();
  // det[g * num_tests + i] = group g's mask under test i.
  std::vector<std::uint64_t> det(ng * num_tests, 0);
  for_each_group(
      exec_, list, policy(),
      [&](GroupWorker& w, std::size_t g,
          std::span<const FaultClassId> group) {
        BatchEngine& eng = w.batch_engine(cfg);
        for (std::size_t c = 0; c < num_tests; c += lanes) {
          if (cancel_.stop_requested()) return;  // skip rest of group
          const std::size_t n = std::min(lanes, num_tests - c);
          eng.detect_batch(
              std::span<const BatchTestRef>(refs).subspan(c, n), group,
              /*observe_scan_out=*/with_scan,
              std::span<std::uint64_t>(det).subspan(g * num_tests + c, n));
        }
      });
  std::vector<std::uint64_t> gm(ng);
  for (std::size_t i = 0; i < num_tests; ++i) {
    for (std::size_t g = 0; g < ng; ++g) gm[g] = det[g * num_tests + i];
    FaultSet s(num_classes());
    reduce_masks(list, gm, s);
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<FaultSimulator::DetectionTimes> FaultSimulator::times_batch(
    std::span<const BatchTest> tests, const FaultSet& targets) {
  const std::size_t num_tests = tests.size();
  std::vector<DetectionTimes> out;
  out.reserve(num_tests);
  if (num_tests == 0) return out;
  for (const BatchTest& t : tests) {
    assert(t.seq != nullptr);
    if (t.scan_in == nullptr) {
      throw std::invalid_argument("times_batch: every test needs scan-in");
    }
    check_scan_in(*t.scan_in);
  }
  const sim::SimdConfig cfg = simd_config();
  if (!use_batch(num_tests, cfg)) {
    for (const BatchTest& t : tests) {
      out.push_back(detection_times(*t.scan_in, *t.seq, targets));
    }
    return out;
  }
  const QueryScope scope("times_batch");
  obs::set_gauge(obs::Gauge::SimdLaneWidth, cfg.bits);
  obs::set_gauge(obs::Gauge::PpsfpTestsPerPass, cfg.lanes());
  const std::vector<FaultClassId> list = collect(&targets);
  const auto traces = acquire_traces(tests);
  std::vector<BatchTestRef> refs(num_tests);
  for (std::size_t i = 0; i < num_tests; ++i) {
    refs[i] = BatchTestRef{tests[i].scan_in, tests[i].seq,
                           traces.empty() ? nullptr : traces[i].get()};
  }
  const std::size_t nt = list.size();
  const std::size_t lanes = cfg.lanes();
  // Flat test-major records: test i, target j at index i * nt + j.  The
  // engine's stride parameter lets each (group, chunk) call write its
  // slice of this buffer directly.
  std::vector<std::int64_t> flat_po(num_tests * nt, -1);
  std::vector<util::Bitset> flat_sd(num_tests * nt);
  for (std::size_t i = 0; i < num_tests; ++i) {
    for (std::size_t j = 0; j < nt; ++j) {
      flat_sd[i * nt + j] = util::Bitset(tests[i].seq->length());
    }
  }
  for_each_group(
      exec_, list, policy(),
      [&](GroupWorker& w, std::size_t g,
          std::span<const FaultClassId> group) {
        BatchEngine& eng = w.batch_engine(cfg);
        const std::size_t base = g * kGroupSize;
        for (std::size_t c = 0; c < num_tests; c += lanes) {
          if (cancel_.stop_requested()) return;  // skip rest of group
          const std::size_t n = std::min(lanes, num_tests - c);
          const std::size_t off = c * nt + base;
          const std::size_t len = (n - 1) * nt + group.size();
          eng.times_batch(std::span<const BatchTestRef>(refs).subspan(c, n),
                          group, /*stride=*/nt,
                          std::span<std::int64_t>(flat_po).subspan(off, len),
                          std::span<util::Bitset>(flat_sd).subspan(off, len));
        }
      });
  for (std::size_t i = 0; i < num_tests; ++i) {
    DetectionTimes dt;
    dt.targets = list;
    const auto b = static_cast<std::ptrdiff_t>(i * nt);
    const auto e = static_cast<std::ptrdiff_t>((i + 1) * nt);
    dt.first_po.assign(flat_po.begin() + b, flat_po.begin() + e);
    dt.state_diff.assign(std::make_move_iterator(flat_sd.begin() + b),
                         std::make_move_iterator(flat_sd.begin() + e));
    out.push_back(std::move(dt));
  }
  return out;
}

FaultSimulator::Session::Session(FaultSimulator& parent,
                                 const FaultSet& targets)
    : parent_(&parent),
      worker_(&parent.exec_.serial_worker()),
      targets_(parent.collect(&targets)),
      detected_(parent.num_classes()) {
  num_groups_ = fault::num_groups(targets_.size());
  const std::size_t nff = parent_->circuit_->num_flip_flops();
  group_remaining_.resize(num_groups_);
  tdf_ = parent_->faults_->model().frame_gated();
  if (tdf_) {
    // Frame-gated: effects never persist, so only the fault-free machine
    // state is tracked.  prev_site_ starts at X — the first step has no
    // launch frame and activates nothing.
    free_state_.assign(nff, sim::V3::X);
    prev_site_.assign(targets_.size(), sim::V3::X);
    for (std::size_t g = 0; g < num_groups_; ++g) {
      const std::size_t base = g * kGroupSize;
      group_remaining_[g] = static_cast<std::uint32_t>(
          std::min(kGroupSize, targets_.size() - base));
    }
    return;
  }
  ff_values_.resize(num_groups_ * nff);
  // Build each group's injection map once; step() reuses them every
  // frame instead of re-registering the group's faults per frame.
  group_injections_.reserve(num_groups_);
  for (std::size_t g = 0; g < num_groups_; ++g) {
    const std::size_t base = g * kGroupSize;
    const std::size_t n = std::min(kGroupSize, targets_.size() - base);
    group_injections_.emplace_back(parent_->circuit_->num_nodes());
    build_group_injections(
        *parent_->faults_,
        std::span<const FaultClassId>(targets_.data() + base, n),
        group_injections_.back());
    worker_->sim().reset(&group_injections_[g]);
    worker_->sim().get_ff_values(
        std::span<sim::PackedV3>(ff_values_.data() + g * nff, nff));
    group_remaining_[g] = static_cast<std::uint32_t>(n);
  }
}

std::size_t FaultSimulator::Session::step(const sim::Vector3& pi) {
  if (tdf_) return step_tdf(pi);
  const std::size_t nff = parent_->circuit_->num_flip_flops();
  std::size_t newly = 0;
  for (std::size_t g = 0; g < num_groups_; ++g) {
    if (group_remaining_[g] == 0) continue;  // group fully detected
    worker_->sim().set_ff_values(
        std::span<const sim::PackedV3>(ff_values_.data() + g * nff, nff));
    worker_->sim().apply_frame(pi, &group_injections_[g]);
    std::uint64_t det = worker_->po_detections();
    worker_->sim().latch(&group_injections_[g]);
    worker_->sim().get_ff_values(
        std::span<sim::PackedV3>(ff_values_.data() + g * nff, nff));
    while (det != 0) {
      const int bit = std::countr_zero(det);
      det &= det - 1;
      const FaultClassId id =
          targets_[g * kGroupSize + static_cast<std::size_t>(bit) - 1];
      if (!detected_.test(id)) {
        detected_.set(id);
        --group_remaining_[g];
        ++newly;
      }
    }
  }
  return newly;
}

std::size_t FaultSimulator::Session::step_tdf(const sim::Vector3& pi) {
  const std::size_t nff = parent_->circuit_->num_flip_flops();
  sim::PackedSeqSim& sim = worker_->sim();
  const FaultList& faults = *parent_->faults_;

  // Fault-free frame: evaluate once, sample every target's stem value.
  sim.reset(nullptr);
  sim.load_state(free_state_, nullptr);
  sim.apply_frame(pi, nullptr);
  std::vector<sim::V3> cur_site(targets_.size());
  for (std::size_t k = 0; k < targets_.size(); ++k) {
    const Fault& f = faults.representative(targets_[k]);
    cur_site[k] = sim::slot(sim.value(f.node), 0);
  }
  sim.latch(nullptr);
  sim::Vector3 free_next(nff, sim::V3::X);
  for (std::size_t i = 0; i < nff; ++i) {
    free_next[i] = sim::slot(sim.captured(i), 0);
  }

  // Launch every active fault one-frame from the free state; effects do
  // not persist, so the latched-effect fitness signal is recomputed per
  // step from this frame's captures alone.
  std::size_t newly = 0;
  tdf_latched_ = 0;
  for (std::size_t g = 0; g < num_groups_; ++g) {
    const std::size_t base = g * kGroupSize;
    const std::size_t n = std::min(kGroupSize, targets_.size() - base);
    std::uint64_t act = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const Fault& f = faults.representative(targets_[base + j]);
      const sim::V3 stale = f.value ? sim::V3::One : sim::V3::Zero;
      const sim::V3 fresh = f.value ? sim::V3::Zero : sim::V3::One;
      if (prev_site_[base + j] == stale && cur_site[base + j] == fresh) {
        act |= 1ULL << (j + 1);
      }
    }
    if (act == 0 || group_remaining_[g] == 0) continue;
    obs::add(obs::Counter::TdfActivations,
             static_cast<std::uint64_t>(std::popcount(act)));
    sim::InjectionMap& inj = worker_->injections();
    inj.clear();
    std::uint64_t bits = act;
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      bits &= bits - 1;
      const Fault& f =
          faults.representative(targets_[base + static_cast<std::size_t>(bit) - 1]);
      inj.add(f.node, sim::kStemPin, f.value, 1ULL << bit);
    }
    sim.reset(&inj);
    sim.load_state(free_state_, &inj);
    sim.apply_frame(pi, &inj);
    std::uint64_t det = worker_->po_detections();
    sim.latch(&inj);
    for (std::size_t i = 0; i < nff; ++i) {
      const sim::PackedV3 w = sim.captured(i);
      const bool ref0 = (w.is0 & 1) != 0;
      const bool ref1 = (w.is1 & 1) != 0;
      if (ref0 == ref1) continue;
      tdf_latched_ += static_cast<std::size_t>(
          std::popcount(sim::differs_from_reference(w, ref1) & ~1ULL));
    }
    while (det != 0) {
      const int bit = std::countr_zero(det);
      det &= det - 1;
      const FaultClassId id = targets_[base + static_cast<std::size_t>(bit) - 1];
      if (!detected_.test(id)) {
        detected_.set(id);
        --group_remaining_[g];
        ++newly;
      }
    }
  }
  free_state_.swap(free_next);
  prev_site_.swap(cur_site);
  return newly;
}

std::size_t FaultSimulator::Session::latched_effects() const {
  if (tdf_) return tdf_latched_;
  const std::size_t nff = parent_->circuit_->num_flip_flops();
  std::size_t effects = 0;
  for (std::size_t g = 0; g < num_groups_; ++g) {
    for (std::size_t i = 0; i < nff; ++i) {
      const sim::PackedV3 w = ff_values_[g * nff + i];
      const bool ref0 = (w.is0 & 1) != 0;
      const bool ref1 = (w.is1 & 1) != 0;
      if (ref0 == ref1) continue;
      effects += static_cast<std::size_t>(
          std::popcount(sim::differs_from_reference(w, ref1) & ~1ULL));
    }
  }
  return effects;
}

FaultSimulator::Session::Snapshot FaultSimulator::Session::snapshot() const {
  return Snapshot{ff_values_,   detected_,  group_remaining_,
                  free_state_,  prev_site_, tdf_latched_};
}

void FaultSimulator::Session::restore(const Snapshot& snap) {
  ff_values_ = snap.ff_values;
  detected_ = snap.detected;
  group_remaining_ = snap.group_remaining;
  free_state_ = snap.free_state;
  prev_site_ = snap.prev_site;
  tdf_latched_ = snap.tdf_latched;
}

}  // namespace scanc::fault
