#include "fault/fault_sim.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace scanc::fault {

using netlist::Circuit;
using netlist::NodeId;
using sim::PackedV3;
using sim::Sequence;
using sim::Vector3;

namespace {

/// Fault slots occupied by a group of size n: bits 1..n.
std::uint64_t group_mask(std::size_t n) {
  return n >= 63 ? ~1ULL : ((1ULL << (n + 1)) - 2);
}

}  // namespace

FaultSimulator::FaultSimulator(const Circuit& circuit,
                               const FaultList& faults)
    : FaultSimulator(circuit, faults,
                     util::Bitset(circuit.num_flip_flops(), true)) {}

FaultSimulator::FaultSimulator(const Circuit& circuit,
                               const FaultList& faults,
                               util::Bitset scan_mask)
    : circuit_(&circuit),
      faults_(&faults),
      sim_(circuit),
      injections_(circuit.num_nodes()),
      scan_mask_(std::move(scan_mask)) {
  assert(scan_mask_.size() == circuit.num_flip_flops());
}

Vector3 FaultSimulator::masked_state(const Vector3& scan_in) const {
  if (scan_mask_.all()) return scan_in;
  Vector3 masked = scan_in;
  for (std::size_t i = 0; i < masked.size(); ++i) {
    if (!scan_mask_.test(i)) masked[i] = sim::V3::X;
  }
  return masked;
}

std::vector<FaultClassId> FaultSimulator::collect(
    const FaultSet* targets) const {
  std::vector<FaultClassId> out;
  if (targets == nullptr) {
    out.resize(num_classes());
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = static_cast<FaultClassId>(i);
    }
  } else {
    assert(targets->size() == num_classes());
    out.reserve(targets->count());
    targets->for_each(
        [&](std::size_t i) { out.push_back(static_cast<FaultClassId>(i)); });
  }
  return out;
}

void FaultSimulator::build_injections(std::span<const FaultClassId> group) {
  injections_.clear();
  for (std::size_t j = 0; j < group.size(); ++j) {
    const Fault& f = faults_->representative(group[j]);
    injections_.add(f.node, f.pin, f.stuck_one, 1ULL << (j + 1));
  }
}

std::uint64_t FaultSimulator::po_detections() const {
  std::uint64_t det = 0;
  for (const NodeId po : circuit_->primary_outputs()) {
    const PackedV3 w = sim_.value(po);
    const bool ref0 = (w.is0 & 1) != 0;
    const bool ref1 = (w.is1 & 1) != 0;
    if (ref0 == ref1) continue;  // fault-free X: no detection here
    det |= sim::differs_from_reference(w, ref1);
  }
  return det & ~1ULL;
}

std::uint64_t FaultSimulator::state_detections() const {
  std::uint64_t det = 0;
  for (std::size_t i = 0; i < circuit_->num_flip_flops(); ++i) {
    if (!scan_mask_.test(i)) continue;  // not on the scan chain
    // Scan-out observes the captured latch contents (PPO convention).
    const PackedV3 w = sim_.captured(i);
    const bool ref0 = (w.is0 & 1) != 0;
    const bool ref1 = (w.is1 & 1) != 0;
    if (ref0 == ref1) continue;
    det |= sim::differs_from_reference(w, ref1);
  }
  return det & ~1ULL;
}

std::uint64_t FaultSimulator::run_group(const Vector3* scan_in,
                                        const Sequence& seq,
                                        std::span<const FaultClassId> group,
                                        bool observe_scan_out,
                                        bool early_exit, DetectionTimes* times,
                                        std::size_t target_base) {
  build_injections(group);
  sim_.reset(&injections_);
  if (scan_in != nullptr) {
    sim_.load_state(masked_state(*scan_in), &injections_);
  }

  const std::uint64_t full = group_mask(group.size());
  std::uint64_t det = 0;
  for (std::size_t t = 0; t < seq.length(); ++t) {
    sim_.apply_frame(seq.frames[t], &injections_);
    const std::uint64_t po_det = po_detections();
    if (times != nullptr) {
      std::uint64_t fresh = po_det & ~det;
      while (fresh != 0) {
        const int bit = std::countr_zero(fresh);
        fresh &= fresh - 1;
        times->first_po[target_base + static_cast<std::size_t>(bit) - 1] =
            static_cast<std::int64_t>(t);
      }
    }
    det |= po_det;
    sim_.latch(&injections_);
    if (times != nullptr) {
      // Scan-out after time unit t would observe the just-latched state.
      const std::uint64_t sd = state_detections();
      std::uint64_t bits = sd;
      while (bits != 0) {
        const int bit = std::countr_zero(bits);
        bits &= bits - 1;
        times->state_diff[target_base + static_cast<std::size_t>(bit) - 1]
            .set(t);
      }
    } else if (early_exit && det == full &&
               t + 1 < seq.length()) {
      return det;
    }
  }
  if (observe_scan_out) det |= state_detections();
  return det;
}

FaultSet FaultSimulator::detect_no_scan(const Sequence& seq,
                                        const FaultSet* targets) {
  const std::vector<FaultClassId> list = collect(targets);
  FaultSet detected(num_classes());
  for (std::size_t base = 0; base < list.size(); base += 63) {
    const std::size_t n = std::min<std::size_t>(63, list.size() - base);
    const std::span<const FaultClassId> group(list.data() + base, n);
    const std::uint64_t det = run_group(nullptr, seq, group,
                                        /*observe_scan_out=*/false,
                                        /*early_exit=*/true, nullptr, 0);
    for (std::size_t j = 0; j < n; ++j) {
      if (det & (1ULL << (j + 1))) detected.set(group[j]);
    }
  }
  return detected;
}

FaultSet FaultSimulator::detect_scan_test(const Vector3& scan_in,
                                          const Sequence& seq,
                                          const FaultSet* targets) {
  const std::vector<FaultClassId> list = collect(targets);
  FaultSet detected(num_classes());
  for (std::size_t base = 0; base < list.size(); base += 63) {
    const std::size_t n = std::min<std::size_t>(63, list.size() - base);
    const std::span<const FaultClassId> group(list.data() + base, n);
    const std::uint64_t det = run_group(&scan_in, seq, group,
                                        /*observe_scan_out=*/true,
                                        /*early_exit=*/true, nullptr, 0);
    for (std::size_t j = 0; j < n; ++j) {
      if (det & (1ULL << (j + 1))) detected.set(group[j]);
    }
  }
  return detected;
}

FaultSimulator::DetectionTimes FaultSimulator::detection_times(
    const Vector3& scan_in, const Sequence& seq, const FaultSet& targets) {
  DetectionTimes times;
  times.targets = collect(&targets);
  times.first_po.assign(times.targets.size(), -1);
  times.state_diff.assign(times.targets.size(),
                          util::Bitset(seq.length()));
  for (std::size_t base = 0; base < times.targets.size(); base += 63) {
    const std::size_t n = std::min<std::size_t>(63, times.targets.size() - base);
    const std::span<const FaultClassId> group(times.targets.data() + base, n);
    run_group(&scan_in, seq, group, /*observe_scan_out=*/true,
              /*early_exit=*/false, &times, base);
  }
  return times;
}

FaultSimulator::PrefixDetection FaultSimulator::prefix_detection(
    const Vector3& scan_in, const Sequence& seq, const FaultSet& targets) {
  PrefixDetection out;
  out.targets = collect(&targets);
  out.first_po.assign(out.targets.size(), -1);
  out.detected = util::Bitset(num_classes());
  for (std::size_t base = 0; base < out.targets.size(); base += 63) {
    const std::size_t n = std::min<std::size_t>(63, out.targets.size() - base);
    const std::span<const FaultClassId> group(out.targets.data() + base, n);
    build_injections(group);
    sim_.reset(&injections_);
    sim_.load_state(masked_state(scan_in), &injections_);

    const std::uint64_t full = group_mask(n);
    std::uint64_t det = 0;
    for (std::size_t t = 0; t < seq.length(); ++t) {
      sim_.apply_frame(seq.frames[t], &injections_);
      std::uint64_t fresh = po_detections() & ~det;
      det |= fresh;
      while (fresh != 0) {
        const int bit = std::countr_zero(fresh);
        fresh &= fresh - 1;
        out.first_po[base + static_cast<std::size_t>(bit) - 1] =
            static_cast<std::int64_t>(t);
      }
      if (det == full) break;  // everything PO-detected: skip the rest
      sim_.latch(&injections_);
    }
    if (det != full) det |= state_detections();  // final scan-out
    for (std::size_t j = 0; j < n; ++j) {
      if (det & (1ULL << (j + 1))) out.detected.set(group[j]);
    }
  }
  return out;
}

FaultSet FaultSimulator::consistent_faults(
    const Vector3& scan_in, const Sequence& seq,
    std::span<const sim::Vector3> observed_pos,
    const Vector3& observed_scan_out, const FaultSet& targets) {
  assert(observed_pos.size() == seq.length());
  assert(observed_scan_out.size() == circuit_->num_flip_flops());
  const std::vector<FaultClassId> list = collect(&targets);
  FaultSet consistent(num_classes());

  // Mismatch bits for one observation point: predicted binary, observed
  // binary, values differ.
  const auto mismatches = [](const PackedV3 w, sim::V3 obs) -> std::uint64_t {
    if (!sim::is_binary(obs)) return 0;
    return sim::differs_from_reference(w, obs == sim::V3::One);
  };

  for (std::size_t base = 0; base < list.size(); base += 63) {
    const std::size_t n = std::min<std::size_t>(63, list.size() - base);
    const std::span<const FaultClassId> group(list.data() + base, n);
    build_injections(group);
    sim_.reset(&injections_);
    sim_.load_state(masked_state(scan_in), &injections_);

    std::uint64_t mismatch = 0;
    for (std::size_t t = 0; t < seq.length(); ++t) {
      sim_.apply_frame(seq.frames[t], &injections_);
      const auto pos = circuit_->primary_outputs();
      for (std::size_t i = 0; i < pos.size(); ++i) {
        mismatch |= mismatches(sim_.value(pos[i]), observed_pos[t][i]);
      }
      sim_.latch(&injections_);
      if ((mismatch & group_mask(n)) == group_mask(n)) break;
    }
    for (std::size_t i = 0; i < circuit_->num_flip_flops(); ++i) {
      if (!scan_mask_.test(i)) continue;
      mismatch |= mismatches(sim_.captured(i), observed_scan_out[i]);
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (!(mismatch & (1ULL << (j + 1)))) consistent.set(group[j]);
    }
  }
  return consistent;
}

FaultSimulator::Session::Session(FaultSimulator& parent,
                                 const FaultSet& targets)
    : parent_(&parent),
      targets_(parent.collect(&targets)),
      detected_(parent.num_classes()) {
  num_groups_ = (targets_.size() + 62) / 63;
  const std::size_t nff = parent_->circuit_->num_flip_flops();
  ff_values_.resize(num_groups_ * nff);
  group_remaining_.resize(num_groups_);
  for (std::size_t g = 0; g < num_groups_; ++g) {
    install_group(g);
    parent_->sim_.reset(&parent_->injections_);
    parent_->sim_.get_ff_values(
        std::span<sim::PackedV3>(ff_values_.data() + g * nff, nff));
    group_remaining_[g] = static_cast<std::uint32_t>(
        std::min<std::size_t>(63, targets_.size() - g * 63));
  }
}

void FaultSimulator::Session::install_group(std::size_t g) {
  const std::size_t base = g * 63;
  const std::size_t n = std::min<std::size_t>(63, targets_.size() - base);
  parent_->build_injections(
      std::span<const FaultClassId>(targets_.data() + base, n));
}

std::size_t FaultSimulator::Session::step(const sim::Vector3& pi) {
  const std::size_t nff = parent_->circuit_->num_flip_flops();
  std::size_t newly = 0;
  for (std::size_t g = 0; g < num_groups_; ++g) {
    if (group_remaining_[g] == 0) continue;  // group fully detected
    install_group(g);
    parent_->sim_.set_ff_values(
        std::span<const sim::PackedV3>(ff_values_.data() + g * nff, nff));
    parent_->sim_.apply_frame(pi, &parent_->injections_);
    std::uint64_t det = parent_->po_detections();
    parent_->sim_.latch(&parent_->injections_);
    parent_->sim_.get_ff_values(
        std::span<sim::PackedV3>(ff_values_.data() + g * nff, nff));
    while (det != 0) {
      const int bit = std::countr_zero(det);
      det &= det - 1;
      const FaultClassId id =
          targets_[g * 63 + static_cast<std::size_t>(bit) - 1];
      if (!detected_.test(id)) {
        detected_.set(id);
        --group_remaining_[g];
        ++newly;
      }
    }
  }
  return newly;
}

std::size_t FaultSimulator::Session::latched_effects() const {
  const std::size_t nff = parent_->circuit_->num_flip_flops();
  std::size_t effects = 0;
  for (std::size_t g = 0; g < num_groups_; ++g) {
    for (std::size_t i = 0; i < nff; ++i) {
      const sim::PackedV3 w = ff_values_[g * nff + i];
      const bool ref0 = (w.is0 & 1) != 0;
      const bool ref1 = (w.is1 & 1) != 0;
      if (ref0 == ref1) continue;
      effects += static_cast<std::size_t>(
          std::popcount(sim::differs_from_reference(w, ref1) & ~1ULL));
    }
  }
  return effects;
}

FaultSimulator::Session::Snapshot FaultSimulator::Session::snapshot() const {
  return Snapshot{ff_values_, detected_, group_remaining_};
}

void FaultSimulator::Session::restore(const Snapshot& snap) {
  ff_values_ = snap.ff_values;
  detected_ = snap.detected;
  group_remaining_ = snap.group_remaining;
}

bool FaultSimulator::detects_all(const Vector3& scan_in, const Sequence& seq,
                                 const FaultSet& required) {
  const std::vector<FaultClassId> list = collect(&required);
  for (std::size_t base = 0; base < list.size(); base += 63) {
    const std::size_t n = std::min<std::size_t>(63, list.size() - base);
    const std::span<const FaultClassId> group(list.data() + base, n);
    const std::uint64_t det = run_group(&scan_in, seq, group,
                                        /*observe_scan_out=*/true,
                                        /*early_exit=*/true, nullptr, 0);
    if (det != group_mask(n)) return false;
  }
  return true;
}

}  // namespace scanc::fault
