#include "tcomp/iterate.hpp"

#include <algorithm>

#include "util/event_bus.hpp"
#include "util/telemetry.hpp"

namespace scanc::tcomp {

using fault::FaultSet;
using fault::FaultSimulator;
using sim::Sequence;

IterateResult iterate_phases(FaultSimulator& fsim, const Sequence& t0,
                             std::span<const atpg::CombTest> comb,
                             const IterateOptions& options) {
  IterateResult result;
  std::vector<char> selected(comb.size(), 0);

  const auto trace = [&](const char* what) {
    if (options.trace) options.trace(what);
  };

  Sequence current = t0;
  bool have_result = false;
  const std::size_t limit =
      options.max_iterations == 0
          ? comb.size()
          : std::min(options.max_iterations, comb.size());
  for (std::size_t iter = 0; iter < limit; ++iter) {
    if (options.cancel.stop_requested()) {
      result.stopped = true;
      break;
    }
    const obs::Span round_span("iterate round", "phase");
    trace("phase 1 (scan-in / scan-out selection)");
    Phase1Result p1;
    {
      const obs::Span span("phase1", "phase");
      p1 = run_phase1(fsim, current, comb, selected, options.phase1);
    }
    if (iter == 0) result.f0 = p1.f0;

    ScanTest tau = p1.test;
    FaultSet detected = p1.f_so;
    std::size_t omitted = 0;
    if (options.apply_omission && !options.cancel.stop_requested()) {
      trace("phase 2 (vector omission)");
      const obs::Span span("phase2 omission", "phase");
      OmissionResult om =
          options.phase2_method == Phase2Method::Restoration
              ? restore_vectors(fsim, tau, p1.f_so, options.restoration)
              : omit_vectors(fsim, tau, p1.f_so, options.omission);
      omitted = om.omitted;
      tau = std::move(om.test);
      // Omission preserves F_SO and can add detections (Section 3.2 /
      // [8]); refresh the detected set.
      if (omitted > 0) {
        detected = fsim.detect_scan_test(tau.scan_in, tau.seq);
      }
    }

    // A round the token interrupted ran on partial fault-simulation
    // results; discard it and keep the best complete round.
    if (options.cancel.stop_requested()) {
      result.stopped = true;
      break;
    }

    obs::add(obs::Counter::IterateRounds);
    result.iterations.push_back(IterationRecord{
        p1.chosen_candidate, detected.count(), tau.seq.length(), omitted});
    // Live coverage delta: one event per complete round, carrying the
    // round's detection count and index (watchers derive coverage % and
    // the drop-rate curve from the stream without polling).
    obs::publish_event(obs::EventKind::Round, "phase1+2", detected.count(),
                       iter);

    // Keep the best test seen: more detections, then shorter sequence.
    const bool better =
        !have_result || detected.count() > result.f_seq.count() ||
        (detected.count() == result.f_seq.count() &&
         tau.seq.length() < result.tau_seq.seq.length());
    if (better) {
      result.tau_seq = tau;
      result.f_seq = detected;
      have_result = true;
    } else if (options.stop_on_no_progress && iter > 0) {
      break;
    }

    if (p1.chose_selected || !options.iterate) break;
    selected[p1.chosen_candidate] = 1;
    current = tau.seq;
  }
  result.tau_valid = have_result;
  return result;
}

}  // namespace scanc::tcomp
