// Phase 1 of the DAC-2001 procedure: turning a test sequence T0 into a
// scan-based test (Section 3.1 of the paper).
//
//   Step 1  fault-simulate T0 from the all-X state (no scan) -> F0.
//   Step 2  choose the scan-in state SI from the state parts of the
//           combinational test set C, maximizing the faults detected by
//           (SI, T0); only F - F0 is simulated.  Candidates already used
//           in earlier iterations ("selected") lose ties to unselected
//           ones and win only with strictly higher coverage.
//   Step 3  choose the scan-out time unit u_SO: the earliest prefix
//           (SI, T0[0,u]) that still detects every fault in F_SI.  A
//           single detection-time recording pass replaces the paper's
//           repeated prefix simulations (see FaultSimulator::
//           detection_times); the selection is semantically identical.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "atpg/comb_tset.hpp"
#include "fault/fault_sim.hpp"
#include "tcomp/scan_test.hpp"

namespace scanc::tcomp {

/// Scan-out time-unit selection rule (Section 3.1 discussion).
enum class ScanOutRule : std::uint8_t {
  EarliestFull,   ///< i0: smallest u with F_SO,u >= F_SI (paper default)
  LargestSet,     ///< i1: u maximizing |F_SO,u|, smallest on ties
};

struct Phase1Options {
  ScanOutRule scan_out_rule = ScanOutRule::EarliestFull;
  /// Scan-in candidate screening: when C and T0 are large, rank all
  /// candidates on the first `screen_prefix` time units of T0 and fully
  /// evaluate only the best `screen_keep` (engineering shortcut over the
  /// paper's evaluate-all; the final choice is exact among the kept
  /// candidates).  screen_prefix = 0 disables screening.  Screening
  /// activates only when both the pool exceeds 2*screen_keep and T0
  /// exceeds 2*screen_prefix.
  std::size_t screen_prefix = 128;
  std::size_t screen_keep = 8;
};

struct Phase1Result {
  ScanTest test;            ///< tau_SO = (SI, T_SO)
  fault::FaultSet f0;       ///< detected by T0 without scan
  fault::FaultSet f_si;     ///< detected by (SI, T0)
  fault::FaultSet f_so;     ///< detected by tau_SO
  std::size_t chosen_candidate = 0;  ///< index into C
  bool chose_selected = false;       ///< SI source was already selected
  std::size_t scan_out_time = 0;     ///< u_SO
};

/// Runs Phase 1.  `selected[j]` marks candidates used by earlier
/// iterations (tie-losers).  C must be non-empty.
[[nodiscard]] Phase1Result run_phase1(fault::FaultSimulator& fsim,
                                      const sim::Sequence& t0,
                                      std::span<const atpg::CombTest> comb,
                                      std::span<const char> selected,
                                      const Phase1Options& options = {});

}  // namespace scanc::tcomp
