// Phase 3 of the DAC-2001 procedure: complete fault coverage (Section
// 3.4).
//
// Every combinational test c_j defines a length-one scan test
// tau_j = (c_j_state, (c_j_inputs)).  For the faults left undetected by
// tau_seq, the phase computes per-fault detection counts n(f) and the
// index last(f) of the last test detecting f, then repeatedly selects the
// test tau_last(f) for the fault with minimum n(f) until no targeted
// fault remains.  Faults with n(f) = 1 force their unique test into the
// set and are therefore covered first.
#pragma once

#include <cstdint>
#include <vector>

#include "atpg/comb_tset.hpp"
#include "fault/fault_sim.hpp"
#include "tcomp/scan_test.hpp"

namespace scanc::tcomp {

struct TopOffResult {
  /// Selected length-one scan tests, in selection order.
  ScanTestSet tests;
  /// Indices into C of the selected tests.
  std::vector<std::size_t> chosen;
  /// Faults in the requested set that no test in C detects (left
  /// uncovered; empty when C is complete for the detectable faults).
  fault::FaultSet uncoverable;
};

/// Selects length-one tests from `comb` covering every fault in
/// `undetected` that C can detect.
[[nodiscard]] TopOffResult top_off(fault::FaultSimulator& fsim,
                                   std::span<const atpg::CombTest> comb,
                                   const fault::FaultSet& undetected);

}  // namespace scanc::tcomp
