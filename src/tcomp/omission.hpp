// Phase 2 of the DAC-2001 procedure: vector omission (Section 3.2).
//
// Starting from tau_SO = (SI, T_SO) and its detected fault set F_SO, omit
// as many vectors as possible from T_SO without losing the detection of
// any fault in F_SO — static compaction of a single test sequence in the
// style of [8] (Pomeranz & Reddy, DAC 1996).
//
// Implementation notes.  A trial that removes vectors at positions
// >= u cannot disturb any fault whose earliest detection lies strictly
// before u (the prefix is unchanged), so each trial re-simulates only
// the faults first detected at or after u — plus the faults whose only
// detection is the final scan-out, which any omission can disturb.
// Because those scan-out-detected faults force every trial to simulate
// to the end of the sequence, pure single-vector trials cost O(L^2)
// frames; the sweep therefore removes *blocks* of vectors first
// (geometrically shrinking block sizes down to single vectors, in the
// spirit of delta debugging) under an explicit simulation budget.
// Coverage preservation is exact for every accepted omission.
#pragma once

#include <cstdint>

#include "fault/fault_sim.hpp"
#include "tcomp/scan_test.hpp"

namespace scanc::tcomp {

struct OmissionOptions {
  /// Maximum sweeps at every block size; a sweep that removes nothing
  /// ends that block size early.
  std::size_t max_passes = 2;
  /// Initial block size; 0 selects max(1, L/64) capped at 32.
  std::size_t initial_block = 0;
  /// Upper bound on simulated frames across all trials, as a multiple of
  /// the initial sequence length (0 = unlimited).  When the budget runs
  /// out the current (already valid) test is returned.
  std::size_t budget_factor = 64;
};

struct OmissionResult {
  ScanTest test;            ///< tau_C = (SI, T_C)
  std::size_t omitted = 0;  ///< vectors removed
};

/// Omits vectors from `test` while preserving detection of everything in
/// `required`.  `required` must be detected by `test` on entry.
[[nodiscard]] OmissionResult omit_vectors(fault::FaultSimulator& fsim,
                                          const ScanTest& test,
                                          const fault::FaultSet& required,
                                          const OmissionOptions& options =
                                              {});

}  // namespace scanc::tcomp
