#include "tcomp/response.hpp"

#include "sim/seq_sim.hpp"

namespace scanc::tcomp {

TestResponse expected_response(const netlist::Circuit& c,
                               const ScanTest& test) {
  const sim::Trace trace =
      sim::simulate_fault_free(c, &test.scan_in, test.seq);
  TestResponse r;
  r.outputs = trace.po_frames;
  r.scan_out = trace.states.empty() ? sim::Vector3(c.num_flip_flops(),
                                                   sim::V3::X)
                                    : trace.states.back();
  return r;
}

std::vector<TestResponse> expected_responses(const netlist::Circuit& c,
                                             const ScanTestSet& set) {
  std::vector<TestResponse> out;
  out.reserve(set.size());
  for (const ScanTest& t : set.tests) {
    out.push_back(expected_response(c, t));
  }
  return out;
}

void write_test_program(const netlist::Circuit& c, const ScanTestSet& set,
                        std::ostream& out) {
  for (std::size_t i = 0; i < set.tests.size(); ++i) {
    const ScanTest& t = set.tests[i];
    const TestResponse r = expected_response(c, t);
    out << "test " << i << "\n";
    out << "scanin " << sim::to_string(t.scan_in) << "\n";
    for (std::size_t u = 0; u < t.seq.frames.size(); ++u) {
      out << "vector " << sim::to_string(t.seq.frames[u]) << " expect "
          << sim::to_string(r.outputs[u]) << "\n";
    }
    out << "scanout " << sim::to_string(r.scan_out) << "\n";
  }
}

}  // namespace scanc::tcomp
