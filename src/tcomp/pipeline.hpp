// The complete DAC-2001 compaction procedure (Sections 3.1-3.5).
//
//   Phase 1+2 (iterated): T0 -> tau_seq = (SI_seq, T_seq)
//   Phase 3: top-off tests from C for faults undetected by tau_seq
//   Phase 4: static compaction by combining [4]
//
// run_pipeline takes the test sequence T0 (from tgen — the [10]/[12]
// substitute — or a random sequence, the paper's Table 5 variant) and
// the combinational test set C (from atpg), and returns every
// intermediate artifact the paper's tables report.
#pragma once

#include <cstdint>
#include <functional>

#include "atpg/comb_tset.hpp"
#include "fault/fault_sim.hpp"
#include "tcomp/baselines.hpp"
#include "tcomp/combine.hpp"
#include "tcomp/iterate.hpp"
#include "tcomp/topoff.hpp"

namespace scanc::tcomp {

/// Where a cancelled pipeline stopped (docs/robustness.md).
enum class PipelinePhase : std::uint8_t {
  Iterate,   ///< phases 1+2 (iterated)
  TopOff,    ///< phase 3
  Combine,   ///< phase 4
  Coverage,  ///< final coverage simulation
  Done,      ///< ran to completion
};

[[nodiscard]] const char* to_string(PipelinePhase phase) noexcept;

struct PipelineOptions {
  IterateOptions iterate;
  CombineOptions combine;
  bool run_phase4 = true;  ///< ablation: skip final static compaction
  /// Balanced scan chains for the cost accounting: a scan operation
  /// shifts ceil(N_SV / num_chains) cycles (0 and 1 both mean the
  /// paper's single chain).  Affects only the reported N_cyc numbers —
  /// the compaction decisions themselves minimise vectors and tests,
  /// which are chain-count independent.
  std::size_t num_chains = 1;
  /// Fault-simulation worker threads for every phase (applied to `fsim`
  /// at pipeline entry): 0 = keep the simulator's current setting,
  /// 1 = serial, otherwise that many threads.  Results are identical for
  /// every setting (see docs/execution.md).
  std::size_t num_threads = 0;
  /// Fault universe for Phase 3 top-off (empty = every collapsed
  /// class).  Callers holding untestability proofs (the SAT ATPG
  /// backend, docs/atpg.md) pass all faults minus the proven-untestable
  /// classes so top-off never chases faults no test can detect and the
  /// `uncoverable` report stays honest.  Must be sized to the
  /// simulator's class count when non-empty.  Phases 1+2, 4 and the
  /// final coverage measurement are unaffected: coverage is still
  /// reported against every class.
  fault::FaultSet universe;
  /// Cooperative cancellation for the whole pipeline: installed on
  /// `fsim` at entry (frame-granular aborts) and checked between
  /// phases.  On cancellation the pipeline returns its best-so-far
  /// compacted set with completed == false instead of discarding work.
  util::CancelToken cancel;
  /// Optional progress callback (phase names, for logging).
  std::function<void(const char*)> trace;
};

struct PipelineResult {
  // Phase 1+2 (iterated).
  ScanTest tau_seq;              ///< the long at-speed test
  fault::FaultSet f0;            ///< detected by T0 alone (Table 1 "T0")
  fault::FaultSet f_seq;         ///< detected by tau_seq (Table 1 "scan")
  std::size_t iterations = 0;

  // Phase 3.
  std::size_t added_tests = 0;   ///< Table 2 "added c.tst"
  fault::FaultSet uncoverable;   ///< faults neither tau_seq nor C detect
  /// Classes `options.universe` excluded from Phase 3 (proven
  /// untestable upstream); 0 when no universe was supplied.
  std::size_t excluded_untestable = 0;

  // Test sets.
  ScanTestSet initial;           ///< {tau_seq} + top-off (end of Phase 3)
  ScanTestSet compacted;         ///< after Phase 4 (== initial if skipped)
  fault::FaultSet final_coverage;  ///< detected by `compacted`
  std::size_t combinations = 0;  ///< Phase 4 accepted combinations

  // Cost accounting (N_cyc via clock_cycles_from_counts, with N_SV =
  // the simulator's scanned-cell count and the options' chain count —
  // each scan operation costs ceil(N_SV / num_chains) cycles).
  std::size_t num_chains = 1;          ///< chain count used for N_cyc
  std::uint64_t initial_cycles = 0;    ///< N_cyc of `initial`
  std::uint64_t compacted_cycles = 0;  ///< N_cyc of `compacted`

  // Graceful degradation (cooperative cancellation).
  /// False when the cancel token cut the run short; the test sets then
  /// hold the best result completed before the cut (possibly empty when
  /// cancellation struck before the first Phase 1+2 round finished).
  bool completed = true;
  /// First phase the cancellation prevented from completing (Done when
  /// the pipeline ran to the end).
  PipelinePhase stopped_at = PipelinePhase::Done;
};

[[nodiscard]] PipelineResult run_pipeline(fault::FaultSimulator& fsim,
                                          const sim::Sequence& t0,
                                          std::span<const atpg::CombTest>
                                              comb,
                                          const PipelineOptions& options =
                                              {});

}  // namespace scanc::tcomp
