// Baseline test sets the paper compares against (Table 3).
//
// [4] baseline: the initial test set of the ATS-1998 static compaction
// procedure — one length-one scan test per combinational test in C —
// and its compacted form, obtained by running the combining procedure
// (tcomp/combine.hpp) on that initial set.
//
// [2,3]-style dynamic baseline: an approximation of the Lee/Saluja
// dynamic compaction procedures, which balance consecutive functional
// vectors against scan operations while tests are being built.  Each
// test starts from the combinational test covering the most remaining
// faults and is greedily extended with further functional vectors (drawn
// from C's input parts and random candidates) while extensions keep
// detecting new faults, up to N_SV vectors — the point where a vector
// sequence stops being cheaper than a scan operation.  See DESIGN.md §4
// (substitution 4).
#pragma once

#include <cstdint>

#include "atpg/comb_tset.hpp"
#include "fault/fault_sim.hpp"
#include "tcomp/combine.hpp"
#include "tcomp/scan_test.hpp"

namespace scanc::tcomp {

/// The [4] initial test set: tau_j = (c_j_state, (c_j_inputs)) for every
/// test in C.
[[nodiscard]] ScanTestSet comb_initial_set(
    std::span<const atpg::CombTest> comb);

struct DynamicBaselineOptions {
  std::uint64_t seed = 1;
  /// Candidate extension vectors evaluated per step: this many sampled
  /// from C's input parts plus this many random vectors.
  std::size_t candidates = 6;
  /// Cap on a test's sequence length; defaults (0) to N_SV, the paper's
  /// break-even point between functional vectors and a scan operation.
  std::size_t max_test_length = 0;
};

/// Builds a test set in the style of dynamic compaction [2,3].
[[nodiscard]] ScanTestSet dynamic_baseline(
    fault::FaultSimulator& fsim, std::span<const atpg::CombTest> comb,
    const fault::FaultSet& target_coverage,
    const DynamicBaselineOptions& options = {});

}  // namespace scanc::tcomp
