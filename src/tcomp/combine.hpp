// Static test compaction by combining ([4]: Pomeranz & Reddy, ATS 1998).
//
// Combining tests tau_i = (SI_i, T_i) and tau_j = (SI_j, T_j) removes one
// scan-out and one scan-in operation: the combined test is
// tau_ij = (SI_i, T_i . T_j).  A combination is accepted only if the test
// set's fault coverage is preserved.  The procedure greedily attempts
// pair combinations until no further pair can be combined, which is both
// the paper's Phase 4 and — applied to a combinational test set — the
// baseline procedure the paper compares against.
//
// Coverage preservation is checked on the pair's *essential* faults
// (those no other test in the current set detects); the combined test's
// detection set is then re-simulated to update the bookkeeping.
#pragma once

#include <cstdint>

#include "fault/fault_sim.hpp"
#include "tcomp/scan_test.hpp"

namespace scanc::tcomp {

/// Transfer-sequence extension ([7]: Pomeranz & Reddy, ATS 2000).  When a
/// plain combination loses coverage because tau_i's final state cannot
/// stand in for SI_j, a short *transfer sequence* W inserted between T_i
/// and T_j can drive the circuit toward a state under which T_j still
/// detects the pair's essential faults: tau_ij = (SI_i, T_i . W . T_j).
/// The combination stays profitable as long as L(W) < N_SV (the scan
/// operation it replaces).
struct TransferOptions {
  bool enabled = false;
  std::size_t max_length = 4;   ///< longest transfer sequence tried
  std::size_t candidates = 4;   ///< candidate vectors per grown position
  std::uint64_t seed = 1;
};

struct CombineOptions {
  /// Try combining in both (i,j) and (j,i) orders.
  bool try_both_orders = true;
  /// Upper bound on accepted combinations (0 = unlimited).
  std::size_t max_combinations = 0;
  /// Cooperative cancellation, checked before every pair attempt.  The
  /// partially combined set returned on cancellation is a *valid* test
  /// set: every accepted combination preserved coverage, and a
  /// coverage check the token interrupts conservatively rejects its
  /// combination.
  util::CancelToken cancel;
  TransferOptions transfer;
};

struct CombineResult {
  ScanTestSet tests;
  std::size_t combinations = 0;  ///< accepted pair combinations
  std::size_t attempts = 0;      ///< coverage checks performed
};

/// Compacts `set` preserving its own coverage (computed internally over
/// all fault classes).
[[nodiscard]] CombineResult combine_tests(fault::FaultSimulator& fsim,
                                          const ScanTestSet& set,
                                          const CombineOptions& options =
                                              {});

}  // namespace scanc::tcomp
