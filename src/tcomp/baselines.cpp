#include "tcomp/baselines.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace scanc::tcomp {

using fault::FaultSet;
using fault::FaultSimulator;

ScanTestSet comb_initial_set(std::span<const atpg::CombTest> comb) {
  ScanTestSet set;
  set.tests.reserve(comb.size());
  for (const atpg::CombTest& c : comb) {
    ScanTest t;
    t.scan_in = c.state;
    t.seq.frames.push_back(c.inputs);
    set.tests.push_back(std::move(t));
  }
  return set;
}

ScanTestSet dynamic_baseline(FaultSimulator& fsim,
                             std::span<const atpg::CombTest> comb,
                             const FaultSet& target_coverage,
                             const DynamicBaselineOptions& options) {
  util::Rng rng(options.seed ^ 0xd1aab5eULL);
  const std::size_t num_pis = fsim.circuit().num_inputs();
  const std::size_t nsv = fsim.circuit().num_flip_flops();
  const std::size_t max_len =
      options.max_test_length != 0 ? options.max_test_length
                                   : std::max<std::size_t>(nsv, 1);

  ScanTestSet set;
  FaultSet remaining = target_coverage;
  while (!remaining.none()) {
    // Seed with the combinational test covering the most remaining
    // faults (one pattern-parallel batch per round).
    std::size_t best_j = comb.size();
    FaultSet best_det(fsim.num_classes());
    std::vector<FaultSet> dets =
        atpg::detect_comb_tests(fsim, comb, &remaining);
    for (std::size_t j = 0; j < dets.size(); ++j) {
      if (best_j == comb.size() || dets[j].count() > best_det.count()) {
        best_j = j;
        best_det = std::move(dets[j]);
      }
    }
    if (best_j == comb.size() || best_det.none()) {
      break;  // nothing in C covers the remaining faults
    }
    ScanTest test;
    test.scan_in = comb[best_j].state;
    test.seq.frames.push_back(comb[best_j].inputs);

    // Extend with functional vectors while each extension strictly grows
    // the test's own detection, up to the scan break-even length N_SV.
    // `cur_det` is always the *complete* extended test's detection —
    // extending a test can invalidate scan-out detections of its prefix,
    // so per-step deltas must not be banked before the test is final.
    FaultSet cur_det = std::move(best_det);
    while (test.seq.length() < max_len) {
      // Draw every candidate vector first (the RNG stream never depends
      // on simulation results), then score them in one batch.
      const std::size_t nc = options.candidates * 2;
      std::vector<sim::Sequence> cands(nc);
      std::vector<FaultSimulator::BatchTest> batch(nc);
      for (std::size_t k = 0; k < nc; ++k) {
        sim::Vector3 vec =
            (k < options.candidates && !comb.empty())
                ? comb[rng.below(comb.size())].inputs
                : sim::random_vector(num_pis, rng);
        cands[k] = test.seq;
        cands[k].frames.push_back(std::move(vec));
        batch[k] = {&test.scan_in, &cands[k]};
      }
      std::vector<FaultSet> ext = fsim.detect_batch(batch, &remaining);
      FaultSet best_ext(fsim.num_classes());
      std::size_t best_k = nc;
      for (std::size_t k = 0; k < nc; ++k) {
        if (ext[k].count() > best_ext.count()) {
          best_ext = std::move(ext[k]);
          best_k = k;
        }
      }
      if (best_ext.count() <= cur_det.count()) break;
      test.seq.frames.push_back(std::move(cands[best_k].frames.back()));
      cur_det = std::move(best_ext);
    }
    remaining -= cur_det;
    set.tests.push_back(std::move(test));
  }
  return set;
}

}  // namespace scanc::tcomp
