#include "tcomp/scan_test.hpp"

#include <algorithm>
#include <vector>

namespace scanc::tcomp {

std::uint64_t clock_cycles_from_counts(std::size_t num_tests,
                                       std::size_t total_vectors,
                                       std::size_t num_state_vars,
                                       std::size_t chains) {
  if (num_tests == 0) return 0;
  const std::uint64_t shift =
      chains <= 1 ? num_state_vars
                  : (num_state_vars + chains - 1) / chains;
  return (static_cast<std::uint64_t>(num_tests) + 1) * shift +
         total_vectors;
}

std::uint64_t clock_cycles(const ScanTestSet& set,
                           std::size_t num_state_vars) {
  return clock_cycles_from_counts(set.size(), set.total_vectors(),
                                  num_state_vars);
}

std::uint64_t clock_cycles(const ScanTestSet& set,
                           std::size_t num_state_vars, std::size_t chains) {
  return clock_cycles_from_counts(set.size(), set.total_vectors(),
                                  num_state_vars, chains);
}

AtSpeedStats at_speed_stats(const ScanTestSet& set) {
  AtSpeedStats s;
  if (set.empty()) return s;
  s.min_length = set.tests.front().length();
  s.max_length = s.min_length;
  std::size_t total = 0;
  for (const ScanTest& t : set.tests) {
    total += t.length();
    s.min_length = std::min(s.min_length, t.length());
    s.max_length = std::max(s.max_length, t.length());
  }
  s.average = static_cast<double>(total) / static_cast<double>(set.size());
  return s;
}

void write_test_set(const ScanTestSet& set, std::ostream& out) {
  for (std::size_t i = 0; i < set.tests.size(); ++i) {
    const ScanTest& t = set.tests[i];
    out << "test " << i << "\n";
    out << "scanin " << sim::to_string(t.scan_in) << "\n";
    for (const sim::Vector3& v : t.seq.frames) {
      out << "vector " << sim::to_string(v) << "\n";
    }
  }
}

fault::FaultSet coverage(fault::FaultSimulator& fsim, const ScanTestSet& set,
                         const fault::FaultSet* targets) {
  std::vector<fault::FaultSimulator::BatchTest> batch(set.tests.size());
  for (std::size_t i = 0; i < set.tests.size(); ++i) {
    batch[i] = {&set.tests[i].scan_in, &set.tests[i].seq};
  }
  fault::FaultSet covered(fsim.num_classes());
  for (const fault::FaultSet& det : fsim.detect_batch(batch, targets)) {
    covered |= det;
  }
  return covered;
}

}  // namespace scanc::tcomp
