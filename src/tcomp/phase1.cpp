#include "tcomp/phase1.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/event_bus.hpp"
#include "util/telemetry.hpp"

namespace scanc::tcomp {

using fault::FaultClassId;
using fault::FaultSet;
using fault::FaultSimulator;
using sim::Sequence;

Phase1Result run_phase1(FaultSimulator& fsim, const Sequence& t0,
                        std::span<const atpg::CombTest> comb,
                        std::span<const char> selected,
                        const Phase1Options& options) {
  if (comb.empty()) {
    throw std::invalid_argument("run_phase1: empty combinational test set");
  }
  if (t0.empty()) {
    throw std::invalid_argument("run_phase1: empty test sequence");
  }
  assert(selected.size() == comb.size());

  Phase1Result result;

  // Step 1: faults detected by T0 alone (all-X state, PO observation).
  {
    const obs::Span span("phase1 step1 T0-detect", "step");
    obs::publish_event(obs::EventKind::PhaseBegin, "phase1/step1");
    result.f0 = fsim.detect_no_scan(t0);
    obs::publish_event(obs::EventKind::PhaseEnd, "phase1/step1",
                       result.f0.count());
  }

  // Step 2: candidate scan-in states are the state parts of C.  Simulate
  // only F - F0: faults in F0 are detected for any scan-in choice.
  {
    const obs::Span span("phase1 step2 scan-in", "step");
    obs::publish_event(obs::EventKind::PhaseBegin, "phase1/step2", 0,
                       comb.size());
    FaultSet remaining = fsim.all_faults();
    remaining -= result.f0;

    // Optional screening pass: rank everyone on a prefix of T0, keep the
    // best few for exact evaluation.
    std::vector<std::size_t> pool;
    const bool screen = options.screen_prefix > 0 &&
                        t0.length() > 2 * options.screen_prefix &&
                        comb.size() > 2 * options.screen_keep;
    if (screen) {
      const Sequence prefix = t0.subsequence(0, options.screen_prefix - 1);
      // One pattern-parallel batch scores every candidate's prefix
      // coverage.
      std::vector<FaultSimulator::BatchTest> batch(comb.size());
      for (std::size_t j = 0; j < comb.size(); ++j) {
        batch[j] = {&comb[j].state, &prefix};
      }
      const std::vector<FaultSet> dets = fsim.detect_batch(batch, &remaining);
      std::vector<std::pair<std::size_t, std::size_t>> scored;  // (count, j)
      scored.reserve(comb.size());
      for (std::size_t j = 0; j < comb.size(); ++j) {
        scored.emplace_back(dets[j].count(), j);
      }
      std::sort(scored.begin(), scored.end(),
                [&](const auto& a, const auto& b) {
                  if (a.first != b.first) return a.first > b.first;
                  // Prefer unselected candidates into the kept pool on
                  // score ties.
                  if (selected[a.second] != selected[b.second]) {
                    return selected[a.second] < selected[b.second];
                  }
                  return a.second < b.second;
                });
      for (std::size_t k = 0; k < options.screen_keep && k < scored.size();
           ++k) {
        pool.push_back(scored[k].second);
      }
    } else {
      pool.resize(comb.size());
      for (std::size_t j = 0; j < comb.size(); ++j) pool[j] = j;
    }

    // Exact evaluation of the kept pool over the full T0, batched the
    // same way.
    std::vector<FaultSimulator::BatchTest> batch(pool.size());
    for (std::size_t k = 0; k < pool.size(); ++k) {
      batch[k] = {&comb[pool[k]].state, &t0};
    }
    std::vector<FaultSet> dets = fsim.detect_batch(batch, &remaining);
    std::size_t best = comb.size();          // overall winner
    std::size_t best_count = 0;
    bool best_selected = false;
    FaultSet best_det(fsim.num_classes());
    for (std::size_t k = 0; k < pool.size(); ++k) {
      const std::size_t j = pool[k];
      FaultSet& det = dets[k];
      const std::size_t count = det.count();
      // Unselected candidates win ties; a selected candidate needs
      // strictly higher coverage to displace an unselected incumbent.
      const bool wins =
          best == comb.size() || count > best_count ||
          (count == best_count && best_selected && !selected[j]);
      if (wins) {
        best = j;
        best_count = count;
        best_selected = selected[j] != 0;
        best_det = std::move(det);
      }
    }
    result.chosen_candidate = best;
    result.chose_selected = best_selected;
    result.f_si = result.f0 | best_det;
    obs::publish_event(obs::EventKind::PhaseEnd, "phase1/step2",
                       result.f_si.count(), best);
  }

  const sim::Vector3& si = comb[result.chosen_candidate].state;

  // Step 3: scan-out time selection from one detection-time recording of
  // (SI, T0) over all faults.  tau_SO,u detects f iff f is PO-detected at
  // some time <= u or the faulty state differs observably after time u.
  const obs::Span step3_span("phase1 step3 scan-out", "step");
  obs::publish_event(obs::EventKind::PhaseBegin, "phase1/step3");
  const FaultSet all = fsim.all_faults();
  const auto times = fsim.detection_times(si, t0, all);

  // valid[u] = 1 iff every fault of F_SI is detected by the prefix test
  // ending at u.
  util::Bitset valid(t0.length(), true);
  for (std::size_t k = 0; k < times.targets.size(); ++k) {
    if (!result.f_si.test(times.targets[k])) continue;
    util::Bitset ok = times.state_diff[k];
    if (times.first_po[k] >= 0) {
      for (std::size_t u = static_cast<std::size_t>(times.first_po[k]);
           u < t0.length(); ++u) {
        ok.set(u);
      }
    }
    valid &= ok;
  }
  // The full sequence is always a valid candidate (it detects F_SI by
  // construction) — unless cancellation cut detection_times short, in
  // which case no prefix may be provably valid; the fallback below then
  // keeps u_so in range (the caller discards the round anyway).
  assert(fsim.cancel().stop_requested() || valid.test(t0.length() - 1));

  std::size_t u_so = t0.length() - 1;
  if (options.scan_out_rule == ScanOutRule::EarliestFull) {
    u_so = valid.find_first();
  } else {
    // i1 rule: among valid prefixes, maximize the number of detected
    // faults; break ties toward the smallest u.
    std::size_t best_u = valid.find_first();
    std::size_t best_size = 0;
    for (std::size_t u = valid.find_first(); u < t0.length();
         u = valid.find_next(u + 1)) {
      std::size_t size = 0;
      for (std::size_t k = 0; k < times.targets.size(); ++k) {
        if (times.detected_by_prefix(k, u)) ++size;
      }
      if (size > best_size) {
        best_size = size;
        best_u = u;
      }
    }
    u_so = best_u;
  }
  // find_first() == length() when no prefix is valid (partial records
  // under cancellation); fall back to the full sequence.
  if (u_so >= t0.length()) u_so = t0.length() - 1;
  result.scan_out_time = u_so;

  result.test.scan_in = si;
  result.test.seq = t0.subsequence(0, u_so);
  result.f_so = FaultSet(fsim.num_classes());
  for (std::size_t k = 0; k < times.targets.size(); ++k) {
    if (times.detected_by_prefix(k, u_so)) {
      result.f_so.set(times.targets[k]);
    }
  }
  obs::publish_event(obs::EventKind::PhaseEnd, "phase1/step3",
                     result.f_so.count(), u_so);
  return result;
}

}  // namespace scanc::tcomp
