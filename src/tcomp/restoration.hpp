// Vector-restoration static compaction ([11]: Pomeranz & Reddy,
// ICCD 1997) — the alternative Phase-2 engine.
//
// Where omission (tcomp/omission.hpp) starts from the full sequence and
// removes vectors, restoration starts from the *empty* sequence and adds
// back only the vectors needed: faults are processed in decreasing order
// of their detection time, and for each still-undetected fault the
// vectors immediately preceding (and including) its detection time are
// restored until the fault is detected by the restored subsequence.
//
// Restoring vectors for one fault can perturb the state trajectory seen
// by a previously verified fault, so the procedure finishes with a
// correction loop: re-verify everything and keep restoring until the
// whole required set is detected (the full sequence is the worst case,
// so termination is guaranteed and coverage preservation is exact).
#pragma once

#include "fault/fault_sim.hpp"
#include "tcomp/omission.hpp"

namespace scanc::tcomp {

struct RestorationOptions {
  /// Vectors restored per unsatisfied check (larger = fewer simulations,
  /// coarser result).
  std::size_t restore_step = 1;
  /// Upper bound on simulated frames across all checks, as a multiple of
  /// the sequence length (0 = unlimited); on exhaustion the remaining
  /// unrestored vectors are restored wholesale (coverage still exact).
  std::size_t budget_factor = 96;
};

/// Compacts `test` by vector restoration, preserving detection of every
/// fault in `required` (which `test` must detect on entry).  Returns the
/// same result shape as omit_vectors.
[[nodiscard]] OmissionResult restore_vectors(
    fault::FaultSimulator& fsim, const ScanTest& test,
    const fault::FaultSet& required, const RestorationOptions& options = {});

}  // namespace scanc::tcomp
