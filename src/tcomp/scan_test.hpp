// Scan tests, scan test sets, and the paper's cost metrics.
//
// A scan test is tau = (SI, T): scan in SI, apply the primary-input
// sequence T at functional speed (one vector per clock), scan out the
// final state.  (The expected scan-out response SO is implied by fault-
// free simulation and omitted from the data structure, as in the paper's
// Section 3 notation.)
//
// Test application time for a set {tau_1..tau_k}, with the scan clock
// running at the functional rate:
//
//     N_cyc = (k+1) * N_SV + sum_j L(T_j)
//
// (k+1 scan operations of N_SV cycles each — consecutive tests share one
// scan-out/scan-in overlap — plus one cycle per applied vector.)
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "fault/fault_sim.hpp"
#include "sim/sequence.hpp"

namespace scanc::tcomp {

/// One scan test (SI_i, T_i).
struct ScanTest {
  sim::Vector3 scan_in;  ///< fully-specified scan-in state
  sim::Sequence seq;     ///< at-speed primary-input sequence, length >= 1

  [[nodiscard]] std::size_t length() const noexcept { return seq.length(); }
};

/// An ordered set of scan tests.
struct ScanTestSet {
  std::vector<ScanTest> tests;

  [[nodiscard]] std::size_t size() const noexcept { return tests.size(); }
  [[nodiscard]] bool empty() const noexcept { return tests.empty(); }

  /// Total number of primary-input vectors across all tests.
  [[nodiscard]] std::size_t total_vectors() const noexcept {
    std::size_t n = 0;
    for (const ScanTest& t : tests) n += t.length();
    return n;
  }
};

/// First-principles N_cyc from raw counts: `num_tests` scan tests with
/// `total_vectors` applied PI vectors in total, a scan chain of
/// `num_state_vars` cells split into `chains` balanced chains (0 and 1
/// both mean a single chain):
///
///     N_cyc = (k+1) * ceil(N_SV / chains) + sum_j L(T_j)
///
/// An empty set (k == 0) costs 0.  This is the single authoritative
/// implementation of the paper's cost model; every caller — the
/// ScanTestSet overloads below, tcomp/pipeline, expt/tables, and the
/// bench binaries — derives its numbers from here so an off-by-one can
/// only exist in one place (and check/differ re-derives the formula
/// independently to catch exactly that).
[[nodiscard]] std::uint64_t clock_cycles_from_counts(
    std::size_t num_tests, std::size_t total_vectors,
    std::size_t num_state_vars, std::size_t chains = 1);

/// Clock cycles to apply the set: (k+1)*N_SV + sum L(T_j).
/// An empty set costs 0.
[[nodiscard]] std::uint64_t clock_cycles(const ScanTestSet& set,
                                         std::size_t num_state_vars);

/// Multi-scan-chain variant: with `chains` balanced scan chains a scan
/// operation shifts ceil(N_SV / chains) cycles, so
/// N_cyc = (k+1)*ceil(N_SV/chains) + sum L(T_j).  The paper assumes one
/// chain; more chains shrink the scan component and therefore the
/// *relative* advantage of long at-speed sequences.
[[nodiscard]] std::uint64_t clock_cycles(const ScanTestSet& set,
                                         std::size_t num_state_vars,
                                         std::size_t chains);

/// At-speed sequence-length statistics (paper Table 4).
struct AtSpeedStats {
  double average = 0.0;
  std::size_t min_length = 0;
  std::size_t max_length = 0;
};

[[nodiscard]] AtSpeedStats at_speed_stats(const ScanTestSet& set);

/// Union of fault classes detected by the whole set (each test applied
/// with its own scan-in/scan-out).
[[nodiscard]] fault::FaultSet coverage(fault::FaultSimulator& fsim,
                                       const ScanTestSet& set,
                                       const fault::FaultSet* targets =
                                           nullptr);

/// Writes the set in a line-oriented text format a tester flow can
/// consume:
///   test <index>
///   scanin <bits>          # flip_flops() order
///   vector <bits>          # one line per at-speed PI vector
void write_test_set(const ScanTestSet& set, std::ostream& out);

}  // namespace scanc::tcomp
