#include "tcomp/topoff.hpp"

#include <limits>

namespace scanc::tcomp {

using fault::FaultClassId;
using fault::FaultSet;
using fault::FaultSimulator;

TopOffResult top_off(FaultSimulator& fsim,
                     std::span<const atpg::CombTest> comb,
                     const FaultSet& undetected) {
  TopOffResult result;
  result.uncoverable = FaultSet(fsim.num_classes());
  if (undetected.none()) return result;

  // Simulate every candidate once over the undetected faults (one
  // pattern-parallel batch).
  const std::vector<FaultSet> det_sets =
      atpg::detect_comb_tests(fsim, comb, &undetected);
  std::vector<std::uint32_t> n_of(fsim.num_classes(), 0);
  std::vector<std::size_t> last_of(fsim.num_classes(), 0);
  for (std::size_t j = 0; j < det_sets.size(); ++j) {
    det_sets[j].for_each([&](std::size_t f) {
      ++n_of[f];
      last_of[f] = j;
    });
  }

  FaultSet remaining = undetected;
  remaining.for_each([&](std::size_t f) {
    if (n_of[f] == 0) result.uncoverable.set(f);
  });
  remaining -= result.uncoverable;

  while (!remaining.none()) {
    // The fault with the fewest detecting tests (lowest id on ties).
    FaultClassId pick = 0;
    std::uint32_t pick_n = std::numeric_limits<std::uint32_t>::max();
    remaining.for_each([&](std::size_t f) {
      if (n_of[f] < pick_n) {
        pick_n = n_of[f];
        pick = static_cast<FaultClassId>(f);
      }
    });
    const std::size_t j = last_of[pick];
    result.chosen.push_back(j);
    ScanTest t;
    t.scan_in = comb[j].state;
    t.seq.frames.push_back(comb[j].inputs);
    result.tests.tests.push_back(std::move(t));
    remaining -= det_sets[j];
  }
  return result;
}

}  // namespace scanc::tcomp
