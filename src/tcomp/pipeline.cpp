#include "tcomp/pipeline.hpp"

#include <algorithm>
#include <chrono>

#include "util/event_bus.hpp"
#include "util/telemetry.hpp"

namespace scanc::tcomp {

using fault::FaultSet;
using fault::FaultSimulator;

namespace {

using PhaseClock = std::chrono::steady_clock;

double seconds_since(PhaseClock::time_point start) {
  return std::chrono::duration<double>(PhaseClock::now() - start).count();
}

std::uint64_t millis_since(PhaseClock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(PhaseClock::now() -
                                                            start)
          .count());
}

/// Restores a simulator's cancel token and thread count on scope exit.
/// run_pipeline installs the pipeline's own token/threads at entry; a
/// simulator shared across jobs (the service's pooled simulators) must
/// not carry one job's raised token or thread setting into the next —
/// including when a query throws through the pipeline.
class SimStateGuard {
 public:
  explicit SimStateGuard(FaultSimulator& fsim)
      : fsim_(fsim),
        cancel_(fsim.cancel()),
        num_threads_(fsim.num_threads()) {}
  ~SimStateGuard() {
    fsim_.set_cancel(cancel_);
    fsim_.set_num_threads(num_threads_);
  }
  SimStateGuard(const SimStateGuard&) = delete;
  SimStateGuard& operator=(const SimStateGuard&) = delete;

 private:
  FaultSimulator& fsim_;
  util::CancelToken cancel_;
  std::size_t num_threads_;
};

}  // namespace

const char* to_string(PipelinePhase phase) noexcept {
  switch (phase) {
    case PipelinePhase::Iterate: return "phase1+2";
    case PipelinePhase::TopOff: return "phase3";
    case PipelinePhase::Combine: return "phase4";
    case PipelinePhase::Coverage: return "coverage";
    case PipelinePhase::Done: return "done";
  }
  return "?";
}

PipelineResult run_pipeline(FaultSimulator& fsim, const sim::Sequence& t0,
                            std::span<const atpg::CombTest> comb,
                            const PipelineOptions& options) {
  PipelineResult result;
  const auto trace = [&](const char* what) {
    if (options.trace) options.trace(what);
  };
  // Every exit (including cancellation) reports N_cyc for whatever test
  // sets it is returning, all via the one shared cost-model helper.
  const auto finish = [&]() -> PipelineResult& {
    const std::size_t nsv = fsim.num_scanned();
    const std::size_t chains = std::max<std::size_t>(1, options.num_chains);
    result.num_chains = chains;
    result.initial_cycles = clock_cycles(result.initial, nsv, chains);
    result.compacted_cycles = clock_cycles(result.compacted, nsv, chains);
    obs::publish_event(obs::EventKind::PhaseEnd, "pipeline",
                       result.final_coverage.count(), fsim.num_classes());
    return result;
  };
  // The begin event carries the fault universe size (value) so live
  // watchers can turn per-round detection counts into coverage %.
  obs::publish_event(obs::EventKind::PhaseBegin, "pipeline", 0,
                     fsim.num_classes());
  // The caller's token/threads are restored on every exit path (see
  // SimStateGuard) so a pooled simulator comes back clean.
  const SimStateGuard guard(fsim);
  if (options.num_threads != 0) fsim.set_num_threads(options.num_threads);
  fsim.set_cancel(options.cancel);

  // Phases 1 and 2, iterated.
  trace("phases 1+2 (iterated)");
  IterateResult it;
  {
    const obs::PhaseSpan span("phase1+2");
    obs::publish_event(obs::EventKind::PhaseBegin, "phase1+2");
    const auto started = PhaseClock::now();
    IterateOptions iopt = options.iterate;
    if (!iopt.trace) iopt.trace = options.trace;
    if (!iopt.cancel.valid()) iopt.cancel = options.cancel;
    it = iterate_phases(fsim, t0, comb, iopt);
    obs::record_phase("phase1+2", seconds_since(started),
                      it.f_seq.count());
    obs::publish_event(obs::EventKind::PhaseEnd, "phase1+2",
                       it.f_seq.count(), millis_since(started));
  }
  result.tau_seq = std::move(it.tau_seq);
  result.f0 = std::move(it.f0);
  result.f_seq = it.f_seq;
  result.iterations = it.iterations.size();
  // Cancellation before the first complete round leaves the detection
  // sets default-constructed; normalise to empty sets over the classes.
  if (result.f0.size() != fsim.num_classes()) {
    result.f0 = FaultSet(fsim.num_classes());
  }
  if (result.f_seq.size() != fsim.num_classes()) {
    result.f_seq = FaultSet(fsim.num_classes());
  }

  if (it.stopped || options.cancel.stop_requested()) {
    // Graceful degradation: the best complete tau_seq (if any) becomes
    // the whole test set; its coverage is known without re-simulation.
    if (it.tau_valid) result.initial.tests.push_back(result.tau_seq);
    result.compacted = result.initial;
    result.final_coverage = result.f_seq;
    result.completed = false;
    result.stopped_at = PipelinePhase::Iterate;
    return finish();
  }

  // Phase 3: cover F - F_seq from C.
  trace("phase 3 (top-off)");
  FaultSet undetected = fsim.all_faults();
  if (options.universe.size() == undetected.size()) {
    // Proven-untestable classes leave F before top-off: Phase 3 only
    // chases faults some test could still detect.
    const std::size_t before = undetected.count();
    undetected &= options.universe;
    result.excluded_untestable = before - undetected.count();
  }
  undetected -= result.f_seq;
  TopOffResult topoff;
  {
    const obs::PhaseSpan span("phase3");
    obs::publish_event(obs::EventKind::PhaseBegin, "phase3",
                       undetected.count());
    const auto started = PhaseClock::now();
    topoff = top_off(fsim, comb, undetected);
    obs::record_phase(
        "phase3", seconds_since(started),
        undetected.count() - topoff.uncoverable.count());
    obs::publish_event(obs::EventKind::PhaseEnd, "phase3",
                       undetected.count() - topoff.uncoverable.count(),
                       millis_since(started));
  }
  result.added_tests = topoff.tests.size();
  result.uncoverable = std::move(topoff.uncoverable);

  result.initial.tests.reserve(1 + topoff.tests.size());
  result.initial.tests.push_back(result.tau_seq);
  for (ScanTest& t : topoff.tests.tests) {
    result.initial.tests.push_back(std::move(t));
  }

  if (options.cancel.stop_requested()) {
    // Phase 3 ran on partial simulation results: keep its tests (each
    // is a real length-one test) but only claim the coverage proven by
    // the complete Phase 1+2 rounds.
    result.compacted = result.initial;
    result.final_coverage = result.f_seq;
    result.completed = false;
    result.stopped_at = PipelinePhase::TopOff;
    return finish();
  }

  // Coverage of `initial`, exact by construction: tau_seq's faults plus
  // everything Phase 3 covered (= undetected minus uncoverable).
  FaultSet initial_coverage = undetected;
  initial_coverage -= result.uncoverable;
  initial_coverage |= result.f_seq;

  // Phase 4: static compaction by combining.
  trace("phase 4 (combining)");
  if (options.run_phase4) {
    const obs::PhaseSpan span("phase4");
    obs::publish_event(obs::EventKind::PhaseBegin, "phase4", 0,
                       result.initial.tests.size());
    const auto started = PhaseClock::now();
    CombineOptions copt = options.combine;
    if (!copt.cancel.valid()) copt.cancel = options.cancel;
    CombineResult comp = combine_tests(fsim, result.initial, copt);
    result.compacted = std::move(comp.tests);
    result.combinations = comp.combinations;
    obs::record_phase("phase4", seconds_since(started), 0);
    obs::publish_event(obs::EventKind::PhaseEnd, "phase4", 0,
                       millis_since(started));
  } else {
    result.compacted = result.initial;
  }

  if (options.cancel.stop_requested()) {
    // The partially combined set is valid and coverage-preserving;
    // avoid a final simulation pass that would itself be cut short.
    result.final_coverage = std::move(initial_coverage);
    result.completed = false;
    result.stopped_at = PipelinePhase::Combine;
    return finish();
  }

  {
    const obs::PhaseSpan span("coverage");
    obs::publish_event(obs::EventKind::PhaseBegin, "coverage");
    const auto started = PhaseClock::now();
    result.final_coverage = coverage(fsim, result.compacted);
    obs::record_phase("coverage", seconds_since(started), 0);
    obs::publish_event(obs::EventKind::PhaseEnd, "coverage",
                       result.final_coverage.count(),
                       millis_since(started));
  }
  if (options.cancel.stop_requested()) {
    // The coverage simulation itself was interrupted; fall back to the
    // provable value.
    result.final_coverage = std::move(initial_coverage);
    result.completed = false;
    result.stopped_at = PipelinePhase::Coverage;
  }
  return finish();
}

}  // namespace scanc::tcomp
