#include "tcomp/pipeline.hpp"

namespace scanc::tcomp {

using fault::FaultSet;
using fault::FaultSimulator;

PipelineResult run_pipeline(FaultSimulator& fsim, const sim::Sequence& t0,
                            std::span<const atpg::CombTest> comb,
                            const PipelineOptions& options) {
  PipelineResult result;
  const auto trace = [&](const char* what) {
    if (options.trace) options.trace(what);
  };
  if (options.num_threads != 0) fsim.set_num_threads(options.num_threads);

  // Phases 1 and 2, iterated.
  trace("phases 1+2 (iterated)");
  IterateOptions iopt = options.iterate;
  if (!iopt.trace) iopt.trace = options.trace;
  IterateResult it = iterate_phases(fsim, t0, comb, iopt);
  result.tau_seq = std::move(it.tau_seq);
  result.f0 = std::move(it.f0);
  result.f_seq = it.f_seq;
  result.iterations = it.iterations.size();

  // Phase 3: cover F - F_seq from C.
  trace("phase 3 (top-off)");
  FaultSet undetected = fsim.all_faults();
  undetected -= result.f_seq;
  TopOffResult topoff = top_off(fsim, comb, undetected);
  result.added_tests = topoff.tests.size();
  result.uncoverable = std::move(topoff.uncoverable);

  result.initial.tests.reserve(1 + topoff.tests.size());
  result.initial.tests.push_back(result.tau_seq);
  for (ScanTest& t : topoff.tests.tests) {
    result.initial.tests.push_back(std::move(t));
  }

  // Phase 4: static compaction by combining.
  trace("phase 4 (combining)");
  if (options.run_phase4) {
    CombineResult comp =
        combine_tests(fsim, result.initial, options.combine);
    result.compacted = std::move(comp.tests);
    result.combinations = comp.combinations;
  } else {
    result.compacted = result.initial;
  }
  result.final_coverage = coverage(fsim, result.compacted);
  return result;
}

}  // namespace scanc::tcomp
