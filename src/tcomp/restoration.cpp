#include "tcomp/restoration.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>
#include <vector>

namespace scanc::tcomp {

using fault::FaultClassId;
using fault::FaultSet;
using fault::FaultSimulator;
using sim::Sequence;

namespace {

/// Builds the subsequence of `seq` selected by `kept`.
Sequence build_subsequence(const Sequence& seq,
                           const std::vector<char>& kept) {
  Sequence out;
  for (std::size_t u = 0; u < seq.length(); ++u) {
    if (kept[u]) out.frames.push_back(seq.frames[u]);
  }
  return out;
}

}  // namespace

OmissionResult restore_vectors(FaultSimulator& fsim, const ScanTest& test,
                               const FaultSet& required,
                               const RestorationOptions& options) {
  OmissionResult result;
  result.test = test;
  const std::size_t len = test.seq.length();
  if (len <= 1 || required.none()) return result;

  // Detection times under the full sequence define the processing order
  // and each fault's restoration anchor.
  const auto times =
      fsim.prefix_detection(test.scan_in, test.seq, required);
  assert(times.all_detected());
  const std::size_t nf = times.targets.size();
  std::vector<std::size_t> anchor(nf);
  for (std::size_t k = 0; k < nf; ++k) {
    // Scan-out-detected faults anchor at the final vector.
    anchor[k] = times.first_po[k] >= 0
                    ? static_cast<std::size_t>(times.first_po[k])
                    : len - 1;
  }
  std::vector<std::size_t> order(nf);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return anchor[a] > anchor[b];
  });

  std::vector<char> kept(len, 0);
  std::size_t budget =
      options.budget_factor == 0 ? std::numeric_limits<std::size_t>::max()
                                 : options.budget_factor * len;
  const std::size_t step = std::max<std::size_t>(options.restore_step, 1);

  // Restores up to `step` unkept vectors at or below `from`, scanning
  // downward and wrapping to the highest unkept position if the region
  // below `from` is exhausted.  Returns false when everything is kept.
  const auto restore_near = [&](std::size_t from) {
    std::size_t added = 0;
    std::size_t u = std::min(from, len - 1) + 1;
    while (u-- > 0 && added < step) {
      if (!kept[u]) {
        kept[u] = 1;
        ++added;
      }
    }
    for (std::size_t v = len; added < step && v-- > 0;) {
      if (!kept[v]) {
        kept[v] = 1;
        ++added;
      }
    }
    return added > 0;
  };

  // Main restoration sweep, fault groups in decreasing anchor order.
  for (std::size_t base = 0; base < nf; base += 63) {
    const std::size_t n = std::min<std::size_t>(63, nf - base);
    FaultSet group(fsim.num_classes());
    std::size_t max_anchor = 0;
    for (std::size_t k = 0; k < n; ++k) {
      group.set(times.targets[order[base + k]]);
      max_anchor = std::max(max_anchor, anchor[order[base + k]]);
    }
    // Make sure each fault's anchor vector itself is restored first.
    for (std::size_t k = 0; k < n; ++k) kept[anchor[order[base + k]]] = 1;

    for (;;) {
      const Sequence sub = build_subsequence(test.seq, kept);
      if (budget <= sub.length()) {
        budget = 0;
        break;
      }
      budget -= sub.length();
      const auto check =
          fsim.prefix_detection(result.test.scan_in, sub, group);
      FaultSet undet = group;
      undet -= check.detected;
      if (undet.none()) break;
      if (!restore_near(max_anchor)) break;
    }
    if (budget == 0) break;
  }

  // Correction loop: restoring for later groups can disturb earlier
  // verifications, and the budget may have cut the sweep short; keep
  // restoring until the complete required set is detected.
  for (;;) {
    const Sequence sub = build_subsequence(test.seq, kept);
    const auto check =
        fsim.prefix_detection(result.test.scan_in, sub, required);
    if (check.all_detected()) {
      result.test.seq = sub;
      result.omitted = len - sub.length();
      return result;
    }
    // Restore near the highest-anchored still-undetected fault.
    std::size_t from = 0;
    for (std::size_t k = 0; k < nf; ++k) {
      if (!check.detected.test(times.targets[k])) {
        from = std::max(from, anchor[k]);
      }
    }
    if (!restore_near(from)) {
      // Everything restored: sub == full sequence, which detects all.
      result.test.seq = test.seq;
      result.omitted = 0;
      return result;
    }
  }
}

}  // namespace scanc::tcomp
