// Expected fault-free responses for scan tests.
//
// The paper writes a test as tau_i = (SI_i, T_i, SO_i): the expected
// scan-out vector SO_i is part of the test.  This module computes SO_i
// (and the per-frame primary-output responses a tester compares against)
// by fault-free simulation, and serializes complete test programs.
//
// Responses may contain X where the circuit state is not fully
// determined (e.g. partial scan); a tester masks those positions.
#pragma once

#include <ostream>
#include <vector>

#include "netlist/circuit.hpp"
#include "tcomp/scan_test.hpp"

namespace scanc::tcomp {

/// Expected fault-free behaviour of one scan test.
struct TestResponse {
  /// Expected PO values after each time unit; outputs[t] matches frame t.
  std::vector<sim::Vector3> outputs;
  /// Expected scan-out vector (state captured after the final frame).
  sim::Vector3 scan_out;
};

/// Computes the fault-free response of one test.
[[nodiscard]] TestResponse expected_response(const netlist::Circuit& c,
                                             const ScanTest& test);

/// Computes responses for a whole set, in order.
[[nodiscard]] std::vector<TestResponse> expected_responses(
    const netlist::Circuit& c, const ScanTestSet& set);

/// Writes a complete test program: for every test, the scan-in vector,
/// each at-speed vector with its expected PO response, and the expected
/// scan-out vector.
///
///   test <index>
///   scanin <bits>
///   vector <pi-bits> expect <po-bits>
///   scanout <bits>
void write_test_program(const netlist::Circuit& c, const ScanTestSet& set,
                        std::ostream& out);

}  // namespace scanc::tcomp
