#include "tcomp/combine.hpp"

#include <vector>

#include "util/rng.hpp"

namespace scanc::tcomp {

using fault::FaultSet;
using fault::FaultSimulator;

namespace {

/// Mutable compaction state shared by the pair-combination attempts.
class Combiner {
 public:
  Combiner(FaultSimulator& fsim, ScanTestSet set,
           const CombineOptions& options)
      : fsim_(&fsim),
        options_(options),
        rng_(options.transfer.seed ^ 0x7a45fe6ULL),
        result_{std::move(set), 0, 0} {
    cnt_.assign(fsim.num_classes(), 0);
    // One pattern-parallel batch seeds every test's detection set.
    std::vector<FaultSimulator::BatchTest> batch(tests().size());
    for (std::size_t i = 0; i < tests().size(); ++i) {
      batch[i] = {&tests()[i].scan_in, &tests()[i].seq};
    }
    det_ = fsim.detect_batch(batch);
    for (const FaultSet& d : det_) {
      d.for_each([&](std::size_t f) { ++cnt_[f]; });
    }
  }

  std::vector<ScanTest>& tests() { return result_.tests.tests; }

  CombineResult take() && { return std::move(result_); }

  [[nodiscard]] bool budget_left() const {
    return options_.max_combinations == 0 ||
           result_.combinations < options_.max_combinations;
  }

  /// Attempts tau = (SI_first, T_first . [W .] T_second); on success the
  /// combined test replaces slot `keep` and slot `erase` is removed.
  bool attempt(std::size_t first, std::size_t second, std::size_t keep,
               std::size_t erase) {
    ++result_.attempts;
    // Essential faults: only these two tests detect them.
    FaultSet essential = det_[first] | det_[second];
    essential.for_each([&](std::size_t f) {
      const std::uint32_t others =
          cnt_[f] - static_cast<std::uint32_t>(det_[first].test(f)) -
          static_cast<std::uint32_t>(det_[second].test(f));
      if (others > 0) essential.reset(f);
    });

    ScanTest combined;
    combined.scan_in = tests()[first].scan_in;
    combined.seq = tests()[first].seq.concatenated(tests()[second].seq);
    bool ok =
        fsim_->detects_all(combined.scan_in, combined.seq, essential);
    if (!ok && options_.transfer.enabled && !essential.none()) {
      ok = try_transfer(first, second, essential, combined);
    }
    if (!ok) return false;

    FaultSet new_det =
        fsim_->detect_scan_test(combined.scan_in, combined.seq);
    det_[first].for_each([&](std::size_t f) { --cnt_[f]; });
    det_[second].for_each([&](std::size_t f) { --cnt_[f]; });
    new_det.for_each([&](std::size_t f) { ++cnt_[f]; });
    tests()[keep] = std::move(combined);
    det_[keep] = std::move(new_det);
    tests().erase(tests().begin() + static_cast<std::ptrdiff_t>(erase));
    det_.erase(det_.begin() + static_cast<std::ptrdiff_t>(erase));
    ++result_.combinations;
    return true;
  }

 private:
  /// Grows a transfer sequence W between the two halves until every
  /// essential fault is detected or the length/profitability bound hits.
  bool try_transfer(std::size_t first, std::size_t second,
                    const FaultSet& essential, ScanTest& combined) {
    const std::size_t nsv = fsim_->circuit().num_flip_flops();
    const std::size_t num_pis = fsim_->circuit().num_inputs();
    const std::size_t limit =
        nsv == 0 ? 0 : std::min(options_.transfer.max_length, nsv - 1);
    sim::Sequence w;
    while (w.length() < limit) {
      sim::Vector3 best_vec;
      std::size_t best_score = 0;
      bool complete = false;
      for (std::size_t k = 0; k < options_.transfer.candidates; ++k) {
        const sim::Vector3 vec = sim::random_vector(num_pis, rng_);
        sim::Sequence cand = tests()[first].seq.concatenated(w);
        cand.frames.push_back(vec);
        cand = cand.concatenated(tests()[second].seq);
        const FaultSet det = fsim_->detect_scan_test(
            tests()[first].scan_in, cand, &essential);
        const std::size_t score = det.count();
        if (score >= essential.count()) {
          w.frames.push_back(vec);
          complete = true;
          break;
        }
        if (k == 0 || score > best_score) {
          best_score = score;
          best_vec = vec;
        }
      }
      if (complete) {
        combined.seq =
            tests()[first].seq.concatenated(w).concatenated(
                tests()[second].seq);
        return true;
      }
      w.frames.push_back(best_vec);
    }
    return false;
  }

  FaultSimulator* fsim_;
  CombineOptions options_;
  util::Rng rng_;
  CombineResult result_;
  std::vector<FaultSet> det_;
  std::vector<std::uint32_t> cnt_;
};

}  // namespace

CombineResult combine_tests(FaultSimulator& fsim, const ScanTestSet& set,
                            const CombineOptions& options) {
  if (set.tests.size() <= 1) return CombineResult{set, 0, 0};
  Combiner combiner(fsim, set, options);

  bool progress = true;
  while (progress) {
    progress = false;
    auto& tests = combiner.tests();
    for (std::size_t i = 0; i < tests.size(); ++i) {
      for (std::size_t j = 0; j < tests.size();) {
        if (!combiner.budget_left() || options.cancel.stop_requested()) {
          return std::move(combiner).take();
        }
        if (j == i) {
          ++j;
          continue;
        }
        bool combined = combiner.attempt(i, j, i, j);
        if (!combined && options.try_both_orders && j > i) {
          // (j, i) order, stored at slot i so the outer scan stays valid.
          combined = combiner.attempt(j, i, i, j);
        }
        if (combined) {
          progress = true;
          if (j < i) --i;  // erasing below i shifted our slot down
        } else {
          ++j;
        }
      }
    }
  }
  return std::move(combiner).take();
}

}  // namespace scanc::tcomp
