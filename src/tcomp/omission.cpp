#include "tcomp/omission.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

namespace scanc::tcomp {

using fault::FaultClassId;
using fault::FaultSet;
using fault::FaultSimulator;
using sim::Sequence;

namespace {

/// Sentinel "first detection" for faults detected only at scan-out: any
/// omission can disturb them, so they join every trial.
constexpr std::int64_t kScanOutOnly = std::numeric_limits<std::int64_t>::max();

}  // namespace

OmissionResult omit_vectors(FaultSimulator& fsim, const ScanTest& test,
                            const FaultSet& required,
                            const OmissionOptions& options) {
  OmissionResult result;
  result.test = test;
  if (test.seq.length() <= 1 || required.none()) return result;

  // Fault order and first-detection times for the current sequence.
  const auto times = fsim.prefix_detection(test.scan_in, test.seq, required);
  assert(times.all_detected());
  const std::size_t nf = times.targets.size();
  std::vector<std::int64_t> first_det(nf);
  for (std::size_t k = 0; k < nf; ++k) {
    first_det[k] =
        times.first_po[k] >= 0 ? times.first_po[k] : kScanOutOnly;
  }

  std::size_t budget =
      options.budget_factor == 0
          ? std::numeric_limits<std::size_t>::max()
          : options.budget_factor * test.seq.length();

  std::size_t block = options.initial_block;
  if (block == 0) {
    block = std::clamp<std::size_t>(test.seq.length() / 64, 1, 32);
  }

  for (; block >= 1; block = (block == 1 ? 0 : block / 2)) {
    for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
      std::size_t removed_this_pass = 0;
      // Sweep block start positions from the tail toward the front.
      std::size_t u = result.test.seq.length();
      while (u > 0 && budget > 0) {
        u = (u > block) ? u - block : 0;
        const std::size_t len = result.test.seq.length();
        if (len <= 1) break;
        const std::size_t width = std::min(block, len - u);
        if (width == len) break;  // never empty the sequence

        // Faults whose detection might depend on frames >= u.
        FaultSet affected(fsim.num_classes());
        bool any = false;
        for (std::size_t k = 0; k < nf; ++k) {
          if (first_det[k] >= static_cast<std::int64_t>(u)) {
            affected.set(times.targets[k]);
            any = true;
          }
        }
        const auto erase_block = [&](Sequence& seq) {
          seq.frames.erase(
              seq.frames.begin() + static_cast<std::ptrdiff_t>(u),
              seq.frames.begin() + static_cast<std::ptrdiff_t>(u + width));
        };
        if (!any) {
          // Every detection settles strictly before u and no fault
          // relies on the scan-out: the block is dead weight.
          erase_block(result.test.seq);
          result.omitted += width;
          removed_this_pass += width;
          continue;
        }

        Sequence candidate = result.test.seq;
        erase_block(candidate);
        budget -= std::min(budget, candidate.length());
        const auto trial =
            fsim.prefix_detection(result.test.scan_in, candidate, affected);
        if (!trial.all_detected()) continue;

        // Accept: install the shorter sequence and refresh the detection
        // times of the re-simulated faults (faults detected before u are
        // untouched by construction).
        result.test.seq = std::move(candidate);
        result.omitted += width;
        removed_this_pass += width;
        std::size_t t = 0;
        for (std::size_t k = 0; k < nf; ++k) {
          if (first_det[k] < static_cast<std::int64_t>(u)) continue;
          // FaultSimulator::collect orders every target list by the
          // same fixed (pack rank, class id) key, so trial.targets
          // enumerates `affected` in the relative order of
          // times.targets.
          assert(t < trial.targets.size());
          assert(trial.targets[t] == times.targets[k]);
          first_det[k] = trial.first_po[t] >= 0 ? trial.first_po[t]
                                                : kScanOutOnly;
          ++t;
        }
      }
      if (removed_this_pass == 0 || budget == 0) break;
    }
    if (budget == 0) break;
  }
  return result;
}

}  // namespace scanc::tcomp
