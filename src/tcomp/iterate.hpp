// Iterative application of Phases 1 and 2 (Section 3.3).
//
// Starting from T0, each iteration re-selects a scan-in state for the
// current compacted sequence, re-selects the scan-out time, and omits
// vectors.  Combinational tests that provided a scan-in state are marked
// "selected"; the iteration terminates when the best candidate is one
// that was already selected (unselected candidates win ties), or after
// |C| iterations.  The result is the single long test tau_seq.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "atpg/comb_tset.hpp"
#include "fault/fault_sim.hpp"
#include "tcomp/omission.hpp"
#include "tcomp/phase1.hpp"
#include "tcomp/restoration.hpp"
#include "util/cancel.hpp"

namespace scanc::tcomp {

/// Which static sequence-compaction engine implements Phase 2.
enum class Phase2Method : std::uint8_t {
  Omission,     ///< [8]-style vector omission (paper default)
  Restoration,  ///< [11]-style vector restoration
};

struct IterateOptions {
  Phase1Options phase1;
  OmissionOptions omission;
  RestorationOptions restoration;
  Phase2Method phase2_method = Phase2Method::Omission;
  bool apply_omission = true;  ///< ablation: disable Phase 2
  bool iterate = true;         ///< ablation: single pass of Phases 1-2
  /// Cap on Phase 1+2 rounds (0 = the paper's bound of |C|).  In
  /// practice coverage and length settle within a few rounds; the cap
  /// bounds runtime on large circuits where |C| is big.
  std::size_t max_iterations = 4;
  /// Stop early when a round neither detects more faults nor shortens
  /// the sequence.
  bool stop_on_no_progress = true;
  /// Cooperative cancellation: checked before each round and after each
  /// phase step.  A round interrupted mid-flight is *discarded* (its
  /// fault-simulation results are partial) and the best complete round
  /// so far is returned, flagged via IterateResult::stopped.
  util::CancelToken cancel;
  /// Optional progress callback (step names, for logging).
  std::function<void(const char*)> trace;
};

/// Trace of one iteration, for diagnostics and tests.
struct IterationRecord {
  std::size_t candidate = 0;       ///< scan-in source index in C
  std::size_t detected = 0;        ///< |F_C| after the iteration
  std::size_t sequence_length = 0; ///< |T_C| after the iteration
  std::size_t omitted = 0;
};

struct IterateResult {
  ScanTest tau_seq;          ///< final (SI_seq, T_seq)
  fault::FaultSet f_seq;     ///< faults detected by tau_seq
  fault::FaultSet f0;        ///< faults detected by the original T0 alone
  std::vector<IterationRecord> iterations;
  /// True when tau_seq/f_seq hold a complete round's result (false only
  /// when cancellation struck before any round finished).
  bool tau_valid = false;
  /// True when cancellation cut the iteration short; tau_seq is then the
  /// best *complete* round seen before the cut.
  bool stopped = false;
};

[[nodiscard]] IterateResult iterate_phases(
    fault::FaultSimulator& fsim, const sim::Sequence& t0,
    std::span<const atpg::CombTest> comb, const IterateOptions& options = {});

}  // namespace scanc::tcomp
