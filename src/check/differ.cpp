#include "check/differ.hpp"

#include <memory>
#include <sstream>
#include <utility>

#include "atpg/comb_tset.hpp"
#include "atpg/podem.hpp"
#include "atpg/sat_backend.hpp"
#include "check/oracle_sim.hpp"
#include "fault/fault_sim.hpp"
#include "fault/model.hpp"
#include "sim/seq_sim.hpp"
#include "tcomp/omission.hpp"
#include "util/cancel.hpp"
#include "util/telemetry.hpp"

namespace scanc::check {

using fault::FaultClassId;
using fault::FaultSet;
using fault::FaultSimulator;
using fault::KernelMode;
using sim::Sequence;
using sim::V3;
using sim::Vector3;

namespace {

struct Config {
  const char* name;
  KernelMode kernel;
  std::size_t threads;
  bool fresh_per_query;  ///< new simulator per query: every trace misses
  sim::LaneWidth lanes = sim::LaneWidth::W64;
};

/// First few elements of the symmetric difference, for messages.
std::string describe_diff(const FaultSet& a, const FaultSet& b) {
  std::ostringstream os;
  std::size_t shown = 0;
  for (std::size_t i = 0; i < a.size() && shown < 8; ++i) {
    if (a.test(i) == b.test(i)) continue;
    os << (shown == 0 ? "" : " ") << (a.test(i) ? "-" : "+") << i;
    ++shown;
  }
  return os.str();
}

class CaseChecker {
 public:
  CaseChecker(const Workload& w, const CheckConfig& cfg)
      : w_(&w),
        cfg_(&cfg),
        targets_(w.target_set()),
        ref_(w.circuit, w.faults, w.scan_mask),
        watchdog_(cfg.max_case_seconds > 0.0
                      ? util::CancelToken::make(
                            util::Deadline::after(cfg.max_case_seconds))
                      : util::CancelToken{}) {
    ref_.set_kernel(KernelMode::Full);
    // The reference stays on the scalar 64-bit kernels: every wide or
    // pattern-parallel result is judged against it.
    ref_.set_lane_width(sim::LaneWidth::W64);
    configs_ = {
        Config{"full/N", KernelMode::Full, cfg.threads, false},
        Config{"cone/cold", KernelMode::Cone, 1, true},
        Config{"cone/warm", KernelMode::Cone, 1, false},
        Config{"cone/N", KernelMode::Cone, cfg.threads, false},
        Config{"auto/warm", KernelMode::Auto, 1, false},
        Config{"full/wide", KernelMode::Full, 1, false, cfg.lane_width},
        Config{"full/wide/N", KernelMode::Full, cfg.threads, false,
               cfg.lane_width},
    };
    for (const Config& c : configs_) {
      shared_.push_back(c.fresh_per_query ? nullptr : make_sim(c));
    }
  }

  CaseReport run() {
    for (std::size_t i = 0; i < w_->tests.size() && !cut(); ++i) {
      check_scan_test(i);
    }
    if (!cut()) check_no_scan();
    if (!cut()) check_batch();
    if (cfg_->atpg != AtpgCheck::Off && !cut()) check_atpg();
    if (cfg_->run_metamorphic && !cut()) {
      check_session_resume();
      check_cycles();
    }
    if (cut()) {
      report_.timed_out = true;
      obs::add(obs::Counter::CheckCaseTimeouts);
    }
    obs::add(obs::Counter::CheckCasesRun);
    obs::add(obs::Counter::CheckQueriesCompared, report_.comparisons);
    if (report_.failed()) {
      obs::add(obs::Counter::CheckDivergences, report_.divergences.size());
    }
    return std::move(report_);
  }

 private:
  std::unique_ptr<FaultSimulator> make_sim(const Config& c) const {
    auto s = std::make_unique<FaultSimulator>(w_->circuit, w_->faults,
                                              w_->scan_mask);
    s->set_kernel(c.kernel);
    s->set_num_threads(c.threads);
    s->set_lane_width(c.lanes);
    return s;
  }

  /// True once the per-case watchdog fired.  Polled at comparison
  /// boundaries; a cut case skips remaining checks (timed_out, never a
  /// divergence), so verdicts recorded before the cut stay valid.
  [[nodiscard]] bool cut() const { return watchdog_.stop_requested(); }

  /// Runs `fn` on every non-reference configuration's simulator.
  template <typename Fn>
  void for_each_config(Fn&& fn) {
    for (std::size_t i = 0; i < configs_.size() && !cut(); ++i) {
      if (configs_[i].fresh_per_query) {
        auto s = make_sim(configs_[i]);
        fn(configs_[i].name, *s);
      } else {
        fn(configs_[i].name, *shared_[i]);
      }
    }
  }

  void fail(const std::string& where, const std::string& what) {
    std::ostringstream os;
    os << "seed=" << w_->seed << " " << where << ": " << what;
    report_.divergences.push_back(os.str());
  }

  bool expect_sets_equal(const std::string& where, const FaultSet& want,
                         const FaultSet& got) {
    ++report_.comparisons;
    if (want == got) return true;
    fail(where, "fault sets differ [" + describe_diff(want, got) + "]");
    return false;
  }

  void expect_true(const std::string& where, bool ok,
                   const char* what) {
    ++report_.comparisons;
    if (!ok) fail(where, what);
  }

  void check_scan_test(std::size_t ti) {
    const tcomp::ScanTest& test = w_->tests[ti];
    const Sequence& seq = test.seq;
    const std::size_t len = seq.length();
    const std::string tag = "test=" + std::to_string(ti);

    const FaultSet base = ref_.detect_scan_test(test.scan_in, seq, &targets_);
    const auto times = ref_.detection_times(test.scan_in, seq, targets_);
    const auto prefix = ref_.prefix_detection(test.scan_in, seq, targets_);

    for_each_config([&](const char* name, FaultSimulator& s) {
      const std::string where = tag + " cfg=" + name;
      expect_sets_equal(where + " detect_scan_test",
                        base, s.detect_scan_test(test.scan_in, seq,
                                                 &targets_));
      const auto t2 = s.detection_times(test.scan_in, seq, targets_);
      expect_true(where + " detection_times", t2.targets == times.targets,
                  "target order differs");
      expect_true(where + " detection_times",
                  t2.first_po == times.first_po, "first_po differs");
      expect_true(where + " detection_times",
                  t2.state_diff == times.state_diff, "state_diff differs");
      const auto p2 = s.prefix_detection(test.scan_in, seq, targets_);
      expect_true(where + " prefix_detection",
                  p2.targets == prefix.targets &&
                      p2.first_po == prefix.first_po &&
                      p2.detected == prefix.detected,
                  "prefix_detection differs");
    });

    // Coherence between the three views of the same test.
    for (std::size_t j = 0; j < times.targets.size(); ++j) {
      const FaultClassId f = times.targets[j];
      const bool full_detects =
          len > 0 ? times.detected_by_prefix(j, len - 1) : false;
      expect_true(tag + " detect-vs-times",
                  base.test(f) == full_detects,
                  "detect_scan_test disagrees with detection_times");
      expect_true(tag + " prefix-vs-times",
                  prefix.first_po[j] == times.first_po[j],
                  "prefix_detection first_po disagrees");
      expect_true(tag + " prefix-vs-detect",
                  prefix.detected.test(f) == base.test(f),
                  "prefix_detection detected disagrees");
    }

    if (cut()) return;
    check_detects_all(tag, test, base);
    if (cut()) return;
    check_consistency(tag, test, base);
    if (cfg_->run_oracle && !cut()) check_oracle(tag, test, base, times);
    if (cfg_->run_metamorphic && len >= 1 && !cut()) {
      check_prefix_property(tag, test, times);
    }
    if (cfg_->run_metamorphic && len >= 2 && base.count() > 0 && !cut()) {
      check_omission(tag, test, base);
    }
  }

  void check_detects_all(const std::string& tag,
                         const tcomp::ScanTest& test, const FaultSet& base) {
    expect_true(tag + " detects_all(detected)",
                ref_.detects_all(test.scan_in, test.seq, base),
                "claimed detected set not fully detected");
    // Adding any undetected target must flip the answer.
    FaultClassId miss = 0;
    bool have_miss = false;
    targets_.for_each([&](std::size_t i) {
      if (!have_miss && !base.test(i)) {
        miss = static_cast<FaultClassId>(i);
        have_miss = true;
      }
    });
    if (have_miss) {
      FaultSet plus = base;
      plus.set(miss);
      expect_true(tag + " detects_all(+undetected)",
                  !ref_.detects_all(test.scan_in, test.seq, plus),
                  "undetected fault reported detected");
      for_each_config([&](const char* name, FaultSimulator& s) {
        expect_true(tag + " cfg=" + name + " detects_all",
                    s.detects_all(test.scan_in, test.seq, base) &&
                        !s.detects_all(test.scan_in, test.seq, plus),
                    "detects_all disagrees with reference");
      });
    }
  }

  void check_consistency(const std::string& tag, const tcomp::ScanTest& test,
                         const FaultSet& base) {
    // Observe the fault-free machine: every undetected fault is
    // consistent with it, every detected fault is not — the conservative
    // mismatch rule is exactly the conservative detection rule.
    Vector3 masked = test.scan_in;
    for (std::size_t i = 0; i < masked.size(); ++i) {
      if (!w_->scan_mask.test(i)) masked[i] = V3::X;
    }
    const sim::Trace trace =
        sim::simulate_fault_free(w_->circuit, &masked, test.seq);
    const Vector3& scan_out =
        trace.states.empty() ? masked : trace.states.back();
    FaultSet want = targets_;
    want -= base;
    const FaultSet got = ref_.consistent_faults(
        test.scan_in, test.seq, trace.po_frames, scan_out, targets_);
    expect_sets_equal(tag + " consistent_faults(fault-free)", want, got);
    for_each_config([&](const char* name, FaultSimulator& s) {
      expect_sets_equal(
          tag + " cfg=" + std::string(name) + " consistent_faults", got,
          s.consistent_faults(test.scan_in, test.seq, trace.po_frames,
                              scan_out, targets_));
    });
  }

  void check_oracle(const std::string& tag, const tcomp::ScanTest& test,
                    const FaultSet& base,
                    const FaultSimulator::DetectionTimes& times) {
    const std::size_t len = test.seq.length();
    std::size_t checked = 0;
    for (std::size_t j = 0; j < times.targets.size(); ++j) {
      if (checked >= cfg_->oracle_fault_cap || cut()) break;
      ++checked;
      const FaultClassId f = times.targets[j];
      const fault::Fault& rep = w_->faults.representative(f);
      const OracleResult o =
          oracle_run(w_->circuit, w_->scan_mask, w_->faults.model(), rep,
                     &test.scan_in, test.seq, /*observe_scan_out=*/true);
      const std::string where =
          tag + " oracle class=" + std::to_string(f);
      expect_true(where, o.detected == base.test(f),
                  "oracle disagrees on detection");
      expect_true(where, o.first_po == times.first_po[j],
                  "oracle disagrees on first_po");
      bool sd_ok = true;
      for (std::size_t u = 0; u < len; ++u) {
        if ((o.state_diff[u] != 0) != times.state_diff[j].test(u)) {
          sd_ok = false;
        }
      }
      expect_true(where, sd_ok, "oracle disagrees on state_diff");
      // Feed the oracle's faulty response back as an "observed defective
      // chip": the injected fault itself must stay consistent.
      if (checked <= 8) {
        const OracleResponse resp =
            oracle_response(w_->circuit, w_->scan_mask, w_->faults.model(),
                            rep, test.scan_in, test.seq);
        const FaultSet cons = ref_.consistent_faults(
            test.scan_in, test.seq, resp.po_frames, resp.scan_out,
            targets_);
        expect_true(where + " response", cons.test(f),
                    "true culprit excluded from consistent set");
      }
    }
  }

  void check_prefix_property(const std::string& tag,
                             const tcomp::ScanTest& test,
                             const FaultSimulator::DetectionTimes& times) {
    const std::size_t len = test.seq.length();
    std::uint64_t mix = w_->seed ^ (0x9e3779b97f4a7c15ULL * (len + 1));
    const std::size_t u = util::splitmix64(mix) % len;
    const Sequence pref = test.seq.subsequence(0, u);
    const FaultSet got =
        ref_.detect_scan_test(test.scan_in, pref, &targets_);
    FaultSet want(w_->faults.num_classes());
    for (std::size_t j = 0; j < times.targets.size(); ++j) {
      if (times.detected_by_prefix(j, u)) want.set(times.targets[j]);
    }
    expect_sets_equal(tag + " prefix(u=" + std::to_string(u) + ")", want,
                      got);
  }

  void check_omission(const std::string& tag, const tcomp::ScanTest& test,
                      const FaultSet& base) {
    const tcomp::OmissionResult r = tcomp::omit_vectors(ref_, test, base);
    expect_true(tag + " omission length",
                r.test.seq.length() + r.omitted == test.seq.length(),
                "omission length accounting broken");
    expect_true(tag + " omission coverage(ref)",
                ref_.detects_all(r.test.scan_in, r.test.seq, base),
                "omission lost a required fault (full kernel)");
    // Cross-kernel: the omission was accepted by the reference; the cone
    // kernel must agree the compacted test still covers F_SO.
    for_each_config([&](const char* name, FaultSimulator& s) {
      expect_true(tag + " cfg=" + std::string(name) + " omission coverage",
                  s.detects_all(r.test.scan_in, r.test.seq, base),
                  "omitted test coverage disagrees across kernels");
    });
  }

  /// SAT ATPG laws (docs/atpg.md).  The backend runs with an unbounded
  /// conflict budget so it is complete on these tiny workloads: Aborted
  /// can only mean the case watchdog cancelled a solve, and such faults
  /// are skipped, never judged.
  void check_atpg() {
    atpg::SatBackendOptions so;
    so.scan_mask = w_->scan_mask;
    so.conflict_limit = 0;
    so.cancel = watchdog_;
    atpg::SatBackend sat(w_->circuit, so);
    atpg::PodemOptions po;
    po.scan_mask = w_->scan_mask;
    atpg::Podem podem(w_->circuit, po);
    const bool stuck =
        w_->faults.model().kind() == fault::FaultModelKind::StuckAt;
    util::Rng rng(w_->seed ^ 0x5a7ba0cedc0de5ULL);

    FaultSet proven(w_->faults.num_classes());
    std::size_t checked = 0;
    targets_.for_each([&](std::size_t i) {
      if (checked >= cfg_->atpg_fault_cap || cut()) return;
      ++checked;
      const auto id = static_cast<FaultClassId>(i);
      const fault::Fault& rep = w_->faults.representative(id);
      const std::string where = "atpg class=" + std::to_string(i);
      if (stuck) {
        const atpg::PodemResult s = sat.generate(rep);
        if (s.status == atpg::PodemStatus::Aborted) return;  // watchdog
        // Two complete-or-honest engines may never disagree on a
        // definite verdict (PODEM's abort is the honest "don't know").
        const atpg::PodemResult p = podem.generate(rep);
        if (p.status != atpg::PodemStatus::Aborted) {
          expect_true(where + " podem-vs-sat",
                      (s.status == atpg::PodemStatus::Detected) ==
                          (p.status == atpg::PodemStatus::Detected),
                      "definite PODEM and SAT verdicts disagree");
        }
        if (s.status == atpg::PodemStatus::Untestable) {
          proven.set(i);
        } else {
          confirm_comb_cube(where + " sat-cube", id, s.cube, rng);
        }
      } else {
        const atpg::TransitionTest t = sat.generate_transition(rep);
        if (t.status == atpg::PodemStatus::Aborted) return;  // watchdog
        if (t.status == atpg::PodemStatus::Untestable) {
          proven.set(i);
        } else {
          confirm_transition_test(where + " sat-tdf", id, t, rng);
        }
      }
    });

    // Proofs are final: no scan test of the encoding's shape (one frame
    // for stuck-at, two for transition — exact under any scan mask) may
    // detect a proven-untestable fault.  Judge the workload's own tests
    // of that shape plus fresh fully-specified random ones.
    const std::size_t shape = stuck ? 1 : 2;
    if (proven.count() > 0) {
      for (std::size_t ti = 0; ti < w_->tests.size() && !cut(); ++ti) {
        const tcomp::ScanTest& t = w_->tests[ti];
        if (t.seq.length() != shape) continue;
        expect_true("atpg proof-vs-test=" + std::to_string(ti),
                    ref_.detect_scan_test(t.scan_in, t.seq, &proven)
                            .count() == 0,
                    "workload test detects a SAT-proven-untestable fault");
      }
      for (int t = 0; t < 16 && !cut(); ++t) {
        const sim::Vector3 state =
            sim::random_vector(w_->circuit.num_flip_flops(), rng);
        Sequence seq;
        for (std::size_t u = 0; u < shape; ++u) {
          seq.frames.push_back(
              sim::random_vector(w_->circuit.num_inputs(), rng));
        }
        expect_true("atpg proof-vs-random=" + std::to_string(t),
                    ref_.detect_scan_test(state, seq, &proven).count() == 0,
                    "random test detects a SAT-proven-untestable fault");
      }
    }

    // End-to-end --atpg=auto law: the comb generator under the Auto
    // backend leaves no fault unresolved and accounts for every class.
    if (cfg_->atpg == AtpgCheck::Auto && stuck && !cut()) {
      atpg::CombTestSetOptions copt;
      copt.podem.scan_mask = w_->scan_mask;
      copt.backend = atpg::AtpgBackend::Auto;
      copt.sat.conflict_limit = 0;
      copt.cancel = watchdog_;
      const atpg::CombTestSet comb =
          atpg::generate_comb_test_set(w_->circuit, w_->faults, copt);
      if (!cut()) {
        expect_true("atpg auto aborts", comb.aborted == 0,
                    "auto backend left aborted faults");
        expect_true("atpg auto accounting",
                    comb.detected.count() + comb.proven_untestable ==
                        w_->faults.num_classes(),
                    "auto backend class accounting broken");
        expect_true("atpg auto untestable-set",
                    comb.untestable.count() == comb.proven_untestable,
                    "untestable set disagrees with its count");
      }
    }
  }

  /// A Detected stuck-at cube, random-filled respecting the scan mask,
  /// must detect its fault as a single-frame scan test.
  void confirm_comb_cube(const std::string& where, FaultClassId id,
                         const atpg::TestCube& cube, util::Rng& rng) {
    sim::Vector3 state = cube.state;
    sim::Vector3 inputs = cube.inputs;
    sim::randomize_x(inputs, rng);
    for (std::size_t b = 0; b < state.size(); ++b) {
      if (!w_->scan_mask.test(b)) {
        state[b] = V3::X;  // unscanned: unknowable at test start
      } else if (state[b] == V3::X) {
        state[b] = sim::v3_from_bool(rng.coin());
      }
    }
    Sequence seq;
    seq.frames.push_back(inputs);
    FaultSet one(w_->faults.num_classes());
    one.set(id);
    expect_true(where, ref_.detect_scan_test(state, seq, &one).test(id),
                "SAT test cube fails to detect its fault");
  }

  /// Same confirmation for a two-frame transition-delay test.
  void confirm_transition_test(const std::string& where, FaultClassId id,
                               const atpg::TransitionTest& t,
                               util::Rng& rng) {
    sim::Vector3 state = t.state;
    for (std::size_t b = 0; b < state.size(); ++b) {
      if (!w_->scan_mask.test(b)) {
        state[b] = V3::X;
      } else if (state[b] == V3::X) {
        state[b] = sim::v3_from_bool(rng.coin());
      }
    }
    Sequence seq = t.seq;
    for (Vector3& frame : seq.frames) sim::randomize_x(frame, rng);
    FaultSet one(w_->faults.num_classes());
    one.set(id);
    expect_true(where, ref_.detect_scan_test(state, seq, &one).test(id),
                "SAT transition test fails to detect its fault");
  }

  void check_no_scan() {
    const FaultSet base = ref_.detect_no_scan(w_->no_scan_seq, &targets_);
    for_each_config([&](const char* name, FaultSimulator& s) {
      expect_sets_equal(std::string("no_scan cfg=") + name, base,
                        s.detect_no_scan(w_->no_scan_seq, &targets_));
    });
    if (cfg_->run_oracle) {
      std::size_t checked = 0;
      targets_.for_each([&](std::size_t i) {
        if (checked >= cfg_->oracle_fault_cap || cut()) return;
        ++checked;
        const auto f = static_cast<FaultClassId>(i);
        const OracleResult o = oracle_run(
            w_->circuit, w_->scan_mask, w_->faults.model(),
            w_->faults.representative(f), nullptr, w_->no_scan_seq,
            /*observe_scan_out=*/false);
        expect_true("no_scan oracle class=" + std::to_string(i),
                    o.detected == base.test(f),
                    "oracle disagrees on no-scan detection");
      });
    }
    no_scan_base_ = base;
  }

  void check_batch() {
    // Pattern-parallel batch queries against the per-test scalar
    // answers, at every distinct lane width: W64 exercises the per-test
    // fallback inside detect_batch/times_batch, the wide widths the
    // packed PPSFP engine (intrinsic where the CPU has it, portable
    // wide words otherwise — both must be bit-identical).
    if (w_->tests.empty()) return;
    std::vector<FaultSimulator::BatchTest> batch(w_->tests.size());
    std::vector<FaultSet> base;
    std::vector<FaultSimulator::DetectionTimes> base_times;
    base.reserve(batch.size());
    base_times.reserve(batch.size());
    for (std::size_t i = 0; i < w_->tests.size(); ++i) {
      const tcomp::ScanTest& t = w_->tests[i];
      batch[i] = {&t.scan_in, &t.seq};
      base.push_back(ref_.detect_scan_test(t.scan_in, t.seq, &targets_));
      base_times.push_back(ref_.detection_times(t.scan_in, t.seq, targets_));
    }

    // Ragged no-scan batch: the full sequence, a prefix, and an empty
    // sequence share one pass (no-scan tests pack like scan tests, with
    // lanes of different lengths going idle at different frames).
    std::vector<Sequence> ns_seqs;
    ns_seqs.push_back(w_->no_scan_seq);
    if (w_->no_scan_seq.length() >= 2) {
      ns_seqs.push_back(
          w_->no_scan_seq.subsequence(0, w_->no_scan_seq.length() / 2 - 1));
    }
    ns_seqs.emplace_back();
    std::vector<FaultSimulator::BatchTest> ns_batch(ns_seqs.size());
    std::vector<FaultSet> ns_base;
    ns_base.reserve(ns_seqs.size());
    for (std::size_t i = 0; i < ns_seqs.size(); ++i) {
      ns_batch[i] = {nullptr, &ns_seqs[i]};
      ns_base.push_back(ref_.detect_no_scan(ns_seqs[i], &targets_));
    }

    std::vector<sim::LaneWidth> widths = {
        sim::LaneWidth::W64, sim::LaneWidth::W256, sim::LaneWidth::W512};
    bool dup = false;
    for (const sim::LaneWidth lw : widths) {
      dup = dup || sim::resolve_simd(lw) == sim::resolve_simd(cfg_->lane_width);
    }
    if (!dup) widths.push_back(cfg_->lane_width);

    for (const sim::LaneWidth lw : widths) {
      if (cut()) return;
      FaultSimulator s(w_->circuit, w_->faults, w_->scan_mask);
      s.set_lane_width(lw);
      const std::string where =
          std::string("batch lw=") + sim::lane_width_name(lw);
      const std::vector<FaultSet> det = s.detect_batch(batch, &targets_);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        expect_sets_equal(where + " detect test=" + std::to_string(i),
                          base[i], det[i]);
      }
      if (cut()) return;
      const auto times = s.times_batch(batch, targets_);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const std::string tw = where + " times test=" + std::to_string(i);
        expect_true(tw, times[i].targets == base_times[i].targets,
                    "target order differs");
        expect_true(tw, times[i].first_po == base_times[i].first_po,
                    "first_po differs");
        expect_true(tw, times[i].state_diff == base_times[i].state_diff,
                    "state_diff differs");
      }
      if (cut()) return;
      const std::vector<FaultSet> nsd = s.detect_batch(ns_batch, &targets_);
      for (std::size_t i = 0; i < ns_batch.size(); ++i) {
        expect_sets_equal(where + " no_scan test=" + std::to_string(i),
                          ns_base[i], nsd[i]);
      }
    }
  }

  void check_session_resume() {
    // An interrupted-and-restored session must re-derive exactly what
    // the uninterrupted run derives (resume == uninterrupted), and both
    // must equal the one-shot detect_no_scan answer.
    const Sequence& seq = w_->no_scan_seq;
    FaultSimulator::Session straight(ref_, targets_);
    for (const Vector3& pi : seq.frames) straight.step(pi);
    expect_sets_equal("session straight", no_scan_base_,
                      straight.detected());

    if (seq.length() < 2) return;
    const std::size_t cut = seq.length() / 2;
    FaultSimulator::Session s(ref_, targets_);
    for (std::size_t t = 0; t < cut; ++t) s.step(seq.frames[t]);
    const auto snap = s.snapshot();
    for (std::size_t t = cut; t < seq.length(); ++t) s.step(seq.frames[t]);
    const FaultSet first = s.detected();
    s.restore(snap);
    for (std::size_t t = cut; t < seq.length(); ++t) s.step(seq.frames[t]);
    expect_sets_equal("session resume", first, s.detected());
    expect_sets_equal("session resume vs no_scan", no_scan_base_, first);
  }

  void check_cycles() {
    tcomp::ScanTestSet set;
    set.tests = w_->tests;
    const std::size_t nsv[] = {ref_.num_scanned(),
                               w_->circuit.num_flip_flops()};
    for (const std::size_t n : nsv) {
      for (const std::size_t chains : {std::size_t{0}, std::size_t{1},
                                       std::size_t{2}, std::size_t{3},
                                       std::size_t{7}}) {
        // First-principles recomputation of the paper's formula:
        // (k+1) scan operations of ceil(N_SV/chains) cycles each plus
        // one functional cycle per applied vector; an empty set is free.
        std::uint64_t want = 0;
        if (!set.empty()) {
          const std::size_t shift =
              chains <= 1 ? n : (n + chains - 1) / chains;
          want = (static_cast<std::uint64_t>(set.size()) + 1) * shift;
          for (const tcomp::ScanTest& t : set.tests) {
            want += t.seq.length();
          }
        }
        const std::uint64_t got =
            chains == 1 ? tcomp::clock_cycles(set, n)
                        : tcomp::clock_cycles(set, n, chains);
        expect_true("n_cyc nsv=" + std::to_string(n) +
                        " chains=" + std::to_string(chains),
                    got == want, "clock_cycles mismatch");
      }
    }
  }

  const Workload* w_;
  const CheckConfig* cfg_;
  FaultSet targets_;
  FaultSimulator ref_;
  util::CancelToken watchdog_;  ///< inert unless max_case_seconds > 0
  std::vector<Config> configs_;
  std::vector<std::unique_ptr<FaultSimulator>> shared_;
  FaultSet no_scan_base_;
  CaseReport report_;
};

}  // namespace

CaseReport check_case(const Workload& w, const CheckConfig& cfg) {
  CaseChecker checker(w, cfg);
  return checker.run();
}

}  // namespace scanc::check
