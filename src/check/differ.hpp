// Differential + metamorphic checking of one fuzz workload.
//
// Every FaultSimulator query is executed under a matrix of
// configurations that must be bit-identical by contract:
//
//   reference   KernelMode::Full, 1 thread, 64-bit lanes, fresh simulator
//   full/N      KernelMode::Full, N threads, shared simulator
//   cone/cold   KernelMode::Cone, 1 thread, fresh simulator per query
//               (every trace is a cache miss)
//   cone/warm   KernelMode::Cone, 1 thread, one simulator for the whole
//               case (exercises cache hits, in-place extension,
//               copy-on-write, partial prefix reuse)
//   cone/N      KernelMode::Cone, N threads, shared simulator
//   auto/warm   KernelMode::Auto, 1 thread, shared simulator
//   full/wide   KernelMode::Full, 1 thread, CheckConfig::lane_width lanes
//               (the SIMD-or-portable wide fault-parallel engine)
//   full/wide/N KernelMode::Full, N threads, wide lanes
//
// and the pattern-parallel batch queries (check_batch): detect_batch /
// times_batch over all of the workload's scan tests plus a ragged
// no-scan batch, at every distinct lane width (64 = per-test fallback,
// 256/512 = packed PPSFP engine), each element compared against the
// scalar per-test reference answer,
//
// plus the scalar single-fault oracle (check/oracle_sim.hpp), and the
// metamorphic properties the paper's accounting guarantees:
//
//   - consistent_faults against the fault-free response is exactly the
//     complement of the detected set over the targets;
//   - prefix_detection and detection_times agree, and the prefix test
//     (SI, T[0,u]) detects exactly { f : first_po <= u or u in
//     state_diff[f] };
//   - PO detections of a prefix are a subset of the full test's
//     detections;
//   - detects_all is true on the detected set and false once any
//     undetected fault is added;
//   - omit_vectors preserves every required fault (checked on a
//     different kernel than the one that accepted the omission);
//   - N_cyc = (k+1)*ceil(N_SV/chains) + sum L(T_j), recomputed here
//     from first principles, matches tcomp::clock_cycles;
//   - a snapshot/restore'd Session re-detects exactly what the
//     uninterrupted run detects (resume == uninterrupted);
//   - with CheckConfig::atpg enabled, the SAT ATPG backend's verdicts
//     (docs/atpg.md): definite PODEM and SAT verdicts agree, every
//     SAT-generated cube detects its fault under the reference
//     simulator, no test of the encoding's shape (one frame for
//     stuck-at, two for transition) detects a SAT-proven-untestable
//     fault, and under Auto the comb generator resolves every fault.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "check/workload.hpp"
#include "sim/simd.hpp"

namespace scanc::check {

/// SAT ATPG cross-check mode (see the law list above).
enum class AtpgCheck : std::uint8_t {
  Off,  ///< skip the ATPG laws (default; the matrix is SAT-free)
  Sat,  ///< per-fault SAT verdict laws (agreement, cubes, proofs)
  Auto, ///< Sat laws plus the end-to-end --atpg=auto zero-abort law
};

struct CheckConfig {
  /// Worker threads for the parallel configurations (the N in 1-vs-N).
  std::size_t threads = 8;
  /// Maximum fault classes cross-checked against the oracle per test
  /// (the oracle is O(nodes * frames) per fault; cases are small, so
  /// the default covers every class on typical workloads).
  std::size_t oracle_fault_cap = 128;
  bool run_oracle = true;
  bool run_metamorphic = true;
  /// Lane width for the wide configurations (full/wide, full/wide/N)
  /// and the batch checks.  The reference always runs 64-bit scalar
  /// lanes; Auto picks the widest implementation this build + CPU has
  /// (portable wide words where intrinsics are missing, so the matrix
  /// is meaningful on any host).
  sim::LaneWidth lane_width = sim::LaneWidth::Auto;
  /// Per-case watchdog: a case still running after this many seconds is
  /// cut at the next comparison boundary and reported with timed_out
  /// set (obs.check_case_timeouts).  A timeout is NOT a divergence —
  /// comparisons completed before the cut keep their verdicts, the rest
  /// are skipped.  0 disables the watchdog.
  double max_case_seconds = 0.0;
  /// SAT ATPG cross-check (fuzz_check --atpg=off|sat|auto).  The check
  /// runs the backend with an unbounded conflict budget, so on fuzz-
  /// sized workloads every verdict is definite and each law is exact.
  AtpgCheck atpg = AtpgCheck::Off;
  /// Maximum fault classes put through the per-fault SAT laws per case.
  std::size_t atpg_fault_cap = 64;
};

/// Outcome of checking one workload.
struct CaseReport {
  std::vector<std::string> divergences;  ///< empty = case passed
  std::size_t comparisons = 0;           ///< individual equalities checked
  bool timed_out = false;  ///< cut by CheckConfig::max_case_seconds

  [[nodiscard]] bool failed() const noexcept { return !divergences.empty(); }
};

/// Runs the full comparison matrix on `w`.  Updates the obs.check.*
/// telemetry counters.
[[nodiscard]] CaseReport check_case(const Workload& w,
                                    const CheckConfig& cfg = {});

}  // namespace scanc::check
