// Slow, obviously-correct reference interpreter for single-fault
// sequential simulation — the oracle of the differential fuzzer.
//
// Deliberately independent of the production code paths: it walks
// Node::fanins in Circuit::topo_order() (not the CSR schedule), keeps
// one scalar V3 per node (not 64 packed slots), evaluates gates with a
// local accumulate-loop evaluator (not sim/packed.hpp), and simulates
// the fault-free and the faulty machine as two separate passes.  The
// only shared vocabulary is the V3 value type and the fault model:
//
//   - a stem fault (pin == kStemPin) forces the value every reader of
//     the node sees, including primary-output observation, but not the
//     value captured by a flip-flop (Q-side fault, PPO convention);
//   - a branch fault (pin >= 0) forces the value one specific fanin
//     pin reads; on a flip-flop's D pin it corrupts the capture itself
//     and is therefore scan-observable;
//   - detection is conservative: an observation point detects the
//     fault only when the fault-free and faulty values are both binary
//     and differ.
//
// Observation points are the primary outputs after every time unit
// and, for scan tests, the captured state (scanned flip-flops only)
// after each latch — oracle_run records, for every time unit u, whether
// scanning out after u would detect the fault, which is exactly the
// contract of FaultSimulator::detection_times.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "fault/model.hpp"
#include "netlist/circuit.hpp"
#include "sim/sequence.hpp"
#include "util/bitset.hpp"

namespace scanc::check {

/// Everything the oracle can say about one (fault, test) pair.
struct OracleResult {
  /// The complete test detects the fault (POs anywhere, or — for scan
  /// tests with observe_scan_out — the final scan-out).
  bool detected = false;
  /// Earliest time unit with a PO detection; -1 if never.
  std::int64_t first_po = -1;
  /// state_diff[u] != 0 iff scanning out after time unit u detects the
  /// fault.  Size = seq.length(); empty for no-scan runs.
  std::vector<std::uint8_t> state_diff;
};

/// Simulates `seq` for fault `f`.  With `scan_in` non-null the run is a
/// scan test: the state is loaded from `scan_in` (positions not in
/// `scan_mask` forced to X) and scan-out records are kept; with
/// `observe_scan_out` the final scan-out counts toward `detected`.
/// With `scan_in` null the run starts from the all-X state and only POs
/// observe (detect_no_scan semantics).
[[nodiscard]] OracleResult oracle_run(const netlist::Circuit& c,
                                      const util::Bitset& scan_mask,
                                      const fault::Fault& f,
                                      const sim::Vector3* scan_in,
                                      const sim::Sequence& seq,
                                      bool observe_scan_out);

/// Model-dispatching form: stuck-at delegates to the permanent-fault
/// interpreter above; a frame-gated model (transition-delay) runs the
/// launch/capture interpreter — the faulty machine exists only in frames
/// whose fault-free stem value transitions away from the stale value
/// (previous frame stale, current frame the opposite, both binary), is
/// rebuilt from the fault-free state entering each such frame with the
/// stem stuck at the stale value, and is observed at the POs of that
/// frame and (final frame only) the scan-out it captures.
[[nodiscard]] OracleResult oracle_run(const netlist::Circuit& c,
                                      const util::Bitset& scan_mask,
                                      const fault::FaultModel& model,
                                      const fault::Fault& f,
                                      const sim::Vector3* scan_in,
                                      const sim::Sequence& seq,
                                      bool observe_scan_out);

/// The faulty machine's response to a scan test: PO vectors after every
/// time unit and the captured scan-out state (full flip_flops() order;
/// unscanned positions reported as captured, callers mask as needed).
/// Used to feed consistent_faults with a "defective chip" observation.
struct OracleResponse {
  std::vector<sim::Vector3> po_frames;
  sim::Vector3 scan_out;
};

[[nodiscard]] OracleResponse oracle_response(const netlist::Circuit& c,
                                             const util::Bitset& scan_mask,
                                             const fault::Fault& f,
                                             const sim::Vector3& scan_in,
                                             const sim::Sequence& seq);

/// Model-dispatching form of oracle_response (see oracle_run): under a
/// frame-gated model inactive frames report the fault-free response.
[[nodiscard]] OracleResponse oracle_response(const netlist::Circuit& c,
                                             const util::Bitset& scan_mask,
                                             const fault::FaultModel& model,
                                             const fault::Fault& f,
                                             const sim::Vector3& scan_in,
                                             const sim::Sequence& seq);

}  // namespace scanc::check
