// fuzz_check — differential fuzzing driver.
//
//   fuzz_check [--seed=N] [--iters=N] [--time-budget=SECS] [--threads=N]
//              [--fault-model=stuck|transition] [--no-oracle]
//              [--atpg=off|sat|auto] [--lane-width=64|256|512|auto]
//              [--max-case-seconds=SECS] [--repro-out=PATH] [--quiet]
//
// Expands case seeds derived from --seed into workloads and runs each
// through the full comparison matrix (check/differ.hpp).  On the first
// failing case the workload is shrunk and a standalone repro is printed
// (and written to --repro-out if given); exit status 1.  A clean run
// prints one summary line and exits 0.  --time-budget stops cleanly
// after the given wall time even if --iters has not been reached (the
// CI smoke job runs a fixed seed set under a ~60 s budget).
// --max-case-seconds arms a per-case watchdog: a case that outlives it
// is cut at the next comparison boundary and counted as a timeout
// (obs.check_case_timeouts), never as a divergence — it protects a
// fixed budget from one pathologically slow workload.  --atpg adds the
// SAT ATPG laws (check/differ.hpp) on top of the simulator matrix.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "check/differ.hpp"
#include "check/shrink.hpp"
#include "check/workload.hpp"
#include "fault/model.hpp"
#include "sim/simd.hpp"
#include "util/rng.hpp"
#include "util/telemetry.hpp"

namespace {

struct Options {
  std::uint64_t seed = 1;
  std::uint64_t iters = 1000;
  double time_budget = 0.0;  // seconds; 0 = unlimited
  double max_case_seconds = 0.0;  // per-case watchdog; 0 = disabled
  std::size_t threads = 8;
  scanc::fault::FaultModelKind model = scanc::fault::FaultModelKind::StuckAt;
  scanc::sim::LaneWidth lane_width = scanc::sim::LaneWidth::Auto;
  scanc::check::AtpgCheck atpg = scanc::check::AtpgCheck::Off;
  bool oracle = true;
  bool quiet = false;
  std::string repro_out;
};

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end != nullptr && *end == '\0';
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      return a.c_str() + std::strlen(prefix);
    };
    std::uint64_t v = 0;
    if (a.rfind("--seed=", 0) == 0 && parse_u64(value("--seed="), v)) {
      opt.seed = v;
    } else if (a.rfind("--iters=", 0) == 0 &&
               parse_u64(value("--iters="), v)) {
      opt.iters = v;
    } else if (a.rfind("--time-budget=", 0) == 0) {
      opt.time_budget = std::strtod(value("--time-budget="), nullptr);
    } else if (a.rfind("--max-case-seconds=", 0) == 0) {
      opt.max_case_seconds =
          std::strtod(value("--max-case-seconds="), nullptr);
    } else if (a.rfind("--threads=", 0) == 0 &&
               parse_u64(value("--threads="), v)) {
      opt.threads = static_cast<std::size_t>(v);
    } else if (a.rfind("--fault-model=", 0) == 0) {
      const std::string m = value("--fault-model=");
      if (m == "stuck") {
        opt.model = scanc::fault::FaultModelKind::StuckAt;
      } else if (m == "transition") {
        opt.model = scanc::fault::FaultModelKind::Transition;
      } else {
        std::cerr << "fuzz_check: unknown fault model: " << m << "\n";
        return false;
      }
    } else if (a.rfind("--atpg=", 0) == 0) {
      const std::string m = value("--atpg=");
      if (m == "off") {
        opt.atpg = scanc::check::AtpgCheck::Off;
      } else if (m == "sat") {
        opt.atpg = scanc::check::AtpgCheck::Sat;
      } else if (m == "auto") {
        opt.atpg = scanc::check::AtpgCheck::Auto;
      } else {
        std::cerr << "fuzz_check: unknown atpg mode: " << m << "\n";
        return false;
      }
    } else if (a.rfind("--lane-width=", 0) == 0) {
      const auto lw = scanc::sim::parse_lane_width(value("--lane-width="));
      if (!lw) {
        std::cerr << "fuzz_check: unknown lane width: "
                  << value("--lane-width=") << "\n";
        return false;
      }
      opt.lane_width = *lw;
    } else if (a == "--no-oracle") {
      opt.oracle = false;
    } else if (a == "--quiet") {
      opt.quiet = true;
    } else if (a.rfind("--repro-out=", 0) == 0) {
      opt.repro_out = value("--repro-out=");
    } else {
      std::cerr << "fuzz_check: unknown argument: " << a << "\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;

  scanc::check::CheckConfig cfg;
  cfg.threads = opt.threads;
  cfg.run_oracle = opt.oracle;
  cfg.lane_width = opt.lane_width;
  cfg.max_case_seconds = opt.max_case_seconds;
  cfg.atpg = opt.atpg;

  const auto start = std::chrono::steady_clock::now();
  const auto elapsed = [&]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  std::uint64_t state = opt.seed;
  std::uint64_t cases = 0;
  std::uint64_t timeouts = 0;
  std::size_t comparisons = 0;
  for (std::uint64_t i = 0; i < opt.iters; ++i) {
    if (opt.time_budget > 0.0 && elapsed() >= opt.time_budget) break;
    const std::uint64_t case_seed = scanc::util::splitmix64(state);
    const scanc::check::Workload w = scanc::check::make_workload(
        case_seed, scanc::fault::FaultModel::get(opt.model));
    const scanc::check::CaseReport report = scanc::check::check_case(w, cfg);
    ++cases;
    comparisons += report.comparisons;
    if (report.timed_out) {
      ++timeouts;
      if (!opt.quiet) {
        std::cerr << "[fuzz_check] case seed=" << case_seed
                  << " cut by --max-case-seconds=" << opt.max_case_seconds
                  << " after " << report.comparisons << " comparisons\n";
      }
    }
    if (!opt.quiet && cases % 500 == 0) {
      std::cerr << "[fuzz_check] " << cases << " cases, " << comparisons
                << " comparisons, " << elapsed() << " s\n";
    }
    if (!report.failed()) continue;

    std::cerr << "[fuzz_check] case seed=" << case_seed << " (iteration "
              << i << " of --seed=" << opt.seed << ") FAILED with "
              << report.divergences.size() << " divergence(s); shrinking\n";
    const scanc::check::ShrinkResult shrunk =
        scanc::check::shrink_case(w, cfg);
    scanc::check::write_repro(std::cout, shrunk.workload, shrunk.report);
    if (!opt.repro_out.empty()) {
      std::ofstream f(opt.repro_out);
      if (f) {
        scanc::check::write_repro(f, shrunk.workload, shrunk.report);
        std::cerr << "[fuzz_check] repro written to " << opt.repro_out
                  << "\n";
      } else {
        std::cerr << "[fuzz_check] cannot write " << opt.repro_out << "\n";
      }
    }
    return 1;
  }

  std::cout << "fuzz_check: " << cases << " cases, " << comparisons
            << " comparisons, 0 divergences, " << timeouts << " timeouts ("
        <<  elapsed() << " s, seed=" << opt.seed
        << ", model=" << scanc::fault::FaultModel::get(opt.model).name()
        << ")\n";
  return 0;
}
