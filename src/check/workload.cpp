#include "check/workload.hpp"

#include <string>
#include <utility>

#include "gen/circuit_gen.hpp"

namespace scanc::check {

using netlist::Circuit;
using netlist::CircuitBuilder;
using netlist::GateType;
using sim::V3;
using sim::Vector3;
using util::Rng;

namespace {

/// A shift-register chain: one PI feeding ff0 -> ff1 -> ... -> ff{n-1},
/// each stage observed through an XOR tree onto the single PO.  Scan-path
/// faults on this shape exercise exactly the cone-kernel interaction the
/// fuzzer hunts: every injection site lies on the state path and every
/// flip-flop can start X.
Circuit make_chain_circuit(std::size_t stages, bool invert_stages) {
  CircuitBuilder b("fuzz_chain");
  b.add_input("pi0");
  std::string prev = "pi0";
  for (std::size_t i = 0; i < stages; ++i) {
    const std::string ff = "ff" + std::to_string(i);
    const std::string ns = "ns" + std::to_string(i);
    if (invert_stages) {
      b.add_gate(GateType::Not, ns, {std::string_view(prev)});
    } else {
      b.add_gate(GateType::Buf, ns, {std::string_view(prev)});
    }
    b.add_gate(GateType::Dff, ff, {std::string_view(ns)});
    prev = ff;
  }
  // Observe every stage, not just the tail, so mid-chain faults have a
  // combinational path out as well as the scan path.
  std::string acc = "ff0";
  for (std::size_t i = 1; i < stages; ++i) {
    const std::string x = "x" + std::to_string(i);
    const std::string ff = "ff" + std::to_string(i);
    b.add_gate(GateType::Xor, x, {std::string_view(acc), std::string_view(ff)});
    acc = x;
  }
  b.add_gate(GateType::Buf, "po0", {std::string_view(acc)});
  b.mark_output("po0");
  return b.build();
}

/// One PI stem fanning out into a wide single-level cone feeding both a
/// bank of flip-flops and the POs — branch faults on the shared stem get
/// union cones covering the whole circuit.
Circuit make_fanout_circuit(std::size_t width) {
  CircuitBuilder b("fuzz_fanout");
  b.add_input("pi0");
  b.add_input("pi1");
  for (std::size_t i = 0; i < width; ++i) {
    const std::string g = "g" + std::to_string(i);
    const std::string ff = "ff" + std::to_string(i);
    const std::string ns = "ns" + std::to_string(i);
    if (i % 2 == 0) {
      b.add_gate(GateType::And, g, {"pi0", "pi1"});
    } else {
      b.add_gate(GateType::Xor, g, {"pi0", std::string_view(ff)});
    }
    b.add_gate(GateType::Or, ns, {std::string_view(g), "pi0"});
    b.add_gate(GateType::Dff, ff, {std::string_view(ns)});
  }
  std::string acc = "g0";
  for (std::size_t i = 1; i < width; ++i) {
    const std::string x = "o" + std::to_string(i);
    const std::string g = "g" + std::to_string(i);
    b.add_gate(GateType::Xor, x, {std::string_view(acc), std::string_view(g)});
    acc = x;
  }
  b.add_gate(GateType::Buf, "po0", {std::string_view(acc)});
  b.mark_output("po0");
  return b.build();
}

/// A glitch-free constant cone: Const0/Const1 sources through BUF/NOT/
/// AND/OR logic whose every line holds a constant, plus one live PI/FF
/// pair XOR-mixed in at the PO so the circuit still has observable
/// activity.  No constant-cone site ever transitions, so under the
/// transition-delay model every fault in the cone must stay inactive
/// (activation-aware skipping on one side, the scalar oracle's tracker
/// on the other — any disagreement is a frame-gating bug).
Circuit make_constant_cone_circuit(std::size_t depth, bool use_one) {
  CircuitBuilder b("fuzz_const");
  b.add_input("pi0");
  b.add_gate(use_one ? GateType::Const1 : GateType::Const0, "k", {});
  std::string prev = "k";
  for (std::size_t i = 0; i < depth; ++i) {
    const std::string g = "c" + std::to_string(i);
    switch (i % 4) {
      case 0:
        b.add_gate(GateType::Buf, g, {std::string_view(prev)});
        break;
      case 1:
        b.add_gate(GateType::Not, g, {std::string_view(prev)});
        break;
      case 2:
        b.add_gate(GateType::And, g, {std::string_view(prev), "k"});
        break;
      default:
        b.add_gate(GateType::Or, g, {std::string_view(prev), "k"});
        break;
    }
    prev = g;
  }
  b.add_gate(GateType::Dff, "ff0", {"pi0"});
  b.add_gate(GateType::Xor, "po0", {std::string_view(prev), "ff0"});
  b.mark_output("po0");
  return b.build();
}

/// A shift chain clocked through an XOR edge-detector: stage i+1 holds
/// stage i's previous value, so each bit entering at the PI shifts one
/// transition down the chain per frame — launch in frame t, capture at
/// the t/t+1 boundary, exactly the window the frame-gated kernels must
/// align on.  The PO XORs adjacent stages, observing the moving edge
/// itself.
Circuit make_edge_chain_circuit(std::size_t stages) {
  CircuitBuilder b("fuzz_edge");
  b.add_input("pi0");
  std::string prev = "pi0";
  for (std::size_t i = 0; i < stages; ++i) {
    const std::string ff = "ff" + std::to_string(i);
    b.add_gate(GateType::Dff, ff, {std::string_view(prev)});
    prev = ff;
  }
  std::string acc = "pi0";
  for (std::size_t i = 0; i < stages; ++i) {
    const std::string x = "e" + std::to_string(i);
    const std::string ff = "ff" + std::to_string(i);
    b.add_gate(GateType::Xor, x, {std::string_view(acc), std::string_view(ff)});
    acc = x;
  }
  b.add_gate(GateType::Buf, "po0", {std::string_view(acc)});
  b.mark_output("po0");
  return b.build();
}

Circuit make_circuit(Rng& rng) {
  const std::uint64_t shape = rng.below(12);
  if (shape == 0) {
    return make_chain_circuit(1 + rng.below(5), rng.coin());
  }
  if (shape == 1) {
    return make_fanout_circuit(2 + rng.below(6));
  }
  if (shape == 2) {
    return make_constant_cone_circuit(1 + rng.below(6), rng.coin());
  }
  if (shape == 3) {
    return make_edge_chain_circuit(1 + rng.below(5));
  }
  gen::GenParams p;
  p.name = "fuzz";
  p.num_inputs = 1 + rng.below(6);
  p.num_outputs = 1 + rng.below(4);
  // Bias toward tiny state (0, 1, 2 flip-flops) where the degenerate
  // paths live, with a tail of larger machines.
  const std::uint64_t ff_shape = rng.below(8);
  if (ff_shape < 2) {
    p.num_flip_flops = ff_shape;  // 0 or 1
  } else {
    p.num_flip_flops = 2 + rng.below(9);
  }
  p.num_gates = 8 + rng.below(70);
  p.seed = rng.next();
  p.pi_mux_fraction = rng.unit();
  return gen::generate_circuit(p);
}

util::Bitset make_scan_mask(std::size_t num_ffs, Rng& rng) {
  util::Bitset mask(num_ffs, true);
  if (num_ffs == 0 || rng.chance(3, 5)) return mask;  // full scan
  // Partial scan: random subset, including the empty chain.
  const std::uint64_t density = rng.below(257);
  for (std::size_t i = 0; i < num_ffs; ++i) {
    if (rng.below(256) >= density) mask.reset(i);
  }
  return mask;
}

sim::Sequence make_sequence(std::size_t width, Rng& rng) {
  static constexpr std::size_t kLengths[] = {0, 1, 1, 2, 3, 4, 6, 8};
  const std::size_t len = kLengths[rng.below(std::size(kLengths))];
  sim::Sequence seq;
  seq.frames.reserve(len);
  const std::uint32_t x_density =
      rng.chance(1, 4) ? static_cast<std::uint32_t>(rng.below(257)) : 0;
  for (std::size_t t = 0; t < len; ++t) {
    seq.frames.push_back(random_scan_in(width, x_density, rng));
  }
  return seq;
}

}  // namespace

Vector3 random_scan_in(std::size_t width, std::uint32_t x_density,
                       Rng& rng) {
  Vector3 v(width, V3::X);
  for (auto& x : v) {
    if (rng.below(256) >= x_density) x = sim::v3_from_bool(rng.coin());
  }
  return v;
}

fault::FaultSet Workload::target_set() const {
  fault::FaultSet s(faults.num_classes());
  if (targets.empty()) {
    s.fill();
  } else {
    for (const fault::FaultClassId id : targets) s.set(id);
  }
  return s;
}

Workload make_workload(std::uint64_t case_seed,
                       const fault::FaultModel& model) {
  Rng rng(case_seed);
  Circuit circuit = make_circuit(rng);
  fault::FaultList faults = fault::FaultList::build(circuit, model);
  util::Bitset scan_mask = make_scan_mask(circuit.num_flip_flops(), rng);

  Workload w{std::move(circuit), std::move(faults), std::move(scan_mask),
             {}, {}, {}, case_seed};

  // Target subset: usually every class, sometimes a random subset or a
  // single class (tight cones stress the cone kernel's skip logic).
  const std::size_t classes = w.faults.num_classes();
  const std::uint64_t subset = rng.below(4);
  if (subset == 1 && classes > 0) {
    w.targets.push_back(
        static_cast<fault::FaultClassId>(rng.below(classes)));
  } else if (subset == 2 && classes > 0) {
    for (std::size_t id = 0; id < classes; ++id) {
      if (rng.chance(1, 3)) {
        w.targets.push_back(static_cast<fault::FaultClassId>(id));
      }
    }
  }

  // Mostly 1-3 tests; one case in four gets a larger set so the
  // pattern-parallel batch checks span several lane chunks (a 512-bit
  // pass packs 8 tests) and end on a ragged final chunk.
  const std::size_t num_tests =
      rng.chance(1, 4) ? 1 + rng.below(12) : 1 + rng.below(3);
  for (std::size_t i = 0; i < num_tests; ++i) {
    tcomp::ScanTest t;
    // Scan-in X density: mostly fully specified, sometimes sparse X,
    // sometimes all-X.
    const std::uint64_t kind = rng.below(8);
    const std::uint32_t density =
        kind == 0 ? 256u
                  : (kind <= 2 ? static_cast<std::uint32_t>(rng.below(129))
                               : 0u);
    t.scan_in = random_scan_in(w.circuit.num_flip_flops(), density, rng);
    t.seq = make_sequence(w.circuit.num_inputs(), rng);
    w.tests.push_back(std::move(t));
  }
  w.no_scan_seq = make_sequence(w.circuit.num_inputs(), rng);
  return w;
}

}  // namespace scanc::check
