// Random workload generation for the differential fuzzer.
//
// Each case seed deterministically expands into a Workload: a circuit
// (usually gen::generate_circuit with small randomized parameters,
// sometimes a hand-built adversarial shape), a scan configuration, a
// fault-target subset, scan tests, and a no-scan sequence.  The
// distributions deliberately over-weight the shapes where kernel
// disagreement hides: all-X and partially-specified scan-in vectors,
// length-0 and length-1 sequences, circuits with zero or one flip-flop,
// single-FF shift chains, one stem fanning out across the whole cone,
// and partial (including empty) scan chains.  For the transition-delay
// model the pool adds glitch-free constant cones (sites that can never
// launch — the whole case must come out undetected) and shift chains
// whose stages carry exactly one transition per scan-in edge (launch and
// capture land on consecutive frame boundaries).
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_list.hpp"
#include "netlist/circuit.hpp"
#include "tcomp/scan_test.hpp"
#include "util/bitset.hpp"
#include "util/rng.hpp"

namespace scanc::check {

/// One generated fuzz case.
struct Workload {
  netlist::Circuit circuit;
  fault::FaultList faults;
  util::Bitset scan_mask;  ///< over flip_flops() order
  /// Fault classes to simulate; empty = every class.
  std::vector<fault::FaultClassId> targets;
  /// Scan tests (scan_in may contain X; seq may be empty).
  std::vector<tcomp::ScanTest> tests;
  /// Sequence for the no-scan query (may be empty).
  sim::Sequence no_scan_seq;
  /// The seed this case was expanded from (for reporting).
  std::uint64_t seed = 0;

  /// `targets` as a FaultSet, or all faults when `targets` is empty.
  [[nodiscard]] fault::FaultSet target_set() const;
};

/// Expands `case_seed` into a workload under `model`.  Deterministic:
/// equal (seed, model) pairs give equal workloads, and the circuit/test
/// material depends on the seed alone — only the fault universe changes
/// with the model.
[[nodiscard]] Workload make_workload(
    std::uint64_t case_seed,
    const fault::FaultModel& model = fault::FaultModel::stuck_at());

/// A scan-in vector with the given X density (0 = fully specified,
/// 256 = all X, out of 256).
[[nodiscard]] sim::Vector3 random_scan_in(std::size_t width,
                                          std::uint32_t x_density,
                                          util::Rng& rng);

}  // namespace scanc::check
