// Test-case minimization for failing fuzz workloads.
//
// Greedy delta-debugging over the workload structure with the circuit
// held fixed: drop whole tests, clear the no-scan sequence, remove
// frame blocks (halving block sizes down to single frames), bisect the
// fault-target list down to (usually) one class, and finally weaken
// scan-in / PI values to X one position at a time.  Every candidate is
// re-checked with the same configuration that failed; a reduction is
// kept only if the case still fails.  The result plus a standalone
// textual repro (netlist in .bench syntax, scan configuration, test
// vectors, fault names, divergence messages) is what lands in the CI
// artifact and in committed regression tests.
#pragma once

#include <cstddef>
#include <ostream>

#include "check/differ.hpp"
#include "check/workload.hpp"

namespace scanc::check {

struct ShrinkResult {
  Workload workload;     ///< minimized case (still failing)
  CaseReport report;     ///< report of the minimized case
  std::size_t attempts = 0;  ///< candidate evaluations performed
};

/// Minimizes `w` (which must fail under `cfg`).  `max_attempts` bounds
/// the number of candidate re-checks.
[[nodiscard]] ShrinkResult shrink_case(const Workload& w,
                                       const CheckConfig& cfg,
                                       std::size_t max_attempts = 2000);

/// Writes a standalone repro document for a (usually shrunk) failing
/// workload.
void write_repro(std::ostream& out, const Workload& w,
                 const CaseReport& report);

}  // namespace scanc::check
