#include "check/oracle_sim.hpp"

#include <cassert>

#include "sim/injection.hpp"

namespace scanc::check {

using netlist::Circuit;
using netlist::GateType;
using netlist::Node;
using netlist::NodeId;
using sim::Sequence;
using sim::V3;
using sim::Vector3;

namespace {

/// Literal 3-valued gate evaluation by case analysis on the pin values
/// ("any controlling pin decides; any X makes the result unknown") —
/// intentionally not the shared v3_and/v3_or algebra or the packed
/// bitwise forms, so an encoding bug in either cannot hide here.
V3 eval_gate(GateType type, const std::vector<V3>& pins) {
  switch (type) {
    case GateType::Buf:
      return pins[0];
    case GateType::Not:
      if (pins[0] == V3::X) return V3::X;
      return pins[0] == V3::One ? V3::Zero : V3::One;
    case GateType::And:
    case GateType::Nand: {
      bool any_zero = false;
      bool any_x = false;
      for (const V3 v : pins) {
        if (v == V3::Zero) any_zero = true;
        if (v == V3::X) any_x = true;
      }
      V3 out = any_zero ? V3::Zero : (any_x ? V3::X : V3::One);
      if (type == GateType::Nand && out != V3::X) {
        out = out == V3::One ? V3::Zero : V3::One;
      }
      return out;
    }
    case GateType::Or:
    case GateType::Nor: {
      bool any_one = false;
      bool any_x = false;
      for (const V3 v : pins) {
        if (v == V3::One) any_one = true;
        if (v == V3::X) any_x = true;
      }
      V3 out = any_one ? V3::One : (any_x ? V3::X : V3::Zero);
      if (type == GateType::Nor && out != V3::X) {
        out = out == V3::One ? V3::Zero : V3::One;
      }
      return out;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      bool parity = false;
      for (const V3 v : pins) {
        if (v == V3::X) return V3::X;
        if (v == V3::One) parity = !parity;
      }
      if (type == GateType::Xnor) parity = !parity;
      return parity ? V3::One : V3::Zero;
    }
    default:
      assert(false && "not a combinational gate");
      return V3::X;
  }
}

/// One scalar machine, fault-free (fault == nullptr) or with a single
/// stuck-at fault permanently applied.
class Machine {
 public:
  Machine(const Circuit& c, const fault::Fault* fault)
      : c_(&c), fault_(fault) {}

  void reset() {
    vals_.assign(c_->num_nodes(), V3::X);
    captured_.assign(c_->num_flip_flops(), V3::X);
    for (NodeId n = 0; n < c_->num_nodes(); ++n) {
      const GateType t = c_->node(n).type;
      if (t == GateType::Const0) vals_[n] = stem(n, V3::Zero);
      if (t == GateType::Const1) vals_[n] = stem(n, V3::One);
    }
    // Flip-flops start X; a stem fault still forces the read value.
    const auto ffs = c_->flip_flops();
    for (std::size_t i = 0; i < ffs.size(); ++i) {
      vals_[ffs[i]] = stem(ffs[i], V3::X);
    }
  }

  /// Scan-in: `state` must already have unscanned positions forced to X.
  void load_state(const Vector3& state) {
    const auto ffs = c_->flip_flops();
    assert(state.size() == ffs.size());
    for (std::size_t i = 0; i < ffs.size(); ++i) {
      captured_[i] = state[i];  // the latch content itself is clean
      vals_[ffs[i]] = stem(ffs[i], state[i]);
    }
  }

  void apply_frame(const Vector3& pi) {
    const auto pis = c_->primary_inputs();
    assert(pi.size() == pis.size());
    for (std::size_t i = 0; i < pis.size(); ++i) {
      vals_[pis[i]] = stem(pis[i], pi[i]);
    }
    for (const NodeId n : c_->topo_order()) {
      const Node& node = c_->node(n);
      pins_.clear();
      for (std::size_t j = 0; j < node.fanins.size(); ++j) {
        pins_.push_back(
            pin(n, static_cast<std::int32_t>(j), vals_[node.fanins[j]]));
      }
      vals_[n] = stem(n, eval_gate(node.type, pins_));
    }
  }

  void latch() {
    const auto ffs = c_->flip_flops();
    next_.resize(ffs.size());
    for (std::size_t i = 0; i < ffs.size(); ++i) {
      // A D-side branch fault corrupts the capture; a Q-side stem fault
      // corrupts only the value the logic reads next frame.
      const NodeId d = c_->node(ffs[i]).fanins[0];
      next_[i] = pin(ffs[i], 0, vals_[d]);
    }
    for (std::size_t i = 0; i < ffs.size(); ++i) {
      captured_[i] = next_[i];
      vals_[ffs[i]] = stem(ffs[i], next_[i]);
    }
  }

  /// Post-stem value as read by logic and primary-output observation.
  [[nodiscard]] V3 value(NodeId n) const { return vals_[n]; }

  /// Clean latch content of flip-flop index `i` (scan-out view).
  [[nodiscard]] V3 captured(std::size_t i) const { return captured_[i]; }

 private:
  [[nodiscard]] V3 stuck() const {
    return fault_->value ? V3::One : V3::Zero;
  }
  [[nodiscard]] V3 stem(NodeId n, V3 v) const {
    if (fault_ != nullptr && fault_->node == n &&
        fault_->pin == sim::kStemPin) {
      return stuck();
    }
    return v;
  }
  [[nodiscard]] V3 pin(NodeId n, std::int32_t j, V3 v) const {
    if (fault_ != nullptr && fault_->node == n && fault_->pin == j) {
      return stuck();
    }
    return v;
  }

  const Circuit* c_;
  const fault::Fault* fault_;
  std::vector<V3> vals_;
  std::vector<V3> captured_;
  std::vector<V3> pins_;
  std::vector<V3> next_;
};

bool conservative_diff(V3 a, V3 b) {
  return a != V3::X && b != V3::X && a != b;
}

Vector3 masked_scan_in(const Vector3& scan_in,
                       const util::Bitset& scan_mask) {
  Vector3 masked = scan_in;
  for (std::size_t i = 0; i < masked.size(); ++i) {
    if (!scan_mask.test(i)) masked[i] = V3::X;
  }
  return masked;
}

/// Tracks the fault-free machine across frames and decides, per frame,
/// whether a transition fault launches: the stem held the stale value in
/// the previous frame and the opposite binary value in the current one.
/// Frame 0 has no previous frame and never launches.  When a frame is
/// active, the caller simulates a fresh one-frame faulty machine from
/// `state_entering` (the clean latch content the frame started from).
struct TdfTracker {
  explicit TdfTracker(const fault::Fault& f)
      : stale(f.value ? V3::One : V3::Zero),
        fresh(f.value ? V3::Zero : V3::One) {}

  /// Call after free.apply_frame(t) with the free stem value of frame t.
  [[nodiscard]] bool launches(std::size_t t, V3 cur) const {
    return t >= 1 && prev == stale && cur == fresh;
  }

  V3 stale;
  V3 fresh;
  V3 prev = V3::X;  // free stem value of the previous frame
};

/// Clean latch content of the free machine (state entering the next
/// frame; the Vector3 a one-frame faulty machine is loaded from).
Vector3 captured_state(const Circuit& c, const Machine& m) {
  Vector3 state(c.num_flip_flops(), V3::X);
  for (std::size_t i = 0; i < c.num_flip_flops(); ++i) {
    state[i] = m.captured(i);
  }
  return state;
}

OracleResult oracle_run_tdf(const Circuit& c, const util::Bitset& scan_mask,
                            const fault::Fault& f, const Vector3* scan_in,
                            const Sequence& seq, bool observe_scan_out) {
  assert(f.pin == sim::kStemPin);
  const fault::Fault frozen{f.node, f.pin, f.value};  // stuck at stale
  Machine free(c, nullptr);
  free.reset();
  const bool scan_test = scan_in != nullptr;
  Vector3 state_entering(c.num_flip_flops(), V3::X);
  if (scan_test) {
    state_entering = masked_scan_in(*scan_in, scan_mask);
    free.load_state(state_entering);
  }

  OracleResult out;
  if (scan_test) out.state_diff.assign(seq.length(), 0);
  TdfTracker tracker(f);
  Machine faulty(c, &frozen);
  for (std::size_t t = 0; t < seq.length(); ++t) {
    free.apply_frame(seq.frames[t]);
    const V3 cur = free.value(f.node);
    const bool active = tracker.launches(t, cur);
    if (active) {
      faulty.reset();
      faulty.load_state(state_entering);
      faulty.apply_frame(seq.frames[t]);
      for (const NodeId po : c.primary_outputs()) {
        if (conservative_diff(free.value(po), faulty.value(po))) {
          if (out.first_po < 0) out.first_po = static_cast<std::int64_t>(t);
          out.detected = true;
          break;
        }
      }
      faulty.latch();
    }
    free.latch();
    if (scan_test && active) {
      for (std::size_t i = 0; i < c.num_flip_flops(); ++i) {
        if (!scan_mask.test(i)) continue;
        if (conservative_diff(free.captured(i), faulty.captured(i))) {
          out.state_diff[t] = 1;
          if (observe_scan_out && t + 1 == seq.length()) {
            out.detected = true;
          }
          break;
        }
      }
    }
    // Inactive frames leave state_diff[t] == 0: with no launch the
    // faulty machine is the fault-free machine.
    state_entering = captured_state(c, free);
    tracker.prev = cur;
  }
  return out;
}

OracleResponse oracle_response_tdf(const Circuit& c,
                                   const util::Bitset& scan_mask,
                                   const fault::Fault& f,
                                   const Vector3& scan_in,
                                   const Sequence& seq) {
  assert(f.pin == sim::kStemPin);
  const fault::Fault frozen{f.node, f.pin, f.value};
  Machine free(c, nullptr);
  free.reset();
  Vector3 state_entering = masked_scan_in(scan_in, scan_mask);
  free.load_state(state_entering);

  OracleResponse out;
  out.po_frames.reserve(seq.length());
  TdfTracker tracker(f);
  Machine faulty(c, &frozen);
  bool final_active = false;
  for (std::size_t t = 0; t < seq.length(); ++t) {
    free.apply_frame(seq.frames[t]);
    const V3 cur = free.value(f.node);
    const bool active = tracker.launches(t, cur);
    if (active) {
      faulty.reset();
      faulty.load_state(state_entering);
      faulty.apply_frame(seq.frames[t]);
    }
    const Machine& observed = active ? faulty : free;
    Vector3 po;
    po.reserve(c.num_outputs());
    for (const NodeId p : c.primary_outputs()) po.push_back(observed.value(p));
    out.po_frames.push_back(std::move(po));
    if (active) faulty.latch();
    free.latch();
    if (t + 1 == seq.length()) final_active = active;
    state_entering = captured_state(c, free);
    tracker.prev = cur;
  }
  const Machine& last = final_active ? faulty : free;
  out.scan_out.assign(c.num_flip_flops(), V3::X);
  for (std::size_t i = 0; i < c.num_flip_flops(); ++i) {
    if (scan_mask.test(i)) out.scan_out[i] = last.captured(i);
  }
  return out;
}

}  // namespace

OracleResult oracle_run(const Circuit& c, const util::Bitset& scan_mask,
                        const fault::Fault& f, const Vector3* scan_in,
                        const Sequence& seq, bool observe_scan_out) {
  Machine free(c, nullptr);
  Machine faulty(c, &f);
  free.reset();
  faulty.reset();
  const bool scan_test = scan_in != nullptr;
  if (scan_test) {
    const Vector3 masked = masked_scan_in(*scan_in, scan_mask);
    free.load_state(masked);
    faulty.load_state(masked);
  }

  OracleResult out;
  if (scan_test) out.state_diff.assign(seq.length(), 0);
  for (std::size_t t = 0; t < seq.length(); ++t) {
    free.apply_frame(seq.frames[t]);
    faulty.apply_frame(seq.frames[t]);
    for (const NodeId po : c.primary_outputs()) {
      if (conservative_diff(free.value(po), faulty.value(po))) {
        if (out.first_po < 0) out.first_po = static_cast<std::int64_t>(t);
        out.detected = true;
        break;
      }
    }
    free.latch();
    faulty.latch();
    if (scan_test) {
      for (std::size_t i = 0; i < c.num_flip_flops(); ++i) {
        if (!scan_mask.test(i)) continue;
        if (conservative_diff(free.captured(i), faulty.captured(i))) {
          out.state_diff[t] = 1;
          if (observe_scan_out && t + 1 == seq.length()) {
            out.detected = true;
          }
          break;
        }
      }
    }
  }
  return out;
}

OracleResult oracle_run(const Circuit& c, const util::Bitset& scan_mask,
                        const fault::FaultModel& model, const fault::Fault& f,
                        const Vector3* scan_in, const Sequence& seq,
                        bool observe_scan_out) {
  if (model.frame_gated()) {
    return oracle_run_tdf(c, scan_mask, f, scan_in, seq, observe_scan_out);
  }
  return oracle_run(c, scan_mask, f, scan_in, seq, observe_scan_out);
}

OracleResponse oracle_response(const Circuit& c,
                               const util::Bitset& scan_mask,
                               const fault::FaultModel& model,
                               const fault::Fault& f, const Vector3& scan_in,
                               const Sequence& seq) {
  if (model.frame_gated()) {
    return oracle_response_tdf(c, scan_mask, f, scan_in, seq);
  }
  return oracle_response(c, scan_mask, f, scan_in, seq);
}

OracleResponse oracle_response(const Circuit& c,
                               const util::Bitset& scan_mask,
                               const fault::Fault& f, const Vector3& scan_in,
                               const Sequence& seq) {
  Machine faulty(c, &f);
  faulty.reset();
  faulty.load_state(masked_scan_in(scan_in, scan_mask));
  OracleResponse out;
  out.po_frames.reserve(seq.length());
  for (std::size_t t = 0; t < seq.length(); ++t) {
    faulty.apply_frame(seq.frames[t]);
    Vector3 po;
    po.reserve(c.num_outputs());
    for (const NodeId p : c.primary_outputs()) po.push_back(faulty.value(p));
    out.po_frames.push_back(std::move(po));
    faulty.latch();
  }
  out.scan_out.assign(c.num_flip_flops(), V3::X);
  for (std::size_t i = 0; i < c.num_flip_flops(); ++i) {
    if (scan_mask.test(i)) out.scan_out[i] = faulty.captured(i);
  }
  return out;
}

}  // namespace scanc::check
