#include "check/shrink.hpp"

#include <algorithm>
#include <utility>

#include "fault/fault.hpp"
#include "netlist/bench_writer.hpp"
#include "util/telemetry.hpp"

namespace scanc::check {

using sim::V3;
using sim::Vector3;

namespace {

class Shrinker {
 public:
  Shrinker(const Workload& w, const CheckConfig& cfg,
           std::size_t max_attempts)
      : cur_(w), cfg_(&cfg), max_attempts_(max_attempts) {}

  ShrinkResult run() {
    // Fixpoint over all reduction passes: each pass may re-enable
    // another (a shorter sequence can make a target droppable).
    bool progress = true;
    while (progress && attempts_ < max_attempts_) {
      progress = false;
      progress |= drop_tests();
      progress |= clear_no_scan();
      progress |= shrink_sequences();
      progress |= shrink_targets();
      progress |= weaken_values();
    }
    CaseReport final_report = check_case(cur_, *cfg_);
    return ShrinkResult{std::move(cur_), std::move(final_report), attempts_};
  }

 private:
  /// True if `candidate` still fails; if so it becomes the current case.
  bool accept(Workload&& candidate) {
    if (attempts_ >= max_attempts_) return false;
    ++attempts_;
    obs::add(obs::Counter::CheckShrinkSteps);
    if (!check_case(candidate, *cfg_).failed()) return false;
    cur_ = std::move(candidate);
    return true;
  }

  bool drop_tests() {
    bool progress = false;
    for (std::size_t i = 0; i < cur_.tests.size();) {
      Workload cand = cur_;
      cand.tests.erase(cand.tests.begin() +
                       static_cast<std::ptrdiff_t>(i));
      if (accept(std::move(cand))) {
        progress = true;  // same index now names the next test
      } else {
        ++i;
      }
    }
    return progress;
  }

  bool clear_no_scan() {
    if (cur_.no_scan_seq.empty()) return false;
    Workload cand = cur_;
    cand.no_scan_seq.frames.clear();
    return accept(std::move(cand));
  }

  bool shrink_one_sequence(sim::Sequence Workload::*member) {
    bool progress = false;
    for (std::size_t block = std::max<std::size_t>(
             1, (cur_.*member).length() / 2);
         block >= 1; block /= 2) {
      for (std::size_t at = 0; at + block <= (cur_.*member).length();) {
        Workload cand = cur_;
        auto& frames = (cand.*member).frames;
        frames.erase(frames.begin() + static_cast<std::ptrdiff_t>(at),
                     frames.begin() + static_cast<std::ptrdiff_t>(at + block));
        if (accept(std::move(cand))) {
          progress = true;
        } else {
          ++at;
        }
      }
      if (block == 1) break;
    }
    return progress;
  }

  bool shrink_sequences() {
    bool progress = shrink_one_sequence(&Workload::no_scan_seq);
    for (std::size_t ti = 0; ti < cur_.tests.size(); ++ti) {
      for (std::size_t block =
               std::max<std::size_t>(1, cur_.tests[ti].seq.length() / 2);
           block >= 1; block /= 2) {
        for (std::size_t at = 0;
             at + block <= cur_.tests[ti].seq.length();) {
          Workload cand = cur_;
          auto& frames = cand.tests[ti].seq.frames;
          frames.erase(
              frames.begin() + static_cast<std::ptrdiff_t>(at),
              frames.begin() + static_cast<std::ptrdiff_t>(at + block));
          if (accept(std::move(cand))) {
            progress = true;
          } else {
            ++at;
          }
        }
        if (block == 1) break;
      }
    }
    return progress;
  }

  bool shrink_targets() {
    // Materialize the implicit "all classes" list so it can be cut.
    if (cur_.targets.empty()) {
      Workload cand = cur_;
      for (std::size_t id = 0; id < cur_.faults.num_classes(); ++id) {
        cand.targets.push_back(static_cast<fault::FaultClassId>(id));
      }
      // Equivalent by construction; adopt without spending an attempt.
      cur_ = std::move(cand);
    }
    bool progress = false;
    for (std::size_t block = std::max<std::size_t>(
             1, cur_.targets.size() / 2);
         block >= 1; block /= 2) {
      for (std::size_t at = 0; at + block <= cur_.targets.size() &&
                               cur_.targets.size() > 1;) {
        Workload cand = cur_;
        cand.targets.erase(
            cand.targets.begin() + static_cast<std::ptrdiff_t>(at),
            cand.targets.begin() + static_cast<std::ptrdiff_t>(at + block));
        if (accept(std::move(cand))) {
          progress = true;
        } else {
          ++at;
        }
      }
      if (block == 1) break;
    }
    return progress;
  }

  bool weaken_values() {
    bool progress = false;
    for (std::size_t ti = 0; ti < cur_.tests.size(); ++ti) {
      progress |= weaken_vector([&](Workload& w) -> Vector3& {
        return w.tests[ti].scan_in;
      });
      for (std::size_t t = 0; t < cur_.tests[ti].seq.length(); ++t) {
        progress |= weaken_vector([&](Workload& w) -> Vector3& {
          return w.tests[ti].seq.frames[t];
        });
      }
    }
    for (std::size_t t = 0; t < cur_.no_scan_seq.length(); ++t) {
      progress |= weaken_vector([&](Workload& w) -> Vector3& {
        return w.no_scan_seq.frames[t];
      });
    }
    return progress;
  }

  template <typename Access>
  bool weaken_vector(Access access) {
    bool progress = false;
    const std::size_t n = access(cur_).size();
    for (std::size_t i = 0; i < n; ++i) {
      if (access(cur_)[i] == V3::X) continue;
      Workload cand = cur_;
      access(cand)[i] = V3::X;
      progress |= accept(std::move(cand));
    }
    return progress;
  }

  Workload cur_;
  const CheckConfig* cfg_;
  std::size_t max_attempts_;
  std::size_t attempts_ = 0;
};

}  // namespace

ShrinkResult shrink_case(const Workload& w, const CheckConfig& cfg,
                         std::size_t max_attempts) {
  Shrinker s(w, cfg, max_attempts);
  return s.run();
}

void write_repro(std::ostream& out, const Workload& w,
                 const CaseReport& report) {
  out << "# fuzz_check repro  seed=" << w.seed
      << " model=" << w.faults.model().name() << "\n";
  out << "# divergences:\n";
  for (const std::string& d : report.divergences) {
    out << "#   " << d << "\n";
  }
  out << "# scan_mask (flip_flops order, 1 = scanned): ";
  for (std::size_t i = 0; i < w.scan_mask.size(); ++i) {
    out << (w.scan_mask.test(i) ? '1' : '0');
  }
  out << "\n# targets:";
  if (w.targets.empty()) {
    out << " all";
  } else {
    for (const fault::FaultClassId id : w.targets) {
      out << " " << id << "="
          << fault::fault_name(w.faults.representative(id), w.circuit,
                               w.faults.model());
    }
  }
  out << "\n";
  for (std::size_t i = 0; i < w.tests.size(); ++i) {
    out << "# test " << i << "\n";
    out << "#   scanin " << sim::to_string(w.tests[i].scan_in) << "\n";
    for (const Vector3& v : w.tests[i].seq.frames) {
      out << "#   vector " << sim::to_string(v) << "\n";
    }
  }
  if (!w.no_scan_seq.empty()) {
    out << "# no-scan sequence\n";
    for (const Vector3& v : w.no_scan_seq.frames) {
      out << "#   vector " << sim::to_string(v) << "\n";
    }
  }
  out << "# netlist:\n";
  netlist::write_bench(w.circuit, out);
}

}  // namespace scanc::check
