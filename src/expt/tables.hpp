// Table formatting: regenerates the paper's Tables 1-5 from measured
// CircuitRuns, each followed by the numbers the paper reported (so the
// shape comparison is visible in one screen).  Totals follow the paper's
// convention: computed without s35932.
#pragma once

#include <ostream>
#include <vector>

#include "expt/runner.hpp"

namespace scanc::expt {

/// Table 1: detected faults (T0 / tau_seq / final).
void print_table1(const std::vector<CircuitRun>& runs, std::ostream& out);

/// Table 2: sequence lengths and added tests.
void print_table2(const std::vector<CircuitRun>& runs, std::ostream& out);

/// Table 3: clock cycles for [2,3], [4] init/comp, proposed init/comp
/// (greedy and random T0), with totals.
void print_table3(const std::vector<CircuitRun>& runs, std::ostream& out);

/// Table 4: at-speed sequence lengths (average and range).
void print_table4(const std::vector<CircuitRun>& runs, std::ostream& out);

/// Table 5: the random-T0 variant details.
void print_table5(const std::vector<CircuitRun>& runs, std::ostream& out);

/// Writes all tables as a markdown report (EXPERIMENTS.md body).
void write_markdown_report(const std::vector<CircuitRun>& runs,
                           std::ostream& out);

}  // namespace scanc::expt
