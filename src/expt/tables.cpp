#include "expt/tables.hpp"

#include <cinttypes>
#include <cstdio>
#include <string>

#include "gen/suite.hpp"

namespace scanc::expt {
namespace {

/// printf into an ostream (keeps the column formats readable).
template <typename... Args>
void line(std::ostream& out, const char* fmt, Args... args) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  out << buf;
}

std::string range(std::size_t lo, std::size_t hi) {
  return std::to_string(lo) + "-" + std::to_string(hi);
}

gen::PaperRow paper_row(const std::string& name) {
  const auto e = gen::find_suite_entry(name);
  return e ? e->paper : gen::PaperRow{};
}

bool is_large(const std::string& name) {
  const auto e = gen::find_suite_entry(name);
  return e && e->large;
}

/// Row label; interrupted (partial) runs carry a "!" marker explained
/// by partial_note below.
std::string row_label(const CircuitRun& r) {
  return r.completed ? r.name : r.name + "!";
}

/// Footnote for interrupted rows: their values are best-so-far, and a
/// rerun resumes from the checkpoint journal.
void partial_note(const std::vector<CircuitRun>& runs, std::ostream& out) {
  for (const CircuitRun& r : runs) {
    if (!r.completed) {
      out << "(! " << r.name << ": interrupted at " << r.stopped_at
          << "; values are best-so-far — rerun to resume)\n";
    }
  }
}

}  // namespace

void print_table1(const std::vector<CircuitRun>& runs, std::ostream& out) {
  out << "Table 1: Detected faults (measured | paper)\n";
  line(out, "%-8s %6s %6s %7s %6s %6s | %7s %7s %7s | %7s %7s %7s\n",
       "circuit", "ff", "ctsts", "flts", "untst", "abort", "T0", "scan",
       "final", "T0*", "scan*", "final*");
  for (const CircuitRun& r : runs) {
    const gen::PaperRow p = paper_row(r.name);
    line(out,
         "%-8s %6zu %6zu %7zu %6zu %6zu | %7zu %7zu %7zu | %7d %7d %7d\n",
         row_label(r).c_str(), r.flip_flops, r.comb_tests, r.faults,
         r.proven_untestable, r.aborted, r.atpg.det_t0, r.atpg.det_scan,
         r.atpg.det_final, p.det_t0, p.det_scan, p.det_final);
  }
  out << "(* = paper-reported values, on the original benchmarks;\n"
         " untst = classes proven untestable, abort = classes ATPG gave\n"
         " up on — 0 under --atpg=sat/auto, see docs/atpg.md)\n";
  partial_note(runs, out);
}

void print_table2(const std::vector<CircuitRun>& runs, std::ostream& out) {
  out << "Table 2: Test lengths (measured | paper)\n";
  line(out, "%-8s %7s %7s %6s | %7s %7s %6s\n", "circuit", "T0", "scan",
       "added", "T0*", "scan*", "added*");
  for (const CircuitRun& r : runs) {
    const gen::PaperRow p = paper_row(r.name);
    line(out, "%-8s %7zu %7zu %6zu | %7d %7d %6d\n", row_label(r).c_str(),
         r.atpg.len_t0, r.atpg.len_scan, r.atpg.added, p.len_t0, p.len_scan,
         p.added_tests);
  }
  partial_note(runs, out);
}

void print_table3(const std::vector<CircuitRun>& runs, std::ostream& out) {
  out << "Table 3: Numbers of clock cycles\n";
  line(out, "%-8s %9s | %9s %9s | %9s %9s | %9s %9s\n", "circuit", "[2,3]",
       "[4]init", "[4]comp", "prop-init", "prop-comp", "rand-init",
       "rand-comp");
  std::uint64_t tot[6] = {0, 0, 0, 0, 0, 0};
  for (const CircuitRun& r : runs) {
    line(out, "%-8s %9" PRIu64 " | %9" PRIu64 " %9" PRIu64 " | %9" PRIu64
              " %9" PRIu64 " | %9" PRIu64 " %9" PRIu64 "\n",
         row_label(r).c_str(), r.cyc_dyn, r.cyc_4_init, r.cyc_4_comp,
         r.atpg.cyc_init, r.atpg.cyc_comp, r.random.cyc_init,
         r.random.cyc_comp);
    if (!is_large(r.name)) {
      tot[0] += r.cyc_4_init;
      tot[1] += r.cyc_4_comp;
      tot[2] += r.atpg.cyc_init;
      tot[3] += r.atpg.cyc_comp;
      tot[4] += r.random.cyc_init;
      tot[5] += r.random.cyc_comp;
    }
  }
  line(out, "%-8s %9s | %9" PRIu64 " %9" PRIu64 " | %9" PRIu64 " %9" PRIu64
            " | %9" PRIu64 " %9" PRIu64 "\n",
       "total*", "-", tot[0], tot[1], tot[2], tot[3], tot[4], tot[5]);
  out << "(totals computed without s35932, as in the paper)\n";
  partial_note(runs, out);
  out << "\n";
  out << "Paper-reported (original benchmarks):\n";
  line(out, "%-8s %9s | %9s %9s | %9s %9s\n", "circuit", "[2,3]", "[4]init",
       "[4]comp", "prop-init", "prop-comp");
  for (const CircuitRun& r : runs) {
    const gen::PaperRow p = paper_row(r.name);
    line(out, "%-8s %9s | %9d %9d | %9d %9d\n", r.name.c_str(), "-",
         p.cyc_4_init, p.cyc_4_comp, p.cyc_prop_init, p.cyc_prop_comp);
  }
}

void print_table4(const std::vector<CircuitRun>& runs, std::ostream& out) {
  out << "Table 4: At-speed test lengths\n";
  line(out, "%-8s | %7s %11s | %7s %11s | %7s %11s\n", "circuit", "[4]ave",
       "[4]range", "propave", "prop range", "randave", "rand range");
  for (const CircuitRun& r : runs) {
    line(out, "%-8s | %7.2f %11s | %7.2f %11s | %7.2f %11s\n",
         row_label(r).c_str(), r.atspeed_ave_4,
         range(r.atspeed_min_4, r.atspeed_max_4).c_str(),
         r.atpg.atspeed_ave,
         range(r.atpg.atspeed_min, r.atpg.atspeed_max).c_str(),
         r.random.atspeed_ave,
         range(r.random.atspeed_min, r.random.atspeed_max).c_str());
  }
  partial_note(runs, out);
  out << "\nPaper-reported averages: ";
  for (const CircuitRun& r : runs) {
    const gen::PaperRow p = paper_row(r.name);
    line(out, "%s [4]=%.2f prop=%.2f  ", r.name.c_str(), p.atspeed_ave_4,
         p.atspeed_ave_prop);
  }
  out << "\n";
}

void print_table5(const std::vector<CircuitRun>& runs, std::ostream& out) {
  out << "Table 5: Results for random sequences (T0 length "
      << (runs.empty() ? 1000 : runs.front().random.len_t0) << ")\n";
  line(out, "%-8s | %7s %7s %7s | %7s %7s | %6s\n", "circuit", "T0", "scan",
       "final", "lenT0", "lenScan", "added");
  for (const CircuitRun& r : runs) {
    line(out, "%-8s | %7zu %7zu %7zu | %7zu %7zu | %6zu\n",
         row_label(r).c_str(), r.random.det_t0, r.random.det_scan,
         r.random.det_final, r.random.len_t0, r.random.len_scan,
         r.random.added);
  }
  partial_note(runs, out);
}

void write_markdown_report(const std::vector<CircuitRun>& runs,
                           std::ostream& out) {
  out << "## Measured results\n\n";
  out << "| circuit | ff | \\|C\\| | faults | untestable | aborted | "
         "det T0 | det scan | det final "
         "| L(T0) | L(Tseq) | added | [4] init | [4] comp | prop init | "
         "prop comp | at-speed ave [4] | at-speed ave prop | seconds |\n";
  out << "|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---"
         "|---|---|---|\n";
  for (const CircuitRun& r : runs) {
    line(out,
         "| %s | %zu | %zu | %zu | %zu | %zu | %zu | %zu | %zu | %zu | "
         "%zu | %zu | "
         "%" PRIu64 " | %" PRIu64 " | %" PRIu64 " | %" PRIu64
         " | %.2f | %.2f | %.1f |\n",
         row_label(r).c_str(), r.flip_flops, r.comb_tests, r.faults,
         r.proven_untestable, r.aborted, r.atpg.det_t0, r.atpg.det_scan,
         r.atpg.det_final, r.atpg.len_t0, r.atpg.len_scan, r.atpg.added,
         r.cyc_4_init, r.cyc_4_comp, r.atpg.cyc_init, r.atpg.cyc_comp,
         r.atspeed_ave_4, r.atpg.atspeed_ave, r.seconds);
  }
  out << "\n";
  partial_note(runs, out);
}

}  // namespace scanc::expt
