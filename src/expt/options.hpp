// Command-line / environment configuration shared by the bench binaries.
//
// Flags (also settable by environment variable):
//   --circuits=a,b,c   SCANC_CIRCUITS   subset of suite circuits to run
//   --full             SCANC_FULL=1     include s35932
//   --fresh            SCANC_FRESH=1    ignore the result cache
//   --seed=N           SCANC_SEED       experiment seed (default 1)
//   --threads=N        SCANC_THREADS    fault-sim worker threads
//                                       (default 1; 0 = all hardware
//                                       threads; results are identical)
//   --kernel=M         SCANC_KERNEL     fault-sim kernel: auto (default,
//                                       per-group cone/full selection),
//                                       full, or cone; results are
//                                       identical, only speed changes
//   --fault-model=M    SCANC_FAULT_MODEL
//                                       fault model: stuck (default) or
//                                       transition; changes the fault
//                                       universe and every measured
//                                       number (cached separately)
//   --atpg=M           SCANC_ATPG       ATPG backend: podem (default,
//                                       structural only), sat (complete
//                                       SAT backend), or auto (PODEM
//                                       first, SAT resolves its aborts);
//                                       sat/auto prove untestable faults
//                                       out of the universe and measure
//                                       different numbers (cached
//                                       separately; docs/atpg.md)
//   --chains=N         SCANC_CHAINS     balanced scan chains for the
//                                       N_cyc cost model (default 1, the
//                                       paper's single chain; cached
//                                       separately when > 1)
//   --cache=PATH       SCANC_CACHE      cache file prefix
//   --no-dynamic                        skip the [2,3]-style baseline
//   --verbose          SCANC_VERBOSE=1  progress notes on stderr
//   --time-budget=S    SCANC_TIME_BUDGET
//                                       stop gracefully after S seconds
//                                       (fractional OK), keeping every
//                                       completed phase checkpointed;
//                                       rerunning resumes and the final
//                                       numbers match an uninterrupted
//                                       run (docs/robustness.md).  The
//                                       deadline is anchored when the
//                                       flags are parsed.
//   --trace-out=FILE   SCANC_TRACE      write a Chrome trace-event JSON
//                                       of phase/query spans to FILE
//   --metrics-out=FILE SCANC_METRICS    write the end-of-run metrics
//                                       snapshot (JSON) to FILE;
//                                       cumulative across kill/resume
//   --verbose-metrics  SCANC_VERBOSE_METRICS=1
//                                       print the metrics summary table
//                                       on stderr at exit
//   --heartbeat=S      SCANC_HEARTBEAT  print one progress line (phase,
//                                       faults, frames/s) every S
//                                       seconds on stderr
// Telemetry details: docs/observability.md.
#pragma once

#include <string>
#include <vector>

#include "expt/runner.hpp"

namespace scanc::expt {

struct BenchConfig {
  std::vector<std::string> circuits;  ///< empty = whole suite
  bool include_large = false;
  RunnerOptions runner;
  std::string trace_path;      ///< --trace-out (empty = no trace)
  std::string metrics_path;    ///< --metrics-out (empty = no snapshot)
  std::string event_log_path;  ///< --event-log (empty = no event log)
  bool verbose_metrics = false;   ///< --verbose-metrics
  double heartbeat_seconds = 0.0; ///< --heartbeat (0 = off)
};

/// Parses argv and the environment.  Throws std::invalid_argument on an
/// unknown flag or unknown circuit name.
[[nodiscard]] BenchConfig parse_bench_args(int argc, const char* const* argv);

/// Runs the configured circuits (cache-aware).
[[nodiscard]] std::vector<CircuitRun> run_configured(
    const BenchConfig& config);

}  // namespace scanc::expt
