// Experiment runner: everything the paper's Tables 1-5 need, measured on
// one circuit.
//
// For each circuit the runner builds the fault universe, the
// combinational test set C, the two T0 sources (ATPG-style greedy
// generation — the [10]/[12] substitute — and a random sequence of length
// 1000, the Table 5 variant), runs the proposed 4-phase procedure on
// both, and runs the baselines ([4] initial/compacted, [2,3]-style
// dynamic).  Results are cached on disk keyed by circuit + seed so the
// per-table bench binaries share one computation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "atpg/sat_backend.hpp"
#include "fault/fault_list.hpp"
#include "fault/model.hpp"
#include "gen/suite.hpp"
#include "tcomp/scan_test.hpp"
#include "util/cancel.hpp"

namespace scanc::fault {
class FaultSimulator;
}

namespace scanc::expt {

/// Pre-built inputs a multi-job host (the svc/ daemon's shared-state
/// registry) can hand to run_circuit so concurrent jobs on the same
/// circuit reuse one parsed circuit and collapsed fault list instead of
/// rebuilding them per job.  Entries are immutable once published —
/// readers share them copy-on-write and a rebuild replaces the pointer
/// wholesale.  Either field may be null (run_circuit builds that input
/// itself); a non-null faults must have been built on the non-null
/// circuit under the options' fault model.
struct SharedInputs {
  std::shared_ptr<const netlist::Circuit> circuit;
  std::shared_ptr<const fault::FaultList> faults;
};

/// Measurements for one T0 variant of the proposed procedure.
struct VariantResult {
  std::size_t det_t0 = 0;     ///< faults detected by T0 without scan
  std::size_t det_scan = 0;   ///< faults detected by tau_seq
  std::size_t det_final = 0;  ///< faults detected by the final test set
  std::size_t len_t0 = 0;     ///< L(T0)
  std::size_t len_scan = 0;   ///< L(T_seq)
  std::size_t added = 0;      ///< tests added in Phase 3
  std::uint64_t cyc_init = 0; ///< N_cyc at end of Phase 3
  std::uint64_t cyc_comp = 0; ///< N_cyc at end of Phase 4
  double atspeed_ave = 0.0;   ///< average L(T_i) in the compacted set
  std::size_t atspeed_min = 0;
  std::size_t atspeed_max = 0;
  std::size_t tests_final = 0;    ///< k: tests in the compacted set
  std::size_t vectors_final = 0;  ///< sum L(T_j) over the compacted set
};

/// All measurements for one circuit.
struct CircuitRun {
  std::string name;
  std::size_t flip_flops = 0;
  std::size_t comb_tests = 0;   ///< |C|
  std::size_t faults = 0;       ///< collapsed fault classes
  std::size_t detectable = 0;   ///< classes not proven untestable
  /// Classes proven untestable by ATPG (search exhausted or SAT UNSAT
  /// proof); always faults - detectable.
  std::size_t proven_untestable = 0;
  /// Classes the configured ATPG backend gave up on (testability still
  /// unknown at the end of generation).  Always 0 under --atpg=sat or
  /// --atpg=auto with an adequate conflict budget — the acceptance gate
  /// this PR adds (see expt_test).
  std::size_t aborted = 0;

  VariantResult atpg;           ///< T0 from the greedy generator
  VariantResult random;         ///< T0 random, length 1000

  std::uint64_t cyc_dyn = 0;       ///< [2,3]-style dynamic baseline
  std::uint64_t cyc_4_init = 0;    ///< [4] initial test set
  std::uint64_t cyc_4_comp = 0;    ///< [4] after compaction
  double atspeed_ave_4 = 0.0;      ///< [4] compacted at-speed stats
  std::size_t atspeed_min_4 = 0;
  std::size_t atspeed_max_4 = 0;

  double seconds = 0.0;         ///< wall-clock runtime of the measurement
                                ///  (accumulated across resumed attempts)

  /// False when cancellation (deadline or signal) cut the measurement
  /// short; the fields then hold best-so-far values and `stopped_at`
  /// names the phase that did not complete.  Partial runs are never
  /// written to the result cache; completed phases live in the
  /// checkpoint journal and are reused on the next attempt.
  bool completed = true;
  std::string stopped_at;
};

struct RunnerOptions {
  std::uint64_t seed = 1;
  std::size_t random_t0_length = 1000;
  /// Fault-simulation worker threads (0 = one per hardware thread).
  /// Measured numbers are identical for every setting; only wall-clock
  /// time changes, so cached results stay valid across thread counts.
  std::size_t num_threads = 1;
  /// Fault-simulation kernel (full, cone, or per-group auto selection).
  /// Like num_threads this only changes wall-clock time — every mode
  /// produces bit-identical results — so cached entries stay valid.
  fault::KernelMode kernel = fault::KernelMode::Auto;
  /// ATPG backend for the combinational test set C and the fault
  /// universe (docs/atpg.md).  Podem (default) reproduces the
  /// structural-only measurement bit-for-bit.  Sat and Auto resolve
  /// every fault — aborted classes get a SAT verdict, and
  /// proven-untestable classes leave the fault universe before Phase 3
  /// — so they measure different numbers and get their own cache
  /// entries (cache_entry_path suffix).
  atpg::AtpgBackend atpg = atpg::AtpgBackend::Podem;
  /// Fault model for the whole measurement: the fault universe and every
  /// simulation query switch together.  The combinational ATPG stays
  /// stuck-at-only, so under Transition the test set C is generated
  /// against the stuck-at universe and its length-one tests launch no
  /// transitions — exactly the at-speed gap the paper's procedure closes.
  /// Changes the measured numbers, so results are cached under a
  /// model-suffixed path (cache_entry_path).
  fault::FaultModelKind fault_model = fault::FaultModelKind::StuckAt;
  /// Balanced scan chains for the N_cyc cost accounting: a scan
  /// operation shifts ceil(N_SV / num_chains) cycles (0 and 1 both mean
  /// the paper's single chain).  Changes every reported cycle count, so
  /// chain counts > 1 also get their own cache entries.
  std::size_t num_chains = 1;
  bool run_dynamic_baseline = true;
  /// Cache file path prefix; empty disables caching *and* the per-phase
  /// checkpoint journal (see docs/robustness.md for the on-disk format).
  std::string cache_path = ".scanc_cache";
  bool force_fresh = false;  ///< ignore cached entries and journals
  bool verbose = false;      ///< progress notes to stderr
  /// Optional provider of shared, immutable inputs (see SharedInputs).
  /// Called once at measurement entry; null fields are built locally.
  std::function<SharedInputs(const gen::SuiteEntry&, fault::FaultModelKind)>
      shared_inputs;
  /// Optional pre-built simulator to run every query on.  The caller
  /// keeps ownership and must guarantee exclusive use for the duration
  /// of the call; it must have been constructed on exactly the circuit
  /// and fault list `shared_inputs` returns.  run_circuit installs its
  /// own threads/kernel/cancel settings and detaches the cancel token
  /// on every exit path, so a pooled simulator — whose warmed trace
  /// cache is the point of reuse — comes back clean for the next job.
  fault::FaultSimulator* simulator = nullptr;
  /// Optional machine progress hook: called with a short phase note at
  /// every runner and pipeline phase boundary (same strings the
  /// --verbose stderr notes print).  The service watchdog uses it as a
  /// per-job liveness stamp.  Must not throw.
  std::function<void(const char*)> progress;
  /// Cooperative cancellation for the whole run: raised explicitly
  /// (e.g. by util::ScopedSignalCancel on SIGINT/SIGTERM) or by a
  /// deadline (util::CancelToken::make(util::Deadline::after(s)) — the
  /// bench binaries' --time-budget flag).  On cancellation run_circuit
  /// returns a partial CircuitRun (completed == false) after
  /// checkpointing every finished phase, and run_suite stops launching
  /// circuits.  The default token never cancels.
  util::CancelToken cancel;
};

/// Runs (or loads from cache) the full measurement for one suite entry.
[[nodiscard]] CircuitRun run_circuit(const gen::SuiteEntry& entry,
                                     const RunnerOptions& options);

/// Runs the suite (all entries; `include_large` adds s35932).
[[nodiscard]] std::vector<CircuitRun> run_suite(bool include_large,
                                                const RunnerOptions& options);

/// Cache primitives (exposed for tests).
[[nodiscard]] std::string serialize_run(const CircuitRun& run);
[[nodiscard]] std::optional<CircuitRun> deserialize_run(
    const std::string& text);

/// On-disk location of the cached result for `circuit_name` under
/// `options` (the per-phase checkpoint journal lives next to it at this
/// path + ".journal").  Exposed for the resilience tests.
[[nodiscard]] std::string cache_entry_path(const RunnerOptions& options,
                                           const std::string& circuit_name);

}  // namespace scanc::expt
