#include "expt/options.hpp"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>

#include <iostream>

#include "gen/suite.hpp"
#include "util/cancel.hpp"
#include "util/event_bus.hpp"
#include "util/telemetry.hpp"

namespace scanc::expt {
namespace {

bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

std::vector<std::string> split_names(const std::string& arg) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= arg.size(); ++i) {
    if (i == arg.size() || arg[i] == ',') {
      if (i > start) out.push_back(arg.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

/// Parses a kernel-mode name; throws so a typo does not silently fall
/// back to the default.
fault::KernelMode parse_kernel(const std::string& flag, const char* value) {
  const std::string v = value;
  if (v == "auto") return fault::KernelMode::Auto;
  if (v == "full") return fault::KernelMode::Full;
  if (v == "cone") return fault::KernelMode::Cone;
  throw std::invalid_argument("bad kernel for " + flag + ": " + v +
                              " (expected auto|full|cone)");
}

/// Parses a fault-model name; throws so a typo does not silently measure
/// the default model.
fault::FaultModelKind parse_model(const std::string& flag,
                                  const char* value) {
  const std::string v = value;
  if (v == "stuck") return fault::FaultModelKind::StuckAt;
  if (v == "transition") return fault::FaultModelKind::Transition;
  throw std::invalid_argument("bad fault model for " + flag + ": " + v +
                              " (expected stuck|transition)");
}

/// Parses an ATPG backend name; throws so a typo does not silently run
/// the structural default and leave aborted faults unresolved.
atpg::AtpgBackend parse_atpg(const std::string& flag, const char* value) {
  const std::string v = value;
  if (v == "podem") return atpg::AtpgBackend::Podem;
  if (v == "sat") return atpg::AtpgBackend::Sat;
  if (v == "auto") return atpg::AtpgBackend::Auto;
  throw std::invalid_argument("bad atpg backend for " + flag + ": " + v +
                              " (expected podem|sat|auto)");
}

/// Parses a time budget in (fractional) seconds; throws on garbage so a
/// typo does not silently run without a deadline.
double parse_seconds(const std::string& flag, const char* value) {
  char* end = nullptr;
  errno = 0;
  const double s = std::strtod(value, &end);
  if (end == value || *end != '\0' || !(s > 0.0)) {
    throw std::invalid_argument("bad time budget for " + flag + ": " +
                                value);
  }
  return s;
}

}  // namespace

BenchConfig parse_bench_args(int argc, const char* const* argv) {
  BenchConfig cfg;
  if (const char* v = std::getenv("SCANC_CIRCUITS")) {
    cfg.circuits = split_names(v);
  }
  cfg.include_large = env_flag("SCANC_FULL");
  cfg.runner.force_fresh = env_flag("SCANC_FRESH");
  cfg.runner.verbose = env_flag("SCANC_VERBOSE");
  if (const char* v = std::getenv("SCANC_SEED")) {
    cfg.runner.seed = std::strtoull(v, nullptr, 10);
  }
  if (const char* v = std::getenv("SCANC_THREADS")) {
    cfg.runner.num_threads = std::strtoull(v, nullptr, 10);
  }
  if (const char* v = std::getenv("SCANC_KERNEL")) {
    cfg.runner.kernel = parse_kernel("SCANC_KERNEL", v);
  }
  if (const char* v = std::getenv("SCANC_FAULT_MODEL")) {
    cfg.runner.fault_model = parse_model("SCANC_FAULT_MODEL", v);
  }
  if (const char* v = std::getenv("SCANC_ATPG")) {
    cfg.runner.atpg = parse_atpg("SCANC_ATPG", v);
  }
  if (const char* v = std::getenv("SCANC_CHAINS")) {
    cfg.runner.num_chains = std::strtoull(v, nullptr, 10);
  }
  if (const char* v = std::getenv("SCANC_CACHE")) {
    cfg.runner.cache_path = v;
  }
  if (const char* v = std::getenv("SCANC_TIME_BUDGET")) {
    cfg.runner.cancel = util::CancelToken::make(
        util::Deadline::after(parse_seconds("SCANC_TIME_BUDGET", v)));
  }
  if (const char* v = std::getenv("SCANC_TRACE")) cfg.trace_path = v;
  if (const char* v = std::getenv("SCANC_METRICS")) cfg.metrics_path = v;
  if (const char* v = std::getenv("SCANC_EVENT_LOG")) {
    cfg.event_log_path = v;
  }
  cfg.verbose_metrics = env_flag("SCANC_VERBOSE_METRICS");
  if (const char* v = std::getenv("SCANC_HEARTBEAT")) {
    cfg.heartbeat_seconds = parse_seconds("SCANC_HEARTBEAT", v);
  }

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--circuits=", 0) == 0) {
      cfg.circuits = split_names(arg.substr(11));
    } else if (arg == "--full") {
      cfg.include_large = true;
    } else if (arg == "--fresh") {
      cfg.runner.force_fresh = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      cfg.runner.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      cfg.runner.num_threads = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--kernel=", 0) == 0) {
      cfg.runner.kernel = parse_kernel("--kernel", arg.c_str() + 9);
    } else if (arg.rfind("--fault-model=", 0) == 0) {
      cfg.runner.fault_model =
          parse_model("--fault-model", arg.c_str() + 14);
    } else if (arg.rfind("--atpg=", 0) == 0) {
      cfg.runner.atpg = parse_atpg("--atpg", arg.c_str() + 7);
    } else if (arg.rfind("--chains=", 0) == 0) {
      cfg.runner.num_chains =
          std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--cache=", 0) == 0) {
      cfg.runner.cache_path = arg.substr(8);
    } else if (arg.rfind("--time-budget=", 0) == 0) {
      // Anchored here, at parse time: the budget covers the whole
      // invocation, not each circuit.
      cfg.runner.cancel = util::CancelToken::make(util::Deadline::after(
          parse_seconds("--time-budget", arg.c_str() + 14)));
    } else if (arg == "--no-dynamic") {
      cfg.runner.run_dynamic_baseline = false;
    } else if (arg == "--verbose") {
      cfg.runner.verbose = true;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      cfg.trace_path = arg.substr(12);
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      cfg.metrics_path = arg.substr(14);
    } else if (arg.rfind("--event-log=", 0) == 0) {
      cfg.event_log_path = arg.substr(12);
    } else if (arg == "--verbose-metrics") {
      cfg.verbose_metrics = true;
    } else if (arg.rfind("--heartbeat=", 0) == 0) {
      cfg.heartbeat_seconds =
          parse_seconds("--heartbeat", arg.c_str() + 12);
    } else {
      throw std::invalid_argument("unknown flag: " + arg);
    }
  }

  for (const std::string& name : cfg.circuits) {
    if (!gen::find_suite_entry(name)) {
      throw std::invalid_argument("unknown circuit: " + name);
    }
  }
  return cfg;
}

std::vector<CircuitRun> run_configured(const BenchConfig& config) {
  // Telemetry sinks wrap the whole run: the trace is finished and the
  // metrics snapshot written even when a circuit cancels mid-phase.
  if (!config.trace_path.empty() && !obs::open_trace(config.trace_path)) {
    std::cerr << "warning: cannot open trace file " << config.trace_path
              << "\n";
  }
  if (!config.event_log_path.empty() &&
      !obs::open_event_log(config.event_log_path)) {
    std::cerr << "warning: cannot open event log " << config.event_log_path
              << "\n";
  }
  obs::Heartbeat heartbeat;
  if (config.heartbeat_seconds > 0.0) {
    heartbeat.start(config.heartbeat_seconds);
  }

  std::vector<CircuitRun> runs;
  if (config.circuits.empty()) {
    runs = run_suite(config.include_large, config.runner);
  } else {
    for (const std::string& name : config.circuits) {
      if (config.runner.cancel.stop_requested()) break;
      runs.push_back(
          run_circuit(*gen::find_suite_entry(name), config.runner));
      if (!runs.back().completed) break;
    }
  }

  heartbeat.stop();
  // Event log before trace: the final phase-end events published above
  // must be flushed before any sink teardown seals the run.
  obs::shutdown_sinks();
  if (!config.metrics_path.empty() &&
      !obs::write_metrics_file(config.metrics_path)) {
    std::cerr << "warning: cannot write metrics file "
              << config.metrics_path << "\n";
  }
  if (config.verbose_metrics) obs::print_summary(std::cerr);
  return runs;
}

}  // namespace scanc::expt
