#include "expt/runner.hpp"

#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <unordered_map>

#include "atpg/comb_tset.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "tcomp/baselines.hpp"
#include "tcomp/pipeline.hpp"
#include "tgen/greedy_tgen.hpp"
#include "tgen/random_seq.hpp"

namespace scanc::expt {
namespace {

/// Bump when measurement semantics change: stale cache entries are
/// discarded by version mismatch.
constexpr int kCacheVersion = 4;

std::string cache_file(const RunnerOptions& opt, const std::string& name) {
  return opt.cache_path + "." + name + ".seed" + std::to_string(opt.seed);
}

void put(std::ostream& out, const std::string& key, std::uint64_t v) {
  out << key << "=" << v << "\n";
}

void put(std::ostream& out, const std::string& key, double v) {
  out << key << "=" << v << "\n";
}

void put_variant(std::ostream& out, const std::string& p,
                 const VariantResult& v) {
  put(out, p + ".det_t0", v.det_t0);
  put(out, p + ".det_scan", v.det_scan);
  put(out, p + ".det_final", v.det_final);
  put(out, p + ".len_t0", v.len_t0);
  put(out, p + ".len_scan", v.len_scan);
  put(out, p + ".added", v.added);
  put(out, p + ".cyc_init", v.cyc_init);
  put(out, p + ".cyc_comp", v.cyc_comp);
  put(out, p + ".atspeed_ave", v.atspeed_ave);
  put(out, p + ".atspeed_min", v.atspeed_min);
  put(out, p + ".atspeed_max", v.atspeed_max);
  put(out, p + ".tests_final", v.tests_final);
  put(out, p + ".vectors_final", v.vectors_final);
}

using Map = std::unordered_map<std::string, std::string>;

std::uint64_t get_u(const Map& m, const std::string& key) {
  return std::stoull(m.at(key));
}

double get_d(const Map& m, const std::string& key) {
  return std::stod(m.at(key));
}

VariantResult get_variant(const Map& m, const std::string& p) {
  VariantResult v;
  v.det_t0 = get_u(m, p + ".det_t0");
  v.det_scan = get_u(m, p + ".det_scan");
  v.det_final = get_u(m, p + ".det_final");
  v.len_t0 = get_u(m, p + ".len_t0");
  v.len_scan = get_u(m, p + ".len_scan");
  v.added = get_u(m, p + ".added");
  v.cyc_init = get_u(m, p + ".cyc_init");
  v.cyc_comp = get_u(m, p + ".cyc_comp");
  v.atspeed_ave = get_d(m, p + ".atspeed_ave");
  v.atspeed_min = get_u(m, p + ".atspeed_min");
  v.atspeed_max = get_u(m, p + ".atspeed_max");
  v.tests_final = get_u(m, p + ".tests_final");
  v.vectors_final = get_u(m, p + ".vectors_final");
  return v;
}

VariantResult measure_variant(fault::FaultSimulator& fsim,
                              const sim::Sequence& t0,
                              std::span<const atpg::CombTest> comb,
                              std::size_t nsv, bool verbose) {
  tcomp::PipelineOptions popt;
  if (verbose) {
    const auto t0_clock = std::chrono::steady_clock::now();
    popt.trace = [t0_clock](const char* what) {
      const double elapsed = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0_clock)
                                 .count();
      std::cerr << "    ... +" << std::fixed << std::setprecision(1)
                << elapsed << "s " << what << "\n";
    };
  }
  const tcomp::PipelineResult r = tcomp::run_pipeline(fsim, t0, comb, popt);
  VariantResult v;
  v.det_t0 = r.f0.count();
  v.det_scan = r.f_seq.count();
  v.det_final = r.final_coverage.count();
  v.len_t0 = t0.length();
  v.len_scan = r.tau_seq.seq.length();
  v.added = r.added_tests;
  v.cyc_init = tcomp::clock_cycles(r.initial, nsv);
  v.cyc_comp = tcomp::clock_cycles(r.compacted, nsv);
  const tcomp::AtSpeedStats s = tcomp::at_speed_stats(r.compacted);
  v.atspeed_ave = s.average;
  v.atspeed_min = s.min_length;
  v.atspeed_max = s.max_length;
  v.tests_final = r.compacted.size();
  v.vectors_final = r.compacted.total_vectors();
  return v;
}

}  // namespace

std::string serialize_run(const CircuitRun& run) {
  std::ostringstream out;
  out << "version=" << kCacheVersion << "\n";
  out << "name=" << run.name << "\n";
  put(out, "flip_flops", run.flip_flops);
  put(out, "comb_tests", run.comb_tests);
  put(out, "faults", run.faults);
  put(out, "detectable", run.detectable);
  put_variant(out, "atpg", run.atpg);
  put_variant(out, "random", run.random);
  put(out, "cyc_dyn", run.cyc_dyn);
  put(out, "cyc_4_init", run.cyc_4_init);
  put(out, "cyc_4_comp", run.cyc_4_comp);
  put(out, "atspeed_ave_4", run.atspeed_ave_4);
  put(out, "atspeed_min_4", run.atspeed_min_4);
  put(out, "atspeed_max_4", run.atspeed_max_4);
  put(out, "seconds", run.seconds);
  return out.str();
}

std::optional<CircuitRun> deserialize_run(const std::string& text) {
  Map m;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    m[line.substr(0, eq)] = line.substr(eq + 1);
  }
  try {
    if (std::stoi(m.at("version")) != kCacheVersion) return std::nullopt;
    CircuitRun run;
    run.name = m.at("name");
    run.flip_flops = get_u(m, "flip_flops");
    run.comb_tests = get_u(m, "comb_tests");
    run.faults = get_u(m, "faults");
    run.detectable = get_u(m, "detectable");
    run.atpg = get_variant(m, "atpg");
    run.random = get_variant(m, "random");
    run.cyc_dyn = get_u(m, "cyc_dyn");
    run.cyc_4_init = get_u(m, "cyc_4_init");
    run.cyc_4_comp = get_u(m, "cyc_4_comp");
    run.atspeed_ave_4 = get_d(m, "atspeed_ave_4");
    run.atspeed_min_4 = get_u(m, "atspeed_min_4");
    run.atspeed_max_4 = get_u(m, "atspeed_max_4");
    run.seconds = get_d(m, "seconds");
    return run;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

CircuitRun run_circuit(const gen::SuiteEntry& entry,
                       const RunnerOptions& options) {
  if (!options.cache_path.empty() && !options.force_fresh) {
    std::ifstream in(cache_file(options, entry.params.name));
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      if (auto run = deserialize_run(buf.str())) return *run;
    }
  }

  const auto start = std::chrono::steady_clock::now();
  const auto note = [&](const char* what) {
    if (options.verbose) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      std::cerr << "[" << entry.params.name << " +" << std::fixed
                << std::setprecision(1) << elapsed << "s] " << what
                << "\n";
    }
  };

  note("building circuit");
  const netlist::Circuit circuit = gen::build_suite_circuit(entry);
  const fault::FaultList faults = fault::FaultList::build(circuit);
  fault::FaultSimulator fsim(circuit, faults);
  fsim.set_num_threads(options.num_threads);
  const std::size_t nsv = circuit.num_flip_flops();

  CircuitRun run;
  run.name = entry.params.name;
  run.flip_flops = nsv;
  run.faults = faults.num_classes();

  note("generating combinational test set C");
  atpg::CombTestSetOptions copt;
  copt.seed = options.seed;
  const atpg::CombTestSet comb =
      atpg::generate_comb_test_set(circuit, faults, copt);
  run.comb_tests = comb.tests.size();
  run.detectable = faults.num_classes() - comb.proven_untestable;

  note("generating T0 (greedy)");
  tgen::GreedyTgenOptions gopt;
  gopt.seed = options.seed;
  gopt.max_length = 1024;
  const tgen::GreedyTgenResult t0_atpg =
      generate_test_sequence(circuit, faults, gopt);

  note("pipeline (greedy T0)");
  run.atpg = measure_variant(fsim, t0_atpg.sequence, comb.tests, nsv,
                             options.verbose);

  note("pipeline (random T0)");
  const sim::Sequence t0_rand = tgen::random_test_sequence(
      circuit, options.random_t0_length, options.seed);
  run.random = measure_variant(fsim, t0_rand, comb.tests, nsv,
                               options.verbose);

  note("baseline [4]");
  const tcomp::ScanTestSet b4 = tcomp::comb_initial_set(comb.tests);
  run.cyc_4_init = tcomp::clock_cycles(b4, nsv);
  const tcomp::CombineResult b4c = tcomp::combine_tests(fsim, b4);
  run.cyc_4_comp = tcomp::clock_cycles(b4c.tests, nsv);
  const tcomp::AtSpeedStats s4 = tcomp::at_speed_stats(b4c.tests);
  run.atspeed_ave_4 = s4.average;
  run.atspeed_min_4 = s4.min_length;
  run.atspeed_max_4 = s4.max_length;

  if (options.run_dynamic_baseline) {
    note("baseline [2,3]-style dynamic");
    tcomp::DynamicBaselineOptions dopt;
    dopt.seed = options.seed;
    const tcomp::ScanTestSet dyn =
        tcomp::dynamic_baseline(fsim, comb.tests, comb.detected, dopt);
    run.cyc_dyn = tcomp::clock_cycles(dyn, nsv);
  }

  run.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();

  if (!options.cache_path.empty()) {
    std::ofstream out(cache_file(options, entry.params.name));
    out << serialize_run(run);
  }
  return run;
}

std::vector<CircuitRun> run_suite(bool include_large,
                                  const RunnerOptions& options) {
  std::vector<CircuitRun> runs;
  for (const gen::SuiteEntry& e : gen::suite()) {
    if (e.large && !include_large) continue;
    runs.push_back(run_circuit(e, options));
  }
  return runs;
}

}  // namespace scanc::expt
