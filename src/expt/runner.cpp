#include "expt/runner.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <unordered_map>

#include "atpg/comb_tset.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "tcomp/baselines.hpp"
#include "tcomp/pipeline.hpp"
#include "tgen/greedy_tgen.hpp"
#include "tgen/random_seq.hpp"
#include "util/rng.hpp"
#include "util/store.hpp"
#include "util/telemetry.hpp"

namespace scanc::expt {
namespace {

/// Bump when measurement semantics change: stale cache entries and
/// journals are discarded by version mismatch.
constexpr int kCacheVersion = 6;

void put(std::ostream& out, const std::string& key, std::uint64_t v) {
  out << key << "=" << v << "\n";
}

void put(std::ostream& out, const std::string& key, double v) {
  out << key << "=" << v << "\n";
}

void put_variant(std::ostream& out, const std::string& p,
                 const VariantResult& v) {
  put(out, p + ".det_t0", v.det_t0);
  put(out, p + ".det_scan", v.det_scan);
  put(out, p + ".det_final", v.det_final);
  put(out, p + ".len_t0", v.len_t0);
  put(out, p + ".len_scan", v.len_scan);
  put(out, p + ".added", v.added);
  put(out, p + ".cyc_init", v.cyc_init);
  put(out, p + ".cyc_comp", v.cyc_comp);
  put(out, p + ".atspeed_ave", v.atspeed_ave);
  put(out, p + ".atspeed_min", v.atspeed_min);
  put(out, p + ".atspeed_max", v.atspeed_max);
  put(out, p + ".tests_final", v.tests_final);
  put(out, p + ".vectors_final", v.vectors_final);
}

using Map = std::unordered_map<std::string, std::string>;

// No-throw lookups: a missing or malformed key flips `ok` so the caller
// treats the whole entry as a cache miss.  A corrupt file must never
// escape as an exception (the store layer already filters torn writes;
// this guards entries whose *payload* was damaged or hand-edited).

std::uint64_t get_u(const Map& m, const std::string& key, bool& ok) {
  const auto it = m.find(key);
  if (it == m.end()) {
    ok = false;
    return 0;
  }
  std::uint64_t v = 0;
  const char* first = it->second.data();
  const char* last = first + it->second.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc() || ptr != last) {
    ok = false;
    return 0;
  }
  return v;
}

double get_d(const Map& m, const std::string& key, bool& ok) {
  const auto it = m.find(key);
  if (it == m.end()) {
    ok = false;
    return 0.0;
  }
  // strtod instead of from_chars<double> for toolchain portability;
  // it never throws.  Reject trailing junk and empty values.
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() ||
      end != it->second.c_str() + it->second.size()) {
    ok = false;
    return 0.0;
  }
  return v;
}

std::string get_s(const Map& m, const std::string& key, bool& ok) {
  const auto it = m.find(key);
  if (it == m.end()) {
    ok = false;
    return {};
  }
  return it->second;
}

VariantResult get_variant(const Map& m, const std::string& p, bool& ok) {
  VariantResult v;
  v.det_t0 = get_u(m, p + ".det_t0", ok);
  v.det_scan = get_u(m, p + ".det_scan", ok);
  v.det_final = get_u(m, p + ".det_final", ok);
  v.len_t0 = get_u(m, p + ".len_t0", ok);
  v.len_scan = get_u(m, p + ".len_scan", ok);
  v.added = get_u(m, p + ".added", ok);
  v.cyc_init = get_u(m, p + ".cyc_init", ok);
  v.cyc_comp = get_u(m, p + ".cyc_comp", ok);
  v.atspeed_ave = get_d(m, p + ".atspeed_ave", ok);
  v.atspeed_min = get_u(m, p + ".atspeed_min", ok);
  v.atspeed_max = get_u(m, p + ".atspeed_max", ok);
  v.tests_final = get_u(m, p + ".tests_final", ok);
  v.vectors_final = get_u(m, p + ".vectors_final", ok);
  return v;
}

Map parse_lines(const std::string& text) {
  Map m;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    m[line.substr(0, eq)] = line.substr(eq + 1);
  }
  return m;
}

// ---------------------------------------------------------------------
// Per-phase checkpoint journal.
//
// run_circuit's measurement splits into four independent phases (the
// pipeline on the greedy T0, the pipeline on the random T0, the [4]
// baseline, the dynamic baseline).  Each phase's scalar results are
// journaled — atomically, via the checksummed store — the moment the
// phase completes *uninterrupted*; a later attempt (after a deadline
// cut, SIGINT, or kill -9) reloads the journal and skips straight to
// the first missing phase.  Inputs (circuit, C, T0) are recomputed
// deterministically from the seed, so a resumed run produces numbers
// bit-identical to an uninterrupted one.  The `seconds` field
// accumulates wall-clock across attempts.

struct PhaseJournal {
  bool has_atpg = false;
  bool has_random = false;
  bool has_baseline4 = false;
  bool has_dynamic = false;
  VariantResult atpg;
  VariantResult random;
  std::uint64_t cyc_4_init = 0;
  std::uint64_t cyc_4_comp = 0;
  double atspeed_ave_4 = 0.0;
  std::size_t atspeed_min_4 = 0;
  std::size_t atspeed_max_4 = 0;
  std::uint64_t cyc_dyn = 0;
  double seconds = 0.0;  ///< wall-clock spent in prior attempts
  /// Cumulative telemetry counters across all attempts, captured at the
  /// last checkpoint, and the pid of the process that wrote them.  On
  /// load, a differing pid means the writer died: its totals are
  /// credited into the live registry so a resumed run's metrics
  /// snapshot reports cumulative work.  A matching pid means the
  /// counters are already in this process's registry (in-process
  /// resume) and must not be double-counted.
  obs::CounterSnapshot obs{};
  std::uint64_t obs_pid = 0;
};

std::string serialize_journal(const PhaseJournal& j) {
  std::ostringstream out;
  out << "version=" << kCacheVersion << "\n";
  put(out, "seconds", j.seconds);
  if (j.has_atpg) put_variant(out, "atpg", j.atpg);
  if (j.has_random) put_variant(out, "random", j.random);
  if (j.has_baseline4) {
    put(out, "cyc_4_init", j.cyc_4_init);
    put(out, "cyc_4_comp", j.cyc_4_comp);
    put(out, "atspeed_ave_4", j.atspeed_ave_4);
    put(out, "atspeed_min_4", j.atspeed_min_4);
    put(out, "atspeed_max_4", j.atspeed_max_4);
  }
  if (j.has_dynamic) put(out, "cyc_dyn", j.cyc_dyn);
  put(out, "obs_pid", j.obs_pid);
  for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
    put(out,
        std::string("obs.") +
            obs::counter_name(static_cast<obs::Counter>(i)),
        j.obs[i]);
  }
  return out.str();
}

PhaseJournal parse_journal(const std::string& text) {
  const Map m = parse_lines(text);
  PhaseJournal j;
  bool ok = true;
  if (get_u(m, "version", ok) != kCacheVersion || !ok) return {};
  j.seconds = get_d(m, "seconds", ok);
  if (!ok) return {};
  // Each phase is optional; a damaged phase degrades to "recompute it".
  if (m.count("atpg.det_t0") != 0) {
    bool vok = true;
    j.atpg = get_variant(m, "atpg", vok);
    j.has_atpg = vok;
  }
  if (m.count("random.det_t0") != 0) {
    bool vok = true;
    j.random = get_variant(m, "random", vok);
    j.has_random = vok;
  }
  if (m.count("cyc_4_init") != 0) {
    bool vok = true;
    j.cyc_4_init = get_u(m, "cyc_4_init", vok);
    j.cyc_4_comp = get_u(m, "cyc_4_comp", vok);
    j.atspeed_ave_4 = get_d(m, "atspeed_ave_4", vok);
    j.atspeed_min_4 = get_u(m, "atspeed_min_4", vok);
    j.atspeed_max_4 = get_u(m, "atspeed_max_4", vok);
    j.has_baseline4 = vok;
  }
  if (m.count("cyc_dyn") != 0) {
    bool vok = true;
    j.cyc_dyn = get_u(m, "cyc_dyn", vok);
    j.has_dynamic = vok;
  }
  // Telemetry counters are best-effort: a missing or malformed value
  // reads as 0 without invalidating the journal (metrics degrade, the
  // measured numbers do not).
  for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
    bool cok = true;
    const std::uint64_t v = get_u(
        m,
        std::string("obs.") +
            obs::counter_name(static_cast<obs::Counter>(i)),
        cok);
    j.obs[i] = cok ? v : 0;
  }
  {
    bool cok = true;
    const std::uint64_t pid = get_u(m, "obs_pid", cok);
    j.obs_pid = cok ? pid : 0;
  }
  return j;
}

struct VariantMeasurement {
  VariantResult result;
  bool completed = true;
  tcomp::PipelinePhase stopped_at = tcomp::PipelinePhase::Done;
};

VariantMeasurement measure_variant(fault::FaultSimulator& fsim,
                                   const sim::Sequence& t0,
                                   std::span<const atpg::CombTest> comb,
                                   const RunnerOptions& options,
                                   const fault::FaultSet& universe) {
  tcomp::PipelineOptions popt;
  popt.cancel = options.cancel;
  popt.num_chains = options.num_chains;
  popt.universe = universe;  // empty unless the backend proved faults out
  if (options.verbose || options.progress) {
    const auto t0_clock = std::chrono::steady_clock::now();
    const bool verbose = options.verbose;
    const auto progress = options.progress;
    popt.trace = [t0_clock, verbose, progress](const char* what) {
      if (progress) progress(what);
      if (!verbose) return;
      const double elapsed = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0_clock)
                                 .count();
      std::cerr << "    ... +" << std::fixed << std::setprecision(1)
                << elapsed << "s " << what << "\n";
    };
  }
  const tcomp::PipelineResult r = tcomp::run_pipeline(fsim, t0, comb, popt);
  VariantMeasurement out;
  out.completed = r.completed;
  out.stopped_at = r.stopped_at;
  VariantResult& v = out.result;
  v.det_t0 = r.f0.count();
  v.det_scan = r.f_seq.count();
  v.det_final = r.final_coverage.count();
  v.len_t0 = t0.length();
  v.len_scan = r.tau_seq.seq.length();
  v.added = r.added_tests;
  v.cyc_init = r.initial_cycles;
  v.cyc_comp = r.compacted_cycles;
  const tcomp::AtSpeedStats s = tcomp::at_speed_stats(r.compacted);
  v.atspeed_ave = s.average;
  v.atspeed_min = s.min_length;
  v.atspeed_max = s.max_length;
  v.tests_final = r.compacted.size();
  v.vectors_final = r.compacted.total_vectors();
  return out;
}

}  // namespace

std::string cache_entry_path(const RunnerOptions& options,
                             const std::string& circuit_name) {
  std::string path = options.cache_path + "." + circuit_name + ".seed" +
                     std::to_string(options.seed);
  // A non-default fault model or chain count measures different numbers,
  // so each combination gets its own entry (and journal); the defaults
  // keep the historical path so existing caches stay valid.
  if (options.fault_model != fault::FaultModelKind::StuckAt) {
    path += std::string(".") +
            fault::FaultModel::get(options.fault_model).name();
  }
  if (options.num_chains > 1) {
    path += ".ch" + std::to_string(options.num_chains);
  }
  // A non-default ATPG backend changes C and the fault universe
  // (docs/atpg.md), hence the measured numbers.
  if (options.atpg != atpg::AtpgBackend::Podem) {
    path += std::string(".") + atpg::to_string(options.atpg);
  }
  return path;
}

std::string serialize_run(const CircuitRun& run) {
  std::ostringstream out;
  out << "version=" << kCacheVersion << "\n";
  out << "name=" << run.name << "\n";
  put(out, "flip_flops", run.flip_flops);
  put(out, "comb_tests", run.comb_tests);
  put(out, "faults", run.faults);
  put(out, "detectable", run.detectable);
  put(out, "proven_untestable", run.proven_untestable);
  put(out, "aborted", run.aborted);
  put_variant(out, "atpg", run.atpg);
  put_variant(out, "random", run.random);
  put(out, "cyc_dyn", run.cyc_dyn);
  put(out, "cyc_4_init", run.cyc_4_init);
  put(out, "cyc_4_comp", run.cyc_4_comp);
  put(out, "atspeed_ave_4", run.atspeed_ave_4);
  put(out, "atspeed_min_4", run.atspeed_min_4);
  put(out, "atspeed_max_4", run.atspeed_max_4);
  put(out, "seconds", run.seconds);
  put(out, "completed", static_cast<std::uint64_t>(run.completed ? 1 : 0));
  out << "stopped_at=" << run.stopped_at << "\n";
  return out.str();
}

std::optional<CircuitRun> deserialize_run(const std::string& text) {
  const Map m = parse_lines(text);
  bool ok = true;
  if (get_u(m, "version", ok) != kCacheVersion || !ok) return std::nullopt;
  CircuitRun run;
  run.name = get_s(m, "name", ok);
  run.flip_flops = get_u(m, "flip_flops", ok);
  run.comb_tests = get_u(m, "comb_tests", ok);
  run.faults = get_u(m, "faults", ok);
  run.detectable = get_u(m, "detectable", ok);
  run.proven_untestable = get_u(m, "proven_untestable", ok);
  run.aborted = get_u(m, "aborted", ok);
  run.atpg = get_variant(m, "atpg", ok);
  run.random = get_variant(m, "random", ok);
  run.cyc_dyn = get_u(m, "cyc_dyn", ok);
  run.cyc_4_init = get_u(m, "cyc_4_init", ok);
  run.cyc_4_comp = get_u(m, "cyc_4_comp", ok);
  run.atspeed_ave_4 = get_d(m, "atspeed_ave_4", ok);
  run.atspeed_min_4 = get_u(m, "atspeed_min_4", ok);
  run.atspeed_max_4 = get_u(m, "atspeed_max_4", ok);
  run.seconds = get_d(m, "seconds", ok);
  run.completed = get_u(m, "completed", ok) != 0;
  run.stopped_at = m.count("stopped_at") != 0 ? m.at("stopped_at") : "";
  if (!ok) return std::nullopt;
  return run;
}

CircuitRun run_circuit(const gen::SuiteEntry& entry,
                       const RunnerOptions& options) {
  const bool use_disk = !options.cache_path.empty();
  const std::string path = cache_entry_path(options, entry.params.name);
  const std::string journal_path = path + ".journal";

  if (use_disk && !options.force_fresh) {
    // A corrupt, truncated, or version-skewed entry degrades to a miss:
    // store_read filters envelope damage, deserialize_run filters
    // payload damage, and neither throws.
    if (const auto payload = util::store_read(path)) {
      if (auto run = deserialize_run(*payload)) return *run;
    }
  }

  PhaseJournal journal;
  if (use_disk && !options.force_fresh) {
    if (const auto payload = util::store_read(journal_path)) {
      journal = parse_journal(*payload);
    }
  }
  if (options.force_fresh && use_disk) std::remove(journal_path.c_str());

  // Counter totals journaled by a *dead* process are merged into the
  // live registry; an in-process retry already holds them.
  if (journal.obs_pid != 0 &&
      journal.obs_pid != static_cast<std::uint64_t>(::getpid())) {
    obs::credit(journal.obs);
  }
  // This attempt's contribution is measured against the registry state
  // at entry (which now includes any credited carry-over).
  const obs::CounterSnapshot attempt_start = obs::snapshot_counters();

  const auto start = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  const auto note = [&](const char* what) {
    if (options.progress) options.progress(what);
    if (options.verbose) {
      std::cerr << "[" << entry.params.name << " +" << std::fixed
                << std::setprecision(1) << elapsed() << "s] " << what
                << "\n";
    }
  };
  // Checkpoint: persist the journal after a phase completes.  Atomic
  // replacement means a kill -9 mid-write leaves the previous journal
  // intact; the interrupted phase simply reruns next time.
  const auto checkpoint = [&] {
    if (!use_disk) return;
    PhaseJournal j = journal;
    j.seconds += elapsed();
    // Cumulative counters = the loaded carry-over plus the delta this
    // attempt produced (delta-based so a fork'd child snapshotting the
    // parent's registry stays correct).
    const obs::CounterSnapshot delta =
        obs::counter_delta(obs::snapshot_counters(), attempt_start);
    for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
      j.obs[i] = journal.obs[i] + delta[i];
    }
    j.obs_pid = static_cast<std::uint64_t>(::getpid());
    util::store_write(journal_path, serialize_journal(j));
  };

  note("building circuit");
  SharedInputs shared;
  if (options.shared_inputs) {
    shared = options.shared_inputs(entry, options.fault_model);
  }
  std::shared_ptr<const netlist::Circuit> circuit_holder = shared.circuit;
  if (!circuit_holder) {
    circuit_holder =
        std::make_shared<const netlist::Circuit>(
            gen::build_suite_circuit(entry));
  }
  const netlist::Circuit& circuit = *circuit_holder;
  const fault::FaultModel& model =
      fault::FaultModel::get(options.fault_model);
  std::shared_ptr<const fault::FaultList> faults_holder = shared.faults;
  if (!faults_holder) {
    faults_holder = std::make_shared<const fault::FaultList>(
        fault::FaultList::build(circuit, model));
  }
  const fault::FaultList& faults = *faults_holder;
  // A host-supplied (pooled) simulator carries a warmed trace cache from
  // earlier jobs on this circuit; otherwise build a private one.  Either
  // way the cancel token is detached on every exit path so a raised
  // per-job token never leaks into the next lease.
  std::optional<fault::FaultSimulator> own_fsim;
  if (options.simulator == nullptr) own_fsim.emplace(circuit, faults);
  fault::FaultSimulator& fsim =
      options.simulator ? *options.simulator : *own_fsim;
  struct CancelDetach {
    fault::FaultSimulator& fsim;
    ~CancelDetach() { fsim.set_cancel({}); }
  } cancel_detach{fsim};
  fsim.set_num_threads(options.num_threads);
  fsim.set_kernel(options.kernel);
  fsim.set_cancel(options.cancel);
  const std::size_t nsv = circuit.num_flip_flops();
  const std::size_t chains = std::max<std::size_t>(1, options.num_chains);

  CircuitRun run;
  run.name = entry.params.name;
  run.flip_flops = nsv;
  run.faults = faults.num_classes();

  // Returns `run` marked partial.  Finished phases were already
  // journaled; this attempt's wall clock joins the accumulated total so
  // the final (completed) `seconds` covers all attempts.
  const auto partial = [&](const std::string& where) {
    run.completed = false;
    run.stopped_at = where;
    run.seconds = journal.seconds + elapsed();
    return run;
  };

  note("generating combinational test set C");
  atpg::CombTestSetOptions copt;
  copt.seed = options.seed;
  copt.cancel = options.cancel;
  copt.backend = options.atpg;
  // Non-empty only under --atpg=sat/auto: all faults minus the classes
  // proven untestable, handed to every pipeline run so Phase 3 stops
  // chasing faults no test can detect.  Stays empty (= no exclusion)
  // under the default backend for bit-identical legacy measurements.
  fault::FaultSet universe;
  atpg::CombTestSet comb;
  if (!model.frame_gated()) {
    comb = atpg::generate_comb_test_set(circuit, faults, copt);
    run.detectable = faults.num_classes() - comb.proven_untestable;
    run.proven_untestable = comb.proven_untestable;
    run.aborted = comb.aborted;
    if (options.atpg != atpg::AtpgBackend::Podem) {
      universe = fsim.all_faults();
      universe -= comb.untestable;
    }
  } else {
    // The combinational ATPG is stuck-at-only: under a frame-gated model
    // C is still the stuck-at test set (deterministic from the seed, the
    // same patterns as a stuck-at run), while the coverage bookkeeping
    // switches to the simulator's universe.  Stuck-at untestability
    // proofs do not carry over, and C's `detected` set indexes the wrong
    // classes — the dynamic baseline instead targets the full fault
    // list, against which C's length-one tests launch no transitions.
    const fault::FaultList sa_faults = fault::FaultList::build(circuit);
    comb = atpg::generate_comb_test_set(circuit, sa_faults, copt);
    comb.detected = fsim.all_faults();
    comb.proven_untestable = 0;
    run.detectable = faults.num_classes();
    if (options.atpg != atpg::AtpgBackend::Podem) {
      // Resolve the transition universe directly (C's stuck-at proofs
      // do not carry over): a cheap random two-frame prefilter knocks
      // out the easily-launched classes, then the SAT backend's
      // two-timeframe encoding resolves the remainder exactly.
      note("resolving transition-fault universe (SAT)");
      fault::FaultSet unresolved = fsim.all_faults();
      util::Rng rng(options.seed ^ 0x7df5a11dULL);
      constexpr std::size_t kPrefilter = 64;
      std::vector<sim::Vector3> states(kPrefilter);
      std::vector<sim::Sequence> seqs(kPrefilter);
      std::vector<fault::FaultSimulator::BatchTest> batch(kPrefilter);
      for (std::size_t i = 0; i < kPrefilter; ++i) {
        states[i] = sim::random_vector(circuit.num_flip_flops(), rng);
        seqs[i].frames.push_back(
            sim::random_vector(circuit.num_inputs(), rng));
        seqs[i].frames.push_back(
            sim::random_vector(circuit.num_inputs(), rng));
        batch[i] = {&states[i], &seqs[i]};
      }
      for (const fault::FaultSet& det :
           fsim.detect_batch(batch, &unresolved)) {
        unresolved -= det;
      }
      atpg::SatBackendOptions so;
      so.cancel = options.cancel;
      atpg::SatBackend sat(circuit, so);
      universe = fsim.all_faults();
      for (fault::FaultClassId id = 0; id < faults.num_classes(); ++id) {
        if (!unresolved.test(id)) continue;
        if (options.cancel.stop_requested()) break;
        const atpg::TransitionTest t =
            sat.generate_transition(faults.representative(id));
        if (t.status == atpg::PodemStatus::Untestable) {
          universe.reset(id);
          ++run.proven_untestable;
        } else if (t.status == atpg::PodemStatus::Aborted) {
          ++run.aborted;
        }
      }
      run.detectable = faults.num_classes() - run.proven_untestable;
    }
  }
  run.comb_tests = comb.tests.size();
  if (options.cancel.stop_requested()) return partial("setup");

  // --- Phase: pipeline on the greedy T0 ------------------------------
  if (journal.has_atpg) {
    note("pipeline (greedy T0): journaled, skipping");
    run.atpg = journal.atpg;
  } else {
    note("generating T0 (greedy)");
    tgen::GreedyTgenOptions gopt;
    gopt.seed = options.seed;
    gopt.max_length = 1024;
    gopt.cancel = options.cancel;
    const tgen::GreedyTgenResult t0_atpg =
        generate_test_sequence(circuit, faults, gopt);
    if (options.cancel.stop_requested()) return partial("setup");

    note("pipeline (greedy T0)");
    const VariantMeasurement m = measure_variant(
        fsim, t0_atpg.sequence, comb.tests, options, universe);
    run.atpg = m.result;
    // Journal only a phase the token never interrupted: the token is
    // sticky, so stop_requested() here proves every simulation inside
    // the phase ran to completion.
    if (!m.completed || options.cancel.stop_requested()) {
      return partial(std::string("pipeline-atpg/") +
                     tcomp::to_string(m.stopped_at));
    }
    journal.atpg = run.atpg;
    journal.has_atpg = true;
    checkpoint();
  }

  // --- Phase: pipeline on the random T0 ------------------------------
  if (journal.has_random) {
    note("pipeline (random T0): journaled, skipping");
    run.random = journal.random;
  } else {
    note("pipeline (random T0)");
    const sim::Sequence t0_rand = tgen::random_test_sequence(
        circuit, options.random_t0_length, options.seed);
    const VariantMeasurement m =
        measure_variant(fsim, t0_rand, comb.tests, options, universe);
    run.random = m.result;
    if (!m.completed || options.cancel.stop_requested()) {
      return partial(std::string("pipeline-random/") +
                     tcomp::to_string(m.stopped_at));
    }
    journal.random = run.random;
    journal.has_random = true;
    checkpoint();
  }

  // --- Phase: baseline [4] -------------------------------------------
  if (journal.has_baseline4) {
    note("baseline [4]: journaled, skipping");
    run.cyc_4_init = journal.cyc_4_init;
    run.cyc_4_comp = journal.cyc_4_comp;
    run.atspeed_ave_4 = journal.atspeed_ave_4;
    run.atspeed_min_4 = journal.atspeed_min_4;
    run.atspeed_max_4 = journal.atspeed_max_4;
  } else {
    note("baseline [4]");
    const tcomp::ScanTestSet b4 = tcomp::comb_initial_set(comb.tests);
    run.cyc_4_init = tcomp::clock_cycles(b4, nsv, chains);
    tcomp::CombineOptions b4opt;
    b4opt.cancel = options.cancel;
    const tcomp::CombineResult b4c = tcomp::combine_tests(fsim, b4, b4opt);
    run.cyc_4_comp = tcomp::clock_cycles(b4c.tests, nsv, chains);
    const tcomp::AtSpeedStats s4 = tcomp::at_speed_stats(b4c.tests);
    run.atspeed_ave_4 = s4.average;
    run.atspeed_min_4 = s4.min_length;
    run.atspeed_max_4 = s4.max_length;
    if (options.cancel.stop_requested()) return partial("baseline4");
    journal.cyc_4_init = run.cyc_4_init;
    journal.cyc_4_comp = run.cyc_4_comp;
    journal.atspeed_ave_4 = run.atspeed_ave_4;
    journal.atspeed_min_4 = run.atspeed_min_4;
    journal.atspeed_max_4 = run.atspeed_max_4;
    journal.has_baseline4 = true;
    checkpoint();
  }

  // --- Phase: dynamic baseline ---------------------------------------
  if (options.run_dynamic_baseline) {
    if (journal.has_dynamic) {
      note("baseline [2,3]-style dynamic: journaled, skipping");
      run.cyc_dyn = journal.cyc_dyn;
    } else {
      note("baseline [2,3]-style dynamic");
      tcomp::DynamicBaselineOptions dopt;
      dopt.seed = options.seed;
      const tcomp::ScanTestSet dyn =
          tcomp::dynamic_baseline(fsim, comb.tests, comb.detected, dopt);
      run.cyc_dyn = tcomp::clock_cycles(dyn, nsv, chains);
      if (options.cancel.stop_requested()) return partial("dynamic");
      journal.cyc_dyn = run.cyc_dyn;
      journal.has_dynamic = true;
      checkpoint();
    }
  }

  run.seconds = journal.seconds + elapsed();

  if (use_disk) {
    // Final result first, then retire the journal; a crash between the
    // two leaves a redundant journal that the next cache hit ignores.
    util::store_write(path, serialize_run(run));
    std::remove(journal_path.c_str());
  }
  return run;
}

std::vector<CircuitRun> run_suite(bool include_large,
                                  const RunnerOptions& options) {
  std::vector<CircuitRun> runs;
  for (const gen::SuiteEntry& e : gen::suite()) {
    if (e.large && !include_large) continue;
    if (options.cancel.stop_requested()) break;
    runs.push_back(run_circuit(e, options));
    // A partial run means the token fired mid-circuit; keep the row
    // (tables mark it) but do not start further circuits.
    if (!runs.back().completed) break;
  }
  return runs;
}

}  // namespace scanc::expt
