#include "svc/client.hpp"

#include <unistd.h>

#include "svc/wire.hpp"

namespace scanc::svc {

Client::~Client() { close(); }

void Client::connect(const std::string& socket_path, double timeout_seconds) {
  close();
  fd_ = connect_unix(socket_path, util::Deadline::after(timeout_seconds));
}

void Client::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Json Client::request(const Json& req, double timeout_seconds) {
  if (fd_ < 0) throw WireError(WireError::Kind::Io, "not connected");
  const util::Deadline deadline = util::Deadline::after(timeout_seconds);
  try {
    write_frame(fd_, req.dump(), deadline);
    std::string payload;
    if (!read_frame(fd_, payload, deadline)) {
      throw WireError(WireError::Kind::Eof, "server closed the connection");
    }
    return Json::parse(payload, 32, kMaxFrameBytes);
  } catch (...) {
    close();  // frame boundary unknown; the connection is unusable
    throw;
  }
}

Json Client::submit(const JobSpec& spec, double timeout_seconds) {
  return submit_raw(job_spec_json(spec), timeout_seconds);
}

Json Client::submit_raw(Json spec, double timeout_seconds) {
  Json req = Json::object();
  req.set("op", Json::string("submit"));
  req.set("spec", std::move(spec));
  return request(req, timeout_seconds);
}

Json Client::status(const std::string& id, double timeout_seconds) {
  Json req = Json::object();
  req.set("op", Json::string("status"));
  req.set("id", Json::string(id));
  return request(req, timeout_seconds);
}

Json Client::wait(const std::string& id, double wait_seconds) {
  Json req = Json::object();
  req.set("op", Json::string("wait"));
  req.set("id", Json::string(id));
  req.set("timeout_seconds", Json::number(wait_seconds));
  // The transport deadline must outlast the server-side wait.
  return request(req, wait_seconds + 30.0);
}

Json Client::stats(double timeout_seconds) {
  Json req = Json::object();
  req.set("op", Json::string("stats"));
  return request(req, timeout_seconds);
}

Json Client::events(const std::string& id, double timeout_seconds) {
  Json req = Json::object();
  req.set("op", Json::string("events"));
  req.set("id", Json::string(id));
  return request(req, timeout_seconds);
}

Json Client::watch_start(const std::string& id, double timeout_seconds) {
  Json req = Json::object();
  req.set("op", Json::string("watch"));
  req.set("id", Json::string(id));
  // Not request(): the reply is the stream's ack frame, and an error
  // must not tear down the fd the stream lives on unless the transport
  // itself failed.
  if (fd_ < 0) throw WireError(WireError::Kind::Io, "not connected");
  const util::Deadline deadline = util::Deadline::after(timeout_seconds);
  try {
    write_frame(fd_, req.dump(), deadline);
    std::string payload;
    if (!read_frame(fd_, payload, deadline)) {
      throw WireError(WireError::Kind::Eof, "server closed the connection");
    }
    return Json::parse(payload, 32, kMaxFrameBytes);
  } catch (...) {
    close();
    throw;
  }
}

std::optional<Json> Client::next_frame(double timeout_seconds) {
  if (fd_ < 0) throw WireError(WireError::Kind::Io, "not connected");
  try {
    // Poll first: a read_frame timeout mid-prefix would consume bytes
    // and desync the stream, so only start reading once bytes are
    // pending, then allow a generous whole-frame deadline.
    if (!poll_readable(fd_, timeout_seconds)) return std::nullopt;
    std::string payload;
    if (!read_frame(fd_, payload, util::Deadline::after(30.0))) {
      throw WireError(WireError::Kind::Eof, "server closed the stream");
    }
    return Json::parse(payload, 32, kMaxFrameBytes);
  } catch (...) {
    close();
    throw;
  }
}

bool Client::ping() {
  try {
    Json req = Json::object();
    req.set("op", Json::string("ping"));
    const Json resp = request(req, 5.0);
    const Json* ok = resp.find("ok");
    return ok != nullptr && ok->is_bool() && ok->as_bool();
  } catch (...) {
    return false;
  }
}

void Client::shutdown_server() {
  Json req = Json::object();
  req.set("op", Json::string("shutdown"));
  (void)request(req, 5.0);
}

}  // namespace scanc::svc
