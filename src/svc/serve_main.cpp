// scanc-serve — the compaction service daemon (docs/service.md).
//
//   scanc-serve --socket=PATH [--state-dir=DIR] [--executors=N]
//               [--max-queue=N] [--max-retries=N] [--stall-seconds=S]
//               [--deadline-check-seconds=S] [--metrics-out=PATH]
//               [--trace-out=PATH] [--event-log=PATH]
//               [--event-log-max-bytes=N] [--heartbeat=SECS] [--quiet]
//
// Serves length-prefixed JSON requests on the AF_UNIX socket until
// SIGINT/SIGTERM (or a client "shutdown" request), then drains: stops
// accepting, cancels running jobs at their next checkpoint, persists the
// resume snapshot under --state-dir, and exits 0.  A relaunched daemon
// with the same --state-dir resumes interrupted jobs bit-identically.
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>

#include "svc/daemon.hpp"
#include "util/cancel.hpp"
#include "util/event_bus.hpp"
#include "util/telemetry.hpp"
#include "util/trace_writer.hpp"

namespace {

struct Options {
  scanc::svc::DaemonOptions daemon;
  std::string metrics_out;
  std::string trace_out;
  std::string event_log;
  std::uint64_t event_log_max_bytes = 8u << 20;
  double heartbeat = 0.0;
  bool quiet = false;
};

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end != nullptr && *end == '\0';
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      return a.c_str() + std::strlen(prefix);
    };
    std::uint64_t v = 0;
    if (a.rfind("--socket=", 0) == 0) {
      opt.daemon.socket_path = value("--socket=");
    } else if (a.rfind("--state-dir=", 0) == 0) {
      opt.daemon.state_dir = value("--state-dir=");
    } else if (a.rfind("--executors=", 0) == 0 &&
               parse_u64(value("--executors="), v)) {
      opt.daemon.executors = static_cast<std::size_t>(v);
    } else if (a.rfind("--max-queue=", 0) == 0 &&
               parse_u64(value("--max-queue="), v)) {
      opt.daemon.max_queue = static_cast<std::size_t>(v);
    } else if (a.rfind("--max-retries=", 0) == 0 &&
               parse_u64(value("--max-retries="), v)) {
      opt.daemon.max_retries = static_cast<int>(v);
    } else if (a.rfind("--stall-seconds=", 0) == 0) {
      opt.daemon.stall_seconds =
          std::strtod(value("--stall-seconds="), nullptr);
    } else if (a.rfind("--deadline-check-seconds=", 0) == 0) {
      opt.daemon.watchdog_interval_seconds =
          std::strtod(value("--deadline-check-seconds="), nullptr);
    } else if (a.rfind("--metrics-out=", 0) == 0) {
      opt.metrics_out = value("--metrics-out=");
    } else if (a.rfind("--trace-out=", 0) == 0) {
      opt.trace_out = value("--trace-out=");
    } else if (a.rfind("--event-log=", 0) == 0) {
      opt.event_log = value("--event-log=");
    } else if (a.rfind("--event-log-max-bytes=", 0) == 0 &&
               parse_u64(value("--event-log-max-bytes="), v)) {
      opt.event_log_max_bytes = v;
    } else if (a.rfind("--heartbeat=", 0) == 0) {
      opt.heartbeat = std::strtod(value("--heartbeat="), nullptr);
    } else if (a == "--quiet") {
      opt.quiet = true;
    } else {
      std::cerr << "scanc-serve: unknown argument: " << a << "\n";
      return false;
    }
  }
  if (opt.daemon.socket_path.empty()) {
    std::cerr << "scanc-serve: --socket=PATH is required\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;

  if (!opt.daemon.state_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opt.daemon.state_dir, ec);
    if (ec) {
      std::cerr << "scanc-serve: cannot create state dir "
                << opt.daemon.state_dir << ": " << ec.message() << "\n";
      return 2;
    }
  }

  const scanc::util::CancelToken shutdown = scanc::util::CancelToken::make();
  const scanc::util::ScopedSignalCancel on_signal(shutdown);

  scanc::obs::Heartbeat heartbeat;
  if (opt.heartbeat > 0.0) heartbeat.start(opt.heartbeat);
  if (!opt.trace_out.empty() && !scanc::obs::open_trace(opt.trace_out)) {
    std::cerr << "scanc-serve: cannot open trace file " << opt.trace_out
              << "\n";
  }
  if (!opt.event_log.empty() &&
      !scanc::obs::open_event_log(opt.event_log, opt.event_log_max_bytes)) {
    std::cerr << "scanc-serve: cannot open event log " << opt.event_log
              << "\n";
  }

  if (!opt.quiet) {
    std::cerr << "scanc-serve: listening on " << opt.daemon.socket_path
              << "\n";
  }
  std::size_t open = 0;
  try {
    scanc::svc::Daemon daemon(opt.daemon);
    open = daemon.run(shutdown);
  } catch (const std::exception& e) {
    std::cerr << "scanc-serve: fatal: " << e.what() << "\n";
    return 1;
  }
  heartbeat.stop();
  // SIGTERM drain ordering: the daemon has already published its final
  // job-state events, so flush+close the event log before the trace is
  // sealed — shutdown_sinks() pins that order (tests/resilience_test.cpp).
  scanc::obs::shutdown_sinks();

  if (!opt.metrics_out.empty()) {
    if (!scanc::obs::write_metrics_file(opt.metrics_out)) {
      std::cerr << "scanc-serve: failed to write " << opt.metrics_out << "\n";
    }
  }
  if (!opt.quiet) {
    std::cerr << "scanc-serve: drained (" << open
              << " job(s) re-queued for resume)\n";
  }
  return 0;
}
