#include "svc/registry.hpp"

#include <algorithm>

#include "util/telemetry.hpp"

namespace scanc::svc {

struct SharedRegistry::SimLease::Slot {
  std::string key;  // "<circuit_key>#<model>"
  expt::SharedInputs inputs;
  std::unique_ptr<fault::FaultSimulator> sim;
  std::uint64_t last_used = 0;
};

namespace {

std::string full_key(const std::string& key, fault::FaultModelKind model) {
  return key + '#' + fault::FaultModel::get(model).name();
}

expt::SharedInputs build_inputs(const gen::SuiteEntry& entry,
                                fault::FaultModelKind model) {
  expt::SharedInputs si;
  si.circuit = std::make_shared<const netlist::Circuit>(
      gen::build_suite_circuit(entry));
  si.faults = std::make_shared<const fault::FaultList>(
      fault::FaultList::build(*si.circuit, fault::FaultModel::get(model)));
  return si;
}

}  // namespace

expt::SharedInputs SharedRegistry::inputs_locked(
    const std::string& fkey, const gen::SuiteEntry& entry,
    fault::FaultModelKind model, std::unique_lock<std::mutex>& lock) {
  for (InputsEntry& e : inputs_) {
    if (e.key == fkey) {
      e.last_used = ++tick_;
      obs::add(obs::Counter::RegistryCircuitHits);
      return e.inputs;
    }
  }
  obs::add(obs::Counter::RegistryCircuitMisses);
  // Build outside the lock: circuit generation + fault collapsing is the
  // expensive part and must not serialize unrelated jobs.  Two racing
  // builders both succeed; the second publish wins and the loser's copy
  // dies with its last job.
  lock.unlock();
  expt::SharedInputs built = build_inputs(entry, model);
  lock.lock();
  for (InputsEntry& e : inputs_) {
    if (e.key == fkey) {  // somebody else published while we built
      e.last_used = ++tick_;
      return e.inputs;
    }
  }
  if (inputs_.size() >= limits_.max_circuits) {
    auto victim = std::min_element(
        inputs_.begin(), inputs_.end(),
        [](const InputsEntry& a, const InputsEntry& b) {
          return a.last_used < b.last_used;
        });
    inputs_.erase(victim);
  }
  inputs_.push_back(InputsEntry{fkey, built, ++tick_});
  return built;
}

expt::SharedInputs SharedRegistry::inputs(const std::string& key,
                                          const gen::SuiteEntry& entry,
                                          fault::FaultModelKind model) {
  std::unique_lock<std::mutex> lock(mutex_);
  return inputs_locked(full_key(key, model), entry, model, lock);
}

SharedRegistry::SimLease SharedRegistry::lease_simulator(
    const std::string& key, const gen::SuiteEntry& entry,
    fault::FaultModelKind model) {
  const std::string fkey = full_key(key, model);
  std::unique_lock<std::mutex> lock(mutex_);
  for (auto it = idle_.begin(); it != idle_.end(); ++it) {
    if ((*it)->key == fkey) {
      std::shared_ptr<SimLease::Slot> slot = std::move(*it);
      idle_.erase(it);
      obs::add(obs::Counter::RegistrySimReuses);
      SimLease lease;
      lease.registry_ = this;
      lease.slot_ = std::move(slot);
      return lease;
    }
  }
  expt::SharedInputs si = inputs_locked(fkey, entry, model, lock);
  lock.unlock();
  auto slot = std::make_shared<SimLease::Slot>();
  slot->key = fkey;
  slot->inputs = si;
  slot->sim =
      std::make_unique<fault::FaultSimulator>(*si.circuit, *si.faults);
  SimLease lease;
  lease.registry_ = this;
  lease.slot_ = std::move(slot);
  return lease;
}

void SharedRegistry::release(std::shared_ptr<SimLease::Slot> slot) {
  std::unique_lock<std::mutex> lock(mutex_);
  slot->last_used = ++tick_;
  if (idle_.size() >= limits_.max_idle_sims) {
    auto victim = std::min_element(
        idle_.begin(), idle_.end(),
        [](const std::shared_ptr<SimLease::Slot>& a,
           const std::shared_ptr<SimLease::Slot>& b) {
          return a->last_used < b->last_used;
        });
    // Drop the coldest pooled simulator (possibly the one coming back).
    if ((*victim)->last_used >= slot->last_used) return;
    idle_.erase(victim);
  }
  idle_.push_back(std::move(slot));
}

SharedRegistry::SimLease::~SimLease() {
  if (registry_ != nullptr && slot_ != nullptr) {
    registry_->release(std::move(slot_));
  }
}

fault::FaultSimulator* SharedRegistry::SimLease::get() const noexcept {
  return slot_ ? slot_->sim.get() : nullptr;
}

SharedRegistry::Stats SharedRegistry::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return Stats{inputs_.size(), idle_.size()};
}

}  // namespace scanc::svc
