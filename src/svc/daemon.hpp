// The compaction service daemon: a bounded multi-job execution engine
// behind an AF_UNIX length-prefixed JSON protocol (docs/service.md).
//
// Robustness properties (the reason this layer exists):
//
//   Admission control   the queue is bounded; a submit that does not fit
//                       either displaces a strictly-lower-priority queued
//                       job (load shedding, reported to its owner as
//                       state "shed") or is rejected with a typed reason
//                       — never silently dropped.
//
//   Fault isolation     each job attempt runs behind an exception
//                       barrier; any failure becomes a typed JobError on
//                       that job alone.  Transient failures retry with
//                       exponential backoff until a retry budget is
//                       exhausted, then the job is quarantined.
//
//   Watchdog            a monitor thread cancels running jobs whose
//                       deadline expired or whose progress stamp (the
//                       runner's per-phase heartbeat) has gone stale —
//                       a wedged job costs its executor slot only until
//                       the next cancellation point.
//
//   Graceful drain      on SIGTERM (or a shutdown request) the daemon
//                       stops accepting, cancels running jobs at the
//                       next phase boundary — their finished phases are
//                       already in the per-job checkpoint journal — and
//                       persists a resume snapshot.  A restarted daemon
//                       re-enqueues interrupted jobs and completes them
//                       bit-identically to an uninterrupted run.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "svc/job.hpp"
#include "svc/registry.hpp"
#include "util/cancel.hpp"
#include "util/thread_pool.hpp"

namespace scanc::svc {

struct DaemonOptions {
  std::string socket_path;
  /// Per-job checkpoint journals and the drain resume snapshot live
  /// here.  Empty disables both (jobs still run; drain loses queued and
  /// in-flight work).
  std::string state_dir;
  std::size_t max_queue = 64;    ///< queued-job bound (admission control)
  std::size_t executors = 2;     ///< concurrent job attempts
  int max_retries = 2;           ///< transient-failure attempts before quarantine
  double backoff_initial_seconds = 0.05;
  double backoff_max_seconds = 2.0;
  double watchdog_interval_seconds = 0.05;
  /// A running job whose progress stamp is older than this is considered
  /// wedged and cancelled by the watchdog.  Stamps are written at runner
  /// phase boundaries, so this must exceed the longest legitimate single
  /// phase — it is a wedge detector, not a deadline (use the job's
  /// deadline_seconds for budgets).
  double stall_seconds = 300.0;
  /// Per-subscriber bound on the `watch` stream's event queue; a
  /// consumer falling further behind than this is shed (its stream gets
  /// a `dropped` marker frame instead of the lost events).
  std::size_t watch_queue_capacity = 256;
  /// Events retained per job for the `events` replay verb and the drain
  /// snapshot (0 disables retention).
  std::size_t event_history = 128;
  SharedRegistry::Limits registry;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Serves until `shutdown` is raised (signal, deadline, or a client
  /// "shutdown" request), then drains and persists the resume snapshot.
  /// Returns the number of jobs left non-terminal (re-queued for the
  /// next daemon generation); 0 means everything submitted reached a
  /// terminal state.
  std::size_t run(const util::CancelToken& shutdown);

 private:
  struct Job {
    JobSpec spec;
    JobState state = JobState::Queued;
    int attempts = 0;
    std::uint64_t seq = 0;
    std::string error;
    std::string error_kind;  ///< "bad_request"/"deadline_exceeded"/"internal"/"shed"
    std::string result_json;     ///< dumped result object when Done
    std::uint64_t submit_ns = 0;
    bool started_once = false;   ///< JobQueueNanos recorded
    double not_before = 0.0;     ///< steady seconds; retry backoff gate
    // Valid while Running:
    util::CancelToken run_cancel;
    std::shared_ptr<std::atomic<std::uint64_t>> progress_ns;
  };

  void serve_connection(int fd);
  Json handle_request(const Json& request);
  Json op_submit(const Json& request);
  Json op_status(const Json& request);
  Json op_wait(const Json& request);
  Json op_stats();
  Json op_events(const Json& request);
  /// Streams a job's event feed over `fd` (the `watch` verb).  Returns
  /// true when the connection is still usable for further requests
  /// (stream ended with an `end` frame), false on a write failure.
  bool serve_watch(int fd, const Json& request);

  void executor_loop();
  void execute_attempt(Job& job);
  void watchdog_loop();

  Json job_status_json(const Job& job) const;  // caller holds mutex_
  void finish(Job& job, JobState state);       // caller holds mutex_
  void update_gauges() const;                  // caller holds mutex_

  void write_snapshot();
  std::size_t load_snapshot();

  DaemonOptions options_;
  SharedRegistry registry_;
  std::unique_ptr<util::ThreadPool> pool_;
  util::CancelToken shutdown_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< executors: work available / stop
  std::condition_variable done_cv_;   ///< waiters: some job reached terminal
  std::unordered_map<std::string, std::unique_ptr<Job>> jobs_;
  std::vector<Job*> queue_;           ///< Queued jobs, unordered (scanned)
  std::size_t running_ = 0;
  std::uint64_t next_seq_ = 1;
  bool draining_ = false;
  bool stop_executors_ = false;

  std::atomic<bool> watchdog_stop_{false};

  std::atomic<std::size_t> active_conns_{0};
  std::condition_variable conns_cv_;  ///< drain: active_conns_ -> 0
  std::mutex conns_mutex_;
};

}  // namespace scanc::svc
